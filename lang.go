// Package dprle is a decision procedure for subset constraints over regular
// languages — a Go reproduction of Hooimeijer & Weimer, "A Decision
// Procedure for Subset Constraints over Regular Languages" (PLDI 2009).
//
// The package solves systems of equations of the form
//
//	e ⊆ c
//
// where e concatenates regular-language variables and constants and c is a
// constant regular language (the Regular Matching Assignments problem). The
// solver returns every disjunctive maximal satisfying assignment of regular
// languages to variables, or reports that no assignment gives all variables
// of interest a nonempty language.
//
// A minimal session:
//
//	sys := dprle.NewSystem()
//	filter := dprle.MustMatchLang(`[\d]+$`)       // preg_match without ^
//	unsafe := dprle.MustMatchLang(`'`)            // queries containing a quote
//	sys.Require(dprle.V("input"), "filter", filter)
//	sys.Require(dprle.Concat(sys.Lit("nid_"), dprle.V("input")), "unsafe", unsafe)
//	res, _ := sys.Solve(dprle.Options{})
//	exploit, _ := res.First().Get("input").Witness()   // e.g. "'0"
package dprle

import (
	"fmt"

	"dprle/internal/nfa"
	"dprle/internal/regex"
)

// Lang is an immutable regular language over the byte alphabet.
type Lang struct {
	m *nfa.NFA
}

func wrap(m *nfa.NFA) Lang { return Lang{m: m} }

// machine returns the underlying NFA, defaulting the zero Lang to ∅.
func (l Lang) machine() *nfa.NFA {
	if l.m == nil {
		return nfa.Empty()
	}
	return l.m
}

// RegexLang compiles a pattern to its exact language.
func RegexLang(pattern string) (Lang, error) {
	r, err := regex.Parse(pattern)
	if err != nil {
		return Lang{}, err
	}
	m, err := r.Compile()
	if err != nil {
		return Lang{}, err
	}
	return wrap(m), nil
}

// MustRegexLang is RegexLang for statically known patterns.
func MustRegexLang(pattern string) Lang {
	l, err := RegexLang(pattern)
	if err != nil {
		panic(err)
	}
	return l
}

// MatchLang compiles a pattern to its preg_match language: the set of
// subject strings the pattern matches somewhere, honouring ^ and $ anchors.
func MatchLang(pattern string) (Lang, error) {
	r, err := regex.Parse(pattern)
	if err != nil {
		return Lang{}, err
	}
	m, err := r.MatchLanguage()
	if err != nil {
		return Lang{}, err
	}
	return wrap(m), nil
}

// MustMatchLang is MatchLang for statically known patterns.
func MustMatchLang(pattern string) Lang {
	l, err := MatchLang(pattern)
	if err != nil {
		panic(err)
	}
	return l
}

// LitLang returns the singleton language {s}.
func LitLang(s string) Lang { return wrap(nfa.Literal(s)) }

// AnyLang returns Σ*, the language of all strings.
func AnyLang() Lang { return wrap(nfa.AnyString()) }

// EmptyLang returns the empty language ∅.
func EmptyLang() Lang { return wrap(nfa.Empty()) }

// LengthBetween returns the language of strings whose length lies in
// [min, max] — the substring-indexing/length-check extension the paper
// sketches in §3.1.2. A negative max means unbounded.
func LengthBetween(min, max int) Lang {
	any := nfa.Class(nfa.AnyByte())
	out := nfa.Epsilon()
	for i := 0; i < min; i++ {
		out = nfa.Concat(out, any)
	}
	switch {
	case max < 0:
		out = nfa.Concat(out, nfa.Star(any))
	default:
		for i := min; i < max; i++ {
			out = nfa.Concat(out, nfa.Optional(any))
		}
	}
	return wrap(out)
}

// Accepts reports whether w belongs to the language.
func (l Lang) Accepts(w string) bool { return l.machine().Accepts(w) }

// IsEmpty reports whether the language is ∅.
func (l Lang) IsEmpty() bool { return l.machine().IsEmpty() }

// Witness returns a shortest member of the language. It is shorthand for
// ShortestWitness, kept for compatibility.
func (l Lang) Witness() (string, bool) { return l.machine().ShortestWitness() }

// ShortestWitness returns a shortest member of the language, or ok=false
// for ∅. The choice is deterministic: among equal-length candidates the
// breadth-first search always prefers the smallest byte at each position,
// so a given language yields byte-identical witnesses across runs,
// processes, and machine representations (a Lang and its
// Marshal/UnmarshalLang or Minimize round-trip agree). Counterexamples
// reported from it are therefore stable enough to assert on in tests.
func (l Lang) ShortestWitness() (string, bool) { return l.machine().ShortestWitness() }

// Enumerate lists members of length ≤ maxLen, up to maxCount, shortest
// first.
func (l Lang) Enumerate(maxLen, maxCount int) []string {
	return l.machine().Enumerate(maxLen, maxCount)
}

// Union returns l ∪ o.
func (l Lang) Union(o Lang) Lang { return wrap(nfa.Union(l.machine(), o.machine())) }

// Intersect returns l ∩ o.
func (l Lang) Intersect(o Lang) Lang {
	return wrap(nfa.Intersect(l.machine(), o.machine()).Trim())
}

// ConcatWith returns l · o.
func (l Lang) ConcatWith(o Lang) Lang { return wrap(nfa.Concat(l.machine(), o.machine())) }

// Complement returns Σ* \ l.
func (l Lang) Complement() Lang { return wrap(nfa.Complement(l.machine())) }

// Star returns l*.
func (l Lang) Star() Lang { return wrap(nfa.Star(l.machine())) }

// SubsetOf reports whether l ⊆ o.
func (l Lang) SubsetOf(o Lang) bool { return nfa.Subset(l.machine(), o.machine()) }

// Equal reports whether l and o denote the same language.
func (l Lang) Equal(o Lang) bool { return nfa.Equivalent(l.machine(), o.machine()) }

// Minimize returns an equivalent language backed by the minimal DFA.
func (l Lang) Minimize() Lang { return wrap(nfa.Minimized(l.machine())) }

// IsInfinite reports whether the language has infinitely many members.
func (l Lang) IsInfinite() bool { return l.machine().IsInfinite() }

// MinLen returns the length of a shortest member (ok=false when empty).
func (l Lang) MinLen() (int, bool) { return l.machine().MinWordLength() }

// MaxLen returns the length of a longest member; infinite reports an
// unbounded language, ok=false an empty one.
func (l Lang) MaxLen() (length int, infinite, ok bool) {
	return l.machine().MaxWordLength()
}

// Count returns the number of distinct members of each length 0..maxLen.
func (l Lang) Count(maxLen int) []int { return l.machine().CountWords(maxLen) }

// Sample returns a pseudo-random member derived deterministically from
// seed, with ok=false for the empty language. Useful for generating varied
// testcases from one solved input language.
func (l Lang) Sample(seed uint64) (string, bool) { return l.machine().SampleMember(seed) }

// States returns the state count of the backing machine, the size measure
// used throughout the paper's complexity discussion (§3.5).
func (l Lang) States() int { return l.machine().NumStates() }

// Dot renders the backing machine in Graphviz DOT format.
func (l Lang) Dot(name string) string { return l.machine().Dot(name) }

// Marshal serializes the language's machine in the dprle-nfa text format,
// suitable for caching solved languages on disk.
func (l Lang) Marshal() string { return l.machine().Marshal() }

// UnmarshalLang parses a language serialized with Marshal.
func UnmarshalLang(text string) (Lang, error) {
	m, err := nfa.Unmarshal(text)
	if err != nil {
		return Lang{}, err
	}
	return wrap(m), nil
}

// String summarizes the language by its machine size and a witness.
func (l Lang) String() string {
	if w, ok := l.Witness(); ok {
		return fmt.Sprintf("Lang{states: %d, witness: %q}", l.States(), w)
	}
	return fmt.Sprintf("Lang{states: %d, empty}", l.States())
}
