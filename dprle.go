package dprle

import "dprle/internal/core"

// Expr is the left-hand side of a subset constraint: a variable, a constant,
// a concatenation, or a union of expressions.
type Expr struct {
	e core.Expr
}

// V references the language variable with the given name.
func V(name string) Expr { return Expr{e: core.Var{Name: name}} }

// Concat concatenates expressions left to right.
func Concat(exprs ...Expr) Expr {
	if len(exprs) == 0 {
		panic("dprle: Concat of no expressions")
	}
	out := exprs[0].e
	for _, x := range exprs[1:] {
		out = core.Cat{Left: out, Right: x.e}
	}
	return Expr{e: out}
}

// Or forms the union of two expressions (extension, paper §3.1.2).
func Or(a, b Expr) Expr { return Expr{e: core.Or{Left: a.e, Right: b.e}} }

// Options configures solving. The zero value uses the defaults.
type Options struct {
	// MaxSolutions caps the number of disjunctive assignments returned.
	MaxSolutions int
	// Minimize applies DFA minimization to intermediate machines.
	Minimize bool
	// RawConstants tracks constant machines verbatim instead of
	// canonicalizing them first, matching the paper's prototype (and its
	// pathological `secure` case).
	RawConstants bool
	// NoMaximalize skips the maximality fixpoint; returned disjuncts then
	// mirror the raw seam structure (ablation).
	NoMaximalize bool
}

func (o Options) toCore() core.Options {
	return core.Options{
		MaxSolutions: o.MaxSolutions,
		Minimize:     o.Minimize,
		RawConstants: o.RawConstants,
		NoMaximalize: o.NoMaximalize,
	}
}

// System is an RMA problem instance under construction.
type System struct {
	inner *core.System
}

// NewSystem returns an empty constraint system.
func NewSystem() *System { return &System{inner: core.NewSystem()} }

// Named interns a constant language under the given name and returns it as
// an expression usable on left-hand sides.
func (s *System) Named(name string, l Lang) (Expr, error) {
	c, err := s.inner.Const(name, l.machine())
	if err != nil {
		return Expr{}, err
	}
	return Expr{e: c}, nil
}

// MustNamed is Named for statically known constants.
func (s *System) MustNamed(name string, l Lang) Expr {
	e, err := s.Named(name, l)
	if err != nil {
		panic(err)
	}
	return e
}

// Lit interns the singleton language {str} as a constant expression.
func (s *System) Lit(str string) Expr {
	return Expr{e: s.inner.AnonConst(LitLang(str).machine())}
}

// Require adds the constraint e ⊆ rhs, interning rhs under rhsName.
func (s *System) Require(e Expr, rhsName string, rhs Lang) error {
	c, err := s.inner.Const(rhsName, rhs.machine())
	if err != nil {
		return err
	}
	return s.inner.Add(e.e, c)
}

// MustRequire is Require that panics on error.
func (s *System) MustRequire(e Expr, rhsName string, rhs Lang) {
	if err := s.Require(e, rhsName, rhs); err != nil {
		panic(err)
	}
}

// Vars lists the registered variable names in first-use order.
func (s *System) Vars() []string { return s.inner.Vars() }

// String renders the system one constraint per line.
func (s *System) String() string { return s.inner.String() }

// Assignment maps variables to regular languages.
type Assignment struct {
	inner core.Assignment
}

// Get returns the language assigned to the variable (∅ for unknown names).
func (a Assignment) Get(name string) Lang { return wrap(a.inner.Lookup(name)) }

// Witnesses returns a shortest concrete string per variable — the form a
// testcase generator consumes. It fails if any variable is empty.
func (a Assignment) Witnesses() (map[string]string, error) {
	return core.Witnesses(a.inner)
}

// Result holds the disjunctive solutions of a Solve call.
type Result struct {
	// Assignments are the maximal satisfying assignments found.
	Assignments []Assignment
	// Truncated reports that enumeration stopped at a configured bound.
	Truncated bool
}

// Sat reports whether at least one assignment was found.
func (r *Result) Sat() bool { return len(r.Assignments) > 0 }

// First returns the first assignment; it panics when unsat (check Sat).
func (r *Result) First() Assignment {
	if len(r.Assignments) == 0 {
		panic("dprle: First on an unsatisfiable result")
	}
	return r.Assignments[0]
}

// Solve runs the decision procedure and returns all disjunctive maximal
// satisfying assignments (up to configured bounds). An empty result means no
// assignment gives every variable a nonempty language.
func (s *System) Solve(opts Options) (*Result, error) {
	res, err := core.Solve(s.inner, opts.toCore())
	if err != nil {
		return nil, err
	}
	out := &Result{Truncated: res.Truncated}
	for _, a := range res.Assignments {
		out.Assignments = append(out.Assignments, Assignment{inner: a})
	}
	return out, nil
}

// SolveFor solves only the parts of the system the given variables depend
// on — the paper's "solving either part or all of the graph depending on
// the needs of the client analysis" (§4). Variables outside the requested
// dependency region are reported as Σ*.
func (s *System) SolveFor(interest []string, opts Options) (*Result, error) {
	res, err := core.SolveFor(s.inner, interest, opts.toCore())
	if err != nil {
		return nil, err
	}
	out := &Result{Truncated: res.Truncated}
	for _, a := range res.Assignments {
		out.Assignments = append(out.Assignments, Assignment{inner: a})
	}
	return out, nil
}

// Decide answers the decision problem for the given variables: it returns an
// assignment covering them with nonempty languages, or ok=false when none
// exists (the paper's "no assignments found").
func (s *System) Decide(interest []string, opts Options) (Assignment, bool, error) {
	a, ok, err := core.Decide(s.inner, interest, opts.toCore())
	if err != nil || !ok {
		return Assignment{}, false, err
	}
	return Assignment{inner: a}, true, nil
}

// Satisfies reports whether the assignment meets every constraint of the
// system — an independent check of the solver's Satisfying condition.
func (s *System) Satisfies(a Assignment) bool {
	return core.Satisfies(s.inner, a.inner)
}

// CheckMaximal verifies the assignment cannot be extended (the Maximal
// condition); the returned error describes a violating variable and witness.
func (s *System) CheckMaximal(a Assignment) error {
	return core.CheckMaximal(s.inner, a.inner)
}

// NewAssignment builds an assignment from explicit variable languages, for
// use with Satisfies/CheckMaximal.
func NewAssignment(vars map[string]Lang) Assignment {
	inner := core.Assignment{}
	for name, l := range vars {
		inner[name] = l.machine()
	}
	return Assignment{inner: inner}
}

// Version identifies the reproduction release.
const Version = "1.0.0"
