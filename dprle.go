package dprle

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"dprle/internal/budget"
	"dprle/internal/core"
	"dprle/internal/solvecache"
)

// Expr is the left-hand side of a subset constraint: a variable, a constant,
// a concatenation, or a union of expressions.
type Expr struct {
	e core.Expr
}

// V references the language variable with the given name.
func V(name string) Expr { return Expr{e: core.Var{Name: name}} }

// Concat concatenates expressions left to right. It panics on an empty
// argument list: there is no neutral expression to return, and a
// zero-argument concat is always a programming error at the call site.
func Concat(exprs ...Expr) Expr {
	if len(exprs) == 0 {
		panic("dprle: Concat of no expressions")
	}
	out := exprs[0].e
	for _, x := range exprs[1:] {
		out = core.Cat{Left: out, Right: x.e}
	}
	return Expr{e: out}
}

// Or forms the union of two expressions (extension, paper §3.1.2).
func Or(a, b Expr) Expr { return Expr{e: core.Or{Left: a.e, Right: b.e}} }

// Options configures solving. The zero value uses the defaults.
type Options struct {
	// MaxSolutions caps the number of disjunctive assignments returned.
	MaxSolutions int
	// Minimize applies DFA minimization to intermediate machines.
	Minimize bool
	// RawConstants tracks constant machines verbatim instead of
	// canonicalizing them first, matching the paper's prototype (and its
	// pathological `secure` case).
	RawConstants bool
	// NoMaximalize skips the maximality fixpoint; returned disjuncts then
	// mirror the raw seam structure (ablation).
	NoMaximalize bool
	// MaxStates caps the total number of NFA states the solve may
	// materialize across all product/determinization constructions.
	// 0 means unlimited. When the cap trips, the solve unwinds and
	// returns its verified partial results with an *ExhaustedError.
	MaxStates int64
	// MaxSteps caps the number of solver checkpoints (inner-loop progress
	// marks). 0 means unlimited.
	MaxSteps int64
	// Sequential disables the concurrent solving of independent CI-groups.
	Sequential bool
	// Cache memoizes solved components across calls (see NewCache). nil
	// disables memoization. The same Cache may be shared by concurrent
	// solves and across different systems: entries are keyed by canonical
	// structural fingerprints plus the option fields that shape them, so
	// a hit is always a sound substitute for re-solving.
	Cache *Cache
}

func (o Options) toCore() core.Options {
	co := core.Options{
		MaxSolutions: o.MaxSolutions,
		Minimize:     o.Minimize,
		RawConstants: o.RawConstants,
		NoMaximalize: o.NoMaximalize,
		Sequential:   o.Sequential,
		Limits:       budget.Limits{MaxStates: o.MaxStates, MaxSteps: o.MaxSteps},
	}
	if o.Cache != nil {
		co.Cache = o.Cache.c
	}
	return co
}

// Cache is a bounded, thread-safe memoization store for solved
// constraint-graph components. A system whose components were all seen
// before (under the same relevant options) solves in hash time; results
// produced under a tripped budget are never stored, so cached answers are
// always complete. Create one with NewCache and share it via
// Options.Cache.
type Cache struct {
	c *solvecache.Cache
}

// NewCache returns a Cache holding at most maxEntries values totalling at
// most maxBytes of accounted cost. Zero selects the defaults (4096
// entries, 64 MiB); a negative value leaves that bound unenforced.
func NewCache(maxEntries int, maxBytes int64) *Cache {
	return &Cache{c: solvecache.New(solvecache.Config{MaxEntries: maxEntries, MaxBytes: maxBytes})}
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Puts      uint64
	Evictions uint64
	Entries   int
	Bytes     int64
}

// Stats snapshots the cache counters. A nil Cache reports zeros.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	s := c.c.Stats()
	return CacheStats{
		Hits:      s.Hits,
		Misses:    s.Misses,
		Puts:      s.Puts,
		Evictions: s.Evictions,
		Entries:   s.Entries,
		Bytes:     s.Bytes,
	}
}

// Usage reports the resources a solve consumed.
type Usage struct {
	// States is the number of NFA states materialized by budgeted
	// constructions (products, determinizations, quotients).
	States int64
	// Steps is the number of solver checkpoints passed.
	Steps int64
	// Exhausted reports whether a resource budget tripped during the solve.
	Exhausted bool
}

// ExhaustedError reports that a solve ran out of a configured resource
// budget — the context's deadline or cancellation, or an Options limit —
// and degraded gracefully instead of running to completion. The Result
// returned alongside it holds verified partial output (see SolveContext).
//
// It unwraps to the context's error for deadline/cancellation trips, so
// errors.Is(err, context.DeadlineExceeded) and errors.Is(err,
// context.Canceled) work as expected.
type ExhaustedError struct {
	// Kind names the budget that tripped: "deadline", "canceled",
	// "max-states", "max-steps", or "fault-injected".
	Kind string
	// Stage is the pipeline stage that hit the limit, e.g.
	// "nfa.determinize" or "gci.combos".
	Stage string
	// States and Steps are the counters consumed at the moment of the trip.
	States int64
	Steps  int64
	// Limit is the configured bound for counter trips (0 for deadline/
	// cancellation).
	Limit int64

	cause error
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("dprle: budget exhausted: %s at %s (states=%d steps=%d limit=%d)",
		e.Kind, e.Stage, e.States, e.Steps, e.Limit)
}

// Unwrap exposes the underlying budget error (which itself unwraps to the
// context error for deadline/cancellation trips).
func (e *ExhaustedError) Unwrap() error { return e.cause }

// PanicError wraps a panic recovered at the API boundary: an internal
// invariant of the solver was violated. The solve that produced it returned
// no usable result; the Stack identifies the defect.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("dprle: internal panic: %v", e.Value)
}

// wrapErr converts internal budget errors into the public ExhaustedError;
// other errors pass through unchanged.
func wrapErr(err error) error {
	if err == nil {
		return nil
	}
	var ex *budget.Exhausted
	if errors.As(err, &ex) {
		return &ExhaustedError{
			Kind:   string(ex.Kind),
			Stage:  ex.Stage,
			States: ex.States,
			Steps:  ex.Steps,
			Limit:  ex.Limit,
			cause:  ex,
		}
	}
	return err
}

// recoverToError converts a panic escaping the solver into a *PanicError,
// keeping internal invariant violations from crashing the calling process.
func recoverToError(err *error) {
	if r := recover(); r != nil {
		*err = &PanicError{Value: r, Stack: debug.Stack()}
	}
}

// System is an RMA problem instance under construction.
type System struct {
	inner *core.System
}

// NewSystem returns an empty constraint system.
func NewSystem() *System { return &System{inner: core.NewSystem()} }

// Named interns a constant language under the given name and returns it as
// an expression usable on left-hand sides.
func (s *System) Named(name string, l Lang) (Expr, error) {
	c, err := s.inner.Const(name, l.machine())
	if err != nil {
		return Expr{}, err
	}
	return Expr{e: c}, nil
}

// MustNamed is Named for statically known constants.
func (s *System) MustNamed(name string, l Lang) Expr {
	e, err := s.Named(name, l)
	if err != nil {
		panic(err)
	}
	return e
}

// Lit interns the singleton language {str} as a constant expression.
func (s *System) Lit(str string) Expr {
	return Expr{e: s.inner.AnonConst(LitLang(str).machine())}
}

// Require adds the constraint e ⊆ rhs, interning rhs under rhsName.
func (s *System) Require(e Expr, rhsName string, rhs Lang) error {
	c, err := s.inner.Const(rhsName, rhs.machine())
	if err != nil {
		return err
	}
	return s.inner.Add(e.e, c)
}

// MustRequire is Require that panics on error.
func (s *System) MustRequire(e Expr, rhsName string, rhs Lang) {
	if err := s.Require(e, rhsName, rhs); err != nil {
		panic(err)
	}
}

// Vars lists the registered variable names in first-use order.
func (s *System) Vars() []string { return s.inner.Vars() }

// String renders the system one constraint per line.
func (s *System) String() string { return s.inner.String() }

// Assignment maps variables to regular languages.
type Assignment struct {
	inner core.Assignment
}

// Get returns the language assigned to the variable (∅ for unknown names).
func (a Assignment) Get(name string) Lang { return wrap(a.inner.Lookup(name)) }

// Witnesses returns a shortest concrete string per variable — the form a
// testcase generator consumes. It fails if any variable is empty.
func (a Assignment) Witnesses() (map[string]string, error) {
	return core.Witnesses(a.inner)
}

// ShortestWitness returns the deterministic shortest member of the
// language assigned to name, with ok=false when that language is empty
// (including unknown names, which Get resolves to ∅). See
// Lang.ShortestWitness for the byte-stability guarantee.
func (a Assignment) ShortestWitness(name string) (string, bool) {
	return a.Get(name).ShortestWitness()
}

// Result holds the disjunctive solutions of a Solve call.
type Result struct {
	// Assignments are the maximal satisfying assignments found.
	Assignments []Assignment
	// Truncated reports that enumeration stopped at a configured bound
	// (MaxSolutions or the seam-combination cap). This is distinct from
	// resource exhaustion, which SolveContext signals with a non-nil
	// *ExhaustedError.
	Truncated bool
	// Usage reports the resources the solve consumed.
	Usage Usage
}

func wrapResult(res *core.Result) *Result {
	out := &Result{}
	if res == nil {
		return out
	}
	out.Truncated = res.Truncated
	out.Usage = Usage{States: res.Usage.States, Steps: res.Usage.Steps, Exhausted: res.Usage.Exhausted}
	for _, a := range res.Assignments {
		out.Assignments = append(out.Assignments, Assignment{inner: a})
	}
	return out
}

// Sat reports whether at least one assignment was found.
func (r *Result) Sat() bool { return len(r.Assignments) > 0 }

// First returns the first assignment; it panics when unsat (check Sat).
func (r *Result) First() Assignment {
	if len(r.Assignments) == 0 {
		panic("dprle: First on an unsatisfiable result")
	}
	return r.Assignments[0]
}

// Solve runs the decision procedure and returns all disjunctive maximal
// satisfying assignments (up to configured bounds). An empty result means no
// assignment gives every variable a nonempty language.
func (s *System) Solve(opts Options) (*Result, error) {
	return s.SolveContext(context.Background(), opts)
}

// SolveContext is Solve under a resource budget: the context's deadline and
// cancellation, plus Options.MaxStates/MaxSteps, bound the work. On
// exhaustion the solver degrades gracefully:
//
//   - The returned error is an *ExhaustedError recording which budget
//     tripped, at which pipeline stage, and the counters consumed.
//   - The Result returned alongside it is non-nil and holds verified
//     partial output: every assignment in it genuinely satisfies the
//     system; only the enumeration is incomplete. An empty Result with a
//     non-nil error means satisfiability is UNKNOWN, not unsat.
//   - With a nil error, an empty Result remains a proof of
//     unsatisfiability, exactly as for Solve.
//
// Internal solver panics are recovered here and reported as *PanicError
// rather than crashing the caller.
func (s *System) SolveContext(ctx context.Context, opts Options) (res *Result, err error) {
	defer recoverToError(&err)
	cres, cerr := core.SolveCtx(ctx, s.inner, opts.toCore())
	return wrapResult(cres), wrapErr(cerr)
}

// SolveFor solves only the parts of the system the given variables depend
// on — the paper's "solving either part or all of the graph depending on
// the needs of the client analysis" (§4). Variables outside the requested
// dependency region are reported as Σ*.
func (s *System) SolveFor(interest []string, opts Options) (*Result, error) {
	return s.SolveForContext(context.Background(), interest, opts)
}

// SolveForContext is SolveFor under a resource budget, with the same
// degradation semantics as SolveContext.
func (s *System) SolveForContext(ctx context.Context, interest []string, opts Options) (res *Result, err error) {
	defer recoverToError(&err)
	cres, cerr := core.SolveForCtx(ctx, s.inner, interest, opts.toCore())
	return wrapResult(cres), wrapErr(cerr)
}

// Decide answers the decision problem for the given variables: it returns an
// assignment covering them with nonempty languages, or ok=false when none
// exists (the paper's "no assignments found").
func (s *System) Decide(interest []string, opts Options) (Assignment, bool, error) {
	a, ok, _, err := s.DecideContext(context.Background(), interest, opts)
	return a, ok, err
}

// DecideContext is Decide under a resource budget. On exhaustion it returns
// any satisfying witness found before the trip: ok=true with a non-nil
// *ExhaustedError still carries a trustworthy assignment, while ok=false
// with a non-nil error means "unknown", not unsat. The returned Usage
// reports the resources consumed either way.
func (s *System) DecideContext(ctx context.Context, interest []string, opts Options) (a Assignment, ok bool, usage Usage, err error) {
	defer recoverToError(&err)
	ca, cok, cu, cerr := core.DecideCtx(ctx, s.inner, interest, opts.toCore())
	usage = Usage{States: cu.States, Steps: cu.Steps, Exhausted: cu.Exhausted}
	err = wrapErr(cerr)
	if !cok {
		return Assignment{}, false, usage, err
	}
	return Assignment{inner: ca}, true, usage, err
}

// Satisfies reports whether the assignment meets every constraint of the
// system — an independent check of the solver's Satisfying condition.
func (s *System) Satisfies(a Assignment) bool {
	return core.Satisfies(s.inner, a.inner)
}

// CheckMaximal verifies the assignment cannot be extended (the Maximal
// condition); the returned error describes a violating variable and witness.
func (s *System) CheckMaximal(a Assignment) error {
	return core.CheckMaximal(s.inner, a.inner)
}

// NewAssignment builds an assignment from explicit variable languages, for
// use with Satisfies/CheckMaximal.
func NewAssignment(vars map[string]Lang) Assignment {
	inner := core.Assignment{}
	for name, l := range vars {
		inner[name] = l.machine()
	}
	return Assignment{inner: inner}
}

// Version identifies the reproduction release.
const Version = "1.0.0"
