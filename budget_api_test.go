package dprle

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"dprle/internal/core"
	"dprle/internal/textio"
)

// bombPattern's NFA has an exponential determinization: (a|b)*a(a|b)^24.
const bombPattern = "(a|b)*a(a|b){24}"

func bombAPISystem(t testing.TB) *System {
	t.Helper()
	s := NewSystem()
	s.MustRequire(Concat(V("v1"), V("v2")), "bomb", MustRegexLang(bombPattern))
	return s
}

func TestSolveContextExhaustedError(t *testing.T) {
	s := bombAPISystem(t)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	res, err := s.SolveContext(ctx, Options{})
	if err == nil {
		t.Fatal("expected an error from the 200ms deadline")
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %T %v, want *ExhaustedError", err, err)
	}
	if ex.Kind != "deadline" {
		t.Errorf("Kind = %q, want %q", ex.Kind, "deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("ExhaustedError does not unwrap to context.DeadlineExceeded")
	}
	if !strings.Contains(ex.Error(), "budget exhausted") {
		t.Errorf("Error() = %q", ex.Error())
	}
	if res == nil {
		t.Fatal("nil result alongside ExhaustedError")
	}
	if !res.Usage.Exhausted {
		t.Error("Usage.Exhausted = false")
	}
}

func TestSolveContextMaxStatesPublic(t *testing.T) {
	s := bombAPISystem(t)
	res, err := s.SolveContext(context.Background(), Options{MaxStates: 4000})
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *ExhaustedError", err)
	}
	if ex.Kind != "max-states" {
		t.Errorf("Kind = %q, want %q", ex.Kind, "max-states")
	}
	if ex.Limit != 4000 {
		t.Errorf("Limit = %d, want 4000", ex.Limit)
	}
	for i, a := range res.Assignments {
		if !s.Satisfies(a) {
			t.Errorf("partial assignment %d does not satisfy the system", i)
		}
	}
}

func TestDecideContextUsage(t *testing.T) {
	s := NewSystem()
	s.MustRequire(Concat(V("v1"), V("v2")), "c", LitLang("ab"))
	a, ok, usage, err := s.DecideContext(context.Background(), []string{"v1", "v2"}, Options{})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if !s.Satisfies(a) {
		t.Error("witness does not satisfy the system")
	}
	if usage.Steps == 0 {
		t.Error("Usage.Steps = 0 after a complete solve")
	}
}

// TestSolveContextPrecancelledFastPath pins the public fast path: an
// already-canceled context must return immediately with zero work done,
// for both SolveContext and DecideContext. Serving layers that fan one
// deadline across many solves rely on dead requests costing nothing.
func TestSolveContextPrecancelledFastPath(t *testing.T) {
	s := bombAPISystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := s.SolveContext(ctx, Options{})
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %T %v, want *ExhaustedError", err, err)
	}
	if ex.Kind != "canceled" {
		t.Errorf("Kind = %q, want canceled", ex.Kind)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("error does not unwrap to context.Canceled")
	}
	if res.Usage.States != 0 || res.Usage.Steps != 0 {
		t.Errorf("solve did work on a dead context: %+v", res.Usage)
	}

	a, ok, usage, err := s.DecideContext(ctx, []string{"v1"}, Options{})
	if err == nil || ok {
		t.Fatalf("DecideContext: ok=%v err=%v, want unknown", ok, err)
	}
	if usage.States != 0 || usage.Steps != 0 {
		t.Errorf("decide did work on a dead context: %+v", usage)
	}
	_ = a
}

func TestRecoverToError(t *testing.T) {
	boom := func() (err error) {
		defer recoverToError(&err)
		panic("invariant violated")
	}
	err := boom()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if pe.Value != "invariant violated" {
		t.Errorf("Value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("empty stack trace")
	}
	if !strings.Contains(pe.Error(), "internal panic") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

// FuzzSolveContextBudget feeds arbitrary constraint-language sources through
// the parser and solves whatever parses under a tiny resource budget. The
// property under test is the robustness contract of the public API: no input
// and no budget trip may escape as a panic (*PanicError or a crash), and any
// assignments returned under exhaustion must still satisfy the system.
func FuzzSolveContextBudget(f *testing.F) {
	f.Add("const filter := match /[\\d]+$/;\ninput <= filter;")
	f.Add("const c := re /ab*/;\nv <= c;")
	f.Add("const unsafe := re /(a|b)*a(a|b){8}/;\n\"nid_\" . input <= unsafe;")
	f.Add("x . y <= x;")
	f.Add("const e := re //;\nv <= e;")
	f.Fuzz(func(t *testing.T, src string) {
		sys, err := textio.Parse(src)
		if err != nil {
			t.Skip()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		defer cancel()
		s := &System{inner: sys}
		res, err := s.SolveContext(ctx, Options{MaxStates: 200, MaxSteps: 200, MaxSolutions: 8})
		var pe *PanicError
		if errors.As(err, &pe) {
			t.Fatalf("internal panic escaped the solver: %v\n%s", pe.Value, pe.Stack)
		}
		if res == nil {
			t.Fatal("nil result")
		}
		if err != nil {
			var ex *ExhaustedError
			if !errors.As(err, &ex) {
				t.Fatalf("unexpected error type %T: %v", err, err)
			}
			for i, a := range res.Assignments {
				if !s.Satisfies(a) {
					t.Errorf("partial assignment %d does not satisfy the system", i)
				}
			}
		}
	})
}

// TestSolveContextTinyBudgetSeeds runs the fuzz seeds directly so the
// robustness property is exercised by plain `go test` too.
func TestSolveContextTinyBudgetSeeds(t *testing.T) {
	seeds := []string{
		"const filter := match /[\\d]+$/;\ninput <= filter;",
		"const c := re /ab*/;\nv <= c;",
		"const unsafe := re /(a|b)*a(a|b){8}/;\n\"nid_\" . input <= unsafe;",
		"const k := re /a*/;\nx . y <= k;",
	}
	for _, src := range seeds {
		sys, err := textio.Parse(src)
		if err != nil {
			t.Fatalf("seed failed to parse: %v", err)
		}
		s := &System{inner: sys}
		for _, limits := range []Options{
			{MaxStates: 1}, {MaxSteps: 1}, {MaxStates: 50, MaxSteps: 50},
		} {
			res, err := s.SolveContext(context.Background(), limits)
			var pe *PanicError
			if errors.As(err, &pe) {
				t.Fatalf("panic escaped for %q under %+v: %v", src, limits, pe.Value)
			}
			if res == nil {
				t.Fatalf("nil result for %q", src)
			}
			for i, a := range res.Assignments {
				if !core.Satisfies(sys, a.inner) {
					t.Errorf("assignment %d for %q under %+v does not satisfy", i, src, limits)
				}
			}
		}
	}
}
