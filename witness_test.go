package dprle_test

import (
	"testing"

	"dprle"
)

// TestShortestWitnessGolden pins exact witness bytes for a few languages:
// the accessor promises determinism, so these must never drift.
func TestShortestWitnessGolden(t *testing.T) {
	cases := []struct {
		name string
		lang dprle.Lang
		want string
	}{
		{"literal", dprle.LitLang("abc"), "abc"},
		{"epsilon", dprle.LitLang(""), ""},
		{"class-pair", dprle.MustRegexLang(`[a-c][a-c]`), "aa"},
		{"alternation", dprle.MustRegexLang(`zz|b|yyy`), "b"},
		{"smallest-byte-tie", dprle.MustRegexLang(`c|a|b`), "a"},
		{"digits", dprle.MustRegexLang(`-?[0-9][0-9]*`), "0"},
		{"match-quote", dprle.MustMatchLang(`'`), "'"},
		{"star-prefix", dprle.MustRegexLang(`x*yz`), "yz"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := tc.lang.ShortestWitness()
			if !ok || got != tc.want {
				t.Fatalf("ShortestWitness() = %q, %v; want %q, true", got, ok, tc.want)
			}
			if w, wok := tc.lang.Witness(); !wok || w != got {
				t.Fatalf("Witness() = %q, %v disagrees with ShortestWitness %q", w, wok, got)
			}
		})
	}
	if w, ok := dprle.EmptyLang().ShortestWitness(); ok {
		t.Fatalf("empty language produced witness %q", w)
	}
}

// TestShortestWitnessByteStability checks the witness survives every
// representation change byte-for-byte: minimization, a Marshal round-trip,
// and self-union all describe the same language, so they must all report
// the same shortest member, repeatedly.
func TestShortestWitnessByteStability(t *testing.T) {
	langs := map[string]dprle.Lang{
		"keyword-set": dprle.MustRegexLang(`select|insert|update|delete`),
		"quoted":      dprle.MustRegexLang(`'[^']*'`),
		"id":          dprle.MustMatchLang(`^[a-zA-Z_][a-zA-Z0-9_]*$`),
		"any":         dprle.AnyLang(),
	}
	for name, l := range langs {
		t.Run(name, func(t *testing.T) {
			base, ok := l.ShortestWitness()
			if !ok {
				t.Fatal("language unexpectedly empty")
			}
			forms := map[string]dprle.Lang{
				"minimized":  l.Minimize(),
				"self-union": l.Union(l),
			}
			rt, err := dprle.UnmarshalLang(l.Marshal())
			if err != nil {
				t.Fatalf("Marshal round-trip: %v", err)
			}
			forms["round-trip"] = rt
			for i := 0; i < 5; i++ {
				if w, ok := l.ShortestWitness(); !ok || w != base {
					t.Fatalf("repeat %d: witness drifted: %q vs %q", i, w, base)
				}
				for form, fl := range forms {
					if w, ok := fl.ShortestWitness(); !ok || w != base {
						t.Fatalf("%s witness %q != base %q", form, w, base)
					}
				}
			}
		})
	}
}

// TestAssignmentShortestWitness drives the package-doc exploit system
// through repeated solves and pins the assignment-level accessor: same
// bytes every time, consistent with Witnesses(), absent names empty.
func TestAssignmentShortestWitness(t *testing.T) {
	solveOnce := func() (dprle.Assignment, string) {
		sys := dprle.NewSystem()
		sys.MustRequire(dprle.V("input"), "filter", dprle.MustMatchLang(`[\d]+$`))
		sys.MustRequire(dprle.Concat(sys.Lit("nid_"), dprle.V("input")), "unsafe",
			dprle.MustMatchLang(`'`))
		res, err := sys.Solve(dprle.Options{})
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if !res.Sat() {
			t.Fatal("expected a satisfying assignment")
		}
		a := res.First()
		w, ok := a.ShortestWitness("input")
		if !ok {
			t.Fatal("input language empty")
		}
		return a, w
	}

	first, base := solveOnce()
	if all, err := first.Witnesses(); err != nil {
		t.Fatalf("Witnesses: %v", err)
	} else if all["input"] != base {
		t.Fatalf("Witnesses()[input] = %q, ShortestWitness = %q", all["input"], base)
	}
	for i := 0; i < 3; i++ {
		if _, w := solveOnce(); w != base {
			t.Fatalf("solve %d: witness drifted: %q vs %q", i, w, base)
		}
	}
	if w, ok := first.ShortestWitness("no-such-var"); ok {
		t.Fatalf("unknown variable produced witness %q", w)
	}
}
