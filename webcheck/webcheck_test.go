package webcheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fig1 = `<?php
$newsid = $_POST['posted_newsid'];
if (!preg_match('/[\d]+$/', $newsid)) { exit; }
$newsid = "nid_" . $newsid;
$idnews = query("SELECT * FROM news WHERE newsid=$newsid");
`

func TestAnalyzeSourceFindsExploit(t *testing.T) {
	rep, err := AnalyzeSource("fig1.php", fig1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Vulnerable() || len(rep.Findings) != 1 {
		t.Fatalf("findings = %v", rep.Findings)
	}
	f := rep.Findings[0]
	if f.Kind != SQL {
		t.Fatalf("kind = %v", f.Kind)
	}
	exploit := f.Inputs["POST:posted_newsid"]
	if !strings.Contains(exploit, "'") {
		t.Fatalf("exploit %q lacks quote", exploit)
	}
	if !strings.Contains(f.String(), "sql injection") {
		t.Fatalf("String = %q", f.String())
	}
	if rep.Blocks != 3 || rep.Paths != 1 || rep.Constraints != 2 {
		t.Fatalf("metrics = %d/%d/%d", rep.Blocks, rep.Paths, rep.Constraints)
	}
}

func TestAnalyzeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig1.php")
	if err := os.WriteFile(path, []byte(fig1), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Vulnerable() {
		t.Fatal("file analysis missed the defect")
	}
	if _, err := AnalyzeFile(filepath.Join(t.TempDir(), "missing.php")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestPolicyOptions(t *testing.T) {
	rep, err := AnalyzeSource("fig1.php", fig1, WithSQLPolicy("tautology"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Vulnerable() {
		t.Fatal("tautology policy should still find the defect")
	}
	if !strings.Contains(rep.Findings[0].Inputs["POST:posted_newsid"], "OR ") {
		t.Fatalf("tautology exploit = %q", rep.Findings[0].Inputs["POST:posted_newsid"])
	}
}

func TestAllPathsOption(t *testing.T) {
	src := `<?php
$x = $_GET['x'];
if ($m) { $y = 'a'; } else { $y = 'b'; }
query($x . $y);
`
	rep, err := AnalyzeSource("t.php", src, AllPaths())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 2 {
		t.Fatalf("findings = %d, want 2", len(rep.Findings))
	}
	capped, err := AnalyzeSource("t.php", src, AllPaths(), MaxPaths(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Findings) != 1 {
		t.Fatalf("capped findings = %d", len(capped.Findings))
	}
}

func TestCorpusAccess(t *testing.T) {
	ds := CorpusDefects()
	if len(ds) != 17 {
		t.Fatalf("defects = %d", len(ds))
	}
	var secure Defect
	for _, d := range ds {
		if d.Name == "secure" {
			secure = d
		}
	}
	if !secure.Pathological || secure.PaperSeconds != 577.0 {
		t.Fatalf("secure = %+v", secure)
	}
	src, err := DefectSource(ds[0])
	if err != nil || !strings.Contains(src, "<?php") {
		t.Fatalf("DefectSource: %v", err)
	}
	if _, err := DefectSource(Defect{App: "x", Name: "y"}); err == nil {
		t.Fatal("unknown defect must error")
	}
}

func TestAnalyzeSafeProgram(t *testing.T) {
	safe := strings.Replace(fig1, `/[\d]+$/`, `/^[\d]+$/`, 1)
	rep, err := AnalyzeSource("safe.php", safe)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Vulnerable() {
		t.Fatal("anchored filter must be safe")
	}
}

func TestParseErrorPropagates(t *testing.T) {
	if _, err := AnalyzeSource("bad.php", "$x = ;"); err == nil {
		t.Fatal("syntax error must propagate")
	}
}

func TestWriteAndAnalyzeEveApp(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "eve")
	if err := WriteCorpusApp("eve", dir); err != nil {
		t.Fatal(err)
	}
	app, err := AnalyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 11: eve has 8 files, 905 LOC, 1 vulnerable file.
	if app.Files != 8 {
		t.Fatalf("files = %d, want 8", app.Files)
	}
	if app.Vulnerable != 1 {
		t.Fatalf("vulnerable = %d, want 1", app.Vulnerable)
	}
	if app.LOC < 800 || app.LOC > 1000 {
		t.Fatalf("LOC = %d, want ≈905", app.LOC)
	}
	if len(app.Findings) != 1 || app.Findings[0].Kind != SQL {
		t.Fatalf("findings = %v", app.Findings)
	}
	if app.PerFile["edit.php"] == nil || !app.PerFile["edit.php"].Vulnerable() {
		t.Fatal("edit.php should carry the finding")
	}
}

func TestWriteCorpusAppErrors(t *testing.T) {
	if err := WriteCorpusApp("nosuch", t.TempDir()); err == nil {
		t.Fatal("unknown app must error")
	}
	if _, err := AnalyzeDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing dir must error")
	}
}

// TestExhaustedRetriesEscalate drives the retry-with-bigger-budget path:
// fig1 needs between 100 and 200 solver states, so a 50-state cap trips on
// the first attempt and succeeds on the escalated (4x = 200) second one.
func TestExhaustedRetriesEscalate(t *testing.T) {
	// Without retries the cap kills the path.
	rep, err := AnalyzeSource("fig1.php", fig1, WithSolverLimits(50, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExhaustedPaths != 1 || len(rep.Findings) != 0 {
		t.Fatalf("no-retry run: exhausted=%d findings=%d, want 1/0", rep.ExhaustedPaths, len(rep.Findings))
	}

	// One escalating retry quadruples the cap and the exploit is found.
	rep, err = AnalyzeSource("fig1.php", fig1, WithSolverLimits(50, 0), WithExhaustedRetries(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExhaustedPaths != 0 || len(rep.Findings) != 1 {
		t.Fatalf("retry run: exhausted=%d findings=%d, want 0/1", rep.ExhaustedPaths, len(rep.Findings))
	}

	// Retries that still cannot cover the need keep the degraded report:
	// 10 -> 40 states remains below the ~200 the path requires.
	rep, err = AnalyzeSource("fig1.php", fig1, WithSolverLimits(10, 0), WithExhaustedRetries(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExhaustedPaths != 1 || len(rep.Findings) != 0 {
		t.Fatalf("undersized-retry run: exhausted=%d findings=%d, want 1/0", rep.ExhaustedPaths, len(rep.Findings))
	}
}
