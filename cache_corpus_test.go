package dprle_test

// Corpus-wide acceptance tests for the solve cache: answers served from the
// cache must be indistinguishable from fresh solves on the whole Figure 12
// corpus (witnesses verified against the constraint checker), and the warm
// path must actually deliver the order-of-magnitude speedup the cache
// exists for. `make bench-cache` runs these with -benchtime=1x as the CI
// smoke job: the benchmarks measure, the tests gate.

import (
	"testing"

	"dprle/internal/core"
	"dprle/internal/experiments"
	"dprle/internal/nfa"
	"dprle/internal/solvecache"
	"dprle/internal/symexec"
)

func corpusSystems(tb testing.TB) []*symexec.PathSystem {
	tb.Helper()
	systems, err := experiments.CorpusSystems(true)
	if err != nil {
		tb.Fatal(err)
	}
	if len(systems) == 0 {
		tb.Fatal("corpus produced no constraint systems")
	}
	return systems
}

// TestCacheCorpusEquivalence proves cached ≡ uncached over the whole
// corpus: every system is solved fresh and against a cache warmed by a
// structurally identical (but independently built) batch, and the two
// results must agree — same satisfiability, same number of disjuncts,
// language-equivalent machines variable by variable — with every cached
// assignment independently verified against the system's constraints.
func TestCacheCorpusEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("solves the corpus three times")
	}
	opts := core.Options{}
	cache := solvecache.New(solvecache.Config{})
	warmOpts := opts
	warmOpts.Cache = cache

	// Warm the cache from an independently built batch, so every cached
	// entry was keyed through canonicalization of *different* machine
	// pointers and state numberings than the ones queried below.
	for _, ps := range corpusSystems(t) {
		if _, err := core.SolveFor(ps.Sys, ps.Inputs, warmOpts); err != nil {
			t.Fatalf("warming on %s: %v", ps.Sink.Kind, err)
		}
	}
	before := cache.Stats()

	fresh := corpusSystems(t)
	for _, ps := range fresh {
		plain, err := core.SolveFor(ps.Sys, ps.Inputs, opts)
		if err != nil {
			t.Fatalf("uncached solve on %s: %v", ps.Sink.Kind, err)
		}
		cached, err := core.SolveFor(ps.Sys, ps.Inputs, warmOpts)
		if err != nil {
			t.Fatalf("cached solve on %s: %v", ps.Sink.Kind, err)
		}
		if plain.Sat() != cached.Sat() {
			t.Fatalf("%s: uncached sat=%v, cached sat=%v", ps.Sink.Kind, plain.Sat(), cached.Sat())
		}
		if len(plain.Assignments) != len(cached.Assignments) {
			t.Fatalf("%s: uncached %d disjuncts, cached %d",
				ps.Sink.Kind, len(plain.Assignments), len(cached.Assignments))
		}
		for i := range plain.Assignments {
			for _, v := range ps.Sys.Vars() {
				a, b := plain.Assignments[i].Lookup(v), cached.Assignments[i].Lookup(v)
				if !nfa.Equivalent(a, b) {
					t.Fatalf("%s: disjunct %d, variable %s: cached language differs from uncached",
						ps.Sink.Kind, i, v)
				}
			}
		}
		// The cached answers must hold up under the independent checker,
		// not merely match. SolveFor is partial — variables outside the
		// requested set legitimately stay at Σ*, which need not satisfy
		// their own constraints — so first-principles verification runs on
		// the full solve, where every constraint is in scope. A shared bug
		// in solve-and-store would survive the comparisons above but not
		// this.
		plainFull, err := core.Solve(ps.Sys, opts)
		if err != nil {
			t.Fatalf("uncached full solve on %s: %v", ps.Sink.Kind, err)
		}
		cachedFull, err := core.Solve(ps.Sys, warmOpts)
		if err != nil {
			t.Fatalf("cached full solve on %s: %v", ps.Sink.Kind, err)
		}
		if plainFull.Sat() != cachedFull.Sat() || len(plainFull.Assignments) != len(cachedFull.Assignments) {
			t.Fatalf("%s: full solve disagrees: uncached sat=%v/%d, cached sat=%v/%d",
				ps.Sink.Kind, plainFull.Sat(), len(plainFull.Assignments),
				cachedFull.Sat(), len(cachedFull.Assignments))
		}
		for i, a := range cachedFull.Assignments {
			if !core.Satisfies(ps.Sys, a) {
				t.Fatalf("%s: cached disjunct %d does not satisfy the system", ps.Sink.Kind, i)
			}
		}
	}
	after := cache.Stats()
	if after.Hits <= before.Hits {
		t.Fatalf("verification pass never hit the cache: before %+v, after %+v", before, after)
	}
}

// TestCacheCorpusSpeedup is the acceptance bound: a corpus pass answered
// from the warm cache must be several times faster than the same pass with
// caching disabled. The bound was 10x against the original deep-copy/[]bool
// NFA substrate; the zero-copy/bitset rework made *cold* solves ~4x faster
// while the warm path (dominated by canonical keying) gained less, so the
// honest floor is now 3x. The experiment already takes best-of-N per pass;
// the retry loop tolerates a CI neighbor stealing the machine
// mid-measurement.
func TestCacheCorpusSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive corpus measurement")
	}
	const want = 3.0
	var rep experiments.CacheReport
	for attempt := 1; ; attempt++ {
		var err error
		rep, err = experiments.CacheExperiment(core.Options{}, true)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Speedup >= want || attempt == 3 {
			break
		}
		t.Logf("attempt %d: speedup %.1fx < %.0fx, remeasuring", attempt, rep.Speedup, want)
	}
	if rep.Speedup < want {
		t.Fatalf("warm/cold speedup %.1fx, want >= %.0fx (cold %dns, warm %dns over %d systems)",
			rep.Speedup, want, rep.ColdNS, rep.WarmNS, rep.Systems)
	}
	if rep.Cache.Hits == 0 || rep.Cache.Puts == 0 {
		t.Fatalf("experiment ran without cache traffic: %+v", rep.Cache)
	}
	if rep.FlightSolves != 1 || rep.FlightShared != rep.FlightCalls-1 {
		t.Fatalf("collapsing demo executed %d, shared %d of %d",
			rep.FlightSolves, rep.FlightShared, rep.FlightCalls)
	}
}

// BenchmarkCacheCold solves the corpus with caching disabled: the baseline
// the warm benchmark is read against.
func BenchmarkCacheCold(b *testing.B) {
	b.ReportAllocs()
	opts := core.Options{}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		systems := corpusSystems(b)
		b.StartTimer()
		for _, ps := range systems {
			if _, err := core.SolveFor(ps.Sys, ps.Inputs, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCacheWarm solves freshly rebuilt corpus systems against a
// pre-filled cache: the memoized path, canonicalization included.
func BenchmarkCacheWarm(b *testing.B) {
	b.ReportAllocs()
	opts := core.Options{Cache: solvecache.New(solvecache.Config{})}
	for _, ps := range corpusSystems(b) {
		if _, err := core.SolveFor(ps.Sys, ps.Inputs, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		systems := corpusSystems(b)
		b.StartTimer()
		for _, ps := range systems {
			if _, err := core.SolveFor(ps.Sys, ps.Inputs, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}
