package core

import "dprle/internal/nfa"

// CISolution is one disjunctive solution to a Concatenation-Intersection
// instance: an assignment [v1 ↦ V1, v2 ↦ V2] (paper §3.2).
type CISolution struct {
	V1, V2 *nfa.NFA
}

// CITrace exposes the intermediate machines of the concat_intersect
// algorithm, mirroring Fig. 3/4: M4 recognizes c1·c2, M5 recognizes
// (c1·c2) ∩ c3, and Seams lists the surviving ε-transitions between the
// paper's Qlhs and Qrhs state families.
type CITrace struct {
	M4    *nfa.NFA
	M5    *nfa.NFA
	Seams []nfa.TaggedEdge
}

// ConcatIntersect solves the CI problem
//
//	v1 ⊆ c1,  v2 ⊆ c2,  v1·v2 ⊆ c3
//
// following Fig. 3 of the paper: build M4 = c1·c2 with a single seam
// ε-transition, build M5 = M4 ∩ c3 by the cross-product construction, then
// emit one solution per surviving seam edge (q_a, q_b) — v1 is M5 with q_a
// as the only final state (induce_from_final) and v2 is M5 with q_b as the
// only start state (induce_from_start). Solutions in which either machine is
// empty are rejected, and solutions with identical language pairs are
// deduplicated.
func ConcatIntersect(c1, c2, c3 *nfa.NFA) []CISolution {
	sols, _ := ConcatIntersectTrace(c1, c2, c3)
	return sols
}

// ConcatIntersectTrace is ConcatIntersect, additionally returning the
// intermediate machines for inspection (Fig. 4 reproduces them).
func ConcatIntersectTrace(c1, c2, c3 *nfa.NFA) ([]CISolution, *CITrace) {
	const seamTag = 0
	m4 := nfa.ConcatTagged(c1, c2, seamTag)
	m5 := nfa.Intersect(m4, c3).Trim()
	trace := &CITrace{M4: m4, M5: m5, Seams: m5.TaggedEdges()}

	var out []CISolution
	seen := map[[2]string]bool{}
	for _, seam := range trace.Seams {
		v1 := m5.Induce(m5.Start(), seam.From) // induce_from_final(M5, q_a)
		v2 := m5.Induce(seam.To, m5.Final())   // induce_from_start(M5, q_b)
		if v1.IsEmpty() || v2.IsEmpty() {
			continue
		}
		key := [2]string{nfa.Fingerprint(v1), nfa.Fingerprint(v2)}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, CISolution{V1: v1, V2: v2})
	}
	return out, trace
}
