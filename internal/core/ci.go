package core

import (
	"fmt"

	"dprle/internal/budget"
	"dprle/internal/nfa"
)

// CISolution is one disjunctive solution to a Concatenation-Intersection
// instance: an assignment [v1 ↦ V1, v2 ↦ V2] (paper §3.2).
type CISolution struct {
	V1, V2 *nfa.NFA
}

// CITrace exposes the intermediate machines of the concat_intersect
// algorithm, mirroring Fig. 3/4: M4 recognizes c1·c2, M5 recognizes
// (c1·c2) ∩ c3, and Seams lists the surviving ε-transitions between the
// paper's Qlhs and Qrhs state families.
type CITrace struct {
	M4    *nfa.NFA
	M5    *nfa.NFA
	Seams []nfa.TaggedEdge
}

// ConcatIntersect solves the CI problem
//
//	v1 ⊆ c1,  v2 ⊆ c2,  v1·v2 ⊆ c3
//
// following Fig. 3 of the paper: build M4 = c1·c2 with a single seam
// ε-transition, build M5 = M4 ∩ c3 by the cross-product construction, then
// emit one solution per surviving seam edge (q_a, q_b) — v1 is M5 with q_a
// as the only final state (induce_from_final) and v2 is M5 with q_b as the
// only start state (induce_from_start). Solutions in which either machine is
// empty are rejected, and solutions with identical language pairs are
// deduplicated.
func ConcatIntersect(c1, c2, c3 *nfa.NFA) []CISolution {
	sols, _ := ConcatIntersectTrace(c1, c2, c3)
	return sols
}

// ConcatIntersectB is ConcatIntersect under a resource budget. On
// exhaustion it returns the (verified, nonempty) solutions sliced out
// before the trip together with the budget's *Exhausted error.
func ConcatIntersectB(bud *budget.Budget, c1, c2, c3 *nfa.NFA) ([]CISolution, error) {
	sols, _, err := concatIntersectB(bud, c1, c2, c3)
	return sols, err
}

// ConcatIntersectTrace is ConcatIntersect, additionally returning the
// intermediate machines for inspection (Fig. 4 reproduces them).
func ConcatIntersectTrace(c1, c2, c3 *nfa.NFA) ([]CISolution, *CITrace) {
	sols, trace, _ := concatIntersectB(nil, c1, c2, c3) // nil budget cannot fail (see budget.Budget)
	return sols, trace
}

func concatIntersectB(bud *budget.Budget, c1, c2, c3 *nfa.NFA) ([]CISolution, *CITrace, error) {
	const seamTag = 0
	m4 := nfa.ConcatTagged(c1, c2, seamTag)
	m5i, err := nfa.IntersectB(bud, m4, c3)
	if err != nil {
		return nil, nil, err
	}
	m5 := m5i.Trim()
	trace := &CITrace{M4: m4, M5: m5, Seams: m5.TaggedEdges()}

	var out []CISolution
	seen := map[[2]string]bool{}
	for si, seam := range trace.Seams {
		if err := bud.Check("ci.seams"); err != nil {
			return out, trace, err
		}
		// Induce returns O(1) views; emptiness on a view early-exits, so
		// dead seams cost no copies at all. Trim only the survivors — the
		// solutions handed to callers stay structurally minimal.
		v1 := m5.Induce(m5.Start(), seam.From) // induce_from_final(M5, q_a)
		v2 := m5.Induce(seam.To, m5.Final())   // induce_from_start(M5, q_b)
		if v1.IsEmpty() || v2.IsEmpty() {
			continue
		}
		v1, v2 = v1.Trim(), v2.Trim()
		key, keyed := seamKey(bud, v1, v2, si)
		if keyed && seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, CISolution{V1: v1, V2: v2})
	}
	return out, trace, nil
}

// seamKey fingerprints a solution pair for dedup; when the budget trips
// mid-fingerprint the key degrades to one unique per seam index so the
// solution is kept rather than wrongly merged.
func seamKey(bud *budget.Budget, v1, v2 *nfa.NFA, ord int) ([2]string, bool) {
	f1, err := nfa.FingerprintB(bud, v1)
	if err != nil {
		return [2]string{fmt.Sprintf("!seam%d", ord), ""}, false
	}
	f2, err := nfa.FingerprintB(bud, v2)
	if err != nil {
		return [2]string{fmt.Sprintf("!seam%d", ord), ""}, false
	}
	return [2]string{f1, f2}, true
}
