package core

import (
	"testing"

	"dprle/internal/nfa"
	"dprle/internal/regex"
)

// A system with two independent parts: a CI-group over (v1) and an
// expensive-looking free pair (w1, w2).
func partialSystem(t *testing.T) *System {
	t.Helper()
	s := NewSystem()
	c1 := s.MustConst("c1", regex.MustMatchLanguage(`[\d]+$`))
	c2 := s.MustConst("c2", nfa.Literal("nid_"))
	c3 := s.MustConst("c3", regex.MustMatchLanguage(`'`))
	cw := s.MustConst("cw", regex.MustCompile("[a-z]+"))
	s.MustAdd(Var{"v1"}, c1)
	s.MustAdd(Cat{Left: c2, Right: Var{"v1"}}, c3)
	s.MustAdd(Var{"w1"}, cw)
	s.MustAdd(Var{"w2"}, cw)
	return s
}

func TestSolveForSubsetOfVars(t *testing.T) {
	s := partialSystem(t)
	res, err := SolveFor(s, []string{"v1"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 1 {
		t.Fatalf("assignments = %d", len(res.Assignments))
	}
	a := res.Assignments[0]
	// v1 is solved exactly as Solve would.
	if !a.Lookup("v1").Accepts("'5") || a.Lookup("v1").Accepts("5") {
		t.Fatal("v1 not solved")
	}
	// w1/w2 were not requested: they stay at Σ*.
	if !nfa.Equivalent(a.Lookup("w1"), nfa.AnyString()) {
		t.Fatal("unrelated variable should remain Σ*")
	}
}

func TestSolveForFreeVariable(t *testing.T) {
	s := partialSystem(t)
	res, err := SolveFor(s, []string{"w1"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Assignments[0]
	if !nfa.Equivalent(a.Lookup("w1"), regex.MustCompile("[a-z]+")) {
		t.Fatal("w1 not reduced")
	}
	// The CI-group was untouched: v1 stays Σ*.
	if !nfa.Equivalent(a.Lookup("v1"), nfa.AnyString()) {
		t.Fatal("v1 should remain Σ*")
	}
}

func TestSolveForGroupBringsNeighbors(t *testing.T) {
	// Asking for one variable of a CI-group solves the whole group.
	s := NewSystem()
	c1 := s.MustConst("c1", regex.MustCompile("a+"))
	c2 := s.MustConst("c2", regex.MustCompile("b+"))
	c3 := s.MustConst("c3", regex.MustCompile("aabb"))
	s.MustAdd(Var{"x"}, c1)
	s.MustAdd(Var{"y"}, c2)
	s.MustAdd(Cat{Left: Var{"x"}, Right: Var{"y"}}, c3)
	res, err := SolveFor(s, []string{"x"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Assignments[0]
	if !nfa.Equivalent(a.Lookup("x"), nfa.Literal("aa")) {
		t.Fatal("x wrong")
	}
	if !nfa.Equivalent(a.Lookup("y"), nfa.Literal("bb")) {
		t.Fatal("group neighbor y should be solved too")
	}
}

func TestSolveForUnsatGroup(t *testing.T) {
	s := NewSystem()
	c1 := s.MustConst("c1", regex.MustCompile("a+"))
	c2 := s.MustConst("c2", regex.MustCompile("b+"))
	c3 := s.MustConst("c3", regex.MustCompile("c+"))
	s.MustAdd(Var{"x"}, c1)
	s.MustAdd(Var{"y"}, c2)
	s.MustAdd(Cat{Left: Var{"x"}, Right: Var{"y"}}, c3)
	res, err := SolveFor(s, []string{"x"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sat() {
		t.Fatal("group is unsatisfiable")
	}
}

func TestSolveForUnknownVariable(t *testing.T) {
	s := partialSystem(t)
	res, err := SolveFor(s, []string{"nosuch"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sat() {
		t.Fatal("unknown variable should not make the result unsat")
	}
	if !nfa.Equivalent(res.Assignments[0].Lookup("nosuch"), nfa.AnyString()) {
		t.Fatal("unknown variables are unconstrained (Σ*)")
	}
}

func TestSolveForAgreesWithSolve(t *testing.T) {
	s := partialSystem(t)
	full, err := Solve(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	part, err := SolveFor(s, []string{"v1", "w1", "w2"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Assignments) != len(part.Assignments) {
		t.Fatalf("assignment counts differ: %d vs %d", len(full.Assignments), len(part.Assignments))
	}
	// Note: SolveFor skips maximalization-collapse across groups; compare
	// variable languages directly on the single assignment.
	for _, v := range []string{"v1", "w1", "w2"} {
		if !nfa.Equivalent(full.Assignments[0].Lookup(v), part.Assignments[0].Lookup(v)) {
			t.Errorf("%s differs between Solve and SolveFor", v)
		}
	}
}
