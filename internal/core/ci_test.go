package core

import (
	"testing"

	"dprle/internal/nfa"
	"dprle/internal/regex"
)

// Figure 4 of the paper: c1 = "nid_", c2 = Σ*[0-9] (the faulty filter),
// c3 = Σ*'Σ* (queries containing a single quote). The paper draws the
// minimal machines, so the fixture canonicalizes the regex-compiled inputs;
// this makes the seam count (and hence the disjunct count) match Fig. 4
// exactly. ConcatIntersect itself is structure-faithful and would otherwise
// report one disjunct per surviving seam edge of the Thompson machines.
func fig4Inputs() (c1, c2, c3 *nfa.NFA) {
	c1 = nfa.Literal("nid_")
	c2 = nfa.Minimized(regex.MustMatchLanguage(`[\d]+$`))
	c3 = nfa.Minimized(regex.MustMatchLanguage(`'`))
	return
}

func TestFigure4Pipeline(t *testing.T) {
	c1, c2, c3 := fig4Inputs()
	sols, trace := ConcatIntersectTrace(c1, c2, c3)

	// M4 recognizes c1·c2 and carries exactly one seam tag.
	if !trace.M4.Accepts("nid_9") || trace.M4.Accepts("nid_") {
		t.Fatal("M4 wrong")
	}
	if len(trace.M4.Tags()) != 1 {
		t.Fatalf("M4 tags = %v", trace.M4.Tags())
	}
	// M5 = (c1·c2) ∩ c3.
	if !trace.M5.Accepts("nid_'9") || trace.M5.Accepts("nid_9") {
		t.Fatal("M5 wrong")
	}
	if len(trace.Seams) == 0 {
		t.Fatal("no seams survived the intersection")
	}

	if len(sols) != 1 {
		t.Fatalf("solutions = %d, want 1", len(sols))
	}
	// Paper: [x'1] = L(nid_).
	if !nfa.Equivalent(sols[0].V1, nfa.Literal("nid_")) {
		w, _ := sols[0].V1.ShortestWitness()
		t.Fatalf("V1 ≠ {nid_}; witness %q", w)
	}
	// x''1: strings that contain a quote and end with a digit.
	v2 := sols[0].V2
	for _, w := range []string{"'5", "ab'cd9", "' OR 1=1 ; DROP news --9"} {
		if !v2.Accepts(w) {
			t.Errorf("V2 should accept %q", w)
		}
	}
	for _, w := range []string{"5", "'x", "", "nid_'5x"} {
		if v2.Accepts(w) {
			t.Errorf("V2 should reject %q", w)
		}
	}
	want := nfa.Intersect(c2, c3)
	if !nfa.Equivalent(v2, want) {
		t.Fatal("V2 should be exactly c2 ∩ c3 here")
	}
}

func TestCICorrectnessProperties(t *testing.T) {
	c1, c2, c3 := fig4Inputs()
	sols := ConcatIntersect(c1, c2, c3)
	// Satisfying (paper §3.3, condition 2).
	for i, s := range sols {
		if !nfa.Subset(s.V1, c1) {
			t.Errorf("solution %d: V1 ⊄ c1", i)
		}
		if !nfa.Subset(s.V2, c2) {
			t.Errorf("solution %d: V2 ⊄ c2", i)
		}
		if !nfa.Subset(nfa.Concat(s.V1, s.V2), c3) {
			t.Errorf("solution %d: V1·V2 ⊄ c3", i)
		}
	}
	// All-Solutions (condition 3).
	if !CheckAllSolutions(c1, c2, c3, sols) {
		t.Fatal("solutions do not cover (c1·c2) ∩ c3")
	}
}

func TestCIEmptyIntersection(t *testing.T) {
	// c3 requires a quote but c1·c2 cannot produce one.
	sols := ConcatIntersect(nfa.Literal("abc"), nfa.Literal("def"), regex.MustMatchLanguage("'"))
	if len(sols) != 0 {
		t.Fatalf("solutions = %d, want 0", len(sols))
	}
}

func TestCIEmptyOperand(t *testing.T) {
	sols := ConcatIntersect(nfa.Empty(), nfa.Literal("a"), nfa.AnyString())
	if len(sols) != 0 {
		t.Fatal("empty c1 admits no nonempty solutions")
	}
}

func TestCISolutionCountBoundedByC3States(t *testing.T) {
	// Paper §3.5: the number of solutions is bounded by |M3|.
	c1 := nfa.Star(nfa.Class(nfa.Range('a', 'b')))
	c2 := nfa.Star(nfa.Class(nfa.Range('a', 'b')))
	c3 := regex.MustCompile("a{0,3}")
	sols := ConcatIntersect(c1, c2, c3)
	if len(sols) == 0 {
		t.Fatal("expected solutions")
	}
	if len(sols) > c3.NumStates() {
		t.Fatalf("solutions = %d exceeds |M3| = %d", len(sols), c3.NumStates())
	}
	if !CheckAllSolutions(c1, c2, c3, sols) {
		t.Fatal("coverage violated")
	}
}

func TestCIDisjunctiveSplits(t *testing.T) {
	// §3.1.1 second example, phrased as CI: v1 ⊆ x(yy)+, v2 ⊆ (yy)*z,
	// v1·v2 ⊆ xyyz|xyyyyz.
	c1 := regex.MustCompile("x(yy)+")
	c2 := regex.MustCompile("(yy)*z")
	c3 := regex.MustCompile("xyyz|xyyyyz")
	sols := ConcatIntersect(c1, c2, c3)
	if len(sols) == 0 {
		t.Fatal("expected solutions")
	}
	if !CheckAllSolutions(c1, c2, c3, sols) {
		t.Fatal("coverage violated")
	}
	// Every (V1, V2) pair must be satisfying.
	for _, s := range sols {
		if !nfa.Subset(s.V1, c1) || !nfa.Subset(s.V2, c2) ||
			!nfa.Subset(nfa.Concat(s.V1, s.V2), c3) {
			t.Fatal("satisfying violated")
		}
	}
	// The splits xyy·z, xyy·yyz and xyyyy·z must all be covered.
	covered := func(a, b string) bool {
		for _, s := range sols {
			if s.V1.Accepts(a) && s.V2.Accepts(b) {
				return true
			}
		}
		return false
	}
	if !covered("xyy", "z") || !covered("xyy", "yyz") || !covered("xyyyy", "z") {
		t.Fatal("a required split is missing")
	}
}

func TestCIDeduplicatesIdenticalSolutions(t *testing.T) {
	// A constant machine with redundant parallel states yields several seam
	// edges with identical induced languages; they must be merged.
	c1 := nfa.UnionAll(nfa.Literal("a"), nfa.Literal("a"), nfa.Literal("a"))
	c2 := nfa.Literal("b")
	c3 := nfa.Literal("ab")
	sols := ConcatIntersect(c1, c2, c3)
	if len(sols) != 1 {
		t.Fatalf("solutions = %d, want 1 after dedup", len(sols))
	}
}
