package core

import (
	"sort"
	"strings"
	"testing"

	"dprle/internal/regex"
)

// Determinism regression tests: the solver's disjunct order and the
// serialized form of every solution language must be byte-identical across
// runs. The solver iterates several maps internally (witness collection,
// seam-combo evaluation, CI-group output); each of these is required to
// iterate in sorted order, and these tests catch any regression by solving
// the same multi-disjunct systems repeatedly and comparing full transcripts.

// disjunctiveSystems returns fresh builds of three systems whose solutions
// are inherently disjunctive, keyed by name. Fresh construction matters:
// map seeds differ per map value, so reusing one *System would mask
// order-dependence in system construction itself.
func disjunctiveSystems(t *testing.T) map[string]*System {
	t.Helper()
	out := map[string]*System{}

	// Paper §3.1.1: two disjunctive maximal assignments.
	s1 := NewSystem()
	c1 := s1.MustConst("c1", regex.MustCompile("x(yy)+"))
	c2 := s1.MustConst("c2", regex.MustCompile("(yy)*z"))
	c3 := s1.MustConst("c3", regex.MustCompile("xyyz|xyyyyz"))
	s1.MustAdd(Var{"v1"}, c1)
	s1.MustAdd(Var{"v2"}, c2)
	s1.MustAdd(Cat{Left: Var{"v1"}, Right: Var{"v2"}}, c3)
	out["sec311"] = s1

	// Three-way concatenation through one CI-group: seam choices multiply.
	s2 := NewSystem()
	d1 := s2.MustConst("d1", regex.MustCompile("a+"))
	d2 := s2.MustConst("d2", regex.MustCompile("a+b*"))
	d3 := s2.MustConst("d3", regex.MustCompile("aab|aaab|aaaab"))
	s2.MustAdd(Var{"w1"}, d1)
	s2.MustAdd(Var{"w2"}, d2)
	s2.MustAdd(Cat{Left: Var{"w1"}, Right: Var{"w2"}}, d3)
	out["seams"] = s2

	// Two independent CI-groups: the worklist combines their disjuncts as a
	// Cartesian product, so group order and per-group disjunct order both
	// show up in the output order.
	s3 := NewSystem()
	e1 := s3.MustConst("e1", regex.MustCompile("x(yy)+"))
	e2 := s3.MustConst("e2", regex.MustCompile("(yy)*z"))
	e3 := s3.MustConst("e3", regex.MustCompile("xyyz|xyyyyz"))
	f1 := s3.MustConst("f1", regex.MustCompile("p+"))
	f2 := s3.MustConst("f2", regex.MustCompile("p*q"))
	f3 := s3.MustConst("f3", regex.MustCompile("ppq|pppq"))
	s3.MustAdd(Var{"g1"}, e1)
	s3.MustAdd(Var{"g2"}, e2)
	s3.MustAdd(Cat{Left: Var{"g1"}, Right: Var{"g2"}}, e3)
	s3.MustAdd(Var{"h1"}, f1)
	s3.MustAdd(Var{"h2"}, f2)
	s3.MustAdd(Cat{Left: Var{"h1"}, Right: Var{"h2"}}, f3)
	out["twogroups"] = s3

	return out
}

// transcript renders a Result fully: assignments in solver order, variables
// sorted within each, every language in its serialized wire form.
func transcript(res *Result) string {
	var b strings.Builder
	for i, a := range res.Assignments {
		var vars []string
		for v := range a {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		for _, v := range vars {
			b.WriteString("assignment ")
			b.WriteString(strings.Repeat("#", i+1))
			b.WriteString(" var ")
			b.WriteString(v)
			b.WriteString("\n")
			b.WriteString(a[v].Marshal())
		}
	}
	return b.String()
}

// TestSolveDeterministic solves each system 20 times from a fresh build and
// requires byte-identical transcripts: same number of disjuncts, same
// order, same serialized language bytes.
func TestSolveDeterministic(t *testing.T) {
	const runs = 20
	for _, name := range []string{"sec311", "seams", "twogroups"} {
		name := name
		t.Run(name, func(t *testing.T) {
			var want string
			for i := 0; i < runs; i++ {
				s := disjunctiveSystems(t)[name]
				res, err := Solve(s, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Assignments) < 2 {
					t.Fatalf("system %s produced %d assignments; need ≥2 for the order to be meaningful",
						name, len(res.Assignments))
				}
				got := transcript(res)
				if i == 0 {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("run %d transcript differs from run 0:\n--- run 0 ---\n%s\n--- run %d ---\n%s",
						i, want, i, got)
				}
			}
		})
	}
}
