package core

import (
	"context"
	"errors"

	"dprle/internal/budget"
	"dprle/internal/faultinject"
	"dprle/internal/nfa"
)

// Partial solving. The paper highlights "the possibility of solving either
// part or all of the graph depending on the needs of the client analysis"
// (§4). SolveFor restricts work to the sub-graph the requested variables
// depend on: only CI-groups containing a variable of interest are solved
// with gci, and only free variables of interest are reduced; everything
// else keeps the initial Σ* assignment.

// SolveFor solves the system for the given variables only. The returned
// assignments are complete over `interest` (and any variables sharing a
// CI-group with them); unrelated variables are reported as Σ*, which is
// their correct value in any maximal assignment that ignores their
// constraints. Semantics for the covered variables are identical to Solve.
func SolveFor(s *System, interest []string, opts Options) (*Result, error) {
	return SolveForCtx(context.Background(), s, interest, opts)
}

// SolveForCtx is SolveFor under a resource budget, with the same
// degradation semantics as SolveCtx: on exhaustion the verified partial
// result is returned alongside a *budget.Exhausted error, and an empty
// Result with a non-nil error means "unknown", not unsat.
func SolveForCtx(ctx context.Context, s *System, interest []string, opts Options) (*Result, error) {
	bud := budget.New(ctx, opts.Limits)
	// Fast path: reject an already-expired context before any work (see
	// SolveCtx).
	if err := bud.Preflight("solve-for.preflight"); err != nil {
		return &Result{Usage: bud.Usage()}, err
	}
	res, err := solveForBudget(s, interest, opts, bud)
	if res == nil {
		res = &Result{}
	}
	res.Usage = bud.Usage()
	return res, err
}

func solveForBudget(s *System, interest []string, opts Options, bud *budget.Budget) (*Result, error) {
	want := map[string]bool{}
	for _, v := range interest {
		want[v] = true
	}
	g := BuildGraph(s)
	canon := newConstCache(opts, bud)

	// Free variables of interest reduce by intersection.
	base := Assignment{}
	covered := map[string]bool{}
	for _, id := range g.FreeVars() {
		n := g.Nodes[id]
		if !want[n.Name] {
			continue
		}
		if err := bud.Check("solve-for.free-vars"); err != nil {
			return nil, err
		}
		var fvKey string
		if opts.Cache != nil {
			fvKey = freeVarKey(g, id, opts)
			if cached, ok := lookupFreeVar(opts.Cache, fvKey); ok {
				base[n.Name] = cached
				covered[n.Name] = true
				continue
			}
		}
		lang := nfa.AnyString()
		for _, c := range g.SubsetsInto(id) {
			li, err := nfa.IntersectB(bud, lang, canon.get(c))
			if err != nil {
				return nil, err
			}
			lang = li.Trim()
		}
		if opts.Cache != nil {
			if err := storeFreeVar(opts.Cache, fvKey, lang, bud); err != nil {
				return nil, err
			}
		}
		base[n.Name] = lang
		covered[n.Name] = true
	}

	// CI-groups touching a variable of interest are solved integrally; a
	// group cannot be split, so its other variables come along.
	var touchedGroups [][]int
	for _, group := range g.CIGroups() {
		for _, id := range group {
			if g.Nodes[id].Kind == VarNode && want[g.Nodes[id].Name] {
				touchedGroups = append(touchedGroups, group)
				break
			}
		}
	}
	solver := &gciSolver{g: g, opts: opts, canon: canon, bud: bud, varLang: map[int]*nfa.NFA{}, built: map[int]*nfa.NFA{}}
	var maxer *maximizer // built on first fresh group: an all-hits solve never pays for it
	var perGroup [][]map[int]*nfa.NFA
	var exhaustedErr error
	for gi, group := range touchedGroups {
		var key string
		var sols []map[int]*nfa.NFA
		var trunc, hit bool
		var err error
		if opts.Cache != nil {
			key = componentKey(g, group, opts)
			sols, trunc, hit = lookupGroup(opts.Cache, key, group)
		}
		if !hit {
			sols, trunc, err = solver.solveGroupTrunc(group)
		}
		if err != nil {
			var ex *budget.Exhausted
			if !errors.As(err, &ex) {
				return nil, err
			}
			// A partial result is only usable when every group of interest
			// contributed verified disjuncts: an unsolved group would leave
			// its variables at Σ*, which need not satisfy their constraints.
			if len(sols) == 0 || gi < len(touchedGroups)-1 {
				return &Result{}, err
			}
			exhaustedErr = err
		} else if len(sols) == 0 {
			// Genuine unsat: cache the proof, unless a fault trips the fill,
			// in which case the answer degrades to unknown.
			if !hit {
				if serr := storeGroup(opts.Cache, key, group, nil, trunc, bud); serr != nil {
					return &Result{}, serr
				}
			}
			return &Result{}, nil
		}
		for _, id := range group {
			if g.Nodes[id].Kind == VarNode {
				covered[g.Nodes[id].Name] = true
			}
		}
		if !opts.NoMaximalize && !hit {
			if maxer == nil {
				maxer = newMaximizer(s, bud)
			}
			sols = maximalizeGroup(maxer, g, group, sols)
		}
		if !hit && err == nil {
			if serr := storeGroup(opts.Cache, key, group, sols, trunc, bud); serr != nil {
				if exhaustedErr == nil {
					exhaustedErr = serr
				}
			}
		}
		perGroup = append(perGroup, sols)
	}

	// Remaining variables (not requested, or requested but absent from the
	// system) default to Σ*.
	for _, v := range s.Vars() {
		if !covered[v] {
			base[v] = nfa.AnyString()
		}
	}
	for _, v := range interest {
		if _, ok := base[v]; !ok && !covered[v] {
			base[v] = nfa.AnyString()
		}
	}

	res := &Result{}
	assignments := []Assignment{base}
	for _, sols := range perGroup {
		if faultinject.Fire(faultinject.GroupProduct) {
			return &Result{}, bud.Inject("solve-for.group-product")
		}
		var next []Assignment
		for _, a := range assignments {
			for _, sol := range sols {
				merged := Assignment{}
				for k, v := range a {
					merged[k] = v
				}
				for id, lang := range sol {
					merged[g.Nodes[id].Name] = lang
				}
				next = append(next, merged)
				if len(next) >= opts.maxSolutions() {
					res.Truncated = true
					break
				}
			}
			if len(next) >= opts.maxSolutions() {
				break
			}
		}
		assignments = next
	}
	for _, a := range assignments {
		for v, lang := range a {
			if covered[v] && lang.IsEmpty() {
				if exhaustedErr != nil {
					return &Result{}, exhaustedErr
				}
				return &Result{}, nil
			}
		}
	}
	res.Assignments = assignments
	return res, exhaustedErr
}
