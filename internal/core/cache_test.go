package core

import (
	"errors"
	"sync"
	"testing"

	"dprle/internal/budget"
	"dprle/internal/faultinject"
	"dprle/internal/nfa"
	"dprle/internal/regex"
	"dprle/internal/solvecache"
)

// disjSystem builds the §3.1.1 disjunctive example under configurable
// variable and constant names, so tests can prove cache keys are
// name-invariant: v1 ⊆ x(yy)+, v2 ⊆ (yy)*z, v1·v2 ⊆ xyyz|xyyyyz.
func disjSystem(v1, v2, c1n, c2n, c3n string) *System {
	s := NewSystem()
	c1 := s.MustConst(c1n, regex.MustCompile("x(yy)+"))
	c2 := s.MustConst(c2n, regex.MustCompile("(yy)*z"))
	c3 := s.MustConst(c3n, regex.MustCompile("xyyz|xyyyyz"))
	s.MustAdd(Var{v1}, c1)
	s.MustAdd(Var{v2}, c2)
	s.MustAdd(Cat{Left: Var{v1}, Right: Var{v2}}, c3)
	return s
}

// requireEquivalent checks that two results carry the same assignments up
// to language equivalence, pairing disjuncts greedily.
func requireEquivalent(t *testing.T, s *System, a, b *Result) {
	t.Helper()
	if len(a.Assignments) != len(b.Assignments) {
		t.Fatalf("assignment counts differ: %d vs %d", len(a.Assignments), len(b.Assignments))
	}
	if a.Truncated != b.Truncated {
		t.Fatalf("truncated flags differ: %t vs %t", a.Truncated, b.Truncated)
	}
	used := make([]bool, len(b.Assignments))
	for _, aa := range a.Assignments {
		found := false
		for j, ba := range b.Assignments {
			if used[j] {
				continue
			}
			same := true
			for _, v := range s.Vars() {
				if !nfa.Equivalent(aa.Lookup(v), ba.Lookup(v)) {
					same = false
					break
				}
			}
			if same {
				used[j] = true
				found = true
				break
			}
		}
		if !found {
			t.Fatal("an assignment from the first result has no equivalent in the second")
		}
	}
}

// TestCacheHitEquivalence is the core correctness contract: a warm solve
// must return results equivalent to the cold solve, and both must genuinely
// satisfy the system maximally.
func TestCacheHitEquivalence(t *testing.T) {
	cache := solvecache.New(solvecache.Config{})
	opts := Options{Cache: cache}

	cold, err := Solve(disjSystem("v1", "v2", "c1", "c2", "c3"), opts)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	st := cache.Stats()
	if st.Puts == 0 {
		t.Fatal("cold solve stored nothing")
	}
	if st.Hits != 0 {
		t.Fatalf("cold solve hit %d times, want 0", st.Hits)
	}

	s2 := disjSystem("v1", "v2", "c1", "c2", "c3")
	warm, err := Solve(s2, opts)
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	if got := cache.Stats().Hits; got == 0 {
		t.Fatal("warm solve of an identical system missed the cache")
	}
	requireEquivalent(t, s2, cold, warm)
	for _, a := range warm.Assignments {
		if !Satisfies(s2, a) {
			t.Fatal("cached assignment does not satisfy the system")
		}
		if err := CheckMaximal(s2, a); err != nil {
			t.Fatalf("cached assignment is not maximal: %v", err)
		}
	}
}

// TestCacheRenameInvariant: component keys derive from structure, not
// names, so renaming every variable and constant still hits.
func TestCacheRenameInvariant(t *testing.T) {
	cache := solvecache.New(solvecache.Config{})
	opts := Options{Cache: cache}
	orig := disjSystem("v1", "v2", "c1", "c2", "c3")
	cold, err := Solve(orig, opts)
	if err != nil {
		t.Fatal(err)
	}
	hitsBefore := cache.Stats().Hits

	renamed := disjSystem("alpha", "beta", "ka", "kb", "kc")
	warm, err := Solve(renamed, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Stats().Hits == hitsBefore {
		t.Fatal("renamed system missed the cache: keys are name-dependent")
	}
	if len(warm.Assignments) != len(cold.Assignments) {
		t.Fatalf("renamed solve: %d assignments, want %d", len(warm.Assignments), len(cold.Assignments))
	}
	for _, a := range warm.Assignments {
		if !Satisfies(renamed, a) {
			t.Fatal("renamed cached assignment does not satisfy")
		}
	}
}

// TestCacheContentSensitive: changing a constant's language must miss.
func TestCacheContentSensitive(t *testing.T) {
	cache := solvecache.New(solvecache.Config{})
	opts := Options{Cache: cache, RawConstants: true}
	if _, err := Solve(disjSystem("v1", "v2", "c1", "c2", "c3"), opts); err != nil {
		t.Fatal(err)
	}
	hitsBefore := cache.Stats().Hits

	s := NewSystem()
	c1 := s.MustConst("c1", regex.MustCompile("x(yy)+"))
	c2 := s.MustConst("c2", regex.MustCompile("(yy)*z"))
	c3 := s.MustConst("c3", regex.MustCompile("xyyz")) // narrower concat bound
	s.MustAdd(Var{"v1"}, c1)
	s.MustAdd(Var{"v2"}, c2)
	s.MustAdd(Cat{Left: Var{"v1"}, Right: Var{"v2"}}, c3)
	res, err := Solve(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Stats().Hits != hitsBefore {
		t.Fatal("different constant content hit the cache: keys ignore languages")
	}
	for _, a := range res.Assignments {
		if !Satisfies(s, a) {
			t.Fatal("assignment does not satisfy")
		}
	}
}

// TestCacheUnsatCached: an unsat proof is a complete result and is cached.
func TestCacheUnsatCached(t *testing.T) {
	build := func() *System {
		s := NewSystem()
		c1 := s.MustConst("c1", regex.MustCompile("xx"))
		c2 := s.MustConst("c2", regex.MustCompile("yy"))
		c3 := s.MustConst("c3", regex.MustCompile("zz"))
		s.MustAdd(Var{"v1"}, c1)
		s.MustAdd(Var{"v2"}, c2)
		s.MustAdd(Cat{Left: Var{"v1"}, Right: Var{"v2"}}, c3)
		return s
	}
	cache := solvecache.New(solvecache.Config{})
	opts := Options{Cache: cache}
	res, err := Solve(build(), opts)
	if err != nil || res.Sat() {
		t.Fatalf("expected unsat without error, got sat=%t err=%v", res.Sat(), err)
	}
	hitsBefore := cache.Stats().Hits
	res2, err := Solve(build(), opts)
	if err != nil || res2.Sat() {
		t.Fatalf("warm unsat solve: sat=%t err=%v", res2.Sat(), err)
	}
	if cache.Stats().Hits == hitsBefore {
		t.Fatal("unsat proof was not cached")
	}
}

// TestCacheNeverStoresDegraded: a solve that trips its budget must leave
// the cache untouched, and a later healthy solve must produce the full
// result from scratch.
func TestCacheNeverStoresDegraded(t *testing.T) {
	cache := solvecache.New(solvecache.Config{})
	opts := Options{Cache: cache, RawConstants: true, Limits: budget.Limits{MaxStates: 10}}
	_, err := Solve(disjSystem("v1", "v2", "c1", "c2", "c3"), opts)
	var ex *budget.Exhausted
	if !errors.As(err, &ex) {
		t.Fatalf("tiny budget did not trip: %v", err)
	}
	if st := cache.Stats(); st.Puts != 0 {
		t.Fatalf("degraded solve stored %d entries; partial results must never be cached", st.Puts)
	}

	opts.Limits = budget.Limits{}
	s := disjSystem("v1", "v2", "c1", "c2", "c3")
	res, err := Solve(s, opts)
	if err != nil {
		t.Fatalf("healthy solve after degraded one: %v", err)
	}
	if len(res.Assignments) != 2 {
		t.Fatalf("assignments = %d, want 2", len(res.Assignments))
	}
	for _, a := range res.Assignments {
		if !Satisfies(s, a) {
			t.Fatal("assignment does not satisfy")
		}
	}
}

// TestCacheFillFault proves the CacheFill invariant at the core layer: a
// fault inside the fill path degrades that solve's answer (injected budget
// error, results still verified) and skips the store, so the cache is never
// poisoned and later solves recompute cleanly.
func TestCacheFillFault(t *testing.T) {
	cache := solvecache.New(solvecache.Config{})
	opts := Options{Cache: cache, RawConstants: true}
	s := disjSystem("v1", "v2", "c1", "c2", "c3")

	disarm := faultinject.Arm(faultinject.CacheFill, 1)
	res, err := Solve(s, opts)
	disarm()
	var ex *budget.Exhausted
	if !errors.As(err, &ex) || ex.Kind != budget.Injected {
		t.Fatalf("tripped fill should surface as an injected budget error, got %v", err)
	}
	if len(res.Assignments) == 0 {
		t.Fatal("the solve completed before the fill; its verified results must survive")
	}
	for _, a := range res.Assignments {
		if !Satisfies(s, a) {
			t.Fatal("degraded-fill assignment does not satisfy")
		}
	}
	if st := cache.Stats(); st.Puts != 0 {
		t.Fatalf("tripped fill stored %d entries; the cache is poisoned", st.Puts)
	}

	// The next solve recomputes (miss), stores, and the one after hits.
	if _, err := Solve(disjSystem("v1", "v2", "c1", "c2", "c3"), opts); err != nil {
		t.Fatalf("post-fault solve: %v", err)
	}
	if st := cache.Stats(); st.Puts == 0 {
		t.Fatal("post-fault solve stored nothing")
	}
	hits := cache.Stats().Hits
	if _, err := Solve(disjSystem("v1", "v2", "c1", "c2", "c3"), opts); err != nil {
		t.Fatal(err)
	}
	if cache.Stats().Hits == hits {
		t.Fatal("third solve missed: the post-fault fill did not take")
	}
}

// TestSolveForCache: the partial-solve path shares the same component
// cache.
func TestSolveForCache(t *testing.T) {
	cache := solvecache.New(solvecache.Config{})
	opts := Options{Cache: cache}
	res, err := SolveFor(disjSystem("v1", "v2", "c1", "c2", "c3"), []string{"v1"}, opts)
	if err != nil || !res.Sat() {
		t.Fatalf("cold SolveFor: sat=%t err=%v", res.Sat(), err)
	}
	hitsBefore := cache.Stats().Hits
	res2, err := SolveFor(disjSystem("v1", "v2", "c1", "c2", "c3"), []string{"v1"}, opts)
	if err != nil || !res2.Sat() {
		t.Fatalf("warm SolveFor: sat=%t err=%v", res2.Sat(), err)
	}
	if cache.Stats().Hits == hitsBefore {
		t.Fatal("SolveFor missed the component cache")
	}
	// Full-solve hits on components stored by SolveFor and vice versa.
	full, err := Solve(disjSystem("v1", "v2", "c1", "c2", "c3"), opts)
	if err != nil || !full.Sat() {
		t.Fatalf("full solve after SolveFor: sat=%t err=%v", full.Sat(), err)
	}
}

// TestCacheConcurrentSolves exercises the shared cache from many
// goroutines (meaningful under -race): concurrent solves of identical and
// renamed systems must all succeed with satisfying assignments.
func TestCacheConcurrentSolves(t *testing.T) {
	cache := solvecache.New(solvecache.Config{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var s *System
			if i%2 == 0 {
				s = disjSystem("v1", "v2", "c1", "c2", "c3")
			} else {
				s = disjSystem("alpha", "beta", "ka", "kb", "kc")
			}
			res, err := Solve(s, Options{Cache: cache})
			if err != nil {
				t.Errorf("solver %d: %v", i, err)
				return
			}
			for _, a := range res.Assignments {
				if !Satisfies(s, a) {
					t.Errorf("solver %d: unsatisfying assignment", i)
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestCacheFreeVarPath: free-variable reductions are cached independently
// of groups.
func TestCacheFreeVarPath(t *testing.T) {
	build := func(name string) *System {
		s := NewSystem()
		ca := s.MustConst("ca", regex.MustCompile("(xx)+y"))
		cb := s.MustConst("cb", regex.MustCompile("x*y"))
		s.MustAdd(Var{name}, ca)
		s.MustAdd(Var{name}, cb)
		return s
	}
	cache := solvecache.New(solvecache.Config{})
	opts := Options{Cache: cache}
	cold, err := Solve(build("v1"), opts)
	if err != nil {
		t.Fatal(err)
	}
	hitsBefore := cache.Stats().Hits
	warm, err := Solve(build("other"), opts) // renamed: still the same reduction
	if err != nil {
		t.Fatal(err)
	}
	if cache.Stats().Hits == hitsBefore {
		t.Fatal("free-var reduction missed the cache")
	}
	if !nfa.Equivalent(cold.Assignments[0].Lookup("v1"), warm.Assignments[0].Lookup("other")) {
		t.Fatal("cached free-var language differs from computed one")
	}
}
