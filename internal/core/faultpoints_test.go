package core

import (
	"context"
	"errors"
	"testing"

	"dprle/internal/budget"
	"dprle/internal/faultinject"
)

// TestSolveCtxPrecancelledFastPath pins the entry fast path: an already
// canceled context returns immediately, before any graph construction or
// automaton work is accounted.
func TestSolveCtxPrecancelledFastPath(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveCtx(ctx, bombSystem(24), Options{})
	var ex *budget.Exhausted
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *budget.Exhausted", err)
	}
	if ex.Kind != budget.Canceled {
		t.Errorf("Kind = %q, want %q", ex.Kind, budget.Canceled)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("error does not unwrap to context.Canceled")
	}
	if res == nil {
		t.Fatal("nil result")
	}
	if res.Usage.States != 0 || res.Usage.Steps != 0 {
		t.Errorf("work was done on a dead context: states=%d steps=%d",
			res.Usage.States, res.Usage.Steps)
	}
	if len(res.Assignments) != 0 {
		t.Error("assignments fabricated on a dead context")
	}
}

// TestSolveForCtxPrecancelledFastPath is the same contract for the
// partial-solve entry point.
func TestSolveForCtxPrecancelledFastPath(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveForCtx(ctx, bombSystem(24), []string{"v1"}, Options{})
	var ex *budget.Exhausted
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *budget.Exhausted", err)
	}
	if res.Usage.States != 0 || res.Usage.Steps != 0 {
		t.Errorf("work was done on a dead context: states=%d steps=%d",
			res.Usage.States, res.Usage.Steps)
	}
}

// TestDecideCtxPrecancelledFastPath covers the decision entry point, which
// routes through SolveCtx.
func TestDecideCtxPrecancelledFastPath(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a, ok, usage, err := DecideCtx(ctx, bombSystem(24), []string{"v1"}, Options{})
	if err == nil || ok || a != nil {
		t.Fatalf("a=%v ok=%v err=%v, want unknown outcome", a, ok, err)
	}
	if usage.Steps != 0 || usage.States != 0 {
		t.Errorf("work was done on a dead context: %+v", usage)
	}
}

// TestFaultInjectionGCIPop trips the gci worklist pop at every ordinal the
// baseline enumeration passes: each trip must unwind with a structured
// Injected error, and any returned assignments must still satisfy the
// system.
func TestFaultInjectionGCIPop(t *testing.T) {
	if _, err := SolveCtx(context.Background(), smallGroupSystem(), Options{Sequential: true}); err != nil {
		t.Fatalf("baseline solve failed: %v", err)
	}
	tripped := 0
	for n := int64(1); n <= 4; n++ {
		disarm := faultinject.Arm(faultinject.GCIPop, n)
		sys := smallGroupSystem()
		res, err := SolveCtx(context.Background(), sys, Options{Sequential: true})
		disarm()
		if res == nil {
			t.Fatalf("n=%d: nil result", n)
		}
		for i, a := range res.Assignments {
			if !Satisfies(sys, a) {
				t.Errorf("n=%d: assignment %d does not satisfy the system", n, i)
			}
		}
		if err != nil {
			tripped++
			var ex *budget.Exhausted
			if !errors.As(err, &ex) {
				t.Fatalf("n=%d: err = %v, want *budget.Exhausted", n, err)
			}
			if ex.Kind != budget.Injected {
				t.Errorf("n=%d: Kind = %q, want %q", n, ex.Kind, budget.Injected)
			}
			if ex.Stage != "gci.pop" {
				t.Errorf("n=%d: Stage = %q, want gci.pop", n, ex.Stage)
			}
		}
	}
	if tripped == 0 {
		t.Error("no ordinal tripped the gci pop site")
	}
}

// TestFaultInjectionGroupProduct trips the Cartesian-combination stage and
// requires the solver to abandon the product cleanly: an empty (unknown)
// result with the structured Injected error, never a half-merged
// assignment.
func TestFaultInjectionGroupProduct(t *testing.T) {
	disarm := faultinject.Arm(faultinject.GroupProduct, 1)
	sys := smallGroupSystem()
	res, err := SolveCtx(context.Background(), sys, Options{Sequential: true})
	disarm()
	var ex *budget.Exhausted
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *budget.Exhausted", err)
	}
	if ex.Kind != budget.Injected || ex.Stage != "solve.group-product" {
		t.Errorf("trip = %q at %q", ex.Kind, ex.Stage)
	}
	if res == nil {
		t.Fatal("nil result")
	}
	if len(res.Assignments) != 0 {
		t.Errorf("product stage exposed %d assignments after a mid-stage trip", len(res.Assignments))
	}
}

// TestFaultInjectionGroupProductPartial covers the SolveFor combine loop.
func TestFaultInjectionGroupProductPartial(t *testing.T) {
	disarm := faultinject.Arm(faultinject.GroupProduct, 1)
	sys := smallGroupSystem()
	res, err := SolveForCtx(context.Background(), sys, []string{"v1"}, Options{Sequential: true})
	disarm()
	var ex *budget.Exhausted
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *budget.Exhausted", err)
	}
	if ex.Stage != "solve-for.group-product" {
		t.Errorf("Stage = %q", ex.Stage)
	}
	if len(res.Assignments) != 0 {
		t.Errorf("partial product exposed %d assignments", len(res.Assignments))
	}
}

// TestFaultInjectionCrashPanics proves the Crash point turns a budget
// checkpoint into a panic (the chaos harness's simulated invariant
// violation) and that nothing below core's public entry catches it for a
// sequential solve — the serving layer's recover boundary is what must
// contain it.
func TestFaultInjectionCrashPanics(t *testing.T) {
	disarm := faultinject.Arm(faultinject.Crash, 1)
	defer disarm()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("injected crash did not propagate out of SolveCtx")
		}
	}()
	_, _ = SolveCtx(context.Background(), smallGroupSystem(), Options{Sequential: true})
}
