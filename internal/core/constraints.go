// Package core implements the DPRLE decision procedure: the Regular Matching
// Assignments (RMA) problem of Hooimeijer & Weimer (PLDI 2009, §3.1), the
// Concatenation-Intersection (CI) subproblem and its slicing algorithm
// (§3.2, Fig. 3), dependency-graph generation (§3.4.1, Fig. 5), the
// generalized concat-intersect over CI-groups (§3.4.3, Fig. 8), and the
// worklist solver for full systems (§3.4.2, Fig. 7).
//
// A system is a finite set of constraints e ⊆ c, where e concatenates
// regular-language variables and constants and c is a constant. Solving
// produces every disjunctive maximal satisfying assignment of regular
// languages to variables.
package core

import (
	"fmt"
	"strings"

	"dprle/internal/budget"
	"dprle/internal/nfa"
)

// Expr is the left-hand side of a subset constraint: a variable, a constant,
// a concatenation, or (as a §3.1.2 extension) a union of expressions.
type Expr interface {
	exprString() string
}

// Var references a language variable by name.
type Var struct{ Name string }

// Const references a named constant regular language.
type Const struct {
	Name string
	Lang *nfa.NFA
}

// Cat is the concatenation of two expressions.
type Cat struct{ Left, Right Expr }

// Or is the union of two expressions (extension, §3.1.2). It is desugared
// during graph construction: e1|e2 ⊆ c becomes e1 ⊆ c and e2 ⊆ c.
type Or struct{ Left, Right Expr }

func (v Var) exprString() string    { return v.Name }
func (c *Const) exprString() string { return c.Name }
func (c Cat) exprString() string {
	return "(" + c.Left.exprString() + " . " + c.Right.exprString() + ")"
}
func (o Or) exprString() string {
	return "(" + o.Left.exprString() + " | " + o.Right.exprString() + ")"
}

// Constraint is a single subset constraint Lhs ⊆ Rhs.
type Constraint struct {
	Lhs Expr
	Rhs *Const
}

// String renders the constraint in the paper's notation.
func (c Constraint) String() string {
	return c.Lhs.exprString() + " ⊆ " + c.Rhs.Name
}

// System is an RMA problem instance: a set of constraints over shared
// variables (paper §3.1, I = {s1, …, sp}).
type System struct {
	constraints []Constraint
	consts      map[string]*Const
	vars        map[string]bool
	varOrder    []string
	nextAnon    int
}

// NewSystem returns an empty system.
func NewSystem() *System {
	return &System{consts: map[string]*Const{}, vars: map[string]bool{}}
}

// Const interns a named constant language. Re-registering the same name with
// a different language is an error; re-registering with an equivalent
// language returns the original.
func (s *System) Const(name string, lang *nfa.NFA) (*Const, error) {
	if prev, ok := s.consts[name]; ok {
		if !nfa.Equivalent(prev.Lang, lang) {
			return nil, fmt.Errorf("core: constant %q redefined with a different language", name)
		}
		return prev, nil
	}
	c := &Const{Name: name, Lang: lang}
	s.consts[name] = c
	return c, nil
}

// MustConst is Const for statically known names. The panic marks a
// programming error in static system construction; code paths that intern
// user-supplied names must call Const and handle the error.
func (s *System) MustConst(name string, lang *nfa.NFA) *Const {
	c, err := s.Const(name, lang)
	if err != nil {
		panic(err)
	}
	return c
}

// AnonConst interns a constant under a generated name. Unlike MustConst it
// cannot fail: the generated name is fresh by construction, so the constant
// is inserted directly. (User input flows through here via the parser and
// the symbolic executor; it must never panic.)
func (s *System) AnonConst(lang *nfa.NFA) *Const {
	for {
		name := fmt.Sprintf("c#%d", s.nextAnon)
		s.nextAnon++
		if _, taken := s.consts[name]; !taken {
			c := &Const{Name: name, Lang: lang}
			s.consts[name] = c
			return c
		}
	}
}

// Add appends the constraint lhs ⊆ rhs. Every variable mentioned in lhs is
// registered.
func (s *System) Add(lhs Expr, rhs *Const) error {
	if err := s.registerVars(lhs); err != nil {
		return err
	}
	if _, ok := s.consts[rhs.Name]; !ok {
		s.consts[rhs.Name] = rhs
	} else if s.consts[rhs.Name] != rhs {
		return fmt.Errorf("core: foreign constant %q shadows an interned constant", rhs.Name)
	}
	s.constraints = append(s.constraints, Constraint{Lhs: lhs, Rhs: rhs})
	return nil
}

// MustAdd is Add that panics on error, for statically known constraints.
// Code paths fed by user input must call Add and handle the error.
func (s *System) MustAdd(lhs Expr, rhs *Const) {
	if err := s.Add(lhs, rhs); err != nil {
		panic(err)
	}
}

func (s *System) registerVars(e Expr) error {
	switch e := e.(type) {
	case Var:
		if e.Name == "" {
			return fmt.Errorf("core: variable with empty name")
		}
		if !s.vars[e.Name] {
			s.vars[e.Name] = true
			s.varOrder = append(s.varOrder, e.Name)
		}
	case *Const:
		if e == nil {
			return fmt.Errorf("core: nil constant in expression")
		}
		if prev, ok := s.consts[e.Name]; ok && prev != e {
			return fmt.Errorf("core: foreign constant %q shadows an interned constant", e.Name)
		}
		s.consts[e.Name] = e
	case Cat:
		if err := s.registerVars(e.Left); err != nil {
			return err
		}
		return s.registerVars(e.Right)
	case Or:
		if err := s.registerVars(e.Left); err != nil {
			return err
		}
		return s.registerVars(e.Right)
	default:
		return fmt.Errorf("core: unknown expression type %T", e)
	}
	return nil
}

// Constraints returns the system's constraints in insertion order.
func (s *System) Constraints() []Constraint { return s.constraints }

// Vars returns the names of all registered variables, in first-use order.
func (s *System) Vars() []string { return append([]string(nil), s.varOrder...) }

// String renders the whole system, one constraint per line.
func (s *System) String() string {
	var b strings.Builder
	for _, c := range s.constraints {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// desugared returns the constraint list with Or expressions expanded:
// (e1|e2) ⊆ c ⟺ e1 ⊆ c ∧ e2 ⊆ c. Unions nested under concatenation
// distribute: (e1|e2)·e3 ⊆ c becomes e1·e3 ⊆ c and e2·e3 ⊆ c, which
// preserves the language because concatenation distributes over union.
func (s *System) desugared() []Constraint {
	var out []Constraint
	for _, c := range s.constraints {
		for _, lhs := range expandOr(c.Lhs) {
			out = append(out, Constraint{Lhs: lhs, Rhs: c.Rhs})
		}
	}
	return out
}

func expandOr(e Expr) []Expr {
	switch e := e.(type) {
	case Or:
		return append(expandOr(e.Left), expandOr(e.Right)...)
	case Cat:
		var out []Expr
		for _, l := range expandOr(e.Left) {
			for _, r := range expandOr(e.Right) {
				out = append(out, Cat{Left: l, Right: r})
			}
		}
		return out
	default:
		return []Expr{e}
	}
}

// ConcatAll folds a sequence of expressions into a left-nested Cat chain.
// It panics on an empty sequence.
func ConcatAll(exprs ...Expr) Expr {
	if len(exprs) == 0 {
		panic("core: ConcatAll of no expressions")
	}
	out := exprs[0]
	for _, e := range exprs[1:] {
		out = Cat{Left: out, Right: e}
	}
	return out
}

// Assignment maps variable names to regular languages (paper §3.1:
// A = [v1 ↦ x1, …, vm ↦ xm]).
type Assignment map[string]*nfa.NFA

// Lookup returns the language assigned to the named variable, defaulting to
// the empty language for unknown names.
func (a Assignment) Lookup(name string) *nfa.NFA {
	if m, ok := a[name]; ok {
		return m
	}
	return nfa.Empty()
}

// Eval evaluates an expression under the assignment ([e]_A in the paper).
// It panics on an expression type outside the closed Expr set — systems
// are built through this package's constructors, so that is a solver bug
// rather than bad input.
func (a Assignment) Eval(e Expr) *nfa.NFA {
	switch e := e.(type) {
	case Var:
		return a.Lookup(e.Name)
	case *Const:
		return e.Lang
	case Cat:
		return nfa.Concat(a.Eval(e.Left), a.Eval(e.Right))
	case Or:
		return nfa.Union(a.Eval(e.Left), a.Eval(e.Right))
	}
	panic(fmt.Sprintf("core: unknown expression type %T", e))
}

// Fingerprint returns a canonical identifier for the assignment restricted
// to the given variables; two assignments agree on those variables (as
// languages) iff their fingerprints are equal.
func (a Assignment) Fingerprint(vars []string) string {
	fp, _ := a.FingerprintB(nil, vars) // nil budget cannot fail (see budget.Budget)
	return fp
}

// FingerprintB is Fingerprint under a resource budget: the per-variable
// canonicalization is accounted against bud.
func (a Assignment) FingerprintB(bud *budget.Budget, vars []string) (string, error) {
	var b strings.Builder
	for _, v := range vars {
		fp, err := nfa.FingerprintB(bud, a.Lookup(v))
		if err != nil {
			return "", err
		}
		b.WriteString(v)
		b.WriteByte('=')
		b.WriteString(fp)
		b.WriteByte('\n')
	}
	return b.String(), nil
}
