package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dprle/internal/nfa"
)

// This file re-states the paper's mechanized Coq theorems (§3.3) as
// executable properties over randomized CI instances. The three conditions —
// Regular, Satisfying, All-Solutions — are checked exactly (via automata
// inclusion), not by sampling, for every generated instance.

// randLang builds a random regular language over {a, b} from the safe
// combinators, keeping machines small enough for exhaustive checking.
func randLang(r *rand.Rand, depth int) *nfa.NFA {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return nfa.Literal(string([]byte{byte('a' + r.Intn(2))}))
		case 1:
			n := r.Intn(3)
			s := make([]byte, n)
			for i := range s {
				s[i] = byte('a' + r.Intn(2))
			}
			return nfa.Literal(string(s))
		default:
			return nfa.Class(nfa.Range('a', 'b'))
		}
	}
	switch r.Intn(4) {
	case 0:
		return nfa.Concat(randLang(r, depth-1), randLang(r, depth-1))
	case 1:
		return nfa.Union(randLang(r, depth-1), randLang(r, depth-1))
	case 2:
		return nfa.Star(randLang(r, depth-1))
	default:
		return nfa.Plus(randLang(r, depth-1))
	}
}

// Theorem 1 (Regular): every returned assignment consists of NFAs — i.e.
// the solutions are well-formed machines whose languages behave regularly.
// We check closure behaviour: membership agrees between the machine and its
// determinization (a type-level property in Coq; behavioural here).
func TestPropCIRegular(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	f := func() bool {
		c1, c2, c3 := randLang(r, 2), randLang(r, 2), randLang(r, 2)
		for _, s := range ConcatIntersect(c1, c2, c3) {
			d1 := nfa.Determinize(s.V1)
			d2 := nfa.Determinize(s.V2)
			for _, w := range []string{"", "a", "b", "ab", "ba", "aab"} {
				if s.V1.Accepts(w) != d1.Accepts(w) || s.V2.Accepts(w) != d2.Accepts(w) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Theorem 2 (Satisfying): ∀ Ai ∈ S: V1 ⊆ c1 ∧ V2 ⊆ c2 ∧ V1·V2 ⊆ c3.
func TestPropCISatisfying(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	f := func() bool {
		c1, c2, c3 := randLang(r, 2), randLang(r, 2), randLang(r, 2)
		for _, s := range ConcatIntersect(c1, c2, c3) {
			if !nfa.Subset(s.V1, c1) || !nfa.Subset(s.V2, c2) {
				return false
			}
			if !nfa.Subset(nfa.Concat(s.V1, s.V2), c3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Theorem 3 (All-Solutions): ∀ w ∈ (c1·c2) ∩ c3, some Ai covers w.
func TestPropCIAllSolutions(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	f := func() bool {
		c1, c2, c3 := randLang(r, 2), randLang(r, 2), randLang(r, 2)
		return CheckAllSolutions(c1, c2, c3, ConcatIntersect(c1, c2, c3))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Finiteness (§3.2/§3.5): the number of disjuncts is bounded by the number
// of ε-transitions in M5, which is finite and at most |M5|'s seam count.
func TestPropCIFiniteBound(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	f := func() bool {
		c1, c2, c3 := randLang(r, 2), randLang(r, 2), randLang(r, 2)
		sols, trace := ConcatIntersectTrace(c1, c2, c3)
		return len(sols) <= len(trace.Seams)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Full-solver properties: every assignment returned by Solve satisfies the
// system (Satisfying) and none is pointwise extendable to another returned
// assignment (an observable consequence of Maximal).
func TestPropSolveSatisfying(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	f := func() bool {
		s := NewSystem()
		c1 := s.MustConst("c1", randLang(r, 2))
		c2 := s.MustConst("c2", randLang(r, 2))
		c3 := s.MustConst("c3", randLang(r, 2))
		s.MustAdd(Var{"v1"}, c1)
		s.MustAdd(Var{"v2"}, c2)
		s.MustAdd(Cat{Left: Var{"v1"}, Right: Var{"v2"}}, c3)
		res, err := Solve(s, Options{})
		if err != nil {
			return false
		}
		for _, a := range res.Assignments {
			if !Satisfies(s, a) {
				return false
			}
			if a.Lookup("v1").IsEmpty() || a.Lookup("v2").IsEmpty() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSolveMaximal(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	f := func() bool {
		s := NewSystem()
		c1 := s.MustConst("c1", randLang(r, 1))
		c2 := s.MustConst("c2", randLang(r, 1))
		c3 := s.MustConst("c3", randLang(r, 2))
		s.MustAdd(Var{"v1"}, c1)
		s.MustAdd(Var{"v2"}, c2)
		s.MustAdd(Cat{Left: Var{"v1"}, Right: Var{"v2"}}, c3)
		res, err := Solve(s, Options{})
		if err != nil {
			return false
		}
		for _, a := range res.Assignments {
			if err := CheckMaximal(s, a); err != nil {
				t.Logf("system:\n%s violation: %v", s, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Decision-soundness: whenever Solve reports unsat for a CI-shaped system,
// the underlying intersection (c1·c2) ∩ c3 is genuinely empty.
func TestPropUnsatMeansEmptyIntersection(t *testing.T) {
	r := rand.New(rand.NewSource(89))
	f := func() bool {
		s := NewSystem()
		l1, l2, l3 := randLang(r, 2), randLang(r, 2), randLang(r, 2)
		c1 := s.MustConst("c1", l1)
		c2 := s.MustConst("c2", l2)
		c3 := s.MustConst("c3", l3)
		s.MustAdd(Var{"v1"}, c1)
		s.MustAdd(Var{"v2"}, c2)
		s.MustAdd(Cat{Left: Var{"v1"}, Right: Var{"v2"}}, c3)
		res, err := Solve(s, Options{})
		if err != nil {
			return false
		}
		if res.Sat() {
			return true
		}
		return nfa.Intersect(nfa.Concat(l1, l2), l3).IsEmpty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Shared-variable systems (the Fig. 9 shape): va·vb ⊆ c1, vb·vc ⊆ c2 with
// random constants. Every returned assignment must satisfy both constraints
// simultaneously — the mutual-dependence case the paper calls out.
func TestPropSharedVariableSatisfying(t *testing.T) {
	r := rand.New(rand.NewSource(127))
	f := func() bool {
		s := NewSystem()
		c1 := s.MustConst("c1", randLang(r, 2))
		c2 := s.MustConst("c2", randLang(r, 2))
		s.MustAdd(Cat{Left: Var{"va"}, Right: Var{"vb"}}, c1)
		s.MustAdd(Cat{Left: Var{"vb"}, Right: Var{"vc"}}, c2)
		res, err := Solve(s, Options{})
		if err != nil {
			return false
		}
		for _, a := range res.Assignments {
			if !Satisfies(s, a) {
				return false
			}
			for _, v := range []string{"va", "vb", "vc"} {
				if a.Lookup(v).IsEmpty() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Completeness spot-check for shared variables: any concrete split
// (wa·wb ∈ c1, wb·wc ∈ c2) found by brute force over short strings must be
// covered by some returned assignment.
func TestPropSharedVariableCoverage(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	f := func() bool {
		s := NewSystem()
		l1 := randLang(r, 2)
		l2 := randLang(r, 2)
		c1 := s.MustConst("c1", l1)
		c2 := s.MustConst("c2", l2)
		s.MustAdd(Cat{Left: Var{"va"}, Right: Var{"vb"}}, c1)
		s.MustAdd(Cat{Left: Var{"vb"}, Right: Var{"vc"}}, c2)
		res, err := Solve(s, Options{})
		if err != nil {
			return false
		}
		// Brute-force short splits.
		words1 := l1.Enumerate(4, 200)
		words2 := l2.Enumerate(4, 200)
		for _, w1 := range words1 {
			for i := 0; i <= len(w1); i++ {
				wa, wb := w1[:i], w1[i:]
				for _, w2 := range words2 {
					if !strings.HasPrefix(w2, wb) {
						continue
					}
					wc := w2[len(wb):]
					// (wa, wb, wc) is a concrete solution; some assignment
					// must contain it pointwise.
					covered := false
					for _, a := range res.Assignments {
						if a.Lookup("va").Accepts(wa) && a.Lookup("vb").Accepts(wb) && a.Lookup("vc").Accepts(wc) {
							covered = true
							break
						}
					}
					if !covered {
						t.Logf("uncovered split (%q,%q,%q) for\n%s", wa, wb, wc, s)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
