package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"dprle/internal/budget"
	"dprle/internal/faultinject"
	"dprle/internal/nfa"
)

// complementBomb returns (a|b)* a (a|b)^n — the classic NFA whose
// determinization has ~2^n states. Any solve path that complements or
// canonicalizes it blows up, which makes it the test vehicle for budget
// trips: building the NFA itself is linear.
func complementBomb(n int) *nfa.NFA {
	ab := nfa.Class(nfa.Range('a', 'b'))
	m := nfa.Concat(nfa.Star(ab), nfa.Class(nfa.Singleton('a')))
	for i := 0; i < n; i++ {
		m = nfa.Concat(m, ab)
	}
	return m
}

// bombSystem is a one-group system v1·v2 ⊆ bomb(n) whose solve must
// determinize the bomb (during constant canonicalization or the
// verification subset check), tripping any reasonable budget.
func bombSystem(n int) *System {
	s := NewSystem()
	c := s.MustConst("bomb", complementBomb(n))
	s.MustAdd(Cat{Left: Var{Name: "v1"}, Right: Var{Name: "v2"}}, c)
	return s
}

// smallGroupSystem is a fast one-group system v1·v2 ⊆ {"ab"} with three
// seam solutions: (ε,ab), (a,b), (ab,ε).
func smallGroupSystem() *System {
	s := NewSystem()
	c := s.MustConst("c", nfa.Literal("ab"))
	s.MustAdd(Cat{Left: Var{Name: "v1"}, Right: Var{Name: "v2"}}, c)
	return s
}

func TestSolveCtxDeadlineUnwindsPromptly(t *testing.T) {
	s := bombSystem(24)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := SolveCtx(ctx, s, Options{})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected a budget error, got nil")
	}
	var ex *budget.Exhausted
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *budget.Exhausted", err)
	}
	if ex.Kind != budget.Deadline {
		t.Errorf("Kind = %q, want %q", ex.Kind, budget.Deadline)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("errors.Is(err, context.DeadlineExceeded) = false, want true")
	}
	if elapsed > 3*time.Second {
		t.Errorf("solver took %v to honor a 200ms deadline", elapsed)
	}
	if res == nil {
		t.Fatal("SolveCtx returned a nil result")
	}
	if !res.Usage.Exhausted {
		t.Error("Usage.Exhausted = false after a trip")
	}
	if res.Usage.States == 0 {
		t.Error("Usage.States = 0: no work was accounted before the trip")
	}
}

func TestSolveCtxMaxStatesTrips(t *testing.T) {
	s := bombSystem(24)
	res, err := SolveCtx(context.Background(), s, Options{Limits: budget.Limits{MaxStates: 5000}})
	var ex *budget.Exhausted
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *budget.Exhausted", err)
	}
	if ex.Kind != budget.States {
		t.Errorf("Kind = %q, want %q", ex.Kind, budget.States)
	}
	if ex.Limit != 5000 {
		t.Errorf("Limit = %d, want 5000", ex.Limit)
	}
	if ex.Stage == "" {
		t.Error("Stage is empty")
	}
	if res.Usage.States < 5000 {
		t.Errorf("Usage.States = %d, want >= the 5000 limit", res.Usage.States)
	}
}

func TestSolveCtxCancellation(t *testing.T) {
	s := bombSystem(24)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := SolveCtx(ctx, s, Options{})
	if time.Since(start) > 3*time.Second {
		t.Errorf("solver ignored cancellation for %v", time.Since(start))
	}
	var ex *budget.Exhausted
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *budget.Exhausted", err)
	}
	if ex.Kind != budget.Canceled {
		t.Errorf("Kind = %q, want %q", ex.Kind, budget.Canceled)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("errors.Is(err, context.Canceled) = false, want true")
	}
}

func TestSolveCtxUnsatStaysProvenWithoutBudgetError(t *testing.T) {
	s := NewSystem()
	cx := s.MustConst("x", nfa.Literal("x"))
	cy := s.MustConst("y", nfa.Literal("y"))
	s.MustAdd(Var{Name: "v"}, cx)
	s.MustAdd(Var{Name: "v"}, cy)
	res, err := SolveCtx(context.Background(), s, Options{Limits: budget.Limits{MaxStates: 1 << 20}})
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if res.Sat() {
		t.Fatal("disjoint literal constraints reported sat")
	}
}

// TestSolveCtxExhaustedUnknownNotUnsat pins the degradation contract: an
// empty result with a budget error means "unknown", and the solver must not
// have fabricated the unsat claim. The bomb system is genuinely satisfiable
// (e.g. v1·v2 = the bomb language itself), so any unsat proof here would be
// wrong.
func TestSolveCtxExhaustedUnknownNotUnsat(t *testing.T) {
	res, err := SolveCtx(context.Background(), bombSystem(24), Options{Limits: budget.Limits{MaxStates: 2000}})
	if err == nil {
		t.Fatal("expected a budget error")
	}
	if res == nil {
		t.Fatal("nil result")
	}
	if !res.Usage.Exhausted {
		t.Error("Usage.Exhausted = false")
	}
}

// TestFaultInjectionCheckpointSweep arms the fault injector at every
// checkpoint ordinal the baseline solve passes and proves each trip point
// unwinds cleanly: no panic, and every returned assignment still satisfies
// the system. It also requires at least one trip point to surface verified
// partial results (the three-solution group makes mid-enumeration trips
// land between combos).
func TestFaultInjectionCheckpointSweep(t *testing.T) {
	base, err := SolveCtx(context.Background(), smallGroupSystem(), Options{Sequential: true})
	if err != nil {
		t.Fatalf("baseline solve failed: %v", err)
	}
	if !base.Sat() {
		t.Fatal("baseline unsat")
	}
	partialWithError := 0
	for n := int64(1); n <= base.Usage.Steps+1; n++ {
		disarm := faultinject.Arm(faultinject.Checkpoint, n)
		sys := smallGroupSystem()
		res, err := SolveCtx(context.Background(), sys, Options{Sequential: true})
		disarm()
		if res == nil {
			t.Fatalf("n=%d: nil result", n)
		}
		for i, a := range res.Assignments {
			if !Satisfies(sys, a) {
				t.Errorf("n=%d: assignment %d does not satisfy the system", n, i)
			}
		}
		if err != nil {
			var ex *budget.Exhausted
			if !errors.As(err, &ex) {
				t.Errorf("n=%d: err = %v, want *budget.Exhausted", n, err)
			} else if ex.Kind != budget.Injected {
				t.Errorf("n=%d: Kind = %q, want %q", n, ex.Kind, budget.Injected)
			}
			if res.Sat() {
				partialWithError++
			}
		} else if !res.Sat() {
			t.Errorf("n=%d: clean run lost satisfiability", n)
		}
	}
	if partialWithError == 0 {
		t.Error("no trip point produced verified partial results alongside the error")
	}
}

// TestFaultInjectionAllocSweep does the same over NFA-state allocations,
// sampling ordinals up to the baseline's state count.
func TestFaultInjectionAllocSweep(t *testing.T) {
	base, err := SolveCtx(context.Background(), smallGroupSystem(), Options{Sequential: true})
	if err != nil {
		t.Fatalf("baseline solve failed: %v", err)
	}
	var points []int64
	for n := int64(1); n <= base.Usage.States+1; n = n*2 + 1 {
		points = append(points, n)
	}
	for _, n := range points {
		disarm := faultinject.Arm(faultinject.Alloc, n)
		sys := smallGroupSystem()
		res, err := SolveCtx(context.Background(), sys, Options{Sequential: true})
		disarm()
		if res == nil {
			t.Fatalf("n=%d: nil result", n)
		}
		for i, a := range res.Assignments {
			if !Satisfies(sys, a) {
				t.Errorf("n=%d: assignment %d does not satisfy the system", n, i)
			}
		}
		if err != nil {
			var ex *budget.Exhausted
			if !errors.As(err, &ex) {
				t.Errorf("n=%d: err = %v, want *budget.Exhausted", n, err)
			}
		}
	}
}

// TestConcurrentGroupsCancelNoGoroutineLeak cancels a solve with two
// concurrently-solved pathological CI-groups mid-flight and verifies every
// solver goroutine exits.
func TestConcurrentGroupsCancelNoGoroutineLeak(t *testing.T) {
	s := NewSystem()
	c1 := s.MustConst("bomb1", complementBomb(22))
	c2 := s.MustConst("bomb2", complementBomb(23))
	s.MustAdd(Cat{Left: Var{Name: "a1"}, Right: Var{Name: "a2"}}, c1)
	s.MustAdd(Cat{Left: Var{Name: "b1"}, Right: Var{Name: "b2"}}, c2)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	res, err := SolveCtx(ctx, s, Options{})
	if err == nil {
		t.Fatal("expected a budget error from cancellation")
	}
	var ex *budget.Exhausted
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *budget.Exhausted", err)
	}
	if res == nil || !res.Usage.Exhausted {
		t.Error("usage not recorded as exhausted")
	}

	// The group goroutines must all have exited by the time SolveCtx
	// returns (it waits on them); allow the canceller goroutine and any
	// runtime noise a moment to drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSolveForCtxBudget exercises the partial-solve entry point under a
// state cap: either it completes, or it reports exhaustion with verified
// assignments only.
func TestSolveForCtxBudget(t *testing.T) {
	sys := bombSystem(24)
	res, err := SolveForCtx(context.Background(), sys, []string{"v1"}, Options{Limits: budget.Limits{MaxStates: 3000}})
	if err == nil {
		t.Fatal("expected a budget error")
	}
	var ex *budget.Exhausted
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *budget.Exhausted", err)
	}
	for i, a := range res.Assignments {
		if !Satisfies(sys, a) {
			t.Errorf("assignment %d does not satisfy the system", i)
		}
	}
}

// TestDecideCtxReportsUsage checks the decision entry point surfaces the
// budget counters for both clean and exhausted runs.
func TestDecideCtxReportsUsage(t *testing.T) {
	sys := smallGroupSystem()
	a, ok, usage, err := DecideCtx(context.Background(), sys, []string{"v1", "v2"}, Options{})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if !Satisfies(sys, a) {
		t.Error("witness does not satisfy the system")
	}
	if usage.Steps == 0 {
		t.Error("Usage.Steps = 0 after a full solve")
	}

	_, ok, usage, err = DecideCtx(context.Background(), bombSystem(24), []string{"v1"}, Options{Limits: budget.Limits{MaxStates: 2000}})
	if err == nil {
		t.Fatal("expected a budget error")
	}
	if ok {
		t.Error("ok = true on an exhausted empty solve (must be unknown)")
	}
	if !usage.Exhausted {
		t.Error("Usage.Exhausted = false")
	}
}
