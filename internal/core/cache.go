package core

import (
	"fmt"
	"sort"
	"strings"

	"dprle/internal/budget"
	"dprle/internal/faultinject"
	"dprle/internal/nfa"
	"dprle/internal/solvecache"
)

// Component memoization. The dependency graph decomposes a system into
// independent parts — free variables and CI-groups — whose solutions depend
// only on their own structure: the constants constraining them (as
// languages), the shape of their concat trees, and the solver options. Two
// systems that share a component structurally share its solution, even when
// variable names, constant names, state numberings, or the rest of the
// system differ. This file derives canonical keys for those components and
// translates solutions in and out of the shared cache.
//
// Soundness rests on two properties. First, keys are built exclusively from
// canonical forms (nfa.CanonicalKey for constant languages, position
// indices for group-local structure), so equal keys imply structurally
// interchangeable components. Second, only complete results enter the
// cache: storeGroup refuses to store while the solve's budget has tripped
// (a tripped budget can silently degrade maximalization, dedup, and
// pruning), so a hit always reproduces what a fresh, healthy solve would
// have produced. Group solutions are cached post-maximalization — sound
// because maximalization only consults constraints mentioning the group's
// own variables, all of which are part of the key.

// groupSolution is the cached value for one CI-group: its disjunctive
// solutions with node ids translated to positions in the group's sorted id
// list, plus the enumeration-truncation flag.
type groupSolution struct {
	sols      []map[int]*nfa.NFA
	truncated bool
}

// cacheSalt renders the Options fields that influence per-component
// results. MaxSolutions is deliberately absent: it caps only the
// whole-system Cartesian product, never a component's own solve.
func (o Options) cacheSalt() string {
	return fmt.Sprintf("min=%t raw=%t nomax=%t combos=%d",
		o.Minimize, o.RawConstants, o.NoMaximalize, o.maxCombos())
}

// componentKey derives the canonical cache key for one CI-group. The
// description uses group-local node positions (never raw ids or names) and
// canonical constant serializations (never pointers), and preserves the
// graph's constraint order, which the enumeration order — and hence any
// MaxCombos truncation point — depends on. It returns "" when the group is
// not safely describable (a non-constant operand outside the group, which
// the grouping invariant should exclude); an empty key disables caching
// for the group.
func componentKey(g *Graph, group []int, opts Options) string {
	idx := make(map[int]int, len(group))
	for i, id := range group {
		idx[id] = i
	}
	constIdx := map[int]int{}
	var constKeys []string
	ref := func(id int) string {
		if i, ok := idx[id]; ok {
			return fmt.Sprintf("n%d", i)
		}
		if g.Nodes[id].Kind != ConstNode {
			return ""
		}
		j, ok := constIdx[id]
		if !ok {
			j = len(constKeys)
			constIdx[id] = j
			constKeys = append(constKeys, g.Nodes[id].Con.Lang.CanonicalKey())
		}
		return fmt.Sprintf("c%d", j)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "opts %s\n", opts.cacheSalt())
	for i, id := range group {
		fmt.Fprintf(&b, "node %d %s\n", i, g.Nodes[id].Kind)
	}
	for _, p := range g.Concats {
		ri, ok := idx[p.Result]
		if !ok {
			continue
		}
		l, r := ref(p.Left), ref(p.Right)
		if l == "" || r == "" {
			return ""
		}
		fmt.Fprintf(&b, "cat %s %s > n%d\n", l, r, ri)
	}
	for _, e := range g.Subsets {
		ti, ok := idx[e.To]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "sub n%d %s\n", ti, ref(e.From))
	}
	parts := append([]string{b.String()}, constKeys...)
	return solvecache.Key("component", parts...)
}

// freeVarKey derives the cache key for a free variable's reduced language:
// the multiset of constraining constant languages plus the options that
// shape the reduction. The constant keys are sorted because intersection
// is commutative — the resulting language (all downstream stages consume
// only the language) does not depend on application order.
func freeVarKey(g *Graph, id int, opts Options) string {
	var ks []string
	for _, c := range g.SubsetsInto(id) {
		ks = append(ks, c.Lang.CanonicalKey())
	}
	sort.Strings(ks)
	parts := append([]string{fmt.Sprintf("min=%t raw=%t", opts.Minimize, opts.RawConstants)}, ks...)
	return solvecache.Key("freevar", parts...)
}

// machineCost approximates an NFA's resident size in bytes for the cache's
// cost accounting.
func machineCost(m *nfa.NFA) int64 {
	cost := int64(64)
	for s := 0; s < m.NumStates(); s++ {
		cost += 32 + int64(len(m.EdgesFrom(s)))*24 + int64(len(m.EpsFrom(s)))*16
	}
	return cost
}

// lookupGroup translates a cached group solution back onto the group's
// node ids. hit reports whether the key was present.
func lookupGroup(cache *solvecache.Cache, key string, group []int) (sols []map[int]*nfa.NFA, truncated, hit bool) {
	if cache == nil || key == "" {
		return nil, false, false
	}
	v, ok := cache.Get(key)
	if !ok {
		return nil, false, false
	}
	gs := v.(*groupSolution)
	sols = make([]map[int]*nfa.NFA, len(gs.sols))
	for i, sol := range gs.sols {
		m := make(map[int]*nfa.NFA, len(sol))
		for li, lang := range sol {
			m[group[li]] = lang
		}
		sols[i] = m
	}
	return sols, gs.truncated, true
}

// storeGroup records a completed group solution under key, translating node
// ids to group-local positions and interning the solution machines so
// structurally-identical languages share memory across entries. Nothing is
// stored while the budget has tripped: a degraded solve (partial
// enumeration, skipped maximalization, unpruned duplicates) must never be
// replayed to future callers with healthy budgets. The faultinject probe
// models a failure inside the fill itself; a tripped fill skips the store —
// leaving the cache exactly as it was — and surfaces as an injected budget
// error so the caller degrades visibly rather than silently.
func storeGroup(cache *solvecache.Cache, key string, group []int, sols []map[int]*nfa.NFA, truncated bool, bud *budget.Budget) error {
	if cache == nil || key == "" || bud.Err() != nil {
		return nil
	}
	if faultinject.Fire(faultinject.CacheFill) {
		return bud.Inject("solvecache.fill")
	}
	idx := make(map[int]int, len(group))
	for i, id := range group {
		idx[id] = i
	}
	in := solvecache.NewInterner(cache)
	gs := &groupSolution{sols: make([]map[int]*nfa.NFA, len(sols)), truncated: truncated}
	cost := int64(128)
	for i, sol := range sols {
		ids := make([]int, 0, len(sol))
		for id := range sol {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		m := make(map[int]*nfa.NFA, len(sol))
		for _, id := range ids {
			li, ok := idx[id]
			if !ok {
				return nil // solution mentions a node outside the group: uncacheable
			}
			shared, _ := in.Intern(sol[id])
			m[li] = shared
			cost += 16 + machineCost(shared)
		}
		gs.sols[i] = m
	}
	cache.Put(key, gs, cost)
	return nil
}

// lookupFreeVar returns the cached reduced language for a free variable.
func lookupFreeVar(cache *solvecache.Cache, key string) (*nfa.NFA, bool) {
	if cache == nil {
		return nil, false
	}
	v, ok := cache.Get(key)
	if !ok {
		return nil, false
	}
	return v.(*nfa.NFA), true
}

// storeFreeVar records a free variable's reduced language, under the same
// completeness and fault-injection discipline as storeGroup.
func storeFreeVar(cache *solvecache.Cache, key string, lang *nfa.NFA, bud *budget.Budget) error {
	if cache == nil || bud.Err() != nil {
		return nil
	}
	if faultinject.Fire(faultinject.CacheFill) {
		return bud.Inject("solvecache.fill")
	}
	cache.Put(key, lang, machineCost(lang))
	return nil
}
