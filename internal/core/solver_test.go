package core

import (
	"fmt"
	"testing"

	"dprle/internal/nfa"
	"dprle/internal/regex"
)

func solve(t *testing.T, s *System) *Result {
	t.Helper()
	res, err := Solve(s, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

// §3.1.1, first example: v1 ⊆ (xx)+y and v1 ⊆ x*y.
// The satisfying assignment is [v1 ↦ (xx)+y].
func TestSection311Intersection(t *testing.T) {
	s := NewSystem()
	ca := s.MustConst("ca", regex.MustCompile("(xx)+y"))
	cb := s.MustConst("cb", regex.MustCompile("x*y"))
	s.MustAdd(Var{"v1"}, ca)
	s.MustAdd(Var{"v1"}, cb)
	res := solve(t, s)
	if len(res.Assignments) != 1 {
		t.Fatalf("assignments = %d, want 1", len(res.Assignments))
	}
	got := res.Assignments[0].Lookup("v1")
	if !nfa.Equivalent(got, regex.MustCompile("(xx)+y")) {
		w, _ := got.ShortestWitness()
		t.Fatalf("v1 wrong; witness %q", w)
	}
	if err := CheckMaximal(s, res.Assignments[0]); err != nil {
		t.Fatal(err)
	}
}

// §3.1.1: the non-maximal candidate [v1 ↦ ∅] and the non-satisfying
// candidate [v1 ↦ xy] must be recognized as such by the checkers.
func TestSection311Checkers(t *testing.T) {
	s := NewSystem()
	ca := s.MustConst("ca", regex.MustCompile("(xx)+y"))
	cb := s.MustConst("cb", regex.MustCompile("x*y"))
	s.MustAdd(Var{"v1"}, ca)
	s.MustAdd(Var{"v1"}, cb)

	if Satisfies(s, Assignment{"v1": nfa.Literal("xy")}) {
		t.Fatal("[v1 ↦ xy] must not satisfy (xy ∉ (xx)+y)")
	}
	empty := Assignment{"v1": nfa.Empty()}
	if !Satisfies(s, empty) {
		t.Fatal("[v1 ↦ ∅] satisfies vacuously")
	}
	if err := CheckMaximal(s, empty); err == nil {
		t.Fatal("[v1 ↦ ∅] must fail the maximality check")
	}
}

// §3.1.1, second example: two inherently disjunctive solutions.
//
//	v1 ⊆ x(yy)+   v2 ⊆ (yy)*z   v1·v2 ⊆ xyyz|xyyyyz
//	A1 = [v1 ↦ xyy, v2 ↦ z|yyz]   A2 = [v1 ↦ x(yy|yyyy), v2 ↦ z]
func TestSection311Disjunctive(t *testing.T) {
	s := NewSystem()
	c1 := s.MustConst("c1", regex.MustCompile("x(yy)+"))
	c2 := s.MustConst("c2", regex.MustCompile("(yy)*z"))
	c3 := s.MustConst("c3", regex.MustCompile("xyyz|xyyyyz"))
	s.MustAdd(Var{"v1"}, c1)
	s.MustAdd(Var{"v2"}, c2)
	s.MustAdd(Cat{Left: Var{"v1"}, Right: Var{"v2"}}, c3)

	res := solve(t, s)
	if len(res.Assignments) != 2 {
		for _, a := range res.Assignments {
			w1, _ := a.Lookup("v1").ShortestWitness()
			w2, _ := a.Lookup("v2").ShortestWitness()
			t.Logf("assignment: v1~%q v2~%q", w1, w2)
		}
		t.Fatalf("assignments = %d, want 2", len(res.Assignments))
	}
	wantA1v1 := regex.MustCompile("xyy")
	wantA1v2 := regex.MustCompile("z|yyz")
	wantA2v1 := regex.MustCompile("x(yy|yyyy)")
	wantA2v2 := regex.MustCompile("z")
	matched := 0
	for _, a := range res.Assignments {
		v1, v2 := a.Lookup("v1"), a.Lookup("v2")
		if nfa.Equivalent(v1, wantA1v1) && nfa.Equivalent(v2, wantA1v2) {
			matched++
		}
		if nfa.Equivalent(v1, wantA2v1) && nfa.Equivalent(v2, wantA2v2) {
			matched++
		}
		if !Satisfies(s, a) {
			t.Fatal("assignment does not satisfy")
		}
		if err := CheckMaximal(s, a); err != nil {
			t.Fatal(err)
		}
	}
	if matched != 2 {
		t.Fatalf("matched %d of the paper's A1/A2", matched)
	}
}

// The motivating example end to end: solving v1 ⊆ [\d]+$-match,
// nid_·v1 ⊆ has-quote yields the language of exploit inputs.
func TestMotivatingExample(t *testing.T) {
	s, _, _, _ := motivatingSystem(t)
	res := solve(t, s)
	if !res.Sat() {
		t.Fatal("motivating system should be satisfiable")
	}
	if len(res.Assignments) != 1 {
		t.Fatalf("assignments = %d, want 1", len(res.Assignments))
	}
	v1 := res.Assignments[0].Lookup("v1")
	// Exploit inputs: contain a quote AND end with a digit.
	for _, w := range []string{"'5", "' OR 1=1 ; DROP news --9"} {
		if !v1.Accepts(w) {
			t.Errorf("v1 should accept %q", w)
		}
	}
	for _, w := range []string{"5", "'x", ""} {
		if v1.Accepts(w) {
			t.Errorf("v1 should reject %q", w)
		}
	}
	if err := CheckMaximal(s, res.Assignments[0]); err != nil {
		t.Fatal(err)
	}
	ws, err := Witnesses(res.Assignments[0])
	if err != nil {
		t.Fatal(err)
	}
	if !v1.Accepts(ws["v1"]) {
		t.Fatal("witness not in language")
	}
}

// A fixed filter (anchored on both sides) makes the system unsatisfiable:
// the paper notes the solver then reports the code is not vulnerable.
func TestMotivatingExampleFixedFilter(t *testing.T) {
	s := NewSystem()
	c1 := s.MustConst("c1", regex.MustMatchLanguage(`^[\d]+$`))
	c2 := s.MustConst("c2", nfa.Literal("nid_"))
	c3 := s.MustConst("c3", regex.MustMatchLanguage(`'`))
	s.MustAdd(Var{"v1"}, c1)
	s.MustAdd(Cat{Left: c2, Right: Var{"v1"}}, c3)
	res := solve(t, s)
	if res.Sat() {
		t.Fatal("fixed filter must make the system unsatisfiable")
	}
	if _, ok, err := Decide(s, []string{"v1"}, Options{}); err != nil || ok {
		t.Fatalf("Decide = %v/%v, want unsat", ok, err)
	}
}

// Nested concatenation (§3.4.3): (v1·v2)·v3 ⊆ c4 plus per-variable subsets.
func TestNestedConcatenation(t *testing.T) {
	s := NewSystem()
	ca := s.MustConst("ca", regex.MustCompile("a+"))
	cb := s.MustConst("cb", regex.MustCompile("b+"))
	cc := s.MustConst("cc", regex.MustCompile("c+"))
	c4 := s.MustConst("c4", regex.MustCompile("aabbcc"))
	s.MustAdd(Var{"v1"}, ca)
	s.MustAdd(Var{"v2"}, cb)
	s.MustAdd(Var{"v3"}, cc)
	s.MustAdd(Cat{Left: Cat{Left: Var{"v1"}, Right: Var{"v2"}}, Right: Var{"v3"}}, c4)
	res := solve(t, s)
	if len(res.Assignments) != 1 {
		t.Fatalf("assignments = %d, want 1", len(res.Assignments))
	}
	a := res.Assignments[0]
	for v, want := range map[string]string{"v1": "aa", "v2": "bb", "v3": "cc"} {
		if !nfa.Equivalent(a.Lookup(v), nfa.Literal(want)) {
			w, _ := a.Lookup(v).ShortestWitness()
			t.Errorf("%s ≠ %q (witness %q)", v, want, w)
		}
	}
	if err := CheckMaximal(s, a); err != nil {
		t.Fatal(err)
	}
}

// Figure 9: vb participates in two concatenations, making them mutually
// dependent. The correct solution set (paper's own wording) contains every
// (va, vc) pair for which a compatible vb exists.
func TestFigure9GCI(t *testing.T) {
	s := NewSystem()
	cva := s.MustConst("cva", regex.MustCompile("o(pp)+"))
	cvb := s.MustConst("cvb", regex.MustCompile("p*(qq)+"))
	cvc := s.MustConst("cvc", regex.MustCompile("q*r"))
	c1 := s.MustConst("c1", regex.MustCompile("op{5}q*"))
	c2 := s.MustConst("c2", regex.MustCompile("p*q{4}r"))
	s.MustAdd(Var{"va"}, cva)
	s.MustAdd(Var{"vb"}, cvb)
	s.MustAdd(Var{"vc"}, cvc)
	s.MustAdd(Cat{Left: Var{"va"}, Right: Var{"vb"}}, c1)
	s.MustAdd(Cat{Left: Var{"vb"}, Right: Var{"vc"}}, c2)

	res := solve(t, s)
	// All four (va, vc) combinations admit a compatible vb:
	//   (op², q²r, vb=p³q²), (op⁴, q²r, vb=pq²),
	//   (op², r,   vb=p³q⁴), (op⁴, r,   vb=pq⁴).
	type want struct{ va, vb, vc string }
	wants := []want{
		{"opp", "pppqq", "qqr"},
		{"opppp", "pqq", "qqr"},
		{"opp", "pppqqqq", "r"},
		{"opppp", "pqqqq", "r"},
	}
	if len(res.Assignments) != 4 {
		for _, a := range res.Assignments {
			w1, _ := a.Lookup("va").ShortestWitness()
			w2, _ := a.Lookup("vb").ShortestWitness()
			w3, _ := a.Lookup("vc").ShortestWitness()
			t.Logf("assignment: va=%q vb=%q vc=%q", w1, w2, w3)
		}
		t.Fatalf("assignments = %d, want 4", len(res.Assignments))
	}
	for _, w := range wants {
		found := false
		for _, a := range res.Assignments {
			if nfa.Equivalent(a.Lookup("va"), nfa.Literal(w.va)) &&
				nfa.Equivalent(a.Lookup("vb"), nfa.Literal(w.vb)) &&
				nfa.Equivalent(a.Lookup("vc"), nfa.Literal(w.vc)) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing assignment (va=%s, vb=%s, vc=%s)", w.va, w.vb, w.vc)
		}
	}
	for _, a := range res.Assignments {
		if !Satisfies(s, a) {
			t.Fatal("assignment does not satisfy")
		}
		if err := CheckMaximal(s, a); err != nil {
			t.Fatal(err)
		}
	}
	// The paper's two explicitly listed assignments are among ours.
	for _, w := range wants[:2] {
		_ = w // wants[0], wants[1] correspond to the paper's A1 and A2.
	}
}

// The ordering invariant (§3.4.3): processing the concat edge before the
// subset edges loses the push-back. Our solver must get v2 right:
// [v2] = Σ*'Σ* ∩ Σ*[0-9], not [c2].
func TestOperationOrderingInvariant(t *testing.T) {
	s, _, _, _ := motivatingSystem(t)
	res := solve(t, s)
	v1 := res.Assignments[0].Lookup("v1")
	wrong := regex.MustMatchLanguage(`[\d]+$`) // just c1, no push-back
	if nfa.Equivalent(v1, wrong) {
		t.Fatal("v1 must be narrowed by the concat constraint (push-back)")
	}
}

func TestUnsatThroughConcat(t *testing.T) {
	// v1 ⊆ a+, v2 ⊆ b+, v1·v2 ⊆ c+ — impossible.
	s := NewSystem()
	ca := s.MustConst("ca", regex.MustCompile("a+"))
	cb := s.MustConst("cb", regex.MustCompile("b+"))
	cc := s.MustConst("cc", regex.MustCompile("c+"))
	s.MustAdd(Var{"v1"}, ca)
	s.MustAdd(Var{"v2"}, cb)
	s.MustAdd(Cat{Left: Var{"v1"}, Right: Var{"v2"}}, cc)
	res := solve(t, s)
	if res.Sat() {
		t.Fatal("system should be unsatisfiable")
	}
}

func TestFreeVariableIntersection(t *testing.T) {
	// v1 ⊆ c1, v1 ⊆ c2, v2 ⊆ c1, v2 ⊆ c2: both resolve to c1 ∩ c2 without
	// any concat_intersect call (Fig. 7's basic-constraint stage).
	s := NewSystem()
	c1 := s.MustConst("c1", regex.MustCompile("[ab]+"))
	c2 := s.MustConst("c2", regex.MustCompile("[bc]+"))
	s.MustAdd(Var{"v1"}, c1)
	s.MustAdd(Var{"v1"}, c2)
	s.MustAdd(Var{"v2"}, c1)
	s.MustAdd(Var{"v2"}, c2)
	res := solve(t, s)
	if len(res.Assignments) != 1 {
		t.Fatalf("assignments = %d", len(res.Assignments))
	}
	want := regex.MustCompile("b+")
	for _, v := range []string{"v1", "v2"} {
		if !nfa.Equivalent(res.Assignments[0].Lookup(v), want) {
			t.Errorf("%s ≠ b+", v)
		}
	}
}

func TestMultipleGroupsCartesianProduct(t *testing.T) {
	// Two independent CI-groups, each with two disjuncts → 4 assignments.
	mk := func(s *System, v1, v2, suffix string) {
		c1 := s.MustConst("c1"+suffix, regex.MustCompile("x(yy)+"))
		c2 := s.MustConst("c2"+suffix, regex.MustCompile("(yy)*z"))
		c3 := s.MustConst("c3"+suffix, regex.MustCompile("xyyz|xyyyyz"))
		s.MustAdd(Var{v1}, c1)
		s.MustAdd(Var{v2}, c2)
		s.MustAdd(Cat{Left: Var{v1}, Right: Var{v2}}, c3)
	}
	s := NewSystem()
	mk(s, "a1", "a2", "A")
	mk(s, "b1", "b2", "B")
	res := solve(t, s)
	if len(res.Assignments) != 4 {
		t.Fatalf("assignments = %d, want 4 (2 × 2)", len(res.Assignments))
	}
	for _, a := range res.Assignments {
		if !Satisfies(s, a) {
			t.Fatal("assignment does not satisfy")
		}
	}
}

func TestSolveWithUnionExtension(t *testing.T) {
	// (v1 | v2) ⊆ c constrains both variables (§3.1.2 extension).
	s := NewSystem()
	c := s.MustConst("c", regex.MustCompile("[0-9]+"))
	s.MustAdd(Or{Left: Var{"v1"}, Right: Var{"v2"}}, c)
	res := solve(t, s)
	if len(res.Assignments) != 1 {
		t.Fatalf("assignments = %d", len(res.Assignments))
	}
	for _, v := range []string{"v1", "v2"} {
		if !nfa.Equivalent(res.Assignments[0].Lookup(v), regex.MustCompile("[0-9]+")) {
			t.Errorf("%s should be [0-9]+", v)
		}
	}
}

func TestDecideAndSatFor(t *testing.T) {
	s, _, _, _ := motivatingSystem(t)
	a, ok, err := Decide(s, []string{"v1"}, Options{})
	if err != nil || !ok {
		t.Fatalf("Decide = %v/%v", ok, err)
	}
	if a.Lookup("v1").IsEmpty() {
		t.Fatal("decided assignment has empty v1")
	}
	res := solve(t, s)
	if !res.SatFor([]string{"v1"}) {
		t.Fatal("SatFor(v1) should hold")
	}
	if res.SatFor([]string{"v1", "missing"}) {
		t.Fatal("SatFor over an unknown variable should fail")
	}
}

func TestResultFirst(t *testing.T) {
	empty := &Result{}
	if empty.First() != nil {
		t.Fatal("First of empty result should be nil")
	}
	s, _, _, _ := motivatingSystem(t)
	if solve(t, s).First() == nil {
		t.Fatal("First should return an assignment")
	}
}

func TestNoMaximalizeStillCoversAndSatisfies(t *testing.T) {
	s := NewSystem()
	c1 := s.MustConst("c1", regex.MustCompile("x(yy)+"))
	c2 := s.MustConst("c2", regex.MustCompile("(yy)*z"))
	c3 := s.MustConst("c3", regex.MustCompile("xyyz|xyyyyz"))
	s.MustAdd(Var{"v1"}, c1)
	s.MustAdd(Var{"v2"}, c2)
	s.MustAdd(Cat{Left: Var{"v1"}, Right: Var{"v2"}}, c3)
	res, err := Solve(s, Options{NoMaximalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sat() {
		t.Fatal("should be satisfiable")
	}
	covered := nfa.Empty()
	for _, a := range res.Assignments {
		if !Satisfies(s, a) {
			t.Fatal("raw assignment must still satisfy")
		}
		covered = nfa.Union(covered, nfa.Concat(a.Lookup("v1"), a.Lookup("v2")))
	}
	whole := nfa.Intersect(
		nfa.Concat(regex.MustCompile("x(yy)+"), regex.MustCompile("(yy)*z")),
		regex.MustCompile("xyyz|xyyyyz"))
	if !nfa.Subset(whole, covered) {
		t.Fatal("raw disjuncts must jointly cover all solutions")
	}
}

func TestSolveWithMinimizeOption(t *testing.T) {
	s, _, _, _ := motivatingSystem(t)
	res, err := Solve(s, Options{Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 1 {
		t.Fatalf("assignments = %d", len(res.Assignments))
	}
	if !res.Assignments[0].Lookup("v1").Accepts("'5") {
		t.Fatal("minimized solve changed the answer")
	}
}

func TestSolveRawConstants(t *testing.T) {
	// RawConstants reproduces the prototype's behaviour: same languages,
	// potentially different disjunct granularity before maximalization.
	s, _, _, _ := motivatingSystem(t)
	res, err := Solve(s, Options{RawConstants: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sat() {
		t.Fatal("raw-constant solve should succeed")
	}
	found := false
	for _, a := range res.Assignments {
		if a.Lookup("v1").Accepts("' OR 1=1 ; DROP news --9") {
			found = true
		}
	}
	if !found {
		t.Fatal("exploit string must be covered")
	}
}

func TestMaxSolutionsTruncation(t *testing.T) {
	s := NewSystem()
	c1 := s.MustConst("c1", regex.MustCompile("a*"))
	c2 := s.MustConst("c2", regex.MustCompile("a*"))
	c3 := s.MustConst("c3", regex.MustCompile("a{6}"))
	s.MustAdd(Var{"v1"}, c1)
	s.MustAdd(Var{"v2"}, c2)
	s.MustAdd(Cat{Left: Var{"v1"}, Right: Var{"v2"}}, c3)
	res, err := Solve(s, Options{MaxSolutions: 3, NoMaximalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) > 3 {
		t.Fatalf("assignments = %d exceeds cap", len(res.Assignments))
	}
	if !res.Truncated {
		t.Fatal("truncation must be reported")
	}
}

func TestSplitPointsOfFixedString(t *testing.T) {
	// v1 ⊆ a*, v2 ⊆ a*, v1·v2 ⊆ a{3}: the maximal disjuncts are the 4
	// split points ε·aaa, a·aa, aa·a, aaa·ε.
	s := NewSystem()
	c1 := s.MustConst("c1", regex.MustCompile("a*"))
	c2 := s.MustConst("c2", regex.MustCompile("a*"))
	c3 := s.MustConst("c3", regex.MustCompile("a{3}"))
	s.MustAdd(Var{"v1"}, c1)
	s.MustAdd(Var{"v2"}, c2)
	s.MustAdd(Cat{Left: Var{"v1"}, Right: Var{"v2"}}, c3)
	res := solve(t, s)
	if len(res.Assignments) != 4 {
		t.Fatalf("assignments = %d, want 4", len(res.Assignments))
	}
	for _, a := range res.Assignments {
		w1, _ := a.Lookup("v1").ShortestWitness()
		w2, _ := a.Lookup("v2").ShortestWitness()
		if w1+w2 != "aaa" {
			t.Errorf("split %q + %q does not form aaa", w1, w2)
		}
	}
}

func TestMiddleVariableBetweenConstants(t *testing.T) {
	// c1 · v · c2 ⊆ c3: the variable sits between two constants.
	s := NewSystem()
	pre := s.MustConst("pre", nfa.Literal("SELECT '"))
	post := s.MustConst("post", nfa.Literal("'"))
	safe := s.MustConst("safe", regex.MustCompile(`SELECT '[a-z]*'`))
	s.MustAdd(Cat{Left: Cat{Left: pre, Right: Var{"v"}}, Right: post}, safe)
	res := solve(t, s)
	if len(res.Assignments) != 1 {
		t.Fatalf("assignments = %d", len(res.Assignments))
	}
	v := res.Assignments[0].Lookup("v")
	if !nfa.Equivalent(v, regex.MustCompile("[a-z]*")) {
		w, _ := v.ShortestWitness()
		t.Fatalf("v wrong; witness %q", w)
	}
	if err := CheckMaximal(s, res.Assignments[0]); err != nil {
		t.Fatal(err)
	}
}

func TestSelfConcatenation(t *testing.T) {
	// v · v ⊆ (ab)*: v must satisfy v·v ⊆ (ab)*.
	s := NewSystem()
	c := s.MustConst("c", regex.MustCompile("(ab)*"))
	s.MustAdd(Cat{Left: Var{"v"}, Right: Var{"v"}}, c)
	res := solve(t, s)
	if !res.Sat() {
		t.Fatal("self-concatenation should be satisfiable")
	}
	for _, a := range res.Assignments {
		v := a.Lookup("v")
		if !Satisfies(s, a) {
			w, _ := v.ShortestWitness()
			t.Fatalf("assignment with witness %q does not satisfy", w)
		}
	}
}

func TestFourLevelChain(t *testing.T) {
	// (((v1·v2)·v3)·v4) ⊆ abcd with per-variable letter constraints.
	s := NewSystem()
	letters := []string{"a", "b", "c", "d"}
	expr := Expr(Var{"v1"})
	for i := 2; i <= 4; i++ {
		expr = Cat{Left: expr, Right: Var{fmt.Sprintf("v%d", i)}}
	}
	for i, l := range letters {
		cl := s.MustConst("c"+l, regex.MustCompile(l+"*"))
		s.MustAdd(Var{fmt.Sprintf("v%d", i+1)}, cl)
	}
	target := s.MustConst("target", nfa.Literal("abcd"))
	s.MustAdd(expr, target)
	res := solve(t, s)
	if len(res.Assignments) != 1 {
		t.Fatalf("assignments = %d", len(res.Assignments))
	}
	a := res.Assignments[0]
	for i, l := range letters {
		if !nfa.Equivalent(a.Lookup(fmt.Sprintf("v%d", i+1)), nfa.Literal(l)) {
			t.Fatalf("v%d should be %q", i+1, l)
		}
	}
}

func TestDoublyConstrainedConcat(t *testing.T) {
	// v1·v2 ⊆ c3 AND v1·v2 ⊆ c4: both constraints must hold simultaneously
	// (§3.5's second case, checked semantically).
	s := NewSystem()
	c1 := s.MustConst("c1", regex.MustCompile("[ab]*"))
	c2 := s.MustConst("c2", regex.MustCompile("[ab]*"))
	c3 := s.MustConst("c3", regex.MustCompile("a[ab]*")) // starts with a
	c4 := s.MustConst("c4", regex.MustCompile("[ab]*b")) // ends with b
	s.MustAdd(Var{"v1"}, c1)
	s.MustAdd(Var{"v2"}, c2)
	v12 := Cat{Left: Var{"v1"}, Right: Var{"v2"}}
	s.MustAdd(v12, c3)
	s.MustAdd(v12, c4)
	res := solve(t, s)
	if !res.Sat() {
		t.Fatal("should be satisfiable (e.g. v1=a…, v2=…b)")
	}
	for _, a := range res.Assignments {
		joint := nfa.Concat(a.Lookup("v1"), a.Lookup("v2"))
		if !nfa.Subset(joint, regex.MustCompile("a[ab]*")) ||
			!nfa.Subset(joint, regex.MustCompile("[ab]*b")) {
			t.Fatal("a constraint leaked")
		}
	}
}

func TestSequentialOptionMatchesParallel(t *testing.T) {
	mk := func() *System {
		s := NewSystem()
		for _, grp := range []string{"A", "B", "C"} {
			c1 := s.MustConst("c1"+grp, regex.MustCompile("x(yy)+"))
			c2 := s.MustConst("c2"+grp, regex.MustCompile("(yy)*z"))
			c3 := s.MustConst("c3"+grp, regex.MustCompile("xyyz|xyyyyz"))
			s.MustAdd(Var{"p" + grp}, c1)
			s.MustAdd(Var{"q" + grp}, c2)
			s.MustAdd(Cat{Left: Var{"p" + grp}, Right: Var{"q" + grp}}, c3)
		}
		return s
	}
	par, err := Solve(mk(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Solve(mk(), Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Assignments) != len(seq.Assignments) {
		t.Fatalf("parallel %d vs sequential %d assignments", len(par.Assignments), len(seq.Assignments))
	}
	if len(par.Assignments) != 8 { // 2^3 group combinations
		t.Fatalf("assignments = %d, want 8", len(par.Assignments))
	}
}

func TestMaxCombosTruncationReported(t *testing.T) {
	s := NewSystem()
	c1 := s.MustConst("c1", regex.MustCompile("a*"))
	c2 := s.MustConst("c2", regex.MustCompile("a*"))
	c3 := s.MustConst("c3", regex.MustCompile("a{8}"))
	s.MustAdd(Var{"v1"}, c1)
	s.MustAdd(Var{"v2"}, c2)
	s.MustAdd(Cat{Left: Var{"v1"}, Right: Var{"v2"}}, c3)
	res, err := Solve(s, Options{MaxCombos: 3, NoMaximalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("combo truncation must be reported")
	}
	full, err := Solve(s, Options{NoMaximalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated {
		t.Fatal("full enumeration must not report truncation")
	}
	if len(full.Assignments) != 9 { // the 9 split points of a⁸
		t.Fatalf("assignments = %d, want 9", len(full.Assignments))
	}
}
