package core

import (
	"fmt"

	"dprle/internal/nfa"
)

// This file provides independent checkers for the two RMA solution
// conditions of §3.1 — Satisfying and Maximal. They re-derive both
// properties from first principles (subset checks and quotient
// constructions) without reusing the solver's machinery, standing in for
// the paper's mechanized Coq proof as an executable specification.

// Satisfies reports whether the assignment meets every constraint:
// ∀ (e ⊆ c) ∈ I: [e]_A ⊆ [c].
func Satisfies(s *System, a Assignment) bool {
	for _, c := range s.Constraints() {
		if !nfa.Subset(a.Eval(c.Lhs), c.Rhs.Lang) {
			return false
		}
	}
	return true
}

// MaximalityViolation reports a variable whose language can absorb another
// string without breaking any constraint.
type MaximalityViolation struct {
	Var     string
	Witness string
}

func (v *MaximalityViolation) Error() string {
	return fmt.Sprintf("core: assignment not maximal: %s can absorb %q", v.Var, v.Witness)
}

// CheckMaximal verifies the Maximal condition of §3.1: no variable's
// language can be extended without violating Satisfying.
//
// For each variable v it computes, per occurrence of v in a constraint
// A·v·B ⊆ C (other variables, and v's other occurrences, held at their
// assigned languages), the largest admissible middle language via the
// quotient construction ¬(A⁻¹·¬C·B⁻¹); the intersection of these bounds over
// all occurrences is everything v could possibly contain. If the assigned
// language is strictly below the bound, candidate extension strings from the
// gap are re-validated against the full system — adding a string to v
// changes all of v's occurrences simultaneously, so this guards against
// false positives on repeated variables. A confirmed extension is returned
// as *MaximalityViolation.
func CheckMaximal(s *System, a Assignment) error {
	if !Satisfies(s, a) {
		return fmt.Errorf("core: assignment does not satisfy the system")
	}
	for _, v := range s.Vars() {
		bound := nfa.AnyString()
		constrained := false
		for _, c := range s.desugared() {
			leaves := flattenCat(c.Lhs)
			for i, leaf := range leaves {
				lv, ok := leaf.(Var)
				if !ok || lv.Name != v {
					continue
				}
				constrained = true
				prefix := evalSlice(a, leaves[:i])
				suffix := evalSlice(a, leaves[i+1:])
				m := nfa.MaxMiddle(prefix, suffix, c.Rhs.Lang)
				bound = nfa.Intersect(bound, m).Trim()
			}
		}
		if !constrained {
			// Unconstrained variables must be Σ* to be maximal.
			if !nfa.Equivalent(a.Lookup(v), nfa.AnyString()) {
				w, _ := nfa.Complement(a.Lookup(v)).ShortestWitness()
				return &MaximalityViolation{Var: v, Witness: w}
			}
			continue
		}
		gap := nfa.Intersect(bound, nfa.Complement(a.Lookup(v))).Trim()
		if gap.IsEmpty() {
			continue // assigned language already covers the bound
		}
		// Try a handful of gap strings as candidate extensions.
		for _, w := range gap.Enumerate(maxWitnessLen(gap), 8) {
			ext := Assignment{}
			for k, lang := range a {
				ext[k] = lang
			}
			ext[v] = nfa.Union(a.Lookup(v), nfa.Literal(w))
			if Satisfies(s, ext) {
				return &MaximalityViolation{Var: v, Witness: w}
			}
		}
	}
	return nil
}

// maxWitnessLen picks an enumeration depth that guarantees at least one gap
// string is generated: the shortest witness's length.
func maxWitnessLen(m *nfa.NFA) int {
	w, ok := m.ShortestWitness()
	if !ok {
		return 0
	}
	return len(w) + 2
}

// flattenCat returns the in-order leaf sequence of a Cat chain. The input
// must be Or-free (desugared).
func flattenCat(e Expr) []Expr {
	if c, ok := e.(Cat); ok {
		return append(flattenCat(c.Left), flattenCat(c.Right)...)
	}
	return []Expr{e}
}

// evalSlice evaluates the concatenation of a leaf slice under the
// assignment; the empty slice is {ε}.
func evalSlice(a Assignment, leaves []Expr) *nfa.NFA {
	out := nfa.Epsilon()
	for _, l := range leaves {
		out = nfa.Concat(out, a.Eval(l))
	}
	return out
}

// CheckAllSolutions verifies the All-Solutions property of the CI problem
// (§3.2, condition 3): every string of (c1·c2) ∩ c3 is covered by some
// returned solution's [v1·v2]. Coverage is decided exactly on languages:
// (c1·c2) ∩ c3 ⊆ ⋃ᵢ (V1ᵢ·V2ᵢ).
func CheckAllSolutions(c1, c2, c3 *nfa.NFA, sols []CISolution) bool {
	whole := nfa.Intersect(nfa.Concat(c1, c2), c3)
	covered := nfa.Empty()
	for _, s := range sols {
		covered = nfa.Union(covered, nfa.Concat(s.V1, s.V2))
	}
	return nfa.Subset(whole, covered)
}
