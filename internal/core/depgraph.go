package core

import (
	"fmt"
	"sort"
	"strings"
)

// NodeKind classifies dependency-graph vertices.
type NodeKind int

const (
	// VarNode is a language variable vertex.
	VarNode NodeKind = iota
	// ConstNode is a constant-language vertex.
	ConstNode
	// TempNode is a fresh vertex introduced for a concatenation result
	// (the "t is fresh" rule of Fig. 5).
	TempNode
)

func (k NodeKind) String() string {
	switch k {
	case VarNode:
		return "var"
	case ConstNode:
		return "const"
	case TempNode:
		return "temp"
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// GraphNode is a vertex of the dependency graph.
type GraphNode struct {
	ID   int
	Kind NodeKind
	Name string // variable/constant name, or a generated temp name
	Con  *Const // for ConstNode: the constant
}

// SubsetEdge records [To] ⊆ [From]; From is always a constant vertex
// (the paper's ↪-edges).
type SubsetEdge struct {
	From int // constant node
	To   int // var or temp node
}

// ConcatPair records [Result] = [Left]·[Right] (the paper's ⋈-edge pairs).
// Tag is the seam tag used for this concatenation across all NFA
// constructions, so slicing points remain identifiable after intersections.
type ConcatPair struct {
	Left, Right, Result int
	Tag                 int
}

// Graph is the dependency graph of Fig. 5/6.
type Graph struct {
	Nodes   []*GraphNode
	Subsets []SubsetEdge
	Concats []ConcatPair

	varNode   map[string]int
	constNode map[string]int
}

// BuildGraph constructs the dependency graph for the system by recursive
// descent over each constraint's derivation (Fig. 5), taking the union of
// the per-constraint graphs. Or-expressions are desugared first.
func BuildGraph(s *System) *Graph {
	g := &Graph{varNode: map[string]int{}, constNode: map[string]int{}}
	for _, c := range s.desugared() {
		lhs := g.walk(c.Lhs)
		rhs := g.nodeForConst(c.Rhs)
		g.Subsets = append(g.Subsets, SubsetEdge{From: rhs, To: lhs})
	}
	return g
}

// walk processes an expression and returns its vertex, extending the graph
// (the ⊢ e : n, G judgment of Fig. 5).
func (g *Graph) walk(e Expr) int {
	switch e := e.(type) {
	case Var:
		return g.nodeForVar(e.Name)
	case *Const:
		return g.nodeForConst(e)
	case Cat:
		l := g.walk(e.Left)
		r := g.walk(e.Right)
		t := g.addNode(TempNode, fmt.Sprintf("t%d", len(g.Concats)), nil)
		g.Concats = append(g.Concats, ConcatPair{Left: l, Right: r, Result: t, Tag: len(g.Concats)})
		return t
	}
	//lint:ignore dprlelint/panicguard desugared() eliminates Or before graph construction; reaching this is a solver bug
	panic(fmt.Sprintf("core: walk of unexpected expression %T (Or must be desugared)", e))
}

func (g *Graph) addNode(kind NodeKind, name string, con *Const) int {
	id := len(g.Nodes)
	g.Nodes = append(g.Nodes, &GraphNode{ID: id, Kind: kind, Name: name, Con: con})
	return id
}

// nodeForVar returns the unique vertex for a variable name.
func (g *Graph) nodeForVar(name string) int {
	if id, ok := g.varNode[name]; ok {
		return id
	}
	id := g.addNode(VarNode, name, nil)
	g.varNode[name] = id
	return id
}

// nodeForConst returns the unique vertex for a constant.
func (g *Graph) nodeForConst(c *Const) int {
	if id, ok := g.constNode[c.Name]; ok {
		return id
	}
	id := g.addNode(ConstNode, c.Name, c)
	g.constNode[c.Name] = id
	return id
}

// SubsetsInto returns the constants constraining node id (inbound ↪-edges).
func (g *Graph) SubsetsInto(id int) []*Const {
	var out []*Const
	for _, e := range g.Subsets {
		if e.To == id {
			out = append(out, g.Nodes[e.From].Con)
		}
	}
	return out
}

// pairByResult returns the concat pair producing the given temp node.
func (g *Graph) pairByResult(id int) (ConcatPair, bool) {
	for _, p := range g.Concats {
		if p.Result == id {
			return p, true
		}
	}
	return ConcatPair{}, false
}

// pairsUsing returns the concat pairs in which node id is an operand.
func (g *Graph) pairsUsing(id int) []ConcatPair {
	var out []ConcatPair
	for _, p := range g.Concats {
		if p.Left == id || p.Right == id {
			out = append(out, p)
		}
	}
	return out
}

// CIGroups returns the CI-groups of the graph: the connected components of
// the relation "joined by a ⋈-edge" (§3.4.3; edge direction is ignored).
// Constant vertices participate as concat operands but do not join groups
// beyond that. Each group is returned as a sorted list of node ids
// containing the variables and temps involved.
func (g *Graph) CIGroups() [][]int {
	parent := make([]int, len(g.Nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, p := range g.Concats {
		// Constants do not glue groups together: two concatenations that
		// share only a constant operand are independent.
		if g.Nodes[p.Left].Kind != ConstNode {
			union(p.Left, p.Result)
		}
		if g.Nodes[p.Right].Kind != ConstNode {
			union(p.Right, p.Result)
		}
	}
	members := map[int][]int{}
	for _, n := range g.Nodes {
		if n.Kind == ConstNode {
			continue
		}
		// Only nodes that touch a concat edge belong to a CI-group.
		if _, isResult := g.pairByResult(n.ID); !isResult && len(g.pairsUsing(n.ID)) == 0 {
			continue
		}
		root := find(n.ID)
		members[root] = append(members[root], n.ID)
	}
	var out [][]int
	for _, m := range members {
		sort.Ints(m)
		out = append(out, m)
	}
	// Deterministic order by first member (each group's members are sorted,
	// so out[i][0] is the group's least node ID).
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// FreeVars returns the variable nodes not involved in any concatenation;
// these are solved by plain intersection (Fig. 7's sort_acyclic_nodes /
// reduce stage).
func (g *Graph) FreeVars() []int {
	var out []int
	for _, n := range g.Nodes {
		if n.Kind == VarNode && len(g.pairsUsing(n.ID)) == 0 {
			out = append(out, n.ID)
		}
	}
	return out
}

// Dot renders the dependency graph in Graphviz format, reproducing the
// Fig. 6 presentation: constants as boxes, variables as circles, temps as
// diamonds; ↪-edges solid, ⋈-edge pairs labelled l/r.
func (g *Graph) Dot(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", name)
	for _, n := range g.Nodes {
		shape := "circle"
		switch n.Kind {
		case ConstNode:
			shape = "box"
		case TempNode:
			shape = "diamond"
		}
		fmt.Fprintf(&b, "  n%d [label=%q, shape=%s];\n", n.ID, n.Name, shape)
	}
	for _, e := range g.Subsets {
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"⊆\"];\n", e.From, e.To)
	}
	for _, p := range g.Concats {
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"l/%d\", style=dashed];\n", p.Left, p.Result, p.Tag)
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"r/%d\", style=dashed];\n", p.Right, p.Result, p.Tag)
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders the graph: vertices, then ↪-edges and ⋈-pairs.
func (g *Graph) String() string {
	var b strings.Builder
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "node %d: %s %s\n", n.ID, n.Kind, n.Name)
	}
	for _, e := range g.Subsets {
		fmt.Fprintf(&b, "%s ↪ %s\n", g.Nodes[e.From].Name, g.Nodes[e.To].Name)
	}
	for _, p := range g.Concats {
		fmt.Fprintf(&b, "%s ⋈l %s, %s ⋈r %s (tag %d)\n",
			g.Nodes[p.Left].Name, g.Nodes[p.Result].Name,
			g.Nodes[p.Right].Name, g.Nodes[p.Result].Name, p.Tag)
	}
	return b.String()
}
