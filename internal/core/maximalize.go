package core

import (
	"dprle/internal/budget"
	"dprle/internal/nfa"
)

// Maximalization. The seam-slicing of concat_intersect yields disjuncts
// whose granularity depends on the state-sharing structure of the constant
// machines (the paper's own examples rely on shared suffix states: its A1/A2
// for §3.1.1 merge what a Thompson-constructed constant machine splits into
// three seam edges). To make solver output canonical — and Maximal in the
// §3.1 sense regardless of machine structure — each combined assignment is
// driven to a maximal fixpoint: every variable is repeatedly extended to the
// largest language admitted by all of its constraint occurrences (via
// quotient bounds), holding the other variables fixed. The fixpoint is
// verified against the whole system at each step, so repeated occurrences of
// a variable inside one constraint can never cause an unsound extension.
// Distinct seam combinations that maximalize to the same assignment collapse
// during deduplication, which reproduces the paper's disjunct sets exactly.
//
// Maximalization only ever grows an already-satisfying assignment, so under
// a resource budget it degrades: when the budget trips mid-fixpoint, the
// current (verified) assignment is returned unchanged instead of failing.

// maximizer maximalizes assignments against one system, caching the
// complement machines of constraint right-hand sides across calls.
type maximizer struct {
	sys    *System
	bud    *budget.Budget   // nil means unlimited
	cons   []Constraint     // desugared
	byVar  map[string][]int // var name → indices into cons mentioning it
	notRhs map[*Const]*nfa.NFA
	rounds int
}

func newMaximizer(s *System, bud *budget.Budget) *maximizer {
	m := &maximizer{sys: s, bud: bud, cons: s.desugared(), byVar: map[string][]int{}, notRhs: map[*Const]*nfa.NFA{}, rounds: 8}
	for i, c := range m.cons {
		for _, leaf := range flattenCat(c.Lhs) {
			if v, ok := leaf.(Var); ok {
				idxs := m.byVar[v.Name]
				if len(idxs) == 0 || idxs[len(idxs)-1] != i {
					m.byVar[v.Name] = append(idxs, i)
				}
			}
		}
	}
	return m
}

// satisfiesTouching checks only the constraints that mention v: growing v
// cannot affect any other constraint's left-hand side.
func (m *maximizer) satisfiesTouching(v string, a Assignment) (bool, error) {
	for _, i := range m.byVar[v] {
		c := m.cons[i]
		notc, err := m.notC(c.Rhs)
		if err != nil {
			return false, err
		}
		bad, err := nfa.IntersectsB(m.bud, a.Eval(c.Lhs), notc)
		if err != nil {
			return false, err
		}
		if bad {
			return false, nil
		}
	}
	return true, nil
}

func (m *maximizer) notC(c *Const) (*nfa.NFA, error) {
	if n, ok := m.notRhs[c]; ok {
		return n, nil
	}
	n, err := nfa.ComplementB(m.bud, c.Lang)
	if err != nil {
		return nil, err
	}
	m.notRhs[c] = n
	return n, nil
}

// bound computes the largest language variable v may hold, given the other
// assignments in a (and v's other occurrences fixed at a[v]). The second
// result reports whether v occurs in any constraint.
func (m *maximizer) bound(v string, a Assignment) (*nfa.NFA, bool, error) {
	out := nfa.AnyString()
	constrained := false
	for _, c := range m.cons {
		leaves := flattenCat(c.Lhs)
		for i, leaf := range leaves {
			lv, ok := leaf.(Var)
			if !ok || lv.Name != v {
				continue
			}
			constrained = true
			prefix := evalSlice(a, leaves[:i])
			suffix := evalSlice(a, leaves[i+1:])
			notc, err := m.notC(c.Rhs)
			if err != nil {
				return nil, false, err
			}
			mid, err := nfa.MaxMiddleNotB(m.bud, prefix, suffix, notc)
			if err != nil {
				return nil, false, err
			}
			oi, err := nfa.IntersectB(m.bud, out, mid)
			if err != nil {
				return nil, false, err
			}
			out = oi.Trim()
		}
	}
	return out, constrained, nil
}

// maximalizeVars runs the fixpoint over the given variables only: it
// extends each one to its quotient bound until no variable grows. The
// result satisfies the system whenever the input does, and is Maximal for
// systems without repeated variable occurrences inside a single constraint;
// with repetitions, growth steps that would break Satisfying are skipped.
// A budget trip at any point returns the current assignment unchanged.
//
// Solve uses this per CI-group: groups share no variables or constraints,
// so maximalizing group variables against their own constraints (holding
// the rest of the assignment fixed) is equivalent to — and much cheaper
// than — maximalizing whole combined assignments.
func (m *maximizer) maximalizeVars(a Assignment, vars []string) Assignment {
	cur := Assignment{}
	for k, lang := range a {
		cur[k] = lang
	}
	for round := 0; round < m.rounds; round++ {
		if m.bud.Check("maximalize") != nil {
			return cur
		}
		changed := false
		for _, v := range vars {
			b, constrained, err := m.bound(v, cur)
			if err != nil {
				return cur
			}
			if !constrained {
				continue // free of constraints: Solve assigned Σ* already
			}
			sub, err := nfa.SubsetB(m.bud, b, cur.Lookup(v))
			if err != nil {
				return cur
			}
			if sub {
				continue // bound adds nothing
			}
			candidate := nfa.Union(cur.Lookup(v), b).Trim()
			trial := Assignment{}
			for k, lang := range cur {
				trial[k] = lang
			}
			trial[v] = candidate
			ok, err := m.satisfiesTouching(v, trial)
			if err != nil {
				return cur
			}
			if ok {
				cur = trial
				changed = true
			}
		}
		if !changed {
			return cur
		}
	}
	return cur
}
