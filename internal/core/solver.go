package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"

	"dprle/internal/budget"
	"dprle/internal/faultinject"
	"dprle/internal/nfa"
	"dprle/internal/solvecache"
)

// Options configures the solver.
type Options struct {
	// MaxSolutions caps the number of disjunctive assignments returned.
	// 0 means DefaultMaxSolutions.
	MaxSolutions int
	// MaxCombos caps the number of seam-choice combinations explored per
	// CI-group. 0 means DefaultMaxCombos.
	MaxCombos int
	// Minimize applies DFA minimization to intermediate machines, the
	// improvement the paper suggests for the pathological `secure` case
	// (§4). Off by default to match the published prototype.
	Minimize bool
	// RawConstants disables the up-front canonicalization (DFA
	// minimization) of constant languages. The paper's prototype tracked
	// large string constants through every machine transformation verbatim,
	// which is what made its `secure` benchmark take minutes (§4); enabling
	// RawConstants reproduces that behaviour. With canonicalization the
	// solution machinery sees each constant as its minimal DFA, which also
	// makes the number of seam edges — and hence the disjunct granularity —
	// match the paper's hand-drawn minimal machines.
	RawConstants bool
	// Sequential disables the concurrent solving of independent CI-groups.
	Sequential bool
	// NoMaximalize skips the final quotient-based maximalization fixpoint.
	// The returned assignments still satisfy the system and jointly cover
	// all solutions, but individual disjuncts may be extendable (their
	// granularity then mirrors the seam structure of the constant machines,
	// like the raw concat_intersect output). Intended for ablation
	// benchmarks.
	NoMaximalize bool
	// Cache memoizes per-component solutions (CI-groups, free-variable
	// reductions, canonicalized constants) across solves, keyed by canonical
	// structural fingerprints (see internal/solvecache and cache.go). A nil
	// cache disables memoization. The cache is safe for concurrent use and
	// may be shared across solves with different Options: the relevant
	// option fields are part of every key. Results from solves that tripped
	// their budget are never stored.
	Cache *solvecache.Cache
	// Limits bounds the resources the solve may consume (NFA states
	// materialized, solver checkpoints). Zero fields mean unlimited. Wall
	//-clock deadlines and cancellation come from the context passed to
	// SolveCtx. When a limit trips, the solver unwinds and returns the
	// verified partial results found so far alongside a *budget.Exhausted
	// error.
	Limits budget.Limits
}

// Defaults for Options fields left zero.
const (
	DefaultMaxSolutions = 256
	DefaultMaxCombos    = 4096
)

func (o Options) maxSolutions() int {
	if o.MaxSolutions <= 0 {
		return DefaultMaxSolutions
	}
	return o.MaxSolutions
}

func (o Options) maxCombos() int {
	if o.MaxCombos <= 0 {
		return DefaultMaxCombos
	}
	return o.MaxCombos
}

// Result is the solver's output: zero or more disjunctive maximal satisfying
// assignments. An empty Assignments slice means the system has no assignment
// giving every variable a nonempty language — the paper's "no assignments
// found" outcome (Fig. 7, line 23).
type Result struct {
	Assignments []Assignment
	// Truncated reports that enumeration hit MaxSolutions/MaxCombos, so
	// further disjunctive assignments may exist. This is a configured
	// enumeration cap, distinct from resource exhaustion (which SolveCtx
	// signals through a *budget.Exhausted error).
	Truncated bool
	// Usage reports the resources the solve consumed.
	Usage budget.Usage
}

// Sat reports whether at least one assignment was found.
func (r *Result) Sat() bool { return len(r.Assignments) > 0 }

// First returns the first assignment, or nil when unsat. The paper notes the
// first solution can be produced without enumerating the rest; callers that
// only need a witness use this.
func (r *Result) First() Assignment {
	if len(r.Assignments) == 0 {
		return nil
	}
	return r.Assignments[0]
}

// SatFor reports whether some assignment gives every variable in `interest`
// a nonempty language (Fig. 7's S parameter: success requires ∄s ∈ S with
// F[s] = ∅).
func (r *Result) SatFor(interest []string) bool {
	for _, a := range r.Assignments {
		ok := true
		for _, v := range interest {
			if a.Lookup(v).IsEmpty() {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Solve decides the system and returns all disjunctive maximal satisfying
// assignments, up to the configured bounds. The procedure follows Fig. 7:
//
//  1. Variables outside every CI-group are reduced directly: their language
//     is the intersection of their constraining constants (sort_acyclic_nodes
//     + reduce; this stage never creates disjunction).
//  2. Each CI-group is eliminated by the generalized concat-intersect (gci),
//     producing a set of disjunctive partial solutions that are pushed onto
//     the worklist.
//  3. Branches are combined across groups (the Cartesian product the
//     worklist realizes by re-queuing graphs per disjunct).
//
// Because the constraint grammar (Fig. 2) only permits constants on
// right-hand sides, group eliminations never unlock further reductions, so
// one pass over the groups is complete.
func Solve(s *System, opts Options) (*Result, error) {
	return SolveCtx(context.Background(), s, opts)
}

// SolveCtx is Solve under a resource budget: the context's deadline and
// cancellation, plus opts.Limits, bound the solve. On exhaustion the solver
// degrades gracefully rather than running to completion:
//
//   - The returned error wraps a *budget.Exhausted recording which limit
//     tripped, at which pipeline stage, and the counters consumed. For
//     deadline/cancellation trips it also unwraps to the context's error,
//     so errors.Is(err, context.DeadlineExceeded) works.
//   - The Result returned alongside the error holds the verified partial
//     output: every assignment in it genuinely satisfies the system (each
//     disjunct is checked before the budget could trip past it); only the
//     enumeration is incomplete. An empty Result with a non-nil error means
//     satisfiability is unknown, NOT unsat.
//   - A nil error with an empty Result remains a proof of unsatisfiability,
//     exactly as for Solve.
//
// Language-preserving optimizations (constant canonicalization,
// minimization, maximalization, dedup, subsumption pruning) degrade
// silently when the budget trips inside them; only solve-critical
// constructions surface the error.
func SolveCtx(ctx context.Context, s *System, opts Options) (*Result, error) {
	bud := budget.New(ctx, opts.Limits)
	// Fast path: a context that is already expired or canceled must not
	// start any work — callers that share a deadline across many solves
	// (the serving layer, symexec's per-path loop) rely on dead requests
	// costing nothing.
	if err := bud.Preflight("solve.preflight"); err != nil {
		return &Result{Usage: bud.Usage()}, err
	}
	res, err := solveBudget(s, opts, bud)
	if res == nil {
		res = &Result{}
	}
	res.Usage = bud.Usage()
	return res, err
}

func solveBudget(s *System, opts Options, bud *budget.Budget) (*Result, error) {
	g := BuildGraph(s)
	canon := newConstCache(opts, bud)

	// Stage 1: free variables (no concat edges) reduce by intersection,
	// consulting the cache first: the reduced language is a function of the
	// constraining constant languages alone.
	base := Assignment{}
	for _, id := range g.FreeVars() {
		if err := bud.Check("solve.free-vars"); err != nil {
			return nil, err
		}
		n := g.Nodes[id]
		var fvKey string
		if opts.Cache != nil {
			fvKey = freeVarKey(g, id, opts)
			if cached, ok := lookupFreeVar(opts.Cache, fvKey); ok {
				base[n.Name] = cached
				continue
			}
		}
		lang := nfa.AnyString()
		for _, c := range g.SubsetsInto(id) {
			li, err := nfa.IntersectB(bud, lang, canon.get(c))
			if err != nil {
				return nil, err
			}
			lang = li.Trim()
		}
		if opts.Minimize {
			if ml, err := nfa.MinimizedB(bud, lang); err == nil {
				lang = ml
			}
		}
		if opts.Cache != nil {
			if err := storeFreeVar(opts.Cache, fvKey, lang, bud); err != nil {
				return nil, err
			}
		}
		base[n.Name] = lang
	}
	// Variables registered but never constrained default to Σ* (the paper's
	// initial node-to-NFA mapping).
	for _, v := range s.Vars() {
		if _, ok := base[v]; !ok {
			if _, inGraph := g.varNode[v]; !inGraph {
				base[v] = nfa.AnyString()
			}
		}
	}

	// Stage 2: eliminate each CI-group with gci. Groups are independent (no
	// shared variables or temps by construction), so they are solved
	// concurrently when there is more than one. The budget is shared across
	// goroutines (its counters are atomic), so a trip in one group promptly
	// stops the others at their next checkpoint.
	groups := g.CIGroups()
	perGroup := make([][]map[int]*nfa.NFA, len(groups))
	groupTrunc := make([]bool, len(groups))
	groupErrs := make([]error, len(groups))
	// Cache lookup pass: a group whose canonical key was solved before —
	// in any earlier system, under any variable names — is answered in
	// hash time with its stored post-maximalized disjuncts.
	groupKeys := make([]string, len(groups))
	cachedGroup := make([]bool, len(groups))
	uncached := 0
	for i, group := range groups {
		if opts.Cache != nil {
			groupKeys[i] = componentKey(g, group, opts)
			if sols, trunc, hit := lookupGroup(opts.Cache, groupKeys[i], group); hit {
				perGroup[i], groupTrunc[i], cachedGroup[i] = sols, trunc, true
				continue
			}
		}
		uncached++
	}
	if uncached <= 1 || opts.Sequential {
		for i, group := range groups {
			if cachedGroup[i] {
				continue
			}
			solver := &gciSolver{g: g, opts: opts, canon: canon, bud: bud, varLang: map[int]*nfa.NFA{}, built: map[int]*nfa.NFA{}}
			perGroup[i], groupTrunc[i], groupErrs[i] = solver.solveGroupTrunc(group)
		}
	} else {
		var wg sync.WaitGroup
		for i, group := range groups {
			if cachedGroup[i] {
				continue
			}
			wg.Add(1)
			go func(i int, group []int) {
				defer wg.Done()
				// A panic inside a goroutine would kill the process rather
				// than unwind to the API boundary, so convert it to an error
				// here. perGroup[i] stays nil: no partially-built state from
				// the panicked group can leak into the result.
				defer func() {
					if r := recover(); r != nil {
						perGroup[i] = nil
						groupErrs[i] = fmt.Errorf("core: internal panic in CI-group solver: %v\n%s", r, debug.Stack())
					}
				}()
				// Each goroutine gets its own solver state and constant
				// cache: the shared canon map is not synchronized.
				solver := &gciSolver{
					g: g, opts: opts, canon: newConstCache(opts, bud), bud: bud,
					varLang: map[int]*nfa.NFA{}, built: map[int]*nfa.NFA{},
				}
				perGroup[i], groupTrunc[i], groupErrs[i] = solver.solveGroupTrunc(group)
			}(i, group)
		}
		wg.Wait()
	}

	// Structural and internal errors (anything that is not a budget trip)
	// abort the solve outright.
	for i := range groups {
		if err := groupErrs[i]; err != nil {
			var ex *budget.Exhausted
			if !errors.As(err, &ex) {
				return nil, err
			}
		}
	}
	// Genuine unsat wins over exhaustion elsewhere: a group that completed
	// with zero disjuncts proves the whole system has no all-nonempty
	// assignment, regardless of what the budget did to other groups. The
	// unsat proof itself is cached (an empty disjunct set needs no
	// maximalization); a tripped fill degrades the answer to unknown
	// rather than asserting unsat past an injected fault.
	for i := range groups {
		if groupErrs[i] == nil && len(perGroup[i]) == 0 {
			if !cachedGroup[i] {
				if err := storeGroup(opts.Cache, groupKeys[i], groups[i], nil, groupTrunc[i], bud); err != nil {
					return &Result{}, err
				}
			}
			return &Result{}, nil
		}
	}
	// Remaining errors are budget trips. Groups that produced disjuncts
	// before tripping contribute them as verified partials; a group
	// exhausted before its first disjunct leaves satisfiability unknown, so
	// no assignments can be claimed at all.
	res := &Result{}
	var exhaustedErr error
	for i := range groups {
		if err := groupErrs[i]; err != nil {
			if exhaustedErr == nil {
				exhaustedErr = err
			}
			if len(perGroup[i]) == 0 {
				return &Result{}, err
			}
		}
		if groupTrunc[i] {
			res.Truncated = true
		}
	}

	// Stage 2½: drive each group's disjuncts to a maximal fixpoint and
	// collapse duplicates — per group, before the Cartesian product. Groups
	// share no variables or constraints, so per-group maximalization equals
	// whole-assignment maximalization at a fraction of the cost, and the
	// product of per-group-maximal, pairwise-incomparable partials is
	// itself maximal and duplicate-free. Under an exhausted budget this
	// whole stage degrades to the identity (see maximalizeVars).
	if !opts.NoMaximalize {
		var maxer *maximizer // built on first fresh group: an all-hits solve never pays for it
		for gi, sols := range perGroup {
			if cachedGroup[gi] {
				continue // cached disjuncts are already maximal
			}
			if maxer == nil {
				maxer = newMaximizer(s, bud)
			}
			perGroup[gi] = maximalizeGroup(maxer, g, groups[gi], sols)
		}
	}

	// Fill pass: freshly solved, fully maximalized groups enter the cache.
	// storeGroup declines while the budget has tripped (the solve above may
	// have degraded), so exhausted solves leave the cache untouched; a
	// fault injected inside the fill skips the store and degrades this
	// solve's answer without poisoning the cache for later ones.
	if opts.Cache != nil {
		for gi := range groups {
			if cachedGroup[gi] || groupErrs[gi] != nil {
				continue
			}
			if err := storeGroup(opts.Cache, groupKeys[gi], groups[gi], perGroup[gi], groupTrunc[gi], bud); err != nil {
				if exhaustedErr == nil {
					exhaustedErr = err
				}
			}
		}
	}

	// Stage 3: Cartesian-combine group disjuncts (the worklist's re-queued
	// branches) on top of the base assignment. This stage is deliberately
	// unbudgeted: it is bounded by maxSolutions() map merges, and aborting
	// mid-merge could expose assignments missing some group's variables.
	// The fault probe sits between whole groups, where abandoning the
	// product is safe (no partially merged assignment can escape).
	assignments := []Assignment{base}
	for _, sols := range perGroup {
		if faultinject.Fire(faultinject.GroupProduct) {
			return &Result{}, bud.Inject("solve.group-product")
		}
		var next []Assignment
		for _, a := range assignments {
			for _, sol := range sols {
				merged := Assignment{}
				for k, v := range a {
					merged[k] = v
				}
				for id, lang := range sol {
					merged[g.Nodes[id].Name] = lang
				}
				next = append(next, merged)
				if len(next) >= opts.maxSolutions() {
					res.Truncated = true
					break
				}
			}
			if len(next) >= opts.maxSolutions() {
				break
			}
		}
		assignments = next
	}

	// A free variable reduced to ∅ means no assignment gives every variable
	// a nonempty language; per Fig. 7 this is "no assignments found". (The
	// group stage already guarantees nonemptiness for group variables.)
	for _, a := range assignments {
		for _, lang := range a {
			if lang.IsEmpty() {
				if exhaustedErr != nil {
					return &Result{}, exhaustedErr
				}
				return &Result{}, nil
			}
		}
	}

	res.Assignments = assignments
	return res, exhaustedErr
}

// maximalizeGroup drives one group's disjuncts to maximal fixpoints,
// deduplicates language-equal results, and drops pointwise-subsumed (hence
// extendable) disjuncts. Dedup and pruning degrade under budget exhaustion
// (possibly keeping redundant disjuncts), never dropping a verified one.
func maximalizeGroup(maxer *maximizer, g *Graph, group []int, sols []map[int]*nfa.NFA) []map[int]*nfa.NFA {
	varNames := make([]string, 0, 4)
	for _, id := range group {
		if g.Nodes[id].Kind == VarNode {
			varNames = append(varNames, g.Nodes[id].Name)
		}
	}
	seen := map[string]bool{}
	var out []map[int]*nfa.NFA
	for si, sol := range sols {
		partial := Assignment{}
		for id, lang := range sol {
			partial[g.Nodes[id].Name] = lang
		}
		ma := maxer.maximalizeVars(partial, varNames)
		key, err := ma.FingerprintB(maxer.bud, varNames)
		if err != nil {
			key = fmt.Sprintf("!sol%d", si) // keep it: dedup degrades, solutions don't
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		back := map[int]*nfa.NFA{}
		for id := range sol {
			back[id] = ma.Lookup(g.Nodes[id].Name)
		}
		out = append(out, back)
	}
	return pruneSubsumedB(maxer.bud, out)
}

// Decide answers the RMA decision problem for the variables of interest:
// it returns a satisfying assignment covering them with nonempty languages,
// or nil (with ok=false) when none exists.
func Decide(s *System, interest []string, opts Options) (Assignment, bool, error) {
	a, ok, _, err := DecideCtx(context.Background(), s, interest, opts)
	return a, ok, err
}

// DecideCtx is Decide under a resource budget (see SolveCtx). On exhaustion
// it returns any satisfying witness found before the trip: a non-nil
// assignment is trustworthy even when err is non-nil, while ok=false with a
// non-nil err means "unknown", not "unsat". The returned Usage reports the
// resources consumed either way.
func DecideCtx(ctx context.Context, s *System, interest []string, opts Options) (Assignment, bool, budget.Usage, error) {
	res, err := SolveCtx(ctx, s, opts)
	if res == nil {
		res = &Result{}
	}
	for _, a := range res.Assignments {
		good := true
		for _, v := range interest {
			if a.Lookup(v).IsEmpty() {
				good = false
				break
			}
		}
		if good {
			return a, true, res.Usage, err
		}
	}
	return nil, false, res.Usage, err
}

// Witnesses extracts a shortest concrete string per variable from an
// assignment, the form needed to emit test inputs (paper §2). Variables
// are visited in sorted order so that, when several languages are empty,
// the reported variable does not depend on map iteration order.
func Witnesses(a Assignment) (map[string]string, error) {
	names := make([]string, 0, len(a))
	for v := range a {
		names = append(names, v)
	}
	sort.Strings(names)
	out := map[string]string{}
	for _, v := range names {
		w, ok := a[v].ShortestWitness()
		if !ok {
			return nil, fmt.Errorf("core: variable %s has an empty language", v)
		}
		out[v] = w
	}
	return out, nil
}
