package core

import (
	"fmt"
	"sort"

	"dprle/internal/budget"
	"dprle/internal/faultinject"
	"dprle/internal/nfa"
	"dprle/internal/solvecache"
)

// gci implements the generalized concat-intersect procedure of Fig. 8: it
// solves one CI-group — a set of variable and temp vertices connected by
// ⋈-edges — producing the set of disjunctive node-to-NFA solutions.
//
// The implementation follows the paper's two invariants:
//
//  1. Operation ordering: inbound subset constraints are processed before
//     concatenation constraints. Variables are intersected with their
//     constraining constants first; each temp's machine is intersected with
//     its constraining constants before the temp participates in an outer
//     concatenation.
//
//  2. Shared solution representation: the solution for a variable is a
//     sub-NFA of a larger "root" machine, delimited by seam ε-edges. Because
//     the cross-product construction preserves seam tags, every intersection
//     applied to a root machine is automatically reflected in the sub-NFAs
//     of all operands — the pointer-sharing of the paper realized through
//     tag propagation.
//
// A variable shared between several concat trees (Fig. 9's vb) has one
// induced sub-NFA per occurrence; for each combination of seam choices, the
// variable's language is the intersection of its occurrence machines, and
// the combination is kept only if every group variable is nonempty and the
// assignment verifies against every constraint in the group (paper §3.4.4:
// "for each candidate solution we must ensure that [vb] satisfies both
// constraints").
type gciSolver struct {
	g     *Graph
	opts  Options
	canon *constCache
	bud   *budget.Budget // resource budget; nil means unlimited

	varLang map[int]*nfa.NFA // var node → language after inbound subsets
	built   map[int]*nfa.NFA // temp node → machine with seam tags
}

// constCache canonicalizes constant languages (unless Options.RawConstants)
// and memoizes the result per constant. Canonicalization is a pure
// optimization — the minimal DFA recognizes the same language — so when the
// budget trips mid-minimization the cache degrades to the raw constant
// machine instead of failing the solve.
//
// The per-solve map (keyed by *Const identity) is the first level; when the
// solve carries a shared solvecache.Cache, minimized constants are also
// memoized across solves under the raw machine's canonical key, so a
// constant's minimization cost is paid once per structure process-wide
// rather than once per solve.
type constCache struct {
	raw    bool
	bud    *budget.Budget
	canon  map[*Const]*nfa.NFA
	shared *solvecache.Cache
}

func newConstCache(opts Options, bud *budget.Budget) *constCache {
	return &constCache{raw: opts.RawConstants, bud: bud, canon: map[*Const]*nfa.NFA{}, shared: opts.Cache}
}

func (cc *constCache) get(c *Const) *nfa.NFA {
	if cc.raw {
		return c.Lang
	}
	if m, ok := cc.canon[c]; ok {
		return m
	}
	var key string
	if cc.shared != nil {
		key = solvecache.Key("const", c.Lang.CanonicalKey())
		if v, ok := cc.shared.Get(key); ok {
			m := v.(*nfa.NFA)
			cc.canon[c] = m
			return m
		}
	}
	m, err := nfa.MinimizedB(cc.bud, c.Lang)
	if err != nil {
		return c.Lang // budget tripped: degrade to the equivalent raw machine
	}
	cc.canon[c] = m
	if cc.shared != nil && cc.bud.Err() == nil {
		cc.shared.Put(key, m, machineCost(m))
	}
	return m
}

// rootInfo describes one root machine of the group: a temp vertex that is
// not an operand of any other concatenation (the paper's "non-influenced
// node"), its concat-tree leaves in order, and the seam tags between them.
type rootInfo struct {
	temp   int
	m      *nfa.NFA
	leaves []int // node ids of the k leaves (vars or consts)
	seams  []int // k-1 seam tags in leaf order
	// choices enumerates, per seam position, the candidate seam edges found
	// in the trimmed root machine.
	choices [][]nfa.TaggedEdge
}

// occurrence ties a group variable to one leaf position of one root.
type occurrence struct {
	root int // index into roots
	leaf int // leaf position within the root
}

// solveGroup runs gci on the given CI-group. It returns the disjunctive
// solutions as maps from variable node id to language, and whether seam
// enumeration was truncated by the MaxCombos bound. An empty result means
// the group admits no assignment with all variables nonempty, which the
// worklist treats as "no assignments found" (Fig. 7, line 23).
func (s *gciSolver) solveGroup(group []int) ([]map[int]*nfa.NFA, error) {
	sols, _, err := s.solveGroupTrunc(group)
	return sols, err
}

// solveGroupTrunc solves one CI-group under the solver's budget. When the
// budget trips mid-group it returns the (verified) solutions found so far
// together with the budget's *Exhausted error; callers treat those partial
// solutions as genuine satisfying disjuncts whose enumeration is incomplete.
func (s *gciSolver) solveGroupTrunc(group []int) ([]map[int]*nfa.NFA, bool, error) {
	inGroup := map[int]bool{}
	for _, id := range group {
		inGroup[id] = true
	}

	// Stage 1 (ordering invariant): inbound subset constraints on variables.
	for _, id := range group {
		if err := s.bud.Check("gci.var-subsets"); err != nil {
			return nil, false, err
		}
		n := s.g.Nodes[id]
		if n.Kind != VarNode {
			continue
		}
		lang := nfa.AnyString()
		for _, c := range s.g.SubsetsInto(id) {
			li, err := nfa.IntersectB(s.bud, lang, s.canon.get(c))
			if err != nil {
				return nil, false, err
			}
			lang = li.Trim()
		}
		s.varLang[id] = s.maybeMin(lang)
	}

	// Stage 2: build temp machines bottom-up, applying each temp's inbound
	// subset constraints as soon as the temp's machine exists.
	order, err := s.topoTemps(group)
	if err != nil {
		return nil, false, err
	}
	for _, tid := range order {
		if err := s.bud.Check("gci.temps"); err != nil {
			return nil, false, err
		}
		pair, ok := s.g.pairByResult(tid)
		if !ok {
			return nil, false, fmt.Errorf("core: temp node %d has no defining concat pair", tid)
		}
		left, err := s.operandMachine(pair.Left)
		if err != nil {
			return nil, false, err
		}
		right, err := s.operandMachine(pair.Right)
		if err != nil {
			return nil, false, err
		}
		m := nfa.ConcatTagged(left, right, pair.Tag)
		for _, c := range s.g.SubsetsInto(tid) {
			mi, err := nfa.IntersectB(s.bud, m, s.canon.get(c))
			if err != nil {
				return nil, false, err
			}
			m = mi.Trim()
		}
		s.built[tid] = m
	}

	// Stage 3: identify roots and their leaf/seam structure, then enumerate
	// seam choices per root.
	var roots []*rootInfo
	occs := map[int][]occurrence{} // var node → occurrences
	for _, tid := range order {
		if len(s.g.pairsUsing(tid)) > 0 {
			continue // influenced node: embedded in a larger machine
		}
		ri := &rootInfo{temp: tid, m: s.built[tid].Trim()}
		ri.leaves, ri.seams = s.leafSpans(tid)
		edgesByTag := map[int][]nfa.TaggedEdge{}
		for _, e := range ri.m.TaggedEdges() {
			edgesByTag[e.Tag] = append(edgesByTag[e.Tag], e)
		}
		for _, tag := range ri.seams {
			edges := edgesByTag[tag]
			if len(edges) == 0 {
				// Some seam cannot be crossed: the root's language is empty,
				// so the group has no all-nonempty assignment.
				return nil, false, nil
			}
			ri.choices = append(ri.choices, edges)
		}
		rootIdx := len(roots)
		roots = append(roots, ri)
		for leafIdx, leaf := range ri.leaves {
			if s.g.Nodes[leaf].Kind == VarNode {
				occs[leaf] = append(occs[leaf], occurrence{root: rootIdx, leaf: leafIdx})
			}
		}
	}
	if len(roots) == 0 {
		return nil, false, fmt.Errorf("core: CI-group %v has no root", group)
	}

	// Stage 4: enumerate combinations of seam choices across all roots and
	// reconcile shared variables. Solutions appended before a budget trip are
	// already verified (comboSatisfies passed), so they are returned alongside
	// the error as a usable partial result.
	combos, truncated := s.enumerateCombos(roots)
	var solutions []map[int]*nfa.NFA
	seen := map[string]bool{}
	for ci, combo := range combos {
		if faultinject.Fire(faultinject.GCIPop) {
			return solutions, truncated, s.bud.Inject("gci.pop")
		}
		if err := s.bud.Check("gci.combos"); err != nil {
			return solutions, truncated, err
		}
		sol, ok, err := s.evalCombo(roots, combo, occs)
		if err != nil {
			return solutions, truncated, err
		}
		if !ok {
			continue
		}
		ok, err = s.comboSatisfies(group, sol)
		if err != nil {
			return solutions, truncated, err
		}
		if !ok {
			continue
		}
		key := s.solutionKey(sol, ci)
		if seen[key] {
			continue
		}
		seen[key] = true
		solutions = append(solutions, sol)
	}
	return s.pruneSubsumed(solutions), truncated, nil
}

// maybeMin minimizes a machine when the Minimize option is on. Minimization
// is language-preserving, so on budget exhaustion it degrades to the input
// machine rather than failing the solve.
func (s *gciSolver) maybeMin(m *nfa.NFA) *nfa.NFA {
	if s.opts.Minimize {
		mm, err := nfa.MinimizedB(s.bud, m)
		if err != nil {
			return m
		}
		return mm
	}
	return m
}

// operandMachine returns the machine feeding a concat operand: a constant's
// language, a variable's post-subset language, or a previously built temp.
func (s *gciSolver) operandMachine(id int) (*nfa.NFA, error) {
	n := s.g.Nodes[id]
	switch n.Kind {
	case ConstNode:
		return s.canon.get(n.Con), nil
	case VarNode:
		if m, ok := s.varLang[id]; ok {
			return m, nil
		}
		return nil, fmt.Errorf("core: variable %s used before its subsets were applied", n.Name)
	case TempNode:
		if m, ok := s.built[id]; ok {
			return m, nil
		}
		return nil, fmt.Errorf("core: temp %s used before it was built", n.Name)
	}
	return nil, fmt.Errorf("core: unknown node kind %v", n.Kind)
}

// topoTemps orders the group's temp nodes so operands precede results
// (Fig. 8, line 2). Each temp is the result of exactly one pair and the
// operand of at most one, so the pairs form a forest and a simple
// depth-count sort suffices.
func (s *gciSolver) topoTemps(group []int) ([]int, error) {
	depth := map[int]int{}
	var measure func(id int) (int, error)
	measure = func(id int) (int, error) {
		if d, ok := depth[id]; ok {
			if d < 0 {
				return 0, fmt.Errorf("core: cyclic concatenation structure at node %d", id)
			}
			return d, nil
		}
		n := s.g.Nodes[id]
		if n.Kind != TempNode {
			return 0, nil
		}
		depth[id] = -1 // in progress
		pair, ok := s.g.pairByResult(id)
		if !ok {
			return 0, fmt.Errorf("core: temp node %d has no defining pair", id)
		}
		dl, err := measure(pair.Left)
		if err != nil {
			return 0, err
		}
		dr, err := measure(pair.Right)
		if err != nil {
			return 0, err
		}
		d := 1 + max(dl, dr)
		depth[id] = d
		return d, nil
	}
	var temps []int
	for _, id := range group {
		if s.g.Nodes[id].Kind == TempNode {
			if _, err := measure(id); err != nil {
				return nil, err
			}
			temps = append(temps, id)
		}
	}
	// Sort ascending by depth (stable on id for determinism).
	for i := 1; i < len(temps); i++ {
		for j := i; j > 0; j-- {
			a, b := temps[j], temps[j-1]
			if depth[a] < depth[b] || (depth[a] == depth[b] && a < b) {
				temps[j], temps[j-1] = temps[j-1], temps[j]
			} else {
				break
			}
		}
	}
	return temps, nil
}

// leafSpans returns the in-order leaves of the concat tree rooted at temp
// and the seam tags separating consecutive leaves.
func (s *gciSolver) leafSpans(temp int) (leaves []int, seams []int) {
	var walk func(id int)
	walk = func(id int) {
		if s.g.Nodes[id].Kind == TempNode {
			pair, _ := s.g.pairByResult(id)
			walk(pair.Left)
			seams = append(seams, pair.Tag)
			walk(pair.Right)
			return
		}
		leaves = append(leaves, id)
	}
	walk(temp)
	return leaves, seams
}

// comboChoice holds, per root, the chosen seam edge for each seam position.
type comboChoice [][]nfa.TaggedEdge

// enumerateCombos produces the Cartesian product of seam choices across all
// roots (the all_combinations step of Fig. 8), capped at opts.maxCombos();
// truncated reports whether the cap cut enumeration short. Enumeration works
// like an odometer over the flattened (root, seam) slots.
func (s *gciSolver) enumerateCombos(roots []*rootInfo) (combos []comboChoice, truncated bool) {
	limit := s.opts.maxCombos()
	type slot struct {
		root, seam int
		edges      []nfa.TaggedEdge
	}
	var slots []slot
	for ri, root := range roots {
		for si, edges := range root.choices {
			slots = append(slots, slot{root: ri, seam: si, edges: edges})
		}
	}
	idx := make([]int, len(slots))
	for {
		c := make(comboChoice, len(roots))
		for ri, root := range roots {
			c[ri] = make([]nfa.TaggedEdge, len(root.seams))
		}
		for k, sl := range slots {
			c[sl.root][sl.seam] = sl.edges[idx[k]]
		}
		combos = append(combos, c)
		// Advance the odometer.
		k := 0
		for ; k < len(slots); k++ {
			idx[k]++
			if idx[k] < len(slots[k].edges) {
				break
			}
			idx[k] = 0
		}
		if k == len(slots) {
			return combos, false // enumeration complete
		}
		if len(combos) >= limit {
			return combos, true
		}
	}
}

// evalCombo computes the candidate assignment induced by one combination of
// seam choices: every leaf span is sliced out of its root machine, and each
// variable receives the intersection of its occurrence machines. It reports
// ok=false when any span or variable comes out empty, and a non-nil error
// when the budget trips mid-intersection.
func (s *gciSolver) evalCombo(roots []*rootInfo, combo comboChoice, occs map[int][]occurrence) (map[int]*nfa.NFA, bool, error) {
	// spanMachine(root r, leaf i) = Induce(prevSeam.To | start, nextSeam.From | final).
	spans := make([][]*nfa.NFA, len(roots))
	for ri, root := range roots {
		spans[ri] = make([]*nfa.NFA, len(root.leaves))
		for li := range root.leaves {
			from := root.m.Start()
			if li > 0 {
				from = combo[ri][li-1].To
			}
			to := root.m.Final()
			if li < len(root.seams) {
				to = combo[ri][li].From
			}
			sp := root.m.Induce(from, to)
			if sp.IsEmpty() {
				return nil, false, nil
			}
			spans[ri][li] = sp
		}
	}
	sol := map[int]*nfa.NFA{}
	// Sorted order keeps budget accounting deterministic: which variable's
	// intersection trips an exhausted budget first must not depend on map
	// iteration order.
	varIDs := make([]int, 0, len(occs))
	for varID := range occs {
		varIDs = append(varIDs, varID)
	}
	sort.Ints(varIDs)
	for _, varID := range varIDs {
		os := occs[varID]
		machines := make([]*nfa.NFA, 0, len(os))
		for _, o := range os {
			machines = append(machines, spans[o.root][o.leaf])
		}
		li, err := nfa.IntersectAllB(s.bud, machines...)
		if err != nil {
			return nil, false, err
		}
		lang := li.Trim()
		if lang.IsEmpty() {
			return nil, false, nil
		}
		sol[varID] = s.maybeMin(lang)
	}
	return sol, true, nil
}

// comboSatisfies verifies a candidate assignment against every subset
// constraint whose left-hand side lies in the group: each temp's language,
// rebuilt from the assignment (constants fixed), must be contained in all of
// its constraining constants. Variable-level constraints hold by
// construction (spans are sub-machines of post-subset operand machines).
func (s *gciSolver) comboSatisfies(group []int, sol map[int]*nfa.NFA) (bool, error) {
	var evalNode func(id int) *nfa.NFA
	memo := map[int]*nfa.NFA{}
	evalNode = func(id int) *nfa.NFA {
		if m, ok := memo[id]; ok {
			return m
		}
		n := s.g.Nodes[id]
		var m *nfa.NFA
		switch n.Kind {
		case ConstNode:
			m = s.canon.get(n.Con)
		case VarNode:
			m = sol[id]
			if m == nil {
				m = s.varLang[id]
			}
		case TempNode:
			pair, _ := s.g.pairByResult(id)
			m = nfa.Concat(evalNode(pair.Left), evalNode(pair.Right))
		}
		memo[id] = m
		return m
	}
	for _, id := range group {
		if s.g.Nodes[id].Kind != TempNode {
			continue
		}
		lang := evalNode(id)
		for _, c := range s.g.SubsetsInto(id) {
			ok, err := nfa.SubsetB(s.bud, lang, s.canon.get(c))
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
	}
	return true, nil
}

// solutionKey fingerprints a node-to-NFA solution for deduplication. When the
// budget trips mid-fingerprint the key degrades to one unique per enumeration
// position (ord), so a verified solution is kept rather than wrongly merged.
func (s *gciSolver) solutionKey(sol map[int]*nfa.NFA, ord int) string {
	ids := make([]int, 0, len(sol))
	for id := range sol {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	key := ""
	for _, id := range ids {
		fp, err := nfa.FingerprintB(s.bud, sol[id])
		if err != nil {
			return fmt.Sprintf("!combo%d", ord)
		}
		key += fmt.Sprintf("%d:%s;", id, fp)
	}
	return key
}

// pruneSubsumed drops solutions that are pointwise subsumed by another
// solution: such assignments are extendable and therefore not maximal.
// Pruning is an optimization — every input is a verified satisfying
// assignment — so on budget exhaustion it degrades to the unpruned set.
func (s *gciSolver) pruneSubsumed(sols []map[int]*nfa.NFA) []map[int]*nfa.NFA {
	return pruneSubsumedB(s.bud, sols)
}

func pruneSubsumedB(bud *budget.Budget, sols []map[int]*nfa.NFA) []map[int]*nfa.NFA {
	var out []map[int]*nfa.NFA
	for i, a := range sols {
		subsumed := false
		for j, b := range sols {
			if i == j {
				continue
			}
			ab, err := pointwiseSubset(bud, a, b)
			if err != nil {
				return sols
			}
			ba, err := pointwiseSubset(bud, b, a)
			if err != nil {
				return sols
			}
			if ab && !ba {
				subsumed = true
				break
			}
		}
		if !subsumed {
			out = append(out, a)
		}
	}
	return out
}

func pointwiseSubset(bud *budget.Budget, a, b map[int]*nfa.NFA) (bool, error) {
	// Sorted order: whether a budget trip or a definitive non-subset is
	// reported first must not depend on map iteration order.
	ids := make([]int, 0, len(a))
	for id := range a {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		la := a[id]
		lb, ok := b[id]
		if !ok {
			return false, nil
		}
		sub, err := nfa.SubsetB(bud, la, lb)
		if err != nil {
			return false, err
		}
		if !sub {
			return false, nil
		}
	}
	return true, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
