package core

import (
	"strings"
	"testing"

	"dprle/internal/nfa"
	"dprle/internal/regex"
)

// motivatingSystem builds the constraint system of §3.1/Fig. 6:
//
//	v1 ⊆ c1        (the incomplete input filter)
//	c2 · v1 ⊆ c3   (the nid_-prefixed query must be unsafe)
func motivatingSystem(t *testing.T) (*System, *Const, *Const, *Const) {
	t.Helper()
	s := NewSystem()
	c1 := s.MustConst("c1", regex.MustMatchLanguage(`[\d]+$`))
	c2 := s.MustConst("c2", nfa.Literal("nid_"))
	c3 := s.MustConst("c3", regex.MustMatchLanguage(`'`))
	s.MustAdd(Var{"v1"}, c1)
	s.MustAdd(Cat{Left: c2, Right: Var{"v1"}}, c3)
	return s, c1, c2, c3
}

func TestFigure6DependencyGraph(t *testing.T) {
	s, _, _, _ := motivatingSystem(t)
	g := BuildGraph(s)

	// Vertices: v1, c1, c2, t0, c3 — five nodes (Fig. 6).
	if len(g.Nodes) != 5 {
		t.Fatalf("nodes = %d, want 5\n%s", len(g.Nodes), g)
	}
	var vars, consts, temps int
	for _, n := range g.Nodes {
		switch n.Kind {
		case VarNode:
			vars++
		case ConstNode:
			consts++
		case TempNode:
			temps++
		}
	}
	if vars != 1 || consts != 3 || temps != 1 {
		t.Fatalf("kinds = %d vars, %d consts, %d temps", vars, consts, temps)
	}
	// Two ↪-edges (c1 ↪ v1, c3 ↪ t0) and one ⋈-pair.
	if len(g.Subsets) != 2 {
		t.Fatalf("subset edges = %d, want 2", len(g.Subsets))
	}
	if len(g.Concats) != 1 {
		t.Fatalf("concat pairs = %d, want 1", len(g.Concats))
	}
	p := g.Concats[0]
	if g.Nodes[p.Left].Name != "c2" || g.Nodes[p.Right].Name != "v1" {
		t.Fatalf("concat pair wires %s ⋈ %s", g.Nodes[p.Left].Name, g.Nodes[p.Right].Name)
	}
	if !strings.Contains(g.String(), "↪") {
		t.Fatal("graph String() should render subset edges")
	}
}

func TestNodeDedupAcrossConstraints(t *testing.T) {
	// The node function returns one vertex per unique variable/constant,
	// but a fresh temp per concatenation (Fig. 5).
	s := NewSystem()
	c := s.MustConst("c", nfa.AnyString())
	s.MustAdd(Cat{Left: Var{"v"}, Right: Var{"w"}}, c)
	s.MustAdd(Cat{Left: Var{"v"}, Right: Var{"w"}}, c)
	g := BuildGraph(s)
	varNodes := 0
	tempNodes := 0
	for _, n := range g.Nodes {
		switch n.Kind {
		case VarNode:
			varNodes++
		case TempNode:
			tempNodes++
		}
	}
	if varNodes != 2 {
		t.Fatalf("var nodes = %d, want 2 (v, w deduped)", varNodes)
	}
	if tempNodes != 2 {
		t.Fatalf("temp nodes = %d, want 2 (fresh per concat)", tempNodes)
	}
}

func TestCIGroupsConnectivity(t *testing.T) {
	// Fig. 9 shape: va·vb ⊆ c1, vb·vc ⊆ c2 — one group {va,vb,vc,t0,t1}.
	s := NewSystem()
	c1 := s.MustConst("c1", nfa.AnyString())
	c2 := s.MustConst("c2", nfa.AnyString())
	s.MustAdd(Cat{Left: Var{"va"}, Right: Var{"vb"}}, c1)
	s.MustAdd(Cat{Left: Var{"vb"}, Right: Var{"vc"}}, c2)
	g := BuildGraph(s)
	groups := g.CIGroups()
	if len(groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(groups))
	}
	if len(groups[0]) != 5 {
		t.Fatalf("group size = %d, want 5 (va vb vc t0 t1)", len(groups[0]))
	}
}

func TestCIGroupsIndependent(t *testing.T) {
	// Two concatenations sharing only a constant stay independent.
	s := NewSystem()
	c := s.MustConst("c", nfa.AnyString())
	k := s.MustConst("k", nfa.Literal("k"))
	s.MustAdd(Cat{Left: k, Right: Var{"v1"}}, c)
	s.MustAdd(Cat{Left: k, Right: Var{"v2"}}, c)
	g := BuildGraph(s)
	if n := len(g.CIGroups()); n != 2 {
		t.Fatalf("groups = %d, want 2", n)
	}
}

func TestFreeVars(t *testing.T) {
	s := NewSystem()
	c := s.MustConst("c", nfa.AnyString())
	s.MustAdd(Var{"free"}, c)
	s.MustAdd(Cat{Left: Var{"a"}, Right: Var{"b"}}, c)
	g := BuildGraph(s)
	free := g.FreeVars()
	if len(free) != 1 || g.Nodes[free[0]].Name != "free" {
		t.Fatalf("free vars = %v", free)
	}
}

func TestOrDesugaring(t *testing.T) {
	s := NewSystem()
	c := s.MustConst("c", nfa.AnyString())
	s.MustAdd(Or{Left: Var{"a"}, Right: Var{"b"}}, c)
	if got := len(s.desugared()); got != 2 {
		t.Fatalf("desugared constraints = %d, want 2", got)
	}
	// Union under concatenation distributes.
	s2 := NewSystem()
	c2 := s2.MustConst("c", nfa.AnyString())
	s2.MustAdd(Cat{Left: Or{Left: Var{"a"}, Right: Var{"b"}}, Right: Var{"x"}}, c2)
	if got := len(s2.desugared()); got != 2 {
		t.Fatalf("desugared constraints = %d, want 2", got)
	}
}

func TestSystemConstInterning(t *testing.T) {
	s := NewSystem()
	a := s.MustConst("k", nfa.Literal("k"))
	b := s.MustConst("k", nfa.Literal("k")) // equivalent: same object
	if a != b {
		t.Fatal("equivalent redefinition should return the interned constant")
	}
	if _, err := s.Const("k", nfa.Literal("other")); err == nil {
		t.Fatal("conflicting redefinition must error")
	}
	anon1 := s.AnonConst(nfa.Literal("x"))
	anon2 := s.AnonConst(nfa.Literal("y"))
	if anon1.Name == anon2.Name {
		t.Fatal("anonymous constants must get distinct names")
	}
}

func TestSystemRejectsEmptyVarName(t *testing.T) {
	s := NewSystem()
	c := s.MustConst("c", nfa.AnyString())
	if err := s.Add(Var{""}, c); err == nil {
		t.Fatal("empty variable name must error")
	}
}

func TestConcatAll(t *testing.T) {
	e := ConcatAll(Var{"a"}, Var{"b"}, Var{"c"})
	if e.exprString() != "((a . b) . c)" {
		t.Fatalf("ConcatAll = %s", e.exprString())
	}
}

func TestAssignmentEval(t *testing.T) {
	a := Assignment{"v": nfa.Literal("x")}
	k := &Const{Name: "k", Lang: nfa.Literal("y")}
	m := a.Eval(Cat{Left: Var{"v"}, Right: k})
	if !m.Accepts("xy") || m.Accepts("x") {
		t.Fatal("Eval concat wrong")
	}
	u := a.Eval(Or{Left: Var{"v"}, Right: k})
	if !u.Accepts("x") || !u.Accepts("y") {
		t.Fatal("Eval union wrong")
	}
	if !a.Lookup("missing").IsEmpty() {
		t.Fatal("missing variable should evaluate to ∅")
	}
}

func TestSystemString(t *testing.T) {
	s, _, _, _ := motivatingSystem(t)
	str := s.String()
	if !strings.Contains(str, "v1 ⊆ c1") || !strings.Contains(str, "(c2 . v1) ⊆ c3") {
		t.Fatalf("System.String() = %q", str)
	}
}

func TestGraphDot(t *testing.T) {
	s, _, _, _ := motivatingSystem(t)
	g := BuildGraph(s)
	dot := g.Dot("fig6")
	for _, want := range []string{"digraph", "shape=box", "shape=circle", "shape=diamond", "⊆", "l/0", "r/0"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot missing %q:\n%s", want, dot)
		}
	}
}
