package budget

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"dprle/internal/faultinject"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	for i := 0; i < 1000; i++ {
		if err := b.Check("x"); err != nil {
			t.Fatal(err)
		}
		if err := b.AddStates(100, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if u := b.Usage(); u != (Usage{}) {
		t.Fatalf("usage = %+v", u)
	}
}

func TestMaxStatesTrips(t *testing.T) {
	b := New(context.Background(), Limits{MaxStates: 100})
	var err error
	for i := 0; i < 200 && err == nil; i++ {
		err = b.AddStates(1, "stage-a")
	}
	var ex *Exhausted
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v", err)
	}
	if ex.Kind != States || ex.Stage != "stage-a" || ex.Limit != 100 {
		t.Fatalf("ex = %+v", ex)
	}
	if u := b.Usage(); !u.Exhausted || u.States != 101 {
		t.Fatalf("usage = %+v", u)
	}
}

func TestMaxStepsTrips(t *testing.T) {
	b := New(context.Background(), Limits{MaxSteps: 5})
	var err error
	for i := 0; i < 10 && err == nil; i++ {
		err = b.Check("loop")
	}
	var ex *Exhausted
	if !errors.As(err, &ex) || ex.Kind != Steps {
		t.Fatalf("err = %v", err)
	}
}

func TestDeadlineTripsAndUnwrap(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done()
	b := New(ctx, Limits{})
	err := b.Check("waiting")
	var ex *Exhausted
	if !errors.As(err, &ex) || ex.Kind != Deadline {
		t.Fatalf("err = %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("Exhausted should unwrap to context.DeadlineExceeded")
	}
}

func TestCancellationTripsOnStatePath(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := New(ctx, Limits{})
	var err error
	// The context is polled on an amortized schedule, so a single AddStates
	// may pass; within one poll window it must trip.
	for i := 0; i <= ctxPollMask+1 && err == nil; i++ {
		err = b.AddStates(1, "alloc")
	}
	var ex *Exhausted
	if !errors.As(err, &ex) || ex.Kind != Canceled {
		t.Fatalf("err = %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("Exhausted should unwrap to context.Canceled")
	}
}

func TestTripIsSticky(t *testing.T) {
	b := New(context.Background(), Limits{MaxSteps: 1})
	_ = b.Check("a")
	first := b.Check("a")
	if first == nil {
		t.Fatal("expected trip")
	}
	// Every later probe, on any path, returns the same event immediately.
	if err := b.AddStates(1, "b"); err != first {
		t.Fatalf("AddStates after trip = %v, want the original %v", err, first)
	}
	if err := b.Check("c"); err != first {
		t.Fatalf("Check after trip = %v", err)
	}
	if err := b.Err(); err != first {
		t.Fatalf("Err = %v", err)
	}
}

func TestConcurrentCounting(t *testing.T) {
	b := New(context.Background(), Limits{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				_ = b.AddStates(1, "p")
				_ = b.Check("p")
			}
		}()
	}
	wg.Wait()
	u := b.Usage()
	if u.States != 8000 || u.Steps != 8000 || u.Exhausted {
		t.Fatalf("usage = %+v", u)
	}
}

func TestFaultInjectionAlloc(t *testing.T) {
	defer faultinject.Arm(faultinject.Alloc, 3)()
	b := New(context.Background(), Limits{})
	var err error
	n := 0
	for i := 0; i < 10 && err == nil; i++ {
		n++
		err = b.AddStates(1, "fi")
	}
	var ex *Exhausted
	if !errors.As(err, &ex) || ex.Kind != Injected {
		t.Fatalf("err = %v", err)
	}
	if n != 3 {
		t.Fatalf("fired on allocation %d, want 3", n)
	}
}

func TestFaultInjectionFiresOnce(t *testing.T) {
	disarm := faultinject.Arm(faultinject.Checkpoint, 1)
	defer disarm()
	if !faultinject.Fire(faultinject.Checkpoint) {
		t.Fatal("first occurrence should fire")
	}
	for i := 0; i < 5; i++ {
		if faultinject.Fire(faultinject.Checkpoint) {
			t.Fatal("fault fired twice")
		}
	}
	if faultinject.Fire(faultinject.Alloc) {
		t.Fatal("wrong point fired")
	}
}
