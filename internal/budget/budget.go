// Package budget implements resource governance for the solver pipeline: a
// wall-clock deadline (via context.Context), a bound on NFA states
// materialized by the worst-case-exponential constructions (product,
// subset construction, quotients), and a bound on coarse solver steps.
//
// One *Budget is threaded from the public API through internal/core down
// into the inner loops of internal/nfa. The expensive constructions call
// AddStates per materialized state; solver loop heads call Check. Both are
// cheap (an atomic add, with the context polled on an amortized schedule),
// safe for concurrent use by the parallel CI-group solvers, and sticky:
// once any caller trips the budget, every subsequent probe returns the same
// *Exhausted immediately, so deep call stacks unwind fast.
//
// A nil *Budget is valid everywhere and means "unlimited": all probes
// return nil and Usage is zero. This keeps the budget-oblivious entry
// points (nfa.Intersect, core.Solve, …) zero-cost.
package budget

import (
	"context"
	"fmt"
	"sync/atomic"

	"dprle/internal/faultinject"
)

// Kind identifies which budget tripped.
type Kind string

// The exhaustion kinds.
const (
	Deadline Kind = "deadline"       // the context's deadline passed
	Canceled Kind = "canceled"       // the context was canceled
	States   Kind = "max-states"     // MaxStates NFA states were materialized
	Steps    Kind = "max-steps"      // MaxSteps solver checkpoints were hit
	Injected Kind = "fault-injected" // a test fault fired (faultinject)
)

// Limits bounds a solve. Zero fields are unlimited; the wall-clock deadline
// comes from the context passed to New.
type Limits struct {
	// MaxStates caps the number of NFA states materialized by the
	// worst-case-exponential constructions (product, determinization,
	// quotient exploration) across the whole solve.
	MaxStates int64
	// MaxSteps caps the number of coarse solver checkpoints (seam combos
	// evaluated, maximalization probes, group stages).
	MaxSteps int64
}

// Usage reports the counters a solve consumed.
type Usage struct {
	// States is the number of NFA states materialized by the budgeted
	// constructions.
	States int64
	// Steps is the number of solver checkpoints passed.
	Steps int64
	// Exhausted reports that the budget tripped during the solve.
	Exhausted bool
}

// Exhausted is the structured error a tripped budget produces: which bound
// tripped, at which pipeline stage, and the counters consumed so far.
type Exhausted struct {
	Kind  Kind
	Stage string // pipeline stage of the probe that tripped, e.g. "nfa.intersect"
	// States and Steps are the counter values at the moment of the trip.
	States int64
	Steps  int64
	// Limit is the bound that tripped (0 for deadline/cancellation/fault).
	Limit int64
	cause error // the context error for Deadline/Canceled, else nil
}

// Error implements error.
func (e *Exhausted) Error() string {
	return fmt.Sprintf("budget exhausted: %s at %s (states=%d steps=%d limit=%d)",
		e.Kind, e.Stage, e.States, e.Steps, e.Limit)
}

// Unwrap exposes the underlying context error, so
// errors.Is(err, context.DeadlineExceeded) works through an Exhausted.
func (e *Exhausted) Unwrap() error { return e.cause }

// Budget carries the limits and counters of one solve. All methods are safe
// for concurrent use and valid on a nil receiver (unlimited, uncounted).
//
// The nil contract is load-bearing: Check and AddStates return nil
// immediately on a nil receiver, before consulting limits or fault
// injection, so a call like IntersectB(nil, ...) can never fail. The
// un-budgeted wrappers (nfa.Intersect and friends) discard the error on
// exactly that basis, and the budgetcheck analyzer permits a discarded *B
// error only when the budget argument is the literal nil.
type Budget struct {
	ctx     context.Context
	limits  Limits
	states  atomic.Int64
	steps   atomic.Int64
	tripped atomic.Pointer[Exhausted]
}

// New returns a budget drawing its deadline and cancellation from ctx and
// its counter bounds from l. A nil ctx means context.Background().
func New(ctx context.Context, l Limits) *Budget {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Budget{ctx: ctx, limits: l}
}

// ctxPollMask amortizes context polling on the per-state accounting path:
// the context is consulted once every ctxPollMask+1 states. Checkpoints
// (Check) always poll, since they sit at coarse loop heads.
const ctxPollMask = 63

// trip records the first exhaustion and returns it; later trips return the
// original, so every unwinding caller reports the same event.
func (b *Budget) trip(kind Kind, stage string, limit int64, cause error) *Exhausted {
	e := &Exhausted{
		Kind: kind, Stage: stage, Limit: limit, cause: cause,
		States: b.states.Load(), Steps: b.steps.Load(),
	}
	if b.tripped.CompareAndSwap(nil, e) {
		return e
	}
	return b.tripped.Load()
}

func (b *Budget) pollCtx(stage string) error {
	if err := b.ctx.Err(); err != nil {
		kind := Canceled
		if err == context.DeadlineExceeded {
			kind = Deadline
		}
		return b.trip(kind, stage, 0, err)
	}
	return nil
}

// Check is a cancellation checkpoint for solver loop heads: it counts one
// step, polls the context, and enforces MaxSteps. It returns the sticky
// *Exhausted once the budget has tripped.
//
// Check panics deliberately when the test-only faultinject.Crash point is
// armed: the chaos harness uses it to simulate an internal invariant
// violation at an arbitrary solver depth and prove the per-request recover
// boundaries hold. Production runs never arm faults.
func (b *Budget) Check(stage string) error {
	if b == nil {
		return nil
	}
	if e := b.tripped.Load(); e != nil {
		return e
	}
	if faultinject.Fire(faultinject.Crash) {
		panic(fmt.Sprintf("faultinject: injected crash at %s", stage))
	}
	n := b.steps.Add(1)
	if faultinject.Fire(faultinject.Checkpoint) {
		return b.trip(Injected, stage, n, nil)
	}
	if b.limits.MaxSteps > 0 && n > b.limits.MaxSteps {
		return b.trip(Steps, stage, b.limits.MaxSteps, nil)
	}
	return b.pollCtx(stage)
}

// AddStates accounts n NFA states materialized at the given stage and
// enforces MaxStates. The context is polled once every ctxPollMask+1
// states, so even a single long-running construction observes deadlines
// promptly without paying a context poll per state.
func (b *Budget) AddStates(n int64, stage string) error {
	if b == nil {
		return nil
	}
	if e := b.tripped.Load(); e != nil {
		return e
	}
	if faultinject.Fire(faultinject.Alloc) {
		return b.trip(Injected, stage, 0, nil)
	}
	v := b.states.Add(n)
	if b.limits.MaxStates > 0 && v > b.limits.MaxStates {
		return b.trip(States, stage, b.limits.MaxStates, nil)
	}
	if v&ctxPollMask < n {
		return b.pollCtx(stage)
	}
	return nil
}

// Preflight polls the context once without counting a step or consulting
// fault injection, so entry points can reject an already-expired context
// before doing any work. It returns the sticky *Exhausted once the budget
// has tripped.
func (b *Budget) Preflight(stage string) error {
	if b == nil {
		return nil
	}
	if e := b.tripped.Load(); e != nil {
		return e
	}
	return b.pollCtx(stage)
}

// Inject trips the budget with the Injected kind at the given stage. It
// backs the faultinject probes that live outside Check/AddStates (the gci
// worklist pop, the group Cartesian product): when such a site fires, the
// solver calls Inject so the whole pipeline unwinds with the same sticky
// *Exhausted any organic trip would produce. On a nil receiver it returns
// a bare *Exhausted, so the probe still yields a structured error.
func (b *Budget) Inject(stage string) error {
	if b == nil {
		return &Exhausted{Kind: Injected, Stage: stage}
	}
	return b.trip(Injected, stage, 0, nil)
}

// Err returns the recorded exhaustion, or nil while the budget holds.
func (b *Budget) Err() error {
	if b == nil {
		return nil
	}
	if e := b.tripped.Load(); e != nil {
		return e
	}
	return nil
}

// Usage snapshots the counters consumed so far.
func (b *Budget) Usage() Usage {
	if b == nil {
		return Usage{}
	}
	return Usage{
		States:    b.states.Load(),
		Steps:     b.steps.Load(),
		Exhausted: b.tripped.Load() != nil,
	}
}
