// Package policy defines the attack languages used as right-hand-side
// constants of the vulnerability constraint at a sink. The paper's
// experiments use "contains at least one single quote" as the unsafe-query
// approximation for SQL injection (§3.2, citing Wassermann & Su); this
// package provides that language plus stricter variants and an XSS policy.
package policy

import (
	"dprle/internal/nfa"
	"dprle/internal/regex"
)

// Policy names an attack language.
type Policy struct {
	Name string
	Lang *nfa.NFA
}

// SQLQuote is the paper's unsafe-query approximation: queries containing at
// least one single quote.
func SQLQuote() Policy {
	return Policy{Name: "sql-quote", Lang: regex.MustMatchLanguage(`'`)}
}

// SQLComment matches queries containing a SQL comment marker, the `--` used
// by the paper's example exploit to truncate the rest of the query.
func SQLComment() Policy {
	return Policy{Name: "sql-comment", Lang: regex.MustMatchLanguage(`--`)}
}

// SQLTautology matches queries containing an OR-tautology of the form
// `OR <d>=<d>`, the paper's "OR 1=1" exploit shape.
func SQLTautology() Policy {
	return Policy{Name: "sql-tautology", Lang: regex.MustMatchLanguage(`OR [\d]+=[\d]+`)}
}

// SQLStacked matches queries containing a statement separator followed by a
// second statement keyword (the "; DROP …" shape of the paper's example).
func SQLStacked() Policy {
	return Policy{
		Name: "sql-stacked",
		Lang: regex.MustMatchLanguage(`;[ ]*(DROP|DELETE|INSERT|UPDATE)`),
	}
}

// SQLDefault is the policy the experiments use: the quote approximation.
func SQLDefault() Policy { return SQLQuote() }

// XSSScript matches output containing an opening script tag.
func XSSScript() Policy {
	return Policy{Name: "xss-script", Lang: regex.MustMatchLanguage(`<script`)}
}

// XSSDefault is the default XSS policy.
func XSSDefault() Policy { return XSSScript() }

// Combined unions several policies into one attack language.
func Combined(name string, ps ...Policy) Policy {
	langs := make([]*nfa.NFA, 0, len(ps))
	for _, p := range ps {
		langs = append(langs, p.Lang)
	}
	return Policy{Name: name, Lang: nfa.UnionAll(langs...)}
}
