package policy

import "testing"

func TestSQLQuote(t *testing.T) {
	p := SQLQuote()
	if !p.Lang.Accepts("SELECT * FROM t WHERE x='1'") {
		t.Fatal("quoted query should match")
	}
	if p.Lang.Accepts("SELECT * FROM t WHERE x=1") {
		t.Fatal("quote-free query should not match")
	}
}

func TestSQLComment(t *testing.T) {
	p := SQLComment()
	if !p.Lang.Accepts("SELECT 1 -- drop") || p.Lang.Accepts("SELECT 1 - 2") {
		t.Fatal("comment policy wrong")
	}
}

func TestSQLTautology(t *testing.T) {
	p := SQLTautology()
	if !p.Lang.Accepts("x=1 OR 1=1 ;") {
		t.Fatal("OR 1=1 should match")
	}
	if p.Lang.Accepts("ORDER BY 1") {
		t.Fatal("ORDER BY should not match")
	}
}

func TestSQLStacked(t *testing.T) {
	p := SQLStacked()
	if !p.Lang.Accepts("SELECT 1; DROP news") || !p.Lang.Accepts("x;  DELETE FROM t") {
		t.Fatal("stacked policy misses")
	}
	if p.Lang.Accepts("SELECT 1; SELECT 2") {
		t.Fatal("stacked policy over-matches")
	}
}

func TestXSSScript(t *testing.T) {
	p := XSSScript()
	if !p.Lang.Accepts("<div><script>alert(1)</script></div>") {
		t.Fatal("script tag should match")
	}
	if p.Lang.Accepts("<div>hello</div>") {
		t.Fatal("plain HTML should not match")
	}
}

func TestCombined(t *testing.T) {
	p := Combined("sql-any", SQLQuote(), SQLComment())
	if !p.Lang.Accepts("has ' quote") || !p.Lang.Accepts("has -- comment") {
		t.Fatal("combined policy misses parts")
	}
	if p.Lang.Accepts("benign") {
		t.Fatal("combined policy over-matches")
	}
	if p.Name != "sql-any" {
		t.Fatal("name lost")
	}
}

func TestDefaults(t *testing.T) {
	if SQLDefault().Name != "sql-quote" {
		t.Fatal("SQL default should be the paper's quote policy")
	}
	if XSSDefault().Name != "xss-script" {
		t.Fatal("XSS default wrong")
	}
}
