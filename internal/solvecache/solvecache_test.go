package solvecache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"dprle/internal/nfa"
)

func TestCacheLRUEviction(t *testing.T) {
	c := New(Config{MaxEntries: 2, MaxBytes: -1})
	c.Put("a", 1, 1)
	c.Put("b", 2, 1)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	c.Put("c", 3, 1) // evicts b: a was touched more recently
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s missing", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries", st)
	}
}

func TestCacheByteBudget(t *testing.T) {
	c := New(Config{MaxEntries: -1, MaxBytes: 100})
	c.Put("a", "x", 60)
	c.Put("b", "y", 60) // 120 > 100: evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("byte budget not enforced")
	}
	if st := c.Stats(); st.Bytes != 60 {
		t.Fatalf("bytes = %d, want 60", st.Bytes)
	}
	// A value larger than the whole budget is refused outright.
	c.Put("huge", "z", 200)
	if _, ok := c.Get("huge"); ok {
		t.Fatal("over-budget value was stored")
	}
}

func TestCacheReplaceAccountsCost(t *testing.T) {
	c := New(Config{MaxEntries: 10, MaxBytes: 100})
	c.Put("a", "v1", 30)
	c.Put("a", "v2", 50)
	st := c.Stats()
	if st.Bytes != 50 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want bytes 50, entries 1", st)
	}
	v, ok := c.Get("a")
	if !ok || v.(string) != "v2" {
		t.Fatalf("Get = %v, %v; want v2", v, ok)
	}
}

func TestCacheNilSafe(t *testing.T) {
	var c *Cache
	c.Put("a", 1, 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", st)
	}
}

func TestKeyInjective(t *testing.T) {
	// Part boundaries must matter: ("ab","c") ≠ ("a","bc") ≠ ("abc").
	keys := map[string]bool{
		Key("d", "ab", "c"): true,
		Key("d", "a", "bc"): true,
		Key("d", "abc"):     true,
		Key("e", "ab", "c"): true, // domain separation
	}
	if len(keys) != 4 {
		t.Fatalf("key collisions: got %d distinct keys, want 4", len(keys))
	}
	if Key("d", "a") != Key("d", "a") {
		t.Fatal("Key is not deterministic")
	}
}

func TestFlightCollapses(t *testing.T) {
	f := NewFlight()
	var calls atomic.Int64
	release := make(chan struct{})
	const n = 8
	var wg sync.WaitGroup
	sharedCount := atomic.Int64{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, shared := f.Do("k", func() (any, error) {
				calls.Add(1)
				<-release
				return 42, nil
			})
			if err != nil || v.(int) != 42 {
				t.Errorf("Do = %v, %v", v, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Let followers pile up behind the leader, then release it.
	for {
		f.mu.Lock()
		inflight := len(f.calls)
		f.mu.Unlock()
		if inflight == 1 {
			break
		}
	}
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	if got := sharedCount.Load(); got != n-1 {
		t.Fatalf("shared = %d, want %d", got, n-1)
	}
	// The key is gone: the next Do runs fresh.
	_, _, shared := f.Do("k", func() (any, error) { return 1, nil })
	if shared {
		t.Fatal("finished key still collapsing")
	}
}

func TestFlightDistinctKeysDoNotCollapse(t *testing.T) {
	f := NewFlight()
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("k%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _ = f.Do(key, func() (any, error) { calls.Add(1); return nil, nil })
		}()
	}
	wg.Wait()
	if got := calls.Load(); got != 4 {
		t.Fatalf("fn executed %d times, want 4", got)
	}
}

func TestFlightLeaderPanicWakesFollowers(t *testing.T) {
	f := NewFlight()
	c, leader := f.Join("k")
	if !leader {
		t.Fatal("first Join should lead")
	}
	done := make(chan error, 1)
	joined := make(chan struct{})
	go func() {
		fc, fl := f.Join("k")
		close(joined)
		if fl {
			done <- fmt.Errorf("follower became leader")
			return
		}
		<-fc.Done()
		_, err := fc.Result()
		done <- err
	}()
	<-joined
	func() {
		defer func() { _ = recover() }()
		defer func() {
			if r := recover(); r != nil {
				f.Finish("k", c, nil, ErrLeaderPanicked)
				panic(r)
			}
		}()
		panic("boom")
	}()
	if err := <-done; err != ErrLeaderPanicked {
		t.Fatalf("follower saw %v, want ErrLeaderPanicked", err)
	}
}

func TestNilFlightRunsEverything(t *testing.T) {
	var f *Flight
	var calls atomic.Int64
	for i := 0; i < 3; i++ {
		_, _, shared := f.Do("k", func() (any, error) { calls.Add(1); return nil, nil })
		if shared {
			t.Fatal("nil flight reported a shared result")
		}
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
}

func TestInternerDedups(t *testing.T) {
	c := New(Config{})
	in := NewInterner(c)
	a, keyA := in.Intern(nfa.Literal("ab"))
	b, keyB := in.Intern(nfa.Literal("ab"))
	if keyA != keyB {
		t.Fatal("identical machines got different canonical keys")
	}
	if a != b {
		t.Fatal("identical machines were not interned to one representative")
	}
	d, keyD := in.Intern(nfa.Literal("cd"))
	if d == a || keyD == keyA {
		t.Fatal("distinct machines were conflated")
	}
	// Inert interner passes machines through.
	m := nfa.Literal("x")
	got, _ := NewInterner(nil).Intern(m)
	if got != m {
		t.Fatal("inert interner did not return its input")
	}
}
