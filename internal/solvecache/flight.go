package solvecache

import (
	"errors"
	"sync"
)

// ErrLeaderPanicked is the outcome followers observe when the leader's
// computation panicked instead of finishing; the panic itself propagates on
// the leader's goroutine.
var ErrLeaderPanicked = errors.New("solvecache: flight leader panicked")

// Flight collapses concurrent duplicate work: callers Join a key, exactly
// one becomes the leader and computes, and every follower shares the
// leader's outcome. Unlike a cache, a Flight holds no history — a key lives
// only while its call is in flight. A nil *Flight disables collapsing:
// every Join leads.
type Flight struct {
	mu    sync.Mutex
	calls map[string]*Call
}

// NewFlight returns an empty Flight.
func NewFlight() *Flight {
	return &Flight{calls: make(map[string]*Call)}
}

// Call is one in-flight computation.
type Call struct {
	done chan struct{}
	val  any
	err  error
}

// Done is closed when the leader finishes the call.
func (c *Call) Done() <-chan struct{} { return c.done }

// Result returns the call's outcome. It must only be read after Done is
// closed.
func (c *Call) Result() (any, error) { return c.val, c.err }

// Join returns the call in flight for key, creating it if absent. The
// caller that created the call is the leader (leader == true) and MUST
// resolve it with Finish, even on panic paths — an unfinished call blocks
// its followers forever. Followers wait on Done with whatever deadline
// discipline suits them.
func (f *Flight) Join(key string) (c *Call, leader bool) {
	if f == nil {
		return &Call{done: make(chan struct{})}, true
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.calls[key]; ok {
		return c, false
	}
	c = &Call{done: make(chan struct{})}
	f.calls[key] = c
	return c, true
}

// Finish resolves a call created by Join, removes the key from the flight,
// and wakes all followers. Only the leader may call it, exactly once.
func (f *Flight) Finish(key string, c *Call, val any, err error) {
	if f != nil {
		f.mu.Lock()
		if cur, ok := f.calls[key]; ok && cur == c {
			delete(f.calls, key)
		}
		f.mu.Unlock()
	}
	c.val, c.err = val, err
	close(c.done)
}

// Do runs fn under the flight: the leader executes it, followers block for
// the shared outcome. shared reports whether the result came from another
// caller's execution.
func (f *Flight) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	c, leader := f.Join(key)
	if leader {
		defer func() {
			if r := recover(); r != nil {
				f.Finish(key, c, nil, ErrLeaderPanicked)
				panic(r)
			}
		}()
		val, err = fn()
		f.Finish(key, c, val, err)
		return val, err, false
	}
	<-c.Done()
	val, err = c.Result()
	return val, err, true
}
