package solvecache

import "dprle/internal/nfa"

// Interner dedups structurally-identical automata in memory: machines with
// equal canonical keys share one *nfa.NFA. The table rides on a Cache, so
// interned machines participate in the same LRU and byte accounting as
// solve results (cost is approximated by the canonical serialization
// length). Interning is safe because NFAs are immutable once built.
type Interner struct {
	c *Cache
}

// NewInterner returns an interner backed by c. A nil cache yields an inert
// interner that returns its inputs unchanged.
func NewInterner(c *Cache) *Interner { return &Interner{c: c} }

// Intern returns the shared representative for m's structure and m's
// canonical key. The first machine seen for a structure becomes the
// representative; later structurally-identical machines are dropped in
// favor of it.
func (in *Interner) Intern(m *nfa.NFA) (*nfa.NFA, string) {
	key := m.CanonicalKey()
	if in == nil || in.c == nil {
		return m, key
	}
	ck := Key("intern", key)
	if v, ok := in.c.Get(ck); ok {
		return v.(*nfa.NFA), key
	}
	in.c.Put(ck, m, int64(len(key)))
	return m, key
}
