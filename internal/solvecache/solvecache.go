// Package solvecache is the solver's memoization subsystem: a
// cost-accounted LRU keyed by canonical fingerprints, an interning table
// that dedups structurally-identical automata in memory, and a singleflight
// layer that collapses concurrent identical requests onto one solve.
//
// Keys are derived exclusively from canonical forms (nfa.CanonicalKey and
// the depgraph component descriptions built on it), never from pointers or
// raw state ids, so a key equality always witnesses structural equality —
// a cache hit can substitute for a solve but never confuse two systems.
// Partial or degraded results are never stored: the cache holds only
// complete, verified answers (see DESIGN.md §10).
package solvecache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
)

// Config bounds a Cache. The zero value selects the defaults; a negative
// value disables the corresponding bound.
type Config struct {
	// MaxEntries caps the number of cached values (default 4096).
	MaxEntries int
	// MaxBytes caps the total accounted cost of cached values
	// (default 64 MiB).
	MaxBytes int64
}

// Defaults for Config's zero values.
const (
	DefaultMaxEntries = 4096
	DefaultMaxBytes   = 64 << 20
)

func (c Config) withDefaults() Config {
	if c.MaxEntries == 0 {
		c.MaxEntries = DefaultMaxEntries
	}
	if c.MaxBytes == 0 {
		c.MaxBytes = DefaultMaxBytes
	}
	return c
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
}

type entry struct {
	key  string
	val  any
	cost int64
}

// Cache is a thread-safe, cost-accounted LRU. A nil *Cache is inert: Get
// always misses, Put discards, and Stats is zero — callers thread an
// optional cache without nil checks, mirroring the budget package's
// nil-receiver contract.
type Cache struct {
	mu    sync.Mutex
	cfg   Config
	ll    *list.List // front = most recently used; values are *entry
	items map[string]*list.Element
	bytes int64
	stats Stats
}

// New returns a Cache bounded by cfg.
func New(cfg Config) *Cache {
	return &Cache{
		cfg:   cfg.withDefaults(),
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the value cached under key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put stores val under key with the given accounted cost (bytes, by
// convention approximated as serialized size). A value whose cost alone
// exceeds the byte budget is not stored. Storing under an existing key
// replaces the old value.
func (c *Cache) Put(key string, val any, cost int64) {
	if c == nil {
		return
	}
	if cost < 0 {
		cost = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.MaxBytes > 0 && cost > c.cfg.MaxBytes {
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.bytes += cost - e.cost
		e.val, e.cost = val, cost
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, val: val, cost: cost})
		c.bytes += cost
	}
	c.stats.Puts++
	c.evictLocked()
}

// evictLocked drops least-recently-used entries until both bounds hold.
func (c *Cache) evictLocked() {
	over := func() bool {
		if c.cfg.MaxEntries > 0 && c.ll.Len() > c.cfg.MaxEntries {
			return true
		}
		return c.cfg.MaxBytes > 0 && c.bytes > c.cfg.MaxBytes
	}
	for over() {
		el := c.ll.Back()
		if el == nil {
			return
		}
		e := el.Value.(*entry)
		c.ll.Remove(el)
		delete(c.items, e.key)
		c.bytes -= e.cost
		c.stats.Evictions++
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.Bytes = c.bytes
	return s
}

// Key builds a collision-resistant cache key from a domain tag and a
// sequence of canonical parts: the hex SHA-256 of the length-prefixed
// concatenation. The length prefixes make the encoding injective, so two
// distinct part sequences can never alias. The domain tag ("component",
// "freevar", "response", …) keeps key spaces of different layers disjoint
// inside one shared Cache.
func Key(domain string, parts ...string) string {
	h := sha256.New()
	var lenBuf [8]byte
	write := func(s string) {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(s)))
		h.Write(lenBuf[:])
		h.Write([]byte(s))
	}
	write(domain)
	for _, p := range parts {
		write(p)
	}
	return domain + ":" + hex.EncodeToString(h.Sum(nil))
}
