// Package analysistest runs analyzers over fixture packages and checks
// their diagnostics against // want "regexp" comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract on the standard
// library alone.
//
// Fixtures live under <testdata>/src/<importpath>; a fixture package may
// import sibling fixture packages by their path relative to src (e.g. a
// fake "budget" package). Expected diagnostics are written as trailing
// line comments on the offending line:
//
//	m, _ := IntersectB(bud, a, b) // want `error result .* discarded`
//
// Each string after "want" is a regexp that must match the message of a
// diagnostic reported on that line; every reported diagnostic must be
// matched by exactly one such expectation.
package analysistest

import (
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dprle/internal/analysis"
)

// Run loads each fixture package from dir/src/<path>, applies the analyzer,
// and reports mismatches between diagnostics and want comments on t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	for _, path := range paths {
		runOne(t, dir, a, path, false)
	}
}

// RunWithSuggestedFixes is Run plus golden-file checking: after verifying
// diagnostics, it applies every suggested fix and compares the result of
// each rewritten file F against F+".golden".
func RunWithSuggestedFixes(t *testing.T, dir string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	for _, path := range paths {
		runOne(t, dir, a, path, true)
	}
}

// RunFixRoundTrip verifies that an analyzer's suggested fixes actually
// discharge its findings: it copies the fixture tree into a temporary
// directory, applies every suggested fix there, re-runs the analyzer on the
// rewritten packages, and asserts that zero findings remain and that every
// rewritten file is gofmt-clean. The fixture packages must therefore be
// fully fixable — every finding carries a fix.
func RunFixRoundTrip(t *testing.T, dir string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	tmp := filepath.Join(t.TempDir(), "src")
	copyGoTree(t, filepath.Join(dir, "src"), tmp)

	loader := analysis.NewSourceLoader(tmp)
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading fixture copy %s: %v", path, err)
		}
		findings, err := analysis.Run(pkg, loader.Fset, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		if len(findings) == 0 {
			t.Errorf("round-trip on %s is vacuous: no findings before fixing", path)
			continue
		}
		fixed, err := analysis.ApplyFixes(loader.Fset, pkg.Sources, findings)
		if err != nil {
			t.Fatalf("applying fixes for %s: %v", path, err)
		}
		if len(fixed) == 0 {
			t.Errorf("round-trip on %s is vacuous: findings carry no fixes", path)
			continue
		}
		for name, content := range fixed {
			if err := os.WriteFile(name, content, 0o644); err != nil {
				t.Fatalf("writing fixed %s: %v", name, err)
			}
		}
	}

	// A fresh loader over the rewritten tree: the fixes must have discharged
	// every finding, and the rewritten files must already be gofmt-clean.
	reloader := analysis.NewSourceLoader(tmp)
	for _, path := range paths {
		pkg, err := reloader.Load(path)
		if err != nil {
			t.Fatalf("reloading fixed %s: %v", path, err)
		}
		findings, err := analysis.Run(pkg, reloader.Fset, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("re-running %s on fixed %s: %v", a.Name, path, err)
		}
		for _, f := range findings {
			t.Errorf("finding survives its own fix in %s: %s", path, f)
		}
		for name, src := range pkg.Sources {
			formatted, err := format.Source(src)
			if err != nil {
				t.Fatalf("fixed %s does not parse: %v", name, err)
			}
			if string(formatted) != string(src) {
				t.Errorf("fixed %s is not gofmt-clean", name)
			}
		}
	}
}

// copyGoTree mirrors the .go files under src into dst, preserving the
// package layout; golden files and other artifacts are left behind.
func copyGoTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		if d.IsDir() {
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		if filepath.Ext(p) != ".go" {
			return nil
		}
		content, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), content, 0o644)
	})
	if err != nil {
		t.Fatalf("copying fixture tree: %v", err)
	}
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer, path string, fixes bool) {
	t.Helper()
	loader := analysis.NewSourceLoader(filepath.Join(dir, "src"))
	pkg, err := loader.Load(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	findings, err := analysis.Run(pkg, loader.Fset, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, path, err)
	}
	checkWants(t, loader, pkg, findings)
	if fixes {
		checkGolden(t, loader, pkg, findings)
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func checkWants(t *testing.T, loader *analysis.Loader, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := loader.Fset.Position(c.Pos())
				patterns, err := parsePatterns(rest)
				if err != nil {
					t.Fatalf("%s: bad want comment: %v", pos, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, p, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: p})
				}
			}
		}
	}
	for _, f := range findings {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// parsePatterns splits `"p1" "p2"` or backquoted forms into pattern strings.
func parsePatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("expected quoted regexp, got %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern in %q", s)
		}
		tok := s[:end+2]
		p, err := strconv.Unquote(tok)
		if err != nil {
			return nil, fmt.Errorf("unquoting %q: %v", tok, err)
		}
		out = append(out, p)
		s = strings.TrimSpace(s[end+2:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no patterns")
	}
	return out, nil
}

func checkGolden(t *testing.T, loader *analysis.Loader, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	fixed, err := analysis.ApplyFixes(loader.Fset, pkg.Sources, findings)
	if err != nil {
		t.Fatalf("applying fixes: %v", err)
	}
	for name, got := range fixed {
		goldenName := name + ".golden"
		wantSrc, err := os.ReadFile(goldenName)
		if err != nil {
			t.Errorf("missing golden file for fixed %s: %v", name, err)
			continue
		}
		wantFmt, err := format.Source(wantSrc)
		if err != nil {
			t.Fatalf("golden %s does not parse: %v", goldenName, err)
		}
		if string(got) != string(wantFmt) {
			t.Errorf("fixed %s differs from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, wantFmt)
		}
	}
	// Every golden file must correspond to a file some fix rewrote.
	for _, f := range pkg.Files {
		name := loader.Fset.Position(f.Pos()).Filename
		if _, err := os.Stat(name + ".golden"); err == nil {
			if _, ok := fixed[name]; !ok {
				t.Errorf("%s.golden exists but no fix rewrote %s", name, name)
			}
		}
	}
}
