// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports position-anchored
// Diagnostics, optionally carrying mechanical SuggestedFixes.
//
// The repository cannot vendor x/tools (no module downloads in the build
// environment), so this package provides the same shape on the standard
// library alone: go/parser + go/types for loading (see Loader), an
// analysistest-style fixture harness (see the analysistest subpackage), and
// a multichecker driver (cmd/dprlelint). Analyzers written against this
// package keep the upstream structure — Name, Doc, Run(*Pass) — so they can
// be ported to the real framework mechanically if x/tools becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static-analysis pass. Name is the identifier used in
// diagnostics and in //lint:ignore dprlelint/<name> suppression directives.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass presents one package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Sources maps file names (as recorded in Fset) to their raw bytes,
	// for analyzers that build suggested fixes from source text.
	Sources map[string][]byte

	report func(Diagnostic)
	stats  map[string]int
}

// Report records a diagnostic against the package under analysis.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// CountStat accumulates a named counter for this analyzer run — the channel
// through which analyzers surface the size of their deliberate
// approximations (e.g. call sites skipped for dynamic dispatch). The driver
// aggregates counters across packages and prints them under -stats.
func (p *Pass) CountStat(name string, delta int) {
	if p.stats == nil {
		p.stats = map[string]int{}
	}
	p.stats[name] += delta
}

// Reportf is a convenience wrapper for Report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos            token.Pos
	End            token.Pos // optional
	Message        string
	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is a mechanical rewrite that resolves a diagnostic.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A TextEdit replaces the source range [Pos, End) with NewText.
// Pos == End expresses a pure insertion.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}
