package dataflow

import (
	"fmt"
	"go/ast"
)

// A Fact is one lattice element. Facts are opaque to the solver; the
// Lattice supplies ordering-free structure (bottom, join, equality) and the
// Transfer supplies the semantics of nodes and branch edges.
type Fact interface{}

// A Lattice describes the join-semilattice an analysis computes over.
//
// Termination is by construction: the solver re-processes a block only when
// its input fact strictly rises, and Height bounds the length of any
// strictly rising chain, so the total number of block evaluations is at
// most |blocks| * (Height + 1). The solver enforces that bound explicitly
// (see ErrNonMonotone) instead of trusting the implementation: a buggy
// Join or Equal turns into an error, never an infinite loop.
type Lattice interface {
	// Bottom is the fact of an unreachable program point. The solver never
	// applies transfer functions to bottom inputs; blocks whose input stays
	// bottom are dead code.
	Bottom() Fact
	// Boundary is the fact at the analysis boundary: function entry for
	// forward analyses, function exit for backward ones.
	Boundary() Fact
	// Join computes the least upper bound of two facts.
	Join(a, b Fact) Fact
	// Equal reports whether two facts are the same lattice element.
	Equal(a, b Fact) bool
	// Height is (an upper bound on) the length of the longest strictly
	// rising chain bottom < f1 < ... < top.
	Height() int
}

// A Transfer gives the abstract semantics of one analysis.
type Transfer interface {
	// Node transforms the fact across one block node (a statement or a
	// condition leaf). It must be monotone in fact and must not mutate its
	// argument; return a fresh fact when anything changes.
	Node(n ast.Node, fact Fact) Fact
	// Branch refines the fact along a conditional edge: cond evaluated to
	// taken. It may return bottom to mark the edge infeasible. Like Node it
	// must not mutate its argument.
	Branch(cond ast.Expr, taken bool, fact Fact) Fact
}

// Direction selects forward (entry→exit) or backward (exit→entry) flow.
type Direction int

const (
	Forward Direction = iota
	Backward
)

// A Result holds the fixpoint: for each block ID, the fact at block entry
// (In) and block exit (Out), in the direction of the analysis — for
// backward analyses In[b] holds after b's last node and Out[b] before its
// first.
type Result struct {
	In  []Fact
	Out []Fact
}

// ErrNonMonotone is returned when the solver exceeds its iteration bound,
// which can only happen if the Lattice or Transfer breaks the monotonicity
// contract (or Height underestimates the true chain length).
var ErrNonMonotone = fmt.Errorf("dataflow: fixpoint iteration bound exceeded (non-monotone transfer or wrong lattice height)")

// Solve runs the worklist algorithm to fixpoint and returns the per-block
// facts. It performs at most (|blocks|+|edges|) * (Height+2) block
// evaluations and returns ErrNonMonotone beyond that, so it terminates on
// every input by construction.
func Solve(g *CFG, lat Lattice, tr Transfer, dir Direction) (*Result, error) {
	n := len(g.Blocks)
	res := &Result{In: make([]Fact, n), Out: make([]Fact, n)}
	bottom := lat.Bottom()
	for i := 0; i < n; i++ {
		res.In[i] = bottom
		res.Out[i] = bottom
	}

	// flow[b] lists the edges whose facts join to form In[b]; next[b] lists
	// the blocks to re-queue when Out[b] rises. Both are direction-adjusted
	// so one loop body serves forward and backward analyses.
	flow := make([][]predEdge, n)
	next := make([][]int, n)
	start := g.Entry
	if dir == Forward {
		flow = g.preds()
		for _, b := range g.Blocks {
			for _, e := range b.Succs {
				next[b.ID] = append(next[b.ID], e.To)
			}
		}
	} else {
		start = g.Exit
		for _, b := range g.Blocks {
			for _, e := range b.Succs {
				flow[b.ID] = append(flow[b.ID], predEdge{From: e.To, Edge: e})
				next[e.To] = append(next[e.To], b.ID)
			}
		}
	}

	// The worklist is a FIFO with membership bits: standard round-robin
	// iteration, deterministic because blocks enter in discovery order.
	queue := []int{start}
	queued := make([]bool, n)
	queued[start] = true

	// A block is re-queued only when a flow-in neighbor's Out strictly
	// rose. Each Out rises at most Height times, and each rise re-queues at
	// most the edge's targets once (the membership bits dedupe), so a
	// correct analysis pops at most n + |edges|*Height blocks; (n+E)*(H+2)
	// leaves slack. Exceeding the bound means the monotonicity contract is
	// broken; fail loudly instead of spinning.
	edges := 0
	for _, b := range g.Blocks {
		edges += len(b.Succs)
	}
	bound := (n + edges) * (lat.Height() + 2)
	if bound < n {
		bound = n
	}
	steps := 0

	for len(queue) > 0 {
		if steps++; steps > bound {
			return nil, ErrNonMonotone
		}
		id := queue[0]
		queue = queue[1:]
		queued[id] = false

		// In[id] = boundary (for the start block) ⊔ join over flow edges.
		in := bottom
		if id == start {
			in = lat.Boundary()
		}
		for _, pe := range flow[id] {
			f := res.Out[pe.From]
			if lat.Equal(f, bottom) {
				continue // unreachable neighbor contributes nothing
			}
			if pe.Edge.Cond != nil {
				f = tr.Branch(pe.Edge.Cond, pe.Edge.Taken, f)
			}
			in = lat.Join(in, f)
		}
		res.In[id] = in

		out := in
		if !lat.Equal(in, bottom) {
			out = applyNodes(g.Blocks[id], tr, in, dir)
		}
		if lat.Equal(out, res.Out[id]) {
			continue // no change: downstream blocks already saw this fact
		}
		res.Out[id] = out
		for _, t := range next[id] {
			if !queued[t] {
				queued[t] = true
				queue = append(queue, t)
			}
		}
	}
	return res, nil
}

// WalkForward replays a solved forward analysis over every reachable
// block, calling visit for each node with the fact that holds immediately
// before it. This is the reporting phase of the flow-sensitive analyzers:
// Solve computes the fixpoint, WalkForward pairs each program point with
// its fact so diagnostics fire only on feasible paths. Unreachable blocks
// (input still bottom) are skipped.
func WalkForward(g *CFG, lat Lattice, tr Transfer, res *Result, visit func(n ast.Node, before Fact)) {
	bottom := lat.Bottom()
	for _, b := range g.Blocks {
		f := res.In[b.ID]
		if lat.Equal(f, bottom) {
			continue
		}
		for _, n := range b.Nodes {
			visit(n, f)
			f = tr.Node(n, f)
		}
	}
}

// applyNodes folds the transfer function over the block's nodes in
// direction order.
func applyNodes(b *Block, tr Transfer, in Fact, dir Direction) Fact {
	f := in
	if dir == Forward {
		for _, n := range b.Nodes {
			f = tr.Node(n, f)
		}
		return f
	}
	for i := len(b.Nodes) - 1; i >= 0; i-- {
		f = tr.Node(b.Nodes[i], f)
	}
	return f
}
