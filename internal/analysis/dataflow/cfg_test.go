package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses src as a file, finds the function named name, and
// returns its CFG.
func buildFunc(t *testing.T, src, name string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == name {
			return New(fn.Body)
		}
	}
	t.Fatalf("no function %q in source", name)
	return nil
}

// checkInvariants asserts the structural properties every CFG must have:
// edge targets in range, condition edges in true/false pairs leaving the
// same block, and the exit block having no successors.
func checkInvariants(t *testing.T, g *CFG) {
	t.Helper()
	for _, b := range g.Blocks {
		conds := map[ast.Expr][]bool{}
		for _, e := range b.Succs {
			if e.To < 0 || e.To >= len(g.Blocks) {
				t.Errorf("b%d: edge target %d out of range", b.ID, e.To)
			}
			if e.Cond != nil {
				conds[e.Cond] = append(conds[e.Cond], e.Taken)
			}
		}
		for c, takens := range conds {
			if len(takens) != 2 || takens[0] == takens[1] {
				t.Errorf("b%d: condition %v has polarities %v, want one true and one false", b.ID, c, takens)
			}
		}
	}
	if n := len(g.Blocks[g.Exit].Succs); n != 0 {
		t.Errorf("exit block has %d successors, want 0", n)
	}
}

// reachable returns the set of blocks reachable from entry.
func reachable(g *CFG) map[int]bool {
	seen := map[int]bool{g.Entry: true}
	stack := []int{g.Entry}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Blocks[id].Succs {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

func TestIfElseJoin(t *testing.T) {
	g := buildFunc(t, `package p
func f(x int) int {
	y := 0
	if x > 0 {
		y = 1
	} else {
		y = 2
	}
	return y
}`, "f")
	checkInvariants(t, g)
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	// The branch block must carry a true and a false edge on x > 0.
	found := false
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.Cond != nil {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no condition edges built:\n%s", g)
	}
}

func TestShortCircuitDecomposition(t *testing.T) {
	g := buildFunc(t, `package p
func f(a, b, c bool) int {
	if a && (b || !c) {
		return 1
	}
	return 0
}`, "f")
	checkInvariants(t, g)
	// Three leaves (a, b, c) must each appear as an edge condition.
	leaves := map[string]bool{}
	for _, blk := range g.Blocks {
		for _, e := range blk.Succs {
			if id, ok := e.Cond.(*ast.Ident); ok {
				leaves[id.Name] = true
			}
		}
	}
	for _, name := range []string{"a", "b", "c"} {
		if !leaves[name] {
			t.Errorf("short-circuit leaf %s not on any edge:\n%s", name, g)
		}
	}
}

func TestLoopsBreakContinue(t *testing.T) {
	g := buildFunc(t, `package p
func f(n int) int {
	s := 0
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 3 {
				continue outer
			}
			if j == 4 {
				break outer
			}
			s += j
		}
	}
	return s
}`, "f")
	checkInvariants(t, g)
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	// The graph must contain a cycle (the loop back edge).
	if !hasCycle(g) {
		t.Errorf("loop produced no back edge:\n%s", g)
	}
}

func hasCycle(g *CFG) bool {
	color := make([]int, len(g.Blocks)) // 0 white, 1 gray, 2 black
	var dfs func(int) bool
	dfs = func(id int) bool {
		color[id] = 1
		for _, e := range g.Blocks[id].Succs {
			if color[e.To] == 1 {
				return true
			}
			if color[e.To] == 0 && dfs(e.To) {
				return true
			}
		}
		color[id] = 2
		return false
	}
	return dfs(g.Entry)
}

func TestReturnAndPanicTerminate(t *testing.T) {
	g := buildFunc(t, `package p
func f(x int) int {
	if x < 0 {
		panic("negative")
	}
	if x == 0 {
		return 7
	}
	return x
}`, "f")
	checkInvariants(t, g)
	// Every reachable block without successors must be the exit.
	for id := range reachable(g) {
		b := g.Blocks[id]
		if len(b.Succs) == 0 && id != g.Exit {
			t.Errorf("reachable b%d dead-ends outside exit:\n%s", id, g)
		}
	}
}

func TestTaglessSwitchIsChain(t *testing.T) {
	g := buildFunc(t, `package p
func f(x int) string {
	switch {
	case x < 0:
		return "neg"
	case x == 0, x == 1:
		return "small"
	default:
		return "big"
	}
}`, "f")
	checkInvariants(t, g)
	// All three case conditions appear as edge conditions.
	n := 0
	seen := map[ast.Expr]bool{}
	for _, blk := range g.Blocks {
		for _, e := range blk.Succs {
			if e.Cond != nil && !seen[e.Cond] {
				seen[e.Cond] = true
				n++
			}
		}
	}
	if n != 3 {
		t.Errorf("tag-less switch produced %d distinct conditions, want 3:\n%s", n, g)
	}
}

func TestTaggedSwitchFallthrough(t *testing.T) {
	g := buildFunc(t, `package p
func f(x int) int {
	y := 0
	switch x {
	case 1:
		y = 1
		fallthrough
	case 2:
		y += 2
	default:
		y = 9
	}
	return y
}`, "f")
	checkInvariants(t, g)
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestTypeSwitchAndSelect(t *testing.T) {
	g := buildFunc(t, `package p
func f(v interface{}, ch chan int) int {
	switch v := v.(type) {
	case int:
		return v
	case string:
		return len(v)
	}
	select {
	case x := <-ch:
		return x
	default:
		return 0
	}
}`, "f")
	checkInvariants(t, g)
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestRangeHeader(t *testing.T) {
	g := buildFunc(t, `package p
func f(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}`, "f")
	checkInvariants(t, g)
	// The RangeStmt must sit in exactly one block (the loop header).
	count := 0
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				count++
			}
		}
	}
	if count != 1 {
		t.Errorf("RangeStmt appears in %d blocks, want 1:\n%s", count, g)
	}
	if !hasCycle(g) {
		t.Errorf("range loop produced no back edge:\n%s", g)
	}
}

func TestGotoResolves(t *testing.T) {
	g := buildFunc(t, `package p
func f(n int) int {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	return i
}`, "f")
	checkInvariants(t, g)
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	if !hasCycle(g) {
		t.Errorf("goto loop produced no back edge:\n%s", g)
	}
}

func TestDeadCodeAfterReturnIsUnreachable(t *testing.T) {
	g := buildFunc(t, `package p
func f() int {
	return 1
	var x int
	_ = x
	return 2
}`, "f")
	checkInvariants(t, g)
	r := reachable(g)
	// Some block must be unreachable (the code after return).
	unreached := 0
	for _, b := range g.Blocks {
		if !r[b.ID] {
			unreached++
		}
	}
	if unreached == 0 {
		t.Errorf("code after return is reachable:\n%s", g)
	}
}

func TestFuncBodiesFindsLiterals(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", `package p
func a() { _ = func() { _ = func() {} } }
func b() {}`, 0)
	if err != nil {
		t.Fatal(err)
	}
	bodies := FuncBodies(f)
	if len(bodies) != 4 {
		t.Fatalf("FuncBodies found %d bodies, want 4", len(bodies))
	}
}

func TestStringRendering(t *testing.T) {
	g := buildFunc(t, `package p
func f(x bool) {
	if x {
		return
	}
}`, "f")
	s := g.String()
	if !strings.Contains(s, "entry") || !strings.Contains(s, "exit") {
		t.Errorf("String() missing entry/exit markers:\n%s", s)
	}
}
