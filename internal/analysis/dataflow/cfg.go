// Package dataflow provides the flow-sensitive layer of the dprlelint
// framework: a control-flow-graph builder for Go function bodies and a
// generic worklist fixpoint solver over join-semilattices (see fixpoint.go).
// Like the rest of internal/analysis it depends on the standard library
// alone; it mirrors the block/edge vocabulary of internal/cfg (the PHP-subset
// CFG the symbolic executor uses), lifted to Go's statement set.
//
// A CFG partitions one function body into basic blocks. Conditions are
// decomposed to their short-circuit leaves: `if a && b` produces one block
// evaluating a and a second evaluating b, each with a true/false edge pair
// whose Cond field names the leaf expression that holds (or fails) along the
// edge. Analyzers use those edges to refine facts per branch — the mechanism
// behind nilness ("x is non-nil inside `if x != nil`") and budgetflow ("the
// budget is provably nil under `if bud == nil`").
//
// Function literals are not inlined: a FuncLit appearing in a statement is
// part of that statement's node, but its body gets its own CFG (see
// FuncBodies). Return statements, calls to panic, and calls to os.Exit
// terminate their block with an edge to the synthetic exit block.
package dataflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// An Edge is one control-flow edge. Cond, when non-nil, is the
// short-circuit leaf condition that evaluates to Taken along this edge.
type Edge struct {
	To    int
	Cond  ast.Expr // nil for unconditional edges
	Taken bool     // branch polarity when Cond is non-nil
}

// A Block is a basic block: statements and condition leaves in evaluation
// order. The node list holds whole statements (assignments, calls, returns)
// plus bare ast.Expr condition leaves introduced by branch decomposition.
//
// A *ast.RangeStmt in Nodes stands only for the evaluation of its X operand
// and the per-iteration binding of Key/Value; its Body belongs to other
// blocks. Every other node's full subtree (minus nested *ast.FuncLit
// bodies) is evaluated within the block.
type Block struct {
	ID    int
	Nodes []ast.Node
	Succs []Edge
}

// A CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block
	Entry  int
	Exit   int // synthetic: returns, panics, and fallthrough-of-body edges land here
}

// preds returns, for each block, its incoming (source block, edge) pairs.
type predEdge struct {
	From int
	Edge Edge
}

func (g *CFG) preds() [][]predEdge {
	in := make([][]predEdge, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			in[e.To] = append(in[e.To], predEdge{From: b.ID, Edge: e})
		}
	}
	return in
}

// New builds the CFG of one function body.
func New(body *ast.BlockStmt) *CFG {
	b := &builder{labels: map[string]*Block{}}
	entry := b.newBlock()
	exit := b.newBlock()
	b.exit = exit
	cur := b.stmts(body.List, entry)
	if cur != nil {
		// Control falls off the end of the body (implicit return).
		cur.Succs = append(cur.Succs, Edge{To: exit.ID})
	}
	b.resolveGotos()
	return &CFG{Blocks: b.blocks, Entry: entry.ID, Exit: exit.ID}
}

type loopCtx struct {
	label string
	brk   *Block // nil when break is not meaningful (should not happen)
	cont  *Block // nil inside switch/select, where continue skips to the loop
}

type pendingGoto struct {
	from  *Block
	label string
	pos   token.Pos
}

type builder struct {
	blocks []*Block
	exit   *Block
	loops  []loopCtx
	labels map[string]*Block
	gotos  []pendingGoto

	// label to attach to the next loop/switch statement built, so that
	// `break L` / `continue L` resolve to it.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{ID: len(b.blocks)}
	b.blocks = append(b.blocks, blk)
	return blk
}

// stmts threads the statement list through cur, returning the block control
// falls out of (nil if every path returns, panics, or jumps away).
func (b *builder) stmts(list []ast.Stmt, cur *Block) *Block {
	for i, s := range list {
		cur = b.stmt(s, cur)
		if cur == nil {
			// Anything after a terminating statement is unreachable; still
			// build it (labels inside must resolve, and the analyzers skip
			// blocks whose input fact stays bottom).
			if i+1 < len(list) {
				dead := b.newBlock()
				if after := b.stmts(list[i+1:], dead); after != nil {
					after.Succs = append(after.Succs, Edge{To: b.exit.ID})
				}
			}
			return nil
		}
	}
	return cur
}

func (b *builder) stmt(s ast.Stmt, cur *Block) *Block {
	takeLabel := func() string {
		l := b.pendingLabel
		b.pendingLabel = ""
		return l
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, cur)

	case *ast.LabeledStmt:
		// Start a fresh block so goto/continue/break can target it.
		blk := b.newBlock()
		cur.Succs = append(cur.Succs, Edge{To: blk.ID})
		b.labels[s.Label.Name] = blk
		b.pendingLabel = s.Label.Name
		out := b.stmt(s.Stmt, blk)
		b.pendingLabel = ""
		return out

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		then := b.newBlock()
		join := b.newBlock()
		elseTarget := join
		var elseBlk *Block
		if s.Else != nil {
			elseBlk = b.newBlock()
			elseTarget = elseBlk
		}
		b.branch(cur, s.Cond, then, elseTarget)
		if out := b.stmts(s.Body.List, then); out != nil {
			out.Succs = append(out.Succs, Edge{To: join.ID})
		}
		if s.Else != nil {
			if out := b.stmt(s.Else, elseBlk); out != nil {
				out.Succs = append(out.Succs, Edge{To: join.ID})
			}
		}
		return join

	case *ast.ForStmt:
		label := takeLabel()
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		header := b.newBlock()
		cur.Succs = append(cur.Succs, Edge{To: header.ID})
		body := b.newBlock()
		exit := b.newBlock()
		if s.Cond != nil {
			b.branch(header, s.Cond, body, exit)
		} else {
			header.Succs = append(header.Succs, Edge{To: body.ID})
		}
		// continue re-evaluates Post, then the condition.
		cont := header
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			post.Succs = append(post.Succs, Edge{To: header.ID})
			cont = post
		}
		b.loops = append(b.loops, loopCtx{label: label, brk: exit, cont: cont})
		if out := b.stmts(s.Body.List, body); out != nil {
			out.Succs = append(out.Succs, Edge{To: cont.ID})
		}
		b.loops = b.loops[:len(b.loops)-1]
		return exit

	case *ast.RangeStmt:
		label := takeLabel()
		header := b.newBlock()
		// The RangeStmt node in the header stands for evaluating X and
		// binding Key/Value each iteration (see Block).
		header.Nodes = append(header.Nodes, s)
		cur.Succs = append(cur.Succs, Edge{To: header.ID})
		body := b.newBlock()
		exit := b.newBlock()
		header.Succs = append(header.Succs,
			Edge{To: body.ID},
			Edge{To: exit.ID})
		b.loops = append(b.loops, loopCtx{label: label, brk: exit, cont: header})
		if out := b.stmts(s.Body.List, body); out != nil {
			out.Succs = append(out.Succs, Edge{To: header.ID})
		}
		b.loops = b.loops[:len(b.loops)-1]
		return exit

	case *ast.SwitchStmt:
		label := takeLabel()
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
			return b.taggedSwitch(cur, s.Body.List, label)
		}
		return b.taglessSwitch(cur, s.Body.List, label)

	case *ast.TypeSwitchStmt:
		label := takeLabel()
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.taggedSwitch(cur, s.Body.List, label)

	case *ast.SelectStmt:
		label := takeLabel()
		join := b.newBlock()
		b.loops = append(b.loops, loopCtx{label: label, brk: join})
		for _, c := range s.Body.List {
			comm := c.(*ast.CommClause)
			blk := b.newBlock()
			cur.Succs = append(cur.Succs, Edge{To: blk.ID})
			if comm.Comm != nil {
				blk.Nodes = append(blk.Nodes, comm.Comm)
			}
			if out := b.stmts(comm.Body, blk); out != nil {
				out.Succs = append(out.Succs, Edge{To: join.ID})
			}
		}
		b.loops = b.loops[:len(b.loops)-1]
		// select{} blocks forever: join keeps no incoming edge and any code
		// after it stays unreachable, which is exactly right.
		return join

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		cur.Succs = append(cur.Succs, Edge{To: b.exit.ID})
		return nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.loopTarget(s.Label, func(l loopCtx) *Block { return l.brk }); t != nil {
				cur.Succs = append(cur.Succs, Edge{To: t.ID})
			}
			return nil
		case token.CONTINUE:
			if t := b.loopTarget(s.Label, func(l loopCtx) *Block { return l.cont }); t != nil {
				cur.Succs = append(cur.Succs, Edge{To: t.ID})
			}
			return nil
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: cur, label: s.Label.Name, pos: s.Pos()})
			return nil
		case token.FALLTHROUGH:
			// Handled structurally by switchClauses; reaching here means a
			// fallthrough outside a switch, which does not type-check.
			return nil
		}
		return cur

	default:
		cur.Nodes = append(cur.Nodes, s)
		if es, ok := s.(*ast.ExprStmt); ok && isTerminalCall(es.X) {
			cur.Succs = append(cur.Succs, Edge{To: b.exit.ID})
			return nil
		}
		return cur
	}
}

// taglessSwitch lowers `switch { case c1: ... }` to the if/else chain it
// means: case conditions are tested in source order, each through branch()
// so analyzers get per-leaf refinement edges, with the default clause (or
// the join) as the final false target. Fallthrough chains to the next
// clause's body in source order; break targets the join.
func (b *builder) taglessSwitch(cur *Block, clauses []ast.Stmt, label string) *Block {
	join := b.newBlock()
	bodies := make([]*Block, len(clauses))
	defaultIdx := -1
	var tested []int // indices of non-default clauses, in source order
	for i, c := range clauses {
		bodies[i] = b.newBlock()
		if c.(*ast.CaseClause).List == nil {
			defaultIdx = i
		} else {
			tested = append(tested, i)
		}
	}
	fallbackTarget := join
	if defaultIdx >= 0 {
		fallbackTarget = bodies[defaultIdx]
	}
	test := cur
	if len(tested) == 0 {
		test.Succs = append(test.Succs, Edge{To: fallbackTarget.ID})
	}
	for k, i := range tested {
		clause := clauses[i].(*ast.CaseClause)
		falseTarget := fallbackTarget
		if k+1 < len(tested) {
			falseTarget = b.newBlock()
		}
		// A multi-expression case is the || of its conditions.
		blk := test
		for j, e := range clause.List {
			if j+1 < len(clause.List) {
				mid := b.newBlock()
				b.branch(blk, e, bodies[i], mid)
				blk = mid
			} else {
				b.branch(blk, e, bodies[i], falseTarget)
			}
		}
		test = falseTarget
	}
	b.buildClauseBodies(clauses, bodies, join, label)
	return join
}

// taggedSwitch builds `switch tag { ... }`, type switches, and any other
// multi-way dispatch where the per-clause tests carry no refinable
// condition: the head gets one edge per clause (case expressions evaluated
// in the clause-entry block) plus an edge to the join when no default
// clause exists.
func (b *builder) taggedSwitch(cur *Block, clauses []ast.Stmt, label string) *Block {
	join := b.newBlock()
	hasDefault := false
	bodies := make([]*Block, len(clauses))
	for i, c := range clauses {
		clause := c.(*ast.CaseClause)
		bodies[i] = b.newBlock()
		for _, e := range clause.List {
			bodies[i].Nodes = append(bodies[i].Nodes, e)
		}
		if clause.List == nil {
			hasDefault = true
		}
		cur.Succs = append(cur.Succs, Edge{To: bodies[i].ID})
	}
	if !hasDefault {
		cur.Succs = append(cur.Succs, Edge{To: join.ID})
	}
	b.buildClauseBodies(clauses, bodies, join, label)
	return join
}

// buildClauseBodies threads each clause body from its entry block to the
// join, honoring a trailing fallthrough (which jumps to the next clause's
// body, skipping its case expressions) and making break target the join.
func (b *builder) buildClauseBodies(clauses []ast.Stmt, bodies []*Block, join *Block, label string) {
	b.loops = append(b.loops, loopCtx{label: label, brk: join})
	for i, c := range clauses {
		clause := c.(*ast.CaseClause)
		body := clause.Body
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				body = body[:n-1]
			}
		}
		out := b.stmts(body, bodies[i])
		if out != nil {
			if fallsThrough && i+1 < len(clauses) {
				out.Succs = append(out.Succs, Edge{To: bodies[i+1].ID})
			} else {
				out.Succs = append(out.Succs, Edge{To: join.ID})
			}
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
}

// branch wires cur to t (condition true) and f (condition false),
// decomposing short-circuit operators into per-leaf blocks. Each leaf
// expression is appended to the block that evaluates it, so analyzers see
// its subexpressions (including any dereferences) with the facts that hold
// at that point.
func (b *builder) branch(cur *Block, cond ast.Expr, t, f *Block) {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			mid := b.newBlock()
			b.branch(cur, c.X, mid, f)
			b.branch(mid, c.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock()
			b.branch(cur, c.X, t, mid)
			b.branch(mid, c.Y, t, f)
			return
		}
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			b.branch(cur, c.X, f, t)
			return
		}
	}
	leaf := ast.Unparen(cond)
	cur.Nodes = append(cur.Nodes, leaf)
	cur.Succs = append(cur.Succs,
		Edge{To: t.ID, Cond: leaf, Taken: true},
		Edge{To: f.ID, Cond: leaf, Taken: false})
}

func (b *builder) loopTarget(label *ast.Ident, sel func(loopCtx) *Block) *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		l := b.loops[i]
		if label != nil && l.label != label.Name {
			continue
		}
		if t := sel(l); t != nil {
			return t
		}
		if label != nil {
			return nil
		}
	}
	return nil
}

func (b *builder) resolveGotos() {
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			g.from.Succs = append(g.from.Succs, Edge{To: target.ID})
		}
		// An unresolved label cannot occur in type-checked code; dropping
		// the edge merely leaves the target unreachable, which is the
		// conservative direction for the analyzers (no facts, no reports).
	}
}

// isTerminalCall reports whether the expression is a call that never
// returns: the panic builtin or os.Exit. Matching os.Exit syntactically
// (selector on an identifier named os) is deliberate — the CFG layer has no
// type information, and a false positive merely ends a block early.
func isTerminalCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name == "os" && fun.Sel.Name == "Exit"
		}
	}
	return false
}

// FuncBodies returns every function body under root in source order: the
// body of each FuncDecl and of each FuncLit (including literals nested in
// other literals). Analyzers build one CFG per body; a literal's body is
// never part of its enclosing function's CFG.
func FuncBodies(root ast.Node) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, n.Body)
			}
		case *ast.FuncLit:
			out = append(out, n.Body)
		}
		return true
	})
	return out
}

// String renders the CFG compactly for tests and debugging:
// each block as "bN[k nodes] -> succs".
func (g *CFG) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d[%d]", blk.ID, len(blk.Nodes))
		if blk.ID == g.Entry {
			sb.WriteString(" entry")
		}
		if blk.ID == g.Exit {
			sb.WriteString(" exit")
		}
		sb.WriteString(" ->")
		for _, e := range blk.Succs {
			if e.Cond != nil {
				fmt.Fprintf(&sb, " b%d(%v)", e.To, e.Taken)
			} else {
				fmt.Fprintf(&sb, " b%d", e.To)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
