package dataflow

import (
	"errors"
	"go/ast"
	"testing"
)

// ---- a small but real forward analysis: definite assignment ----
//
// Fact: the set of variable names definitely assigned on every path.
// Join = intersection, bottom = a sentinel "unreachable", boundary = {}.
// Height: each name can only be removed from the set as facts join, so a
// chain can rise (sets shrink toward the join) at most once per name.

type defAssign struct{ vars []string }

type daFact struct {
	unreachable bool
	set         map[string]bool
}

func (d defAssign) Bottom() Fact   { return daFact{unreachable: true} }
func (d defAssign) Boundary() Fact { return daFact{set: map[string]bool{}} }
func (d defAssign) Height() int    { return len(d.vars) + 1 }

func (d defAssign) Join(a, b Fact) Fact {
	x, y := a.(daFact), b.(daFact)
	if x.unreachable {
		return y
	}
	if y.unreachable {
		return x
	}
	out := map[string]bool{}
	for k := range x.set {
		if y.set[k] {
			out[k] = true
		}
	}
	return daFact{set: out}
}

func (d defAssign) Equal(a, b Fact) bool {
	x, y := a.(daFact), b.(daFact)
	if x.unreachable != y.unreachable {
		return false
	}
	if len(x.set) != len(y.set) {
		return false
	}
	for k := range x.set {
		if !y.set[k] {
			return false
		}
	}
	return true
}

func (d defAssign) Node(n ast.Node, f Fact) Fact {
	df := f.(daFact)
	assigned := []string{}
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				assigned = append(assigned, id.Name)
			}
		}
	}
	if len(assigned) == 0 {
		return f
	}
	out := map[string]bool{}
	for k := range df.set {
		out[k] = true
	}
	for _, name := range assigned {
		out[name] = true
	}
	return daFact{set: out}
}

func (d defAssign) Branch(cond ast.Expr, taken bool, f Fact) Fact { return f }

func solveDef(t *testing.T, src string) (*CFG, *Result, defAssign) {
	t.Helper()
	g := buildFunc(t, src, "f")
	lat := defAssign{vars: []string{"x", "y", "z"}}
	res, err := Solve(g, lat, lat, Forward)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return g, res, lat
}

func TestDefiniteAssignmentJoin(t *testing.T) {
	g, res, _ := solveDef(t, `package p
func f(c bool) {
	if c {
		x := 1
		y := 2
		_, _ = x, y
	} else {
		x := 3
		_ = x
	}
	z := 4
	_ = z
}`)
	exit := res.In[g.Exit].(daFact)
	if exit.unreachable {
		t.Fatal("exit fact is unreachable")
	}
	// x is assigned on both branches, y on only one, z after the join.
	if !exit.set["x"] || !exit.set["z"] {
		t.Errorf("x and z must be definitely assigned at exit, got %v", exit.set)
	}
	if exit.set["y"] {
		t.Errorf("y is assigned on one branch only, must not be definite at exit, got %v", exit.set)
	}
}

// TestTerminationLoopHeavy is the acceptance-criteria test: the solver
// reaches a fixpoint on a function dense with nested loops, gotos, labeled
// continues, and switches, within its explicit iteration bound.
func TestTerminationLoopHeavy(t *testing.T) {
	_, res, _ := solveDef(t, `package p
func f(n int) int {
	s := 0
	x := 0
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case j == 1:
				continue outer
			case j == 2:
				break outer
			}
			for k := 0; k < n; k++ {
				if k%2 == 0 {
					continue
				}
				s += k
			}
		}
		if i > 10 {
			goto done
		}
		x = i
	}
done:
	for {
		if s > 100 {
			break
		}
		s += x
	}
	return s
}`)
	if res == nil {
		t.Fatal("no result")
	}
}

// brokenLattice violates the monotonicity contract: Equal always reports
// false, so every evaluation looks like a change and the worklist never
// drains. The explicit iteration bound must convert that into
// ErrNonMonotone instead of an infinite loop.
type brokenLattice struct{ defAssign }

func (brokenLattice) Equal(a, b Fact) bool { return false }

func TestIterationBoundTripsOnBrokenLattice(t *testing.T) {
	g := buildFunc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`, "f")
	lat := brokenLattice{defAssign{vars: []string{"s", "i"}}}
	_, err := Solve(g, lat, lat, Forward)
	if !errors.Is(err, ErrNonMonotone) {
		t.Fatalf("Solve on a non-converging lattice returned %v, want ErrNonMonotone", err)
	}
}

// ---- a tiny backward analysis: "this point can reach a return" ----

type reachesExit struct{}

type reFact int // 0 bottom, 1 no, 2 yes — but we only need bottom/yes

func (reachesExit) Bottom() Fact                            { return reFact(0) }
func (reachesExit) Boundary() Fact                          { return reFact(2) }
func (reachesExit) Height() int                             { return 2 }
func (reachesExit) Equal(a, b Fact) bool                    { return a.(reFact) == b.(reFact) }
func (reachesExit) Node(n ast.Node, f Fact) Fact            { return f }
func (reachesExit) Branch(c ast.Expr, tk bool, f Fact) Fact { return f }
func (reachesExit) Join(a, b Fact) Fact {
	if a.(reFact) > b.(reFact) {
		return a
	}
	return b
}

func TestBackwardReachability(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) int {
	if c {
		return 1
	}
	for {
	}
}`, "f")
	lat := reachesExit{}
	res, err := Solve(g, lat, lat, Backward)
	if err != nil {
		t.Fatal(err)
	}
	// The entry must reach the exit (via the return branch).
	if res.Out[g.Entry].(reFact) != 2 {
		t.Errorf("entry cannot reach exit in backward analysis:\n%s", g)
	}
}

func TestWalkForwardVisitsReachableNodes(t *testing.T) {
	g, res, lat := solveDef(t, `package p
func f(c bool) {
	x := 1
	if c {
		y := 2
		_ = y
	}
	_ = x
	return
	z := 3
	_ = z
}`)
	visited := 0
	sawDead := false
	WalkForward(g, lat, lat, res, func(n ast.Node, before Fact) {
		visited++
		if as, ok := n.(*ast.AssignStmt); ok {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "z" {
				sawDead = true
			}
		}
	})
	if visited == 0 {
		t.Fatal("WalkForward visited nothing")
	}
	if sawDead {
		t.Error("WalkForward visited code after return (unreachable block)")
	}
}
