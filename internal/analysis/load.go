package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path    string // import path
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Sources map[string][]byte
}

// A Loader parses and type-checks packages from source. It resolves three
// kinds of import paths:
//
//   - paths under the module rooted at ModuleRoot (read from go.mod),
//     resolved to directories of the module tree;
//   - paths under any extra source root (used by analysistest fixtures,
//     where testdata/src/<path> holds package <path>);
//   - everything else, delegated to the standard library's source importer.
//
// Loaded packages are memoized, so shared dependencies type-check once.
// Test files (_test.go) and files excluded by build constraints under the
// host build context are skipped: the analyzers target the production
// build. A directory containing only such files is not a package.
type Loader struct {
	Fset *token.FileSet

	modulePath string
	moduleRoot string
	srcRoots   []string

	std  types.Importer
	pkgs map[string]*loadResult
}

type loadResult struct {
	pkg *Package
	err error
}

// NewLoader returns a Loader for the Go module rooted at moduleRoot,
// reading the module path from its go.mod.
func NewLoader(moduleRoot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", moduleRoot)
	}
	l := newLoader()
	l.modulePath = modPath
	l.moduleRoot = moduleRoot
	return l, nil
}

// NewSourceLoader returns a Loader that resolves every non-std import path
// p to the directory srcRoot/p. This is the layout analysistest fixtures
// use (testdata/src/<path>).
func NewSourceLoader(srcRoot string) *Loader {
	l := newLoader()
	l.srcRoots = []string{srcRoot}
	return l
}

func newLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*loadResult{},
	}
}

// ModulePath returns the module path from go.mod ("" for source loaders).
func (l *Loader) ModulePath() string { return l.modulePath }

// dirFor resolves an import path to a directory, or "" if the path is not
// module-local and not under a source root (i.e. it belongs to std).
func (l *Loader) dirFor(path string) string {
	if l.modulePath != "" {
		if path == l.modulePath {
			return l.moduleRoot
		}
		if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
			return filepath.Join(l.moduleRoot, filepath.FromSlash(rest))
		}
	}
	for _, root := range l.srcRoots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir
		}
	}
	return ""
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && includeGoFile(dir, e.Name()) {
			return true
		}
	}
	return false
}

// includeGoFile reports whether the named file belongs to the production
// build of the package in dir: a .go file that is not a test file, not
// hidden or tool-ignored (leading "." or "_"), and not excluded by build
// constraints — //go:build lines or GOOS/GOARCH file-name suffixes — under
// the host build context. Using one predicate for both package discovery
// (ModulePackages, dirFor) and loading (parseAndCheck) keeps the two views
// consistent: a directory whose every .go file is excluded is not a
// package at all, rather than a package that fails to load.
func includeGoFile(dir, name string) bool {
	if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
		return false
	}
	ok, err := build.Default.MatchFile(dir, name)
	return err == nil && ok
}

// Import implements types.Importer, so a Loader can resolve the imports of
// the packages it loads (including fixture-local fake dependencies).
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := l.dirFor(path); dir != "" {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the package with the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("analysis: cannot resolve package %q to a directory", path)
	}
	return l.load(path, dir)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if r, ok := l.pkgs[path]; ok {
		return r.pkg, r.err
	}
	// Reserve the slot first so import cycles fail fast instead of
	// recursing forever.
	l.pkgs[path] = &loadResult{err: fmt.Errorf("analysis: import cycle through %q", path)}
	pkg, err := l.parseAndCheck(path, dir)
	l.pkgs[path] = &loadResult{pkg: pkg, err: err}
	return pkg, err
}

func (l *Loader) parseAndCheck(path, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !includeGoFile(dir, e.Name()) {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	sources := map[string][]byte{}
	for _, n := range names {
		fn := filepath.Join(dir, n)
		src, err := os.ReadFile(fn)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.Fset, fn, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		sources[fn] = src
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type errors in %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info, Sources: sources}, nil
}

// ModulePackages walks the module tree and returns the import paths of all
// directories containing production Go files, skipping testdata, hidden
// directories, and nested modules. Paths are sorted.
func (l *Loader) ModulePackages() ([]string, error) {
	if l.moduleRoot == "" {
		return nil, fmt.Errorf("analysis: loader has no module root")
	}
	var paths []string
	err := filepath.WalkDir(l.moduleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.moduleRoot {
			if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(p, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		if !hasGoFiles(p) {
			return nil
		}
		rel, err := filepath.Rel(l.moduleRoot, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.modulePath)
		} else {
			paths = append(paths, l.modulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
