package callgraph

import "sort"

// condense computes the strongly connected components of the static call
// relation with Tarjan's algorithm (iterative, so deep call chains cannot
// overflow the goroutine stack) and stores them on the graph in reverse
// topological order: Tarjan emits an SCC only once every SCC it can reach
// has been emitted, so SCCs[i] calls only into SCCs[j], j < i — exactly the
// bottom-up order summary computation wants.
//
// Only resolved in-package edges (Site.Callee != nil) participate; dynamic
// and external sites impose no ordering. Determinism follows from node IDs:
// roots are tried in ID order and edges in recorded source order.
func condense(g *Graph) {
	n := len(g.Nodes)
	index := make([]int, n) // 0 = unvisited; otherwise discovery index + 1
	lowlink := make([]int, n)
	onStack := make([]bool, n)
	var stack []int
	next := 1

	type frame struct {
		v    int
		edge int // next Sites index to follow
	}

	for root := 0; root < n; root++ {
		if index[root] != 0 {
			continue
		}
		work := []frame{{v: root}}
		index[root], lowlink[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			advanced := false
			sites := g.Nodes[v].Sites
			for f.edge < len(sites) {
				e := f.edge
				f.edge++
				callee := sites[e].Callee
				if callee == nil {
					continue
				}
				w := callee.ID
				if index[w] == 0 {
					index[w], lowlink[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < lowlink[v] {
					lowlink[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished.
			if lowlink[v] == index[v] {
				var scc []*Node
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					g.Nodes[w].scc = len(g.SCCs)
					scc = append(scc, g.Nodes[w])
					if w == v {
						break
					}
				}
				// Within an SCC, order by ID for stable iteration.
				sort.Slice(scc, func(i, j int) bool { return scc[i].ID < scc[j].ID })
				g.SCCs = append(g.SCCs, scc)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].v
				if lowlink[v] < lowlink[p] {
					lowlink[p] = lowlink[v]
				}
			}
		}
	}
}

// SCCOf returns the index (into Graph.SCCs) of the component containing n.
func (g *Graph) SCCOf(n *Node) int { return n.scc }

// SameSCC reports whether two nodes are mutually recursive.
func (g *Graph) SameSCC(a, b *Node) bool { return a.scc == b.scc }
