// Package callgraph builds a package-local call graph over the ASTs the
// analysis loader produced, and drives bottom-up (callee-before-caller)
// summary computation over it (see summaries.go).
//
// The graph is deliberately scoped to one package: dprlelint analyzes
// packages independently, so edges point only at functions declared in the
// package under analysis. Calls that leave the package, go through an
// interface method, or flow through a function value the builder cannot
// resolve are recorded as unresolved call sites — the conservative
// direction for every client (no summary means no assumption). Each
// unresolved-for-dynamic-dispatch site is counted so drivers can surface
// the approximation under -stats.
//
// Resolution rules, in order:
//
//   - direct calls to package-level functions and methods declared in this
//     package, including method expressions (T.M, (*T).M), resolve via the
//     type-checker;
//   - an immediately invoked function literal (func(){...}()) resolves to
//     that literal's own node;
//   - a call through a local variable that is bound to exactly one function
//     literal in the enclosing function and never reassigned, captured, or
//     address-taken resolves to that literal (the sort.Slice-less comparator
//     idiom); anything fancier is dynamic;
//   - go and defer statements produce edges like plain calls, tagged with
//     their mode, because the callee's effects still happen (just later or
//     concurrently).
//
// Calls to declared-but-bodyless functions (assembly, external linkname)
// and to other packages resolve to no node; their *types.Func is still
// recorded on the site so clients can apply seed facts.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Mode distinguishes how a call site transfers control.
type Mode uint8

const (
	Call  Mode = iota // ordinary expression call
	Go                // go statement
	Defer             // defer statement
)

func (m Mode) String() string {
	switch m {
	case Go:
		return "go"
	case Defer:
		return "defer"
	}
	return "call"
}

// A Site is one call expression inside a node's body.
type Site struct {
	Call *ast.CallExpr
	Mode Mode
	// Callee is the in-package node invoked, nil when the call leaves the
	// package or cannot be resolved statically.
	Callee *Node
	// Fn is the static *types.Func the call invokes, when the type-checker
	// can name one (set for external callees too); nil for calls through
	// function values and builtins.
	Fn *types.Func
	// Dynamic marks a call the builder gave up on: through a function
	// value it could not pin to one literal, or an interface method.
	// Dynamic sites have Callee == nil; interface calls keep Fn (the
	// interface method) for clients that want to report it.
	Dynamic bool
}

// A Node is one function body in the package: a declared function or
// method, or a function literal.
type Node struct {
	ID int
	// Fn is the declared function object; nil for literals.
	Fn *types.Func
	// Decl / Lit: exactly one is non-nil.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Parent is the node lexically enclosing a literal (nil for decls).
	Parent *Node
	Sites  []Site
	// scc is filled by condense (index into Graph.SCCs).
	scc int
}

// Body returns the node's function body.
func (n *Node) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Type returns the node's signature.
func (n *Node) Type() *types.Signature {
	if n.Fn != nil {
		return n.Fn.Type().(*types.Signature)
	}
	return nil
}

// Name renders a stable human-readable name for diagnostics:
// "pkg.Func", "(pkg.T).Method", or "pkg.Func$lit" for literals.
func (n *Node) Name() string {
	if n.Fn != nil {
		if recv := n.Fn.Type().(*types.Signature).Recv(); recv != nil {
			return "(" + types.TypeString(recv.Type(), types.RelativeTo(n.Fn.Pkg())) + ")." + n.Fn.Name()
		}
		return n.Fn.Name()
	}
	if n.Parent != nil {
		return n.Parent.Name() + "$lit"
	}
	return "$lit"
}

// Pos returns the node's source position.
func (n *Node) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// A Graph is the package-local call graph.
type Graph struct {
	Nodes []*Node
	// ByFunc maps declared functions/methods to their nodes.
	ByFunc map[*types.Func]*Node
	// SCCs are the strongly connected components of the static-call
	// relation, in reverse topological order: every edge leaving SCCs[i]
	// lands in some SCCs[j] with j < i, so iterating SCCs front to back
	// visits callees before callers.
	SCCs [][]*Node
	// DynamicSkips counts call sites conservatively left unresolved
	// because they dispatch through an interface method or an unpinnable
	// function value — the approximation -stats reports.
	DynamicSkips int
}

// Build constructs the call graph of one package from its files and type
// information. Nodes are created in source order (file order as given,
// declaration order within a file, literals in lexical order), so IDs — and
// everything derived from them — are deterministic.
func Build(info *types.Info, files []*ast.File) *Graph {
	g := &Graph{ByFunc: map[*types.Func]*Node{}}
	litNodes := map[*ast.FuncLit]*Node{}

	// Pass 1: create nodes for every body, so calls can resolve forward.
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return false
				}
				node := &Node{ID: len(g.Nodes), Decl: n}
				if fn, ok := info.Defs[n.Name].(*types.Func); ok {
					node.Fn = fn
					g.ByFunc[fn] = node
				}
				g.Nodes = append(g.Nodes, node)
			case *ast.FuncLit:
				node := &Node{ID: len(g.Nodes), Lit: n}
				litNodes[n] = node
				g.Nodes = append(g.Nodes, node)
			}
			return true
		})
	}

	// Pass 2: wire parents and resolve call sites.
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			owner := g.nodeForDecl(fd)
			b := &bodyWalker{g: g, info: info, lits: litNodes}
			b.walkOwner(owner, fd.Body)
		}
	}
	condense(g)
	return g
}

func (g *Graph) nodeForDecl(fd *ast.FuncDecl) *Node {
	for _, n := range g.Nodes {
		if n.Decl == fd {
			return n
		}
	}
	return nil
}

type bodyWalker struct {
	g    *Graph
	info *types.Info
	lits map[*ast.FuncLit]*Node
}

// walkOwner collects the call sites of owner's body, descending into nested
// literals with the literal's node as the new owner.
func (b *bodyWalker) walkOwner(owner *Node, body *ast.BlockStmt) {
	binds := literalBindings(b.info, body)
	var walk func(n ast.Node, mode Mode)
	walk = func(n ast.Node, mode Mode) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				lit := b.lits[m]
				lit.Parent = owner
				b.walkOwner(lit, m.Body)
				return false
			case *ast.GoStmt:
				b.addSite(owner, m.Call, Go, binds)
				walk(m.Call.Fun, Call)
				for _, a := range m.Call.Args {
					walk(a, Call)
				}
				return false
			case *ast.DeferStmt:
				b.addSite(owner, m.Call, Defer, binds)
				walk(m.Call.Fun, Call)
				for _, a := range m.Call.Args {
					walk(a, Call)
				}
				return false
			case *ast.CallExpr:
				b.addSite(owner, m, mode, binds)
				return true
			}
			return true
		})
	}
	walk(body, Call)
}

// addSite resolves one call expression and appends the site to owner.
// Only the outermost call expression of a go/defer statement records that
// mode; calls nested in its function or argument positions are evaluated
// synchronously at the statement and are ordinary calls.
func (b *bodyWalker) addSite(owner *Node, call *ast.CallExpr, mode Mode, binds map[*types.Var]*ast.FuncLit) {
	fun := ast.Unparen(call.Fun)

	// Conversions and builtins are not calls for our purposes.
	if tv, ok := b.info.Types[fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return
	}

	site := Site{Call: call, Mode: mode}
	switch fun := fun.(type) {
	case *ast.FuncLit:
		// Immediately invoked literal.
		site.Callee = b.lits[fun]
	case *ast.Ident:
		switch obj := b.info.Uses[fun].(type) {
		case *types.Func:
			site.Fn = obj
			site.Callee = b.g.ByFunc[obj]
		case *types.Var:
			// A call through a local bound to exactly one literal.
			if lit, ok := binds[obj]; ok {
				site.Callee = b.lits[lit]
			} else {
				site.Dynamic = true
				b.g.DynamicSkips++
			}
		default:
			site.Dynamic = true
			b.g.DynamicSkips++
		}
	case *ast.SelectorExpr:
		if sel, ok := b.info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				site.Fn = fn
				if types.IsInterface(recvType(fn)) {
					// Interface dispatch: keep Fn for seed facts, but the
					// concrete callee is unknowable package-locally.
					site.Dynamic = true
					b.g.DynamicSkips++
				} else {
					site.Callee = b.g.ByFunc[fn]
				}
			} else {
				// Struct field of function type, etc.
				site.Dynamic = true
				b.g.DynamicSkips++
			}
		} else if fn, ok := b.info.Uses[fun.Sel].(*types.Func); ok {
			// Package-qualified call or method expression.
			site.Fn = fn
			site.Callee = b.g.ByFunc[fn]
		} else {
			site.Dynamic = true
			b.g.DynamicSkips++
		}
	default:
		// Call of a call's result, index expression, etc.
		site.Dynamic = true
		b.g.DynamicSkips++
	}
	owner.Sites = append(owner.Sites, site)
}

func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// literalBindings finds local variables that are provably bound to one
// specific function literal throughout body: defined once with the literal
// as initializer, never reassigned, never address-taken, and never used as
// a value other than being called. Calls through such a variable resolve to
// the literal; anything else stays dynamic.
func literalBindings(info *types.Info, body *ast.BlockStmt) map[*types.Var]*ast.FuncLit {
	cand := map[*types.Var]*ast.FuncLit{}
	dead := map[*types.Var]bool{}
	kill := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				dead[v] = true
			} else if v, ok := info.Defs[id].(*types.Var); ok {
				dead[v] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				v, isDef := info.Defs[id].(*types.Var)
				if isDef && n.Tok == token.DEFINE && i < len(n.Rhs) && len(n.Lhs) == len(n.Rhs) {
					if lit, ok := ast.Unparen(n.Rhs[i]).(*ast.FuncLit); ok {
						if _, seen := cand[v]; !seen {
							cand[v] = lit
							continue
						}
					}
					dead[v] = true
					continue
				}
				kill(lhs) // plain reassignment
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				kill(n.X)
			}
		case *ast.FuncLit:
			// A variable used inside a nested literal may be called after
			// arbitrary reassignment interleavings; give it up.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					kill(id)
				}
				return true
			})
			return false
		}
		return true
	})
	// A binding used as a value (passed, stored, returned) could be invoked
	// anywhere; only direct calls keep it resolvable.
	out := map[*types.Var]*ast.FuncLit{}
	for v, lit := range cand {
		if dead[v] {
			continue
		}
		if onlyCalled(info, body, v) {
			out[v] = lit
		}
	}
	return out
}

// onlyCalled reports whether every use of v in body is as the function
// operand of a call expression (its defining occurrence aside).
func onlyCalled(info *types.Info, body *ast.BlockStmt, v *types.Var) bool {
	ok := true
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if !ok {
				return false
			}
			if call, isCall := m.(*ast.CallExpr); isCall {
				// The Fun position is a permitted use; check args and
				// subexpressions of Fun that are not the bare ident.
				if id, isID := ast.Unparen(call.Fun).(*ast.Ident); isID && info.Uses[id] == v {
					for _, a := range call.Args {
						walk(a)
					}
					return false
				}
				return true
			}
			if id, isID := m.(*ast.Ident); isID && info.Uses[id] == v {
				ok = false
				return false
			}
			return true
		})
	}
	walk(body)
	return ok
}
