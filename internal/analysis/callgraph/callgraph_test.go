package callgraph

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"
)

// load type-checks one synthetic file and builds its call graph.
func load(t *testing.T, src string) (*Graph, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return Build(info, []*ast.File{f}), info
}

// edges renders the resolved static edges as "caller->callee" strings.
func edges(g *Graph) []string {
	var out []string
	for _, n := range g.Nodes {
		for _, s := range n.Sites {
			if s.Callee != nil {
				tag := ""
				if s.Mode != Call {
					tag = "[" + s.Mode.String() + "]"
				}
				out = append(out, n.Name()+"->"+s.Callee.Name()+tag)
			}
		}
	}
	sort.Strings(out)
	return out
}

func wantEdges(t *testing.T, g *Graph, want ...string) {
	t.Helper()
	got := edges(g)
	sort.Strings(want)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("edges = %v, want %v", got, want)
	}
}

func TestStaticAndMethodCalls(t *testing.T) {
	g, _ := load(t, `package p
type T struct{}
func (t *T) M() { helper() }
func (t T) V() {}
func helper() {}
func top() {
	var t T
	t.M()     // pointer method via addressable value
	t.V()
	helper()
}
`)
	wantEdges(t, g,
		"(*T).M->helper",
		"top->(*T).M",
		"top->(T).V",
		"top->helper",
	)
	if g.DynamicSkips != 0 {
		t.Errorf("DynamicSkips = %d, want 0", g.DynamicSkips)
	}
}

func TestClosuresAndFunctionValues(t *testing.T) {
	g, _ := load(t, `package p
func helper() {}
func top() {
	f := func() { helper() } // pinned binding: called only
	f()
	func() { helper() }() // immediately invoked

	g := func() {}
	g = func() { helper() } // reassigned: dynamic
	g()

	h := func() {}
	use(h) // escapes as a value: dynamic
	h()
}
func use(fn func()) { fn() }
`)
	got := edges(g)
	for _, want := range []string{
		"top$lit->helper", // both literal bodies call helper
		"top->top$lit",    // pinned f() and the IIFE
	} {
		found := false
		for _, e := range got {
			if e == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing edge %s in %v", want, got)
		}
	}
	// g() (reassigned), h() (escaped), and use's fn() are dynamic.
	if g.DynamicSkips != 3 {
		t.Errorf("DynamicSkips = %d, want 3 (got edges %v)", g.DynamicSkips, got)
	}
}

func TestGoAndDeferEdges(t *testing.T) {
	g, _ := load(t, `package p
func work() {}
func cleanup() {}
func top() {
	go work()
	defer cleanup()
}
`)
	wantEdges(t, g,
		"top->cleanup[defer]",
		"top->work[go]",
	)
}

// TestGoDeferFunPositionCalls checks that a call nested in the Fun position
// of a go/defer statement — evaluated synchronously on the calling
// goroutine — is recorded as an ordinary call; only the outermost call
// expression carries the Go/Defer mode.
func TestGoDeferFunPositionCalls(t *testing.T) {
	g, _ := load(t, `package p
func getF() func() { return func() {} }
func top() {
	go getF()()
	defer getF()()
}
`)
	wantEdges(t, g,
		"top->getF",
		"top->getF",
	)
	// The outer invocations of the returned values are dynamic.
	if g.DynamicSkips != 2 {
		t.Errorf("DynamicSkips = %d, want 2", g.DynamicSkips)
	}
	for _, n := range g.Nodes {
		for _, s := range n.Sites {
			if s.Fn != nil && s.Fn.Name() == "getF" && s.Mode != Call {
				t.Errorf("getF site mode = %v, want call", s.Mode)
			}
		}
	}
}

func TestInterfaceDispatchIsCountedSkip(t *testing.T) {
	g, _ := load(t, `package p
type I interface{ M() }
type T struct{}
func (T) M() {}
func top(i I) { i.M() }
`)
	wantEdges(t, g) // no resolved edges
	if g.DynamicSkips != 1 {
		t.Errorf("DynamicSkips = %d, want 1", g.DynamicSkips)
	}
	// The unresolved site still names the interface method for seed facts.
	var site *Site
	for _, n := range g.Nodes {
		for i := range n.Sites {
			if n.Name() == "top" {
				site = &n.Sites[i]
			}
		}
	}
	if site == nil || site.Fn == nil || site.Fn.Name() != "M" || !site.Dynamic {
		t.Fatalf("interface site = %+v, want dynamic with Fn=M", site)
	}
}

func TestSCCCondensationOrder(t *testing.T) {
	g, _ := load(t, `package p
func a() { b() }
func b() { c(); a() } // a <-> b cycle
func c() { d() }
func d() {}           // leaf
func main() { a() }
`)
	names := func(scc []*Node) string {
		var ns []string
		for _, n := range scc {
			ns = append(ns, n.Name())
		}
		return strings.Join(ns, ",")
	}
	var got []string
	for _, scc := range g.SCCs {
		got = append(got, names(scc))
	}
	// Reverse topological: callees strictly before callers; the a/b cycle
	// is one component.
	want := []string{"d", "c", "a,b", "main"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("SCCs = %v, want %v", got, want)
	}
	// Every resolved edge lands in the same or an earlier SCC.
	for _, n := range g.Nodes {
		for _, s := range n.Sites {
			if s.Callee != nil && g.SCCOf(s.Callee) > g.SCCOf(n) {
				t.Errorf("edge %s->%s violates reverse-topological SCC order", n.Name(), s.Callee.Name())
			}
		}
	}
}

// reachSummary is a toy summarizer: the set of declared functions a node
// transitively calls, as a sorted string — enough to prove the driver
// iterates SCCs to fixpoint.
type reachSummary struct{ funcs map[string]bool }

type reachAnalysis struct{ height int }

func (r reachAnalysis) Bottom() Summary { return reachSummary{funcs: map[string]bool{}} }
func (r reachAnalysis) Height() int     { return r.height }
func (r reachAnalysis) Equal(a, b Summary) bool {
	x, y := a.(reachSummary), b.(reachSummary)
	if len(x.funcs) != len(y.funcs) {
		return false
	}
	for k := range x.funcs {
		if !y.funcs[k] {
			return false
		}
	}
	return true
}
func (r reachAnalysis) Summarize(n *Node, get func(*Node) Summary) Summary {
	out := map[string]bool{}
	for _, s := range n.Sites {
		if s.Callee == nil {
			continue
		}
		out[s.Callee.Name()] = true
		for k := range get(s.Callee).(reachSummary).funcs {
			out[k] = true
		}
	}
	return reachSummary{funcs: out}
}

func TestSummariesFixpointOverCycle(t *testing.T) {
	g, _ := load(t, `package p
func a() { b() }
func b() { c(); a() }
func c() {}
func main() { a() }
`)
	sums, diverged := Summaries(g, reachAnalysis{height: len(g.Nodes) + 1})
	if diverged != 0 {
		t.Fatalf("diverged = %d, want 0", diverged)
	}
	byName := map[string]reachSummary{}
	for _, n := range g.Nodes {
		byName[n.Name()] = sums[n.ID].(reachSummary)
	}
	// a and b reach {a, b, c}; main reaches everything; c reaches nothing.
	for _, name := range []string{"a", "b"} {
		got := byName[name].funcs
		if !got["a"] || !got["b"] || !got["c"] || len(got) != 3 {
			t.Errorf("%s reaches %v, want {a b c}", name, got)
		}
	}
	if len(byName["c"].funcs) != 0 {
		t.Errorf("c reaches %v, want nothing", byName["c"].funcs)
	}
}

// TestSummariesDivergenceDegrades checks that an SCC whose fixpoint trips
// the lattice-height bound is degraded to Bottom for every member —
// instead of failing the whole run — and that unaffected components keep
// their summaries.
func TestSummariesDivergenceDegrades(t *testing.T) {
	g, _ := load(t, `package p
func a() { b(); leaf() }
func b() { a() }
func leaf() {}
`)
	// Height 0 and an Equal that never holds forces the bound to trip for
	// the a/b cycle; leaf is a singleton and summarizes normally.
	sums, diverged := Summaries(g, brokenAnalysis{})
	if diverged != 1 {
		t.Fatalf("diverged = %d, want 1", diverged)
	}
	for _, n := range g.Nodes {
		got := sums[n.ID].(int)
		want := 0 // Bottom for the degraded cycle...
		if n.Name() == "leaf" {
			want = 1 // ...but the clean singleton keeps its summary.
		}
		if got != want {
			t.Errorf("%s: summary = %d, want %d", n.Name(), got, want)
		}
	}
}

type brokenAnalysis struct{}

func (brokenAnalysis) Bottom() Summary                                    { return 0 }
func (brokenAnalysis) Height() int                                        { return 0 }
func (brokenAnalysis) Equal(a, b Summary) bool                            { return false }
func (brokenAnalysis) Summarize(n *Node, get func(*Node) Summary) Summary { return 1 }

func TestDeterministicNodeOrder(t *testing.T) {
	src := `package p
func z() {}
func a() { z() }
func m() { a(); z() }
`
	g1, _ := load(t, src)
	g2, _ := load(t, src)
	if strings.Join(edges(g1), ";") != strings.Join(edges(g2), ";") {
		t.Error("edge rendering not deterministic across builds")
	}
	for i := range g1.Nodes {
		if g1.Nodes[i].Name() != g2.Nodes[i].Name() {
			t.Errorf("node %d: %s vs %s", i, g1.Nodes[i].Name(), g2.Nodes[i].Name())
		}
	}
}
