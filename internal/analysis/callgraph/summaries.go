package callgraph

// A Summarizer computes one caller-visible summary per graph node. The
// driver (Summaries) calls Summarize bottom-up — every resolved callee
// outside the node's own SCC is summarized first — and iterates mutually
// recursive nodes to a fixpoint.
//
// The summary type must form a join-semilattice of fixed height: Bottom is
// the starting element (the summary of a function about which nothing is
// known yet), and Summarize must be monotone — given rising callee
// summaries it returns a rising result. Height bounds the longest strictly
// rising chain, which caps fixpoint iteration within an SCC; like the
// dataflow solver, the driver enforces the bound explicitly. An SCC that
// exceeds it (a non-monotone Summarize or an underestimated Height) is
// degraded to Bottom for every member — the no-assumption direction every
// consumer already handles — instead of failing the whole run: one broken
// component must not silence the findings of the rest of the package.
type Summarizer interface {
	// Bottom is the initial summary every node starts from.
	Bottom() Summary
	// Summarize computes n's summary. get returns the current summary of
	// any graph node (bottom for nodes not yet visited — only possible for
	// same-SCC nodes mid-iteration); implementations look up their callees
	// through it rather than recursing.
	Summarize(n *Node, get func(*Node) Summary) Summary
	// Equal reports whether two summaries are the same lattice element.
	Equal(a, b Summary) bool
	// Height is an upper bound on the longest strictly rising summary
	// chain of one node.
	Height() int
}

// A Summary is one node's caller-visible abstraction; opaque to the driver.
type Summary interface{}

// Summaries runs s over the whole graph bottom-up and returns the summary
// of every node, indexed by Node.ID, plus the number of SCCs that failed
// to reach a fixpoint within the lattice-height bound and were degraded to
// Bottom (drivers surface the count under -stats). Singleton SCCs without
// self-calls are summarized exactly once; cyclic SCCs iterate round-robin
// (members in ID order) until no member's summary changes, bounded by
// |scc| * (Height+2) recomputations.
func Summaries(g *Graph, s Summarizer) ([]Summary, int) {
	out := make([]Summary, len(g.Nodes))
	for i := range out {
		out[i] = s.Bottom()
	}
	get := func(n *Node) Summary { return out[n.ID] }

	diverged := 0
	for _, scc := range g.SCCs {
		if len(scc) == 1 && !callsSelf(scc[0]) {
			out[scc[0].ID] = s.Summarize(scc[0], get)
			continue
		}
		bound := len(scc) * (s.Height() + 2)
		converged := false
		for round := 0; round <= bound; round++ {
			changed := false
			for _, n := range scc {
				next := s.Summarize(n, get)
				if !s.Equal(next, out[n.ID]) {
					out[n.ID] = next
					changed = true
				}
			}
			if !changed {
				converged = true
				break
			}
		}
		if !converged {
			diverged++
			for _, n := range scc {
				out[n.ID] = s.Bottom()
			}
		}
	}
	return out, diverged
}

func callsSelf(n *Node) bool {
	for _, site := range n.Sites {
		if site.Callee == n {
			return true
		}
	}
	return false
}
