package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out files (relative path → content) under root.
func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for rel, content := range files {
		fn := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(fn), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fn, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLoadTestsOnlyPackage pins the tests-only edge case: a directory
// holding nothing but _test.go files is not a package — Load reports it
// (no panic), and ModulePackages does not list it in the first place.
func TestLoadTestsOnlyPackage(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"go.mod":                 "module example.com/m\n\ngo 1.22\n",
		"ok/ok.go":               "package ok\n\nfunc OK() int { return 1 }\n",
		"onlytests/only_test.go": "package onlytests\n\nimport \"testing\"\n\nfunc TestX(t *testing.T) {}\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := loader.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if strings.Contains(p, "onlytests") {
			t.Errorf("ModulePackages listed tests-only directory: %v", paths)
		}
	}
	if len(paths) != 1 || paths[0] != "example.com/m/ok" {
		t.Errorf("ModulePackages = %v, want [example.com/m/ok]", paths)
	}
	if _, err := loader.Load("example.com/m/onlytests"); err == nil {
		t.Error("Load on a tests-only directory succeeded, want an error")
	} else if !strings.Contains(err.Error(), "no Go files") {
		t.Errorf("Load error = %v, want a no-Go-files report", err)
	}
}

// TestLoadBuildTagExcluded pins build-constraint handling: files excluded
// by a //go:build line or a GOOS file-name suffix are not parsed, so their
// contents (here: declarations that would collide) never reach the type
// checker.
func TestLoadBuildTagExcluded(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"go.mod":    "module example.com/m\n\ngo 1.22\n",
		"p/main.go": "package p\n\nfunc F() int { return 1 }\n",
		"p/ignored.go": "//go:build neverenabled\n\n" +
			"package p\n\nfunc F() int { return 2 }\n",
		"p/other_plan9.go": "package p\n\nfunc F() int { return 3 }\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load("example.com/m/p")
	if err != nil {
		t.Fatalf("Load with excluded files failed: %v", err)
	}
	if len(pkg.Files) != 1 {
		t.Errorf("loaded %d files, want only main.go", len(pkg.Files))
	}
	for name := range pkg.Sources {
		if !strings.HasSuffix(name, "main.go") {
			t.Errorf("excluded file %s was loaded", name)
		}
	}
}

// TestLoadSyntaxError pins the malformed-input edge case: a file that does
// not parse produces an error naming the file — a report, not a panic, so
// one broken file cannot take down a whole lint run.
func TestLoadSyntaxError(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"go.mod":       "module example.com/m\n\ngo 1.22\n",
		"bad/bad.go":   "package bad\n\nfunc Broken( {\n",
		"good/good.go": "package good\n\nfunc G() {}\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load("example.com/m/bad"); err == nil {
		t.Error("Load on a syntax-error file succeeded, want an error")
	} else if !strings.Contains(err.Error(), "bad.go") {
		t.Errorf("Load error = %v, want it to name bad.go", err)
	}
	// The same loader still works for healthy packages afterwards.
	if _, err := loader.Load("example.com/m/good"); err != nil {
		t.Errorf("Load of a healthy package after a syntax error failed: %v", err)
	}
}

// TestLoadTypeErrorIsReported pins the type-error path: well-formed syntax
// with a type error is reported with the package path, not panicked on.
func TestLoadTypeErrorIsReported(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"go.mod":     "module example.com/m\n\ngo 1.22\n",
		"twe/twe.go": "package twe\n\nfunc F() int { return \"not an int\" }\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load("example.com/m/twe"); err == nil {
		t.Error("Load on a type-error file succeeded, want an error")
	} else if !strings.Contains(err.Error(), "type errors") {
		t.Errorf("Load error = %v, want a type-errors report", err)
	}
}
