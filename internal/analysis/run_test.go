package analysis

import (
	"go/token"
	"reflect"
	"testing"
)

func fakeFinding(analyzer, file string, line, col int) Finding {
	return Finding{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: file, Line: line, Column: col},
		Message:  "m",
	}
}

// TestSortFindings pins the global output order: file, then line, then
// column, then analyzer name — the contract that keeps multi-package
// -json output byte-stable.
func TestSortFindings(t *testing.T) {
	in := []Finding{
		fakeFinding("nilness", "b.go", 1, 1),
		fakeFinding("budgetcheck", "a.go", 9, 2),
		fakeFinding("sharemut", "a.go", 3, 7),
		fakeFinding("nilness", "a.go", 3, 7),
		fakeFinding("budgetflow", "a.go", 3, 2),
	}
	SortFindings(in)
	var got []string
	for _, f := range in {
		got = append(got, f.Pos.Filename+":"+f.Analyzer)
	}
	want := []string{
		"a.go:budgetflow",  // a.go:3:2
		"a.go:nilness",     // a.go:3:7 — analyzer breaks the tie
		"a.go:sharemut",    // a.go:3:7
		"a.go:budgetcheck", // a.go:9:2
		"b.go:nilness",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SortFindings order = %v, want %v", got, want)
	}
}
