package analysis

import (
	"fmt"
	"go/format"
	"go/token"
	"sort"
	"strings"
	"time"
)

// A Finding is a Diagnostic resolved to concrete file positions and tagged
// with the analyzer that produced it, ready for printing or JSON encoding.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	End      token.Position `json:"end,omitempty"`
	Message  string         `json:"message"`

	// Fixes carries the raw suggested fixes (token.Pos-based) for -fix.
	Fixes []SuggestedFix `json:"-"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (dprlelint/%s)", f.Pos, f.Message, f.Analyzer)
}

// AnalyzerStats aggregates one analyzer's bookkeeping across packages:
// surviving findings, wall time, and any approximation counters the
// analyzer recorded through Pass.CountStat.
type AnalyzerStats struct {
	Findings int
	Wall     time.Duration
	Counters map[string]int
}

// Merge folds another stats record into s.
func (s *AnalyzerStats) Merge(o AnalyzerStats) {
	s.Findings += o.Findings
	s.Wall += o.Wall
	for k, v := range o.Counters {
		if s.Counters == nil {
			s.Counters = map[string]int{}
		}
		s.Counters[k] += v
	}
}

// Run applies each analyzer to the package and returns the surviving
// findings, sorted by position. Diagnostics suppressed by a
// //lint:ignore dprlelint/<name> directive (see ignores) are dropped.
func Run(pkg *Package, fset *token.FileSet, analyzers []*Analyzer) ([]Finding, error) {
	out, _, err := RunStats(pkg, fset, analyzers)
	return out, err
}

// RunStats is Run plus per-analyzer statistics (findings, wall time,
// CountStat counters), keyed by analyzer name.
func RunStats(pkg *Package, fset *token.FileSet, analyzers []*Analyzer) ([]Finding, map[string]AnalyzerStats, error) {
	ign := collectIgnores(pkg, fset)
	var out []Finding
	stats := map[string]AnalyzerStats{}
	for _, a := range analyzers {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Sources:   pkg.Sources,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		begin := time.Now()
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
		st := AnalyzerStats{Wall: time.Since(begin), Counters: pass.stats}
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			if ign.suppressed(a.Name, pos) {
				continue
			}
			f := Finding{Analyzer: a.Name, Pos: pos, Message: d.Message, Fixes: d.SuggestedFixes}
			if d.End.IsValid() {
				f.End = fset.Position(d.End)
			}
			out = append(out, f)
			st.Findings++
		}
		stats[a.Name] = st
	}
	SortFindings(out)
	return out, stats, nil
}

// SortFindings orders findings by file, line, column, then analyzer name —
// the canonical order for human and -json output. Sorting the combined
// findings of several packages through this single comparator keeps CI
// output byte-stable regardless of package load order.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ignores records //lint:ignore directives by file, line, and analyzer name.
//
// The directive grammar is:
//
//	//lint:ignore dprlelint/<name> <reason>
//
// placed either on the flagged line or on the line immediately above it.
// The reason is mandatory: a directive without one is inert, so every
// suppression in the tree documents why the invariant does not apply.
type ignores map[string]map[int]map[string]bool // file → line → analyzer → ok

const ignorePrefix = "lint:ignore dprlelint/"

func collectIgnores(pkg *Package, fset *token.FileSet) ignores {
	ign := ignores{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), ignorePrefix)
				if !ok {
					continue
				}
				name, reason, _ := strings.Cut(rest, " ")
				if name == "" || strings.TrimSpace(reason) == "" {
					continue // no reason: directive is inert by design
				}
				pos := fset.Position(c.Pos())
				if ign[pos.Filename] == nil {
					ign[pos.Filename] = map[int]map[string]bool{}
				}
				if ign[pos.Filename][pos.Line] == nil {
					ign[pos.Filename][pos.Line] = map[string]bool{}
				}
				ign[pos.Filename][pos.Line][name] = true
			}
		}
	}
	return ign
}

func (ign ignores) suppressed(analyzer string, pos token.Position) bool {
	lines := ign[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer] || lines[pos.Line-1][analyzer]
}

// ApplyFixes applies every suggested fix of the findings to the given
// sources (file name → content) and returns the rewritten, gofmt-formatted
// files. Overlapping edits are an error.
func ApplyFixes(fset *token.FileSet, sources map[string][]byte, findings []Finding) (map[string][]byte, error) {
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := map[string][]edit{}
	for _, f := range findings {
		for _, fix := range f.Fixes {
			for _, te := range fix.TextEdits {
				p := fset.Position(te.Pos)
				end := p.Offset
				if te.End.IsValid() {
					end = fset.Position(te.End).Offset
				}
				perFile[p.Filename] = append(perFile[p.Filename], edit{p.Offset, end, te.NewText})
			}
		}
	}
	out := map[string][]byte{}
	names := make([]string, 0, len(perFile))
	for name := range perFile {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		edits := perFile[name]
		src, ok := sources[name]
		if !ok {
			return nil, fmt.Errorf("analysis: no source for %s", name)
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start < edits[j].start })
		var buf []byte
		last := 0
		for _, e := range edits {
			if e.start < last {
				return nil, fmt.Errorf("analysis: overlapping fixes in %s", name)
			}
			buf = append(buf, src[last:e.start]...)
			buf = append(buf, e.text...)
			last = e.end
		}
		buf = append(buf, src[last:]...)
		formatted, err := format.Source(buf)
		if err != nil {
			return nil, fmt.Errorf("analysis: fixed %s does not parse: %w", name, err)
		}
		out[name] = formatted
	}
	return out, nil
}
