package lang

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tkVar    tokKind = iota // $name
	tkIdent                 // bare identifier / keyword
	tkString                // string literal (raw text plus interpolation info)
	tkPunct                 // single punctuation: ( ) { } [ ] ; , . = !
	tkOp                    // multi-char operators: == != === !== <= >= && ||
	tkEOF
)

type tok struct {
	kind  tokKind
	text  string
	line  int
	parts []Expr // for tkString: interpolation-split parts
}

type lexer struct {
	file string
	src  string
	pos  int
	line int
	toks []tok
}

func lexSource(file, src string) ([]tok, error) {
	l := &lexer{file: file, src: src, line: 1}
	// Strip a leading <?php and a trailing ?> if present.
	if i := strings.Index(l.src, "<?php"); i >= 0 {
		l.line += strings.Count(l.src[:i], "\n")
		l.src = l.src[i+len("<?php"):]
	}
	if i := strings.LastIndex(l.src, "?>"); i >= 0 {
		l.src = l.src[:i]
	}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tkEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return &Error{File: l.file, Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (tok, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return tok{}, l.errf("unterminated block comment")
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		default:
			return l.scan()
		}
	}
	return tok{kind: tkEOF, line: l.line}, nil
}

func (l *lexer) scan() (tok, error) {
	c := l.src[l.pos]
	switch {
	case c == '$':
		l.pos++
		start := l.pos
		for l.pos < len(l.src) && isWordByte(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == start {
			return tok{}, l.errf("bare '$'")
		}
		return tok{kind: tkVar, text: l.src[start:l.pos], line: l.line}, nil
	case isWordByte(c):
		start := l.pos
		for l.pos < len(l.src) && isWordByte(l.src[l.pos]) {
			l.pos++
		}
		return tok{kind: tkIdent, text: l.src[start:l.pos], line: l.line}, nil
	case c == '\'':
		return l.scanSingleQuote()
	case c == '"':
		return l.scanDoubleQuote()
	default:
		// Multi-character operators first.
		for _, op := range []string{"===", "!==", "==", "!=", "<=", ">=", "&&", "||", "=>"} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += len(op)
				return tok{kind: tkOp, text: op, line: l.line}, nil
			}
		}
		switch c {
		case '(', ')', '{', '}', '[', ']', ';', ',', '.', '=', '!', '<', '>':
			l.pos++
			return tok{kind: tkPunct, text: string([]byte{c}), line: l.line}, nil
		}
		return tok{}, l.errf("unexpected character %q", c)
	}
}

func isWordByte(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// scanSingleQuote lexes a PHP single-quoted string: only \' and \\ escape.
func (l *lexer) scanSingleQuote() (tok, error) {
	line := l.line
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '\'':
			l.pos++
			return tok{kind: tkString, text: sb.String(), line: line,
				parts: []Expr{&StrLit{Value: sb.String()}}}, nil
		case '\\':
			if l.pos+1 < len(l.src) && (l.src[l.pos+1] == '\'' || l.src[l.pos+1] == '\\') {
				sb.WriteByte(l.src[l.pos+1])
				l.pos += 2
				continue
			}
			sb.WriteByte(c)
			l.pos++
		case '\n':
			l.line++
			sb.WriteByte(c)
			l.pos++
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return tok{}, l.errf("unterminated string")
}

// scanDoubleQuote lexes a PHP double-quoted string, splitting `$var` and
// `{$var}` interpolations into concatenation parts.
func (l *lexer) scanDoubleQuote() (tok, error) {
	line := l.line
	l.pos++ // opening quote
	var parts []Expr
	var sb strings.Builder
	flush := func() {
		if sb.Len() > 0 {
			parts = append(parts, &StrLit{Value: sb.String()})
			sb.Reset()
		}
	}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '"':
			l.pos++
			flush()
			if len(parts) == 0 {
				parts = []Expr{&StrLit{Value: ""}}
			}
			text := ""
			for _, p := range parts {
				if s, ok := p.(*StrLit); ok {
					text += s.Value
				}
			}
			return tok{kind: tkString, text: text, line: line, parts: parts}, nil
		case c == '\\' && l.pos+1 < len(l.src):
			esc := l.src[l.pos+1]
			switch esc {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '"', '\\', '$':
				sb.WriteByte(esc)
			default:
				sb.WriteByte('\\')
				sb.WriteByte(esc)
			}
			l.pos += 2
		case c == '$' && l.pos+1 < len(l.src) && isWordByte(l.src[l.pos+1]):
			l.pos++
			start := l.pos
			for l.pos < len(l.src) && isWordByte(l.src[l.pos]) {
				l.pos++
			}
			flush()
			parts = append(parts, &VarRef{Name: l.src[start:l.pos]})
		case c == '{' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '$':
			end := strings.IndexByte(l.src[l.pos:], '}')
			if end < 0 {
				return tok{}, l.errf("unterminated {$…} interpolation")
			}
			name := l.src[l.pos+2 : l.pos+end]
			if !isIdent(name) {
				return tok{}, l.errf("unsupported interpolation {%s}", l.src[l.pos+1:l.pos+end])
			}
			flush()
			parts = append(parts, &VarRef{Name: name})
			l.pos += end + 1
		case c == '\n':
			l.line++
			sb.WriteByte(c)
			l.pos++
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return tok{}, l.errf("unterminated string")
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isWordByte(s[i]) {
			return false
		}
	}
	return true
}
