// Package lang implements the PHP-subset front-end language used by the
// paper's evaluation: the fragment of PHP that the eve/utopia/warp web
// applications use on the paths relevant to SQL injection — string
// assignment and concatenation, $_GET/$_POST input reads, double-quote
// variable interpolation, preg_match filtering, exit, and query/echo sinks.
//
// The paper consumed defect reports produced by Wassermann & Su's analysis
// over real PHP; this package is the reproduction's substitute front end
// (see DESIGN.md §2): it parses PHP-subset sources, from which the cfg and
// symexec packages derive the same shape of regular-language constraint
// systems.
package lang

import "fmt"

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
}

// Expr is a string-valued expression node.
type Expr interface {
	exprNode()
}

// Cond is a branch condition.
type Cond interface {
	condNode()
}

// Assign is `$name = rhs;`.
type Assign struct {
	Line int
	Name string
	Rhs  Expr
}

// If is `if (cond) { then } else { else }`; Else may be nil.
type If struct {
	Line int
	Cond Cond
	Then []Stmt
	Else []Stmt
}

// While is `while (cond) { body }`. The path enumerator unrolls loops a
// bounded number of times (loop-free paths are what the decision procedure
// consumes); the concrete interpreter executes them natively.
type While struct {
	Line int
	Cond Cond
	Body []Stmt
}

// Exit is `exit;` / `exit();` / `die(...);`.
type Exit struct{ Line int }

// Echo is `echo expr;` or `print(expr);` — the XSS sink.
type Echo struct {
	Line int
	Arg  Expr
}

// CallStmt is a call evaluated for effect, e.g. `query(...)` (the SQL sink)
// or `unp_msgBox(...)` (a no-op).
type CallStmt struct {
	Line int
	Call *Call
}

func (*Assign) stmtNode()   {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*Exit) stmtNode()     {}
func (*Echo) stmtNode()     {}
func (*CallStmt) stmtNode() {}

// StrLit is a string literal (after interpolation splitting, literals are
// pure text).
type StrLit struct{ Value string }

// VarRef reads a local variable.
type VarRef struct{ Name string }

// InputRef reads untrusted user input: $_GET['Key'] or $_POST['Key'].
type InputRef struct {
	Source string // "GET" or "POST"
	Key    string
}

// ConcatExpr is `a . b . …` (also produced by double-quote interpolation).
type ConcatExpr struct{ Parts []Expr }

// Call is a function call in expression position, e.g. intval($x).
type Call struct {
	Name string
	Args []Expr
}

func (*StrLit) exprNode()     {}
func (*VarRef) exprNode()     {}
func (*InputRef) exprNode()   {}
func (*ConcatExpr) exprNode() {}
func (*Call) exprNode()       {}

// PregMatch is `preg_match('/pat/flags', arg)`, possibly negated with `!`.
type PregMatch struct {
	Pattern         string // pattern text without delimiters
	Arg             Expr
	Negated         bool
	CaseInsensitive bool // the /i flag
}

// Nondet is a condition the string analysis does not model (comparisons,
// isset, …): both branches are feasible and contribute no constraint.
type Nondet struct{ Text string }

func (*PregMatch) condNode() {}
func (*Nondet) condNode()    {}

// Program is a parsed compilation unit.
type Program struct {
	File  string
	Stmts []Stmt
}

// Sinks returns the number of query/echo sink statements in the program,
// counting nested blocks.
func (p *Program) Sinks() int {
	n := 0
	var walk func(stmts []Stmt)
	walk = func(stmts []Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *Echo:
				n++
			case *CallStmt:
				if IsSQLSink(s.Call.Name) {
					n++
				}
			case *If:
				walk(s.Then)
				walk(s.Else)
			case *While:
				walk(s.Body)
			}
		}
	}
	walk(p.Stmts)
	return n
}

// IsSQLSink reports whether the named function sends its argument to the
// database.
func IsSQLSink(name string) bool {
	switch name {
	case "query", "mysql_query", "unp_query", "pg_query":
		return true
	}
	return false
}

// Error is a front-end syntax error with position information.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}
