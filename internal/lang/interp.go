package lang

import (
	"fmt"

	"dprle/internal/regex"
)

// Concrete interpreter for the PHP subset. The analysis pipeline generates
// attack inputs symbolically; this interpreter validates them end to end by
// actually executing the program on a concrete request and observing the
// queries it sends and the output it echoes — the reproduction's stand-in
// for running the generated testcase against the real application.

// Request carries the concrete HTTP inputs of one execution.
type Request struct {
	Get  map[string]string
	Post map[string]string
}

// Trace records the observable effects of one execution.
type Trace struct {
	// Queries lists the strings passed to SQL sinks, in order.
	Queries []string
	// Echoed is the concatenated output of echo/print statements.
	Echoed string
	// Exited reports whether execution ended at an exit statement.
	Exited bool
}

// ExecError reports a runtime failure (e.g. an invalid preg_match pattern).
type ExecError struct {
	Line int
	Msg  string
}

func (e *ExecError) Error() string {
	return fmt.Sprintf("exec: line %d: %s", e.Line, e.Msg)
}

// interpLimits bounds loop execution so malformed programs terminate.
const maxLoopIterations = 10000

type interp struct {
	req   Request
	env   map[string]string
	trace *Trace
}

// Execute runs the program concretely on the given request. Conditions the
// string analysis treats as nondeterministic (comparisons, isset, …)
// evaluate concretely where possible and default to false otherwise.
func Execute(prog *Program, req Request) (*Trace, error) {
	in := &interp{req: req, env: map[string]string{}, trace: &Trace{}}
	exited, err := in.block(prog.Stmts)
	if err != nil {
		return nil, err
	}
	in.trace.Exited = exited
	return in.trace, nil
}

// block executes statements; it reports whether an exit was reached.
func (in *interp) block(stmts []Stmt) (bool, error) {
	for _, s := range stmts {
		exited, err := in.stmt(s)
		if err != nil || exited {
			return exited, err
		}
	}
	return false, nil
}

func (in *interp) stmt(s Stmt) (bool, error) {
	switch s := s.(type) {
	case *Assign:
		v, err := in.eval(s.Rhs)
		if err != nil {
			return false, err
		}
		in.env[s.Name] = v
		return false, nil
	case *Exit:
		return true, nil
	case *Echo:
		v, err := in.eval(s.Arg)
		if err != nil {
			return false, err
		}
		in.trace.Echoed += v
		return false, nil
	case *CallStmt:
		_, err := in.call(s.Call, s.Line)
		return false, err
	case *If:
		taken, err := in.cond(s.Cond, s.Line)
		if err != nil {
			return false, err
		}
		if taken {
			return in.block(s.Then)
		}
		return in.block(s.Else)
	case *While:
		for i := 0; ; i++ {
			if i >= maxLoopIterations {
				return false, &ExecError{Line: s.Line, Msg: "loop iteration limit exceeded"}
			}
			taken, err := in.cond(s.Cond, s.Line)
			if err != nil {
				return false, err
			}
			if !taken {
				return false, nil
			}
			exited, err := in.block(s.Body)
			if err != nil || exited {
				return exited, err
			}
		}
	}
	return false, fmt.Errorf("exec: unknown statement %T", s)
}

func (in *interp) cond(c Cond, line int) (bool, error) {
	switch c := c.(type) {
	case *PregMatch:
		arg, err := in.eval(c.Arg)
		if err != nil {
			return false, err
		}
		r, err := regex.Parse(c.Pattern)
		if err != nil {
			return false, &ExecError{Line: line, Msg: err.Error()}
		}
		if c.CaseInsensitive {
			r = r.CaseInsensitive()
		}
		m, err := r.MatchLanguage()
		if err != nil {
			return false, &ExecError{Line: line, Msg: err.Error()}
		}
		matched := m.Accepts(arg)
		if c.Negated {
			return !matched, nil
		}
		return matched, nil
	case *Nondet:
		// The analysis explored both branches; concretely we take the
		// fall-through (false) so guard-exit padding is not triggered.
		return false, nil
	}
	return false, fmt.Errorf("exec: unknown condition %T", c)
}

func (in *interp) eval(e Expr) (string, error) {
	switch e := e.(type) {
	case *StrLit:
		return e.Value, nil
	case *VarRef:
		return in.env[e.Name], nil // PHP: uninitialized reads as ""
	case *InputRef:
		switch e.Source {
		case "GET":
			return in.req.Get[e.Key], nil
		case "POST":
			return in.req.Post[e.Key], nil
		}
		return "", fmt.Errorf("exec: unknown input source %q", e.Source)
	case *ConcatExpr:
		out := ""
		for _, p := range e.Parts {
			v, err := in.eval(p)
			if err != nil {
				return "", err
			}
			out += v
		}
		return out, nil
	case *Call:
		return in.call(e, 0)
	}
	return "", fmt.Errorf("exec: unknown expression %T", e)
}

// call implements the same library functions the symbolic executor models.
func (in *interp) call(c *Call, line int) (string, error) {
	arg := func(i int) (string, error) {
		if i >= len(c.Args) {
			return "", nil
		}
		return in.eval(c.Args[i])
	}
	switch c.Name {
	case "query", "mysql_query", "unp_query", "pg_query":
		q, err := arg(0)
		if err != nil {
			return "", err
		}
		in.trace.Queries = append(in.trace.Queries, q)
		return "", nil
	case "intval":
		v, err := arg(0)
		if err != nil {
			return "", err
		}
		return intvalString(v), nil
	case "addslashes":
		v, err := arg(0)
		if err != nil {
			return "", err
		}
		var out []byte
		for i := 0; i < len(v); i++ {
			switch v[i] {
			case '\'', '"', '\\', 0:
				out = append(out, '\\')
			}
			out = append(out, v[i])
		}
		return string(out), nil
	case "str_replace":
		search, err := arg(0)
		if err != nil {
			return "", err
		}
		replace, err := arg(1)
		if err != nil {
			return "", err
		}
		subject, err := arg(2)
		if err != nil {
			return "", err
		}
		return replaceAll(subject, search, replace), nil
	case "trim":
		v, err := arg(0)
		if err != nil {
			return "", err
		}
		start, end := 0, len(v)
		for start < end && isPHPSpace(v[start]) {
			start++
		}
		for end > start && isPHPSpace(v[end-1]) {
			end--
		}
		return v[start:end], nil
	case "strtolower", "strtoupper":
		v, err := arg(0)
		if err != nil {
			return "", err
		}
		out := []byte(v)
		for i, b := range out {
			if c.Name == "strtolower" && b >= 'A' && b <= 'Z' {
				out[i] = b + 32
			}
			if c.Name == "strtoupper" && b >= 'a' && b <= 'z' {
				out[i] = b - 32
			}
		}
		return string(out), nil
	default:
		// Unknown calls (unp_msgBox, mystery helpers) return "".
		return "", nil
	}
}

// intvalString mimics PHP's intval-then-string-conversion on string input.
func intvalString(s string) string {
	i := 0
	for i < len(s) && isPHPSpace(s[i]) {
		i++
	}
	start := i
	if i < len(s) && (s[i] == '-' || s[i] == '+') {
		i++
	}
	digits := i
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i == digits {
		return "0"
	}
	// Strip leading zeros (but keep a single zero).
	out := s[start:i]
	neg := false
	if out[0] == '-' || out[0] == '+' {
		neg = out[0] == '-'
		out = out[1:]
	}
	for len(out) > 1 && out[0] == '0' {
		out = out[1:]
	}
	if out == "0" {
		return "0"
	}
	if neg {
		return "-" + out
	}
	return out
}

// replaceAll substitutes every occurrence of search in subject, scanning
// left to right without rescanning replacements (PHP semantics).
func replaceAll(subject, search, replace string) string {
	if search == "" {
		return subject
	}
	var out []byte
	for i := 0; i < len(subject); {
		if i+len(search) <= len(subject) && subject[i:i+len(search)] == search {
			out = append(out, replace...)
			i += len(search)
			continue
		}
		out = append(out, subject[i])
		i++
	}
	return string(out)
}

func isPHPSpace(b byte) bool {
	switch b {
	case ' ', '\t', '\n', '\r', '\v', '\f', 0:
		return true
	}
	return false
}
