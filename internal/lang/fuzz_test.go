package lang

import "testing"

// FuzzParse checks the PHP-subset front end never panics: any input either
// parses into a program (which must then build a CFG-able AST and execute
// without panicking) or returns a positioned error.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		``,
		`$x = 'a';`,
		`<?php $x = $_GET['k']; query($x); ?>`,
		`if (!preg_match('/[\d]+$/', $x)) { exit; }`,
		`while ($m) { $x = $x . 'a'; }`,
		`$q = "a $x {$y} b";`,
		`echo $x . intval($y);`,
		`if ($a == $b && foo()) { die(); } else { print($z); }`,
		`$x = 'unterminated`,
		`if (preg_match(`,
		"$x = \"\\\\\";",
		`/* comment only */`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse("fuzz.php", src)
		if err != nil {
			return
		}
		// The parsed program must execute without panicking (errors are
		// fine) on an empty request.
		_, _ = Execute(prog, Request{})
		_ = prog.Sinks()
	})
}
