package lang

import (
	"strings"
	"testing"
)

func exec(t *testing.T, src string, req Request) *Trace {
	t.Helper()
	prog := MustParse("t.php", src)
	tr, err := Execute(prog, req)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestExecuteFigure1WithExploit(t *testing.T) {
	src := `<?php
$newsid = $_POST['posted_newsid'];
if (!preg_match('/[\d]+$/', $newsid)) { exit; }
$newsid = "nid_" . $newsid;
$idnews = query("SELECT * FROM news WHERE newsid=$newsid");
`
	// The paper's attack input passes the faulty filter…
	tr := exec(t, src, Request{Post: map[string]string{"posted_newsid": "' OR 1=1 ; DROP news --9"}})
	if tr.Exited {
		t.Fatal("exploit should pass the filter")
	}
	if len(tr.Queries) != 1 {
		t.Fatalf("queries = %v", tr.Queries)
	}
	want := "SELECT * FROM news WHERE newsid=nid_' OR 1=1 ; DROP news --9"
	if tr.Queries[0] != want {
		t.Fatalf("query = %q, want %q", tr.Queries[0], want)
	}
	// …while a benign input produces a quote-free query…
	tr2 := exec(t, src, Request{Post: map[string]string{"posted_newsid": "42"}})
	if strings.Contains(tr2.Queries[0], "'") {
		t.Fatal("benign input produced a quoted query")
	}
	// …and a non-matching input exits before the sink.
	tr3 := exec(t, src, Request{Post: map[string]string{"posted_newsid": "abc"}})
	if !tr3.Exited || len(tr3.Queries) != 0 {
		t.Fatalf("filter should reject: %+v", tr3)
	}
}

func TestExecuteEcho(t *testing.T) {
	tr := exec(t, `echo "a"; echo $_GET['x']; print("b");`,
		Request{Get: map[string]string{"x": "<script>"}})
	if tr.Echoed != "a<script>b" {
		t.Fatalf("echoed = %q", tr.Echoed)
	}
}

func TestExecuteNondetTakesFallthrough(t *testing.T) {
	tr := exec(t, `if ($flag == 1) { exit; } $x = 'ok'; query($x);`, Request{})
	if tr.Exited || len(tr.Queries) != 1 || tr.Queries[0] != "ok" {
		t.Fatalf("trace = %+v", tr)
	}
	tr2 := exec(t, `if ($flag == 1) { exit; } else { $y = 'e'; } query($y);`, Request{})
	if tr2.Queries[0] != "e" {
		t.Fatalf("else branch not taken: %+v", tr2)
	}
}

func TestExecuteIntval(t *testing.T) {
	cases := map[string]string{
		"42":      "42",
		"  -7abc": "-7",
		"abc":     "0",
		"0007":    "7",
		"+5":      "5",
		"-0":      "0",
		"":        "0",
	}
	for in, want := range cases {
		tr := exec(t, `$n = intval($_GET['x']); query($n);`,
			Request{Get: map[string]string{"x": in}})
		if tr.Queries[0] != want {
			t.Errorf("intval(%q) = %q, want %q", in, tr.Queries[0], want)
		}
	}
}

func TestExecuteAddslashes(t *testing.T) {
	tr := exec(t, `$s = addslashes($_GET['x']); query($s);`,
		Request{Get: map[string]string{"x": `a'b"c\d`}})
	if tr.Queries[0] != `a\'b\"c\\d` {
		t.Fatalf("addslashes = %q", tr.Queries[0])
	}
}

func TestExecuteStringHelpers(t *testing.T) {
	tr := exec(t, `$a = trim($_GET['x']); $b = strtolower($a); $c = strtoupper($a); query($b . "|" . $c);`,
		Request{Get: map[string]string{"x": "  MiXeD  "}})
	if tr.Queries[0] != "mixed|MIXED" {
		t.Fatalf("helpers = %q", tr.Queries[0])
	}
}

func TestExecuteUnknownCallReturnsEmpty(t *testing.T) {
	tr := exec(t, `$x = mystery('a', 'b'); query("q" . $x);`, Request{})
	if tr.Queries[0] != "q" {
		t.Fatalf("unknown call = %q", tr.Queries[0])
	}
}

func TestExecuteBadPatternErrors(t *testing.T) {
	prog := MustParse("t.php", `if (preg_match('/(/', $x)) { exit; }`)
	if _, err := Execute(prog, Request{}); err == nil {
		t.Fatal("invalid pattern must error at execution")
	}
}

func TestExecuteStrReplace(t *testing.T) {
	tr := exec(t, `$x = str_replace("'", "''", $_GET['x']); query($x);`,
		Request{Get: map[string]string{"x": "a'b''c"}})
	if tr.Queries[0] != "a''b''''c" {
		t.Fatalf("str_replace = %q", tr.Queries[0])
	}
	tr2 := exec(t, `$x = str_replace("ab", "X", $_GET['x']); query($x);`,
		Request{Get: map[string]string{"x": "ababa"}})
	if tr2.Queries[0] != "XXa" {
		t.Fatalf("multi-byte replace = %q", tr2.Queries[0])
	}
	tr3 := exec(t, `$x = str_replace("", "X", $_GET['x']); query($x);`,
		Request{Get: map[string]string{"x": "ab"}})
	if tr3.Queries[0] != "ab" {
		t.Fatalf("empty search = %q", tr3.Queries[0])
	}
}

func TestExecuteWhileLoop(t *testing.T) {
	// The loop condition is a preg_match over evolving state: append 'a'
	// until the value ends with three a's.
	src := `
$x = 'start';
while (!preg_match('/aaa$/', $x)) {
    $x = $x . 'a';
}
query($x);
`
	tr := exec(t, src, Request{})
	if len(tr.Queries) != 1 || tr.Queries[0] != "startaaa" {
		t.Fatalf("loop result = %+v", tr)
	}
}

func TestExecuteWhileNondetSkipped(t *testing.T) {
	// Nondet loop conditions evaluate false: zero iterations.
	tr := exec(t, `$x = 'a'; while ($more) { $x = $x . 'b'; } query($x);`, Request{})
	if tr.Queries[0] != "a" {
		t.Fatalf("nondet loop should not run: %+v", tr)
	}
}

func TestExecuteInfiniteLoopBounded(t *testing.T) {
	// A loop whose preg_match condition never flips must hit the iteration
	// limit and report an error instead of hanging.
	src := `
$x = 'b';
while (!preg_match('/^a/', $x)) {
    $x = 'b';
}
`
	prog := MustParse("t.php", src)
	if _, err := Execute(prog, Request{}); err == nil {
		t.Fatal("runaway loop must error")
	}
}

func TestExecuteWhileBodyExit(t *testing.T) {
	src := `
$x = 'aaa';
while (preg_match('/a/', $x)) {
    exit;
}
query($x);
`
	tr := exec(t, src, Request{})
	if !tr.Exited || len(tr.Queries) != 0 {
		t.Fatalf("exit in loop body: %+v", tr)
	}
}
