package lang

import (
	"strings"
	"testing"
)

// figure1 is the paper's Fig. 1 fragment, adapted from Utopia News Pro.
const figure1 = `<?php
$newsid = $_POST['posted_newsid'];
if (!preg_match('/[\d]+$/', $newsid)) {
    unp_msgBox('Invalid article newsID.');
    exit;
}
$newsid = "nid_" . $newsid;
$idnews = query("SELECT * FROM news" .
                " WHERE newsid=$newsid");
`

func TestParseFigure1(t *testing.T) {
	prog, err := Parse("fig1.php", figure1)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 4 {
		t.Fatalf("stmts = %d, want 4", len(prog.Stmts))
	}
	// Statement 1: input read.
	a, ok := prog.Stmts[0].(*Assign)
	if !ok || a.Name != "newsid" {
		t.Fatalf("stmt 0 = %#v", prog.Stmts[0])
	}
	in, ok := a.Rhs.(*InputRef)
	if !ok || in.Source != "POST" || in.Key != "posted_newsid" {
		t.Fatalf("rhs = %#v", a.Rhs)
	}
	// Statement 2: negated preg_match guard with exit.
	iff, ok := prog.Stmts[1].(*If)
	if !ok {
		t.Fatalf("stmt 1 = %#v", prog.Stmts[1])
	}
	pm, ok := iff.Cond.(*PregMatch)
	if !ok || !pm.Negated || pm.Pattern != `[\d]+$` {
		t.Fatalf("cond = %#v", iff.Cond)
	}
	if len(iff.Then) != 2 {
		t.Fatalf("then block = %d stmts", len(iff.Then))
	}
	if _, ok := iff.Then[1].(*Exit); !ok {
		t.Fatalf("then[1] = %#v", iff.Then[1])
	}
	// Statement 3: concatenation assignment.
	a3 := prog.Stmts[2].(*Assign)
	cc, ok := a3.Rhs.(*ConcatExpr)
	if !ok || len(cc.Parts) != 2 {
		t.Fatalf("rhs = %#v", a3.Rhs)
	}
	// Statement 4: query(...) with interpolation.
	a4 := prog.Stmts[3].(*Assign)
	call, ok := a4.Rhs.(*Call)
	if !ok || call.Name != "query" {
		t.Fatalf("rhs = %#v", a4.Rhs)
	}
	arg := call.Args[0].(*ConcatExpr)
	// "SELECT * FROM news" . (" WHERE newsid=" $newsid) → 3 flat parts after
	// interpolation: lit, lit, var.
	found := false
	for _, part := range arg.Parts {
		if inner, ok := part.(*ConcatExpr); ok {
			for _, ip := range inner.Parts {
				if v, ok := ip.(*VarRef); ok && v.Name == "newsid" {
					found = true
				}
			}
		}
		if v, ok := part.(*VarRef); ok && v.Name == "newsid" {
			found = true
		}
	}
	if !found {
		t.Fatal("interpolated $newsid lost")
	}
}

func TestDoubleQuoteInterpolation(t *testing.T) {
	prog := MustParse("t.php", `$q = "a $x b {$y} c";`)
	cc := prog.Stmts[0].(*Assign).Rhs.(*ConcatExpr)
	if len(cc.Parts) != 5 {
		t.Fatalf("parts = %d, want 5", len(cc.Parts))
	}
	if cc.Parts[0].(*StrLit).Value != "a " {
		t.Fatal("leading literal wrong")
	}
	if cc.Parts[1].(*VarRef).Name != "x" || cc.Parts[3].(*VarRef).Name != "y" {
		t.Fatal("interpolated vars wrong")
	}
}

func TestStringEscapes(t *testing.T) {
	prog := MustParse("t.php", `$a = 'it\'s'; $b = "x\n\t\"\$z";`)
	if prog.Stmts[0].(*Assign).Rhs.(*StrLit).Value != "it's" {
		t.Fatal("single-quote escape wrong")
	}
	if prog.Stmts[1].(*Assign).Rhs.(*StrLit).Value != "x\n\t\"$z" {
		t.Fatal("double-quote escapes wrong")
	}
}

func TestIfElseChains(t *testing.T) {
	src := `
if (preg_match('/a/', $x)) { $y = 'a'; }
else if (preg_match('/b/', $x)) { $y = 'b'; }
elseif ($x == 'q') { $y = 'c'; }
else { $y = 'd'; }
`
	prog := MustParse("t.php", src)
	iff := prog.Stmts[0].(*If)
	if len(iff.Else) != 1 {
		t.Fatal("else-if chain not nested")
	}
	second := iff.Else[0].(*If)
	if second.Cond.(*PregMatch).Pattern != "b" {
		t.Fatal("second condition wrong")
	}
	third := second.Else[0].(*If)
	if _, ok := third.Cond.(*Nondet); !ok {
		t.Fatalf("comparison should be Nondet, got %#v", third.Cond)
	}
	if len(third.Else) != 1 {
		t.Fatal("final else missing")
	}
}

func TestNondetConditions(t *testing.T) {
	for _, src := range []string{
		`if (isset($_GET['x'])) { exit; }`,
		`if ($a == $b) { exit; }`,
		`if (preg_match('/a/', $x) && $b) { exit; }`, // conjunction degrades
		`if (!empty($x)) { exit; }`,
	} {
		prog := MustParse("t.php", src)
		iff := prog.Stmts[0].(*If)
		if _, ok := iff.Cond.(*Nondet); !ok {
			t.Errorf("%s: cond = %#v, want Nondet", src, iff.Cond)
		}
	}
}

func TestDoubleNegation(t *testing.T) {
	prog := MustParse("t.php", `if (!!preg_match('/a/', $x)) { exit; }`)
	pm := prog.Stmts[0].(*If).Cond.(*PregMatch)
	if pm.Negated {
		t.Fatal("double negation should cancel")
	}
}

func TestExitForms(t *testing.T) {
	prog := MustParse("t.php", `exit; exit(); die('bye'); exit(1);`)
	if len(prog.Stmts) != 4 {
		t.Fatalf("stmts = %d", len(prog.Stmts))
	}
	for i, s := range prog.Stmts {
		if _, ok := s.(*Exit); !ok {
			t.Errorf("stmt %d = %#v", i, s)
		}
	}
}

func TestEchoForms(t *testing.T) {
	prog := MustParse("t.php", `echo $x; print($y);`)
	if len(prog.Stmts) != 2 {
		t.Fatal("stmt count")
	}
	for _, s := range prog.Stmts {
		if _, ok := s.(*Echo); !ok {
			t.Errorf("stmt = %#v", s)
		}
	}
}

func TestCallExpressionsAndStatements(t *testing.T) {
	prog := MustParse("t.php", `$x = intval($_GET['n']); unp_msgBox('hi'); query("SELECT" . $x);`)
	if call, ok := prog.Stmts[0].(*Assign).Rhs.(*Call); !ok || call.Name != "intval" {
		t.Fatal("call expression wrong")
	}
	cs := prog.Stmts[2].(*CallStmt)
	if !IsSQLSink(cs.Call.Name) {
		t.Fatal("query should be a SQL sink")
	}
}

func TestSinksCount(t *testing.T) {
	prog := MustParse("t.php", `
query($a);
if ($x) { mysql_query($b); } else { echo $c; }
unp_msgBox($d);
`)
	if got := prog.Sinks(); got != 3 {
		t.Fatalf("Sinks = %d, want 3", got)
	}
}

func TestCommentsSkipped(t *testing.T) {
	prog := MustParse("t.php", `
// line comment
# hash comment
/* block
   comment */
$x = 'a';
`)
	if len(prog.Stmts) != 1 {
		t.Fatalf("stmts = %d", len(prog.Stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`$x = ;`,
		`$x = 'unterminated`,
		`if (preg_match('/a/', $x) { exit; }`, // missing close paren → unterminated cond
		`$ = 'a';`,
		`$x = $_GET[5];`,
		`foo(;`,
		`if`,
		`$x = "unclosed {$y";`,
	}
	for _, src := range bad {
		if _, err := Parse("t.php", src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		} else if !strings.Contains(err.Error(), "t.php:") {
			t.Errorf("error %q lacks file position", err)
		}
	}
}

func TestPregMatchDelimiters(t *testing.T) {
	prog := MustParse("t.php", `if (preg_match('#ab/cd#i', $x)) { exit; }`)
	pm := prog.Stmts[0].(*If).Cond.(*PregMatch)
	if pm.Pattern != "ab/cd" {
		t.Fatalf("pattern = %q", pm.Pattern)
	}
}

func TestPhpTagsStripped(t *testing.T) {
	prog := MustParse("t.php", "<?php $x = 'a'; ?>")
	if len(prog.Stmts) != 1 {
		t.Fatal("php tags not stripped")
	}
}

func TestPregMatchCaseInsensitiveFlag(t *testing.T) {
	prog := MustParse("t.php", `if (preg_match('/^admin$/i', $x)) { exit; }`)
	pm := prog.Stmts[0].(*If).Cond.(*PregMatch)
	if !pm.CaseInsensitive || pm.Pattern != "^admin$" {
		t.Fatalf("pm = %+v", pm)
	}
	plain := MustParse("t.php", `if (preg_match('/^admin$/', $x)) { exit; }`)
	if plain.Stmts[0].(*If).Cond.(*PregMatch).CaseInsensitive {
		t.Fatal("flag misdetected")
	}
}

func TestExecuteCaseInsensitiveMatch(t *testing.T) {
	src := `
$x = $_GET['x'];
if (!preg_match('/^yes$/i', $x)) { exit; }
query("ok");
`
	tr := exec(t, src, Request{Get: map[string]string{"x": "YES"}})
	if tr.Exited || len(tr.Queries) != 1 {
		t.Fatalf("case-insensitive match failed: %+v", tr)
	}
	tr2 := exec(t, src, Request{Get: map[string]string{"x": "no"}})
	if !tr2.Exited {
		t.Fatal("non-match should exit")
	}
}
