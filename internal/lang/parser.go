package lang

import (
	"fmt"
	"strings"
)

type parser struct {
	file string
	toks []tok
	pos  int
}

// Parse parses a PHP-subset source file into a Program.
func Parse(file, src string) (*Program, error) {
	toks, err := lexSource(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{file: file, toks: toks}
	var stmts []Stmt
	for p.cur().kind != tkEOF {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			stmts = append(stmts, s)
		}
	}
	return &Program{File: file, Stmts: stmts}, nil
}

// MustParse is Parse for statically known sources.
func MustParse(file, src string) *Program {
	p, err := Parse(file, src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *parser) cur() tok  { return p.toks[p.pos] }
func (p *parser) next() tok { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(line int, format string, args ...any) error {
	return &Error{File: p.file, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) acceptPunct(text string) bool {
	if p.cur().kind == tkPunct && p.cur().text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(text string) error {
	t := p.next()
	if t.kind != tkPunct || t.text != text {
		return p.errf(t.line, "expected %q, found %q", text, t.text)
	}
	return nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.kind == tkVar:
		return p.assign()
	case t.kind == tkIdent && t.text == "if":
		return p.ifStmt()
	case t.kind == tkIdent && t.text == "while":
		return p.whileStmt()
	case t.kind == tkIdent && (t.text == "exit" || t.text == "die"):
		return p.exitStmt()
	case t.kind == tkIdent && (t.text == "echo" || t.text == "print"):
		return p.echoStmt()
	case t.kind == tkIdent:
		return p.callStmt()
	case t.kind == tkPunct && t.text == ";":
		p.pos++ // empty statement
		return nil, nil
	}
	return nil, p.errf(t.line, "unexpected token %q", t.text)
}

func (p *parser) assign() (Stmt, error) {
	v := p.next() // tkVar
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	rhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &Assign{Line: v.line, Name: v.text, Rhs: rhs}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	kw := p.next() // 'if'
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.cond()
	if err != nil {
		return nil, err
	}
	thenBlock, err := p.block()
	if err != nil {
		return nil, err
	}
	var elseBlock []Stmt
	if p.cur().kind == tkIdent && p.cur().text == "else" {
		p.pos++
		if p.cur().kind == tkIdent && p.cur().text == "if" {
			nested, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			elseBlock = []Stmt{nested}
		} else {
			elseBlock, err = p.block()
			if err != nil {
				return nil, err
			}
		}
	} else if p.cur().kind == tkIdent && p.cur().text == "elseif" {
		p.toks[p.pos].text = "if" // rewrite and re-parse as else { if … }
		nested, err := p.ifStmt()
		if err != nil {
			return nil, err
		}
		elseBlock = []Stmt{nested}
	}
	return &If{Line: kw.line, Cond: cond, Then: thenBlock, Else: elseBlock}, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	kw := p.next() // 'while'
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.cond()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &While{Line: kw.line, Cond: cond, Body: body}, nil
}

// cond parses a condition up to and including the closing ')'. preg_match
// (possibly negated) is modeled precisely; anything else becomes Nondet.
func (p *parser) cond() (Cond, error) {
	negated := false
	for p.cur().kind == tkPunct && p.cur().text == "!" {
		negated = !negated
		p.pos++
	}
	if p.cur().kind == tkIdent && p.cur().text == "preg_match" {
		save := p.pos
		pm, err := p.pregMatch(negated)
		if err == nil {
			// The whole condition must end here; otherwise (e.g. a
			// conjunction) fall back to Nondet.
			if p.acceptPunct(")") {
				return pm, nil
			}
		}
		p.pos = save
	}
	// Nondet: consume balanced tokens until the ')' closing the if.
	var text strings.Builder
	depth := 0
	for {
		t := p.cur()
		if t.kind == tkEOF {
			return nil, p.errf(t.line, "unterminated condition")
		}
		if t.kind == tkPunct {
			switch t.text {
			case "(":
				depth++
			case ")":
				if depth == 0 {
					p.pos++
					return &Nondet{Text: strings.TrimSpace(text.String())}, nil
				}
				depth--
			}
		}
		text.WriteString(t.text)
		text.WriteByte(' ')
		p.pos++
	}
}

// pregMatch parses `preg_match ( 'pattern' , expr )` without consuming the
// condition's closing parenthesis.
func (p *parser) pregMatch(negated bool) (Cond, error) {
	kw := p.next() // preg_match
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	pat := p.next()
	if pat.kind != tkString {
		return nil, p.errf(pat.line, "preg_match pattern must be a string literal")
	}
	pattern, flags, err := stripDelimiters(pat.text)
	if err != nil {
		return nil, p.errf(pat.line, "%v", err)
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	arg, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	_ = kw
	return &PregMatch{
		Pattern: pattern, Arg: arg, Negated: negated,
		CaseInsensitive: strings.ContainsRune(flags, 'i'),
	}, nil
}

// stripDelimiters removes the PCRE delimiters and returns the trailing
// flags: "/[\d]+$/i" → ("[\d]+$", "i").
func stripDelimiters(pat string) (pattern, flags string, err error) {
	if len(pat) < 2 {
		return "", "", fmt.Errorf("pattern %q too short", pat)
	}
	delim := pat[0]
	end := strings.LastIndexByte(pat[1:], delim)
	if end < 0 {
		return "", "", fmt.Errorf("pattern %q missing closing delimiter", pat)
	}
	return pat[1 : 1+end], pat[2+end:], nil
}

// block parses `{ stmt* }` or a single statement.
func (p *parser) block() ([]Stmt, error) {
	if p.acceptPunct("{") {
		var stmts []Stmt
		for !p.acceptPunct("}") {
			if p.cur().kind == tkEOF {
				return nil, p.errf(p.cur().line, "unterminated block")
			}
			s, err := p.stmt()
			if err != nil {
				return nil, err
			}
			if s != nil {
				stmts = append(stmts, s)
			}
		}
		return stmts, nil
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	if s == nil {
		return nil, nil
	}
	return []Stmt{s}, nil
}

func (p *parser) exitStmt() (Stmt, error) {
	kw := p.next()
	if p.acceptPunct("(") {
		// Optional message argument.
		if p.cur().kind != tkPunct || p.cur().text != ")" {
			if _, err := p.expr(); err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &Exit{Line: kw.line}, nil
}

func (p *parser) echoStmt() (Stmt, error) {
	kw := p.next()
	paren := p.acceptPunct("(")
	arg, err := p.expr()
	if err != nil {
		return nil, err
	}
	if paren {
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &Echo{Line: kw.line, Arg: arg}, nil
}

func (p *parser) callStmt() (Stmt, error) {
	name := p.next()
	call, err := p.callAfterName(name)
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &CallStmt{Line: name.line, Call: call}, nil
}

func (p *parser) callAfterName(name tok) (*Call, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []Expr
	if !(p.cur().kind == tkPunct && p.cur().text == ")") {
		for {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &Call{Name: name.text, Args: args}, nil
}

// expr := primary ('.' primary)*
func (p *parser) expr() (Expr, error) {
	first, err := p.primary()
	if err != nil {
		return nil, err
	}
	parts := []Expr{first}
	for p.acceptPunct(".") {
		next, err := p.primary()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return &ConcatExpr{Parts: parts}, nil
}

func (p *parser) primary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tkString:
		if len(t.parts) == 1 {
			return t.parts[0], nil
		}
		return &ConcatExpr{Parts: t.parts}, nil
	case tkVar:
		if t.text == "_GET" || t.text == "_POST" {
			if err := p.expectPunct("["); err != nil {
				return nil, err
			}
			key := p.next()
			if key.kind != tkString {
				return nil, p.errf(key.line, "input key must be a string literal")
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return &InputRef{Source: strings.TrimPrefix(t.text, "_"), Key: key.text}, nil
		}
		return &VarRef{Name: t.text}, nil
	case tkIdent:
		if p.cur().kind == tkPunct && p.cur().text == "(" {
			return p.callAfterName(t)
		}
		// Bare identifiers in expression position are numeric or boolean
		// literals and named constants (exit(1), intval($x, 10), true);
		// their textual form is a sound model for string contexts.
		return &StrLit{Value: t.text}, nil
	}
	return nil, p.errf(t.line, "unexpected token %q in expression", t.text)
}
