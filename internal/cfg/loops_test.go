package cfg

import (
	"testing"

	"dprle/internal/lang"
)

func TestBuildWhileBlocks(t *testing.T) {
	prog := lang.MustParse("t.php", `
$x = 'a';
while ($more) { $x = $x . 'b'; }
query($x);
`)
	g := Build(prog)
	// entry, header, body, exit = 4 blocks.
	if g.NumBlocks() != 4 {
		t.Fatalf("blocks = %d, want 4\n%s", g.NumBlocks(), g.Dot("t"))
	}
	// The header must have a back edge pointing at it.
	backEdges := 0
	for _, blk := range g.Blocks {
		for _, e := range blk.Succs {
			if e.To <= blk.ID && e.Cond == nil {
				backEdges++
			}
		}
	}
	if backEdges != 1 {
		t.Fatalf("back edges = %d, want 1", backEdges)
	}
}

func TestWhileUnrolling(t *testing.T) {
	prog := lang.MustParse("t.php", `
$x = $_GET['x'];
while ($more) { $x = $x . $_GET['x']; }
query($x);
`)
	paths := PathsToSinks(prog, 0)
	// 0, 1, and 2 iterations.
	if len(paths) != MaxLoopUnroll+1 {
		t.Fatalf("paths = %d, want %d", len(paths), MaxLoopUnroll+1)
	}
	// Count loop-entering decisions per path: 0, 1, 2.
	seen := map[int]bool{}
	for _, p := range paths {
		taken := 0
		for _, s := range p.Steps {
			if cs, ok := s.(CondStep); ok && cs.Taken {
				taken++
			}
		}
		seen[taken] = true
	}
	for i := 0; i <= MaxLoopUnroll; i++ {
		if !seen[i] {
			t.Errorf("no path with %d iterations", i)
		}
	}
}

func TestWhileBodyExits(t *testing.T) {
	prog := lang.MustParse("t.php", `
while ($more) { exit; }
query($x);
`)
	paths := PathsToSinks(prog, 0)
	// Only the 0-iteration path survives (entering the body exits).
	if len(paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(paths))
	}
}

func TestNestedWhile(t *testing.T) {
	prog := lang.MustParse("t.php", `
while ($a) { while ($b) { $x = $x . 'i'; } }
query($x);
`)
	paths := PathsToSinks(prog, 0)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	// 0 outer; 1 outer × (0,1,2 inner); 2 outer × (0,1,2)×(0,1,2) = 1+3+9.
	if len(paths) != 13 {
		t.Fatalf("paths = %d, want 13", len(paths))
	}
}

func TestWhileWithPregMatchCondition(t *testing.T) {
	prog := lang.MustParse("t.php", `
$x = $_GET['x'];
while (!preg_match('/^done/', $x)) { $x = $x . 'a'; }
query($x);
`)
	paths := PathsToSinks(prog, 0)
	if len(paths) != MaxLoopUnroll+1 {
		t.Fatalf("paths = %d", len(paths))
	}
	// Every path ends the loop with the condition false (match holds).
	for _, p := range paths {
		last := -1
		for i, s := range p.Steps {
			if _, ok := s.(CondStep); ok {
				last = i
			}
		}
		if last < 0 {
			t.Fatal("no condition steps")
		}
		if p.Steps[last].(CondStep).Taken {
			t.Fatal("final loop test must be the exiting one")
		}
	}
}
