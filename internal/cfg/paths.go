package cfg

import "dprle/internal/lang"

// Step is one element of an execution path: either a straight-line statement
// or a branch decision.
type Step interface {
	step()
}

// StmtStep records execution of a non-branching statement.
type StmtStep struct{ S lang.Stmt }

// CondStep records taking a branch: Cond evaluated to Taken.
type CondStep struct {
	Cond  lang.Cond
	Taken bool
}

func (StmtStep) step() {}
func (CondStep) step() {}

// SinkKind classifies security sinks.
type SinkKind int

const (
	// SinkSQL is a database query call (SQL injection).
	SinkSQL SinkKind = iota
	// SinkXSS is an echo/print of a string (cross-site scripting).
	SinkXSS
)

func (k SinkKind) String() string {
	if k == SinkSQL {
		return "sql"
	}
	return "xss"
}

// PathToSink is a loop-free execution prefix ending at a sink: the branch
// decisions and statements executed before the sink, plus the sink's
// argument expression.
type PathToSink struct {
	Steps []Step
	Kind  SinkKind
	Arg   lang.Expr
	Line  int
}

// PathsToSinks enumerates every execution prefix from program entry to a
// sink statement, up to maxPaths prefixes (0 means DefaultMaxPaths). The
// language is loop-free, so enumeration terminates; sequential branching can
// still be exponential, hence the cap.
func PathsToSinks(prog *lang.Program, maxPaths int) []PathToSink {
	if maxPaths <= 0 {
		maxPaths = DefaultMaxPaths
	}
	w := &pathWalker{limit: maxPaths}
	w.walk(prog.Stmts, nil)
	return w.found
}

// DefaultMaxPaths bounds path enumeration.
const DefaultMaxPaths = 256

// MaxLoopUnroll is how many iterations of a while loop the enumerator
// explores; the decision procedure consumes loop-free paths, so loops are
// bounded-unrolled (0, 1, …, MaxLoopUnroll iterations).
const MaxLoopUnroll = 2

type pathWalker struct {
	limit int
	found []PathToSink
}

func (w *pathWalker) full() bool { return len(w.found) >= w.limit }

// walk explores stmts with the given executed prefix. It returns the prefix
// at fall-through, or nil when execution exits.
func (w *pathWalker) walk(stmts []lang.Stmt, prefix []Step) [][]Step {
	prefixes := [][]Step{prefix}
	for _, s := range stmts {
		if w.full() {
			return nil
		}
		switch s := s.(type) {
		case *lang.Exit:
			return nil
		case *lang.While:
			var next [][]Step
			for _, p := range prefixes {
				next = append(next, w.unrollLoop(s, p, MaxLoopUnroll)...)
				if len(next) >= w.limit {
					next = next[:w.limit]
					break
				}
			}
			prefixes = next
			if len(prefixes) == 0 {
				return nil
			}
		case *lang.If:
			var next [][]Step
			for _, p := range prefixes {
				thenPrefix := appendStep(p, CondStep{Cond: s.Cond, Taken: true})
				for _, out := range w.walk(s.Then, thenPrefix) {
					next = append(next, out)
				}
				elsePrefix := appendStep(p, CondStep{Cond: s.Cond, Taken: false})
				if len(s.Else) > 0 {
					for _, out := range w.walk(s.Else, elsePrefix) {
						next = append(next, out)
					}
				} else {
					next = append(next, elsePrefix)
				}
				// Bound the in-flight prefix set as well as the result set:
				// long if-chains otherwise double it per branch point.
				if len(next) >= w.limit {
					next = next[:w.limit]
					break
				}
			}
			prefixes = next
			if len(prefixes) == 0 {
				return nil // every branch exits
			}
		default:
			for i, p := range prefixes {
				w.emitIfSink(s, p)
				prefixes[i] = appendStep(p, StmtStep{S: s})
			}
		}
	}
	return prefixes
}

// unrollLoop explores 0..budget iterations of a while loop from the given
// prefix, returning the surviving fall-through prefixes (each ends with the
// condition evaluating false).
func (w *pathWalker) unrollLoop(s *lang.While, prefix []Step, budget int) [][]Step {
	out := [][]Step{appendStep(prefix, CondStep{Cond: s.Cond, Taken: false})}
	if budget == 0 || w.full() {
		return out
	}
	enter := appendStep(prefix, CondStep{Cond: s.Cond, Taken: true})
	for _, afterBody := range w.walk(s.Body, enter) {
		out = append(out, w.unrollLoop(s, afterBody, budget-1)...)
		if len(out) >= w.limit {
			out = out[:w.limit]
			break
		}
	}
	return out
}

// emitIfSink records a PathToSink when s is a query or echo statement.
func (w *pathWalker) emitIfSink(s lang.Stmt, prefix []Step) {
	if w.full() {
		return
	}
	emit := func(kind SinkKind, arg lang.Expr, line int) {
		steps := make([]Step, len(prefix))
		copy(steps, prefix)
		w.found = append(w.found, PathToSink{Steps: steps, Kind: kind, Arg: arg, Line: line})
	}
	switch s := s.(type) {
	case *lang.CallStmt:
		if lang.IsSQLSink(s.Call.Name) && len(s.Call.Args) > 0 {
			emit(SinkSQL, s.Call.Args[0], s.Line)
		}
	case *lang.Echo:
		emit(SinkXSS, s.Arg, s.Line)
	case *lang.Assign:
		// query(...) used in expression position: $r = query(...).
		if call, ok := s.Rhs.(*lang.Call); ok && lang.IsSQLSink(call.Name) && len(call.Args) > 0 {
			emit(SinkSQL, call.Args[0], s.Line)
		}
	}
}

// appendStep copies-on-append so shared prefixes cannot alias.
func appendStep(prefix []Step, s Step) []Step {
	out := make([]Step, len(prefix)+1)
	copy(out, prefix)
	out[len(prefix)] = s
	return out
}
