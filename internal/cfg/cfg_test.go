package cfg

import (
	"strings"
	"testing"

	"dprle/internal/lang"
)

const figure1 = `<?php
$newsid = $_POST['posted_newsid'];
if (!preg_match('/[\d]+$/', $newsid)) {
    unp_msgBox('Invalid article newsID.');
    exit;
}
$newsid = "nid_" . $newsid;
$idnews = query("SELECT * FROM news" . " WHERE newsid=$newsid");
`

func TestBuildFigure1(t *testing.T) {
	prog := lang.MustParse("fig1.php", figure1)
	g := Build(prog)
	// entry, then-block (exits), join: 3 blocks.
	if g.NumBlocks() != 3 {
		t.Fatalf("blocks = %d, want 3\n%s", g.NumBlocks(), g.Dot("fig1"))
	}
	entry := g.Blocks[g.Entry]
	if len(entry.Succs) != 2 {
		t.Fatalf("entry successors = %d", len(entry.Succs))
	}
	// Both edges carry the preg_match condition with opposite polarity.
	if entry.Succs[0].Cond == nil || entry.Succs[1].Cond == nil {
		t.Fatal("branch edges must carry the condition")
	}
	if entry.Succs[0].Taken == entry.Succs[1].Taken {
		t.Fatal("branch polarities must differ")
	}
}

func TestBuildIfElse(t *testing.T) {
	prog := lang.MustParse("t.php", `
$x = 'a';
if ($q) { $x = 'b'; } else { $x = 'c'; }
$y = $x;
`)
	g := Build(prog)
	// entry, then, else, join = 4.
	if g.NumBlocks() != 4 {
		t.Fatalf("blocks = %d, want 4", g.NumBlocks())
	}
}

func TestBuildDeadCodeAfterExit(t *testing.T) {
	prog := lang.MustParse("t.php", `
exit;
$x = 'dead';
`)
	g := Build(prog)
	if g.NumBlocks() != 2 {
		t.Fatalf("blocks = %d, want 2 (entry + dead)", g.NumBlocks())
	}
}

func TestBuildNestedIfs(t *testing.T) {
	prog := lang.MustParse("t.php", `
if ($a) { if ($b) { $x = '1'; } }
$y = '2';
`)
	g := Build(prog)
	// entry, outer-then, inner-then, inner-join, outer-join = 5.
	if g.NumBlocks() != 5 {
		t.Fatalf("blocks = %d, want 5", g.NumBlocks())
	}
	if !strings.Contains(g.Dot("t"), "digraph") {
		t.Fatal("Dot output malformed")
	}
}

func TestPathsToSinksFigure1(t *testing.T) {
	prog := lang.MustParse("fig1.php", figure1)
	paths := PathsToSinks(prog, 0)
	if len(paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(paths))
	}
	p := paths[0]
	if p.Kind != SinkSQL {
		t.Fatalf("kind = %v", p.Kind)
	}
	// The path passes the guard (condition false: preg_match matched) and
	// executes the two assignments before the sink.
	var conds, stmts int
	for _, s := range p.Steps {
		switch st := s.(type) {
		case CondStep:
			conds++
			pm := st.Cond.(*lang.PregMatch)
			if !pm.Negated || st.Taken {
				t.Fatalf("guard must be the negated match NOT taken; got taken=%v", st.Taken)
			}
		case StmtStep:
			stmts++
		}
	}
	if conds != 1 || stmts != 2 {
		t.Fatalf("conds = %d stmts = %d, want 1/2", conds, stmts)
	}
}

func TestPathsBranchBothWays(t *testing.T) {
	prog := lang.MustParse("t.php", `
$x = $_GET['x'];
if (preg_match('/a/', $x)) { $y = 'yes'; } else { $y = 'no'; }
query($y . $x);
`)
	paths := PathsToSinks(prog, 0)
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
}

func TestPathsStopAtExitBranches(t *testing.T) {
	prog := lang.MustParse("t.php", `
$x = $_GET['x'];
if (preg_match('/a/', $x)) { exit; }
query($x);
`)
	paths := PathsToSinks(prog, 0)
	if len(paths) != 1 {
		t.Fatalf("paths = %d, want 1 (then-branch exits)", len(paths))
	}
	cs := paths[0].Steps[1].(CondStep)
	if cs.Taken {
		t.Fatal("surviving path must not take the exiting branch")
	}
}

func TestPathsAllBranchesExit(t *testing.T) {
	prog := lang.MustParse("t.php", `
if ($a) { exit; } else { exit; }
query($x);
`)
	paths := PathsToSinks(prog, 0)
	if len(paths) != 0 {
		t.Fatalf("paths = %d, want 0 (sink unreachable)", len(paths))
	}
}

func TestPathsMultipleSinks(t *testing.T) {
	prog := lang.MustParse("t.php", `
$x = $_GET['x'];
query($x);
echo $x;
mysql_query($x);
$r = query($x);
`)
	paths := PathsToSinks(prog, 0)
	if len(paths) != 4 {
		t.Fatalf("paths = %d, want 4", len(paths))
	}
	kinds := map[SinkKind]int{}
	for _, p := range paths {
		kinds[p.Kind]++
	}
	if kinds[SinkSQL] != 3 || kinds[SinkXSS] != 1 {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestPathsExponentialCapped(t *testing.T) {
	var src strings.Builder
	src.WriteString("$x = $_GET['x'];\n")
	for i := 0; i < 12; i++ {
		src.WriteString("if ($q) { $x = $x . 'a'; }\n")
	}
	src.WriteString("query($x);\n")
	prog := lang.MustParse("t.php", src.String())
	paths := PathsToSinks(prog, 100)
	if len(paths) > 100 {
		t.Fatalf("paths = %d exceeds cap", len(paths))
	}
	if len(paths) == 0 {
		t.Fatal("cap should not eliminate all paths")
	}
}

func TestPathPrefixIsolation(t *testing.T) {
	// Shared prefixes must not alias: mutating one path must not leak.
	prog := lang.MustParse("t.php", `
$x = $_GET['x'];
if ($q) { $y = 'a'; } else { $y = 'b'; }
query($x . $y);
`)
	paths := PathsToSinks(prog, 0)
	if len(paths) != 2 {
		t.Fatalf("paths = %d", len(paths))
	}
	paths[0].Steps[0] = CondStep{}
	if _, ok := paths[1].Steps[0].(CondStep); ok {
		t.Fatal("paths share step storage")
	}
}

func TestSinkKindString(t *testing.T) {
	if SinkSQL.String() != "sql" || SinkXSS.String() != "xss" {
		t.Fatal("SinkKind strings wrong")
	}
}
