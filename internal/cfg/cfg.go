// Package cfg builds control-flow graphs for PHP-subset programs and
// enumerates loop-free paths to security sinks. The basic-block count is the
// |FG| metric reported in the paper's Figure 12; the enumerated paths feed
// the symbolic executor that generates regular-language constraint systems.
package cfg

import (
	"fmt"
	"strings"

	"dprle/internal/lang"
)

// Edge is a control-flow edge, optionally guarded by a branch condition.
type Edge struct {
	To    int
	Cond  lang.Cond // nil for unconditional edges
	Taken bool      // branch polarity when Cond is non-nil
}

// Block is a basic block: a maximal straight-line statement sequence.
type Block struct {
	ID       int
	Stmts    []lang.Stmt
	Succs    []Edge
	Terminal bool // ends in exit (or program end)
}

// CFG is the control-flow graph of one program.
type CFG struct {
	Blocks []*Block
	Entry  int
}

// NumBlocks returns |FG|, the basic-block count of Figure 12.
func (c *CFG) NumBlocks() int { return len(c.Blocks) }

type builder struct {
	blocks []*Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{ID: len(b.blocks)}
	b.blocks = append(b.blocks, blk)
	return blk
}

// Build constructs the CFG of a program.
func Build(prog *lang.Program) *CFG {
	b := &builder{}
	entry := b.newBlock()
	exit := b.build(prog.Stmts, entry)
	if exit != nil {
		exit.Terminal = true
	}
	return &CFG{Blocks: b.blocks, Entry: entry.ID}
}

// build threads stmts through cur, returning the block control falls out of
// (nil if every path exits).
func (b *builder) build(stmts []lang.Stmt, cur *Block) *Block {
	for i, s := range stmts {
		switch s := s.(type) {
		case *lang.Exit:
			cur.Stmts = append(cur.Stmts, s)
			cur.Terminal = true
			// Anything after exit is unreachable; still build it so the
			// block count reflects the source (dead blocks have no preds).
			if i+1 < len(stmts) {
				dead := b.newBlock()
				if after := b.build(stmts[i+1:], dead); after != nil {
					after.Terminal = true
				}
			}
			return nil
		case *lang.While:
			header := b.newBlock()
			cur.Succs = append(cur.Succs, Edge{To: header.ID})
			body := b.newBlock()
			header.Succs = append(header.Succs, Edge{To: body.ID, Cond: s.Cond, Taken: true})
			exit := b.newBlock()
			header.Succs = append(header.Succs, Edge{To: exit.ID, Cond: s.Cond, Taken: false})
			if bodyExit := b.build(s.Body, body); bodyExit != nil {
				bodyExit.Succs = append(bodyExit.Succs, Edge{To: header.ID}) // back edge
			}
			cur = exit
		case *lang.If:
			thenEntry := b.newBlock()
			cur.Succs = append(cur.Succs, Edge{To: thenEntry.ID, Cond: s.Cond, Taken: true})
			thenExit := b.build(s.Then, thenEntry)

			var elseExit *Block
			if len(s.Else) > 0 {
				elseEntry := b.newBlock()
				cur.Succs = append(cur.Succs, Edge{To: elseEntry.ID, Cond: s.Cond, Taken: false})
				elseExit = b.build(s.Else, elseEntry)
			}

			join := b.newBlock()
			if len(s.Else) == 0 {
				// Fall-through edge carries the negated condition.
				cur.Succs = append(cur.Succs, Edge{To: join.ID, Cond: s.Cond, Taken: false})
			}
			if thenExit != nil {
				thenExit.Succs = append(thenExit.Succs, Edge{To: join.ID})
			}
			if elseExit != nil {
				elseExit.Succs = append(elseExit.Succs, Edge{To: join.ID})
			}
			cur = join
		default:
			cur.Stmts = append(cur.Stmts, s)
		}
	}
	return cur
}

// Dot renders the CFG in Graphviz format for inspection.
func (c *CFG) Dot(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  node [shape=box];\n", name)
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "  b%d [label=\"B%d (%d stmts)\"];\n", blk.ID, blk.ID, len(blk.Stmts))
		for _, e := range blk.Succs {
			label := ""
			if e.Cond != nil {
				label = fmt.Sprintf("%v", e.Taken)
			}
			fmt.Fprintf(&sb, "  b%d -> b%d [label=%q];\n", blk.ID, e.To, label)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
