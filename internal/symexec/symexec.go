// Package symexec performs path-sensitive symbolic execution of PHP-subset
// programs over string values and emits regular-language constraint systems
// for the DPRLE solver — the reproduction of the paper's "simple prototype
// program analysis that uses symbolic execution to set up a system of string
// variable constraints based on paths that lead to the defect" (§4).
//
// Along a path, every local variable holds a symbolic string: a
// concatenation of string literals and RMA variables. Input reads
// ($_GET/$_POST) introduce shared variables; preg_match branch decisions
// contribute subset (or complement-subset) constraints on the symbolic value
// they inspect; the sink contributes the vulnerability constraint: the
// query's symbolic value must lie inside the attack language.
package symexec

import (
	"fmt"

	"dprle/internal/cfg"
	"dprle/internal/core"
	"dprle/internal/lang"
	"dprle/internal/nfa"
	"dprle/internal/policy"
	"dprle/internal/regex"
)

// atom is one piece of a symbolic string.
type atom struct {
	lit   string // literal text (when isVar is false)
	v     string // RMA variable name (when isVar is true)
	isVar bool
}

// symStr is a symbolic string value: the concatenation of its atoms.
type symStr []atom

// PathSystem is the constraint system generated for one path to a sink.
type PathSystem struct {
	Sys *core.System
	// Inputs lists the RMA variables that correspond to HTTP inputs, in
	// first-read order; solving for these yields attack inputs.
	Inputs []string
	// InputKeys maps each input variable back to its (source, key) pair.
	InputKeys map[string][2]string
	// NumConstraints is the |C| metric of Figure 12.
	NumConstraints int
	// Sink records the analyzed sink.
	Sink cfg.PathToSink
}

// executor carries the symbolic state while walking one path.
type executor struct {
	env      map[string]symStr
	sys      *core.System
	ps       *PathSystem
	litConst map[string]*core.Const
	fresh    int
}

// ForPath symbolically executes one path and returns its constraint system
// under the given attack policy.
func ForPath(p cfg.PathToSink, pol policy.Policy) (*PathSystem, error) {
	ex := &executor{
		env:      map[string]symStr{},
		sys:      core.NewSystem(),
		litConst: map[string]*core.Const{},
	}
	ex.ps = &PathSystem{Sys: ex.sys, InputKeys: map[string][2]string{}, Sink: p}
	for _, step := range p.Steps {
		switch st := step.(type) {
		case cfg.StmtStep:
			if err := ex.stmt(st.S); err != nil {
				return nil, err
			}
		case cfg.CondStep:
			if err := ex.cond(st); err != nil {
				return nil, err
			}
		}
	}
	// The sink constraint: the argument's value must be in the attack
	// language.
	sink, err := ex.eval(p.Arg)
	if err != nil {
		return nil, err
	}
	if err := ex.constrain(sink, "policy:"+pol.Name, pol.Lang); err != nil {
		return nil, err
	}
	return ex.ps, nil
}

func (ex *executor) stmt(s lang.Stmt) error {
	switch s := s.(type) {
	case *lang.Assign:
		val, err := ex.eval(s.Rhs)
		if err != nil {
			return err
		}
		ex.env[s.Name] = val
		return nil
	case *lang.CallStmt, *lang.Echo:
		// Effect-only calls and non-sink output do not change string state.
		return nil
	}
	return fmt.Errorf("symexec: unexpected statement %T on path", s)
}

func (ex *executor) cond(st cfg.CondStep) error {
	pm, ok := st.Cond.(*lang.PregMatch)
	if !ok {
		return nil // nondeterministic condition: no constraint
	}
	val, err := ex.eval(pm.Arg)
	if err != nil {
		return err
	}
	r, err := regex.Parse(pm.Pattern)
	if err != nil {
		return fmt.Errorf("symexec: preg_match pattern: %w", err)
	}
	flags := ""
	if pm.CaseInsensitive {
		r = r.CaseInsensitive()
		flags = "i"
	}
	matchLang, err := r.MatchLanguage()
	if err != nil {
		return fmt.Errorf("symexec: preg_match pattern: %w", err)
	}
	// The branch tells us whether the condition was true; the condition is
	// the (possibly negated) match result.
	matched := st.Taken != pm.Negated
	if matched {
		return ex.constrain(val, fmt.Sprintf("match:/%s/%s", pm.Pattern, flags), matchLang)
	}
	return ex.constrain(val, fmt.Sprintf("nomatch:/%s/%s", pm.Pattern, flags), nfa.Complement(matchLang))
}

// constrain adds (concat of val's atoms) ⊆ lang to the system. Constant-only
// symbolic values still generate the constraint (it may be unsatisfiable,
// proving the path infeasible).
func (ex *executor) constrain(val symStr, rhsName string, langM *nfa.NFA) error {
	rhs, err := ex.sys.Const(rhsName, langM)
	if err != nil {
		// Same name, different language (e.g. two policies sharing a name):
		// fall back to an anonymous constant.
		rhs = ex.sys.AnonConst(langM)
	}
	expr, err := ex.toExpr(val)
	if err != nil {
		return err
	}
	if err := ex.sys.Add(expr, rhs); err != nil {
		return err
	}
	ex.ps.NumConstraints++
	return nil
}

// toExpr converts a symbolic string to a constraint left-hand side.
func (ex *executor) toExpr(val symStr) (core.Expr, error) {
	if len(val) == 0 {
		val = symStr{{lit: ""}}
	}
	exprs := make([]core.Expr, 0, len(val))
	for _, a := range val {
		if a.isVar {
			exprs = append(exprs, core.Var{Name: a.v})
		} else {
			exprs = append(exprs, ex.litFor(a.lit))
		}
	}
	return core.ConcatAll(exprs...), nil
}

// litFor interns a literal constant, merging repeated occurrences of the
// same text.
func (ex *executor) litFor(text string) *core.Const {
	if c, ok := ex.litConst[text]; ok {
		return c
	}
	c := ex.sys.AnonConst(nfa.Literal(text))
	ex.litConst[text] = c
	return c
}

// inputVar returns the shared RMA variable for an HTTP input, creating it on
// first read.
func (ex *executor) inputVar(source, key string) string {
	name := source + ":" + key
	if _, ok := ex.ps.InputKeys[name]; !ok {
		ex.ps.Inputs = append(ex.ps.Inputs, name)
		ex.ps.InputKeys[name] = [2]string{source, key}
	}
	return name
}

// freshVar introduces an unconstrained variable for values the analysis
// cannot model precisely.
func (ex *executor) freshVar(hint string) string {
	ex.fresh++
	return fmt.Sprintf("%s#%d", hint, ex.fresh)
}

func (ex *executor) eval(e lang.Expr) (symStr, error) {
	switch e := e.(type) {
	case *lang.StrLit:
		return symStr{{lit: e.Value}}, nil
	case *lang.InputRef:
		return symStr{{v: ex.inputVar(e.Source, e.Key), isVar: true}}, nil
	case *lang.VarRef:
		if v, ok := ex.env[e.Name]; ok {
			return v, nil
		}
		// Uninitialized local: PHP yields the empty string (with a notice).
		return symStr{{lit: ""}}, nil
	case *lang.ConcatExpr:
		var out symStr
		for _, part := range e.Parts {
			v, err := ex.eval(part)
			if err != nil {
				return nil, err
			}
			out = append(out, v...)
		}
		return out, nil
	case *lang.Call:
		return ex.call(e)
	}
	return nil, fmt.Errorf("symexec: unexpected expression %T", e)
}

// call applies a transfer function for known library calls; unknown calls
// return a fresh unconstrained variable (a sound overapproximation for
// attacker-reachability: the result could be anything).
func (ex *executor) call(c *lang.Call) (symStr, error) {
	mkConstrained := func(hint, rhsName string, langM *nfa.NFA) (symStr, error) {
		v := ex.freshVar(hint)
		var rhs *core.Const
		if rhsName == "" {
			rhs = ex.sys.AnonConst(langM)
		} else if named, err := ex.sys.Const(rhsName, langM); err == nil {
			rhs = named
		} else {
			rhs = ex.sys.AnonConst(langM)
		}
		if err := ex.sys.Add(core.Var{Name: v}, rhs); err != nil {
			return nil, err
		}
		ex.ps.NumConstraints++
		return symStr{{v: v, isVar: true}}, nil
	}
	switch c.Name {
	case "intval":
		// The string form of an integer.
		return mkConstrained("intval", "lang:int", regex.MustCompile(`-?[0-9]+`))
	case "addslashes":
		// Quotes and backslashes are escaped: no bare ' survives.
		return mkConstrained("addslashes", "lang:slashed",
			regex.MustCompile(`([^'\\]|\\[\x00-\xff])*`))
	case "md5":
		return mkConstrained("md5", "lang:md5", regex.MustCompile(`[0-9a-f]{32}`))
	case "sha1":
		return mkConstrained("sha1", "lang:sha1", regex.MustCompile(`[0-9a-f]{40}`))
	case "str_replace":
		// str_replace(search, replace, subject) with a single-byte constant
		// search whose byte does not occur in the constant replacement has
		// the precise image language ([^search] | replace)* — the shape of
		// quote-doubling sanitizers. Anything more general degrades to an
		// unconstrained fresh variable.
		if lang, ok := strReplaceImage(c); ok {
			return mkConstrained("str_replace", "", lang)
		}
		v := ex.freshVar("str_replace")
		return symStr{{v: v, isVar: true}}, nil
	case "trim", "strtolower", "strtoupper", "stripslashes", "urldecode":
		// Length/character transformations we deliberately overapproximate:
		// the result is unconstrained (sound for attacker reachability).
		v := ex.freshVar(c.Name)
		return symStr{{v: v, isVar: true}}, nil
	default:
		v := ex.freshVar("call_" + c.Name)
		return symStr{{v: v, isVar: true}}, nil
	}
}

// strReplaceImage returns the image language of str_replace(search,
// replace, _) for the precisely modelable case: a one-byte literal search
// and a literal replacement. Replacement is then the string homomorphism
// h(search) = replace, h(c) = c, and the image of Σ* under a homomorphism
// is exactly (h(Σ))* = ([^search] | replace)* — covering quote-doubling
// sanitizers like str_replace("'", "”", $x) exactly.
func strReplaceImage(c *lang.Call) (*nfa.NFA, bool) {
	if len(c.Args) != 3 {
		return nil, false
	}
	search, ok1 := c.Args[0].(*lang.StrLit)
	replace, ok2 := c.Args[1].(*lang.StrLit)
	if !ok1 || !ok2 || len(search.Value) != 1 {
		return nil, false
	}
	other := nfa.AnyByte()
	other.Remove(search.Value[0])
	return nfa.Star(nfa.Union(nfa.Class(other), nfa.Literal(replace.Value))), true
}
