package symexec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"dprle/internal/budget"
	"dprle/internal/cfg"
	"dprle/internal/core"
	"dprle/internal/lang"
	"dprle/internal/policy"
	"dprle/internal/server/retry"
)

// Finding is a confirmed vulnerability: a feasible path to a sink together
// with concrete attack inputs (the paper's automatically generated
// testcases, §2/§4).
type Finding struct {
	File string
	Line int
	Kind cfg.SinkKind
	// Inputs maps "SOURCE:key" to a concrete exploit value.
	Inputs map[string]string
	// InputLangs carries the full solution languages for report rendering.
	System *PathSystem
	// Stats describes the solved system.
	Constraints int
}

// String renders the finding as an actionable report line.
func (f *Finding) String() string {
	var parts []string
	for _, name := range sortedKeys(f.Inputs) {
		parts = append(parts, fmt.Sprintf("%s=%q", name, f.Inputs[name]))
	}
	return fmt.Sprintf("%s:%d: %s injection via %s", f.File, f.Line, f.Kind, strings.Join(parts, ", "))
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Config controls program analysis.
type Config struct {
	SQL      policy.Policy
	XSS      policy.Policy
	MaxPaths int
	Solver   core.Options
	// FirstPerSink stops after the first feasible path per sink line,
	// mirroring the paper's "we attempt to find inputs for the first
	// vulnerability in each file".
	FirstPerSink bool
	// PathTimeout bounds the wall-clock spent solving any single path's
	// constraint system. A path whose solve exhausts the budget is counted
	// in AnalysisStats.ExhaustedPaths and skipped (unless the solver found
	// a verified witness before the trip, which is still used); the
	// analysis then continues with the remaining paths instead of hanging
	// on one pathological system. 0 means no per-path deadline.
	PathTimeout time.Duration
	// MaxStates/MaxSteps cap the solver resources per path (see
	// core.Options.Limits). 0 means unlimited.
	MaxStates int64
	MaxSteps  int64
	// ExhaustedRetries re-runs a path whose solve tripped MaxStates or
	// MaxSteps, scaling both caps 4x per attempt (1x, 4x, 16x, ...), up to
	// this many extra attempts. Deadline trips are not retried — a bigger
	// state budget cannot buy back wall-clock time. Usage across attempts
	// is summed. 0 disables retries.
	ExhaustedRetries int
}

// DefaultConfig returns the configuration the experiments use: the paper's
// quote policy for SQL and script-tag policy for XSS.
func DefaultConfig() Config {
	return Config{SQL: policy.SQLDefault(), XSS: policy.XSSDefault(), FirstPerSink: true}
}

// AnalysisStats aggregates metrics across all analyzed paths of a program,
// matching Figure 12's reporting: |FG| basic blocks and |C| constraints,
// plus the resource counters of the budgeted solves.
type AnalysisStats struct {
	Blocks      int // |FG|
	Paths       int
	Constraints int // |C|: constraints generated along the solved paths
	// SolveStates/SolveSteps total the solver's resource counters across
	// all per-path solves.
	SolveStates int64
	SolveSteps  int64
	// ExhaustedPaths counts paths whose solve tripped a resource budget
	// (the analysis degraded by skipping or truncating them).
	ExhaustedPaths int
}

// AnalyzeProgram symbolically executes every path to a sink, solves the
// resulting constraint systems, and returns the confirmed findings with
// generated attack inputs.
func AnalyzeProgram(prog *lang.Program, cfgc Config) ([]Finding, AnalysisStats, error) {
	var stats AnalysisStats
	stats.Blocks = cfg.Build(prog).NumBlocks()
	paths := cfg.PathsToSinks(prog, cfgc.MaxPaths)
	stats.Paths = len(paths)

	var findings []Finding
	done := map[int]bool{} // sink line → finding emitted
	for _, p := range paths {
		if cfgc.FirstPerSink && done[p.Line] {
			continue
		}
		pol := cfgc.SQL
		if p.Kind == cfg.SinkXSS {
			pol = cfgc.XSS
		}
		ps, err := ForPath(p, pol)
		if err != nil {
			return nil, stats, err
		}
		stats.Constraints += ps.NumConstraints
		if len(ps.Inputs) == 0 {
			continue // no attacker-controlled data reaches the sink
		}
		assignment, ok, usage, err := decidePath(ps, cfgc)
		stats.SolveStates += usage.States
		stats.SolveSteps += usage.Steps
		if err != nil {
			var ex *budget.Exhausted
			if errors.As(err, &ex) {
				// This path's solve ran out of budget. A witness found
				// before the trip is verified and still usable; otherwise
				// the path is skipped and the analysis moves on.
				stats.ExhaustedPaths++
				if !ok {
					continue
				}
			} else {
				return nil, stats, err
			}
		}
		if !ok {
			continue // path infeasible or not exploitable
		}
		inputs := map[string]string{}
		for _, v := range ps.Inputs {
			w, wok := assignment.Lookup(v).ShortestWitness()
			if !wok {
				return nil, stats, fmt.Errorf("symexec: decided variable %s is empty", v)
			}
			inputs[v] = w
		}
		findings = append(findings, Finding{
			File: prog.File, Line: p.Line, Kind: p.Kind,
			Inputs: inputs, System: ps, Constraints: ps.NumConstraints,
		})
		done[p.Line] = true
	}
	return findings, stats, nil
}

// decidePath runs the budgeted decision procedure for one path's constraint
// system, giving each path its own deadline so one pathological system
// cannot consume the whole analysis. When ExhaustedRetries is set, a solve
// that tripped a state or step cap is re-run through retry.Policy with the
// caps escalated 4x per attempt; a deadline or cancellation stops
// immediately, and each attempt gets a fresh PathTimeout.
func decidePath(ps *PathSystem, cfgc Config) (core.Assignment, bool, budget.Usage, error) {
	var (
		assignment core.Assignment
		ok         bool
		total      budget.Usage
		solveErr   error
	)
	policy := retry.Policy{MaxAttempts: 1 + cfgc.ExhaustedRetries}
	_ = policy.Do(context.Background(), func(ctx context.Context, attempt int) error {
		actx := ctx
		if cfgc.PathTimeout > 0 {
			var cancel context.CancelFunc
			actx, cancel = context.WithTimeout(ctx, cfgc.PathTimeout)
			defer cancel()
		}
		scale := int64(1) << (2 * uint(attempt-1)) // 1x, 4x, 16x, ...
		opts := cfgc.Solver
		opts.Limits = budget.Limits{
			MaxStates: scaleLimit(cfgc.MaxStates, scale),
			MaxSteps:  scaleLimit(cfgc.MaxSteps, scale),
		}
		var usage budget.Usage
		assignment, ok, usage, solveErr = core.DecideCtx(actx, ps.Sys, ps.Inputs, opts)
		total.States += usage.States
		total.Steps += usage.Steps
		total.Exhausted = usage.Exhausted
		if solveErr == nil {
			return nil
		}
		var ex *budget.Exhausted
		if errors.As(solveErr, &ex) && (ex.Kind == budget.States || ex.Kind == budget.Steps) {
			return solveErr // a bigger cap may let this path finish
		}
		return retry.Permanent(solveErr)
	})
	// Callers errors.As the raw solver error, so return it unwrapped.
	return assignment, ok, total, solveErr
}

// scaleLimit multiplies a cap by the escalation factor, leaving 0
// (unlimited) alone.
func scaleLimit(limit, scale int64) int64 {
	if limit <= 0 {
		return limit
	}
	return limit * scale
}

// AnalyzeSource parses and analyzes a PHP-subset source file.
func AnalyzeSource(file, src string, cfgc Config) ([]Finding, AnalysisStats, error) {
	prog, err := lang.Parse(file, src)
	if err != nil {
		return nil, AnalysisStats{}, err
	}
	return AnalyzeProgram(prog, cfgc)
}
