package symexec

import (
	"fmt"
	"sort"
	"strings"

	"dprle/internal/cfg"
	"dprle/internal/core"
	"dprle/internal/lang"
	"dprle/internal/policy"
)

// Finding is a confirmed vulnerability: a feasible path to a sink together
// with concrete attack inputs (the paper's automatically generated
// testcases, §2/§4).
type Finding struct {
	File string
	Line int
	Kind cfg.SinkKind
	// Inputs maps "SOURCE:key" to a concrete exploit value.
	Inputs map[string]string
	// InputLangs carries the full solution languages for report rendering.
	System *PathSystem
	// Stats describes the solved system.
	Constraints int
}

// String renders the finding as an actionable report line.
func (f *Finding) String() string {
	var parts []string
	for _, name := range sortedKeys(f.Inputs) {
		parts = append(parts, fmt.Sprintf("%s=%q", name, f.Inputs[name]))
	}
	return fmt.Sprintf("%s:%d: %s injection via %s", f.File, f.Line, f.Kind, strings.Join(parts, ", "))
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Config controls program analysis.
type Config struct {
	SQL      policy.Policy
	XSS      policy.Policy
	MaxPaths int
	Solver   core.Options
	// FirstPerSink stops after the first feasible path per sink line,
	// mirroring the paper's "we attempt to find inputs for the first
	// vulnerability in each file".
	FirstPerSink bool
}

// DefaultConfig returns the configuration the experiments use: the paper's
// quote policy for SQL and script-tag policy for XSS.
func DefaultConfig() Config {
	return Config{SQL: policy.SQLDefault(), XSS: policy.XSSDefault(), FirstPerSink: true}
}

// AnalysisStats aggregates metrics across all analyzed paths of a program,
// matching Figure 12's reporting: |FG| basic blocks and |C| constraints.
type AnalysisStats struct {
	Blocks      int // |FG|
	Paths       int
	Constraints int // |C|: constraints generated along the solved paths
}

// AnalyzeProgram symbolically executes every path to a sink, solves the
// resulting constraint systems, and returns the confirmed findings with
// generated attack inputs.
func AnalyzeProgram(prog *lang.Program, cfgc Config) ([]Finding, AnalysisStats, error) {
	var stats AnalysisStats
	stats.Blocks = cfg.Build(prog).NumBlocks()
	paths := cfg.PathsToSinks(prog, cfgc.MaxPaths)
	stats.Paths = len(paths)

	var findings []Finding
	done := map[int]bool{} // sink line → finding emitted
	for _, p := range paths {
		if cfgc.FirstPerSink && done[p.Line] {
			continue
		}
		pol := cfgc.SQL
		if p.Kind == cfg.SinkXSS {
			pol = cfgc.XSS
		}
		ps, err := ForPath(p, pol)
		if err != nil {
			return nil, stats, err
		}
		stats.Constraints += ps.NumConstraints
		if len(ps.Inputs) == 0 {
			continue // no attacker-controlled data reaches the sink
		}
		assignment, ok, err := core.Decide(ps.Sys, ps.Inputs, cfgc.Solver)
		if err != nil {
			return nil, stats, err
		}
		if !ok {
			continue // path infeasible or not exploitable
		}
		inputs := map[string]string{}
		for _, v := range ps.Inputs {
			w, wok := assignment.Lookup(v).ShortestWitness()
			if !wok {
				return nil, stats, fmt.Errorf("symexec: decided variable %s is empty", v)
			}
			inputs[v] = w
		}
		findings = append(findings, Finding{
			File: prog.File, Line: p.Line, Kind: p.Kind,
			Inputs: inputs, System: ps, Constraints: ps.NumConstraints,
		})
		done[p.Line] = true
	}
	return findings, stats, nil
}

// AnalyzeSource parses and analyzes a PHP-subset source file.
func AnalyzeSource(file, src string, cfgc Config) ([]Finding, AnalysisStats, error) {
	prog, err := lang.Parse(file, src)
	if err != nil {
		return nil, AnalysisStats{}, err
	}
	return AnalyzeProgram(prog, cfgc)
}
