package symexec

import (
	"strings"
	"testing"

	"dprle/internal/cfg"
	"dprle/internal/core"
	"dprle/internal/lang"
	"dprle/internal/policy"
)

const figure1 = `<?php
$newsid = $_POST['posted_newsid'];
if (!preg_match('/[\d]+$/', $newsid)) {
    unp_msgBox('Invalid article newsID.');
    exit;
}
$newsid = "nid_" . $newsid;
$idnews = query("SELECT * FROM news" . " WHERE newsid=$newsid");
`

func analyzeFig1(t *testing.T) []Finding {
	t.Helper()
	findings, stats, err := AnalyzeSource("fig1.php", figure1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Blocks != 3 {
		t.Fatalf("|FG| = %d, want 3", stats.Blocks)
	}
	return findings
}

func TestFigure1EndToEnd(t *testing.T) {
	findings := analyzeFig1(t)
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1", len(findings))
	}
	f := findings[0]
	if f.Kind != cfg.SinkSQL {
		t.Fatalf("kind = %v", f.Kind)
	}
	exploit := f.Inputs["POST:posted_newsid"]
	if exploit == "" {
		t.Fatalf("no exploit input: %v", f.Inputs)
	}
	// The generated input must pass the filter and break the query: it ends
	// with a digit and contains a quote.
	if !strings.ContainsRune(exploit, '\'') {
		t.Fatalf("exploit %q lacks a quote", exploit)
	}
	last := exploit[len(exploit)-1]
	if last < '0' || last > '9' {
		t.Fatalf("exploit %q does not end with a digit", exploit)
	}
	if !strings.Contains(f.String(), "sql injection") {
		t.Fatalf("report = %q", f.String())
	}
}

func TestFigure1FixedIsSafe(t *testing.T) {
	fixed := strings.Replace(figure1, `/[\d]+$/`, `/^[\d]+$/`, 1)
	findings, _, err := AnalyzeSource("fixed.php", fixed, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("fixed filter should yield no findings, got %v", findings)
	}
}

func TestConstraintCounting(t *testing.T) {
	prog := lang.MustParse("t.php", figure1)
	paths := cfg.PathsToSinks(prog, 0)
	ps, err := ForPath(paths[0], policy.SQLDefault())
	if err != nil {
		t.Fatal(err)
	}
	// One filter constraint + one sink constraint.
	if ps.NumConstraints != 2 {
		t.Fatalf("|C| = %d, want 2", ps.NumConstraints)
	}
	if len(ps.Inputs) != 1 || ps.Inputs[0] != "POST:posted_newsid" {
		t.Fatalf("inputs = %v", ps.Inputs)
	}
}

func TestNegatedGuardBranch(t *testing.T) {
	// Taking the then-branch of a negated match means NO match: the
	// complement constraint applies.
	src := `
$x = $_GET['x'];
if (!preg_match('/^[a-z]+$/', $x)) {
    query("SELECT " . $x);
}
`
	findings, _, err := AnalyzeSource("t.php", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %d", len(findings))
	}
	exploit := findings[0].Inputs["GET:x"]
	// Must contain a quote (policy) and not be all-lowercase (complement).
	if !strings.ContainsRune(exploit, '\'') {
		t.Fatalf("exploit %q lacks quote", exploit)
	}
	allLower := len(exploit) > 0
	for i := 0; i < len(exploit); i++ {
		if exploit[i] < 'a' || exploit[i] > 'z' {
			allLower = false
		}
	}
	if allLower {
		t.Fatalf("exploit %q passes the guard it must fail", exploit)
	}
}

func TestEffectiveSanitizerBlocks(t *testing.T) {
	// A fully anchored digits-only filter stops the quote policy.
	src := `
$x = $_GET['x'];
if (preg_match('/^[0-9]+$/', $x)) {
    query("SELECT " . $x);
}
`
	findings, _, err := AnalyzeSource("t.php", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("digits-only input cannot contain a quote; findings = %v", findings)
	}
}

func TestAddslashesBlocksQuote(t *testing.T) {
	src := `
$x = addslashes($_GET['x']);
query("SELECT '" . $x . "'");
`
	findings, _, err := AnalyzeSource("t.php", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The query text contains literal quotes around the value, so the
	// quote policy is trivially met — but the attacker input itself is
	// escaped. The finding (if any) must not require a bare quote in x.
	// With literal quotes in the template, the sink constraint holds for
	// any x, so a finding IS reported (the template itself is quote-y);
	// this mirrors the known imprecision of the quote policy.
	if len(findings) == 1 {
		if findings[0].Inputs["GET:x"] == "" {
			// shortest witness may be the empty string — acceptable.
			t.Log("witness is empty string; template quotes satisfy policy")
		}
	}
}

func TestIntvalTransfer(t *testing.T) {
	src := `
$x = intval($_GET['x']);
query("SELECT " . $x);
`
	findings, _, err := AnalyzeSource("t.php", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// intval output is -?[0-9]+ which cannot contain a quote: no finding.
	if len(findings) != 0 {
		t.Fatalf("intval-guarded sink must be safe, got %v", findings)
	}
}

func TestUnknownCallIsUnconstrained(t *testing.T) {
	src := `
$x = mystery($_GET['x']);
query("SELECT " . $x);
`
	findings, _, err := AnalyzeSource("t.php", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The unknown call's result could be anything, but it is not an HTTP
	// input — there is no input variable to solve for.
	if len(findings) != 0 {
		t.Fatalf("no HTTP input reaches the sink directly, got %v", findings)
	}
}

func TestSharedInputAcrossReads(t *testing.T) {
	// Two reads of the same input key are the same variable: constraints
	// conjoin.
	src := `
$a = $_GET['k'];
$b = $_GET['k'];
if (preg_match('/^x/', $a)) {
    if (preg_match('/y$/', $b)) {
        query($a . $b);
    }
}
`
	findings, _, err := AnalyzeSource("t.php", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %d", len(findings))
	}
	w := findings[0].Inputs["GET:k"]
	if !strings.HasPrefix(w, "x") || !strings.HasSuffix(w, "y") {
		t.Fatalf("shared input witness %q must satisfy both filters", w)
	}
	if !strings.Contains(w+w, "'") {
		t.Fatalf("doubled input %q must meet the quote policy", w)
	}
}

func TestXSSSink(t *testing.T) {
	src := `
$x = $_GET['msg'];
if (preg_match('/^[a-zA-Z<> =]+$/', $x)) {
    echo "<div>" . $x . "</div>";
}
`
	findings, _, err := AnalyzeSource("t.php", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %d", len(findings))
	}
	if findings[0].Kind != cfg.SinkXSS {
		t.Fatalf("kind = %v", findings[0].Kind)
	}
	if !strings.Contains(findings[0].Inputs["GET:msg"], "<script") {
		t.Fatalf("XSS exploit %q lacks script tag", findings[0].Inputs["GET:msg"])
	}
}

func TestMultiplePathsFirstPerSink(t *testing.T) {
	src := `
$x = $_GET['x'];
if ($mode) { $y = 'a'; } else { $y = 'b'; }
query($x . $y);
`
	cfgc := DefaultConfig()
	findings, stats, err := AnalyzeSource("t.php", src, cfgc)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Paths != 2 {
		t.Fatalf("paths = %d", stats.Paths)
	}
	if len(findings) != 1 {
		t.Fatalf("FirstPerSink should emit a single finding, got %d", len(findings))
	}
	cfgc.FirstPerSink = false
	findings, _, err = AnalyzeSource("t.php", src, cfgc)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("all-paths mode should emit 2, got %d", len(findings))
	}
}

func TestUninitializedVariableIsEmptyString(t *testing.T) {
	src := `query("SELECT" . $never_set . "'");`
	findings, _, err := AnalyzeSource("t.php", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Query contains a literal quote but no input: no finding.
	if len(findings) != 0 {
		t.Fatalf("findings = %v", findings)
	}
}

func TestSolverOptionsRespected(t *testing.T) {
	prog := lang.MustParse("t.php", figure1)
	paths := cfg.PathsToSinks(prog, 0)
	ps, err := ForPath(paths[0], policy.SQLDefault())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(ps.Sys, core.Options{Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.SatFor(ps.Inputs) {
		t.Fatal("minimized solve should still find the exploit language")
	}
}

func TestTautologyPolicy(t *testing.T) {
	cfgc := DefaultConfig()
	cfgc.SQL = policy.SQLTautology()
	findings, _, err := AnalyzeSource("fig1.php", figure1, cfgc)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %d", len(findings))
	}
	w := findings[0].Inputs["POST:posted_newsid"]
	if !strings.Contains(w, "OR ") {
		t.Fatalf("tautology exploit %q", w)
	}
}

func TestLoopUnrolledPaths(t *testing.T) {
	// A loop that concatenates the same input repeatedly: the unrolled
	// paths produce constraints with repeated variable occurrences.
	src := `
$x = $_GET['x'];
while ($more) { $x = $x . $_GET['x']; }
query($x);
`
	cfgc := DefaultConfig()
	cfgc.FirstPerSink = false
	findings, stats, err := AnalyzeSource("t.php", src, cfgc)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Paths != cfg.MaxLoopUnroll+1 {
		t.Fatalf("paths = %d", stats.Paths)
	}
	// Every unrolling is exploitable (x itself can hold a quote).
	if len(findings) != cfg.MaxLoopUnroll+1 {
		t.Fatalf("findings = %d", len(findings))
	}
	for _, f := range findings {
		if !strings.Contains(f.Inputs["GET:x"], "'") {
			t.Fatalf("exploit %q lacks quote", f.Inputs["GET:x"])
		}
	}
}

func TestLoopWithFilterInside(t *testing.T) {
	// The loop body re-filters the accumulated value; a doubled input must
	// still satisfy the guard on each iteration's value.
	src := `
$x = $_GET['seed'];
if (!preg_match('/[\d]$/', $x)) { exit; }
while ($more) {
    $x = $x . $_GET['seed'];
}
query($x);
`
	cfgc := DefaultConfig()
	cfgc.FirstPerSink = false
	findings, _, err := AnalyzeSource("t.php", src, cfgc)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("expected findings")
	}
	for _, f := range findings {
		w := f.Inputs["GET:seed"]
		if w == "" {
			t.Fatal("no witness")
		}
		last := w[len(w)-1]
		if last < '0' || last > '9' {
			t.Fatalf("witness %q fails the filter", w)
		}
	}
}

func TestCaseInsensitiveFilterModeled(t *testing.T) {
	// The /i filter only admits (case-folded) "safe"; the quote policy is
	// unreachable, so there must be no finding.
	src := `
$x = $_GET['x'];
if (!preg_match('/^safe$/i', $x)) { exit; }
query("SELECT " . $x);
`
	findings, _, err := AnalyzeSource("t.php", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("findings = %v", findings)
	}
	// Without the anchor the same /i filter is bypassable.
	src2 := `
$x = $_GET['x'];
if (!preg_match('/safe$/i', $x)) { exit; }
query("SELECT " . $x);
`
	findings, _, err = AnalyzeSource("t.php", src2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %d", len(findings))
	}
	w := findings[0].Inputs["GET:x"]
	if !strings.Contains(w, "'") {
		t.Fatalf("exploit %q", w)
	}
}

func TestStrReplaceImage(t *testing.T) {
	prog := lang.MustParse("t.php", `$x = str_replace("'", "''", $_GET['x']); query($x);`)
	call := prog.Stmts[0].(*lang.Assign).Rhs.(*lang.Call)
	img, ok := strReplaceImage(call)
	if !ok {
		t.Fatal("quote-doubling replace should be modelable")
	}
	// Quotes only ever appear doubled.
	for _, w := range []string{"", "abc", "a''b", "''''"} {
		if !img.Accepts(w) {
			t.Errorf("image should accept %q", w)
		}
	}
	for _, w := range []string{"'", "a'b", "'''"} {
		if img.Accepts(w) {
			t.Errorf("image should reject %q", w)
		}
	}
}

func TestStrReplaceUnmodelableCases(t *testing.T) {
	for _, src := range []string{
		`$x = str_replace("ab", "c", $y); query($x);`,     // multi-byte search
		`$x = str_replace($s, "c", $y); query($x);`,       // dynamic search
		`$x = str_replace("'", "''", $y, $n); query($x);`, // wrong arity
	} {
		prog := lang.MustParse("t.php", src)
		call := prog.Stmts[0].(*lang.Assign).Rhs.(*lang.Call)
		if _, ok := strReplaceImage(call); ok {
			t.Errorf("%s: should not be modelable", src)
		}
	}
}

func TestStrReplaceStripsQuotesMakesSafe(t *testing.T) {
	// Removing quotes entirely makes the quote policy unreachable through
	// the sanitized value.
	src := `
$x = str_replace("'", "", $_GET['x']);
query("SELECT name FROM t WHERE id=" . $x);
`
	findings, _, err := AnalyzeSource("t.php", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("quote-stripped sink must be safe: %v", findings)
	}
}
