// Package regex implements the regular-expression dialect used by the DPRLE
// reproduction: a PCRE-style subset sufficient for the paper's constraint
// constants and for modeling PHP's preg_match checks (literals, character
// classes, the \d \w \s family, '.', alternation, grouping, the * + ? and
// {n,m} quantifiers, and the ^ / $ anchors).
//
// Two compilation modes are provided. Compile returns the exact language of
// the pattern (the interpretation used for constraint constants), while
// MatchLanguage returns the set of strings that preg_match would accept,
// i.e. Σ*·r·Σ* with Σ*-padding dropped on sides that are anchored. The
// distinction is the heart of the paper's motivating bug: /[\d]+$/ without
// the ^ anchor admits "' OR 1=1 ; DROP news --9".
package regex

import (
	"fmt"

	"dprle/internal/nfa"
)

// node is a parsed regular-expression AST node.
type node interface {
	fmt.Stringer
}

// litNode matches a literal byte sequence.
type litNode struct{ s string }

// classNode matches any single byte in the set.
type classNode struct{ set nfa.CharSet }

// concatNode matches the concatenation of its parts.
type concatNode struct{ parts []node }

// altNode matches any of its branches.
type altNode struct{ branches []node }

// repeatNode matches between min and max repetitions of sub; max < 0 means
// unbounded.
type repeatNode struct {
	sub      node
	min, max int
}

// anchorNode is ^ (start) or $ (end).
type anchorNode struct{ end bool }

func (n litNode) String() string    { return fmt.Sprintf("lit(%q)", n.s) }
func (n classNode) String() string  { return "class" + n.set.String() }
func (n concatNode) String() string { return fmt.Sprintf("concat%v", n.parts) }
func (n altNode) String() string    { return fmt.Sprintf("alt%v", n.branches) }
func (n repeatNode) String() string {
	return fmt.Sprintf("repeat(%v,%d,%d)", n.sub, n.min, n.max)
}
func (n anchorNode) String() string {
	if n.end {
		return "$"
	}
	return "^"
}

// Regex is a parsed regular expression.
type Regex struct {
	src string
	ast node
}

// Source returns the original pattern text.
func (r *Regex) Source() string { return r.src }

// String renders the parsed form, primarily for debugging.
func (r *Regex) String() string { return r.ast.String() }

// Predefined escape classes.
func escapeClass(c byte) (nfa.CharSet, bool) {
	switch c {
	case 'd':
		return nfa.Range('0', '9'), true
	case 'D':
		return nfa.Range('0', '9').Complement(), true
	case 'w':
		w := nfa.Range('a', 'z').Union(nfa.Range('A', 'Z')).Union(nfa.Range('0', '9'))
		w.Add('_')
		return w, true
	case 'W':
		w, _ := escapeClass('w')
		return w.Complement(), true
	case 's':
		return nfa.FromString(" \t\n\r\f\v"), true
	case 'S':
		s, _ := escapeClass('s')
		return s.Complement(), true
	}
	return nfa.EmptySet(), false
}

// dotClass is the class matched by '.', every byte except newline
// (PCRE's default, without the DOTALL flag).
func dotClass() nfa.CharSet {
	d := nfa.AnyByte()
	d.Remove('\n')
	return d
}
