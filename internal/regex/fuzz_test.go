package regex

import "testing"

// FuzzParse checks the regex front end never panics and that successfully
// compiled machines behave sanely (Accepts terminates, witnesses verify).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		``, `a`, `[\d]+$`, `^(a|b)*c{2,4}?`, `[^a-z\\]+`, `\x41\0\n`,
		`(((`, `a{999}`, `a{1,`, `[]a]`, `a|`, `.*.*.*`, `\Q`, `{2}`,
		`(?:x)+`, `[\w-]`, `a**`, "\xff\xfe", `^a$|^b$`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, pattern string) {
		r, err := Parse(pattern)
		if err != nil {
			return
		}
		m, err := r.Compile()
		if err != nil {
			return
		}
		if w, ok := m.ShortestWitness(); ok {
			if !m.Accepts(w) {
				t.Fatalf("witness %q of %q rejected", w, pattern)
			}
		}
		if _, err := r.MatchLanguage(); err != nil {
			// Anchor-position errors are fine; panics are not.
			return
		}
	})
}
