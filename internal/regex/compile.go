package regex

import (
	"errors"
	"fmt"

	"dprle/internal/nfa"
)

// ErrPatternTooLarge reports a pattern whose compiled NFA would exceed
// maxCompiledStates. Compile and MatchLanguage wrap it, so callers can test
// with errors.Is.
var ErrPatternTooLarge = errors.New("pattern too large")

// maxCompiledStates bounds the NFA a single pattern may expand to. Bounded
// repeats compile by copying ({n} concatenates n copies of the sub-machine),
// so although the parser caps each individual bound at 1000, nested bounds
// multiply: a{999}{999} names a million-state machine, and every Concat copy
// is O(current size), which turns compilation quadratic in that size. User
// input reaches Compile through the textio and lang front ends, so a hostile
// pattern must fail fast with a wrapped error instead of hanging.
const maxCompiledStates = 1 << 14

// checkSize enforces maxCompiledStates on a partially built machine.
func checkSize(m *nfa.NFA) error {
	if m.NumStates() > maxCompiledStates {
		return fmt.Errorf("regex: compiled NFA exceeds %d states (nested bounded repeats multiply): %w",
			maxCompiledStates, ErrPatternTooLarge)
	}
	return nil
}

// Compile returns an NFA for the exact language of the pattern. This is the
// interpretation used for constraint constants; anchors are only permitted at
// the boundaries of the pattern (or of a top-level alternative), where they
// are redundant for the exact-language reading and compile to ε.
func (r *Regex) Compile() (*nfa.NFA, error) {
	stripped, _, _, err := stripAnchors(r.ast)
	if err != nil {
		return nil, err
	}
	return compile(stripped)
}

// MustCompile parses and compiles a pattern, panicking on error.
func MustCompile(pattern string) *nfa.NFA {
	m, err := MustParse(pattern).Compile()
	if err != nil {
		panic(err)
	}
	return m
}

// MatchLanguage returns an NFA for the set of subject strings on which
// preg_match(pattern, subject) succeeds: an unanchored side admits arbitrary
// Σ* padding. For a top-level alternation each branch is padded according to
// its own anchors.
func (r *Regex) MatchLanguage() (*nfa.NFA, error) {
	branches := []node{r.ast}
	if alt, ok := r.ast.(altNode); ok {
		branches = alt.branches
	}
	var machines []*nfa.NFA
	for _, b := range branches {
		core, left, right, err := stripAnchors(b)
		if err != nil {
			return nil, err
		}
		m, err := compile(core)
		if err != nil {
			return nil, err
		}
		if !left {
			m = nfa.Concat(sigmaStar(), m)
		}
		if !right {
			m = nfa.Concat(m, sigmaStar())
		}
		machines = append(machines, m)
	}
	return nfa.UnionAll(machines...), nil
}

// MustMatchLanguage parses a pattern and builds its match language,
// panicking on error.
func MustMatchLanguage(pattern string) *nfa.NFA {
	m, err := MustParse(pattern).MatchLanguage()
	if err != nil {
		panic(err)
	}
	return m
}

// CaseInsensitive returns a regex denoting the case-folded language of r:
// every ASCII letter (in literals and classes) matches both cases, the
// semantics of PCRE's /i flag over the byte alphabet.
func (r *Regex) CaseInsensitive() *Regex {
	return &Regex{src: r.src + " (case-insensitive)", ast: foldCase(r.ast)}
}

func foldCase(n node) node {
	switch n := n.(type) {
	case litNode:
		// Each letter becomes a two-member class; split the literal at
		// letters so non-letter runs stay literals.
		var parts []node
		run := ""
		flush := func() {
			if run != "" {
				parts = append(parts, litNode{s: run})
				run = ""
			}
		}
		for i := 0; i < len(n.s); i++ {
			c := n.s[i]
			if isASCIILetter(c) {
				flush()
				set := nfa.Singleton(c)
				set.Add(swapCase(c))
				parts = append(parts, classNode{set: set})
			} else {
				run += string([]byte{c})
			}
		}
		flush()
		switch len(parts) {
		case 0:
			return litNode{s: ""}
		case 1:
			return parts[0]
		default:
			return concatNode{parts: parts}
		}
	case classNode:
		set := n.set
		for c := byte('a'); c <= 'z'; c++ {
			if set.Contains(c) {
				set.Add(c - 32)
			}
			if set.Contains(c - 32) {
				set.Add(c)
			}
		}
		return classNode{set: set}
	case concatNode:
		parts := make([]node, len(n.parts))
		for i, p := range n.parts {
			parts[i] = foldCase(p)
		}
		return concatNode{parts: parts}
	case altNode:
		branches := make([]node, len(n.branches))
		for i, b := range n.branches {
			branches[i] = foldCase(b)
		}
		return altNode{branches: branches}
	case repeatNode:
		return repeatNode{sub: foldCase(n.sub), min: n.min, max: n.max}
	default:
		return n
	}
}

func isASCIILetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func swapCase(c byte) byte {
	if c >= 'a' && c <= 'z' {
		return c - 32
	}
	return c + 32
}

func sigmaStar() *nfa.NFA {
	return nfa.Star(nfa.Class(nfa.AnyByte()))
}

// stripAnchors removes boundary anchors from a branch and reports which sides
// were anchored. Anchors anywhere else are an error: the exact-language
// semantics of an interior anchor (usually ∅) is almost always a bug in the
// analyzed program, and the paper's dialect does not use them.
func stripAnchors(n node) (core node, left, right bool, err error) {
	parts := []node{n}
	if c, ok := n.(concatNode); ok {
		parts = append([]node(nil), c.parts...)
	}
	if len(parts) > 0 {
		if a, ok := parts[0].(anchorNode); ok && !a.end {
			left = true
			parts = parts[1:]
		}
	}
	if len(parts) > 0 {
		if a, ok := parts[len(parts)-1].(anchorNode); ok && a.end {
			right = true
			parts = parts[:len(parts)-1]
		}
	}
	for _, p := range parts {
		if err := checkNoAnchors(p); err != nil {
			return nil, false, false, err
		}
	}
	switch len(parts) {
	case 0:
		return litNode{s: ""}, left, right, nil
	case 1:
		return parts[0], left, right, nil
	default:
		return concatNode{parts: parts}, left, right, nil
	}
}

func checkNoAnchors(n node) error {
	switch n := n.(type) {
	case anchorNode:
		return fmt.Errorf("regex: anchor %v not at a pattern boundary", n)
	case concatNode:
		for _, p := range n.parts {
			if err := checkNoAnchors(p); err != nil {
				return err
			}
		}
	case altNode:
		for _, b := range n.branches {
			if err := checkNoAnchors(b); err != nil {
				return err
			}
		}
	case repeatNode:
		return checkNoAnchors(n.sub)
	}
	return nil
}

// compile translates an anchor-free AST into an NFA by Thompson's
// construction, using the nfa package's combinators.
func compile(n node) (*nfa.NFA, error) {
	switch n := n.(type) {
	case litNode:
		return nfa.Literal(n.s), nil
	case classNode:
		if n.set.IsEmpty() {
			return nfa.Empty(), nil
		}
		return nfa.Class(n.set), nil
	case concatNode:
		out := nfa.Epsilon()
		for _, p := range n.parts {
			m, err := compile(p)
			if err != nil {
				return nil, err
			}
			out = nfa.Concat(out, m)
			if err := checkSize(out); err != nil {
				return nil, err
			}
		}
		return out, nil
	case altNode:
		var ms []*nfa.NFA
		for _, b := range n.branches {
			m, err := compile(b)
			if err != nil {
				return nil, err
			}
			ms = append(ms, m)
		}
		out := nfa.UnionAll(ms...)
		if err := checkSize(out); err != nil {
			return nil, err
		}
		return out, nil
	case repeatNode:
		return compileRepeat(n)
	case anchorNode:
		return nil, fmt.Errorf("regex: anchor %v not at a pattern boundary", n)
	}
	return nil, fmt.Errorf("regex: unknown AST node %T", n)
}

func compileRepeat(n repeatNode) (*nfa.NFA, error) {
	// Concat copies its operands into a fresh machine, so one compiled copy
	// of the sub-pattern serves every repetition. Each copy is size-checked
	// before the next Concat, so a nested bound trips ErrPatternTooLarge
	// after O(cap) work instead of expanding min·|sub| states.
	sub, err := compile(n.sub)
	if err != nil {
		return nil, err
	}
	// Required prefix: min copies.
	out := nfa.Epsilon()
	for i := 0; i < n.min; i++ {
		out = nfa.Concat(out, sub)
		if err := checkSize(out); err != nil {
			return nil, err
		}
	}
	switch {
	case n.max < 0:
		out = nfa.Concat(out, nfa.Star(sub))
		if err := checkSize(out); err != nil {
			return nil, err
		}
	case n.max > n.min:
		opt := nfa.Optional(sub)
		for i := n.min; i < n.max; i++ {
			out = nfa.Concat(out, opt)
			if err := checkSize(out); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
