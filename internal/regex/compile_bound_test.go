package regex

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestExplosiveRepeatsRejected pins the expansion bound: patterns whose
// nested bounded repeats multiply past maxCompiledStates must fail fast with
// ErrPatternTooLarge on both compilation modes instead of hanging. Each of
// these used to loop for minutes building million-state machines.
func TestExplosiveRepeatsRejected(t *testing.T) {
	patterns := []string{
		"a{999}{999}",
		"a{1000}{1000}{1000}",
		"(a{100}){100}{100}",
		"(ab|cd){500}{500}",
		"a{0,1000}{0,1000}{0,1000}",
		"(a{999}){2,999}",
	}
	for _, pat := range patterns {
		t.Run(pat, func(t *testing.T) {
			r, err := Parse(pat)
			if err != nil {
				t.Fatalf("Parse(%q): %v", pat, err)
			}
			start := time.Now()
			if _, err := r.Compile(); !errors.Is(err, ErrPatternTooLarge) {
				t.Errorf("Compile(%q) err = %v, want ErrPatternTooLarge", pat, err)
			}
			if _, err := r.MatchLanguage(); !errors.Is(err, ErrPatternTooLarge) {
				t.Errorf("MatchLanguage(%q) err = %v, want ErrPatternTooLarge", pat, err)
			}
			if elapsed := time.Since(start); elapsed > 10*time.Second {
				t.Errorf("rejecting %q took %v; the bound must trip before the expansion, not after", pat, elapsed)
			}
		})
	}
}

// TestLargeBoundedRepeatsCompile guards against over-tightening the bound:
// realistic single-level repeats (including the parser's 1000 maximum and
// the hash-literal patterns the symbolic executor relies on) stay compilable
// and keep their exact language.
func TestLargeBoundedRepeatsCompile(t *testing.T) {
	cases := []struct {
		pattern        string
		accept, reject string
	}{
		{"a{1000}", strings.Repeat("a", 1000), strings.Repeat("a", 999)},
		{"(ab){50,100}", strings.Repeat("ab", 75), strings.Repeat("ab", 49)},
		{"a{2}{3}", "aaaaaa", "aaaaa"},
		{"[0-9a-f]{32}", strings.Repeat("0f", 16), "xyz"},
		{"(x|y){0,200}", strings.Repeat("xy", 100), strings.Repeat("x", 201)},
	}
	for _, c := range cases {
		t.Run(c.pattern, func(t *testing.T) {
			r, err := Parse(c.pattern)
			if err != nil {
				t.Fatalf("Parse(%q): %v", c.pattern, err)
			}
			m, err := r.Compile()
			if err != nil {
				t.Fatalf("Compile(%q): %v", c.pattern, err)
			}
			if !m.Accepts(c.accept) {
				t.Errorf("%q rejects %q", c.pattern, c.accept)
			}
			if m.Accepts(c.reject) {
				t.Errorf("%q accepts %q", c.pattern, c.reject)
			}
		})
	}
}
