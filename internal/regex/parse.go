package regex

import (
	"fmt"

	"dprle/internal/nfa"
)

// ParseError describes a syntax error in a pattern.
type ParseError struct {
	Pattern string
	Pos     int
	Msg     string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("regex: %s at position %d in %q", e.Msg, e.Pos, e.Pattern)
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Pattern: p.src, Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool  { return p.pos >= len(p.src) }
func (p *parser) peek() byte { return p.src[p.pos] }
func (p *parser) next() byte { c := p.src[p.pos]; p.pos++; return c }
func (p *parser) accept(c byte) bool {
	if !p.eof() && p.peek() == c {
		p.pos++
		return true
	}
	return false
}

// Parse parses a pattern into a Regex.
func Parse(pattern string) (*Regex, error) {
	p := &parser{src: pattern}
	ast, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, p.errf("unexpected %q", p.peek())
	}
	return &Regex{src: pattern, ast: ast}, nil
}

// MustParse is Parse that panics on error, for statically known patterns.
func MustParse(pattern string) *Regex {
	r, err := Parse(pattern)
	if err != nil {
		panic(err)
	}
	return r
}

func (p *parser) parseAlt() (node, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	if p.eof() || p.peek() != '|' {
		return first, nil
	}
	branches := []node{first}
	for p.accept('|') {
		b, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		branches = append(branches, b)
	}
	return altNode{branches: branches}, nil
}

func (p *parser) parseConcat() (node, error) {
	var parts []node
	for !p.eof() && p.peek() != '|' && p.peek() != ')' {
		part, err := p.parseRepeat()
		if err != nil {
			return nil, err
		}
		parts = append(parts, part)
	}
	switch len(parts) {
	case 0:
		return litNode{s: ""}, nil
	case 1:
		return parts[0], nil
	}
	return concatNode{parts: parts}, nil
}

func (p *parser) parseRepeat() (node, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for !p.eof() {
		var min, max int
		switch p.peek() {
		case '*':
			p.next()
			min, max = 0, -1
		case '+':
			p.next()
			min, max = 1, -1
		case '?':
			p.next()
			min, max = 0, 1
		case '{':
			var ok bool
			min, max, ok, err = p.parseBounds()
			if err != nil {
				return nil, err
			}
			if !ok {
				// A '{' that does not open a valid bound is a literal.
				return atom, nil
			}
		default:
			return atom, nil
		}
		if _, isAnchor := atom.(anchorNode); isAnchor {
			return nil, p.errf("quantifier applied to anchor")
		}
		// Accept (and ignore) a lazy/possessive modifier: the matched
		// language is the same.
		if !p.eof() && (p.peek() == '?' || p.peek() == '+') {
			p.next()
		}
		atom = repeatNode{sub: atom, min: min, max: max}
	}
	return atom, nil
}

// parseBounds parses {n}, {n,}, or {n,m} starting at '{'. If the text is not
// a well-formed bound it restores the position and reports ok=false so the
// brace is treated as a literal (PCRE behaviour).
func (p *parser) parseBounds() (min, max int, ok bool, err error) {
	start := p.pos
	p.next() // consume '{'
	readInt := func() (int, bool) {
		begin := p.pos
		v := 0
		for !p.eof() && p.peek() >= '0' && p.peek() <= '9' {
			v = v*10 + int(p.next()-'0')
			if v > 1000 {
				return 0, false // refuse absurd expansions
			}
		}
		return v, p.pos > begin
	}
	n, okN := readInt()
	if !okN {
		p.pos = start
		return 0, 0, false, nil
	}
	min = n
	max = n
	if p.accept(',') {
		if m, okM := readInt(); okM {
			max = m
			if max < min {
				return 0, 0, false, p.errf("bound {%d,%d} has max < min", min, max)
			}
		} else {
			max = -1
		}
	}
	if !p.accept('}') {
		p.pos = start
		return 0, 0, false, nil
	}
	return min, max, true, nil
}

func (p *parser) parseAtom() (node, error) {
	switch c := p.next(); c {
	case '(':
		// Accept non-capturing group syntax.
		if p.pos+1 < len(p.src) && p.peek() == '?' && p.src[p.pos+1] == ':' {
			p.pos += 2
		}
		sub, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if !p.accept(')') {
			return nil, p.errf("missing ')'")
		}
		return sub, nil
	case ')':
		return nil, p.errf("unmatched ')'")
	case '[':
		return p.parseClass()
	case '.':
		return classNode{set: dotClass()}, nil
	case '^':
		return anchorNode{end: false}, nil
	case '$':
		return anchorNode{end: true}, nil
	case '\\':
		return p.parseEscape(false)
	case '*', '+', '?':
		return nil, p.errf("quantifier %q with nothing to repeat", c)
	default:
		return litNode{s: string([]byte{c})}, nil
	}
}

// parseEscape handles an escape sequence after the backslash. When inClass is
// true the result must be a class element (no anchors).
func (p *parser) parseEscape(inClass bool) (node, error) {
	if p.eof() {
		return nil, p.errf("trailing backslash")
	}
	c := p.next()
	if set, ok := escapeClass(c); ok {
		return classNode{set: set}, nil
	}
	switch c {
	case 'n':
		return litNode{s: "\n"}, nil
	case 't':
		return litNode{s: "\t"}, nil
	case 'r':
		return litNode{s: "\r"}, nil
	case 'f':
		return litNode{s: "\f"}, nil
	case 'v':
		return litNode{s: "\v"}, nil
	case '0':
		return litNode{s: "\x00"}, nil
	case 'x':
		hi, ok1 := p.hexDigit()
		lo, ok2 := p.hexDigit()
		if !ok1 || !ok2 {
			return nil, p.errf(`\x requires two hex digits`)
		}
		return litNode{s: string([]byte{byte(hi<<4 | lo)})}, nil
	case 'A':
		if inClass {
			return nil, p.errf(`\A not allowed in class`)
		}
		return anchorNode{end: false}, nil
	case 'z':
		if inClass {
			return nil, p.errf(`\z not allowed in class`)
		}
		return anchorNode{end: true}, nil
	}
	// Any other escaped byte stands for itself (\. \\ \[ \- \/ …).
	return litNode{s: string([]byte{c})}, nil
}

func (p *parser) hexDigit() (int, bool) {
	if p.eof() {
		return 0, false
	}
	c := p.next()
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0'), true
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10, true
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10, true
	}
	return 0, false
}

// parseClass parses a [...] character class; the '[' is already consumed.
func (p *parser) parseClass() (node, error) {
	negate := p.accept('^')
	set := nfa.EmptySet()
	first := true
	for {
		if p.eof() {
			return nil, p.errf("missing ']'")
		}
		if p.peek() == ']' && !first {
			p.next()
			break
		}
		first = false
		lo, isSet, cls, err := p.classElement()
		if err != nil {
			return nil, err
		}
		if isSet {
			set = set.Union(cls)
			continue
		}
		// Possible range lo-hi.
		if !p.eof() && p.peek() == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
			p.next() // consume '-'
			hi, hiIsSet, _, err := p.classElement()
			if err != nil {
				return nil, err
			}
			if hiIsSet {
				return nil, p.errf("class escape cannot end a range")
			}
			if hi < lo {
				return nil, p.errf("inverted class range %q-%q", lo, hi)
			}
			set = set.Union(nfa.Range(lo, hi))
			continue
		}
		set.Add(lo)
	}
	if negate {
		set = set.Complement()
	}
	return classNode{set: set}, nil
}

// classElement reads one element inside a class: either a single byte
// (isSet=false, returned in lo) or an escape class like \d (isSet=true).
func (p *parser) classElement() (lo byte, isSet bool, set nfa.CharSet, err error) {
	c := p.next()
	if c != '\\' {
		return c, false, nfa.EmptySet(), nil
	}
	n, err := p.parseEscape(true)
	if err != nil {
		return 0, false, nfa.EmptySet(), err
	}
	switch n := n.(type) {
	case litNode:
		if len(n.s) != 1 {
			return 0, false, nfa.EmptySet(), p.errf("bad class escape")
		}
		return n.s[0], false, nfa.EmptySet(), nil
	case classNode:
		return 0, true, n.set, nil
	}
	return 0, false, nfa.EmptySet(), p.errf("bad class element")
}
