package regex

import (
	"strings"
	"testing"

	"dprle/internal/nfa"
)

func accepts(t *testing.T, m *nfa.NFA, strs ...string) {
	t.Helper()
	for _, s := range strs {
		if !m.Accepts(s) {
			t.Errorf("should accept %q", s)
		}
	}
}

func rejects(t *testing.T, m *nfa.NFA, strs ...string) {
	t.Helper()
	for _, s := range strs {
		if m.Accepts(s) {
			t.Errorf("should reject %q", s)
		}
	}
}

func TestCompileLiteral(t *testing.T) {
	m := MustCompile("abc")
	accepts(t, m, "abc")
	rejects(t, m, "", "ab", "abcd", "abd")
}

func TestCompileAlternation(t *testing.T) {
	m := MustCompile("cat|dog|bird")
	accepts(t, m, "cat", "dog", "bird")
	rejects(t, m, "", "catdog", "ca")
}

func TestCompileEmptyBranch(t *testing.T) {
	m := MustCompile("a|")
	accepts(t, m, "a", "")
	rejects(t, m, "b")
}

func TestCompileStarPlusOptional(t *testing.T) {
	accepts(t, MustCompile("ab*"), "a", "ab", "abbb")
	rejects(t, MustCompile("ab*"), "", "b", "aab")
	accepts(t, MustCompile("ab+"), "ab", "abb")
	rejects(t, MustCompile("ab+"), "a", "")
	accepts(t, MustCompile("ab?"), "a", "ab")
	rejects(t, MustCompile("ab?"), "abb")
}

func TestCompileGrouping(t *testing.T) {
	m := MustCompile("(ab)+")
	accepts(t, m, "ab", "abab")
	rejects(t, m, "a", "aba")
	nc := MustCompile("(?:ab)+")
	if !nfa.Equivalent(m, nc) {
		t.Fatal("(?:...) should equal (...)")
	}
}

func TestCompileClass(t *testing.T) {
	m := MustCompile("[a-c0-2_]")
	accepts(t, m, "a", "b", "c", "0", "1", "2", "_")
	rejects(t, m, "d", "3", "", "ab")
}

func TestCompileNegatedClass(t *testing.T) {
	m := MustCompile("[^a-z]")
	accepts(t, m, "A", "0", " ", "\n")
	rejects(t, m, "a", "m", "z", "")
}

func TestCompileClassWithEscapes(t *testing.T) {
	m := MustCompile(`[\d\-x]`)
	accepts(t, m, "0", "9", "-", "x")
	rejects(t, m, "a", "")
	// ']' first position is literal.
	m2 := MustCompile(`[]a]`)
	accepts(t, m2, "]", "a")
	rejects(t, m2, "b")
	// Trailing '-' is literal.
	m3 := MustCompile(`[a-]`)
	accepts(t, m3, "a", "-")
}

func TestCompileEscapeClasses(t *testing.T) {
	accepts(t, MustCompile(`\d+`), "0", "123456789")
	rejects(t, MustCompile(`\d+`), "", "12a")
	accepts(t, MustCompile(`\w+`), "hello_World9")
	rejects(t, MustCompile(`\w+`), "a b", "-")
	accepts(t, MustCompile(`\s`), " ", "\t", "\n")
	rejects(t, MustCompile(`\s`), "x")
	accepts(t, MustCompile(`\D`), "x", " ")
	rejects(t, MustCompile(`\D`), "5")
	accepts(t, MustCompile(`\S`), "x")
	rejects(t, MustCompile(`\S`), " ")
	accepts(t, MustCompile(`\W`), " ", "-")
	rejects(t, MustCompile(`\W`), "a", "7", "_")
}

func TestCompileDot(t *testing.T) {
	m := MustCompile("a.c")
	accepts(t, m, "abc", "a c", "a.c", "a\xffc")
	rejects(t, m, "a\nc", "ac", "abbc")
}

func TestCompileEscapedMetachars(t *testing.T) {
	m := MustCompile(`\(\)\[\]\{\}\.\*\+\?\|\\\/`)
	accepts(t, m, `()[]{}.*+?|\/`)
}

func TestCompileControlEscapes(t *testing.T) {
	m := MustCompile(`\n\t\r\x41\0`)
	accepts(t, m, "\n\t\rA\x00")
}

func TestCompileBounds(t *testing.T) {
	m := MustCompile("a{3}")
	accepts(t, m, "aaa")
	rejects(t, m, "aa", "aaaa")
	m = MustCompile("a{2,4}")
	accepts(t, m, "aa", "aaa", "aaaa")
	rejects(t, m, "a", "aaaaa")
	m = MustCompile("(ab){2,}")
	accepts(t, m, "abab", "ababab")
	rejects(t, m, "ab", "")
}

func TestCompileLiteralBrace(t *testing.T) {
	// Braces that don't form a bound are literal, like PCRE.
	m := MustCompile("a{x}")
	accepts(t, m, "a{x}")
	m2 := MustCompile("{2}")
	// Nothing to repeat → '{2}' is literal text in PCRE; we accept it as
	// literal because readInt fails only when no digits; here digits exist
	// but there is no atom before — our parser treats '{' with no preceding
	// atom as literal.
	accepts(t, m2, "{2}")
}

func TestCompileLazyQuantifiersSameLanguage(t *testing.T) {
	a := MustCompile("a+?b")
	b := MustCompile("a+b")
	if !nfa.Equivalent(a, b) {
		t.Fatal("lazy quantifier should not change the language")
	}
}

func TestCompileBoundaryAnchorsAreNoOps(t *testing.T) {
	a := MustCompile("^abc$")
	b := MustCompile("abc")
	if !nfa.Equivalent(a, b) {
		t.Fatal("^abc$ should equal abc under exact-language reading")
	}
}

func TestCompileInteriorAnchorRejected(t *testing.T) {
	r := MustParse("a^b")
	if _, err := r.Compile(); err == nil {
		t.Fatal("interior anchor should be an error")
	}
	r2 := MustParse("a(^b)c")
	if _, err := r2.Compile(); err == nil {
		t.Fatal("nested anchor should be an error")
	}
}

func TestQuantifiedAnchorRejected(t *testing.T) {
	if _, err := Parse("^*a"); err == nil {
		t.Fatal("quantified anchor should be a parse error")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"(", ")", "(a", "[", "[a", `\x1`, "*a", "+", "a{4,2}", "[z-a]", `a\`}
	for _, p := range bad {
		if _, err := Parse(p); err == nil {
			t.Errorf("Parse(%q) should fail", p)
		} else if !strings.Contains(err.Error(), "regex:") {
			t.Errorf("Parse(%q) error %q lacks prefix", p, err)
		}
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("ab(cd")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Pattern != "ab(cd" || pe.Pos == 0 {
		t.Fatalf("bad error metadata: %+v", pe)
	}
}

func TestMatchLanguageUnanchored(t *testing.T) {
	// The paper's motivating filter: /[\d]+$/ — anchored right only.
	m := MustMatchLanguage(`[\d]+$`)
	accepts(t, m, "5", "123", "abc9", "' OR 1=1 ; DROP news --9")
	rejects(t, m, "", "abc", "9x")
}

func TestMatchLanguageFullyAnchored(t *testing.T) {
	m := MustMatchLanguage(`^[\d]+$`)
	accepts(t, m, "5", "123")
	rejects(t, m, "abc9", "9x", "")
}

func TestMatchLanguageNoAnchors(t *testing.T) {
	m := MustMatchLanguage("abc")
	accepts(t, m, "abc", "xxabcyy", "abcabc")
	rejects(t, m, "ab", "axbxc")
}

func TestMatchLanguagePerBranchAnchors(t *testing.T) {
	m := MustMatchLanguage("^a|b$")
	accepts(t, m, "a", "axxx", "b", "xxxb")
	rejects(t, m, "xa", "bx", "c")
}

func TestMatchLanguageLeftAnchorOnly(t *testing.T) {
	m := MustMatchLanguage("^nid_")
	accepts(t, m, "nid_", "nid_123")
	rejects(t, m, "xnid_", "nid", "")
}

func TestSourceAndString(t *testing.T) {
	r := MustParse(`a\d+`)
	if r.Source() != `a\d+` {
		t.Fatalf("Source = %q", r.Source())
	}
	if r.String() == "" {
		t.Fatal("String should be nonempty")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile should panic on bad pattern")
		}
	}()
	MustCompile("(")
}

func TestEmptyClassCompiles(t *testing.T) {
	// [^\x00-\xff] is the empty class; its language is empty.
	m := MustCompile(`[^\x00-\xff]`)
	if !m.IsEmpty() {
		t.Fatal("empty class should produce the empty language")
	}
}

func TestHighByteRanges(t *testing.T) {
	m := MustCompile(`[\x80-\xff]+`)
	accepts(t, m, "\x80", "\xff\x80")
	rejects(t, m, "a", "")
}

func TestCaseInsensitive(t *testing.T) {
	r := MustParse("select[ ]+from").CaseInsensitive()
	m, err := r.Compile()
	if err != nil {
		t.Fatal(err)
	}
	accepts(t, m, "select from", "SELECT FROM", "SeLeCt  fRoM")
	rejects(t, m, "selec from")
	if !strings.Contains(r.Source(), "case-insensitive") {
		t.Fatalf("Source = %q", r.Source())
	}
}

func TestCaseInsensitiveClasses(t *testing.T) {
	m, err := MustParse("[a-c]+[XY]").CaseInsensitive().Compile()
	if err != nil {
		t.Fatal(err)
	}
	accepts(t, m, "abcX", "ABCx", "AbCy")
	rejects(t, m, "dX", "abc")
}

func TestCaseInsensitivePreservesNonLetters(t *testing.T) {
	m, err := MustParse(`a1\.b`).CaseInsensitive().Compile()
	if err != nil {
		t.Fatal(err)
	}
	accepts(t, m, "a1.b", "A1.B")
	rejects(t, m, "a1xb", "a2.b")
}

func TestCaseInsensitiveMatchLanguage(t *testing.T) {
	m, err := MustParse("^union").CaseInsensitive().MatchLanguage()
	if err != nil {
		t.Fatal(err)
	}
	accepts(t, m, "UNION SELECT", "Union x", "union")
	rejects(t, m, "x union")
}
