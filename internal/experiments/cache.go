package experiments

// The solve-cache experiment: extract every constraint system of the
// Figure 12 corpus, solve the whole batch cold (empty cache) and then warm
// (every component memoized), and report the timings plus the cache and
// request-collapsing counters. cmd/benchtab renders the report with
// -table cache and emits it machine-readably as BENCH_cache.json.

import (
	"fmt"
	"sync"
	"time"

	"dprle/internal/cfg"
	"dprle/internal/core"
	"dprle/internal/corpus"
	"dprle/internal/lang"
	"dprle/internal/solvecache"
	"dprle/internal/symexec"
)

// CorpusSystems symbolically executes every defect of the Figure 12 corpus
// and returns the constraint system of each path that reaches a sink with
// attacker-controlled data — the realistic query mix a long-running solver
// service sees. Each call rebuilds the systems from scratch, so callers can
// solve a batch repeatedly without sharing machine state between runs.
func CorpusSystems(skipBig bool) ([]*symexec.PathSystem, error) {
	cfgc := symexec.DefaultConfig()
	var systems []*symexec.PathSystem
	for _, d := range corpus.Defects() {
		if skipBig && d.Big {
			continue
		}
		src, err := corpus.Source(d)
		if err != nil {
			return nil, err
		}
		prog, err := lang.Parse(d.Name+".php", src)
		if err != nil {
			return nil, err
		}
		for _, p := range cfg.PathsToSinks(prog, cfgc.MaxPaths) {
			pol := cfgc.SQL
			if p.Kind == cfg.SinkXSS {
				pol = cfgc.XSS
			}
			ps, err := symexec.ForPath(p, pol)
			if err != nil {
				return nil, err
			}
			if len(ps.Inputs) == 0 {
				continue
			}
			systems = append(systems, ps)
		}
	}
	return systems, nil
}

// CacheReport is the measured outcome of the cache experiment.
type CacheReport struct {
	// Systems is the number of corpus constraint systems per pass.
	Systems int `json:"systems"`
	// ColdNS is the total solve time of the batch with caching disabled,
	// FillNS the time of the pass that populates a fresh cache (already
	// faster than cold: the corpus repeats components within one pass),
	// and WarmNS the time of a pass answered from the populated cache.
	// All in nanoseconds.
	ColdNS int64 `json:"cold_ns"`
	FillNS int64 `json:"fill_ns"`
	WarmNS int64 `json:"warm_ns"`
	// Speedup is ColdNS/WarmNS.
	Speedup float64 `json:"speedup"`
	// Cache snapshots the shared cache counters after both passes.
	Cache solvecache.Stats `json:"cache"`
	// FlightCalls/FlightShared/FlightSolves report the request-collapsing
	// demo: FlightCalls concurrent identical solves were issued, of which
	// FlightSolves actually executed and FlightShared rode along.
	FlightCalls  int `json:"flight_calls"`
	FlightShared int `json:"flight_shared"`
	FlightSolves int `json:"flight_solves"`
}

// solveCorpus rebuilds the corpus systems and solves each for its input
// variables under the shared cache, timing only the solves.
func solveCorpus(opts core.Options, skipBig bool, cache *solvecache.Cache) (time.Duration, int, error) {
	systems, err := CorpusSystems(skipBig)
	if err != nil {
		return 0, 0, err
	}
	opts.Cache = cache
	start := time.Now()
	for _, ps := range systems {
		if _, err := core.SolveFor(ps.Sys, ps.Inputs, opts); err != nil {
			return 0, 0, fmt.Errorf("%s: %w", ps.Sink.Kind, err)
		}
	}
	return time.Since(start), len(systems), nil
}

// CacheExperiment measures the memoized solve path on the Figure 12
// corpus: a cold pass solves the whole batch with caching disabled, a fill
// pass populates a fresh cache, and a warm pass over freshly rebuilt
// (structurally identical) systems is answered almost entirely from it.
// The reported speedup is cold over warm. A final collapsing demo joins 8
// identical requests on one Flight and counts how many actually executed.
func CacheExperiment(opts core.Options, skipBig bool) (CacheReport, error) {
	// Each measured pass is best-of-N: single passes over this corpus run
	// ~10 ms warm, where GC pauses and scheduler noise dominate a single
	// sample. The minimum is the honest estimate of the work itself.
	best := func(passes int, cache *solvecache.Cache) (time.Duration, int, error) {
		var min time.Duration
		var n int
		for i := 0; i < passes; i++ {
			d, count, err := solveCorpus(opts, skipBig, cache)
			if err != nil {
				return 0, 0, err
			}
			if i == 0 || d < min {
				min = d
			}
			n = count
		}
		return min, n, nil
	}
	cold, n, err := best(2, nil)
	if err != nil {
		return CacheReport{}, err
	}
	cache := solvecache.New(solvecache.Config{})
	fill, _, err := solveCorpus(opts, skipBig, cache)
	if err != nil {
		return CacheReport{}, err
	}
	warm, _, err := best(5, cache)
	if err != nil {
		return CacheReport{}, err
	}
	rep := CacheReport{
		Systems: n,
		ColdNS:  cold.Nanoseconds(),
		FillNS:  fill.Nanoseconds(),
		WarmNS:  warm.Nanoseconds(),
		Cache:   cache.Stats(),
	}
	if rep.WarmNS > 0 {
		rep.Speedup = float64(rep.ColdNS) / float64(rep.WarmNS)
	}

	// Collapsing demo: 8 identical requests join one flight — deliberately
	// sequenced (join all, then the leader solves and finishes) so the
	// counts are deterministic rather than scheduler-dependent.
	systems, err := CorpusSystems(skipBig)
	if err != nil {
		return CacheReport{}, err
	}
	if len(systems) > 0 {
		flight := solvecache.NewFlight()
		ps := systems[0]
		const calls = 8
		rep.FlightCalls = calls
		type joined struct {
			call   *solvecache.Call
			leader bool
		}
		js := make([]joined, calls)
		for i := range js {
			c, leader := flight.Join("corpus-demo")
			js[i] = joined{c, leader}
		}
		var wg sync.WaitGroup
		for _, j := range js {
			if !j.leader {
				continue
			}
			rep.FlightSolves++
			wg.Add(1)
			go func(c *solvecache.Call) {
				defer wg.Done()
				res, err := core.SolveFor(ps.Sys, ps.Inputs, opts)
				flight.Finish("corpus-demo", c, res, err)
			}(j.call)
		}
		for _, j := range js {
			if j.leader {
				continue
			}
			<-j.call.Done()
			if _, err := j.call.Result(); err == nil {
				rep.FlightShared++
			}
		}
		wg.Wait()
	}
	return rep, nil
}

// FormatCache renders the cache experiment report.
func FormatCache(rep CacheReport) string {
	return fmt.Sprintf(`Solve cache — fig12 corpus, cold vs. warm
  systems per pass        %d
  cold pass (uncached)    %.3fs
  fill pass               %.3fs
  warm pass (memoized)    %.3fs
  speedup (cold/warm)     %.1fx
  cache                   hits=%d misses=%d puts=%d evictions=%d entries=%d bytes=%d
  collapsing              %d identical concurrent solves -> %d executed, %d shared
`,
		rep.Systems,
		time.Duration(rep.ColdNS).Seconds(),
		time.Duration(rep.FillNS).Seconds(),
		time.Duration(rep.WarmNS).Seconds(),
		rep.Speedup,
		rep.Cache.Hits, rep.Cache.Misses, rep.Cache.Puts, rep.Cache.Evictions,
		rep.Cache.Entries, rep.Cache.Bytes,
		rep.FlightCalls, rep.FlightSolves, rep.FlightShared)
}
