package experiments

// The lint experiment: run the dprlelint suite over the module's own
// packages and drill the strlang analyzer over its fixture corpus,
// reporting per-analyzer wall time plus the approximation and solver
// counters (solver calls, cache hits, widenings, constraints discharged).
// cmd/benchtab renders the report with -table lint and emits it
// machine-readably as BENCH_lint.json, so CI can both time-bound the lint
// pass and check the solver-backed analysis actually exercised its cache
// and budget paths.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"dprle/internal/analysis"
	"dprle/internal/analyzers"
	"dprle/internal/analyzers/strlang"
)

// strlangFixtureDir is the fixture corpus the drill loads, relative to the
// module root.
const strlangFixtureDir = "internal/analyzers/strlang/testdata/src"

// LintRow is one analyzer's aggregate over every package analyzed.
type LintRow struct {
	Analyzer string         `json:"analyzer"`
	Findings int            `json:"findings"`
	WallNS   int64          `json:"wall_ns"`
	Counters map[string]int `json:"counters,omitempty"`
}

// LintReport is the measured outcome of the lint experiment.
type LintReport struct {
	// Packages is the number of module packages analyzed; RepoFindings the
	// findings the suite reported on them (0 for a clean tree).
	Packages     int `json:"packages"`
	RepoFindings int `json:"repo_findings"`
	// FixturePackages is the number of strlang fixture packages drilled;
	// FixtureFindings the strlang findings on them (the seeded defects).
	FixturePackages int `json:"fixture_packages"`
	FixtureFindings int `json:"fixture_findings"`
	// Rows aggregates per analyzer (repo and fixture passes combined),
	// sorted by name.
	Rows []LintRow `json:"rows"`
	// TotalWallNS is the summed analyzer wall time across all passes.
	TotalWallNS int64 `json:"total_wall_ns"`
	// SolverCalls/CacheHits/Widenings/Discharged surface the strlang
	// counters CI asserts on: every discharge is either a budgeted solver
	// call or a canonical-key cache hit, so SolverCalls+CacheHits must
	// equal Discharged.
	SolverCalls int `json:"solver_calls"`
	CacheHits   int `json:"cache_hits"`
	Widenings   int `json:"widenings"`
	Discharged  int `json:"discharged"`
}

// LintExperiment runs the full suite over the module rooted at root, then
// drills strlang over its fixture corpus so the solver-backed counters are
// exercised even on a clean tree.
func LintExperiment(root string) (*LintReport, error) {
	loader, err := analysis.NewLoader(root)
	if err != nil {
		return nil, err
	}
	paths, err := loader.ModulePackages()
	if err != nil {
		return nil, err
	}
	suite := analyzers.All()
	agg := map[string]analysis.AnalyzerStats{}
	rep := &LintReport{}
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
		findings, stats, err := analysis.RunStats(pkg, loader.Fset, suite)
		if err != nil {
			return nil, fmt.Errorf("analyzing %s: %w", path, err)
		}
		rep.Packages++
		rep.RepoFindings += len(findings)
		for name, st := range stats {
			cur := agg[name]
			cur.Merge(st)
			agg[name] = cur
		}
	}

	fixtures, err := strlangFixtures(root)
	if err != nil {
		return nil, err
	}
	fixLoader := analysis.NewSourceLoader(filepath.Join(root, strlangFixtureDir))
	for _, name := range fixtures {
		pkg, err := fixLoader.Load(name)
		if err != nil {
			return nil, fmt.Errorf("loading fixture %s: %w", name, err)
		}
		findings, stats, err := analysis.RunStats(pkg, fixLoader.Fset, []*analysis.Analyzer{strlang.Analyzer})
		if err != nil {
			return nil, fmt.Errorf("analyzing fixture %s: %w", name, err)
		}
		rep.FixturePackages++
		rep.FixtureFindings += len(findings)
		cur := agg[strlang.Analyzer.Name]
		cur.Merge(stats[strlang.Analyzer.Name])
		agg[strlang.Analyzer.Name] = cur
	}

	names := make([]string, 0, len(agg))
	for name := range agg {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := agg[name]
		rep.Rows = append(rep.Rows, LintRow{
			Analyzer: name,
			Findings: st.Findings,
			WallNS:   st.Wall.Nanoseconds(),
			Counters: st.Counters,
		})
		rep.TotalWallNS += st.Wall.Nanoseconds()
	}
	sc := agg[strlang.Analyzer.Name].Counters
	rep.SolverCalls = sc[strlang.StatSolverCalls]
	rep.CacheHits = sc[strlang.StatCacheHits]
	rep.Widenings = sc[strlang.StatWidenings]
	rep.Discharged = sc[strlang.StatDischarged]
	return rep, nil
}

// strlangFixtures lists the fixture packages under the strlang corpus in
// sorted order.
func strlangFixtures(root string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(root, strlangFixtureDir))
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// FormatLint renders the report as a text table.
func FormatLint(rep *LintReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "lint experiment: %d module packages (%d findings), %d strlang fixtures (%d findings)\n",
		rep.Packages, rep.RepoFindings, rep.FixturePackages, rep.FixtureFindings)
	fmt.Fprintf(&b, "%-14s %9s %10s  %s\n", "analyzer", "findings", "wall", "counters")
	for _, row := range rep.Rows {
		keys := make([]string, 0, len(row.Counters))
		for k := range row.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%d", k, row.Counters[k]))
		}
		fmt.Fprintf(&b, "%-14s %9d %10s  %s\n", row.Analyzer, row.Findings,
			time.Duration(row.WallNS).Round(time.Millisecond), strings.Join(parts, " "))
	}
	fmt.Fprintf(&b, "total wall %s; strlang: %d discharged = %d solver calls + %d cache hits, %d widenings",
		time.Duration(rep.TotalWallNS).Round(time.Millisecond),
		rep.Discharged, rep.SolverCalls, rep.CacheHits, rep.Widenings)
	return b.String()
}
