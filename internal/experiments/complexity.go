package experiments

import (
	"fmt"
	"strings"
	"time"

	"dprle/internal/core"
	"dprle/internal/nfa"
)

// §3.5 complexity sweeps. The paper analyzes the decision procedure in
// terms of NFA states visited: a single concat_intersect builds a product
// machine of O(Q²) states and enumerating all of its solutions costs O(Q³);
// chaining a second concat_intersect onto the result, or adding a second
// subset constraint to the concatenation node, raises the enumeration bound
// to O(Q⁵). These drivers build parametric instances whose input machines
// have Θ(Q) states and report the measured machine sizes, solution counts,
// and wall-clock time, so growth curves can be compared against the
// analytical bounds.

// ComplexityPoint is one measurement of a sweep.
type ComplexityPoint struct {
	Q         int
	M5States  int // product machine size (single-CI sweep only)
	Solutions int
	Elapsed   time.Duration
}

// boundedRepeat returns a machine for x{0,n} with exactly n+2 states: a
// chain of n character edges, every chain state ε-connected to the single
// final state. Building it directly (rather than via Optional-chains) keeps
// the constant factor of the O(Q²) product measurements honest.
func boundedRepeat(set nfa.CharSet, n int) *nfa.NFA {
	b := nfa.NewBuilder()
	first := b.AddStates(n + 1)
	final := b.AddState()
	for i := 0; i < n; i++ {
		b.AddEdge(first+i, set, first+i+1)
	}
	for i := 0; i <= n; i++ {
		b.AddEps(first+i, final)
	}
	return b.Build(first, final)
}

// CISweep runs a single concat_intersect on Θ(Q)-state inputs:
//
//	c1 = a{0,Q}, c2 = b{0,Q}, c3 = [ab]{0,2Q}
//
// The product machine must stay O(Q²) and the solution count O(Q).
func CISweep(q int) ComplexityPoint {
	c1 := boundedRepeat(nfa.Singleton('a'), q)
	c2 := boundedRepeat(nfa.Singleton('b'), q)
	c3 := boundedRepeat(nfa.Range('a', 'b'), 2*q)
	start := time.Now()
	sols, trace := core.ConcatIntersectTrace(c1, c2, c3)
	return ComplexityPoint{
		Q:         q,
		M5States:  trace.M5.NumStates(),
		Solutions: len(sols),
		Elapsed:   time.Since(start),
	}
}

// ChainedSweep solves the paper's chained system
//
//	v1 ⊆ c1, v2 ⊆ c2, v3 ⊆ c3, v1·v2 ⊆ c4, v1·v2·v3 ⊆ c5
//
// which requires two inductive concat_intersect applications (§3.5's
// O(Q⁵) case).
func ChainedSweep(q int) (ComplexityPoint, error) {
	s := core.NewSystem()
	c1 := s.MustConst("c1", boundedRepeat(nfa.Singleton('a'), q))
	c2 := s.MustConst("c2", boundedRepeat(nfa.Singleton('b'), q))
	c3 := s.MustConst("c3", boundedRepeat(nfa.Singleton('c'), q))
	c4 := s.MustConst("c4", boundedRepeat(nfa.Range('a', 'b'), q))
	c5 := s.MustConst("c5", boundedRepeat(nfa.Range('a', 'c'), q))
	s.MustAdd(core.Var{Name: "v1"}, c1)
	s.MustAdd(core.Var{Name: "v2"}, c2)
	s.MustAdd(core.Var{Name: "v3"}, c3)
	s.MustAdd(core.Cat{Left: core.Var{Name: "v1"}, Right: core.Var{Name: "v2"}}, c4)
	s.MustAdd(core.Cat{
		Left:  core.Cat{Left: core.Var{Name: "v1"}, Right: core.Var{Name: "v2"}},
		Right: core.Var{Name: "v3"}}, c5)
	start := time.Now()
	res, err := core.Solve(s, core.Options{NoMaximalize: true, MaxSolutions: 1 << 20, MaxCombos: 1 << 20})
	if err != nil {
		return ComplexityPoint{}, err
	}
	return ComplexityPoint{Q: q, Solutions: len(res.Assignments), Elapsed: time.Since(start)}, nil
}

// ExtraSubsetSweep solves v1 ⊆ c1, v2 ⊆ c2, v1·v2 ⊆ c3, v1·v2 ⊆ c4 — the
// second §3.5 O(Q⁵) case, where the concatenation node carries two subset
// constraints.
func ExtraSubsetSweep(q int) (ComplexityPoint, error) {
	s := core.NewSystem()
	c1 := s.MustConst("c1", boundedRepeat(nfa.Singleton('a'), q))
	c2 := s.MustConst("c2", boundedRepeat(nfa.Range('a', 'b'), q))
	c3 := s.MustConst("c3", boundedRepeat(nfa.Range('a', 'b'), 2*q))
	c4 := s.MustConst("c4", boundedRepeat(nfa.Range('a', 'c'), q))
	v12 := core.Cat{Left: core.Var{Name: "v1"}, Right: core.Var{Name: "v2"}}
	s.MustAdd(core.Var{Name: "v1"}, c1)
	s.MustAdd(core.Var{Name: "v2"}, c2)
	s.MustAdd(v12, c3)
	s.MustAdd(v12, c4)
	start := time.Now()
	res, err := core.Solve(s, core.Options{NoMaximalize: true, MaxSolutions: 1 << 20, MaxCombos: 1 << 20})
	if err != nil {
		return ComplexityPoint{}, err
	}
	return ComplexityPoint{Q: q, Solutions: len(res.Assignments), Elapsed: time.Since(start)}, nil
}

// ChainedSweepMaxQ caps the chained/extra-subset sweeps: they enumerate
// every disjunctive solution, which is exactly the O(Q⁵) behaviour under
// measurement, so the curves are recorded at modest Q.
const ChainedSweepMaxQ = 16

// ComplexityTable runs all three sweeps over the given Q values. The single
// CI sweep runs at every Q; the chained and extra-subset sweeps, whose full
// enumeration is the O(Q⁵) case, are limited to Q ≤ ChainedSweepMaxQ.
func ComplexityTable(qs []int) (string, error) {
	var b strings.Builder
	b.WriteString("§3.5 complexity sweeps (states / solutions / time)\n")
	fmt.Fprintf(&b, "%6s %24s %22s %22s\n", "Q", "single CI (|M5|,sols,t)", "chained CI (sols,t)", "extra subset (sols,t)")
	for _, q := range qs {
		p1 := CISweep(q)
		fmt.Fprintf(&b, "%6d %10d,%5d,%7.3fs", q, p1.M5States, p1.Solutions, p1.Elapsed.Seconds())
		if q <= ChainedSweepMaxQ {
			p2, err := ChainedSweep(q)
			if err != nil {
				return "", err
			}
			p3, err := ExtraSubsetSweep(q)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, " %14d,%7.3fs %14d,%7.3fs\n",
				p2.Solutions, p2.Elapsed.Seconds(),
				p3.Solutions, p3.Elapsed.Seconds())
		} else {
			fmt.Fprintf(&b, " %22s %22s\n", "(skipped)", "(skipped)")
		}
	}
	return b.String(), nil
}
