package experiments

import (
	"strings"
	"testing"

	"dprle/internal/core"
	"dprle/internal/corpus"
)

func TestFigure11Table(t *testing.T) {
	rows, err := Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.GenFiles != r.App.Files {
			t.Errorf("%s: files %d ≠ %d", r.App.Name, r.GenFiles, r.App.Files)
		}
		if r.GenVuln != r.App.Vulnerable {
			t.Errorf("%s: vulnerable %d ≠ %d", r.App.Name, r.GenVuln, r.App.Vulnerable)
		}
	}
	out := FormatFigure11(rows)
	for _, want := range []string{"eve", "utopia", "warp", "1.3.0", "Figure 11"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestRunDefectMeasuresMetrics(t *testing.T) {
	d, _ := corpus.DefectByName("utopia/login")
	row, err := RunDefect(d, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if row.FG != d.WantFG || row.C != d.WantC {
		t.Fatalf("FG/C = %d/%d, want %d/%d", row.FG, row.C, d.WantFG, d.WantC)
	}
	if row.Findings != 1 || row.Exploit == "" {
		t.Fatalf("findings = %d, exploit %q", row.Findings, row.Exploit)
	}
	if row.TS <= 0 {
		t.Fatal("no time measured")
	}
}

// TestFigure12Shape verifies the paper's headline evaluation claims on the
// sixteen ordinary defects: every one yields attack inputs, and every one
// solves in far less than a second. (warp/secure — the 577 s pathological
// row — is validated by the benchmark harness; it takes minutes by design.)
func TestFigure12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus run in -short mode")
	}
	rows, err := Figure12(core.Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	rep := Shape(rows)
	if !rep.PathologicalSkip {
		t.Fatal("secure should have been skipped")
	}
	if !rep.AllExploitable {
		t.Fatal("every defect must yield attack inputs (paper: 'In all cases, we were able to find feasible user input languages')")
	}
	if rep.FastCount != 16 {
		t.Fatalf("fast defects = %d, want 16 under %v", rep.FastCount, FastThreshold)
	}
	out := FormatFigure12(rows)
	for _, want := range []string{"secure", "(skipped)", "xw_mn", "577.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestCISweepGrowth(t *testing.T) {
	small := CISweep(8)
	big := CISweep(32)
	if small.Solutions == 0 || big.Solutions == 0 {
		t.Fatal("sweeps must produce solutions")
	}
	// |M5| grows ~quadratically: a 4× larger Q must grow the product by
	// clearly more than 4× (super-linear) and at most ~16× with slack.
	ratio := float64(big.M5States) / float64(small.M5States)
	if ratio < 6 || ratio > 40 {
		t.Fatalf("M5 growth ratio = %.1f for 4× Q; expected roughly quadratic", ratio)
	}
	// Solutions grow ~linearly in Q.
	solRatio := float64(big.Solutions) / float64(small.Solutions)
	if solRatio < 2 || solRatio > 8 {
		t.Fatalf("solution growth ratio = %.1f for 4× Q; expected roughly linear", solRatio)
	}
}

func TestChainedAndExtraSweeps(t *testing.T) {
	p2, err := ChainedSweep(6)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Solutions == 0 {
		t.Fatal("chained sweep found no solutions")
	}
	p3, err := ExtraSubsetSweep(6)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Solutions == 0 {
		t.Fatal("extra-subset sweep found no solutions")
	}
}

func TestComplexityTable(t *testing.T) {
	out, err := ComplexityTable([]int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "§3.5") || !strings.Contains(out, "single CI") {
		t.Fatalf("table malformed:\n%s", out)
	}
}

func TestAblationTable(t *testing.T) {
	rows, err := Ablation("utopia/login")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AblationVariants()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TS <= 0 {
			t.Errorf("%s: no time measured", r.Name)
		}
	}
	out := FormatAblation("utopia/login", rows)
	if !strings.Contains(out, "no-maximalize") || !strings.Contains(out, "baseline") {
		t.Fatalf("table malformed:\n%s", out)
	}
	if _, err := Ablation("no/such"); err == nil {
		t.Fatal("unknown defect must error")
	}
}
