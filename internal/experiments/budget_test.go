package experiments

import (
	"runtime"
	"testing"
	"time"

	"dprle/internal/core"
	"dprle/internal/corpus"
)

// TestSecureRawConstantsUnderBudget is the acceptance check for the
// resource-governance work: the paper's pathological warp/secure case with
// raw (uncanonicalized) constants — minutes of solving when unbudgeted —
// completes promptly under a 2 s per-path deadline. The exhausted paths are
// recorded, any results that do come back are verified partials, and no
// solver goroutines leak.
func TestSecureRawConstantsUnderBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second budget run")
	}
	d, ok := corpus.DefectByName("warp/secure")
	if !ok {
		t.Fatal("warp/secure defect missing from the corpus")
	}
	before := runtime.NumGoroutine()
	start := time.Now()
	row, err := RunDefectBudget(d, core.Options{RawConstants: true}, 2*time.Second, 0, 0)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("budgeted run failed outright: %v", err)
	}
	if row.ExhaustedPaths == 0 {
		t.Error("no path recorded a budget trip; the pathological solve should exhaust a 2s deadline")
	}
	// A handful of paths, each bounded by 2 s, plus parsing/symexec overhead.
	if elapsed > 60*time.Second {
		t.Errorf("budgeted analysis took %v; the deadline is not being honored", elapsed)
	}
	if row.SolveStates == 0 {
		t.Error("SolveStates = 0: budget counters were not propagated")
	}
	t.Logf("TS=%v states=%d steps=%d exhausted=%d findings=%d",
		row.TS, row.SolveStates, row.SolveSteps, row.ExhaustedPaths, row.Findings)

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestOrdinaryDefectUnaffectedByBudget checks a fast defect still solves
// identically when generous budgets are configured.
func TestOrdinaryDefectUnaffectedByBudget(t *testing.T) {
	d, ok := corpus.DefectByName("utopia/styles")
	if !ok {
		t.Fatal("utopia/styles defect missing from the corpus")
	}
	plain, err := RunDefect(d, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := RunDefectBudget(d, core.Options{}, 30*time.Second, 1<<30, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if budgeted.ExhaustedPaths != 0 {
		t.Errorf("ExhaustedPaths = %d under generous budgets", budgeted.ExhaustedPaths)
	}
	if budgeted.Findings != plain.Findings {
		t.Errorf("findings changed under budget: %d vs %d", budgeted.Findings, plain.Findings)
	}
	if budgeted.SolveStates == 0 || budgeted.SolveSteps == 0 {
		t.Errorf("budget counters empty: states=%d steps=%d", budgeted.SolveStates, budgeted.SolveSteps)
	}
}
