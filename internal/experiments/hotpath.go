package experiments

// The hot-path experiment: steady-state measurements of the NFA substrate
// operations the solver spends its time in — chained cross-products with
// trimming (gci stage 1/2), the induce-per-seam loop (gci stage 4 / ci),
// determinization, DFA membership, and a full corpus solve — each reported
// as wall time plus heap allocations. cmd/benchtab renders the report with
// -table hotpath and emits it machine-readably as BENCH_hotpath.json,
// carrying a frozen baseline (captured before the zero-copy/bitset rework)
// so every run shows the speedup trajectory.

import (
	"fmt"
	"runtime"
	"time"

	"dprle/internal/core"
	"dprle/internal/nfa"
	"dprle/internal/regex"
)

// HotpathRow is one measured workload: total wall time and heap traffic
// across Iters iterations (after one untimed warm-up iteration).
type HotpathRow struct {
	Name   string `json:"name"`
	Iters  int    `json:"iters"`
	WallNS int64  `json:"wall_ns"`
	Allocs int64  `json:"allocs"`
	Bytes  int64  `json:"bytes"`
}

// HotpathReport is one full measurement pass.
type HotpathReport struct {
	Rows []HotpathRow `json:"rows"`
}

// Row returns the named row, if present.
func (r HotpathReport) Row(name string) (HotpathRow, bool) {
	for _, row := range r.Rows {
		if row.Name == name {
			return row, true
		}
	}
	return HotpathRow{}, false
}

// HotpathFile is the BENCH_hotpath.json schema: the current measurement,
// an optional frozen baseline, and the per-row wall/alloc ratios between
// them (baseline over current, so bigger is better).
type HotpathFile struct {
	Baseline   *HotpathReport     `json:"baseline,omitempty"`
	Current    HotpathReport      `json:"current"`
	Speedup    map[string]float64 `json:"speedup,omitempty"`
	AllocRatio map[string]float64 `json:"alloc_ratio,omitempty"`
}

// CompareHotpath attaches baseline to current and computes the per-row
// ratios for every workload present in both.
func CompareHotpath(baseline *HotpathReport, current HotpathReport) HotpathFile {
	f := HotpathFile{Baseline: baseline, Current: current}
	if baseline == nil {
		return f
	}
	f.Speedup = map[string]float64{}
	f.AllocRatio = map[string]float64{}
	for _, cur := range current.Rows {
		base, ok := baseline.Row(cur.Name)
		if !ok || base.Iters == 0 || cur.Iters == 0 {
			continue
		}
		curWall := float64(cur.WallNS) / float64(cur.Iters)
		baseWall := float64(base.WallNS) / float64(base.Iters)
		if curWall > 0 {
			f.Speedup[cur.Name] = baseWall / curWall
		}
		curAllocs := float64(cur.Allocs) / float64(cur.Iters)
		baseAllocs := float64(base.Allocs) / float64(base.Iters)
		if curAllocs > 0 {
			f.AllocRatio[cur.Name] = baseAllocs / curAllocs
		}
	}
	return f
}

// hotpathMeasure runs fn once untimed (warming per-machine memo caches, the
// same steady state the solver's loops run in), then measures iters timed
// iterations, reporting wall time and heap-counter deltas.
func hotpathMeasure(name string, iters int, fn func()) HotpathRow {
	fn()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return HotpathRow{
		Name:   name,
		Iters:  iters,
		WallNS: wall.Nanoseconds(),
		Allocs: int64(after.Mallocs - before.Mallocs),
		Bytes:  int64(after.TotalAlloc - before.TotalAlloc),
	}
}

// HotpathExperiment measures the five hot-path workloads. skipBig excludes
// the pathological warp/secure defect from the corpus row, matching the
// cache experiment's default.
func HotpathExperiment(skipBig bool) (HotpathReport, error) {
	var rep HotpathReport

	// product-chain: gci stage 1 in miniature — a variable's language is
	// repeatedly intersected with constraining constants, trimming between
	// steps. The chained products re-derive each other's parallel edges,
	// which is exactly what Build-time edge normalization targets.
	ca := regex.MustCompile("(ab|cd){0,8}")
	cb := regex.MustCompile("[a-d]{0,16}")
	cc := regex.MustCompile("(ab){0,4}(cd){0,4}")
	var chainOut *nfa.NFA
	rep.Rows = append(rep.Rows, hotpathMeasure("product-chain", 5, func() {
		lang := nfa.AnyString()
		for _, c := range []*nfa.NFA{ca, cb, cc} {
			lang = nfa.Intersect(lang, c).Trim()
		}
		chainOut = lang
	}))
	if chainOut == nil || chainOut.IsEmpty() {
		return rep, fmt.Errorf("hotpath: product chain came out empty")
	}

	// induce-gci: the per-seam slicing loop of concat_intersect / gci
	// stage 4 — every surviving seam edge induces a (v1, v2) span pair,
	// each checked for emptiness. The root machine is built once; the
	// measured loop is pure Induce + IsEmpty, the path the zero-copy views
	// turn allocation-free.
	q1 := regex.MustCompile("(ab|cd){0,6}")
	q2 := regex.MustCompile("[a-d]{0,12}")
	q3 := regex.MustCompile("[a-d]{0,16}")
	m5 := nfa.Intersect(nfa.ConcatTagged(q1, q2, 0), q3).Trim()
	seams := m5.TaggedEdges()
	if len(seams) < 8 {
		return rep, fmt.Errorf("hotpath: induce root has only %d seams", len(seams))
	}
	nonempty := 0
	rep.Rows = append(rep.Rows, hotpathMeasure("induce-gci", 10, func() {
		nonempty = 0
		for _, seam := range seams {
			v1 := m5.Induce(m5.Start(), seam.From)
			v2 := m5.Induce(seam.To, m5.Final())
			if !v1.IsEmpty() && !v2.IsEmpty() {
				nonempty++
			}
		}
	}))
	if nonempty == 0 {
		return rep, fmt.Errorf("hotpath: no nonempty induced span pair")
	}

	// determinize: the subset construction on a mid-size nondeterministic
	// machine — the solver's worst-case-exponential step, driven by the
	// closure/step kernels and the subset keying.
	dm := regex.MustCompile("(ab|cd){0,32}")
	var dfa *nfa.DFA
	rep.Rows = append(rep.Rows, hotpathMeasure("determinize", 100, func() {
		dfa = nfa.Determinize(dm)
	}))

	// dfa-membership: byte-at-a-time acceptance on the determinized
	// machine — the atom-lookup path.
	word := ""
	for i := 0; i < 32; i++ {
		word += "ab"
	}
	accepted := false
	rep.Rows = append(rep.Rows, hotpathMeasure("dfa-membership", 20000, func() {
		accepted = dfa.Accepts(word)
	}))
	if !accepted {
		return rep, fmt.Errorf("hotpath: dfa rejected its own word")
	}

	// corpus-solve: the realistic end-to-end mix — every Figure 12
	// constraint system solved for its inputs, caching disabled, timing
	// and allocation-counting only the solves.
	systems, err := CorpusSystems(skipBig)
	if err != nil {
		return rep, err
	}
	var solveErr error
	rep.Rows = append(rep.Rows, hotpathMeasure("corpus-solve", 2, func() {
		for _, ps := range systems {
			if _, err := core.SolveFor(ps.Sys, ps.Inputs, core.Options{}); err != nil {
				solveErr = fmt.Errorf("%s: %w", ps.Sink.Kind, err)
				return
			}
		}
	}))
	if solveErr != nil {
		return rep, solveErr
	}
	return rep, nil
}

// FormatHotpath renders the hot-path report, one row per workload, with
// the baseline ratios when a baseline is attached.
func FormatHotpath(f HotpathFile) string {
	out := "NFA hot paths — steady-state wall time and allocations per iteration\n"
	out += fmt.Sprintf("  %-14s %12s %12s %14s", "workload", "wall/iter", "allocs/iter", "bytes/iter")
	if f.Baseline != nil {
		out += fmt.Sprintf(" %9s %9s", "speedup", "alloc-x")
	}
	out += "\n"
	for _, row := range f.Current.Rows {
		if row.Iters == 0 {
			continue
		}
		wall := time.Duration(row.WallNS / int64(row.Iters))
		out += fmt.Sprintf("  %-14s %12s %12d %14d",
			row.Name, wall, row.Allocs/int64(row.Iters), row.Bytes/int64(row.Iters))
		if f.Baseline != nil {
			out += fmt.Sprintf(" %8.1fx %8.1fx", f.Speedup[row.Name], f.AllocRatio[row.Name])
		}
		out += "\n"
	}
	return out
}
