// Package experiments regenerates the paper's evaluation artifacts: the
// Figure 11 data-set table, the Figure 12 per-defect results table, and the
// §3.5 complexity sweeps. cmd/benchtab renders the tables; bench_test.go
// exposes the same drivers as testing.B benchmarks.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"dprle/internal/core"
	"dprle/internal/corpus"
	"dprle/internal/lang"
	"dprle/internal/symexec"
)

// Fig11Row is one measured row of the data-set table.
type Fig11Row struct {
	App      corpus.App
	GenFiles int
	GenLOC   int
	GenVuln  int
}

// Figure11 generates the three application trees and measures their actual
// file, LOC, and vulnerable-file counts next to the published values.
func Figure11() ([]Fig11Row, error) {
	var rows []Fig11Row
	for _, app := range corpus.Apps() {
		files, err := corpus.GenerateApp(app)
		if err != nil {
			return nil, err
		}
		row := Fig11Row{App: app, GenFiles: len(files)}
		for _, f := range files {
			row.GenLOC += corpus.LOC(f.Source)
			if f.Vuln {
				row.GenVuln++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFigure11 renders the Figure 11 table with published and measured
// columns side by side.
func FormatFigure11(rows []Fig11Row) string {
	var b strings.Builder
	b.WriteString("Figure 11 — data set (published vs. generated)\n")
	fmt.Fprintf(&b, "%-8s %-8s %14s %16s %18s\n", "Name", "Version", "Files (pub/gen)", "LOC (pub/gen)", "Vulnerable (pub/gen)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-8s %7d/%-7d %8d/%-8d %9d/%-9d\n",
			r.App.Name, r.App.Version,
			r.App.Files, r.GenFiles,
			r.App.LOC, r.GenLOC,
			r.App.Vulnerable, r.GenVuln)
	}
	return b.String()
}

// Fig12Row is one measured row of the results table.
type Fig12Row struct {
	Defect   corpus.Defect
	FG       int           // measured |FG|
	C        int           // measured |C|
	TS       time.Duration // measured constraint-solving time
	Exploit  string        // generated attack input
	Findings int
	// Budget counters from the budgeted solves: NFA states materialized,
	// checkpoints passed, and whether any path's solve was cut short by a
	// resource budget.
	SolveStates    int64
	SolveSteps     int64
	ExhaustedPaths int
}

// RunDefect analyzes one defect end to end and reports the measured Figure
// 12 metrics. The solve time covers constraint solving (system construction
// plus Solve), matching the paper's TS ("total time spent solving
// constraints").
func RunDefect(d corpus.Defect, opts core.Options) (Fig12Row, error) {
	return RunDefectBudget(d, opts, 0, 0, 0)
}

// RunDefectBudget is RunDefect with per-path solver budgets: a wall-clock
// deadline per path plus state/step caps (0 = unlimited). Budget-exhausted
// paths are recorded in the row's ExhaustedPaths instead of failing the
// run, which makes the pathological warp/secure row measurable under a
// small deadline.
func RunDefectBudget(d corpus.Defect, opts core.Options, pathTimeout time.Duration, maxStates, maxSteps int64) (Fig12Row, error) {
	src, err := corpus.Source(d)
	if err != nil {
		return Fig12Row{}, err
	}
	prog, err := lang.Parse(d.Name+".php", src)
	if err != nil {
		return Fig12Row{}, err
	}
	cfgc := symexec.DefaultConfig()
	cfgc.Solver = opts
	cfgc.PathTimeout = pathTimeout
	cfgc.MaxStates = maxStates
	cfgc.MaxSteps = maxSteps
	start := time.Now()
	findings, stats, err := symexec.AnalyzeProgram(prog, cfgc)
	elapsed := time.Since(start)
	if err != nil {
		return Fig12Row{}, err
	}
	row := Fig12Row{
		Defect: d, FG: stats.Blocks, C: stats.Constraints, TS: elapsed, Findings: len(findings),
		SolveStates: stats.SolveStates, SolveSteps: stats.SolveSteps, ExhaustedPaths: stats.ExhaustedPaths,
	}
	if len(findings) > 0 {
		row.Exploit = findings[0].Inputs["POST:"+d.Name+"_id"]
	}
	return row, nil
}

// Figure12 runs every defect. When skipBig is set the pathological
// warp/secure case is skipped (it takes minutes by design, reproducing the
// paper's 577 s row); pass false to measure it too.
func Figure12(opts core.Options, skipBig bool) ([]Fig12Row, error) {
	return Figure12Budget(opts, skipBig, 0, 0, 0)
}

// Figure12Budget is Figure12 under per-path solver budgets (see
// RunDefectBudget). With a deadline set, the pathological row can be
// included without the multi-minute wait: its solve trips the budget and
// the row records the exhaustion instead.
func Figure12Budget(opts core.Options, skipBig bool, pathTimeout time.Duration, maxStates, maxSteps int64) ([]Fig12Row, error) {
	var rows []Fig12Row
	for _, d := range corpus.Defects() {
		if skipBig && d.Big {
			rows = append(rows, Fig12Row{Defect: d, FG: -1})
			continue
		}
		row, err := RunDefectBudget(d, opts, pathTimeout, maxStates, maxSteps)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", d.App, d.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFigure12 renders the results table with published and measured
// values side by side, plus the budget counters of each row's solves.
func FormatFigure12(rows []Fig12Row) string {
	var b strings.Builder
	b.WriteString("Figure 12 — per-defect results (published vs. measured)\n")
	fmt.Fprintf(&b, "%-10s %-10s %13s %11s %12s %12s %10s %10s %6s  %s\n",
		"App", "Defect", "|FG| pub/meas", "|C| pub/meas", "TS pub (s)", "TS meas (s)", "states", "steps", "exh", "exploit")
	for _, r := range rows {
		if r.FG < 0 {
			fmt.Fprintf(&b, "%-10s %-10s %13s %11s %12.3f %12s %10s %10s %6s  %s\n",
				r.Defect.App, r.Defect.Name, "-", "-", r.Defect.PaperTS, "(skipped)", "-", "-", "-", "")
			continue
		}
		exh := "-"
		if r.ExhaustedPaths > 0 {
			exh = fmt.Sprintf("%d", r.ExhaustedPaths)
		}
		fmt.Fprintf(&b, "%-10s %-10s %6d/%-6d %5d/%-5d %12.3f %12.3f %10d %10d %6s  %q\n",
			r.Defect.App, r.Defect.Name,
			r.Defect.WantFG, r.FG,
			r.Defect.WantC, r.C,
			r.Defect.PaperTS, r.TS.Seconds(), r.SolveStates, r.SolveSteps, exh, r.Exploit)
	}
	return b.String()
}

// AblationRow is one solver-option variant measured on a reference defect.
type AblationRow struct {
	Name string
	Opts core.Options
	TS   time.Duration
}

// AblationVariants are the solver configurations the ablation study
// compares (see DESIGN.md and BenchmarkAblation).
func AblationVariants() []AblationRow {
	return []AblationRow{
		{Name: "baseline", Opts: core.Options{}},
		{Name: "no-maximalize", Opts: core.Options{NoMaximalize: true}},
		{Name: "raw-constants", Opts: core.Options{RawConstants: true}},
		{Name: "minimize-intermediates", Opts: core.Options{Minimize: true}},
		{Name: "sequential-groups", Opts: core.Options{Sequential: true}},
	}
}

// Ablation measures every variant on the given defect.
func Ablation(defect string) ([]AblationRow, error) {
	d, ok := corpus.DefectByName(defect)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown defect %q", defect)
	}
	rows := AblationVariants()
	for i := range rows {
		res, err := RunDefect(d, rows[i].Opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", rows[i].Name, err)
		}
		rows[i].TS = res.TS
	}
	return rows, nil
}

// FormatAblation renders the ablation table.
func FormatAblation(defect string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Solver-option ablation on %s\n", defect)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-24s %8.3fs\n", r.Name, r.TS.Seconds())
	}
	return b.String()
}

// ShapeReport checks the paper's headline claims against measured rows:
// every defect yields an exploit, all non-pathological defects solve fast,
// and the pathological case is at least an order of magnitude slower than
// the slowest ordinary one.
type ShapeReport struct {
	AllExploitable   bool
	FastCount        int           // defects under FastThreshold
	SlowestOrdinary  time.Duration // slowest non-Big defect
	Pathological     time.Duration // warp/secure, 0 when skipped
	PathologicalSkip bool
}

// FastThreshold is the paper's "less than one second" line.
const FastThreshold = time.Second

// Shape summarizes the measured rows against the paper's claims.
func Shape(rows []Fig12Row) ShapeReport {
	rep := ShapeReport{AllExploitable: true}
	for _, r := range rows {
		if r.FG < 0 {
			rep.PathologicalSkip = true
			continue
		}
		if r.Findings == 0 {
			rep.AllExploitable = false
		}
		if r.Defect.Big {
			rep.Pathological = r.TS
			continue
		}
		if r.TS < FastThreshold {
			rep.FastCount++
		}
		if r.TS > rep.SlowestOrdinary {
			rep.SlowestOrdinary = r.TS
		}
	}
	return rep
}
