// Package sum exercises every summary dimension the interproc package
// computes; the test asserts the summaries directly (no want comments).
package sum

import (
	"sync"

	"budget"
)

type box struct{ v *int }

var global *int

// derefDirect dereferences its parameter unconditionally.
func derefDirect(p *int) int { return *p }

// derefGuarded is safe for nil callers: the deref is dominated by a check.
func derefGuarded(p *int) int {
	if p == nil {
		return 0
	}
	return *p
}

// derefTransitive panics for nil q via derefDirect.
func derefTransitive(q *int) int { return derefDirect(q) }

// derefRecursive is mutually recursive with derefRecursive2 and derefs on
// the base case: the SCC fixpoint must find it.
func derefRecursive(p *int, n int) int {
	if n == 0 {
		return *p
	}
	return derefRecursive2(p, n-1)
}

func derefRecursive2(p *int, n int) int { return derefRecursive(p, n) }

// storesField stores its parameter into a field.
func storesField(b *box, p *int) { b.v = p }

// storesGlobal stores its parameter into a package-level variable.
func storesGlobal(p *int) { global = p }

// storesTransitive escapes p through storesField.
func storesTransitive(b *box, p *int) { storesField(b, p) }

// noStore keeps its parameter local.
func noStore(p *int) int {
	if p == nil {
		return 0
	}
	return *p + 1
}

// derefCoNil dereferences b only on a's nil branch: the panic needs both
// parameters nil at once, so neither per-parameter bit may be set (a
// caller passing a non-nil a cannot trip it).
func derefCoNil(a, b *int) int {
	if a == nil {
		return *b
	}
	return 0
}

// derefAfterGuard dereferences b on a's non-nil branch: nil b alone
// reaches it, so b's bit must be set even though a participates in the
// branching.
func derefAfterGuard(a, b *int) int {
	if a == nil {
		return 0
	}
	return *b
}

// DeterminizeB mimics a budgeted variant: *B name, budget first, error last.
func DeterminizeB(bud *budget.Budget, n int) (int, error) {
	if err := bud.Check("determinize"); err != nil {
		return 0, err
	}
	return n, nil
}

// threadsBudget passes its budget into budgeted work.
func threadsBudget(bud *budget.Budget, n int) (int, error) {
	return DeterminizeB(bud, n)
}

// threadsBudgetDeep threads through an intermediate helper.
func threadsBudgetDeep(bud *budget.Budget, n int) (int, error) {
	return threadsBudget(bud, n)
}

// ignoresBudget takes a budget but never uses it for budgeted work.
func ignoresBudget(bud *budget.Budget, n int) int { return n }

// blockSend blocks on a channel send.
func blockSend(ch chan int) { ch <- 1 }

// blockSelectNoDefault blocks in a select without default.
func blockSelectNoDefault(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// nonBlockingSelect cannot park: every comm has the default escape.
func nonBlockingSelect(ch chan int) bool {
	select {
	case ch <- 1:
		return true
	default:
		return false
	}
}

// blockTransitive blocks through blockSend.
func blockTransitive(ch chan int) { blockSend(ch) }

// goDoesNotBlock spawns blocking work but does not block itself.
func goDoesNotBlock(ch chan int) { go blockSend(ch) }

// blockSeeded calls the seeded budget checkpoint.
func blockSeeded(bud *budget.Budget) error { return bud.Check("stage") }

type guarded struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
}

// locksMu acquires the receiver's mutex.
func (g *guarded) locksMu() {
	g.mu.Lock()
	defer g.mu.Unlock()
}

// locksRW read-locks the receiver's RWMutex.
func (g *guarded) locksRW() int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return len(g.data)
}

// locksTransitive acquires mu through a same-receiver call.
func (g *guarded) locksTransitive() { g.locksMu() }

// lnode is a self-referential type with a per-node mutex; lockChain
// recurses through the receiver chain. The summary fixpoint must converge
// with the receiver-relative path set bounded ("mu", not "next.mu",
// "next.next.mu", ...) instead of diverging.
type lnode struct {
	mu   sync.Mutex
	next *lnode
	v    int
}

func (n *lnode) lockChain() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.next == nil {
		return n.v
	}
	return n.next.lockChain() + n.v
}

// lockChainMutual recurses via a partner method, exercising the same
// bound for a multi-member SCC.
func (n *lnode) lockChainMutual() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lockChainPartner()
}

func (n *lnode) lockChainPartner() int {
	if n.next == nil {
		return n.v
	}
	return n.next.lockChainMutual() + n.v
}

var globalMu sync.Mutex

// locksGlobal acquires a package-level mutex.
func locksGlobal() {
	globalMu.Lock()
	defer globalMu.Unlock()
}

// locksGlobalTransitive acquires it through a call.
func locksGlobalTransitive() { locksGlobal() }
