// Package budget is a minimal stand-in for dprle/internal/budget so the
// interproc fixtures exercise the budget-threading summaries.
package budget

import "errors"

type Budget struct {
	steps int64
}

var ErrExhausted = errors.New("budget exhausted")

func (b *Budget) Check(stage string) error {
	if b == nil {
		return nil
	}
	b.steps++
	return nil
}
