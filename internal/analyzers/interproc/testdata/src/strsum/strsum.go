// Fixture for string-language result summaries: helpers that assemble
// strings the summarizer must bound, plus recursive shapes that must
// converge through widening.
package strsum

import "fmt"

func constResult() string { return "select" }

func twoReturns(cond bool) string {
	if cond {
		return "a"
	}
	return "b"
}

func quoteArg(u string) string {
	return "'" + u + "'"
}

func sprintfHelper(name string) string {
	return fmt.Sprintf("select * from t where name = '%s'", name)
}

func viaHelper(u string) string {
	return quoteArg(u) + "!"
}

func namedResult() (q string) {
	q = "x"
	q += "y"
	return
}

func multiResult() (string, int) {
	return "m", 1
}

// Mutually recursive growth: the SCC fixpoint must widen to Σ* rather
// than diverge.
func growA(n int) string {
	if n == 0 {
		return ""
	}
	return "a" + growB(n-1)
}

func growB(n int) string {
	if n == 0 {
		return ""
	}
	return "b" + growA(n-1)
}

func notAString() int { return 3 }
