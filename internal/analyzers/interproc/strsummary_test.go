package interproc

import (
	"testing"

	"dprle/internal/analysis"
	"dprle/internal/analysis/callgraph"
	"dprle/internal/analyzers/strfacts"
)

// loadStrSummaries computes summaries for the strsum fixture, keyed by
// callgraph node name.
func loadStrSummaries(t *testing.T) map[string]FuncSummary {
	t.Helper()
	l := analysis.NewSourceLoader("testdata/src")
	pkg, err := l.Load("strsum")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	g := callgraph.Build(pkg.Info, pkg.Files)
	sums, degraded := computeSummaries(pkg.Info, g)
	if degraded != 0 {
		t.Fatalf("computeSummaries degraded %d SCCs, want 0", degraded)
	}
	out := map[string]FuncSummary{}
	for _, n := range g.Nodes {
		out[n.Name()] = sums[n.ID]
	}
	return out
}

func strResult(t *testing.T, sums map[string]FuncSummary, fn string, i int) strfacts.Val {
	t.Helper()
	s, ok := sums[fn]
	if !ok {
		t.Fatalf("no summary for %s", fn)
	}
	if i >= len(s.StringResults) {
		t.Fatalf("%s: StringResults has %d entries, want index %d", fn, len(s.StringResults), i)
	}
	return s.StringResults[i]
}

func wantAccepts(t *testing.T, fn string, v strfacts.Val, members ...string) {
	t.Helper()
	if v.IsTop() {
		return
	}
	for _, w := range members {
		if !v.Machine().Accepts(w) {
			t.Errorf("%s: summary rejects %q", fn, w)
		}
	}
}

func wantRejects(t *testing.T, fn string, v strfacts.Val, nonMembers ...string) {
	t.Helper()
	if v.IsTop() {
		t.Errorf("%s: summary is Σ*, cannot reject %q", fn, nonMembers)
		return
	}
	for _, w := range nonMembers {
		if v.Machine().Accepts(w) {
			t.Errorf("%s: summary accepts %q", fn, w)
		}
	}
}

func TestStringResultSummaries(t *testing.T) {
	sums := loadStrSummaries(t)

	v := strResult(t, sums, "constResult", 0)
	wantAccepts(t, "constResult", v, "select")
	wantRejects(t, "constResult", v, "", "insert")

	v = strResult(t, sums, "twoReturns", 0)
	wantAccepts(t, "twoReturns", v, "a", "b")
	wantRejects(t, "twoReturns", v, "c", "ab")

	// Parameter is unconstrained, so the summary is 'Σ*' — quotes pinned,
	// middle free.
	v = strResult(t, sums, "quoteArg", 0)
	wantAccepts(t, "quoteArg", v, "'bob'", "''")
	wantRejects(t, "quoteArg", v, "bob", "'unterminated")

	v = strResult(t, sums, "sprintfHelper", 0)
	wantAccepts(t, "sprintfHelper", v, "select * from t where name = 'x'")
	wantRejects(t, "sprintfHelper", v, "select * from t where name = x")

	// viaHelper splices quoteArg's summary in at the call site.
	v = strResult(t, sums, "viaHelper", 0)
	wantAccepts(t, "viaHelper", v, "'bob'!")
	wantRejects(t, "viaHelper", v, "'bob'", "bob!")

	v = strResult(t, sums, "namedResult", 0)
	wantAccepts(t, "namedResult", v, "xy")
	wantRejects(t, "namedResult", v, "x", "yx")

	// Non-string results stay at the zero value (Σ*), and the string slot
	// of a mixed signature is still bounded.
	s := sums["multiResult"]
	if len(s.StringResults) != 2 {
		t.Fatalf("multiResult: StringResults has %d entries, want 2", len(s.StringResults))
	}
	wantAccepts(t, "multiResult", s.StringResults[0], "m")
	wantRejects(t, "multiResult", s.StringResults[0], "n")
	if !s.StringResults[1].IsTop() {
		t.Error("multiResult: non-string result slot should be Σ*")
	}

	// Functions with no string results carry no vector at all.
	if got := sums["notAString"].StringResults; got != nil {
		t.Errorf("notAString: StringResults = %v, want nil", got)
	}
}

// TestRecursiveStringSummaryWidens checks the SCC fixpoint terminates on
// mutually recursive string growth by widening instead of diverging: the
// driver enforces the height bound, so mere convergence (degraded == 0 in
// the loader) is the property. The result must still cover every concrete
// iterate.
func TestRecursiveStringSummaryWidens(t *testing.T) {
	sums := loadStrSummaries(t)
	for _, fn := range []string{"growA", "growB"} {
		v := strResult(t, sums, fn, 0)
		wantAccepts(t, fn, v, "", "ab", "abab", "ba", "baba")
	}
}
