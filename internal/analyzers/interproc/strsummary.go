// String-language result summaries: for every function whose signature
// returns a string, the summary records a regular language over-
// approximating each string result, computed with parameters
// unconstrained (Σ*). Callers — the strlang analyzer — splice these
// languages in at call sites, so a query assembled in a helper is as
// visible as one assembled inline. Summaries flow bottom-up over the
// call-graph SCCs like every other field of FuncSummary; within an SCC
// the strfacts generation cap widens recursive growth to Σ*, so the
// fixpoint converges inside the summarizer's height bound.

package interproc

import (
	"go/ast"

	"dprle/internal/analysis/callgraph"
	"dprle/internal/analysis/dataflow"
	"dprle/internal/analyzers/strfacts"
)

// stringResults fills sum.StringResults for nodes with string-typed
// results. Failure modes (unanalyzable body, broken fixpoint) leave the
// affected entries at Σ* — the no-assumption direction.
func (s *summarizer) stringResults(n *callgraph.Node, sum *FuncSummary, getSum func(*callgraph.Node) FuncSummary) {
	sig := n.Type()
	if sig == nil || n.Body() == nil {
		return
	}
	results := sig.Results()
	hasString := false
	for i := 0; i < results.Len(); i++ {
		if strfacts.IsString(results.At(i).Type()) {
			hasString = true
		}
	}
	if !hasString {
		return
	}
	fnNode := ast.Node(n.Decl)
	if n.Lit != nil {
		fnNode = n.Lit
	}
	siteCallee := map[*ast.CallExpr]*callgraph.Node{}
	for _, site := range n.Sites {
		if site.Callee != nil && site.Mode == callgraph.Call {
			siteCallee[site.Call] = site.Callee
		}
	}
	dom := &strfacts.Domain{}
	lat := &strfacts.Lattice{
		Info:    s.info,
		Tracked: strfacts.TrackedStrings(s.info, fnNode, n.Body()),
		Dom:     dom,
		Model: func(call *ast.CallExpr, eval func(ast.Expr) strfacts.Val) (strfacts.Val, bool) {
			callee, ok := siteCallee[call]
			if !ok {
				return strfacts.Top(), false
			}
			cs := getSum(callee)
			if len(cs.StringResults) == 1 {
				return cs.StringResults[0], true
			}
			return strfacts.Top(), false
		},
	}

	out := make([]strfacts.Val, results.Len()) // zero entries are Σ*
	seen := false
	visitReturn := func(ret *ast.ReturnStmt, f *strfacts.Facts) {
		vals := make([]strfacts.Val, results.Len())
		switch {
		case len(ret.Results) == results.Len():
			for i := range vals {
				if strfacts.IsString(results.At(i).Type()) {
					vals[i] = lat.Eval(ret.Results[i], f)
				}
			}
		case len(ret.Results) == 0:
			// Bare return: named results hold their flow facts.
			for i := range vals {
				vals[i] = f.Get(results.At(i))
			}
		default:
			// return f() forwarding a multi-value call: no model, Σ*.
		}
		if !seen {
			copy(out, vals)
			seen = true
			return
		}
		for i := range out {
			out[i] = dom.Join(out[i], vals[i])
		}
	}

	if len(lat.Tracked) == 0 {
		// No flow facts to compute: evaluate returns under the empty fact.
		empty := &strfacts.Facts{}
		ast.Inspect(n.Body(), func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				visitReturn(m, empty)
			}
			return true
		})
	} else {
		g := dataflow.New(n.Body())
		res, err := dataflow.Solve(g, lat, lat, dataflow.Forward)
		if err != nil {
			// Broken fixpoint: no assumptions about any result.
			sum.StringResults = make([]strfacts.Val, results.Len())
			return
		}
		dataflow.WalkForward(g, lat, lat, res, func(node ast.Node, before dataflow.Fact) {
			if ret, ok := node.(*ast.ReturnStmt); ok {
				visitReturn(ret, before.(*strfacts.Facts))
			}
		})
	}
	sum.StringResults = out
}

// eqStringResults compares summary string-result vectors as lattice
// elements: language and generation both count, so a widening marker
// rising inside an SCC keeps the fixpoint iterating until it propagates.
func eqStringResults(a, b []strfacts.Val) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].SameLang(b[i]) || a[i].Gen() != b[i].Gen() {
			return false
		}
	}
	return true
}
