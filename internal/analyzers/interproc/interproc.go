// Package interproc computes the caller-visible function summaries the
// interprocedural analyzers (nilness, budgetflow, locksafe) consume: for
// every function in the package under analysis, what a caller can observe
// without reading the body. Summaries are computed bottom-up over the
// package-local call graph (internal/analysis/callgraph) — callees before
// callers, mutually recursive functions iterated to a fixpoint — and each
// per-function pass reuses the existing intraprocedural machinery: the
// dataflow CFG/fixpoint engine and the nilfacts lattice.
//
// The summary lattice has fixed height (a handful of booleans per
// parameter plus a lock set bounded by the locks the package mentions), so
// SCC iteration terminates by construction; the callgraph driver enforces
// the bound explicitly.
//
// Soundness caveats (see DESIGN.md §7.2): the graph is package-local, so
// calls into other packages contribute only seeded facts (a fixed list of
// known-blocking standard-library and solver entry points); dynamic
// dispatch through interfaces and unpinnable function values is skipped
// conservatively — no summary, no assumption — with the skip count
// surfaced through Pass.CountStat under -stats.
package interproc

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"

	"dprle/internal/analysis"
	"dprle/internal/analysis/callgraph"
	"dprle/internal/analysis/dataflow"
	"dprle/internal/analyzers/lintutil"
	"dprle/internal/analyzers/nilfacts"
	"dprle/internal/analyzers/strfacts"
)

// StatDynamicSkips is the Pass.CountStat counter name under which the
// number of conservatively skipped dynamic call sites is reported.
const StatDynamicSkips = "dynamic-calls-skipped"

// StatDegradedSCCs counts call-graph components whose summary fixpoint
// exceeded the lattice-height bound and was degraded to the empty summary
// (no caller-visible assumptions) rather than failing the run.
const StatDegradedSCCs = "summary-sccs-degraded"

// maxLockPathSegs caps the receiver-relative field-path depth recorded in
// RecvLocks. Deeper paths (possible only through long acyclic call chains,
// e.g. a.b.c.d.e.mu) are dropped — the no-assumption direction — keeping
// the lock-summary lattice finite regardless of how types nest.
const maxLockPathSegs = 4

// Enabled gates the interprocedural layer. When false (dprlelint
// -interproc=false), consumers fall back to their intraprocedural
// behavior: Of still works if called, but the analyzers consult this flag
// before using summaries, so a summary-layer bug can be bisected away
// without disabling the analyzers that host the findings.
var Enabled = true

// FuncSummary is one function's caller-visible abstraction. Parameter
// indices refer to the declared parameter list (receivers are deliberately
// excluded: the solver's nil-receiver contract makes nil-receiver method
// calls legal).
type FuncSummary struct {
	// DerefsParamWhenNil[i] reports that calling the function with a nil
	// i-th argument — and every other nilable argument non-nil —
	// dereferences it (field access, *p, nil-map write, or a transitive
	// call that does) on some feasible path, i.e. the call panics for a
	// nil argument on its own. Each parameter gets its own boundary solve;
	// derefs reachable only when several parameters are nil at once are
	// deliberately not recorded (a caller-side check cannot distinguish
	// them from the feasible case, so they would be false positives).
	DerefsParamWhenNil []bool
	// StoresParam[i] reports that the i-th parameter may be stored into a
	// global, a field, a container element, or a channel (directly or
	// through a transitive call) — it escapes the call.
	StoresParam []bool
	// BudgetParams[i] reports that the i-th parameter is a *budget.Budget
	// that the function threads into budgeted work (a *B budgeted variant,
	// or another budget-requiring callee): passing nil exempts that work
	// from accounting.
	BudgetParams []bool
	// MayBlock reports that the function may perform a blocking or
	// unbounded operation on the calling goroutine: channel send/receive,
	// a default-less select, ranging over a channel, or a call to a seeded
	// blocking function (budget.Check, solver entry points, io.ReadAll,
	// WaitGroup.Wait, ...). go statements are excluded (the caller does
	// not block); defer bodies are excluded from the caller's blocking
	// profile (they run at return, after the lock-discipline window the
	// consumers care about — see DESIGN.md §7.2 for the caveat).
	MayBlock bool
	// BlockReason names the first (in source order) blocking construct,
	// for diagnostics: "channel send", "select without default",
	// "call to io.ReadAll", "call to helper (may block)", ...
	BlockReason string
	// RecvLocks lists, for methods, the receiver-relative field paths of
	// sync.Mutex/RWMutex values the function may acquire (directly or via
	// same-receiver method calls): "mu", "state.mu", or "" when the
	// receiver itself is the mutex (embedded). Paths are capped at
	// maxLockPathSegs segments, and recursion through a self-referential
	// receiver chain (n.next.M() inside M) contributes nothing — both drop
	// in the no-assumption direction so the set stays finite. Sorted.
	RecvLocks []string
	// GlobalLocks lists package-level mutex variables the function may
	// acquire. Sorted by name for determinism.
	GlobalLocks []*types.Var
	// StringResults[i] is a regular language over-approximating the i-th
	// result of the function, computed with every parameter unconstrained
	// (Σ*). Only set when the signature has at least one string-typed
	// result; non-string entries — and anything the analysis cannot bound
	// — are Σ*. Consumed by the strlang analyzer to see through helper
	// calls that assemble strings.
	StringResults []strfacts.Val
}

// Info bundles the package call graph with its computed summaries.
type Info struct {
	Graph *callgraph.Graph
	// Summaries is indexed by callgraph node ID.
	Summaries []FuncSummary
	// DegradedSCCs counts components whose summary fixpoint failed to
	// converge and fell back to empty summaries (surfaced under -stats).
	DegradedSCCs int
}

// ForFunc returns the summary for a declared function or method of the
// analyzed package.
func (in *Info) ForFunc(fn *types.Func) (FuncSummary, bool) {
	n, ok := in.Graph.ByFunc[fn]
	if !ok {
		return FuncSummary{}, false
	}
	return in.Summaries[n.ID], true
}

var (
	cacheMu sync.Mutex
	cache   = map[*types.Package]*Info{}
)

// Of computes (or returns the memoized) interprocedural info for the
// package a Pass presents. Analyzers running over the same package share
// one computation; the result depends only on the package content, so
// memoization cannot change findings. The dynamic-dispatch skip and
// degraded-SCC counts are recorded on the calling analyzer's Pass each
// time, so every consumer's -stats row shows the approximation it ran
// under. Summary computation cannot fail: components that do not converge
// degrade to empty summaries instead of aborting the analyzers.
func Of(pass *analysis.Pass) *Info {
	cacheMu.Lock()
	in, ok := cache[pass.Pkg]
	cacheMu.Unlock()
	if !ok {
		g := callgraph.Build(pass.TypesInfo, pass.Files)
		sums, degraded := computeSummaries(pass.TypesInfo, g)
		in = &Info{Graph: g, Summaries: sums, DegradedSCCs: degraded}
		cacheMu.Lock()
		cache[pass.Pkg] = in
		cacheMu.Unlock()
	}
	pass.CountStat(StatDynamicSkips, in.Graph.DynamicSkips)
	pass.CountStat(StatDegradedSCCs, in.DegradedSCCs)
	return in
}

// summarizer implements callgraph.Summarizer for FuncSummary.
type summarizer struct {
	info   *types.Info
	g      *callgraph.Graph
	height int
}

func computeSummaries(info *types.Info, g *callgraph.Graph) ([]FuncSummary, int) {
	// Height: per function the summary can rise once per parameter bit
	// (three bit-vectors), once for MayBlock, and once per lock path that
	// can enter a RecvLocks/GlobalLocks set. Lock paths originate at mutex
	// acquisition sites (each contributes one receiver-relative or global
	// key, possibly re-prefixed along acyclic call chains up to the
	// maxLockPathSegs cap), so the site count bounds the distinct keys
	// that can propagate within any one SCC.
	maxParams, lockSites, maxResults := 0, 0, 0
	for _, n := range g.Nodes {
		if sig := n.Type(); sig != nil {
			if sig.Params().Len() > maxParams {
				maxParams = sig.Params().Len()
			}
			if sig.Results().Len() > maxResults {
				maxResults = sig.Results().Len()
			}
		}
		for _, site := range n.Sites {
			if _, ok := MutexMethod(site.Fn); ok {
				lockSites++
			}
		}
	}
	// Each string result rises through at most 2·MaxGen+6 lattice steps
	// (one per generation and one per language at each generation) before
	// the strfacts widening pins it at Σ*.
	strHeight := maxResults * (2*strfacts.MaxGen + 6)
	s := &summarizer{info: info, g: g, height: 3*maxParams + lockSites + strHeight + len(g.Nodes) + 8}
	raw, degraded := callgraph.Summaries(g, s)
	out := make([]FuncSummary, len(raw))
	for i, r := range raw {
		out[i] = r.(FuncSummary)
	}
	return out, degraded
}

func (s *summarizer) Bottom() callgraph.Summary { return FuncSummary{} }
func (s *summarizer) Height() int               { return s.height }

func (s *summarizer) Equal(a, b callgraph.Summary) bool {
	x, y := a.(FuncSummary), b.(FuncSummary)
	if x.MayBlock != y.MayBlock || x.BlockReason != y.BlockReason {
		return false
	}
	if !eqBools(x.DerefsParamWhenNil, y.DerefsParamWhenNil) ||
		!eqBools(x.StoresParam, y.StoresParam) ||
		!eqBools(x.BudgetParams, y.BudgetParams) {
		return false
	}
	if len(x.RecvLocks) != len(y.RecvLocks) || len(x.GlobalLocks) != len(y.GlobalLocks) {
		return false
	}
	for i := range x.RecvLocks {
		if x.RecvLocks[i] != y.RecvLocks[i] {
			return false
		}
	}
	for i := range x.GlobalLocks {
		if x.GlobalLocks[i] != y.GlobalLocks[i] {
			return false
		}
	}
	return eqStringResults(x.StringResults, y.StringResults)
}

func eqBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Summarize computes one node's summary from its body and the current
// summaries of its callees.
func (s *summarizer) Summarize(n *callgraph.Node, get func(*callgraph.Node) callgraph.Summary) callgraph.Summary {
	sum := FuncSummary{}
	sig := n.Type()
	params := paramVars(sig)
	if len(params) > 0 {
		sum.DerefsParamWhenNil = make([]bool, len(params))
		sum.StoresParam = make([]bool, len(params))
		sum.BudgetParams = make([]bool, len(params))
	}
	getSum := func(node *callgraph.Node) FuncSummary { return get(node).(FuncSummary) }

	s.nilDerefParams(n, params, &sum, getSum)
	s.storesAndBudget(n, params, &sum, getSum)
	s.blocking(n, &sum, getSum)
	s.locks(n, &sum, getSum)
	s.stringResults(n, &sum, getSum)
	return sum
}

// paramVars returns the declared parameter objects of a node's signature
// (empty for function literals and parameterless functions).
func paramVars(sig *types.Signature) []*types.Var {
	if sig == nil {
		return nil
	}
	ps := sig.Params()
	out := make([]*types.Var, ps.Len())
	for i := 0; i < ps.Len(); i++ {
		out[i] = ps.At(i)
	}
	return out
}

// paramIndex resolves a bare identifier argument to a parameter index of
// the enclosing node, or -1.
func paramIndex(info *types.Info, params []*types.Var, e ast.Expr) int {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return -1
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil {
		return -1
	}
	for i, p := range params {
		if p == v {
			return i
		}
	}
	return -1
}

// nilable mirrors the nilness analyzer's type filter.
func nilable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map:
		return true
	case *types.Interface:
		return types.Identical(t, types.Universe.Lookup("error").Type())
	}
	return false
}

// boundaryLattice wraps the nilfacts lattice with a custom entry fact:
// every analyzed parameter starts provably nil, so any deref the fixpoint
// reaches with the fact still Nil is a deref a nil-passing caller triggers.
type boundaryLattice struct {
	*nilfacts.Lattice
	entry *nilfacts.Facts
}

func (b boundaryLattice) Boundary() dataflow.Fact { return b.entry }

// nilDerefParams fills DerefsParamWhenNil with one boundary solve per
// tracked parameter: that parameter enters provably nil, every other
// tracked parameter enters non-nil, and a dereference (or transitive
// nil-derefing call) reached while the fact is still Nil marks the bit.
// Seeding the parameters one at a time keeps the summary faithful to its
// per-parameter meaning: a deref guarded by another parameter's nil check
// (`if a == nil { return *b }`) is feasible only when both are nil at
// once, so it must not mark b — a caller passing a provably non-nil a
// cannot trip it. Co-nil panics are deliberately under-reported.
func (s *summarizer) nilDerefParams(n *callgraph.Node, params []*types.Var, sum *FuncSummary, getSum func(*callgraph.Node) FuncSummary) {
	if len(params) == 0 {
		return
	}
	fnNode := ast.Node(n.Decl)
	if n.Lit != nil {
		fnNode = n.Lit
	}
	tracked := nilfacts.TrackedVars(s.info, fnNode, n.Body(), nilable)
	var trackedParams []*types.Var
	for _, p := range params {
		if tracked[p] {
			trackedParams = append(trackedParams, p)
		}
	}
	if len(trackedParams) == 0 {
		return
	}
	lat := &nilfacts.Lattice{Info: s.info, Tracked: tracked}
	g := dataflow.New(n.Body())
	// Map call sites to callee nodes for the transitive check.
	siteCallee := map[*ast.CallExpr]*callgraph.Node{}
	for _, site := range n.Sites {
		if site.Callee != nil && site.Mode == callgraph.Call {
			siteCallee[site.Call] = site.Callee
		}
	}
	for _, p := range trackedParams {
		s.nilDerefOneParam(n, p, params, trackedParams, lat, g, sum, siteCallee, getSum)
	}
}

// nilDerefOneParam runs the boundary solve for a single nil-seeded
// parameter p and marks its DerefsParamWhenNil bit.
func (s *summarizer) nilDerefOneParam(n *callgraph.Node, p *types.Var, params, trackedParams []*types.Var, lat *nilfacts.Lattice, g *dataflow.CFG, sum *FuncSummary, siteCallee map[*ast.CallExpr]*callgraph.Node, getSum func(*callgraph.Node) FuncSummary) {
	entry := map[*types.Var]nilfacts.Val{p: nilfacts.Nil}
	for _, q := range trackedParams {
		if q != p {
			entry[q] = nilfacts.NonNil
		}
	}
	blat := boundaryLattice{Lattice: lat, entry: &nilfacts.Facts{Vals: entry}}
	res, err := dataflow.Solve(g, blat, lat, dataflow.Forward)
	if err != nil {
		// A broken fixpoint leaves the summary empty — the conservative
		// direction (no assumption about the callee).
		return
	}
	mark := func() {
		for i, pp := range params {
			if pp == p {
				sum.DerefsParamWhenNil[i] = true
			}
		}
	}
	// stillNil reports whether e names p while the fact is still Nil.
	stillNil := func(e ast.Expr, f *nilfacts.Facts) bool {
		v := usedVar(s.info, e)
		return v == p && f.Get(v) == nilfacts.Nil
	}
	dataflow.WalkForward(g, blat, lat, res, func(node ast.Node, before dataflow.Fact) {
		f := before.(*nilfacts.Facts)
		if rng, ok := node.(*ast.RangeStmt); ok {
			node = rng.X
		}
		// Nil-map writes through the parameter.
		if as, ok := node.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && stillNil(ix.X, f) {
					if _, isMap := p.Type().Underlying().(*types.Map); isMap {
						mark()
					}
				}
			}
		}
		ast.Inspect(node, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.StarExpr:
				if stillNil(m.X, f) {
					mark()
				}
			case *ast.SelectorExpr:
				sel, ok := s.info.Selections[m]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				if stillNil(m.X, f) {
					if _, isPtr := p.Type().Underlying().(*types.Pointer); isPtr {
						mark()
					}
				}
			case *ast.CallExpr:
				callee, ok := siteCallee[m]
				if !ok {
					return true
				}
				cs := getSum(callee)
				for j, arg := range m.Args {
					if j >= len(cs.DerefsParamWhenNil) || !cs.DerefsParamWhenNil[j] {
						continue
					}
					if stillNil(arg, f) {
						mark()
					}
				}
			}
			return true
		})
	})
}

func usedVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// storesAndBudget fills StoresParam and BudgetParams with a syntactic scan:
// direct stores/threads plus one transitive hop per fixpoint round through
// in-package callees.
func (s *summarizer) storesAndBudget(n *callgraph.Node, params []*types.Var, sum *FuncSummary, getSum func(*callgraph.Node) FuncSummary) {
	if len(params) == 0 {
		return
	}
	markStore := func(e ast.Expr) {
		if i := paramIndex(s.info, params, e); i >= 0 {
			sum.StoresParam[i] = true
		}
	}
	ast.Inspect(n.Body(), func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for i, lhs := range m.Lhs {
				if i >= len(m.Rhs) {
					break
				}
				switch ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					markStore(m.Rhs[i])
				case *ast.Ident:
					// A store to a package-level variable escapes too.
					id := ast.Unparen(lhs).(*ast.Ident)
					if v, ok := s.info.Uses[id].(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
						markStore(m.Rhs[i])
					}
				}
			}
		case *ast.SendStmt:
			markStore(m.Value)
		case *ast.CompositeLit:
			for _, el := range m.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					markStore(kv.Value)
				} else {
					markStore(el)
				}
			}
		}
		return true
	})

	for _, site := range n.Sites {
		// Budget threading: an argument that is a budget-typed parameter
		// passed into budgeted work, or used directly as the checkpoint
		// receiver (bud.Check(...) — the canonical *B variant body).
		if budgetCheckpoint(site.Fn) {
			if sel, ok := ast.Unparen(site.Call.Fun).(*ast.SelectorExpr); ok {
				if i := paramIndex(s.info, params, sel.X); i >= 0 && lintutil.IsBudgetPtr(params[i].Type()) {
					sum.BudgetParams[i] = true
				}
			}
		}
		var calleeSum FuncSummary
		if site.Callee != nil {
			calleeSum = getSum(site.Callee)
		}
		for j, arg := range site.Call.Args {
			i := paramIndex(s.info, params, arg)
			if i < 0 {
				continue
			}
			if j < len(calleeSum.StoresParam) && calleeSum.StoresParam[j] {
				sum.StoresParam[i] = true
			}
			if lintutil.IsBudgetPtr(params[i].Type()) {
				if site.Fn != nil && lintutil.IsBudgetedVariant(site.Fn) && j == 0 {
					sum.BudgetParams[i] = true
				}
				if j < len(calleeSum.BudgetParams) && calleeSum.BudgetParams[j] {
					sum.BudgetParams[i] = true
				}
			}
		}
	}
}

// budgetCheckpoint reports whether fn is the budget package's
// Check/Preflight accounting entry point.
func budgetCheckpoint(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	pkg := fn.Pkg().Path()
	base := pkg[strings.LastIndex(pkg, "/")+1:]
	return base == "budget" && (fn.Name() == "Check" || fn.Name() == "Preflight")
}

// blockSeeds recognizes known-blocking (or unbounded-work) functions
// outside the package: the budget checkpoint, solver entry points, body
// reads, and the standard library's obvious parking calls.
func BlockSeed(fn *types.Func) (string, bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	pkg := fn.Pkg().Path()
	base := pkg[strings.LastIndex(pkg, "/")+1:]
	name := fn.Name()
	switch {
	case base == "budget" && (name == "Check" || name == "Preflight"):
		return "call to budget checkpoint " + name, true
	case (base == "core" || base == "dprle") &&
		(strings.HasPrefix(name, "Solve") || strings.HasPrefix(name, "Decide")):
		return "call to solver entry point " + name, true
	case pkg == "io" && (name == "ReadAll" || name == "Copy" || name == "ReadFull"):
		return "call to io." + name, true
	case pkg == "time" && name == "Sleep":
		return "call to time.Sleep", true
	case pkg == "sync" && name == "Wait": // (*WaitGroup).Wait, (*Cond).Wait
		return "call to sync wait", true
	case pkg == "net/http" && (name == "Do" || name == "Get" || name == "Post" || name == "PostForm"):
		return "call to net/http " + name, true
	}
	return "", false
}

// blocking fills MayBlock/BlockReason: direct channel operations and
// default-less selects in this body, seeded external calls, and transitive
// blocking through ordinary in-package calls (go/defer excluded — a go
// statement does not block the caller, and deferred work runs at return).
func (s *summarizer) blocking(n *callgraph.Node, sum *FuncSummary, getSum func(*callgraph.Node) FuncSummary) {
	if reason, ok := directBlocker(s.info, n.Body()); ok {
		sum.MayBlock, sum.BlockReason = true, reason
		return
	}
	for _, site := range n.Sites {
		if site.Mode != callgraph.Call {
			continue
		}
		if reason, ok := BlockSeed(site.Fn); ok {
			sum.MayBlock, sum.BlockReason = true, reason
			return
		}
		if site.Callee != nil {
			if cs := getSum(site.Callee); cs.MayBlock {
				sum.MayBlock = true
				sum.BlockReason = "call to " + site.Callee.Name() + " (" + cs.BlockReason + ")"
				return
			}
		}
	}
}

// directBlocker scans one body (excluding nested literals) for channel
// operations that can park the goroutine. Comm clauses of a select that has
// a default case are non-blocking; a select without a default blocks.
func directBlocker(info *types.Info, body *ast.BlockStmt) (string, bool) {
	nonBlockingComm := map[ast.Node]bool{}
	reason, found := "", false
	ast.Inspect(body, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range m.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				reason, found = "select without default", true
				return false
			}
			for _, c := range m.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					nonBlockingComm[cc.Comm] = true
				}
			}
		case *ast.SendStmt:
			if !nonBlockingComm[m] {
				reason, found = "channel send", true
				return false
			}
		case *ast.UnaryExpr:
			if m.Op == token.ARROW && !insideNonBlockingComm(m, nonBlockingComm) {
				reason, found = "channel receive", true
				return false
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[m.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					reason, found = "range over channel", true
					return false
				}
			}
		}
		return true
	})
	return reason, found
}

// insideNonBlockingComm reports whether a receive expression is (part of)
// the comm statement of a select clause already marked non-blocking. The
// AST walk visits selects before their clause bodies, so the map is
// populated by the time the receive is reached; a receive nested deeper in
// the clause body is a plain blocking receive.
func insideNonBlockingComm(recv *ast.UnaryExpr, nonBlocking map[ast.Node]bool) bool {
	for comm := range nonBlocking {
		if comm.Pos() <= recv.Pos() && recv.End() <= comm.End() {
			return true
		}
	}
	return false
}

// mutexMethod recognizes calls to (*sync.Mutex)/(*sync.RWMutex)
// Lock/RLock/Unlock/RUnlock, returning the method name.
func MutexMethod(fn *types.Func) (string, bool) {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	name := named.Obj().Name()
	if name != "Mutex" && name != "RWMutex" {
		return "", false
	}
	return fn.Name(), true
}

// LockTarget resolves the receiver chain of a mutex-method call to its
// root: either a variable (local, parameter, or method receiver) plus the
// field path from it to the mutex, or a package-level mutex variable. The
// empty path means the variable itself is (or embeds) the mutex.
func LockTarget(info *types.Info, call *ast.CallExpr) (base *types.Var, path string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	var parts []string
	e := ast.Expr(sel.X)
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			if v == nil {
				return nil, "", false
			}
			// Reverse the collected parts into a dotted path.
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return v, strings.Join(parts, "."), true
		case *ast.SelectorExpr:
			parts = append(parts, x.Sel.Name)
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, "", false
		}
	}
}

// locks fills RecvLocks/GlobalLocks: direct Lock/RLock acquisitions rooted
// at the receiver or at package-level variables, plus one transitive hop
// through same-receiver method calls (r.helper() adds helper's receiver
// locks; r.sub.Method() adds them under "sub."). go/defer sites are
// excluded: a go'd acquisition happens on another goroutine, and deferred
// ones happen after return.
func (s *summarizer) locks(n *callgraph.Node, sum *FuncSummary, getSum func(*callgraph.Node) FuncSummary) {
	recv := recvVar(s.info, n)
	recvSet := map[string]bool{}
	globalSet := map[*types.Var]bool{}

	for _, site := range n.Sites {
		if site.Mode != callgraph.Call {
			continue
		}
		if m, ok := MutexMethod(site.Fn); ok && (m == "Lock" || m == "RLock") {
			base, path, ok := LockTarget(s.info, site.Call)
			if !ok {
				continue
			}
			if recv != nil && base == recv {
				recvSet[path] = true
			} else if base.Parent() != nil && base.Pkg() != nil && base.Parent() == base.Pkg().Scope() {
				globalSet[base] = true
			}
			continue
		}
		// Transitive: a method call whose receiver chain roots at our own
		// receiver pulls in that method's receiver-relative locks,
		// prefixed by the chain; any call pulls in global locks.
		if site.Callee == nil {
			continue
		}
		cs := getSum(site.Callee)
		for _, gv := range cs.GlobalLocks {
			globalSet[gv] = true
		}
		if recv != nil && len(cs.RecvLocks) > 0 {
			if base, path, ok := LockTarget(s.info, site.Call); ok && base == recv {
				if path != "" && s.g.SameSCC(n, site.Callee) {
					// Recursion through a self-referential receiver chain
					// (n.next.M() inside M, or mutually recursive methods
					// walking linked nodes): re-prefixing the callee's
					// paths every fixpoint round would grow them without
					// bound ("mu", "next.mu", "next.next.mu", ...). The
					// locks live on other list nodes, not on this
					// receiver, so dropping the contribution is the
					// no-assumption direction. Same-receiver recursion
					// (path == "") merges unprefixed and cannot grow.
					continue
				}
				for _, lp := range cs.RecvLocks {
					full := lp
					if path != "" {
						if full == "" {
							full = path
						} else {
							full = path + "." + full
						}
					}
					if pathSegs(full) > maxLockPathSegs {
						continue
					}
					recvSet[full] = true
				}
			}
		}
	}

	sum.RecvLocks = sortedKeys(recvSet)
	if len(globalSet) > 0 {
		gvs := make([]*types.Var, 0, len(globalSet))
		for v := range globalSet {
			gvs = append(gvs, v)
		}
		sort.Slice(gvs, func(i, j int) bool {
			if gvs[i].Name() != gvs[j].Name() {
				return gvs[i].Name() < gvs[j].Name()
			}
			return gvs[i].Pos() < gvs[j].Pos()
		})
		sum.GlobalLocks = gvs
	}
}

// pathSegs counts the dotted segments of a receiver-relative lock path
// ("" → 0, "mu" → 1, "state.mu" → 2).
func pathSegs(p string) int {
	if p == "" {
		return 0
	}
	return strings.Count(p, ".") + 1
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// recvVar returns the receiver variable of a method node, nil otherwise.
func recvVar(info *types.Info, n *callgraph.Node) *types.Var {
	if n.Decl == nil || n.Decl.Recv == nil || len(n.Decl.Recv.List) == 0 {
		return nil
	}
	names := n.Decl.Recv.List[0].Names
	if len(names) == 0 {
		return nil
	}
	v, _ := info.Defs[names[0]].(*types.Var)
	return v
}
