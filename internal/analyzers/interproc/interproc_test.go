package interproc

import (
	"reflect"
	"testing"

	"dprle/internal/analysis"
	"dprle/internal/analysis/callgraph"
)

// loadSummaries type-checks the sum fixture and returns its summaries keyed
// by callgraph node name.
func loadSummaries(t *testing.T) map[string]FuncSummary {
	t.Helper()
	l := analysis.NewSourceLoader("testdata/src")
	pkg, err := l.Load("sum")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	g := callgraph.Build(pkg.Info, pkg.Files)
	sums, degraded := computeSummaries(pkg.Info, g)
	if degraded != 0 {
		t.Fatalf("computeSummaries degraded %d SCCs, want 0", degraded)
	}
	out := map[string]FuncSummary{}
	for _, n := range g.Nodes {
		out[n.Name()] = sums[n.ID]
	}
	return out
}

func derefs(t *testing.T, sums map[string]FuncSummary, fn string) []bool {
	t.Helper()
	s, ok := sums[fn]
	if !ok {
		t.Fatalf("no summary for %s", fn)
	}
	return s.DerefsParamWhenNil
}

func TestDerefsParamWhenNil(t *testing.T) {
	sums := loadSummaries(t)
	cases := []struct {
		fn   string
		want []bool
	}{
		{"derefDirect", []bool{true}},
		{"derefGuarded", []bool{false}},
		{"derefTransitive", []bool{true}},
		{"derefRecursive", []bool{true, false}},  // SCC fixpoint
		{"derefRecursive2", []bool{true, false}}, // via the cycle partner
		{"noStore", []bool{false}},
		{"derefCoNil", []bool{false, false}},     // needs both nil at once
		{"derefAfterGuard", []bool{false, true}}, // nil b alone panics
	}
	for _, c := range cases {
		if got := derefs(t, sums, c.fn); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: DerefsParamWhenNil = %v, want %v", c.fn, got, c.want)
		}
	}
}

func TestStoresParam(t *testing.T) {
	sums := loadSummaries(t)
	cases := []struct {
		fn   string
		want []bool
	}{
		{"storesField", []bool{false, true}},
		{"storesGlobal", []bool{true}},
		{"storesTransitive", []bool{false, true}},
		{"noStore", []bool{false}},
	}
	for _, c := range cases {
		if got := sums[c.fn].StoresParam; !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: StoresParam = %v, want %v", c.fn, got, c.want)
		}
	}
}

func TestBudgetParams(t *testing.T) {
	sums := loadSummaries(t)
	cases := []struct {
		fn   string
		want []bool
	}{
		{"DeterminizeB", []bool{true, false}},      // bud.Check receiver
		{"threadsBudget", []bool{true, false}},     // arg 0 of a *B variant
		{"threadsBudgetDeep", []bool{true, false}}, // through a helper
		{"ignoresBudget", []bool{false, false}},
		{"blockSeeded", []bool{true}},
	}
	for _, c := range cases {
		if got := sums[c.fn].BudgetParams; !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: BudgetParams = %v, want %v", c.fn, got, c.want)
		}
	}
}

func TestMayBlock(t *testing.T) {
	sums := loadSummaries(t)
	cases := []struct {
		fn     string
		block  bool
		reason string
	}{
		{"blockSend", true, "channel send"},
		{"blockSelectNoDefault", true, "select without default"},
		{"nonBlockingSelect", false, ""},
		{"blockTransitive", true, "call to blockSend (channel send)"},
		{"goDoesNotBlock", false, ""},
		{"blockSeeded", true, "call to budget checkpoint Check"},
		{"DeterminizeB", true, "call to budget checkpoint Check"},
		{"threadsBudget", true, "call to DeterminizeB (call to budget checkpoint Check)"},
		{"derefDirect", false, ""},
		{"(*guarded).locksMu", false, ""},
	}
	for _, c := range cases {
		s, ok := sums[c.fn]
		if !ok {
			t.Fatalf("no summary for %s", c.fn)
		}
		if s.MayBlock != c.block || s.BlockReason != c.reason {
			t.Errorf("%s: MayBlock=%v reason=%q, want %v %q", c.fn, s.MayBlock, s.BlockReason, c.block, c.reason)
		}
	}
}

func TestLockSummaries(t *testing.T) {
	sums := loadSummaries(t)
	recvCases := []struct {
		fn   string
		want []string
	}{
		{"(*guarded).locksMu", []string{"mu"}},
		{"(*guarded).locksRW", []string{"rw"}},
		{"(*guarded).locksTransitive", []string{"mu"}},
		// Recursion through a self-referential receiver chain must
		// converge to the direct lock alone, not grow next.next...mu.
		{"(*lnode).lockChain", []string{"mu"}},
		{"(*lnode).lockChainMutual", []string{"mu"}},
		{"(*lnode).lockChainPartner", nil},
	}
	for _, c := range recvCases {
		s, ok := sums[c.fn]
		if !ok {
			t.Fatalf("no summary for %s", c.fn)
		}
		if !reflect.DeepEqual(s.RecvLocks, c.want) {
			t.Errorf("%s: RecvLocks = %v, want %v", c.fn, s.RecvLocks, c.want)
		}
	}
	for _, fn := range []string{"locksGlobal", "locksGlobalTransitive"} {
		s, ok := sums[fn]
		if !ok {
			t.Fatalf("no summary for %s", fn)
		}
		if len(s.GlobalLocks) != 1 || s.GlobalLocks[0].Name() != "globalMu" {
			t.Errorf("%s: GlobalLocks = %v, want [globalMu]", fn, s.GlobalLocks)
		}
	}
	if s := sums["blockSend"]; len(s.RecvLocks) != 0 || len(s.GlobalLocks) != 0 {
		t.Errorf("blockSend: unexpected lock summary %v %v", s.RecvLocks, s.GlobalLocks)
	}
}

// TestSummariesDeterministic recomputes the summaries from a fresh load and
// checks the per-name results agree — guarding the sorted lock sets and
// stable SCC iteration the byte-stable -json output depends on.
func TestSummariesDeterministic(t *testing.T) {
	a := loadSummaries(t)
	b := loadSummaries(t)
	if len(a) != len(b) {
		t.Fatalf("node count differs across loads: %d vs %d", len(a), len(b))
	}
	for name, sa := range a {
		sb, ok := b[name]
		if !ok {
			t.Fatalf("node %s missing on reload", name)
		}
		// GlobalLocks holds *types.Var from distinct type-check runs;
		// compare by name.
		if !reflect.DeepEqual(sa.RecvLocks, sb.RecvLocks) ||
			sa.MayBlock != sb.MayBlock || sa.BlockReason != sb.BlockReason ||
			!reflect.DeepEqual(sa.DerefsParamWhenNil, sb.DerefsParamWhenNil) ||
			!reflect.DeepEqual(sa.StoresParam, sb.StoresParam) ||
			!reflect.DeepEqual(sa.BudgetParams, sb.BudgetParams) ||
			len(sa.GlobalLocks) != len(sb.GlobalLocks) {
			t.Errorf("%s: summary differs across loads", name)
		}
		for i := range sa.GlobalLocks {
			if sa.GlobalLocks[i].Name() != sb.GlobalLocks[i].Name() {
				t.Errorf("%s: GlobalLocks[%d] %s vs %s", name, i, sa.GlobalLocks[i].Name(), sb.GlobalLocks[i].Name())
			}
		}
	}
}
