package ctxbudget_test

import (
	"testing"

	"dprle/internal/analysis/analysistest"
	"dprle/internal/analyzers/ctxbudget"
)

func TestCtxbudget(t *testing.T) {
	analysistest.Run(t, "testdata", ctxbudget.Analyzer, "a")
}
