// Package budget is a minimal stand-in for dprle/internal/budget (see the
// budgetcheck fixture of the same name).
package budget

type Budget struct{ remaining int64 }

func (b *Budget) Check(stage string) error {
	if b == nil {
		return nil
	}
	return nil
}
