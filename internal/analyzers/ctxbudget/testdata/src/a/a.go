package a

import (
	"context"
	"sync"

	"budget"
)

func work() {}

func workB(bud *budget.Budget) {
	_ = bud.Check("work")
}

// C1: a worker goroutine that never sees the budget does unaccounted,
// uncancellable work.
func FanOutB(bud *budget.Budget, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want `goroutine spawned in budget-threaded function FanOutB does not reference the budget`
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// Clean: the goroutine closes over the budget.
func FanOutWellB(bud *budget.Budget, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			workB(bud)
		}()
	}
	wg.Wait()
}

// Clean: a goroutine on a budget-carrying struct threads the budget
// implicitly (the solver's per-CI-group fan-out pattern).
type solver struct {
	bud *budget.Budget
}

func (s *solver) step() { _ = s.bud.Check("step") }

func (s *solver) run() {
	go s.step()
}

// Clean: functions without budget access are outside C1's scope.
func PlainFanOut(n int) {
	for i := 0; i < n; i++ {
		go work()
	}
}

// C2: calling context.Background in a function that already has a ctx
// disconnects the work from the caller's deadline.
func Run(ctx context.Context) error {
	bg := context.Background() // want `Run takes a context.Context but calls context.Background, dropping the caller's cancellation`
	_ = bg
	return ctx.Err()
}

// C2: context.TODO is the same hazard.
func RunTODO(ctx context.Context) error {
	bg := context.TODO() // want `RunTODO takes a context.Context but calls context.TODO, dropping the caller's cancellation`
	_ = bg
	return ctx.Err()
}

// Clean: the nil-default idiom keeps the caller's context when given.
func RunWell(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx.Err()
}

// Clean: no context parameter, Background is the right root.
func Root() error {
	ctx := context.Background()
	return ctx.Err()
}
