// Package ctxbudget checks that concurrency entry points thread the
// shared resource budget and caller context instead of silently dropping
// them: a goroutine spawned inside a budget-threaded function must carry
// the budget (otherwise its construction work is unaccounted and
// uncancellable), and a function that accepts a context.Context must not
// discard it by calling context.Background or context.TODO.
package ctxbudget

import (
	"go/ast"
	"go/types"

	"dprle/internal/analysis"
	"dprle/internal/analyzers/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxbudget",
	Doc: `flag goroutines and calls that drop the shared budget or context

Two rules:

C1 — inside a function with access to a *budget.Budget, a go statement
must reference the budget (directly, or through a value that carries a
budget field, such as the solver structs). The solver fans out per
CI-group; a worker that does not see the budget performs unbounded,
uncancellable automaton constructions.

C2 — a function that takes a context.Context must not call
context.Background() or context.TODO(): doing so disconnects the work it
starts from the caller's deadline and cancellation. The nil-default idiom
is permitted: assigning context.Background() to the context parameter
itself (if ctx == nil { ctx = context.Background() }).

Suppress with //lint:ignore dprlelint/ctxbudget <reason>.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if lintutil.IsBudgetThreaded(pass.TypesInfo, fn) {
				checkGoStmts(pass, fn)
			}
			if hasContextParam(pass.TypesInfo, fn) {
				checkContextDropped(pass, fn)
			}
		}
	}
	return nil
}

// checkGoStmts implements C1.
func checkGoStmts(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if !referencesBudget(pass.TypesInfo, g.Call) {
			pass.Reportf(g.Pos(),
				"goroutine spawned in budget-threaded function %s does not reference the budget; its work is unaccounted and uncancellable",
				fn.Name.Name)
		}
		return true
	})
}

// referencesBudget reports whether any expression in the spawned call —
// the callee, its arguments, or a func literal's body — evaluates to a
// value that gives access to a budget.
func referencesBudget(info *types.Info, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok || found {
			return !found
		}
		if tv, ok := info.Types[e]; ok && !tv.IsNil() && lintutil.CarriesBudget(tv.Type) {
			found = true
		}
		return !found
	})
	return found
}

func hasContextParam(info *types.Info, fn *ast.FuncDecl) bool {
	obj, ok := info.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	params := obj.Type().(*types.Signature).Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// declaredInside reports whether obj is declared within fn's body (as
// opposed to being one of its parameters or an outer binding).
func declaredInside(obj types.Object, fn *ast.FuncDecl) bool {
	return fn.Body != nil && obj.Pos() >= fn.Body.Pos() && obj.Pos() <= fn.Body.End()
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// checkContextDropped implements C2.
func checkContextDropped(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	// The nil-default idiom `ctx = context.Background()` (re-assigning the
	// context parameter itself) keeps the caller's context when one was
	// given; collect those calls first and skip them below.
	defaulted := map[*ast.CallExpr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || !isContextType(obj.Type()) || declaredInside(obj, fn) {
			return true
		}
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
			defaulted[call] = true
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || defaulted[call] {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok || pn.Imported().Path() != "context" {
			return true
		}
		if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
			pass.Reportf(call.Pos(),
				"%s takes a context.Context but calls context.%s, dropping the caller's cancellation and deadline",
				fn.Name.Name, sel.Sel.Name)
		}
		return true
	})
}
