// Package strlang is the string-language analysis of the dprlelint suite —
// the paper's client-analysis story (§5) turned on the repository's own
// toolchain. A forward dataflow pass abstracts every tracked string
// variable to a regular language (internal/analyzers/strfacts); at each
// sink call the analyzer forms the subset constraint L(arg) ⊆ L(contract)
// and discharges it with the repository's own decision procedure, so the
// solver under test is also the engine behind the lint findings.
package strlang

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"dprle/internal/analysis"
	"dprle/internal/analysis/dataflow"
	"dprle/internal/analyzers/interproc"
	"dprle/internal/analyzers/lintutil"
	"dprle/internal/analyzers/strfacts"
)

// Stat counter names surfaced under dprlelint -stats.
const (
	// StatSolverCalls counts subset constraints sent to the solver (memo
	// misses). Every one runs under a deadline and MaxStates/MaxSteps caps.
	StatSolverCalls = "solver-calls"
	// StatCacheHits counts constraints answered from the canonical-key memo
	// without a solve.
	StatCacheHits = "cache-hits"
	// StatWidenings counts abstract values collapsed to Σ* by a cap
	// (generation, machine size, or construction budget).
	StatWidenings = "widenings"
	// StatDischarged counts sink arguments checked (solved or memoized).
	StatDischarged = "constraints-discharged"
	// StatUnknown counts checks left undecided by a tripped solve budget;
	// undecided checks never become findings.
	StatUnknown = "solves-unknown"
	// StatFixpointSkips counts functions skipped because the dataflow
	// fixpoint failed; their sinks go unchecked (the silent direction).
	StatFixpointSkips = "fixpoint-skipped"
)

var Analyzer = &analysis.Analyzer{
	Name: "strlang",
	Doc: `prove string arguments stay inside their required languages

Each function is run through a forward abstract interpretation whose
domain is the solver's own: the value of a string variable is a regular
language. Literals are singleton languages; concatenation, += loops,
fmt.Sprintf/Sprint, strings.Join/Repeat, and strconv formatting map to
language operations; branch joins union; s == "lit" comparisons refine by
intersection along the taken edge. Loops terminate by widening: a bounded
number of language-changing joins per variable, then Σ*. Calls to
same-package helpers see through to the callee via interprocedural
string-result summaries (disable with -interproc=false).

At each sink the analyzer forms L(arg) ⊆ L(contract) and discharges it
with the repository's decision procedure: SAT on {arg ⊆ L(observed),
arg ⊆ Σ*\L(contract)} refutes the containment, and the assignment's
deterministic shortest witness becomes the reported counterexample. Every
solve runs under a deadline and state/step budget, and results are
memoized under canonical language fingerprints (see -stats: solver-calls,
cache-hits, widenings, constraints-discharged).

S1 — an argument to a built-in sink (database/sql query/exec methods,
os/exec.Command) whose language escapes the sink's contract: unbalanced
SQL quotes, shell-unsafe program names. The classic seeded instance is
fmt.Sprintf("... '%s'", v) with unconstrained v.

S2 — an argument to a same-package function annotated

	//dprle:subset <param> /<pattern>/

whose language is not contained in the pattern's. Inside the annotated
function the parameter is assumed to satisfy the contract, so forwarding
it to a compatible sink is already proven.

S3 — a malformed //dprle:subset directive (unknown parameter, non-string
parameter, bad or oversized pattern): a contract that silently fails to
parse would silently drop its call-site obligations.

Suppress with //lint:ignore dprlelint/strlang <reason>.`,
	Run: run,
}

// site is one call argument owing a contract proof.
type site struct {
	call   *ast.CallExpr
	arg    int
	c      *contract
	callee string
}

// checker carries one package run.
type checker struct {
	pass   *analysis.Pass
	dom    *strfacts.Domain
	ip     *interproc.Info
	annots annotations

	solverCalls, cacheHits, discharged, unknown, fixpointSkips int
}

func run(pass *analysis.Pass) error {
	ck := &checker{pass: pass, dom: &strfacts.Domain{}}
	defer ck.flushStats()
	if !ck.relevant() {
		return nil
	}
	ck.annots = ck.collectDirectives()
	if interproc.Enabled {
		ck.ip = interproc.Of(pass)
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					ck.checkFunc(fn, fn.Body)
				}
			case *ast.FuncLit:
				ck.checkFunc(fn, fn.Body)
			}
			return true
		})
	}
	return nil
}

// relevant gates the package: without a sink-package import or a
// //dprle:subset directive there is no obligation to discharge, and the
// package skips the dataflow machinery entirely.
func (ck *checker) relevant() bool {
	for _, file := range ck.pass.Files {
		for _, imp := range file.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && sinkImports[path] {
				return true
			}
		}
		for _, cg := range file.Comments {
			for _, cm := range cg.List {
				if strings.HasPrefix(cm.Text, directivePrefix) {
					return true
				}
			}
		}
	}
	return false
}

func (ck *checker) flushStats() {
	ck.pass.CountStat(StatSolverCalls, ck.solverCalls)
	ck.pass.CountStat(StatCacheHits, ck.cacheHits)
	ck.pass.CountStat(StatWidenings, ck.dom.Widenings)
	ck.pass.CountStat(StatDischarged, ck.discharged)
	ck.pass.CountStat(StatUnknown, ck.unknown)
	ck.pass.CountStat(StatFixpointSkips, ck.fixpointSkips)
}

// checkFunc analyzes one function body and discharges its sink sites.
func (ck *checker) checkFunc(fn ast.Node, body *ast.BlockStmt) {
	sites := ck.collectSites(body)
	if len(sites) == 0 {
		return
	}
	lat := &strfacts.Lattice{
		Info:    ck.pass.TypesInfo,
		Tracked: strfacts.TrackedStrings(ck.pass.TypesInfo, fn, body),
		Dom:     ck.dom,
		Entry:   ck.entryFor(fn),
		Model:   ck.model,
	}
	checked := map[*ast.CallExpr]bool{}
	visit := func(n ast.Node, f *strfacts.Facts) {
		// A RangeStmt node stands only for its X operand (see dataflow).
		if rng, ok := n.(*ast.RangeStmt); ok {
			n = rng.X
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false // nested literals get their own pass
			}
			call, ok := m.(*ast.CallExpr)
			if !ok || checked[call] {
				return true
			}
			checked[call] = true
			for _, s := range sites[call] {
				ck.checkSite(s, f, lat)
			}
			return true
		})
	}

	if len(lat.Tracked) == 0 {
		// No flow facts: every argument evaluates under the empty fact.
		empty := &strfacts.Facts{}
		ast.Inspect(body, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			if stmt, ok := m.(ast.Stmt); ok {
				visit(stmt, empty)
				return false
			}
			return true
		})
		return
	}
	g := dataflow.New(body)
	res, err := dataflow.Solve(g, lat, lat, dataflow.Forward)
	if err != nil {
		// A broken fixpoint leaves this function's sinks unchecked; the
		// skip is surfaced under -stats rather than failing the run.
		ck.fixpointSkips++
		return
	}
	dataflow.WalkForward(g, lat, lat, res, func(n ast.Node, before dataflow.Fact) {
		visit(n, before.(*strfacts.Facts))
	})
}

// collectSites finds every call in body (nested literals excluded) whose
// callee imposes a contract: a built-in sink or an annotated same-package
// function.
func (ck *checker) collectSites(body *ast.BlockStmt) map[*ast.CallExpr][]site {
	table := builtinSinks()
	var out map[*ast.CallExpr][]site
	add := func(call *ast.CallExpr, s site) {
		if out == nil {
			out = map[*ast.CallExpr][]site{}
		}
		out[call] = append(out[call], s)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := lintutil.Callee(ck.pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		if sk, ok := table[callee.FullName()]; ok {
			add(call, site{call: call, arg: sk.arg, c: sk.c, callee: callee.FullName()})
		}
		for _, pc := range ck.annots[callee] {
			add(call, site{call: call, arg: pc.arg, c: pc.c, callee: callee.Name()})
		}
		return true
	})
	return out
}

// entryFor seeds the boundary fact of an annotated function: each
// annotated parameter starts at its contract language instead of Σ*.
func (ck *checker) entryFor(fn ast.Node) map[*types.Var]strfacts.Val {
	fd, ok := fn.(*ast.FuncDecl)
	if !ok {
		return nil
	}
	fobj, _ := ck.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	pcs := ck.annots[fobj]
	if len(pcs) == 0 {
		return nil
	}
	entry := map[*types.Var]strfacts.Val{}
	for _, pc := range pcs {
		entry[pc.v] = ck.dom.FromMachine(pc.c.m)
	}
	return entry
}

// model resolves helper calls through interprocedural string-result
// summaries, so a query assembled in a same-package helper is as visible
// as one assembled inline.
func (ck *checker) model(call *ast.CallExpr, eval func(ast.Expr) strfacts.Val) (strfacts.Val, bool) {
	if ck.ip == nil {
		return strfacts.Top(), false
	}
	callee := lintutil.Callee(ck.pass.TypesInfo, call)
	if callee == nil {
		return strfacts.Top(), false
	}
	sum, ok := ck.ip.ForFunc(callee)
	if !ok || len(sum.StringResults) != 1 {
		return strfacts.Top(), false
	}
	return sum.StringResults[0], true
}

// checkSite evaluates one owed contract and reports a violation with the
// solver's counterexample.
func (ck *checker) checkSite(s site, f *strfacts.Facts, lat *strfacts.Lattice) {
	if s.arg < 0 || s.arg >= len(s.call.Args) || s.call.Ellipsis.IsValid() {
		return
	}
	arg := s.call.Args[s.arg]
	ck.discharged++
	ver := ck.discharge(lat.Eval(arg, f), s.c)
	switch {
	case !ver.known:
		ck.unknown++
	case ver.violated:
		ck.pass.Reportf(arg.Pos(),
			"subset constraint violated: argument to %s can be %q, outside %s /%s/",
			s.callee, ver.witness, s.c.name, s.c.pattern)
	}
}
