// Interprocedural string summaries: queries assembled in same-package
// helpers are as visible as inline ones, and mutual recursion through the
// summary SCC terminates by widening.
package strlang_interproc

import (
	"database/sql"
	"fmt"
)

func constQuery() string {
	return "select id from t where ok = 'y'"
}

func quoteName(name string) string {
	return fmt.Sprintf("name = '%s'", name)
}

// helperClean is provable only through the summary of constQuery: without
// it the call result would be Σ* and the sink would be unprovable.
func helperClean(db *sql.DB) {
	db.Query(constQuery())
}

func helperInjected(db *sql.DB, user string) {
	db.Query("select * from t where " + quoteName(user)) // want `subset constraint violated: argument to \(\*database/sql\.DB\)\.Query`
}

// Mutual recursion: the SCC fixpoint widens the summaries to Σ* instead
// of diverging, and the widened result is honestly unprovable at the sink
// (odd nestings of alt really do unbalance the quotes).
func alt(n int) string {
	if n == 0 {
		return ""
	}
	return "a'" + alt2(n-1)
}

func alt2(n int) string {
	if n == 0 {
		return ""
	}
	return "b" + alt(n-1)
}

func recursive(db *sql.DB, n int) {
	db.Query(alt(n)) // want `subset constraint violated: argument to \(\*database/sql\.DB\)\.Query`
}
