// Straight-line sink checks: constant and literal-composed queries are
// proven safe, unconstrained composition is refuted with a witness.
package strlang_basic

import (
	"database/sql"
	"os/exec"
)

func constQuery(db *sql.DB) {
	db.Query("select * from t where id = 1")
	db.Exec("delete from t where name = 'old'")
}

func literalComposition(db *sql.DB) {
	name := "bob"
	q := "select * from t where name = '" + name + "'"
	db.Query(q)
}

func injectable(db *sql.DB, user string) {
	q := "select * from t where name = '" + user + "'"
	db.Query(q) // want `subset constraint violated: argument to \(\*database/sql\.DB\)\.Query can be .* outside balanced-sql-quotes`
}

func branches(db *sql.DB, newest bool) {
	q := "select * from t order by name"
	if newest {
		q = "select * from t order by ctime"
	}
	db.Query(q)
}

func refinement(db *sql.DB, col string) {
	q := "select * from t"
	if col == "name" {
		q = "select * from t order by " + col
	}
	db.Query(q)
}

func execClean() {
	exec.Command("ls", "-l")
	exec.Command("/usr/bin/env", "true")
}

func execTainted(tool string) {
	exec.Command("helper-" + tool) // want `subset constraint violated: argument to os/exec\.Command can be .* outside clean-program-path`
}
