// Adversarial loop shapes: every analysis here must terminate through
// widening, and a widened (Σ*) query can never be proven balanced.
package strlang_loop

import "database/sql"

func grownInLoop(db *sql.DB, names []string) {
	q := "select * from t where name in ("
	for _, n := range names {
		q += "'" + n + "',"
	}
	q += "'x')"
	db.Query(q) // want `subset constraint violated: argument to \(\*database/sql\.DB\)\.Query`
}

func doublyNested(db *sql.DB, rows, cols int) {
	q := "q"
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			q += "." + q
		}
		q += ";"
	}
	db.Query(q) // want `subset constraint violated: argument to \(\*database/sql\.DB\)\.Query`
}

func selfAppend(db *sql.DB, n int) {
	s := "'"
	for i := 0; i < n; i++ {
		s += s
	}
	db.Query(s) // want `subset constraint violated: argument to \(\*database/sql\.DB\)\.Query`
}
