// //dprle:subset directives: caller-side obligations, callee-side entry
// assumptions, and malformed-directive findings.
package strlang_annot

import "database/sql"

// runQuery requires callers to prove their query keeps SQL string
// literals balanced.
//
//dprle:subset q /^([^']|'[^']*')*$/
func runQuery(q string) string {
	return q
}

// forward assumes its contract at entry, so handing the parameter to a
// sink whose contract it implies needs no further proof.
//
//dprle:subset q /^([^']|'[^']*')*$/
func forward(db *sql.DB, q string) {
	db.Query(q)
}

// lower wants a lowercase word.
//
//dprle:subset word /^[a-z]+$/
func lower(word string) string {
	return word
}

func callers(db *sql.DB, user string) {
	runQuery("select 'a' from t")
	runQuery("x = '" + user + "'") // want `subset constraint violated: argument to runQuery can be .* outside dprle:subset q`
	forward(db, "select 1")
	lower("abc")
	lower("Abc")      // want `subset constraint violated: argument to lower can be "Abc", outside dprle:subset word`
	lower("a" + user) // want `subset constraint violated: argument to lower can be .* outside dprle:subset word`
}

// unconstrained has no directive: inside it the parameter is Σ*, so
// forwarding to an annotated function is an unproven obligation.
func unconstrained(s string) string {
	return lower(s) // want `subset constraint violated: argument to lower can be .* outside dprle:subset word`
}

//dprle:subset nosuch /^a$/
func badParam(s string) string { // want `malformed //dprle:subset directive on badParam: no parameter named nosuch`
	return s
}

//dprle:subset n /^1$/
func badType(n int) int { // want `malformed //dprle:subset directive on badType: parameter n is not a string`
	return n
}

//dprle:subset s ^a$
func badDelims(s string) string { // want `malformed //dprle:subset directive on badDelims: pattern must be enclosed in slashes`
	return s
}

//dprle:subset s /^(a$/
func badPattern(s string) string { // want `malformed //dprle:subset directive on badPattern: pattern`
	return s
}
