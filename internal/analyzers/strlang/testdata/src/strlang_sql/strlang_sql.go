// sqlgen-style query builder with a seeded injection defect: the query is
// assembled with fmt.Sprintf from an unconstrained input and reaches a
// built-in sink with no annotation anywhere — the finding comes entirely
// from the sink table and the solver.
package strlang_sql

import (
	"context"
	"database/sql"
	"fmt"
	"strconv"
)

func byName(db *sql.DB, user string) (*sql.Rows, error) {
	q := fmt.Sprintf("select id, name from users where name = '%s' limit 10", user)
	return db.Query(q) // want `subset constraint violated: argument to \(\*database/sql\.DB\)\.Query can be .* outside balanced-sql-quotes`
}

func byID(db *sql.DB, id int) (*sql.Rows, error) {
	// %s over strconv.Itoa is a digit string: it cannot unbalance quotes.
	q := fmt.Sprintf("select id, name from users where id = %s", strconv.Itoa(id))
	return db.Query(q)
}

func byIDVerb(db *sql.DB, id int) (*sql.Rows, error) {
	q := fmt.Sprintf("select id, name from users where id = %d and ok = %t", id, true)
	return db.Query(q)
}

func byNameCtx(ctx context.Context, db *sql.DB, user string) (*sql.Rows, error) {
	q := fmt.Sprintf("update users set seen = 1 where name = '%s'", user)
	return db.QueryContext(ctx, q) // want `subset constraint violated: argument to \(\*database/sql\.DB\)\.QueryContext can be .* outside balanced-sql-quotes`
}

func inTx(tx *sql.Tx, user string) error {
	q := "delete from users where name = '" + user + "'"
	_, err := tx.Exec(q) // want `subset constraint violated: argument to \(\*database/sql\.Tx\)\.Exec can be .* outside balanced-sql-quotes`
	return err
}
