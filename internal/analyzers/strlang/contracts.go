package strlang

import (
	"context"
	"sync"

	"dprle"
	"dprle/internal/budget"
	"dprle/internal/nfa"
	"dprle/internal/regex"
)

// contractStates bounds the machines a contract may expand to (the match
// automaton and its complement). Directive patterns past the bound are
// rejected with a malformed-directive finding rather than analyzed.
const contractStates = 1 << 12

// contract is one required language: a sink argument (or annotated
// parameter) must satisfy L(arg) ⊆ L(contract.m).
type contract struct {
	// name labels the contract in diagnostics: a builtin mnemonic
	// ("balanced-sql-quotes") or "//dprle:subset <param>" for directives.
	name string
	// pattern is the source regex, shown in diagnostics.
	pattern string
	// m is the contract's match automaton (preg_match semantics: anchor
	// with ^ and $ for an exact language).
	m *nfa.NFA
	// compl is Σ* \ L(m) as a public-API language, the right-hand side of
	// the violation constraint the solver discharges.
	compl dprle.Lang
}

// newContract compiles a pattern into a contract, bounding both the match
// automaton and its complement so an adversarial directive cannot stall
// the analyzer.
func newContract(name, pattern string) (*contract, error) {
	r, err := regex.Parse(pattern)
	if err != nil {
		return nil, err
	}
	m, err := r.MatchLanguage()
	if err != nil {
		return nil, err
	}
	bud := budget.New(context.Background(), budget.Limits{MaxStates: contractStates})
	cm, err := nfa.ComplementB(bud, m)
	if err != nil {
		return nil, err
	}
	compl, err := dprle.UnmarshalLang(cm.Marshal())
	if err != nil {
		return nil, err
	}
	return &contract{name: name, pattern: pattern, m: m, compl: compl}, nil
}

func mustContract(name, pattern string) *contract {
	c, err := newContract(name, pattern)
	if err != nil {
		panic(err)
	}
	return c
}

// A sink is a call whose arg-th argument carries a built-in contract.
type sink struct {
	arg int
	c   *contract
}

// builtinSinks maps types.Func.FullName to the contract its argument must
// satisfy. Two built-in contracts:
//
//   - balanced-sql-quotes: every ' in a query string opens or closes a SQL
//     string literal. A query whose language admits an unbalanced quote can
//     be escaped from inside a literal — the classic injection shape, and
//     the exact property fmt.Sprintf("... '%s'", v) breaks for
//     unconstrained v.
//   - clean-program-path: the program argument of os/exec.Command stays
//     within path-ish bytes; an unconstrained value can smuggle separators
//     or control bytes into what the caller believed was a fixed tool name.
var builtinSinks = sync.OnceValue(func() map[string]sink {
	sql := mustContract("balanced-sql-quotes", `^([^']|'[^']*')*$`)
	prog := mustContract("clean-program-path", `^[a-zA-Z0-9_./-]*$`)
	table := map[string]sink{
		"os/exec.Command":        {arg: 0, c: prog},
		"os/exec.CommandContext": {arg: 1, c: prog},
	}
	for _, recv := range []string{"DB", "Tx", "Conn"} {
		for _, meth := range []string{"Query", "QueryRow", "Exec"} {
			table["(*database/sql."+recv+")."+meth] = sink{arg: 0, c: sql}
			table["(*database/sql."+recv+")."+meth+"Context"] = sink{arg: 1, c: sql}
		}
	}
	return table
})

// sinkImports are the packages whose import marks a file as worth
// analyzing even without //dprle:subset directives.
var sinkImports = map[string]bool{
	"database/sql": true,
	"os/exec":      true,
}
