package strlang

import (
	"go/ast"
	"go/types"
	"strings"

	"dprle/internal/analyzers/strfacts"
)

// directivePrefix introduces a parameter contract in a function's doc
// comment:
//
//	//dprle:subset <param> /<pattern>/
//
// The pattern uses the solver's regex dialect with preg_match anchoring,
// so subset contracts are written with explicit ^ and $. The directive has
// two effects: every in-package call site must prove the argument's
// language is contained in the pattern's (a caller-side obligation,
// discharged by the solver), and inside the annotated function the
// parameter is assumed to satisfy it (the entry fact), so forwarding the
// parameter to a compatible sink needs no further proof.
const directivePrefix = "//dprle:subset"

// paramContract binds one annotated parameter to its contract.
type paramContract struct {
	arg int        // index in the declared parameter list
	v   *types.Var // the parameter object, for entry seeding
	c   *contract
}

// annotations maps annotated functions to their parameter contracts, in
// declaration order.
type annotations map[*types.Func][]paramContract

// collectDirectives parses every //dprle:subset directive in the package.
// Malformed directives are reported at the function they document — the
// contract is a caller-visible API statement, so silently ignoring a typo
// would turn the obligation off without a trace.
func (ck *checker) collectDirectives() annotations {
	out := annotations{}
	for _, file := range ck.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Doc != nil {
				ck.directivesFor(fd, out)
			}
		}
	}
	return out
}

func (ck *checker) directivesFor(fd *ast.FuncDecl, out annotations) {
	fn, _ := ck.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	malformed := func(reason string) {
		ck.pass.Reportf(fd.Name.Pos(), "malformed %s directive on %s: %s",
			directivePrefix, fd.Name.Name, reason)
	}
	for _, line := range fd.Doc.List {
		if !strings.HasPrefix(line.Text, directivePrefix) {
			continue
		}
		rest := strings.TrimSpace(line.Text[len(directivePrefix):])
		name, spec, _ := strings.Cut(rest, " ")
		spec = strings.TrimSpace(spec)
		if name == "" || spec == "" {
			malformed("want " + directivePrefix + " <param> /<pattern>/")
			continue
		}
		if len(spec) < 2 || !strings.HasPrefix(spec, "/") || !strings.HasSuffix(spec, "/") {
			malformed("pattern must be enclosed in slashes, got " + spec)
			continue
		}
		pattern := spec[1 : len(spec)-1]
		pv := paramVar(ck.pass.TypesInfo, fd, name)
		if pv == nil {
			malformed("no parameter named " + name)
			continue
		}
		if !strfacts.IsString(pv.Type()) {
			malformed("parameter " + name + " is not a string")
			continue
		}
		c, err := newContract(directivePrefix[2:]+" "+name, pattern)
		if err != nil {
			malformed("pattern /" + pattern + "/: " + err.Error())
			continue
		}
		if fn == nil {
			continue
		}
		out[fn] = append(out[fn], paramContract{arg: paramIndex(fn, pv), v: pv, c: c})
	}
}

// paramVar resolves a declared parameter of fd by name.
func paramVar(info *types.Info, fd *ast.FuncDecl, name string) *types.Var {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, id := range field.Names {
			if id.Name == name {
				v, _ := info.Defs[id].(*types.Var)
				return v
			}
		}
	}
	return nil
}

// paramIndex locates v in fn's signature (receivers excluded, matching the
// call-site argument list).
func paramIndex(fn *types.Func, v *types.Var) int {
	params := fn.Type().(*types.Signature).Params()
	for i := 0; i < params.Len(); i++ {
		if params.At(i) == v {
			return i
		}
	}
	return -1
}
