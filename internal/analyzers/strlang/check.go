package strlang

import (
	"context"
	"sync"
	"time"

	"dprle"
	"dprle/internal/analyzers/strfacts"
	"dprle/internal/solvecache"
)

// Per-solve resource budget. Each discharged constraint is a two-line
// system over tiny machines (the abstract value is capped at
// strfacts.MaxValStates states, the contract at contractStates), so a trip
// means something pathological; the check then degrades to UNKNOWN and
// stays silent rather than stalling the lint run.
const (
	solveDeadline  = 2 * time.Second
	solveMaxStates = 1 << 15
	solveMaxSteps  = 1 << 18
)

// verdict is one memoized discharge outcome. known=false records a budget
// trip: the containment question was not decided, no finding is emitted,
// and re-asking would re-burn the budget for the same answer.
type verdict struct {
	violated bool
	witness  string
	known    bool
}

// The discharge memo is keyed by canonical language fingerprints
// (solvecache.Key over nfa.CanonicalKey-derived parts), so structurally
// distinct automata for the same abstract value share one solve. The
// dprle.Cache underneath additionally memoizes solver-internal components
// across distinct systems. Both persist across passes: languages recur
// across functions and packages far more often than they recur within one.
var (
	dischargeMu   sync.Mutex
	dischargeMemo = map[string]verdict{}
	solverCache   = dprle.NewCache(0, 0)
)

// argKey fingerprints an abstract value for the memo. Val.Key is the
// canonical key of the minimal DFA; the two Σ* forms share one language.
func argKey(v strfacts.Val) string {
	if v.IsTop() {
		return "top"
	}
	return v.Key()
}

// discharge decides L(v) ⊆ L(c) by dogfooding the solver: it asks for a
// maximal assignment with
//
//	arg ⊆ L(v)        (the language the dataflow analysis observed)
//	arg ⊆ Σ* \ L(c)   (the escape region)
//
// A satisfying assignment is a constructive refutation of the containment
// — its arg language is exactly L(v) \ L(c) — and the deterministic
// shortest witness of that language becomes the counterexample shown to
// the user. UNSAT proves the containment. A budget trip leaves the
// question UNKNOWN (known=false), which callers treat as no-finding.
func (ck *checker) discharge(v strfacts.Val, c *contract) verdict {
	key := solvecache.Key("strlang", argKey(v), "re:"+c.pattern)
	dischargeMu.Lock()
	ver, hit := dischargeMemo[key]
	dischargeMu.Unlock()
	if hit {
		ck.cacheHits++
		return ver
	}
	ck.solverCalls++

	argLang := dprle.AnyLang()
	if m := v.Machine(); m != nil {
		var err error
		argLang, err = dprle.UnmarshalLang(m.Marshal())
		if err != nil {
			return verdict{} // unreachable: Marshal round-trips
		}
	}
	sys := dprle.NewSystem()
	sys.MustRequire(dprle.V("arg"), "observed", argLang)
	sys.MustRequire(dprle.V("arg"), "escape", c.compl)

	ctx, cancel := context.WithTimeout(context.Background(), solveDeadline)
	defer cancel()
	res, err := sys.SolveContext(ctx, dprle.Options{
		MaxStates: solveMaxStates,
		MaxSteps:  solveMaxSteps,
		Cache:     solverCache,
	})
	switch {
	case res != nil && res.Sat():
		// Even under a tripped budget a returned assignment is verified.
		w, _ := res.First().ShortestWitness("arg")
		ver = verdict{violated: true, witness: w, known: true}
	case err != nil:
		ver = verdict{} // UNKNOWN: budget tripped before a decision
	default:
		ver = verdict{known: true} // UNSAT: containment proven
	}
	dischargeMu.Lock()
	dischargeMemo[key] = ver
	dischargeMu.Unlock()
	return ver
}
