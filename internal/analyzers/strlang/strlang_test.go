package strlang_test

import (
	"testing"

	"dprle/internal/analysis/analysistest"
	"dprle/internal/analyzers/strlang"
)

func TestBasicSinks(t *testing.T) {
	analysistest.Run(t, "testdata", strlang.Analyzer, "strlang_basic")
}

// TestSeededSQLInjection is the sqlgen-style seeded defect: a query built
// with fmt.Sprintf from unconstrained input, flagged purely from the
// built-in sink table (no annotations in the fixture).
func TestSeededSQLInjection(t *testing.T) {
	analysistest.Run(t, "testdata", strlang.Analyzer, "strlang_sql")
}

func TestSubsetDirectives(t *testing.T) {
	analysistest.Run(t, "testdata", strlang.Analyzer, "strlang_annot")
}

// TestAdversarialLoops pins termination: every function widens instead of
// diverging, and the widened sinks are reported.
func TestAdversarialLoops(t *testing.T) {
	analysistest.Run(t, "testdata", strlang.Analyzer, "strlang_loop")
}

func TestInterprocSummaries(t *testing.T) {
	analysistest.Run(t, "testdata", strlang.Analyzer, "strlang_interproc")
}
