// Package solvecache is a minimal stand-in for dprle/internal/solvecache:
// just the sink surface the cachekey analyzer matches on.
package solvecache

type Cache struct{}

func (c *Cache) Get(key string) (any, bool)          { return nil, false }
func (c *Cache) Put(key string, val any, cost int64) {}

func Key(domain string, parts ...string) string { return domain }
