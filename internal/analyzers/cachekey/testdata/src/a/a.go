package a

import (
	"fmt"
	"strings"

	"nfa"
	"solvecache"
)

// Direct raw-form arguments to solvecache.Key.
func direct(m *nfa.NFA) {
	solvecache.Key("d", m.Marshal())                   // want `nfa\.NFA\.Marshal serializes the raw state numbering`
	solvecache.Key("d", m.Dot("g"))                    // want `nfa\.NFA\.Dot renders raw state ids`
	solvecache.Key("d", m.String())                    // want `nfa\.NFA\.String renders the raw state numbering`
	solvecache.Key("d", fmt.Sprintf("s%d", m.Start())) // want `nfa\.NFA\.Start is a raw state id`
	solvecache.Key("d", fmt.Sprintf("%p", m))          // want `fmt\.Sprintf renders an \*nfa\.NFA by state numbering or pointer`
	solvecache.Key("d", fmt.Sprint(m))                 // want `fmt\.Sprint renders an \*nfa\.NFA by state numbering or pointer`
}

// Taint flows through local assignments and string plumbing.
func flows(c *solvecache.Cache, m *nfa.NFA, val any) {
	raw := m.Marshal()
	k := "prefix:" + raw
	solvecache.Key("d", k)     // want `nfa\.NFA\.Marshal serializes the raw state numbering`
	if _, ok := c.Get(k); ok { // want `nfa\.NFA\.Marshal serializes the raw state numbering`
		return
	}
	c.Put(k, val, 1) // want `nfa\.NFA\.Marshal serializes the raw state numbering`

	id := m.Final()
	c.Put(fmt.Sprintf("f%d", id), val, 1) // want `nfa\.NFA\.Final is a raw state id`

	dot := m.Dot("g")
	dot = strings.ToUpper(dot)
	solvecache.Key("d", dot) // want `nfa\.NFA\.Dot renders raw state ids`

	part := fmt.Sprintf("%v", m)
	part = "v:" + part
	solvecache.Key("d", part) // want `fmt\.Sprintf renders an \*nfa\.NFA by state numbering or pointer`
}

// Canonical and numbering-free forms are fine.
func clean(c *solvecache.Cache, m *nfa.NFA, val any) {
	solvecache.Key("d", m.CanonicalKey())
	solvecache.Key("d", fmt.Sprintf("n%d", m.NumStates()))
	ck := m.CanonicalKey()
	k := solvecache.Key("d", ck, "salt")
	if _, ok := c.Get(k); ok {
		return
	}
	c.Put(k, val, 1)

	// Raw forms are fine outside key construction: debugging, logging,
	// and the value side of a Put are not key material.
	_ = m.Marshal()
	fmt.Println(m.Start(), m.Dot("g"))
	c.Put(ck, m.String(), 1)
}

// Get/Put on non-solvecache receivers with the same names are ignored.
type header map[string]string

func (h header) Get(k string) string { return h[k] }

func other(h header, m *nfa.NFA) string {
	return h.Get(m.String())
}
