// Package nfa is a minimal stand-in for dprle/internal/nfa: just the
// surface the cachekey analyzer matches on.
package nfa

import "io"

type NFA struct{ n int }

func (m *NFA) Marshal() string                    { return "" }
func (m *NFA) WriteTo(w io.Writer) (int64, error) { return 0, nil }
func (m *NFA) Dot(name string) string             { return "" }
func (m *NFA) String() string                     { return "" }
func (m *NFA) Start() int                         { return 0 }
func (m *NFA) Final() int                         { return 0 }
func (m *NFA) NumStates() int                     { return m.n }
func (m *NFA) CanonicalKey() string               { return "" }
