package cachekey_test

import (
	"testing"

	"dprle/internal/analysis/analysistest"
	"dprle/internal/analyzers/cachekey"
)

func TestCacheKey(t *testing.T) {
	analysistest.Run(t, "testdata", cachekey.Analyzer, "a")
}
