// Package cachekey flags solve-cache keys built from non-canonical NFA
// forms. The cache's soundness argument (DESIGN.md §10, internal/core/
// cache.go) rests on keys being state-numbering-invariant: equal keys must
// imply structurally interchangeable components. Raw serializations
// (Marshal, WriteTo, Dot, String) embed the machine's arbitrary state
// numbering, raw state ids (Start, Final) vary across isomorphic copies,
// and pointer formatting varies across processes — any of them in a key
// makes structurally identical machines miss each other at best and, when
// numbering collides, lets unrelated entries alias. Keys must go through
// nfa.CanonicalKey (or numbering-free facts such as NumStates).
package cachekey

import (
	"fmt"
	"go/ast"
	"go/types"
	"path"

	"dprle/internal/analysis"
	"dprle/internal/analyzers/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "cachekey",
	Doc: `cachekey: cache keys must be built from canonical NFA forms

The solve cache treats equal keys as proof of structural equivalence, so
every machine-derived part of a key must be invariant under state
renumbering. This analyzer reports arguments to solvecache.Key and to
(*solvecache.Cache).Get/Put whose value derives from a raw NFA form:

  - nfa.NFA serializations that embed the state numbering
    (Marshal, WriteTo, Dot, String)
  - raw state ids (Start, Final)
  - fmt-rendering an *nfa.NFA value, which falls back to pointer or
    default struct formatting

Taint is tracked through local assignments within a function. Use
nfa.CanonicalKey for machine identity; numbering-free facts such as
NumStates are fine.`,
	Run: run,
}

// rawForms maps NFA methods whose results depend on the arbitrary state
// numbering (or raw ids) to the reason they are unfit for cache keys.
var rawForms = map[string]string{
	"Marshal": "serializes the raw state numbering",
	"WriteTo": "serializes the raw state numbering",
	"Dot":     "renders raw state ids",
	"String":  "renders the raw state numbering",
	"Start":   "is a raw state id",
	"Final":   "is a raw state id",
}

// fmtRenderers are the fmt functions that stringify their operands; an
// *nfa.NFA operand renders via String() or pointer formatting, both
// numbering-dependent.
var fmtRenderers = map[string]bool{
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Append": true, "Appendf": true, "Appendln": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// checkFunc runs the two passes over one function: first collect locals
// assigned (in source order) from numbering-dependent expressions, then
// report any sink argument whose subtree reaches a tainted form.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	taints := map[types.Object]string{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		// Only the 1:1 shapes (x := e, x = e, x += e) propagate taint;
		// multi-value unpacking of a tainted call is already reported at
		// the call itself if it feeds a sink.
		if len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if reason := subtreeTaint(info, as.Rhs[i], taints); reason != "" {
				taints[obj] = reason
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		args := sinkArgs(info, call)
		for _, arg := range args {
			if reason := subtreeTaint(info, arg, taints); reason != "" {
				pass.Reportf(arg.Pos(),
					"cache key built from non-canonical NFA form: %s; use CanonicalKey", reason)
			}
		}
		return true
	})
}

// sinkArgs returns the arguments of call that become cache-key material:
// every argument of solvecache.Key, and the key argument of
// (*solvecache.Cache).Get/Put. Nil for any other call.
func sinkArgs(info *types.Info, call *ast.CallExpr) []ast.Expr {
	fn := lintutil.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || path.Base(fn.Pkg().Path()) != "solvecache" {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if recv := sig.Recv(); recv != nil {
		if (fn.Name() == "Get" || fn.Name() == "Put") &&
			isNamed(recv.Type(), "Cache", "solvecache") && len(call.Args) > 0 {
			return call.Args[:1]
		}
		return nil
	}
	if fn.Name() == "Key" {
		return call.Args
	}
	return nil
}

// subtreeTaint reports why the expression's value depends on a raw NFA
// form, or "" if it does not. It walks the whole subtree, so taint
// survives concatenation, fmt wrapping, and slice/append plumbing.
func subtreeTaint(info *types.Info, e ast.Expr, taints map[types.Object]string) string {
	var reason string
	ast.Inspect(e, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				if r, ok := taints[obj]; ok {
					reason = r
					return false
				}
			}
		case *ast.CallExpr:
			if r := callTaint(info, x); r != "" {
				reason = r
				return false
			}
		}
		return true
	})
	return reason
}

// callTaint reports whether the call itself produces a numbering-dependent
// value: a raw-form NFA method, or a fmt renderer handed an *nfa.NFA.
func callTaint(info *types.Info, call *ast.CallExpr) string {
	fn := lintutil.Callee(info, call)
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		if why, ok := rawForms[fn.Name()]; ok && isNamed(recv.Type(), "NFA", "nfa") {
			return fmt.Sprintf("nfa.NFA.%s %s", fn.Name(), why)
		}
		return ""
	}
	if fn.Pkg() != nil && path.Base(fn.Pkg().Path()) == "fmt" && fmtRenderers[fn.Name()] {
		for _, arg := range call.Args {
			if tv, ok := info.Types[arg]; ok && isNamed(tv.Type, "NFA", "nfa") {
				return fmt.Sprintf("fmt.%s renders an *nfa.NFA by state numbering or pointer", fn.Name())
			}
		}
	}
	return ""
}

// isNamed reports whether t is the named type (or pointer to it) with the
// given name declared in a package whose path ends in pkgBase. Matching by
// name and path suffix lets the analyzer run over analysistest fixtures,
// which supply their own minimal nfa and solvecache packages.
func isNamed(t types.Type, name, pkgBase string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && path.Base(obj.Pkg().Path()) == pkgBase
}
