// Package sharemut enforces the NFA layer's copy-on-write contract with a
// flow-sensitive escape analysis: a state-set or transition map that has
// been handed out — stored into a struct field, a global, a container, a
// channel, or a goroutine — must not be mutated afterwards without making
// a copy first. Machines are immutable once built (see nfa.NFA); a map
// mutated after it escaped aliases state the rest of the solver already
// believes frozen, which is exactly the bug class the race detector finds
// only when the schedule cooperates. This analyzer finds it statically.
package sharemut

import (
	"go/ast"
	"go/token"
	"go/types"

	"dprle/internal/analysis"
	"dprle/internal/analysis/dataflow"
	"dprle/internal/analyzers/nilfacts"
)

var Analyzer = &analysis.Analyzer{
	Name: "sharemut",
	Doc: `flag mutation of a map after it escaped without a copy

A forward dataflow analysis tracks, for every map-typed local, whether it
is still private to the function or has escaped: stored into a struct
field or global, placed in another container or composite literal,
returned, sent on a channel, or passed to a goroutine or deferred call.
Mutating an escaped map (m[k] = v, delete, clear) is flagged — the NFA
layer's copy-on-write contract requires a fresh copy (maps.Clone or a
rebuild) before local mutation resumes. Reassigning the variable to a
fresh map (make, a literal, or a call result) makes it private again.

Plain function-call arguments do not count as escapes: passing a map down
for reading or filling is the dominant idiom, and flagging it would bury
the signal. Only variables never address-taken and never captured by a
closure are tracked.

Suppress with //lint:ignore dprlelint/sharemut <reason>.`,
	Run: run,
}

// escVal says whether a tracked map is still private or has escaped, and
// where it escaped (for the diagnostic).
type escVal struct {
	escaped bool
	pos     token.Pos // position of the escape site
	how     string    // short description of the escape kind
}

// facts is the lattice element: escape state per tracked variable. A nil
// *facts is bottom (unreachable); missing entries mean "private".
type facts struct {
	vals map[*types.Var]escVal
}

func (f *facts) get(v *types.Var) escVal {
	if f == nil {
		return escVal{}
	}
	return f.vals[v]
}

// lattice implements dataflow.Lattice and dataflow.Transfer.
type lattice struct {
	info    *types.Info
	tracked map[*types.Var]bool
}

func (l *lattice) Bottom() dataflow.Fact   { return (*facts)(nil) }
func (l *lattice) Boundary() dataflow.Fact { return &facts{vals: map[*types.Var]escVal{}} }

// Height: each variable can rise private→escaped once per chain.
func (l *lattice) Height() int { return len(l.tracked) + 2 }

func (l *lattice) Join(a, b dataflow.Fact) dataflow.Fact {
	x, y := a.(*facts), b.(*facts)
	if x == nil {
		return y
	}
	if y == nil {
		return x
	}
	out := map[*types.Var]escVal{}
	for v, e := range x.vals {
		out[v] = e
	}
	for v, e := range y.vals {
		if cur, ok := out[v]; !ok || (e.escaped && (!cur.escaped || e.pos < cur.pos)) {
			out[v] = e
		}
	}
	return &facts{vals: out}
}

func (l *lattice) Equal(a, b dataflow.Fact) bool {
	x, y := a.(*facts), b.(*facts)
	if x == nil || y == nil {
		return x == y
	}
	if len(x.vals) != len(y.vals) {
		return false
	}
	for v, e := range x.vals {
		if y.vals[v] != e {
			return false
		}
	}
	return true
}

func (l *lattice) set(f *facts, v *types.Var, e escVal) *facts {
	if !l.tracked[v] {
		return f
	}
	out := map[*types.Var]escVal{}
	for k, x := range f.vals {
		out[k] = x
	}
	if e == (escVal{}) {
		delete(out, v)
	} else {
		out[v] = e
	}
	return &facts{vals: out}
}

// Node implements dataflow.Transfer.
func (l *lattice) Node(n ast.Node, fact dataflow.Fact) dataflow.Fact {
	f := fact.(*facts)
	if f == nil {
		return f
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			lhs = ast.Unparen(lhs)
			switch lhs := lhs.(type) {
			case *ast.Ident:
				// Rebinding a tracked variable: fresh value → private again;
				// alias of another tracked map → inherit its state.
				if v := l.varOf(lhs); v != nil && len(n.Rhs) == len(n.Lhs) {
					rhs := ast.Unparen(n.Rhs[i])
					if src := l.trackedUse(rhs); src != nil {
						f = l.set(f, v, f.get(src))
					} else {
						f = l.set(f, v, escVal{})
					}
				}
				// Storing a tracked map into a package-level variable.
				if v := l.varOf(lhs); v != nil && !l.tracked[v] && v.Parent() == v.Pkg().Scope() && len(n.Rhs) == len(n.Lhs) {
					f = l.escapeIn(n.Rhs[i], f, "stored in a global")
				}
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				// Field, element, or pointer store: the rhs value escapes.
				if len(n.Rhs) == len(n.Lhs) {
					f = l.escapeIn(n.Rhs[i], f, "stored in a field or container")
				}
			}
		}
		// Composite literals anywhere on the rhs capture tracked maps.
		for _, r := range n.Rhs {
			f = l.escapeComposites(r, f)
		}
		return f
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						f = l.escapeComposites(val, f)
					}
				}
			}
		}
		return f
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			f = l.escapeIn(r, f, "returned")
			f = l.escapeComposites(r, f)
		}
		return f
	case *ast.SendStmt:
		return l.escapeIn(n.Value, f, "sent on a channel")
	case *ast.GoStmt:
		return l.escapeCall(n.Call, f, "handed to a goroutine")
	case *ast.DeferStmt:
		return l.escapeCall(n.Call, f, "handed to a deferred call")
	case *ast.ExprStmt:
		return l.escapeComposites(n.X, f)
	}
	return f
}

// Branch implements dataflow.Transfer: escape state is not refined by
// conditions.
func (l *lattice) Branch(cond ast.Expr, taken bool, fact dataflow.Fact) dataflow.Fact {
	return fact
}

// escapeIn marks e escaped if it is (exactly) a tracked map variable.
func (l *lattice) escapeIn(e ast.Expr, f *facts, how string) *facts {
	if v := l.trackedUse(e); v != nil && !f.get(v).escaped {
		return l.set(f, v, escVal{escaped: true, pos: e.Pos(), how: how})
	}
	return f
}

// escapeCall marks every tracked map appearing in the call's function or
// arguments escaped: the callee runs later (go/defer), concurrently with
// any subsequent mutation.
func (l *lattice) escapeCall(call *ast.CallExpr, f *facts, how string) *facts {
	ast.Inspect(call, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, okUse := l.info.Uses[id].(*types.Var); okUse && l.tracked[v] && !f.get(v).escaped {
				f = l.set(f, v, escVal{escaped: true, pos: id.Pos(), how: how})
			}
		}
		return true
	})
	return f
}

// escapeComposites marks tracked maps used as composite-literal elements
// (e.g. &Package{Sources: m}) escaped — the literal aliases the map.
func (l *lattice) escapeComposites(e ast.Expr, f *facts) *facts {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, elt := range cl.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if v := l.trackedUse(elt); v != nil && !f.get(v).escaped {
				f = l.set(f, v, escVal{escaped: true, pos: elt.Pos(), how: "captured in a composite literal"})
			}
		}
		return true
	})
	return f
}

func (l *lattice) varOf(id *ast.Ident) *types.Var {
	if v, ok := l.info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := l.info.Uses[id].(*types.Var)
	return v
}

// trackedUse resolves e to a tracked variable use, or nil.
func (l *lattice) trackedUse(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := l.info.Uses[id].(*types.Var)
	if v == nil || !l.tracked[v] {
		return nil
	}
	return v
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		var err error
		ast.Inspect(file, func(n ast.Node) bool {
			if err != nil {
				return false
			}
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					err = checkFunc(pass, fn, fn.Body)
				}
			case *ast.FuncLit:
				err = checkFunc(pass, fn, fn.Body)
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn ast.Node, body *ast.BlockStmt) error {
	tracked := nilfacts.TrackedVars(pass.TypesInfo, fn, body, isMap)
	if len(tracked) == 0 {
		return nil
	}
	lat := &lattice{info: pass.TypesInfo, tracked: tracked}
	g := dataflow.New(body)
	res, err := dataflow.Solve(g, lat, lat, dataflow.Forward)
	if err != nil {
		return err
	}
	reported := map[ast.Node]bool{}
	dataflow.WalkForward(g, lat, lat, res, func(n ast.Node, before dataflow.Fact) {
		checkMutations(pass, lat, n, before.(*facts), reported)
	})
	return nil
}

// checkMutations reports map mutations performed while the map is in the
// escaped state.
func checkMutations(pass *analysis.Pass, lat *lattice, n ast.Node, f *facts, reported map[ast.Node]bool) {
	if rng, ok := n.(*ast.RangeStmt); ok {
		n = rng.X
	}
	report := func(site ast.Node, v *types.Var, verb string) {
		if reported[site] {
			return
		}
		reported[site] = true
		e := f.get(v)
		pass.Reportf(site.Pos(),
			"map %s is %s at %s but %s here; copy it before mutating (copy-on-write contract)",
			v.Name(), e.how, pass.Fset.Position(e.pos), verb)
	}
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok {
				continue
			}
			if v := lat.trackedUse(ix.X); v != nil && f.get(v).escaped {
				report(ix, v, "written to")
			}
		}
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		verbs := map[string]string{"delete": "deleted from", "clear": "cleared"}
		if b, ok := lat.info.Uses[fun].(*types.Builtin); ok && verbs[b.Name()] != "" && len(call.Args) > 0 {
			if v := lat.trackedUse(call.Args[0]); v != nil && f.get(v).escaped {
				report(call, v, verbs[b.Name()])
			}
		}
		return true
	})
}
