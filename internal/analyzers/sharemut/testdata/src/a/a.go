package a

var global map[string]int

type Box struct{ m map[string]int }

func use(m map[string]int) {}

// Clean: build first, hand out last — the copy-on-write idiom.
func build() map[string]int {
	m := map[string]int{}
	m["a"] = 1
	return m
}

// Mutation after the map escaped into a struct field.
func fieldStore(b *Box) {
	m := map[string]int{}
	m["a"] = 1 // clean: still private
	b.m = m
	m["b"] = 2 // want `map m is stored in a field or container .* but written to here`
}

// Mutation after the map escaped into a global.
func globalStore() {
	m := make(map[string]int)
	global = m
	delete(m, "a") // want `map m is stored in a global .* but deleted from here`
}

// Mutation after the map was handed to a goroutine.
func goEscape() {
	m := map[string]int{}
	go use(m)
	m["a"] = 1 // want `map m is handed to a goroutine .* but written to here`
}

// Mutation after the map was captured by a deferred call.
func deferEscape() {
	m := map[string]int{}
	defer use(m)
	clear(m) // want `map m is handed to a deferred call .* but cleared here`
}

// Mutation after the map was captured in a composite literal.
func composite() *Box {
	m := map[string]int{}
	b := &Box{m: m}
	m["a"] = 1 // want `map m is captured in a composite literal .* but written to here`
	return b
}

// Mutation after the map was sent on a channel.
func send(ch chan map[string]int) {
	m := map[string]int{}
	ch <- m
	m["a"] = 1 // want `map m is sent on a channel .* but written to here`
}

// Escape on one branch taints the join: the mutation may race.
func maybeEscape(b *Box, c bool) {
	m := map[string]int{}
	if c {
		b.m = m
	}
	m["a"] = 1 // want `map m is stored in a field or container .* but written to here`
}

// Clean: reassigning to a fresh map makes the variable private again.
func reset(b *Box) {
	m := map[string]int{}
	b.m = m
	m = map[string]int{}
	m["a"] = 1
}

// Clean: a plain call argument is not an escape — filling a map through
// a helper is the dominant idiom.
func fill() {
	m := map[string]int{}
	use(m)
	m["a"] = 1
}

// Clean: mutating an element value, not the escaped map itself.
func elemOnly(b *Box) {
	m := map[string]int{}
	b.m = m
	n := map[string]int{}
	n["a"] = 1
}

// Clean: parameters are tracked but private until they escape here.
func param(m map[string]int, b *Box) {
	m["a"] = 1
	b.m = m
	m["b"] = 2 // want `map m is stored in a field or container .* but written to here`
}
