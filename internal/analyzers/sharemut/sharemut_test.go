package sharemut_test

import (
	"testing"

	"dprle/internal/analysis/analysistest"
	"dprle/internal/analyzers/sharemut"
)

func TestSharemut(t *testing.T) {
	analysistest.Run(t, "testdata", sharemut.Analyzer, "a")
}
