package mapiterorder

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"dprle/internal/analysis"
)

// sortedKeysFix builds the mechanical sorted-keys rewrite for a flagged
// map range:
//
//	for k, v := range m { body }
//
// becomes
//
//	keys := make([]K, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Strings(keys)          // or sort.Ints
//	for _, k := range keys {
//		v := m[k]
//		body
//	}
//
// The rewrite is only offered when it is provably safe and mechanical:
// the key is a named ident of type string or int, the ranged expression
// is a simple ident or selector (so evaluating it three times is sound),
// and the surrounding function does not already use the name "keys".
func sortedKeysFix(pass *analysis.Pass, file *ast.File, fn *ast.FuncDecl, rng *ast.RangeStmt) (analysis.SuggestedFix, bool) {
	none := analysis.SuggestedFix{}
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" || rng.Tok.String() != ":=" {
		return none, false
	}
	var valID *ast.Ident
	if rng.Value != nil {
		v, ok := rng.Value.(*ast.Ident)
		if !ok {
			return none, false
		}
		if v.Name != "_" {
			valID = v
		}
	}
	switch ast.Unparen(rng.X).(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return none, false // re-evaluating the map expression may not be sound
	}
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return none, false
	}
	mt, ok := tv.Type.Underlying().(*types.Map)
	if !ok {
		return none, false
	}
	var keyType, sortFn string
	switch kt := mt.Key().Underlying().(type) {
	case *types.Basic:
		switch kt.Kind() {
		case types.String:
			keyType, sortFn = "string", "sort.Strings"
		case types.Int:
			keyType, sortFn = "int", "sort.Ints"
		default:
			return none, false
		}
	default:
		return none, false
	}
	if usesIdent(fn.Body, "keys") {
		return none, false // avoid capturing an existing name
	}

	src, ok := pass.Sources[pass.Fset.Position(rng.Pos()).Filename]
	if !ok {
		return none, false
	}
	text := func(n ast.Node) string {
		return string(src[pass.Fset.Position(n.Pos()).Offset:pass.Fset.Position(n.End()).Offset])
	}
	mapSrc := text(rng.X)
	bodySrc := string(src[pass.Fset.Position(rng.Body.Lbrace).Offset+1 : pass.Fset.Position(rng.Body.Rbrace).Offset])

	var b strings.Builder
	fmt.Fprintf(&b, "keys := make([]%s, 0, len(%s))\n", keyType, mapSrc)
	fmt.Fprintf(&b, "for %s := range %s {\nkeys = append(keys, %s)\n}\n", keyID.Name, mapSrc, keyID.Name)
	fmt.Fprintf(&b, "%s(keys)\n", sortFn)
	fmt.Fprintf(&b, "for _, %s := range keys {\n", keyID.Name)
	if valID != nil {
		fmt.Fprintf(&b, "%s := %s[%s]\n", valID.Name, mapSrc, keyID.Name)
		bodySrc = strings.TrimLeft(bodySrc, "\n")
	}
	b.WriteString(bodySrc)
	b.WriteString("}")

	edits := []analysis.TextEdit{{Pos: rng.Pos(), End: rng.End(), NewText: []byte(b.String())}}
	if !importsPath(file, "sort") {
		edits = append(edits, sortImportEdit(file))
	}
	// ApplyFixes runs the result through gofmt, so the edit text need not
	// reproduce indentation.
	return analysis.SuggestedFix{Message: "iterate over sorted keys", TextEdits: edits}, true
}

func usesIdent(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

func importsPath(file *ast.File, path string) bool {
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) == path {
			return true
		}
	}
	return false
}

// sortImportEdit inserts `import "sort"` after the package clause (gofmt
// later merges formatting; grouping into an existing block is cosmetic).
func sortImportEdit(file *ast.File) analysis.TextEdit {
	pos := file.Name.End()
	return analysis.TextEdit{Pos: pos, End: pos, NewText: []byte("\n\nimport \"sort\"")}
}
