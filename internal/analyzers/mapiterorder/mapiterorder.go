// Package mapiterorder flags range loops over maps whose bodies have
// order-dependent effects: Go randomizes map iteration order, so appending
// to a result slice, writing to an output stream, assigning state IDs, or
// returning loop-derived values from inside such a loop makes solver
// output nondeterministic run to run. Where the rewrite is mechanical, the
// analyzer suggests the sorted-keys loop.
package mapiterorder

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"dprle/internal/analysis"
	"dprle/internal/analyzers/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "mapiterorder",
	Doc: `flag map iteration whose body is order-dependent

A range over a map is flagged when its body:

  (a) appends to a slice declared outside the loop — unless that slice is
      sorted afterwards in the same function (the canonical collect-keys-
      then-sort pattern is therefore clean);
  (b) writes to an outside writer or builder (Write*/Print*/Fprint*/Add*
      methods — assigning NFA state IDs counts), excluding budget probes;
  (c) contains a return whose results mention the iteration variables or
      anything assigned inside the loop (e.g. which variable's error you
      return depends on which key the runtime visits first).

Copying one map into another, accumulating an order-insensitive total, or
ranging only to test a predicate are all order-independent and not
flagged. For string- or int-keyed maps the analyzer suggests the
mechanical fix: collect the keys, sort them, iterate the sorted slice.

Suppress with //lint:ignore dprlelint/mapiterorder <reason>.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if t, ok := pass.TypesInfo.Types[rng.X]; !ok || !isMap(t.Type) {
					return true
				}
				checkMapRange(pass, file, fn, rng)
				return true
			})
		}
	}
	return nil
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkMapRange(pass *analysis.Pass, file *ast.File, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	reasons := map[string]bool{}

	// Objects whose value depends on iteration state: the key/value
	// variables plus everything assigned inside the loop body.
	tainted := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				tainted[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				tainted[obj] = true
			}
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, l := range as.Lhs {
				if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
					// Anything assigned inside the body holds an
					// iteration-derived value at a return inside the body,
					// wherever it was declared.
					if obj := info.Defs[id]; obj != nil {
						tainted[obj] = true
					} else if obj := info.Uses[id]; obj != nil {
						tainted[obj] = true
					}
				}
			}
		}
		return true
	})

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Nested map ranges get their own report; don't double-count
			// their bodies here.
			if t, ok := info.Types[n.X]; ok && isMap(t.Type) && n != rng {
				return false
			}
		case *ast.AssignStmt:
			// Rule (a): x = append(x, ...) with x declared outside.
			if obj := appendTarget(info, n); obj != nil && !declaredWithin(obj, rng) && !sortedAfter(info, fn, rng, obj) {
				reasons[fmt.Sprintf("appends to %s in map order", obj.Name())] = true
			}
		case *ast.CallExpr:
			if name, ok := orderSensitiveWrite(info, n); ok {
				reasons[fmt.Sprintf("calls %s in map order", name)] = true
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				bad := false
				ast.Inspect(res, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && tainted[info.Uses[id]] {
						bad = true
					}
					return !bad
				})
				if bad {
					reasons["returns a value derived from the current iteration"] = true
					break
				}
			}
		}
		return true
	})

	if len(reasons) == 0 {
		return
	}
	var why string
	for r := range reasons {
		if why == "" || r < why {
			why = r // pick deterministically; one reason is enough
		}
	}
	d := analysis.Diagnostic{
		Pos:     rng.Pos(),
		End:     rng.Body.Lbrace,
		Message: fmt.Sprintf("map iteration order leaks into results (%s); iterate sorted keys instead", why),
	}
	if fix, ok := sortedKeysFix(pass, file, fn, rng); ok {
		d.SuggestedFixes = []analysis.SuggestedFix{fix}
	}
	pass.Report(d)
}

// appendTarget returns the object x for statements x = append(x, ...).
func appendTarget(info *types.Info, as *ast.AssignStmt) types.Object {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" {
		return nil
	}
	if b, ok := info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	return info.Uses[id]
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}

// sortedAfter reports whether obj is passed to a sort/slices call after
// the range loop within the same function — the collect-then-sort idiom.
func sortedAfter(info *types.Info, fn *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return !found
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			pkgID, ok := fun.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pn, ok := info.Uses[pkgID].(*types.PkgName); !ok ||
				(pn.Imported().Path() != "sort" && pn.Imported().Path() != "slices") {
				return true
			}
		case *ast.Ident:
			// Local helpers like sortInts(xs) count as sorting too.
			if !strings.HasPrefix(strings.ToLower(fun.Name), "sort") {
				return true
			}
		default:
			return true
		}
		for _, arg := range call.Args {
			used := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
					used = true
				}
				return !used
			})
			if used {
				found = true
				break
			}
		}
		return true
	})
	return found
}

// orderSensitiveWrite reports calls that emit output or allocate IDs in
// iteration order: methods named Write*, Print*, Fprint*, or Add* on a
// non-budget receiver, and the fmt.Fprint*/fmt.Print* functions.
func orderSensitiveWrite(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if !hasAnyPrefix(name, "Write", "Print", "Fprint", "Add") {
		return "", false
	}
	if s, ok := info.Selections[sel]; ok { // method call
		if lintutil.IsBudgetPtr(s.Recv()) {
			return "", false // budget probes are order-insensitive
		}
		return name, true
	}
	// Package-qualified: only fmt's printers are write-like.
	if pkgID, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := info.Uses[pkgID].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
			return "fmt." + name, true
		}
	}
	return "", false
}

func hasAnyPrefix(s string, prefixes ...string) bool {
	for _, p := range prefixes {
		if len(s) >= len(p) && s[:len(p)] == p {
			return true
		}
	}
	return false
}
