package a

import (
	"fmt"
	"sort"
	"strings"

	"budget"
)

// Rule (a): appending to an outside slice in map order.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order leaks into results \(appends to out in map order\)`
		out = append(out, k)
	}
	return out
}

// Clean: the canonical collect-then-sort idiom.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Clean: a local sort helper counts as sorting too.
func SortedKeysHelper(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortInts(out)
	return out
}

func sortInts(a []int) { sort.Ints(a) }

// Rule (b): writing output in map order.
func Render(m map[string]string) string {
	var b strings.Builder
	for k, v := range m { // want `map iteration order leaks into results \(calls WriteString in map order\)`
		b.WriteString(k + "=" + v + "\n")
	}
	return b.String()
}

// Rule (b): fmt printers count as writers.
func Dump(m map[string]int) {
	for k, v := range m { // want `map iteration order leaks into results \(calls fmt\.Printf in map order\)`
		fmt.Printf("%s=%d\n", k, v)
	}
}

// Clean: budget probes are order-insensitive accounting, not output.
func Account(bud *budget.Budget, m map[string]int) {
	for range m {
		if err := bud.AddStates(1, "account"); err != nil {
			return
		}
	}
}

// Rule (c): which variable's error is reported depends on map order.
func Validate(m map[string]int) error {
	for k, v := range m { // want `map iteration order leaks into results \(returns a value derived from the current iteration\)`
		if v < 0 {
			return fmt.Errorf("negative value for %s", k)
		}
	}
	return nil
}

// Clean: an order-independent existence check returning constants.
func HasNegative(m map[string]int) bool {
	for _, v := range m {
		if v < 0 {
			return true
		}
	}
	return false
}

// Clean: copying one map into another is order-independent.
func Clone(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Clean: order-insensitive accumulation.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
