package fix

import (
	"fmt"
)

// Lines qualifies for the mechanical sorted-keys rewrite: a named string
// key, a named value, and a simple ident as the ranged expression.
func Lines(counts map[string]int) []string {
	var out []string
	for name, n := range counts { // want `map iteration order leaks into results \(appends to out in map order\)`
		out = append(out, fmt.Sprintf("%s=%d", name, n))
	}
	return out
}
