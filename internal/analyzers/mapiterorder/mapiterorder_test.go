package mapiterorder_test

import (
	"testing"

	"dprle/internal/analysis/analysistest"
	"dprle/internal/analyzers/mapiterorder"
)

func TestMapiterorder(t *testing.T) {
	analysistest.Run(t, "testdata", mapiterorder.Analyzer, "a")
}

func TestSortedKeysFix(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, "testdata", mapiterorder.Analyzer, "fix")
}
