package mapiterorder_test

import (
	"testing"

	"dprle/internal/analysis/analysistest"
	"dprle/internal/analyzers/mapiterorder"
)

func TestMapiterorder(t *testing.T) {
	analysistest.Run(t, "testdata", mapiterorder.Analyzer, "a")
}

func TestSortedKeysFix(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, "testdata", mapiterorder.Analyzer, "fix")
}

// TestFixRoundTrip applies the sorted-keys fix to a copy of the fixture
// tree and re-runs the analyzer: the fix must discharge its own finding
// and leave gofmt-clean source behind.
func TestFixRoundTrip(t *testing.T) {
	analysistest.RunFixRoundTrip(t, "testdata", mapiterorder.Analyzer, "fix")
}
