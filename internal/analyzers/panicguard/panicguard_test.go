package panicguard_test

import (
	"testing"

	"dprle/internal/analysis/analysistest"
	"dprle/internal/analyzers/panicguard"
)

func TestPanicguard(t *testing.T) {
	analysistest.Run(t, "testdata", panicguard.Analyzer, "a")
}
