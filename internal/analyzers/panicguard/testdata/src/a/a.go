package a

import "fmt"

// Exported reaches a crash site inside an unexported helper; the finding
// is attributed to this seed. (The doc must not name the p-word: that
// would document the contract and exempt it.)
func Exported(x int) int { return helper(x) }

func helper(x int) int {
	if x < 0 {
		panic("negative input") // want `panic reachable from exported function Exported \(via helper\) without a recover boundary`
	}
	return x
}

// Direct crashes on zero input and is flagged at the site itself.
func Direct(x int) int {
	if x == 0 {
		panic("zero") // want `panic reachable from exported function Direct without a recover boundary`
	}
	return 1 / x
}

// Clean: Must* names document the panic contract by convention.
func MustParse(s string) int {
	if s == "" {
		panic("empty input")
	}
	return len(s)
}

// Clean: a doc comment stating the contract exempts the function.
// Div panics if y is zero.
func Div(x, y int) int {
	if y == 0 {
		panic("division by zero")
	}
	return x / y
}

// Clean: a deferred func literal calling recover is a boundary.
func Guarded() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("recovered: %v", r)
		}
	}()
	panic("internal invariant")
}

// Clean: deferring a recover helper (one level) is a boundary too —
// the dprle.recoverToError pattern.
func GuardedByHelper() (err error) {
	defer recoverToError(&err)
	panic("internal invariant")
}

func recoverToError(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("recovered: %v", r)
	}
}

// Clean: a panic in a function no exported seed reaches.
func orphan() {
	panic("unreachable from the API")
}

// Clean: the escape hatch with a reason suppresses the finding.
func Checked(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	if total < 0 {
		//lint:ignore dprlelint/panicguard overflow is impossible for the fixture's inputs
		panic("invariant violated")
	}
	return total
}
