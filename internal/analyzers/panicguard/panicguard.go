// Package panicguard flags panic sites reachable from a package's
// exported API without an intervening recover boundary. The solver's
// public surface (dprle.Solve and friends) promises errors, not panics —
// internal invariant panics are converted at the API edge by the
// PanicError recover boundary — and the user-input parsers
// (internal/lang, internal/regex) must reject malformed input with
// wrapped errors, never a crash.
package panicguard

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
	"unicode"

	"dprle/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "panicguard",
	Doc: `flag panics reachable from exported functions

The analyzer builds the package's static call graph and walks it from
every exported function or method. A panic call site reachable on some
path is reported unless the path is cut by one of three sanctioned
boundaries:

  - a recover boundary: a function that defers recover(), directly via a
    func literal or through a helper (defer recoverToError(&err));
  - a Must* function: by Go convention its name documents that it panics
    on bad input, and callers opt in;
  - a documented panic: a function whose doc comment states that it
    panics is an accepted contract, and its callers take responsibility.

Unexported invariant panics that are genuinely unreachable-if-correct
(checked exhaustiveness, structural invariants) should carry a
//lint:ignore dprlelint/panicguard <reason> directive on the panic line.`,
	Run: run,
}

// fnInfo is the per-function summary the call graph is built from.
type fnInfo struct {
	decl      *ast.FuncDecl
	obj       *types.Func
	panics    []*ast.CallExpr // direct panic(...) sites
	callees   map[*types.Func]bool
	protected bool // defers a recover boundary
	exempt    bool // Must* naming or documented panic contract
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	fns := map[*types.Func]*fnInfo{}
	var order []*fnInfo

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &fnInfo{decl: fd, obj: obj, callees: map[*types.Func]bool{}}
			fns[obj] = fi
			order = append(order, fi)
		}
	}

	// recoversDirectly is needed before protection can be resolved: a
	// deferred call to a same-package helper whose body calls recover()
	// (the dprle.recoverToError pattern) protects the deferring function.
	recovers := map[*types.Func]bool{}
	for obj, fi := range fns {
		if callsRecover(info, fi.decl.Body) {
			recovers[obj] = true
		}
	}

	for _, fi := range fns {
		fi.exempt = isMustNamed(fi.obj.Name()) || docMentionsPanic(fi.decl)
		fi.protected = defersRecover(info, fi.decl.Body, recovers)
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					fi.panics = append(fi.panics, call)
					return true
				}
			}
			if callee := calleeFunc(info, call); callee != nil {
				if _, local := fns[callee]; local {
					fi.callees[callee] = true
				}
			}
			return true
		})
	}

	// Walk from each exported seed, stopping at exempt or protected nodes.
	// reachedVia[f] records the lexicographically first seed that reaches
	// f, keeping messages deterministic.
	reachedVia := map[*types.Func]string{}
	var seeds []*fnInfo
	for _, fi := range order {
		if isExportedAPI(fi.decl) {
			seeds = append(seeds, fi)
		}
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i].obj.Name() < seeds[j].obj.Name() })
	for _, seed := range seeds {
		if seed.exempt || seed.protected {
			continue
		}
		stack := []*fnInfo{seed}
		visited := map[*fnInfo]bool{seed: true}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, ok := reachedVia[cur.obj]; !ok {
				reachedVia[cur.obj] = seed.obj.Name()
			}
			// Visit callees in name order so traversal (and thus the seed
			// recorded for shared helpers) is deterministic.
			callees := make([]*types.Func, 0, len(cur.callees))
			for callee := range cur.callees {
				callees = append(callees, callee)
			}
			sort.Slice(callees, func(i, j int) bool { return callees[i].Name() < callees[j].Name() })
			for _, callee := range callees {
				fi := fns[callee]
				if fi == nil || visited[fi] || fi.exempt || fi.protected {
					continue
				}
				visited[fi] = true
				stack = append(stack, fi)
			}
		}
	}

	for _, fi := range order {
		seed, ok := reachedVia[fi.obj]
		if !ok {
			continue
		}
		for _, p := range fi.panics {
			via := ""
			if seed != fi.obj.Name() {
				via = fmt.Sprintf(" (via %s)", fi.obj.Name())
			}
			pass.Reportf(p.Pos(),
				"panic reachable from exported function %s%s without a recover boundary; return a wrapped error or document the panic contract",
				seed, via)
		}
	}
	return nil
}

// isExportedAPI reports whether the declaration is part of the package's
// exported surface: an exported function, or an exported method on an
// exported receiver type.
func isExportedAPI(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers (IndexExpr) and plain idents both end in an ident.
	for {
		switch tt := t.(type) {
		case *ast.Ident:
			return tt.IsExported()
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		default:
			return true // be conservative: treat unknown shapes as exported
		}
	}
}

// isMustNamed reports whether name follows the MustXxx convention.
func isMustNamed(name string) bool {
	rest, ok := strings.CutPrefix(name, "Must")
	if !ok {
		return false
	}
	return rest == "" || unicode.IsUpper(rune(rest[0]))
}

// docMentionsPanic reports whether the function's doc comment documents a
// panic contract ("panics if ...", "It panics on ...").
func docMentionsPanic(fd *ast.FuncDecl) bool {
	return fd.Doc != nil && strings.Contains(strings.ToLower(fd.Doc.Text()), "panic")
}

// defersRecover reports whether the body defers a recover boundary:
// either a func literal calling recover(), or a call to a same-package
// helper that calls recover() (one level deep).
func defersRecover(info *types.Info, body *ast.BlockStmt, recovers map[*types.Func]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok || found {
			return !found
		}
		switch fun := ast.Unparen(d.Call.Fun).(type) {
		case *ast.FuncLit:
			if callsRecover(info, fun.Body) {
				found = true
			}
		default:
			if callee := calleeFunc(info, d.Call); callee != nil && recovers[callee] {
				found = true
			}
		}
		return !found
	})
	return found
}

func callsRecover(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "recover" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel]
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}
