package budgetcheck_test

import (
	"testing"

	"dprle/internal/analysis/analysistest"
	"dprle/internal/analyzers/budgetcheck"
)

func TestBudgetcheck(t *testing.T) {
	analysistest.Run(t, "testdata", budgetcheck.Analyzer, "a")
}
