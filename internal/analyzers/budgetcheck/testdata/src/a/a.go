package a

import "budget"

// Determinize / DeterminizeB model the solver's sibling convention: the
// un-budgeted form wraps the budgeted one with a nil budget.

func Determinize(x int) int {
	d, _ := DeterminizeB(nil, x) // clean: a literal nil budget cannot fail
	return d
}

func DeterminizeB(bud *budget.Budget, x int) (int, error) {
	if err := bud.AddStates(1, "determinize"); err != nil {
		return 0, err
	}
	return x + 1, nil
}

// R1: a budget-threaded function must not call the un-budgeted sibling.
func SolveB(bud *budget.Budget, x int) (int, error) {
	y := Determinize(x) // want `call to un-budgeted Determinize inside a budget-threaded function; use DeterminizeB`
	return y, nil
}

// Clean: same shape, budget threaded through.
func SolveWellB(bud *budget.Budget, x int) (int, error) {
	y, err := DeterminizeB(bud, x)
	if err != nil {
		return 0, err
	}
	return y, nil
}

// Clean: no budget in scope, the un-budgeted wrapper is the right call.
func Plain(x int) int {
	return Determinize(x)
}

// R2: discarding a live budget's error hides exhaustion.
func UseB(bud *budget.Budget, x int) int {
	y, _ := DeterminizeB(bud, x) // want `error result of DeterminizeB is discarded`
	return y
}

// R2: a bare expression statement discards the error too.
func DropB(bud *budget.Budget, x int) {
	DeterminizeB(bud, x) // want `error result of DeterminizeB is discarded`
}

// Method sibling pairs resolve through the receiver's method set.
type M struct{}

func (m M) Minimize() int {
	v, _ := m.MinimizeB(nil) // clean: nil-budget contract
	return v
}

func (m M) MinimizeB(bud *budget.Budget) (int, error) {
	return 1, bud.Check("minimize")
}

func ShrinkB(bud *budget.Budget, m M) (int, error) {
	v := m.Minimize() // want `call to un-budgeted Minimize inside a budget-threaded function; use MinimizeB`
	_ = v
	return m.MinimizeB(bud)
}

// Methods on a struct that carries a budget field are budget-threaded
// (the solver's gciSolver / maximizer pattern).
type solver struct {
	bud *budget.Budget
}

func (s *solver) run(x int) (int, error) {
	y := Determinize(x) // want `call to un-budgeted Determinize inside a budget-threaded function; use DeterminizeB`
	_ = y
	return DeterminizeB(s.bud, x)
}

// The escape hatch suppresses a finding, but only with a reason.
func IgnoredB(bud *budget.Budget, x int) int {
	//lint:ignore dprlelint/budgetcheck measuring the unbudgeted baseline on purpose
	y := Determinize(x)
	return y
}

func NotIgnoredB(bud *budget.Budget, x int) int {
	//lint:ignore dprlelint/budgetcheck
	y := Determinize(x) // want `call to un-budgeted Determinize`
	return y
}
