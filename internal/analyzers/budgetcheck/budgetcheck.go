// Package budgetcheck enforces the solver's resource-budget discipline
// (PR 1): inside a budget-threaded function, every construction that has a
// budgeted *B variant must go through it, and the error a *B variant
// returns must not be silently discarded — except under the nil-budget
// contract, where it provably cannot be non-nil.
package budgetcheck

import (
	"go/ast"
	"go/types"

	"dprle/internal/analysis"
	"dprle/internal/analyzers/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "budgetcheck",
	Doc: `check that budget-threaded code stays budgeted

Two rules:

R1 — inside a function that has access to a *budget.Budget (a budget
parameter, or a method whose receiver carries a budget field), a call to a
function F is flagged when a budgeted sibling FB(bud, ...) exists. Calling
the un-budgeted form silently re-opens the worst-case-exponential
constructions (determinization, products) the budget exists to bound.

R2 — the error result of a *B call must be used. Discarding it (via _, a
bare expression statement, go, or defer) is flagged unless the budget
argument is the literal nil: a nil *budget.Budget is inert by contract
(every method returns nil immediately), so a nil-budget call cannot fail,
and the un-budgeted wrappers (nfa.Intersect over nfa.IntersectB) rely on
exactly that.

Suppress with //lint:ignore dprlelint/budgetcheck <reason>.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	budgeted := lintutil.IsBudgetThreaded(pass.TypesInfo, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if budgeted {
				checkUnbudgetedCall(pass, n)
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				checkDiscardedError(pass, call, nil)
			}
		case *ast.GoStmt:
			checkDiscardedError(pass, n.Call, nil)
		case *ast.DeferStmt:
			checkDiscardedError(pass, n.Call, nil)
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
					checkDiscardedError(pass, call, n.Lhs)
				}
			}
		}
		return true
	})
}

// checkUnbudgetedCall implements R1.
func checkUnbudgetedCall(pass *analysis.Pass, call *ast.CallExpr) {
	callee := lintutil.Callee(pass.TypesInfo, call)
	if callee == nil {
		return
	}
	sib := lintutil.BudgetedSibling(callee)
	if sib == nil {
		return
	}
	pass.Reportf(call.Pos(),
		"call to un-budgeted %s inside a budget-threaded function; use %s and pass the budget through",
		callee.Name(), sib.Name())
}

// checkDiscardedError implements R2. lhs is nil when the call's results
// are discarded wholesale (expression statement, go, defer); otherwise it
// is the assignment's left-hand side.
func checkDiscardedError(pass *analysis.Pass, call *ast.CallExpr, lhs []ast.Expr) {
	callee := lintutil.Callee(pass.TypesInfo, call)
	if callee == nil || !lintutil.IsBudgetedVariant(callee) {
		return
	}
	sig := callee.Type().(*types.Signature)
	nres := sig.Results().Len()
	discarded := false
	switch {
	case lhs == nil:
		discarded = true
	case len(lhs) == nres:
		// The error is the last result by the *B convention.
		if id, ok := lhs[nres-1].(*ast.Ident); ok && id.Name == "_" {
			discarded = true
		}
	}
	if !discarded {
		return
	}
	// Nil-budget contract: a literal-nil budget argument cannot trip, so
	// its error is statically nil and safe to drop (the un-budgeted
	// wrapper pattern).
	if len(call.Args) > 0 && lintutil.IsNilIdent(pass.TypesInfo, call.Args[0]) {
		return
	}
	pass.Reportf(call.Pos(),
		"error result of %s is discarded; a non-nil budget can trip mid-construction (only a literal nil budget cannot fail)",
		callee.Name())
}
