// Package nilness is the flow-sensitive nil analysis of the dprlelint
// suite: it tracks definite nilness for pointer-, map-, and error-typed
// locals (the solver's load-bearing cases are *nfa.NFA, *budget.Budget,
// and error) through branches, and reports dereferences that panic on
// every feasible path plus nil checks whose outcome is already decided.
package nilness

import (
	"go/ast"
	"go/types"

	"dprle/internal/analysis"
	"dprle/internal/analysis/dataflow"
	"dprle/internal/analyzers/interproc"
	"dprle/internal/analyzers/lintutil"
	"dprle/internal/analyzers/nilfacts"
)

var Analyzer = &analysis.Analyzer{
	Name: "nilness",
	Doc: `flag provably nil dereferences and dead nil checks

A forward dataflow analysis over each function's control-flow graph tracks
whether every pointer-, map-, and error-typed local is nil, non-nil, or
unknown, refining along branches (x is non-nil inside "if x != nil",
including through && / || decomposition). Two findings:

N1 — a field access through, or explicit dereference of, a variable that
is provably nil on every path reaching that point; likewise a write into a
provably nil map. These panic at runtime, unconditionally.

N2 — a nil comparison whose outcome is already determined by the facts in
force (x provably nil or provably non-nil): the check is dead, and the
code it guards is either unconditionally run or unreachable.

N3 (interprocedural, disable with -interproc=false) — a nil value (the
literal, or a variable provably nil on this path) passed to a function in
the same package whose summary says it dereferences that parameter on some
path: the panic happens one call deeper, where intraprocedural analysis
cannot see it. Summaries come from internal/analyzers/interproc; callees
that guard the parameter with their own nil check are not flagged.

Method calls through possibly-nil receivers are deliberately not flagged:
the solver's nil-receiver contract (budget.Budget) makes those legal.
Only variables that are never address-taken and never captured by a
closure are tracked, so "provably" is trustworthy.

Suppress with //lint:ignore dprlelint/nilness <reason>.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	var ip *interproc.Info
	if interproc.Enabled {
		ip = interproc.Of(pass)
	}
	for _, file := range pass.Files {
		var err error
		ast.Inspect(file, func(n ast.Node) bool {
			if err != nil {
				return false
			}
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					err = checkFunc(pass, ip, fn, fn.Body)
				}
			case *ast.FuncLit:
				err = checkFunc(pass, ip, fn, fn.Body)
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// nilable selects the types whose zero value is nil and whose dereference
// (or map write) panics.
func nilable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map:
		return true
	case *types.Interface:
		// Only the error interface: general interfaces invite noise from
		// typed-nil subtleties.
		return types.Identical(t, types.Universe.Lookup("error").Type())
	}
	return false
}

func checkFunc(pass *analysis.Pass, ip *interproc.Info, fn ast.Node, body *ast.BlockStmt) error {
	tracked := nilfacts.TrackedVars(pass.TypesInfo, fn, body, nilable)
	if len(tracked) == 0 {
		// No flow facts to compute, but literal nil arguments can still
		// trip an N3 summary.
		if ip != nil {
			lat := &nilfacts.Lattice{Info: pass.TypesInfo, Tracked: tracked}
			empty := &nilfacts.Facts{}
			reported := map[ast.Node]bool{}
			ast.Inspect(body, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := m.(*ast.CallExpr); ok {
					checkNilArgs(pass, ip, lat, call, empty, reported)
				}
				return true
			})
		}
		return nil
	}
	lat := &nilfacts.Lattice{Info: pass.TypesInfo, Tracked: tracked}
	g := dataflow.New(body)
	res, err := dataflow.Solve(g, lat, lat, dataflow.Forward)
	if err != nil {
		return err
	}

	// N1: dereferences under the facts in force at each node.
	reported := map[ast.Node]bool{}
	dataflow.WalkForward(g, lat, lat, res, func(n ast.Node, before dataflow.Fact) {
		checkNode(pass, ip, lat, n, before.(*nilfacts.Facts), reported)
	})

	// N2: decided nil checks, detected on the condition edges. An edge
	// whose refinement contradicts the facts at the end of its source
	// block is infeasible; its polarity can never be taken.
	bottom := lat.Bottom()
	seen := map[ast.Expr]bool{}
	for _, b := range g.Blocks {
		out := res.Out[b.ID]
		if lat.Equal(out, bottom) {
			continue
		}
		for _, e := range b.Succs {
			if e.Cond == nil || seen[e.Cond] {
				continue
			}
			v, _, ok := lat.NilComparison(e.Cond)
			if !ok {
				continue
			}
			if val := out.(*nilfacts.Facts).Get(v); val != nilfacts.Unknown {
				seen[e.Cond] = true
				pass.Reportf(e.Cond.Pos(),
					"dead nil check: %s is provably %s here, so this condition is constant",
					v.Name(), val)
			}
		}
	}
	return nil
}

// checkNode walks one block node (skipping nested function literals, which
// have their own CFG) and reports guaranteed-nil dereferences.
func checkNode(pass *analysis.Pass, ip *interproc.Info, lat *nilfacts.Lattice, n ast.Node, f *nilfacts.Facts, reported map[ast.Node]bool) {
	// A RangeStmt node stands only for its X operand (see dataflow.Block).
	if rng, ok := n.(*ast.RangeStmt); ok {
		n = rng.X
	}
	// Nil-map writes: the assignment's lhs index expressions.
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok {
				continue
			}
			if v := trackedIdent(pass.TypesInfo, lat, ix.X); v != nil && f.Get(v) == nilfacts.Nil {
				if _, isMap := v.Type().Underlying().(*types.Map); isMap && !reported[ix] {
					reported[ix] = true
					pass.Reportf(ix.Pos(), "write to provably nil map %s panics", v.Name())
				}
			}
		}
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.StarExpr:
			if v := trackedIdent(pass.TypesInfo, lat, m.X); v != nil && f.Get(v) == nilfacts.Nil && !reported[m] {
				reported[m] = true
				pass.Reportf(m.Pos(), "provably nil dereference of %s", v.Name())
			}
		case *ast.SelectorExpr:
			sel, ok := pass.TypesInfo.Selections[m]
			if !ok || sel.Kind() != types.FieldVal {
				return true // method value/call: nil receivers may be legal
			}
			if v := trackedIdent(pass.TypesInfo, lat, m.X); v != nil && f.Get(v) == nilfacts.Nil && !reported[m] {
				if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
					reported[m] = true
					pass.Reportf(m.Pos(), "field access %s.%s on provably nil %s panics",
						v.Name(), m.Sel.Name, v.Name())
				}
			}
		case *ast.CallExpr:
			checkNilArgs(pass, ip, lat, m, f, reported)
		}
		return true
	})
}

// checkNilArgs is N3: a provably nil argument handed to an in-package
// callee whose summary dereferences that parameter.
func checkNilArgs(pass *analysis.Pass, ip *interproc.Info, lat *nilfacts.Lattice, call *ast.CallExpr, f *nilfacts.Facts, reported map[ast.Node]bool) {
	if ip == nil || reported[call] {
		return
	}
	callee := lintutil.Callee(pass.TypesInfo, call)
	if callee == nil {
		return
	}
	sum, ok := ip.ForFunc(callee)
	if !ok {
		return
	}
	sig := callee.Type().(*types.Signature)
	for j, arg := range call.Args {
		if j >= len(sum.DerefsParamWhenNil) || !sum.DerefsParamWhenNil[j] {
			continue
		}
		param := sig.Params().At(j).Name()
		if lintutil.IsNilIdent(pass.TypesInfo, arg) {
			reported[call] = true
			pass.Reportf(call.Pos(), "passing nil to %s, which dereferences parameter %s (panic one call deep)",
				callee.Name(), param)
			return
		}
		if v := trackedIdent(pass.TypesInfo, lat, arg); v != nil && f.Get(v) == nilfacts.Nil {
			reported[call] = true
			pass.Reportf(call.Pos(), "passing provably nil %s to %s, which dereferences parameter %s (panic one call deep)",
				v.Name(), callee.Name(), param)
			return
		}
	}
}

// trackedIdent resolves e to a tracked variable, or nil.
func trackedIdent(info *types.Info, lat *nilfacts.Lattice, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil || !lat.Tracked[v] {
		return nil
	}
	return v
}
