package nilness_test

import (
	"testing"

	"dprle/internal/analysis/analysistest"
	"dprle/internal/analyzers/nilness"
)

func TestNilness(t *testing.T) {
	analysistest.Run(t, "testdata", nilness.Analyzer, "a", "n3")
}
