package a

type T struct{ x int }

type B struct{ n int }

// Check follows the solver's nil-receiver contract: legal on nil.
func (b *B) Check() int {
	if b == nil {
		return 0
	}
	return b.n
}

// N1: explicit dereference of a zero-value pointer.
func star() int {
	var p *int
	return *p // want `provably nil dereference of p`
}

// N1: field access through a pointer refined to nil by the branch.
func derefUnderNilCheck(c bool) int {
	var p *T
	if c {
		p = &T{}
	}
	if p == nil {
		return p.x // want `field access p\.x on provably nil p panics`
	}
	return p.x // clean: non-nil on this path
}

// N1: writing into a nil map panics.
func mapWrite() {
	var m map[string]int
	m["k"] = 1 // want `write to provably nil map m panics`
}

// N1: reassignment to nil is tracked through straight-line code.
func reassign(p *T) int {
	p = nil
	return p.x // want `field access p\.x on provably nil p panics`
}

// N2: freshly allocated pointer makes the check constant-true.
func deadCheckNonNil() int {
	p := &T{}
	if p != nil { // want `dead nil check: p is provably non-nil here, so this condition is constant`
		return 1
	}
	return 0
}

// N2: zero-value error makes the check constant, and the guarded
// dereference sits on an infeasible edge (no N1 report for it).
func deadCheckNil() int {
	var p *T
	if p != nil { // want `dead nil check: p is provably nil here, so this condition is constant`
		return p.x // clean: unreachable under the facts
	}
	return 0
}

// N2: a repeated check after an early return is decided.
func refined(p *T) int {
	if p == nil {
		return 0
	}
	if p == nil { // want `dead nil check: p is provably non-nil here, so this condition is constant`
		return -1
	}
	return p.x
}

// Clean: possibly-nil is not provably nil; N1 stays quiet.
func mayBeNil(c bool) int {
	var p *T
	if c {
		p = &T{}
	}
	return p.x
}

// Clean: short-circuit refinement flows into the guarded body.
func shortCircuit(p, q *T) int {
	if p != nil && q != nil {
		return p.x + q.x
	}
	return 0
}

// Clean: the loop join degrades facts to unknown, so the in-loop check
// is live even though p starts nil.
func loop(items []int) *T {
	var p *T
	for _, it := range items {
		if p == nil {
			p = &T{x: it}
		}
	}
	return p
}

// Clean: method calls through possibly-nil receivers are legal under the
// nil-receiver contract.
func methodOK() int {
	var b *B
	return b.Check()
}

// Clean: p is captured by a closure, so it is not tracked.
func captured() int {
	var p *T
	f := func() { p = &T{} }
	f()
	return p.x
}

// Clean: p is address-taken, so it is not tracked.
func addrTaken(fill func(**T)) int {
	var p *T
	fill(&p)
	return p.x
}

// Clean: error from a call is unknown, both branches feasible.
func errFlow(get func() (int, error)) int {
	v, err := get()
	if err != nil {
		return 0
	}
	return v
}
