// N3: nil flowing into a same-package callee that dereferences it.
package n3

type node struct {
	next *node
	v    int
}

func deref(p *node) int { return p.v }

func derefTransitive(q *node) int { return deref(q) }

func guarded(p *node) int {
	if p == nil {
		return 0
	}
	return p.v
}

func callerNilVar() int {
	var p *node
	return deref(p) // want `passing provably nil p to deref, which dereferences parameter p`
}

func callerNilLiteral() int {
	return deref(nil) // want `passing nil to deref, which dereferences parameter p`
}

func callerTransitive() int {
	var p *node
	return derefTransitive(p) // want `passing provably nil p to derefTransitive`
}

func callerGuardedOK() int {
	var p *node
	return guarded(p) // guarded handles nil: clean
}

func callerNonNilOK() int {
	p := &node{v: 2}
	return deref(p)
}

func callerRefinedOK(p *node) int {
	if p != nil {
		return deref(p)
	}
	return 0
}

// derefWhenOtherNil dereferences b only on a's nil branch: the panic needs
// both parameters nil at once, so b's per-parameter summary bit stays
// clear and nil-b-alone callers are not flagged.
func derefWhenOtherNil(a, b *node) int {
	if a == nil {
		return b.v
	}
	return 0
}

func callerCoNilOK() int {
	a := &node{v: 1}
	return derefWhenOtherNil(a, nil) // clean: the deref also needs a nil
}
