// Package lintutil holds type- and AST-level predicates shared by the
// dprlelint analyzers: recognizing the solver's *budget.Budget type, the
// *B budgeted-sibling convention, and budget-threaded functions.
package lintutil

import (
	"go/ast"
	"go/types"
	"path"
)

// IsBudgetPtr reports whether t is *budget.Budget — a pointer to a named
// type Budget declared in a package whose path ends in "budget". Matching
// by name and path suffix (rather than the exact import path) lets the
// analyzers run unchanged over analysistest fixtures, which supply their
// own minimal budget package.
func IsBudgetPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Budget" || obj.Pkg() == nil {
		return false
	}
	return path.Base(obj.Pkg().Path()) == "budget"
}

// HasBudgetParam reports whether the signature takes a *budget.Budget
// anywhere in its parameter list.
func HasBudgetParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if IsBudgetPtr(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// CarriesBudget reports whether a value of type t gives access to a
// budget: it is *budget.Budget itself, or a struct (possibly behind a
// pointer) with a *budget.Budget field.
func CarriesBudget(t types.Type) bool {
	if t == nil {
		return false
	}
	if IsBudgetPtr(t) {
		return true
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if IsBudgetPtr(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// IsBudgetThreaded reports whether fn is part of the budget discipline: it
// takes a *budget.Budget parameter, or it is a method on a type carrying a
// budget field (the solver's maximizer/gciSolver pattern).
func IsBudgetThreaded(info *types.Info, fn *ast.FuncDecl) bool {
	obj, ok := info.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if HasBudgetParam(sig) {
		return true
	}
	if recv := sig.Recv(); recv != nil {
		return CarriesBudget(recv.Type())
	}
	return false
}

// BudgetedSibling returns the *B variant of callee, if one exists by the
// solver's convention: a function (or method on the same receiver type)
// named callee.Name()+"B" whose first parameter is *budget.Budget and
// whose last result is error. Returns nil if there is no such sibling.
func BudgetedSibling(callee *types.Func) *types.Func {
	name := callee.Name() + "B"
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var cand types.Object
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		obj, _, _ := types.LookupFieldOrMethod(t, true, callee.Pkg(), name)
		cand = obj
	} else if callee.Pkg() != nil {
		cand = callee.Pkg().Scope().Lookup(name)
	}
	fn, ok := cand.(*types.Func)
	if !ok {
		return nil
	}
	fsig := fn.Type().(*types.Signature)
	params := fsig.Params()
	results := fsig.Results()
	if params.Len() == 0 || !IsBudgetPtr(params.At(0).Type()) {
		return nil
	}
	if results.Len() == 0 || !isErrorType(results.At(results.Len()-1).Type()) {
		return nil
	}
	return fn
}

// IsBudgetedVariant reports whether fn itself follows the *B convention:
// name ends in "B", first parameter *budget.Budget, last result error.
func IsBudgetedVariant(fn *types.Func) bool {
	if len(fn.Name()) < 2 || fn.Name()[len(fn.Name())-1] != 'B' {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	results := sig.Results()
	if params.Len() == 0 || !IsBudgetPtr(params.At(0).Type()) {
		return false
	}
	return results.Len() > 0 && isErrorType(results.At(results.Len()-1).Type())
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// Callee resolves a call expression to the static *types.Func it invokes,
// or nil for calls through function values, type conversions, and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// IsNilIdent reports whether the expression is the untyped nil literal.
func IsNilIdent(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}
