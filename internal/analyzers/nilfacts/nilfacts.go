// Package nilfacts implements the shared nil-tracking lattice used by the
// flow-sensitive analyzers (nilness, budgetflow): for a chosen set of
// local variables it computes, at every program point, whether each
// variable is provably nil, provably non-nil, or unknown, refining facts
// along branch edges (`if x != nil` makes x non-nil on the true edge) via
// the dataflow engine in internal/analysis/dataflow.
//
// The analysis is deliberately conservative: only variables declared in
// the function under analysis, never address-taken and never touched from
// a nested function literal, are tracked. Everything else stays Unknown,
// so "provably nil/non-nil" facts are trustworthy on every feasible path.
package nilfacts

import (
	"go/ast"
	"go/token"
	"go/types"

	"dprle/internal/analysis/dataflow"
)

// Val is the per-variable nilness value. Unknown is the lattice top;
// facts only store Nil/NonNil entries.
type Val uint8

const (
	Unknown Val = iota
	Nil
	NonNil
)

func (v Val) String() string {
	switch v {
	case Nil:
		return "nil"
	case NonNil:
		return "non-nil"
	}
	return "unknown"
}

// Facts maps tracked variables to their definite nilness. A nil *Facts is
// the lattice bottom (unreachable); a missing entry means Unknown.
type Facts struct {
	Vals map[*types.Var]Val
}

// Get returns the fact for v (Unknown when untracked or joined away).
func (f *Facts) Get(v *types.Var) Val {
	if f == nil || v == nil {
		return Unknown
	}
	return f.Vals[v]
}

// Lattice is the join-semilattice plus transfer function over Facts. It
// implements both dataflow.Lattice and dataflow.Transfer.
type Lattice struct {
	Info    *types.Info
	Tracked map[*types.Var]bool
}

// Bottom implements dataflow.Lattice.
func (l *Lattice) Bottom() dataflow.Fact { return (*Facts)(nil) }

// Boundary implements dataflow.Lattice: at function entry every tracked
// variable is Unknown (parameters can be anything).
func (l *Lattice) Boundary() dataflow.Fact { return &Facts{Vals: map[*types.Var]Val{}} }

// Height implements dataflow.Lattice: each tracked variable's entry can be
// joined away at most once on any rising chain, plus the bottom step.
func (l *Lattice) Height() int { return len(l.Tracked) + 2 }

// Join implements dataflow.Lattice: entries survive only where both sides
// agree; disagreement or absence means Unknown.
func (l *Lattice) Join(a, b dataflow.Fact) dataflow.Fact {
	x, y := a.(*Facts), b.(*Facts)
	if x == nil {
		return y
	}
	if y == nil {
		return x
	}
	out := map[*types.Var]Val{}
	for v, val := range x.Vals {
		if y.Vals[v] == val {
			out[v] = val
		}
	}
	return &Facts{Vals: out}
}

// Equal implements dataflow.Lattice.
func (l *Lattice) Equal(a, b dataflow.Fact) bool {
	x, y := a.(*Facts), b.(*Facts)
	if x == nil || y == nil {
		return x == y
	}
	if len(x.Vals) != len(y.Vals) {
		return false
	}
	for v, val := range x.Vals {
		if y.Vals[v] != val {
			return false
		}
	}
	return true
}

func (l *Lattice) set(f *Facts, v *types.Var, val Val) *Facts {
	if !l.Tracked[v] {
		return f
	}
	out := map[*types.Var]Val{}
	for k, x := range f.Vals {
		out[k] = x
	}
	if val == Unknown {
		delete(out, v)
	} else {
		out[v] = val
	}
	return &Facts{Vals: out}
}

// Node implements dataflow.Transfer for the statement kinds that bind
// tracked variables; everything else leaves the fact unchanged.
func (l *Lattice) Node(n ast.Node, fact dataflow.Fact) dataflow.Fact {
	f := fact.(*Facts)
	if f == nil {
		return f
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		return l.assign(n, f)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					v, ok := l.Info.Defs[name].(*types.Var)
					if !ok || !l.Tracked[v] {
						continue
					}
					val := Nil // var with no initializer: zero value is nil for tracked types
					if len(vs.Values) == len(vs.Names) {
						val = l.Eval(vs.Values[i], f)
					} else if len(vs.Values) > 0 {
						val = Unknown // multi-value initializer
					}
					f = l.set(f, v, val)
				}
			}
		}
		return f
	case *ast.RangeStmt:
		// Key/Value are rebound each iteration to unknown element values.
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if v := l.objOf(id); v != nil {
					f = l.set(f, v, Unknown)
				}
			}
		}
		return f
	}
	return f
}

func (l *Lattice) assign(as *ast.AssignStmt, f *Facts) *Facts {
	if len(as.Lhs) == len(as.Rhs) {
		// Evaluate all right-hand sides against the incoming fact before
		// binding, so `a, b = b, a` swaps facts correctly.
		vals := make([]Val, len(as.Rhs))
		for i, r := range as.Rhs {
			vals[i] = l.Eval(r, f)
		}
		for i, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				if v := l.objOf(id); v != nil {
					f = l.set(f, v, vals[i])
				}
			}
		}
		return f
	}
	// Multi-value form (x, err := f()): every bound variable is unknown.
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			if v := l.objOf(id); v != nil {
				f = l.set(f, v, Unknown)
			}
		}
	}
	return f
}

// objOf resolves an identifier to the variable it defines or uses.
func (l *Lattice) objOf(id *ast.Ident) *types.Var {
	if v, ok := l.Info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := l.Info.Uses[id].(*types.Var)
	return v
}

// Eval computes the nilness of an expression under the given facts.
func (l *Lattice) Eval(e ast.Expr, f *Facts) Val {
	e = ast.Unparen(e)
	if tv, ok := l.Info.Types[e]; ok && tv.IsNil() {
		return Nil
	}
	switch e := e.(type) {
	case *ast.Ident:
		if v := l.objOf(e); v != nil && l.Tracked[v] {
			return f.Get(v)
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return NonNil // &composite / &var
		}
	case *ast.CompositeLit, *ast.FuncLit:
		return NonNil
	case *ast.CallExpr:
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			if obj, ok := l.Info.Uses[fun].(*types.Builtin); ok {
				if obj.Name() == "make" || obj.Name() == "new" {
					return NonNil
				}
			}
		}
		// A conversion T(x) preserves the operand's nilness.
		if tv, ok := l.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return l.Eval(e.Args[0], f)
		}
	}
	return Unknown
}

// Branch implements dataflow.Transfer: it refines facts along the edges of
// nil comparisons (x == nil, x != nil) over tracked variables and returns
// bottom when the edge is infeasible under the incoming fact.
func (l *Lattice) Branch(cond ast.Expr, taken bool, fact dataflow.Fact) dataflow.Fact {
	f := fact.(*Facts)
	if f == nil {
		return f
	}
	v, isNilOnTrue, ok := l.NilComparison(cond)
	if !ok {
		return f
	}
	val := NonNil
	if isNilOnTrue == taken {
		val = Nil
	}
	if cur := f.Get(v); cur != Unknown && cur != val {
		return (*Facts)(nil) // contradiction: this edge is infeasible
	}
	return l.set(f, v, val)
}

// NilComparison recognizes `x == nil` / `nil == x` / `x != nil` over a
// tracked variable, returning the variable and whether the comparison
// holds (x is nil) when the condition is true.
func (l *Lattice) NilComparison(cond ast.Expr) (v *types.Var, isNilOnTrue bool, ok bool) {
	be, isBin := ast.Unparen(cond).(*ast.BinaryExpr)
	if !isBin || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	var operand ast.Expr
	if tv, okT := l.Info.Types[y]; okT && tv.IsNil() {
		operand = x
	} else if tv, okT := l.Info.Types[x]; okT && tv.IsNil() {
		operand = y
	} else {
		return nil, false, false
	}
	id, isID := operand.(*ast.Ident)
	if !isID {
		return nil, false, false
	}
	vv := l.objOf(id)
	if vv == nil || !l.Tracked[vv] {
		return nil, false, false
	}
	return vv, be.Op == token.EQL, true
}

// TrackedVars returns the variables eligible for nil tracking in fn: those
// declared within fn (parameters, named results, locals) whose type
// satisfies want, excluding any variable that is address-taken or
// referenced from a function literal nested inside fn (a closure could
// rebind it behind the analysis's back).
func TrackedVars(info *types.Info, fn ast.Node, body *ast.BlockStmt, want func(types.Type) bool) map[*types.Var]bool {
	tracked := map[*types.Var]bool{}
	collect := func(id *ast.Ident) {
		if v, ok := info.Defs[id].(*types.Var); ok && v.Pos() >= fn.Pos() && v.Pos() <= fn.End() && want(v.Type()) {
			tracked[v] = true
		}
	}
	ast.Inspect(fn, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			collect(id)
		}
		return true
	})

	disqualify := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				delete(tracked, v)
			} else if v, ok := info.Defs[id].(*types.Var); ok {
				delete(tracked, v)
			}
		}
	}
	ast.Inspect(body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.UnaryExpr:
			if m.Op == token.AND {
				disqualify(m.X)
			}
		case *ast.FuncLit:
			// Every variable a nested literal touches is out of bounds:
			// the closure may run at any time and rebind it.
			ast.Inspect(m.Body, func(k ast.Node) bool {
				if id, ok := k.(*ast.Ident); ok {
					disqualify(id)
				}
				return true
			})
			return false
		}
		return true
	})
	return tracked
}
