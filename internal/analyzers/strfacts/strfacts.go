// Package strfacts implements the string-language lattice used by the
// strlang analyzer and the interprocedural string summaries: the abstract
// value of a Go string variable is a regular language over the byte
// alphabet, represented by a minimized machine from internal/nfa — the
// paper's own abstract domain (§2), dogfooded as a lint lattice.
//
// The lattice must have finite height even though regular languages form
// an infinite-ascending-chain order, so every value carries a generation
// counter: a join whose operands denote different languages produces a
// strictly larger generation, and normalization widens any value past
// MaxGen — or past the state-size cap — to Σ*, the lattice top. Loop
// back-edges therefore widen to Σ* after at most MaxGen rounds, and the
// dataflow fixpoint terminates within the declared Height. All automaton
// constructions run under an internal/budget cap; a construction the
// budget refuses also widens to Σ*, so the analysis can never hang on an
// adversarial machine.
package strfacts

import (
	"context"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sync"

	"dprle/internal/analysis/dataflow"
	"dprle/internal/analyzers/nilfacts"
	"dprle/internal/budget"
	"dprle/internal/nfa"
)

const (
	// MaxGen is the number of language-growing joins a value survives
	// before widening to Σ*.
	MaxGen = 3
	// MaxValStates caps the minimized machine size of a single abstract
	// value; larger languages widen to Σ*.
	MaxValStates = 96
	// normStates is the internal/budget state allowance for one
	// normalization (minimize or intersect); exhaustion widens to Σ*.
	normStates = 1 << 13
)

// Val is the abstract value of one string variable: a regular language.
// The zero Val is Σ* (top, "any string"), so unmapped variables are
// soundly unconstrained.
//
// Two distinct Σ* values exist, told apart by generation: gen 0 is merely
// *unknown* (a parameter, an unmodelled call) and still concatenates
// structurally — lit·Σ*·lit keeps its shape — while gen > MaxGen is
// *widened*, and stays Σ* through every further operation. Without the
// sticky form, a loop that concatenates onto a widened variable would
// oscillate (Σ* → Σ*·x → join back to Σ* → …) instead of converging.
type Val struct {
	m   *nfa.NFA // minimized machine; nil ⇒ Σ*
	gen int
	key string // canonical key of m; "" ⇒ Σ*
}

// Top returns Σ* at generation zero: unknown, but not widened.
func Top() Val { return Val{} }

// IsTop reports whether the value is Σ*.
func (v Val) IsTop() bool { return v.m == nil }

// Machine returns the minimized machine, or nil for Σ*.
func (v Val) Machine() *nfa.NFA { return v.m }

// Key returns the canonical fingerprint of the language ("" for Σ*).
// Equal keys mean equal languages: the machine is the minimal DFA, which
// is unique up to isomorphism, and CanonicalKey is isomorphism-invariant.
func (v Val) Key() string { return v.key }

// Gen returns the widening generation.
func (v Val) Gen() int { return v.gen }

// SameLang reports whether two values denote the same language.
func (v Val) SameLang(o Val) bool { return v.key == o.key }

// IsEmpty reports whether the value is the empty language ∅ (the result
// of an infeasible refinement; never stored in Facts).
func (v Val) IsEmpty() bool { return v.m != nil && v.m.IsEmpty() }

// anyKey memoizes the canonical key of Σ*, so normalization can collapse
// machines that happen to denote every string into the cheap top form.
var anyKey = sync.OnceValue(func() string {
	return nfa.Minimized(nfa.AnyString()).CanonicalKey()
})

// Domain performs all Val construction and counts widenings for -stats.
// The zero Domain is ready to use; it is not safe for concurrent use.
type Domain struct {
	// Widenings counts collapses to Σ* forced by a cap (generation,
	// machine size, or budget refusal).
	Widenings int
}

// widened is the sticky Σ*: every operation on it stays Σ*.
func widened() Val { return Val{gen: MaxGen + 1} }

// norm minimizes m under budget and wraps it, widening to Σ* when the
// generation, the size cap, or the budget trips.
func (d *Domain) norm(m *nfa.NFA, gen int) Val {
	if m == nil {
		return Val{gen: gen}
	}
	if gen > MaxGen {
		d.Widenings++
		return widened()
	}
	bud := budget.New(context.Background(), budget.Limits{MaxStates: normStates})
	min, err := nfa.MinimizedB(bud, m)
	if err != nil || min.NumStates() > MaxValStates {
		d.Widenings++
		return widened()
	}
	key := min.CanonicalKey()
	if key == anyKey() {
		return Val{gen: gen} // Σ* in disguise: use the canonical form
	}
	return Val{m: min, gen: gen, key: key}
}

// Lit returns the singleton language {s}.
func (d *Domain) Lit(s string) Val { return d.norm(nfa.Literal(s), 0) }

// FromMachine wraps an arbitrary machine (e.g. a compiled contract) as a
// generation-zero value.
func (d *Domain) FromMachine(m *nfa.NFA) Val { return d.norm(m, 0) }

// Join returns a value covering both operands. Operands denoting the same
// language join to themselves; different languages union and advance the
// generation, widening to Σ* past MaxGen — the rule that bounds every
// rising chain.
func (d *Domain) Join(a, b Val) Val {
	if a.IsTop() || b.IsTop() {
		return Val{gen: maxInt(a.gen, b.gen)}
	}
	if a.key == b.key {
		if b.gen < a.gen {
			return b
		}
		return a
	}
	return d.norm(nfa.Union(a.m, b.m), maxInt(a.gen, b.gen)+1)
}

// Concat returns the concatenation a·b. An unknown Σ* operand (gen 0)
// concatenates structurally — lit·Σ*·lit keeps its shape — while the
// generation propagates as the operand max, so concatenating onto a
// widened value stays widened: this is what makes `s += x` loops
// converge instead of oscillating.
func (d *Domain) Concat(a, b Val) Val {
	gen := maxInt(a.gen, b.gen)
	if a.IsTop() && b.IsTop() {
		return Val{gen: gen}
	}
	ma, mb := a.m, b.m
	if ma == nil {
		ma = nfa.AnyString()
	}
	if mb == nil {
		mb = nfa.AnyString()
	}
	return d.norm(nfa.Concat(ma, mb), gen)
}

// Star returns a*, covering any number of repetitions.
func (d *Domain) Star(a Val) Val {
	if a.IsTop() {
		return a
	}
	return d.norm(nfa.Star(a.m), a.gen)
}

// Meet refines a by intersection with the singleton {lit} (branch
// refinement on s == "lit"). feasible=false reports an empty result: the
// refined edge cannot be taken. A budget refusal keeps a unrefined, and a
// widened value refuses refinement entirely — narrowing after widening
// could reintroduce the oscillation widening exists to break.
func (d *Domain) Meet(a Val, lit string) (v Val, feasible bool) {
	if a.IsTop() {
		if a.gen > MaxGen {
			return a, true
		}
		return d.Lit(lit), true
	}
	bud := budget.New(context.Background(), budget.Limits{MaxStates: normStates})
	m, err := nfa.IntersectB(bud, a.m, nfa.Literal(lit))
	if err != nil {
		return a, true // refusal: keep the sound, coarser value
	}
	if m.Trim().IsEmpty() {
		return Val{}, false
	}
	return d.norm(m, a.gen), true
}

// IsString reports whether t is a string type (including named string
// types), the condition for a variable to be tracked by this lattice.
func IsString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// Facts maps tracked string variables to their languages. A nil *Facts is
// the lattice bottom (unreachable); a missing entry means gen-0 Σ*
// (unknown). Widened Σ* values (gen > 0) are stored explicitly: the
// generation is the sticky widening marker, and dropping it would let a
// loop rediscover structure the widening just erased.
type Facts struct {
	Vals map[*types.Var]Val
}

// Get returns the fact for v (Σ* when untracked or widened away).
func (f *Facts) Get(v *types.Var) Val {
	if f == nil || v == nil {
		return Top()
	}
	return f.Vals[v]
}

// Lattice is the join-semilattice plus transfer function over Facts. It
// implements both dataflow.Lattice and dataflow.Transfer.
type Lattice struct {
	Info    *types.Info
	Tracked map[*types.Var]bool
	Dom     *Domain
	// Entry seeds the boundary fact: parameters whose language is assumed
	// at function entry (//dprle:subset contracts). Missing entries are Σ*.
	Entry map[*types.Var]Val
	// Model, when non-nil, resolves calls the builtin models do not cover
	// — typically to interprocedural string summaries. It runs after the
	// builtin models and reports ok=false to decline.
	Model func(call *ast.CallExpr, eval func(ast.Expr) Val) (Val, bool)
}

// Bottom implements dataflow.Lattice.
func (l *Lattice) Bottom() dataflow.Fact { return (*Facts)(nil) }

// Boundary implements dataflow.Lattice: tracked variables start at Σ*
// except where Entry assumes a contract language.
func (l *Lattice) Boundary() dataflow.Fact {
	vals := map[*types.Var]Val{}
	for v, val := range l.Entry {
		if l.Tracked[v] && keep(val) {
			vals[v] = val
		}
	}
	return &Facts{Vals: vals}
}

// Height implements dataflow.Lattice. Each variable's entry rises through
// at most MaxGen+2 languages (one per generation, then Σ*), and its
// generation can rise a further MaxGen+1 times at a fixed language; plus
// the boundary and bottom steps.
func (l *Lattice) Height() int { return len(l.Tracked)*(2*MaxGen+6) + 2 }

// keep reports whether a value carries information worth storing: any
// constrained language, or a Σ* whose generation marks prior widening.
func keep(v Val) bool { return !v.IsTop() || v.gen > 0 }

// Join implements dataflow.Lattice. Entries missing on one side are gen-0
// Σ* there; the language join may widen (see Domain.Join).
func (l *Lattice) Join(a, b dataflow.Fact) dataflow.Fact {
	x, y := a.(*Facts), b.(*Facts)
	if x == nil {
		return y
	}
	if y == nil {
		return x
	}
	out := map[*types.Var]Val{}
	for v, xv := range x.Vals {
		if j := l.Dom.Join(xv, y.Get(v)); keep(j) {
			out[v] = j
		}
	}
	for v, yv := range y.Vals {
		if _, seen := x.Vals[v]; seen {
			continue
		}
		if j := l.Dom.Join(x.Get(v), yv); keep(j) {
			out[v] = j
		}
	}
	return &Facts{Vals: out}
}

// Equal implements dataflow.Lattice: per-entry language equality AND
// generation equality — the generation is part of the lattice element, or
// widening markers would stop propagating before the fixpoint sees them.
func (l *Lattice) Equal(a, b dataflow.Fact) bool {
	x, y := a.(*Facts), b.(*Facts)
	if x == nil || y == nil {
		return x == y
	}
	if len(x.Vals) != len(y.Vals) {
		return false
	}
	for v, xv := range x.Vals {
		yv, ok := y.Vals[v]
		if !ok || !xv.SameLang(yv) || xv.gen != yv.gen {
			return false
		}
	}
	return true
}

func (l *Lattice) set(f *Facts, v *types.Var, val Val) *Facts {
	if !l.Tracked[v] {
		return f
	}
	out := map[*types.Var]Val{}
	for k, x := range f.Vals {
		out[k] = x
	}
	if keep(val) {
		out[v] = val
	} else {
		delete(out, v)
	}
	return &Facts{Vals: out}
}

// Node implements dataflow.Transfer for the statement kinds that bind
// tracked variables; everything else leaves the fact unchanged.
func (l *Lattice) Node(n ast.Node, fact dataflow.Fact) dataflow.Fact {
	f := fact.(*Facts)
	if f == nil {
		return f
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		return l.assign(n, f)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					v, ok := l.Info.Defs[name].(*types.Var)
					if !ok || !l.Tracked[v] {
						continue
					}
					val := l.Dom.Lit("") // zero value: the empty string
					if len(vs.Values) == len(vs.Names) {
						val = l.Eval(vs.Values[i], f)
					} else if len(vs.Values) > 0 {
						val = Top() // multi-value initializer
					}
					f = l.set(f, v, val)
				}
			}
		}
		return f
	case *ast.RangeStmt:
		// Key/Value are rebound each iteration to unknown elements.
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if v := l.objOf(id); v != nil {
					f = l.set(f, v, Top())
				}
			}
		}
		return f
	}
	return f
}

func (l *Lattice) assign(as *ast.AssignStmt, f *Facts) *Facts {
	if as.Tok == token.ADD_ASSIGN {
		// s += e is s = s + e for strings.
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if v := l.objOf(id); v != nil && l.Tracked[v] {
				val := l.Dom.Concat(f.Get(v), l.Eval(as.Rhs[0], f))
				return l.set(f, v, val)
			}
		}
		return f
	}
	if len(as.Lhs) == len(as.Rhs) {
		// Evaluate every rhs against the incoming fact before binding, so
		// `a, b = b, a` swaps languages correctly.
		vals := make([]Val, len(as.Rhs))
		for i, r := range as.Rhs {
			vals[i] = l.Eval(r, f)
		}
		for i, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				if v := l.objOf(id); v != nil {
					f = l.set(f, v, vals[i])
				}
			}
		}
		return f
	}
	// Multi-value form (s, err := f()): every bound variable is Σ*.
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			if v := l.objOf(id); v != nil {
				f = l.set(f, v, Top())
			}
		}
	}
	return f
}

// objOf resolves an identifier to the variable it defines or uses.
func (l *Lattice) objOf(id *ast.Ident) *types.Var {
	if v, ok := l.Info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := l.Info.Uses[id].(*types.Var)
	return v
}

// Eval computes the language of a string-typed expression under the given
// facts. Anything it cannot model precisely is Σ* — always sound.
func (l *Lattice) Eval(e ast.Expr, f *Facts) Val {
	e = ast.Unparen(e)
	if tv, ok := l.Info.Types[e]; ok && tv.Value != nil {
		if s, ok := stringConstant(tv.Value); ok {
			return l.Dom.Lit(s)
		}
		return Top()
	}
	switch e := e.(type) {
	case *ast.Ident:
		if v := l.objOf(e); v != nil && l.Tracked[v] {
			return f.Get(v)
		}
	case *ast.BinaryExpr:
		if e.Op == token.ADD && IsString(l.typeOf(e)) {
			return l.Dom.Concat(l.Eval(e.X, f), l.Eval(e.Y, f))
		}
	case *ast.CallExpr:
		// A conversion T(x) between string types keeps the language.
		if tv, ok := l.Info.Types[e.Fun]; ok && tv.IsType() {
			if len(e.Args) == 1 && IsString(l.typeOf(e.Args[0])) {
				return l.Eval(e.Args[0], f)
			}
			return Top()
		}
		return l.callModel(e, f)
	}
	return Top()
}

func (l *Lattice) typeOf(e ast.Expr) types.Type {
	if tv, ok := l.Info.Types[e]; ok {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

// Branch implements dataflow.Transfer: it refines facts along the edges
// of string-literal comparisons (s == "lit", s != "lit") over tracked
// variables and returns bottom when the edge is infeasible.
func (l *Lattice) Branch(cond ast.Expr, taken bool, fact dataflow.Fact) dataflow.Fact {
	f := fact.(*Facts)
	if f == nil {
		return f
	}
	v, lit, eqOnTrue, ok := l.stringComparison(cond)
	if !ok {
		return f
	}
	cur := f.Get(v)
	if eqOnTrue == taken {
		// The edge where s == lit holds.
		refined, feasible := l.Dom.Meet(cur, lit)
		if !feasible {
			return (*Facts)(nil)
		}
		return l.set(f, v, refined)
	}
	// The edge where s != lit holds: infeasible when s is exactly {lit}.
	if single := l.Dom.Lit(lit); cur.SameLang(single) {
		return (*Facts)(nil)
	}
	return f
}

// stringComparison recognizes `s == "lit"` / `"lit" == s` (and !=) over a
// tracked variable against a constant string.
func (l *Lattice) stringComparison(cond ast.Expr) (v *types.Var, lit string, eqOnTrue, ok bool) {
	be, isBin := ast.Unparen(cond).(*ast.BinaryExpr)
	if !isBin || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, "", false, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	var operand ast.Expr
	if s, isConst := l.constString(y); isConst {
		operand, lit = x, s
	} else if s, isConst := l.constString(x); isConst {
		operand, lit = y, s
	} else {
		return nil, "", false, false
	}
	id, isID := operand.(*ast.Ident)
	if !isID {
		return nil, "", false, false
	}
	vv := l.objOf(id)
	if vv == nil || !l.Tracked[vv] {
		return nil, "", false, false
	}
	return vv, lit, be.Op == token.EQL, true
}

func (l *Lattice) constString(e ast.Expr) (string, bool) {
	if tv, ok := l.Info.Types[e]; ok && tv.Value != nil {
		return stringConstant(tv.Value)
	}
	return "", false
}

// TrackedStrings returns the string-typed variables eligible for language
// tracking in fn — declared within fn, never address-taken, never touched
// from a nested function literal (the nilfacts eligibility rule).
func TrackedStrings(info *types.Info, fn ast.Node, body *ast.BlockStmt) map[*types.Var]bool {
	return nilfacts.TrackedVars(info, fn, body, IsString)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// stringConstant extracts the value of a string constant.
func stringConstant(v constant.Value) (string, bool) {
	if v.Kind() == constant.String {
		return constant.StringVal(v), true
	}
	return "", false
}
