package strfacts

import (
	"fmt"
	"testing"
)

// FuzzStrLattice drives the domain with arbitrary op programs and checks
// the properties the dataflow fixpoint's termination rests on: every
// value stays within the generation and size caps, join is idempotent and
// commutative on languages, and the abstract loop iteration
// c ← c ⊔ (c · b) stabilizes within the lattice-height bound for any
// reachable pair of values.
func FuzzStrLattice(f *testing.F) {
	f.Add([]byte("ajc"))
	f.Add([]byte("abjjccss"))
	f.Add([]byte{'a', 'b', 'j', 'm', 'c', 's', 'j', 'j', 'j', 'j', 'c'})
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) > 64 {
			return // keep each case cheap; long programs add no new shapes
		}
		var d Domain
		check := func(v Val) Val {
			if v.Gen() > MaxGen+1 {
				t.Fatalf("generation %d exceeds cap %d", v.Gen(), MaxGen+1)
			}
			if m := v.Machine(); m != nil && m.NumStates() > MaxValStates {
				t.Fatalf("%d states exceed cap %d", m.NumStates(), MaxValStates)
			}
			return v
		}
		stack := []Val{d.Lit("seed")}
		pop := func() Val {
			v := stack[len(stack)-1]
			if len(stack) > 1 {
				stack = stack[:len(stack)-1]
			}
			return v
		}
		push := func(v Val) { stack = append(stack, check(v)) }
		for i, op := range program {
			switch {
			case op >= 'a' && op <= 'f':
				push(d.Lit(fmt.Sprintf("%c%d", op, i%7)))
			case op == 'j':
				a, b := pop(), pop()
				j := d.Join(a, b)
				push(j)
				if again := d.Join(j, j); !again.SameLang(j) {
					t.Fatalf("join not idempotent at op %d", i)
				}
				if rev := d.Join(b, a); !rev.SameLang(j) {
					t.Fatalf("join not commutative at op %d", i)
				}
			case op == 'c':
				push(d.Concat(pop(), pop()))
			case op == 's':
				push(d.Star(pop()))
			case op == 'm':
				refined, feasible := d.Meet(pop(), "a3")
				if feasible {
					push(refined)
				} else {
					push(d.Lit(""))
				}
			case op == 't':
				push(Top())
			}
			if len(stack) > 8 {
				stack = stack[len(stack)-8:]
			}
		}

		// Loop convergence: for the top two derived values, the widening
		// chain must stabilize within the per-variable height budget.
		a, b := pop(), pop()
		c := a
		for round := 0; ; round++ {
			if round > 2*MaxGen+6 {
				t.Fatalf("loop chain failed to stabilize within height bound (gen=%d)", c.Gen())
			}
			next := check(d.Join(c, d.Concat(c, b)))
			if next.SameLang(c) && next.Gen() == c.Gen() {
				break
			}
			c = next
		}
	})
}
