package strfacts

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"dprle/internal/analysis/dataflow"
)

func accepts(t *testing.T, v Val, members ...string) {
	t.Helper()
	if v.IsTop() {
		return // Σ* accepts everything
	}
	for _, w := range members {
		if !v.Machine().Accepts(w) {
			t.Errorf("value rejects %q", w)
		}
	}
}

func rejects(t *testing.T, v Val, nonMembers ...string) {
	t.Helper()
	if v.IsTop() {
		t.Errorf("value is Σ*, cannot reject %q", nonMembers)
		return
	}
	for _, w := range nonMembers {
		if v.Machine().Accepts(w) {
			t.Errorf("value accepts %q", w)
		}
	}
}

func TestDomainOps(t *testing.T) {
	var d Domain
	a, b := d.Lit("a"), d.Lit("b")
	j := d.Join(a, b)
	accepts(t, j, "a", "b")
	rejects(t, j, "", "ab")
	if j.Gen() != 1 {
		t.Fatalf("join of distinct languages has gen %d, want 1", j.Gen())
	}
	if again := d.Join(j, j); !again.SameLang(j) || again.Gen() != 1 {
		t.Fatalf("self-join changed value: gen %d", again.Gen())
	}

	cat := d.Concat(a, b)
	accepts(t, cat, "ab")
	rejects(t, cat, "a", "b", "ba")
	if cat.Gen() != 0 {
		t.Fatalf("concat of gen-0 values has gen %d", cat.Gen())
	}

	star := d.Star(a)
	accepts(t, star, "", "a", "aaaa")
	rejects(t, star, "b")

	topCat := d.Concat(Top(), d.Lit("x"))
	if topCat.IsTop() {
		t.Fatal("Σ*·x collapsed to Σ* — it should keep the x suffix or widen by gen")
	}
}

func TestJoinWidensToTop(t *testing.T) {
	var d Domain
	// Joining a strictly growing sequence of distinct languages must hit
	// Σ* after at most MaxGen+1 rises.
	v := d.Lit("x0")
	for i := 1; i <= MaxGen+1; i++ {
		v = d.Join(v, d.Lit("x"+string(rune('0'+i))))
	}
	if !v.IsTop() {
		t.Fatalf("after %d growing joins, gen=%d, still not Σ*", MaxGen+1, v.Gen())
	}
	if d.Widenings == 0 {
		t.Fatal("widening not counted")
	}
}

func TestLoopConcatConverges(t *testing.T) {
	var d Domain
	// The abstract effect of `for { s = s + "x" }` at the loop head:
	// join(head, concat(head, x)) must stabilize within the height bound.
	head := d.Lit("")
	x := d.Lit("x")
	for i := 0; i < MaxGen+3; i++ {
		next := d.Join(head, d.Concat(head, x))
		if next.SameLang(head) {
			return // converged
		}
		head = next
	}
	t.Fatalf("loop join did not converge within %d rounds (gen=%d)", MaxGen+3, head.Gen())
}

func TestSizeCapWidens(t *testing.T) {
	var d Domain
	long := make([]byte, MaxValStates+8)
	for i := range long {
		long[i] = byte('a' + i%3)
	}
	if v := d.Lit(string(long)); !v.IsTop() {
		t.Fatalf("literal with %d states escaped the size cap", len(long)+1)
	}
	if d.Widenings == 0 {
		t.Fatal("size-cap widening not counted")
	}
}

func TestMeet(t *testing.T) {
	var d Domain
	ab := d.Join(d.Lit("a"), d.Lit("b"))
	refined, feasible := d.Meet(ab, "a")
	if !feasible {
		t.Fatal("a ∈ {a,b}: refinement should be feasible")
	}
	accepts(t, refined, "a")
	rejects(t, refined, "b")
	if _, feasible := d.Meet(ab, "c"); feasible {
		t.Fatal("c ∉ {a,b}: refinement should be infeasible")
	}
	topRefined, feasible := d.Meet(Top(), "q")
	if !feasible || topRefined.IsTop() {
		t.Fatal("meeting Σ* with a literal should give the literal")
	}
	accepts(t, topRefined, "q")
}

// typecheckFunc parses and type-checks src (a complete file) and returns
// the named function plus the populated type info.
func typecheckFunc(t *testing.T, src, name string) (*ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd, info
		}
	}
	t.Fatalf("function %s not found", name)
	return nil, nil
}

// solveFunc runs the string lattice to fixpoint over fn and returns the
// lattice and the facts keyed by block.
func solveFunc(t *testing.T, fn *ast.FuncDecl, info *types.Info) (*Lattice, *dataflow.CFG, *dataflow.Result) {
	t.Helper()
	lat := &Lattice{
		Info:    info,
		Tracked: TrackedStrings(info, fn, fn.Body),
		Dom:     &Domain{},
	}
	g := dataflow.New(fn.Body)
	res, err := dataflow.Solve(g, lat, lat, dataflow.Forward)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return lat, g, res
}

// factOf finds the language of the variable named v at the return
// statement's program point.
func factAtReturn(t *testing.T, lat *Lattice, g *dataflow.CFG, res *dataflow.Result, info *types.Info, v string) Val {
	t.Helper()
	var out Val
	found := false
	dataflow.WalkForward(g, lat, lat, res, func(n ast.Node, before dataflow.Fact) {
		if _, ok := n.(*ast.ReturnStmt); !ok || found {
			return
		}
		f := before.(*Facts)
		for tv := range lat.Tracked {
			if tv.Name() == v {
				out = f.Get(tv)
				found = true
			}
		}
	})
	if !found {
		t.Fatalf("no return-point fact for %s", v)
	}
	return out
}

func TestTransferStraightLine(t *testing.T) {
	fn, info := typecheckFunc(t, `package p
import "fmt"
func f(user string) string {
	q := "select * from t where name = '"
	q = q + user
	q += "'"
	id := fmt.Sprintf("%d", 7)
	_ = id
	return q
}`, "f")
	lat, g, res := solveFunc(t, fn, info)
	q := factAtReturn(t, lat, g, res, info, "q")
	if q.IsTop() {
		t.Fatal("q should be constrained: literal · Σ* · literal")
	}
	accepts(t, q, "select * from t where name = 'bob'")
	rejects(t, q, "bob", "select * from t where name = 'bob")
	id := factAtReturn(t, lat, g, res, info, "id")
	accepts(t, id, "7", "-12")
	rejects(t, id, "x")
}

func TestTransferBranchJoin(t *testing.T) {
	fn, info := typecheckFunc(t, `package p
func f(cond bool) string {
	s := "a"
	if cond {
		s = "b"
	}
	return s
}`, "f")
	lat, g, res := solveFunc(t, fn, info)
	s := factAtReturn(t, lat, g, res, info, "s")
	accepts(t, s, "a", "b")
	rejects(t, s, "c", "")
}

func TestBranchRefinement(t *testing.T) {
	fn, info := typecheckFunc(t, `package p
func f(mode string) string {
	s := "x"
	if mode == "on" {
		s = mode
	}
	return s
}`, "f")
	lat, g, res := solveFunc(t, fn, info)
	s := factAtReturn(t, lat, g, res, info, "s")
	// On the taken edge mode is exactly "on", so s ∈ {x, on}.
	accepts(t, s, "x", "on")
	rejects(t, s, "off")
}

func TestLoopWidensButTerminates(t *testing.T) {
	fn, info := typecheckFunc(t, `package p
func f(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s = s + "ab"
	}
	return s
}`, "f")
	lat, g, res := solveFunc(t, fn, info)
	s := factAtReturn(t, lat, g, res, info, "s")
	// The loop widens s; whatever the final approximation, it must cover
	// every concrete iterate.
	accepts(t, s, "", "ab", "abab", "ababab")
	if lat.Dom.Widenings == 0 && s.IsTop() {
		t.Fatal("reached Σ* without counting a widening")
	}
}

func TestSprintfModel(t *testing.T) {
	fn, info := typecheckFunc(t, `package p
import "fmt"
func f(user string, n int) string {
	q := fmt.Sprintf("select %s from t where id = %d and ok = %t", user, n, n > 0)
	return q
}`, "f")
	lat, g, res := solveFunc(t, fn, info)
	q := factAtReturn(t, lat, g, res, info, "q")
	if q.IsTop() {
		t.Fatal("Sprintf of constant format should stay structured")
	}
	accepts(t, q, "select anything at all from t where id = -4 and ok = false")
	rejects(t, q, "select x from t where id = y and ok = true",
		"select x from t where id = 4 and ok = maybe")
}

func TestJoinModel(t *testing.T) {
	fn, info := typecheckFunc(t, `package p
import "strings"
func f(a string) string {
	return strings.Join([]string{"x", a, "z"}, ", ")
}`, "f")
	lat, g, res := solveFunc(t, fn, info)
	_ = lat
	// Evaluate the returned expression directly at the return point.
	var got Val
	dataflow.WalkForward(g, lat, lat, res, func(n ast.Node, before dataflow.Fact) {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			got = lat.Eval(ret.Results[0], before.(*Facts))
		}
	})
	if got.IsTop() {
		t.Fatal("Join of a literal slice should stay structured")
	}
	accepts(t, got, "x, whatever, z")
	rejects(t, got, "x, z", "x whatever z")
}
