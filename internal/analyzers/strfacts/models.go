// Builtin call models: precise languages for the standard-library string
// constructors the paper's client analysis cares about — fmt.Sprintf and
// friends become concatenations, strings.Join interleaves its separator,
// strings.Repeat becomes Kleene star, strconv.Itoa the integer language.
// Every unmodeled call is Σ*, so models only ever add precision.

package strfacts

import (
	"go/ast"
	"sync"

	"dprle/internal/analyzers/lintutil"
	"dprle/internal/nfa"
)

// prebuilt holds the small machines the models share.
var prebuilt = sync.OnceValue(func() *struct {
	digits, boolean *nfa.NFA
} {
	return &struct{ digits, boolean *nfa.NFA }{
		// -?[0-9]+ — covers every strconv.Itoa / %d rendering.
		digits: nfa.Concat(nfa.Optional(nfa.Literal("-")),
			nfa.Plus(nfa.Class(nfa.Range('0', '9')))),
		boolean: nfa.Union(nfa.Literal("true"), nfa.Literal("false")),
	}
})

// callModel resolves a call expression's language: builtin models first,
// then the pluggable Model hook (interprocedural summaries), then Σ*.
func (l *Lattice) callModel(call *ast.CallExpr, f *Facts) Val {
	if callee := lintutil.Callee(l.Info, call); callee != nil && callee.Pkg() != nil {
		eval := func(e ast.Expr) Val { return l.Eval(e, f) }
		if v, ok := l.builtinModel(callee.Pkg().Path()+"."+callee.Name(), call, eval); ok {
			return v
		}
	}
	if l.Model != nil {
		if v, ok := l.Model(call, func(e ast.Expr) Val { return l.Eval(e, f) }); ok {
			return v
		}
	}
	return Top()
}

func (l *Lattice) builtinModel(name string, call *ast.CallExpr, eval func(ast.Expr) Val) (Val, bool) {
	if call.Ellipsis.IsValid() {
		return Top(), false // args... spread: arity unknown
	}
	switch name {
	case "fmt.Sprintf":
		if len(call.Args) == 0 {
			return Top(), false
		}
		format, ok := l.constString(call.Args[0])
		if !ok {
			return Top(), true // non-constant format: anything
		}
		return l.sprintf(format, call.Args[1:], eval), true
	case "fmt.Sprint":
		// Operands are separated by spaces only when neither neighbour is
		// a string; all-string arguments concatenate exactly.
		return l.concatStringArgs(call.Args, "", eval)
	case "fmt.Sprintln":
		// Operands are always space-separated, with a trailing newline.
		v, ok := l.concatStringArgs(call.Args, " ", eval)
		if !ok {
			return Top(), false
		}
		return l.Dom.Concat(v, l.Dom.Lit("\n")), true
	case "strings.Join":
		if len(call.Args) != 2 {
			return Top(), false
		}
		lit, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit)
		if !ok {
			return Top(), true // dynamic slice: anything
		}
		sep := eval(call.Args[1])
		out := l.Dom.Lit("")
		for i, el := range lit.Elts {
			if i > 0 {
				out = l.Dom.Concat(out, sep)
			}
			out = l.Dom.Concat(out, eval(el))
		}
		return out, true
	case "strings.Repeat":
		if len(call.Args) != 2 {
			return Top(), false
		}
		// Repeat(s, n) ⊆ s* for every n.
		return l.Dom.Star(eval(call.Args[0])), true
	case "strconv.Itoa", "strconv.FormatInt":
		return l.Dom.FromMachine(prebuilt().digits), true
	case "strconv.FormatBool":
		return l.Dom.FromMachine(prebuilt().boolean), true
	case "strconv.Quote":
		// Whatever the escaping, the result is "…": quoted and therefore
		// delimiter-safe in the contracts that care.
		return l.quoted(), true
	}
	return Top(), false
}

// concatStringArgs concatenates the arguments with sep between them,
// declining (Σ*) when any argument is not string-typed — fmt's spacing
// rules for mixed operands are not worth modelling.
func (l *Lattice) concatStringArgs(args []ast.Expr, sep string, eval func(ast.Expr) Val) (Val, bool) {
	out := l.Dom.Lit("")
	for i, a := range args {
		if !IsString(l.typeOf(a)) {
			return Top(), true
		}
		if i > 0 && sep != "" {
			out = l.Dom.Concat(out, l.Dom.Lit(sep))
		}
		out = l.Dom.Concat(out, eval(a))
	}
	return out, true
}

// quoted is the language "Σ*": any double-quoted string.
func (l *Lattice) quoted() Val {
	q := l.Dom.Lit(`"`)
	return l.Dom.Concat(l.Dom.Concat(q, Top()), q)
}

// sprintf folds a constant format string over its arguments: literal
// segments stay literal, %s/%v of a string argument splices that
// argument's language, integer and boolean verbs use their value
// languages, and anything exotic (padding, explicit indexes, unknown
// verbs) degrades that segment — or the whole result — to Σ*.
func (l *Lattice) sprintf(format string, args []ast.Expr, eval func(ast.Expr) Val) Val {
	out := l.Dom.Lit("")
	lit := func(s string) { out = l.Dom.Concat(out, l.Dom.Lit(s)) }
	argIdx := 0
	i := 0
	for i < len(format) {
		c := format[i]
		if c != '%' {
			j := i
			for j < len(format) && format[j] != '%' {
				j++
			}
			lit(format[i:j])
			i = j
			continue
		}
		i++ // past '%'
		if i >= len(format) {
			return Top() // trailing %: fmt renders %!(NOVERB)
		}
		// Flags, width, precision: any of them changes spacing/padding in
		// ways we do not model, so the segment becomes Σ*.
		exotic := false
		for i < len(format) && isFlag(format[i]) {
			exotic = true
			i++
		}
		for i < len(format) && (format[i] == '*' || isDigit(format[i])) {
			if format[i] == '*' {
				argIdx++ // width argument
			}
			exotic = true
			i++
		}
		if i < len(format) && format[i] == '.' {
			exotic = true
			i++
			for i < len(format) && (format[i] == '*' || isDigit(format[i])) {
				if format[i] == '*' {
					argIdx++
				}
				i++
			}
		}
		if i >= len(format) {
			return Top()
		}
		if format[i] == '[' {
			return Top() // explicit argument index: bail out
		}
		verb := format[i]
		i++
		if verb == '%' {
			lit("%")
			continue
		}
		if argIdx >= len(args) {
			return Top() // fmt renders %!verb(MISSING)
		}
		arg := args[argIdx]
		argIdx++
		if exotic {
			out = l.Dom.Concat(out, Top())
			continue
		}
		switch verb {
		case 's', 'v':
			if IsString(l.typeOf(arg)) {
				out = l.Dom.Concat(out, eval(arg))
			} else {
				out = l.Dom.Concat(out, Top())
			}
		case 'd':
			out = l.Dom.Concat(out, l.Dom.FromMachine(prebuilt().digits))
		case 't':
			out = l.Dom.Concat(out, l.Dom.FromMachine(prebuilt().boolean))
		case 'q':
			if IsString(l.typeOf(arg)) {
				out = l.Dom.Concat(out, l.quoted())
			} else {
				out = l.Dom.Concat(out, Top())
			}
		default:
			out = l.Dom.Concat(out, Top())
		}
	}
	if argIdx != len(args) {
		return Top() // extras: fmt appends %!(EXTRA …)
	}
	return out
}

func isFlag(c byte) bool {
	return c == '+' || c == '-' || c == '#' || c == ' ' || c == '0'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
