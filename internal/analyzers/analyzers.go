// Package analyzers registers the dprlelint static-analysis suite: the
// project-specific passes that turn the solver's coding conventions
// (budget threading, deterministic iteration, panic-free API, context
// propagation, canonical cache keys) into machine-checked invariants.
// See DESIGN.md §7.
package analyzers

import (
	"dprle/internal/analysis"
	"dprle/internal/analyzers/budgetcheck"
	"dprle/internal/analyzers/budgetflow"
	"dprle/internal/analyzers/cachekey"
	"dprle/internal/analyzers/ctxbudget"
	"dprle/internal/analyzers/locksafe"
	"dprle/internal/analyzers/mapiterorder"
	"dprle/internal/analyzers/nilness"
	"dprle/internal/analyzers/panicguard"
	"dprle/internal/analyzers/sharemut"
	"dprle/internal/analyzers/strlang"
)

// All returns every analyzer in the suite, sorted by name.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		budgetcheck.Analyzer,
		budgetflow.Analyzer,
		cachekey.Analyzer,
		ctxbudget.Analyzer,
		locksafe.Analyzer,
		mapiterorder.Analyzer,
		nilness.Analyzer,
		panicguard.Analyzer,
		sharemut.Analyzer,
		strlang.Analyzer,
	}
}
