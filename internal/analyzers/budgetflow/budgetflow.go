// Package budgetflow is the path-sensitive upgrade of budgetcheck and
// ctxbudget: instead of asking "does this budget-threaded function ever
// call an un-budgeted construction", it asks "on which paths". The
// dataflow engine tracks the nilness of every *budget.Budget variable in
// scope, so the analyzer can tell the legitimate degradation branch
// (`if bud == nil { ... }` — the budget is provably absent) from the bug
// the suite exists to catch: a budget threaded on the happy path but
// dropped on an error or early-return path.
package budgetflow

import (
	"go/ast"
	"go/types"
	"sort"

	"dprle/internal/analysis"
	"dprle/internal/analysis/dataflow"
	"dprle/internal/analyzers/interproc"
	"dprle/internal/analyzers/lintutil"
	"dprle/internal/analyzers/nilfacts"
)

var Analyzer = &analysis.Analyzer{
	Name: "budgetflow",
	Doc: `flag paths where a live budget is dropped from a budgeted call

Inside a function that binds a *budget.Budget variable (parameter or
local), a forward dataflow analysis tracks whether each budget is nil,
non-nil, or unknown along every path. Two findings:

F1 — a call to a *B budgeted variant passing a nil budget (the literal, or
a variable that is provably nil on this path) while some budget in scope
may still be live: the construction runs unaccounted on exactly this path,
typically an error or early-return branch that was wired up in a hurry.
Under "if bud == nil" the same call is clean — the budget is provably
absent, so nil is the only thing to pass.

F2 — a call to an un-budgeted construction that has a *B sibling, on a
path where a budget in scope may be live. This is budgetcheck's R1 made
path-sensitive: the degradation branch (budget provably nil) is exempt.

F3 (interprocedural, disable with -interproc=false) — a nil budget handed
to a same-package function whose summary threads that parameter into
budgeted work (a *B variant or a budget checkpoint, possibly several calls
deep): the accounting chain is severed at this call boundary even though a
live budget is in scope. Summaries come from internal/analyzers/interproc.

Suppress with //lint:ignore dprlelint/budgetflow <reason>.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	var ip *interproc.Info
	if interproc.Enabled {
		ip = interproc.Of(pass)
	}
	for _, file := range pass.Files {
		var err error
		ast.Inspect(file, func(n ast.Node) bool {
			if err != nil {
				return false
			}
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					err = checkFunc(pass, ip, fn, fn.Body)
				}
			case *ast.FuncLit:
				err = checkFunc(pass, ip, fn, fn.Body)
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, ip *interproc.Info, fn ast.Node, body *ast.BlockStmt) error {
	tracked := nilfacts.TrackedVars(pass.TypesInfo, fn, body, lintutil.IsBudgetPtr)
	if len(tracked) == 0 {
		return nil
	}
	lat := &nilfacts.Lattice{Info: pass.TypesInfo, Tracked: tracked}
	g := dataflow.New(body)
	res, err := dataflow.Solve(g, lat, lat, dataflow.Forward)
	if err != nil {
		return err
	}
	reported := map[ast.Node]bool{}
	dataflow.WalkForward(g, lat, lat, res, func(n ast.Node, before dataflow.Fact) {
		checkNode(pass, ip, lat, n, before.(*nilfacts.Facts), reported)
	})
	return nil
}

func checkNode(pass *analysis.Pass, ip *interproc.Info, lat *nilfacts.Lattice, n ast.Node, f *nilfacts.Facts, reported map[ast.Node]bool) {
	if rng, ok := n.(*ast.RangeStmt); ok {
		n = rng.X
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false // has its own CFG and its own budget scope
		}
		call, ok := m.(*ast.CallExpr)
		if !ok || reported[call] {
			return true
		}
		callee := lintutil.Callee(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		live := liveBudget(lat, f)
		if live == nil {
			return true // every budget in scope is provably nil: degradation path
		}
		switch {
		case lintutil.IsBudgetedVariant(callee) && len(call.Args) > 0:
			// F1: nil budget argument while a budget may be live.
			if lat.Eval(call.Args[0], f) == nilfacts.Nil {
				reported[call] = true
				pass.Reportf(call.Pos(),
					"budget dropped on this path: %s is called with a nil budget while %s may be live; thread %s through (or guard this path with %s == nil)",
					callee.Name(), live.Name(), live.Name(), live.Name())
			}
		case lintutil.BudgetedSibling(callee) != nil:
			// F2: un-budgeted construction while a budget may be live.
			sib := lintutil.BudgetedSibling(callee)
			reported[call] = true
			pass.Reportf(call.Pos(),
				"un-budgeted %s reached on a path where %s may be live; use %s and pass %s",
				callee.Name(), live.Name(), sib.Name(), live.Name())
		default:
			// F3: nil handed to a summary-known budget-threading callee.
			if ip == nil {
				break
			}
			sum, ok := ip.ForFunc(callee)
			if !ok {
				break
			}
			for j, arg := range call.Args {
				if j >= len(sum.BudgetParams) || !sum.BudgetParams[j] {
					continue
				}
				if lat.Eval(arg, f) == nilfacts.Nil {
					reported[call] = true
					pass.Reportf(call.Pos(),
						"budget dropped at call boundary: %s threads its budget into budgeted work but receives nil here while %s may be live; pass %s",
						callee.Name(), live.Name(), live.Name())
					break
				}
			}
		}
		return true
	})
}

// liveBudget returns a budget variable in scope whose fact is not
// provably nil (the earliest-declared one, for deterministic messages),
// or nil when every tracked budget is provably nil at this point.
func liveBudget(lat *nilfacts.Lattice, f *nilfacts.Facts) *types.Var {
	var vars []*types.Var
	for v := range lat.Tracked {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
	for _, v := range vars {
		if f.Get(v) != nilfacts.Nil {
			return v
		}
	}
	return nil
}
