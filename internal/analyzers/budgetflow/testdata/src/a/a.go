package a

import "budget"

// DeterminizeB / Determinize model the solver's sibling convention.

func DeterminizeB(bud *budget.Budget, x int) (int, error) {
	if err := bud.AddStates(1, "determinize"); err != nil {
		return 0, err
	}
	return x + 1, nil
}

// Clean: no budget in scope — the un-budgeted wrapper's own nil call is
// the convention, not a dropped budget.
func Determinize(x int) int {
	d, _ := DeterminizeB(nil, x)
	return d
}

// F1: the error path re-runs the construction with a nil budget while the
// caller's budget is still live.
func DropOnError(bud *budget.Budget, x int) (int, error) {
	y, err := DeterminizeB(bud, x)
	if err != nil {
		z, _ := DeterminizeB(nil, x) // want `budget dropped on this path: DeterminizeB is called with a nil budget while bud may be live`
		return z, nil
	}
	return y, nil
}

// Clean: under "bud == nil" the budget is provably absent, so passing the
// literal nil is the degradation idiom, not a bug.
func Degrade(bud *budget.Budget, x int) int {
	if bud == nil {
		y, _ := DeterminizeB(nil, x)
		return y
	}
	y, err := DeterminizeB(bud, x)
	if err != nil {
		return 0
	}
	return y
}

// F2: the un-budgeted sibling is reached on the path where the budget is
// provably live (refined non-nil by the guard).
func Mixed(bud *budget.Budget, x int) (int, error) {
	if bud == nil {
		return Determinize(x), nil // clean: degradation path
	}
	y := Determinize(x) // want `un-budgeted Determinize reached on a path where bud may be live; use DeterminizeB and pass bud`
	return y, nil
}

// F1+F2 with a locally constructed budget.
func Run(x int) (int, error) {
	bud := budget.New(100)
	y, err := DeterminizeB(bud, x)
	if err != nil {
		z := Determinize(x) // want `un-budgeted Determinize reached on a path where bud may be live; use DeterminizeB and pass bud`
		return z, nil
	}
	w, _ := DeterminizeB(nil, y) // want `budget dropped on this path: DeterminizeB is called with a nil budget while bud may be live`
	return w, nil
}

// Clean: budget threaded through on every path.
func WellThreaded(bud *budget.Budget, x int) (int, error) {
	y, err := DeterminizeB(bud, x)
	if err != nil {
		return 0, err
	}
	return DeterminizeB(bud, y)
}

// Clean: the budget variable is reassigned to nil before the call — a
// deliberate local degradation the analysis respects.
func Shed(bud *budget.Budget, x int) int {
	bud = nil
	y, _ := DeterminizeB(nil, x)
	return y
}
