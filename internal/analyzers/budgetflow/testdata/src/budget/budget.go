// Package budget is a minimal stand-in for dprle/internal/budget: the
// analyzers match the Budget type by name and package-path suffix, so
// fixtures can exercise the budget rules without importing the real module.
package budget

import "errors"

type Budget struct{ remaining int64 }

func New(n int64) *Budget { return &Budget{remaining: n} }

func (b *Budget) Check(stage string) error {
	if b == nil {
		return nil
	}
	return b.AddStates(1, stage)
}

func (b *Budget) AddStates(n int64, stage string) error {
	if b == nil {
		return nil
	}
	b.remaining -= n
	if b.remaining < 0 {
		return errors.New("exhausted: " + stage)
	}
	return nil
}
