// F3: a nil budget severing the accounting chain at a call boundary.
package f3

import "budget"

func IntersectB(bud *budget.Budget, n int) (int, error) {
	if err := bud.Check("intersect"); err != nil {
		return 0, err
	}
	return n, nil
}

// helper threads its budget one level deeper; its summary records the
// budget parameter even though helper itself is not a *B variant.
func helper(bud *budget.Budget, n int) (int, error) {
	return IntersectB(bud, n)
}

func dropAtBoundary(bud *budget.Budget, n int) int {
	if bud != nil {
		v, _ := helper(nil, n) // want `budget dropped at call boundary: helper threads its budget`
		return v
	}
	return n
}

func threadedOK(bud *budget.Budget, n int) int {
	v, _ := helper(bud, n)
	return v
}

func degradationOK(bud *budget.Budget, n int) int {
	if bud == nil {
		v, _ := helper(nil, n) // budget provably absent: clean
		return v
	}
	v, _ := helper(bud, n)
	return v
}
