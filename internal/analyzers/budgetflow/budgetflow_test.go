package budgetflow_test

import (
	"testing"

	"dprle/internal/analysis/analysistest"
	"dprle/internal/analyzers/budgetflow"
)

func TestBudgetflow(t *testing.T) {
	analysistest.Run(t, "testdata", budgetflow.Analyzer, "a", "f3")
}
