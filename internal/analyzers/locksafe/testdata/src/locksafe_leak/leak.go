// L2: locks that may still be held at return.
package locksafe_leak

import "sync"

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func leakOnPath(s *store, cond bool) {
	s.mu.Lock() // want `s.mu may still be held at return`
	if cond {
		return
	}
	s.mu.Unlock()
}

func leakAlways(s *store) {
	s.mu.Lock() // want `s.mu may still be held at return`
	s.n++
}

func rlockLeak(s *store, cond bool) int {
	s.rw.RLock() // want `s.rw may still be held at return`
	if cond {
		return 0
	}
	defer s.rw.RUnlock()
	return s.n
}

func deferOK(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

func deferClosureOK(s *store) {
	s.mu.Lock()
	defer func() { s.mu.Unlock() }()
	s.n++
}

func straightOK(s *store) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// earlyReturnDeferOK is the nil-receiver idiom: the early-return path never
// acquires the lock, so joining it must not erase the deferred unlock of
// the path that does (regression: this was a false positive).
func earlyReturnDeferOK(s *store) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func bothPathsOK(s *store, cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return
	}
	s.n++
	s.mu.Unlock()
}
