// L1: locks copied by value.
package locksafe_copy

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func byValueParam(c counter) int { // want `lock passed by value`
	return c.n
}

func (c counter) byValueRecv() int { // want `lock passed by value`
	return c.n
}

func byValueReturn(c *counter) counter { // want `lock passed by value`
	return *c // want `lock copied by value`
}

func assignCopy(c *counter) {
	d := *c // want `lock copied by value`
	use(&d)
}

func argCopy(c *counter) {
	sink(*c) // want `lock copied by value`
}

func use(*counter) {}

func sink(counter) {} // want `lock passed by value`

func pointerOK(c *counter) *counter { return c }

func constructOK() *counter {
	return &counter{n: 1}
}
