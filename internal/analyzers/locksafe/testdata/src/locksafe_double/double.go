// L3: re-acquiring a lock already held, directly or through one call.
package locksafe_double

import "sync"

type cache struct {
	mu sync.Mutex
	rw sync.RWMutex
	m  map[string]int
}

func (c *cache) get(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[k]
}

func (c *cache) double(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mu.Lock() // want `second Lock of c.mu`
	return c.m[k]
}

func (c *cache) throughCall(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.get(k) // want `call to get acquires c.mu`
}

func (c *cache) rlockUnderWrite() {
	c.rw.Lock()
	defer c.rw.Unlock()
	c.rw.RLock() // want `RLock of c.rw while its write lock is held`
	c.rw.RUnlock()
}

func (c *cache) rlockTwiceOK() {
	c.rw.RLock()
	c.rw.RLock() // RLock after RLock is legal: not flagged
	c.rw.RUnlock()
	c.rw.RUnlock()
}

func (c *cache) unlockBetweenOK(k string) int {
	c.mu.Lock()
	c.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[k]
}

func (c *cache) branchOK(k string, cond bool) int {
	if cond {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.m[k]
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return -c.m[k]
}
