// L4: blocking operations while a lock is held.
package locksafe_block

import (
	"io"
	"sync"
)

type srv struct {
	mu  sync.Mutex
	buf []byte
}

func (s *srv) sendUnder(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch <- 1 // want `channel send while s.mu is held`
}

func (s *srv) recvUnder(ch chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-ch // want `channel receive while s.mu is held`
}

func (s *srv) selectUnder(a, b chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select without default while s.mu is held`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func (s *srv) nonBlockingSelectOK(ch chan int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case ch <- 1:
		return true
	default:
		return false
	}
}

func (s *srv) rangeUnder(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range ch { // want `range over channel while s.mu is held`
		s.buf = append(s.buf, byte(v))
	}
}

func (s *srv) readUnder(r io.Reader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := io.ReadAll(r) // want `call to io.ReadAll while s.mu is held`
	s.buf = b
	return err
}

func block(ch chan int) { ch <- 1 }

func (s *srv) transitive(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	block(ch) // want `call to block \(channel send\) while s.mu is held`
}

func (s *srv) unlockFirstOK(ch chan int) {
	s.mu.Lock()
	s.buf = nil
	s.mu.Unlock()
	ch <- 1
}

func (s *srv) goOK(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go block(ch) // the goroutine blocks, not the caller
}

func record(v int) {}

func block2(ch chan int) int {
	ch <- 1
	return 0
}

// The arguments of a deferred call are evaluated at the defer statement,
// on this goroutine, while the lock is held.
func (s *srv) deferArgsEvaluatedNow(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer record(<-ch) // want `channel receive while s.mu is held`
}

// Likewise for go statements: only the spawned call runs elsewhere.
func (s *srv) goArgsEvaluatedNow(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go record(<-ch) // want `channel receive while s.mu is held`
}

// A call in a deferred call's argument list runs now, so its blocking
// summary applies under the lock.
func (s *srv) deferCallArgBlocks(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer record(block2(ch)) // want `call to block2 \(channel send\) while s.mu is held`
}

// The deferred call itself still runs at return, after the window: only
// its immediate operands count.
func (s *srv) deferCallItselfOK(ch chan int) {
	s.mu.Lock()
	s.buf = nil
	s.mu.Unlock()
	defer block(ch) // runs at return, with the lock already released
}
