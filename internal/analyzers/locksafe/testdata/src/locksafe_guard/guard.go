// L5: guarded fields written on lock-free paths.
package locksafe_guard

import "sync"

type reg struct {
	mu    sync.Mutex
	count int
	name  string
}

func (r *reg) bump() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count++
}

func (r *reg) reset() {
	r.count = 0 // want `write to reg.count without holding its lock`
}

func (r *reg) resetLocked() {
	r.count = 0 // caller holds the lock: Locked suffix exempts
}

func newReg() *reg {
	r := &reg{}
	r.count = 1 // fresh local: nothing can race yet
	return r
}

func (r *reg) setName(n string) {
	r.name = n // never written under a lock: not guarded
}
