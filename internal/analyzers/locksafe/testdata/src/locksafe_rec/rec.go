// Regression for the summary-divergence bug: a recursive method on a
// self-referential type with a per-node mutex used to grow its
// receiver-relative lock set every SCC fixpoint round ("mu", "next.mu",
// "next.next.mu", ...) until the driver gave up and the whole lint run
// aborted with no findings. The analysis must complete and stay silent —
// each recursive call locks a different node's mutex.
package locksafe_rec

import "sync"

type node struct {
	mu   sync.Mutex
	next *node
	v    int
}

func (n *node) Sum() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.next == nil {
		return n.v
	}
	return n.next.Sum() + n.v
}

// SumMutual exercises the same shape through a two-method cycle.
func (n *node) SumMutual() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rest()
}

func (n *node) rest() int {
	if n.next == nil {
		return n.v
	}
	return n.next.SumMutual() + n.v
}

// doubleLockDirect still trips L3 through the summary: the same node's
// mutex, not the next one's.
func (n *node) doubleLockDirect() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.Sum() // want `call to Sum acquires n.mu, which is already locked on this path \(deadlock\)`
}
