// Package poolbug is the seeded-bug regression for the pool/flight-map
// idiom the solver's server and solvecache packages use: an RWMutex
// guarding a closed flag plus a submit channel, and a Mutex guarding a
// singleflight map. Each seeded bug is a concurrency failure the idiom is
// known to invite; locksafe must catch all three.
package poolbug

import "sync"

type task struct{ id int }

type pool struct {
	mu     sync.RWMutex
	closed bool
	submit chan task
}

// enqueue blocks on the submit channel while holding the read lock: if
// every worker is parked, shutdown can never take the write lock.
func (p *pool) enqueue(t task) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	p.submit <- t // want `channel send while p.mu is held`
	return true
}

// shutdown flips the flag without the write lock: enqueue's closed check
// races with it.
func (p *pool) shutdown() {
	p.closed = true // want `write to pool.closed without holding its lock`
	close(p.submit)
}

// markClosed is the disciplined sibling that establishes closed as a
// guarded field.
func (p *pool) markClosed() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
}

type call struct {
	done chan struct{}
	val  int
}

type flightMap struct {
	mu     sync.Mutex
	flight map[string]*call
}

// begin leaks the flight lock on the miss path: the caller returns with
// mu held and every later request deadlocks.
func (f *flightMap) begin(key string) (*call, bool) {
	f.mu.Lock() // want `f.mu may still be held at return`
	if c, ok := f.flight[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c, false
	}
	c := &call{done: make(chan struct{})}
	f.flight[key] = c
	return c, true // missing f.mu.Unlock()
}

// finish is the correct counterpart: unlock before waking waiters.
func (f *flightMap) finish(key string, c *call, v int) {
	f.mu.Lock()
	delete(f.flight, key)
	f.mu.Unlock()
	c.val = v
	close(c.done)
}
