package locksafe_test

import (
	"testing"

	"dprle/internal/analysis/analysistest"
	"dprle/internal/analyzers/locksafe"
)

func TestCopyByValue(t *testing.T) {
	analysistest.Run(t, "testdata", locksafe.Analyzer, "locksafe_copy")
}

func TestLockLeaks(t *testing.T) {
	analysistest.Run(t, "testdata", locksafe.Analyzer, "locksafe_leak")
}

func TestDoubleLock(t *testing.T) {
	analysistest.Run(t, "testdata", locksafe.Analyzer, "locksafe_double")
}

func TestBlockingUnderLock(t *testing.T) {
	analysistest.Run(t, "testdata", locksafe.Analyzer, "locksafe_block")
}

func TestGuardedWrites(t *testing.T) {
	analysistest.Run(t, "testdata", locksafe.Analyzer, "locksafe_guard")
}

// TestRecursiveLockedList guards the summary-divergence regression: a
// method recursing through a self-referential receiver chain (per-node
// mutexes) must analyze cleanly — and a genuine same-node double lock
// through the recursive method's summary must still be caught.
func TestRecursiveLockedList(t *testing.T) {
	analysistest.Run(t, "testdata", locksafe.Analyzer, "locksafe_rec")
}

// TestPoolFlightSeededBugs models the pool/flight-map idiom of
// internal/server and internal/solvecache with three seeded concurrency
// bugs (blocking send under RLock, lock-free write to a guarded flag, a
// lock leaked on the singleflight miss path) and checks locksafe reports
// each one.
func TestPoolFlightSeededBugs(t *testing.T) {
	analysistest.Run(t, "testdata", locksafe.Analyzer, "poolbug")
}
