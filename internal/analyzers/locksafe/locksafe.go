// Package locksafe checks the solver's mutex discipline: locks must not be
// copied, must be released on every path, must not be re-acquired while
// held, must not be held across blocking operations, and fields written
// under a lock somewhere must not be written lock-free elsewhere. The
// analysis is flow-sensitive (a lockset lattice over the dataflow CFG) and
// one level interprocedural through the function summaries of
// internal/analyzers/interproc.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"dprle/internal/analysis"
	"dprle/internal/analysis/dataflow"
	"dprle/internal/analyzers/interproc"
	"dprle/internal/analyzers/lintutil"
)

// StatUnresolvedLocks counts Lock/Unlock sites whose receiver chain could
// not be resolved to a variable root (map elements, function results, ...).
// Those sites are skipped conservatively; the count surfaces under -stats.
const StatUnresolvedLocks = "unresolved-lock-sites"

var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc: `flag lock-discipline violations around sync.Mutex/RWMutex

Five findings, driven by a lockset dataflow over each function's CFG plus
the interprocedural summaries (one call level deep):

L1 — a value containing a sync.Mutex or sync.RWMutex is copied: passed,
returned, or declared by value, or assigned from an existing value. A
copied lock guards nothing.

L2 — a lock may still be held when the function returns: Lock/RLock with
no unlock and no deferred unlock on some path to return.

L3 — a second Lock of a mutex already held on this path, directly or
through a call to a function whose summary acquires the same lock
(receiver-relative paths are matched through the call's receiver chain).
RLock-after-RLock is deliberately not flagged.

L4 — a blocking operation while a lock is held: channel send/receive
outside a select with a default case, a default-less select, ranging over
a channel, a call to a known-blocking function (budget checkpoints, solver
entry points, io.ReadAll, ...), or a call whose summary says it may block.

L5 — a write to a struct field that is written under a lock rooted at the
same receiver elsewhere in the package, reached here on a lock-free path.
Functions whose name ends in "Locked" (the caller-holds-the-lock idiom)
and writes through freshly constructed locals are exempt.

The calls spawned by go statements and registered by defer statements are
excluded from lock tracking (the spawned goroutine has its own lockset;
deferred work runs at return) — but their function and argument
expressions are evaluated at the statement on the calling goroutine, so
events inside them (defer f(<-ch), go f(m.helper())) are tracked as
immediate, and deferred unlocks are modeled, of course. Lock sites whose
receiver cannot be resolved to a variable root are skipped and counted
under -stats.

Suppress with //lint:ignore dprlelint/locksafe <reason>.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, info: pass.TypesInfo}
	if interproc.Enabled {
		c.ip = interproc.Of(pass)
	}
	for _, file := range pass.Files {
		c.copyChecks(file)
	}
	var err error
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if err != nil {
				return false
			}
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					err = c.checkFunc(fn.Name.Name, fn.Body)
				}
			case *ast.FuncLit:
				err = c.checkFunc("", fn.Body)
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	c.reportGuardedWrites()
	return nil
}

type checker struct {
	pass   *analysis.Pass
	info   *types.Info
	ip     *interproc.Info
	writes []fieldWrite
}

// ---------------------------------------------------------------------------
// Lockset lattice

// A lockKey names one mutex: a root variable (receiver, local, parameter,
// or package-level) plus the dotted field path from it to the lock. The
// empty path means the variable itself is (or embeds) the mutex.
type lockKey struct {
	v    *types.Var
	path string
}

func (k lockKey) String() string {
	if k.path == "" {
		return k.v.Name()
	}
	return k.v.Name() + "." + k.path
}

// hold is the per-key lattice element. Joins: must is an all-paths
// property (AND); may and write are some-path (OR); deferred means every
// path that may hold the lock has a pending deferred unlock, so paths on
// which the lock was never acquired join vacuously true rather than
// clearing it (the nil-receiver early-return before Lock/defer Unlock
// idiom must stay clean). The zero hold means "not held" and is
// normalized away.
type hold struct {
	must     bool // held on every path reaching here
	may      bool // held on some path
	write    bool // held in write mode on some path
	deferred bool // an unlock is deferred on every may-holding path
}

// safeHold is the per-path "will be released" bit used to join deferred: a
// path that may hold the lock is safe only with a pending deferred unlock;
// a path that never acquired it is vacuously safe.
func safeHold(h hold) bool { return h.deferred || !h.may }

// facts is the lockset fact: nil *facts is bottom (unreachable).
type facts struct {
	held map[lockKey]hold
}

func (f *facts) get(k lockKey) (hold, bool) {
	if f == nil {
		return hold{}, false
	}
	h, ok := f.held[k]
	return h, ok
}

// mustHeld returns the deterministically-first must-held key, if any.
func (f *facts) mustHeld() (lockKey, bool) {
	if f == nil {
		return lockKey{}, false
	}
	best, found := lockKey{}, false
	for k, h := range f.held {
		if !h.must {
			continue
		}
		if !found || k.String() < best.String() {
			best, found = k, true
		}
	}
	return best, found
}

// rootHeld reports whether any lock rooted at base is held (must / may).
func (f *facts) rootHeld(base *types.Var) (must, may bool) {
	if f == nil {
		return false, false
	}
	for k, h := range f.held {
		if k.v == base {
			must = must || h.must
			may = may || h.may
		}
	}
	return must, may
}

func (f *facts) clone() *facts {
	out := &facts{held: make(map[lockKey]hold, len(f.held))}
	for k, h := range f.held {
		out.held[k] = h
	}
	return out
}

// with applies one lock operation, copy-on-write.
func (f *facts) with(op opKind, k lockKey) *facts {
	out := f.clone()
	switch op {
	case opLock, opRLock:
		h := out.held[k]
		h.must, h.may = true, true
		if op == opLock {
			h.write = true
		}
		out.held[k] = h
	case opUnlock:
		delete(out.held, k)
	case opDeferUnlock:
		h := out.held[k]
		h.deferred = true
		out.held[k] = h
	}
	return out
}

type lattice struct{ height int }

func (l *lattice) Bottom() dataflow.Fact   { return (*facts)(nil) }
func (l *lattice) Boundary() dataflow.Fact { return &facts{} }
func (l *lattice) Height() int             { return l.height }

func (l *lattice) Join(a, b dataflow.Fact) dataflow.Fact {
	x, y := a.(*facts), b.(*facts)
	if x == nil {
		return y
	}
	if y == nil {
		return x
	}
	out := &facts{held: map[lockKey]hold{}}
	for k, hx := range x.held {
		hy := y.held[k] // zero hold when absent, which is vacuously safe
		j := hold{
			must:     hx.must && hy.must,
			may:      hx.may || hy.may,
			write:    hx.write || hy.write,
			deferred: safeHold(hx) && safeHold(hy),
		}
		if j != (hold{}) {
			out.held[k] = j
		}
	}
	for k, hy := range y.held {
		if _, seen := x.held[k]; seen {
			continue
		}
		j := hold{may: hy.may, write: hy.write, deferred: safeHold(hy)}
		if j != (hold{}) {
			out.held[k] = j
		}
	}
	return out
}

func (l *lattice) Equal(a, b dataflow.Fact) bool {
	x, y := a.(*facts), b.(*facts)
	if x == nil || y == nil {
		return x == y
	}
	if len(x.held) != len(y.held) {
		return false
	}
	for k, hx := range x.held {
		if hy, ok := y.held[k]; !ok || hx != hy {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Event walk (shared by transfer and reporting)

type opKind int

const (
	opLock opKind = iota
	opRLock
	opUnlock
	opDeferUnlock
)

// selectInfo classifies channel operations by their enclosing select: comm
// statements of a select with a default case cannot park; a default-less
// select is itself the blocking construct.
type selectInfo struct {
	nonBlocking map[ast.Node]bool
	blocking    map[ast.Node]*ast.SelectStmt
}

func scanSelects(body *ast.BlockStmt) *selectInfo {
	si := &selectInfo{nonBlocking: map[ast.Node]bool{}, blocking: map[ast.Node]*ast.SelectStmt{}}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, cl := range sel.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			if hasDefault {
				si.nonBlocking[cc.Comm] = true
			} else {
				si.blocking[cc.Comm] = sel
			}
		}
		return true
	})
	return si
}

// eventSink receives the lock operations, resolved calls, and blocking
// constructs of one CFG node, in evaluation order. Any callback may be nil.
type eventSink struct {
	lock  func(op opKind, k lockKey, pos token.Pos)
	call  func(call *ast.CallExpr, fn *types.Func)
	block func(desc string, pos token.Pos)
}

// walkEvents enumerates the events of one CFG node. Nested function
// literals are skipped entirely. The calls spawned by go statements and
// registered by defer statements do not run here — but their function and
// argument expressions are evaluated at the statement, on this goroutine,
// so those subexpressions contribute ordinary events (`defer f(<-ch)`
// blocks now); deferred calls additionally contribute deferred unlocks. A
// *ast.RangeStmt node stands for its X operand alone (see dataflow.Block).
func (c *checker) walkEvents(si *selectInfo, n ast.Node, sink eventSink) {
	emitBlock := func(desc string, pos token.Pos) {
		if sink.block != nil {
			sink.block(desc, pos)
		}
	}
	if rng, ok := n.(*ast.RangeStmt); ok {
		if tv, ok := c.info.Types[rng.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				emitBlock("range over channel", rng.X.Pos())
			}
		}
		n = rng.X
	}
	if si.blocking[n] != nil {
		emitBlock("select without default", si.blocking[n].Pos())
	}
	// The comm operation of a select clause is not a free-standing channel
	// op: with a default it cannot park, without one the select itself was
	// just reported.
	commSuppressed := si.nonBlocking[n] || si.blocking[n] != nil
	var visit func(m ast.Node) bool
	// visitNow walks the immediately evaluated subexpressions of a go or
	// defer statement's call: the Fun operand (which may itself contain
	// calls, as in `go obj.handler()()`) and every argument. The outer call
	// is deliberately not an event here.
	visitNow := func(call *ast.CallExpr) {
		ast.Inspect(call.Fun, visit)
		for _, a := range call.Args {
			ast.Inspect(a, visit)
		}
	}
	visit = func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			visitNow(m.Call)
			return false
		case *ast.DeferStmt:
			c.deferredUnlocks(m, sink)
			visitNow(m.Call)
			return false
		case *ast.SendStmt:
			if !commSuppressed {
				emitBlock("channel send", m.Pos())
			}
		case *ast.UnaryExpr:
			if m.Op == token.ARROW && !commSuppressed {
				emitBlock("channel receive", m.Pos())
			}
		case *ast.CallExpr:
			fn := lintutil.Callee(c.info, m)
			if fn == nil {
				return true
			}
			if name, ok := interproc.MutexMethod(fn); ok {
				if base, path, ok := interproc.LockTarget(c.info, m); ok {
					k := lockKey{base, path}
					if sink.lock != nil {
						switch name {
						case "Lock":
							sink.lock(opLock, k, m.Pos())
						case "RLock":
							sink.lock(opRLock, k, m.Pos())
						case "Unlock", "RUnlock":
							sink.lock(opUnlock, k, m.Pos())
						}
					}
				} else {
					c.pass.CountStat(StatUnresolvedLocks, 1)
				}
				return true
			}
			if sink.call != nil {
				sink.call(m, fn)
			}
		}
		return true
	}
	ast.Inspect(n, visit)
}

// deferredUnlocks emits opDeferUnlock for `defer mu.Unlock()` and for
// unlocks inside a deferred function literal.
func (c *checker) deferredUnlocks(d *ast.DeferStmt, sink eventSink) {
	if sink.lock == nil {
		return
	}
	emit := func(call *ast.CallExpr) {
		fn := lintutil.Callee(c.info, call)
		if fn == nil {
			return
		}
		if name, ok := interproc.MutexMethod(fn); ok && (name == "Unlock" || name == "RUnlock") {
			if base, path, ok := interproc.LockTarget(c.info, call); ok {
				sink.lock(opDeferUnlock, lockKey{base, path}, call.Pos())
			} else {
				c.pass.CountStat(StatUnresolvedLocks, 1)
			}
		}
	}
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok && m != lit {
				return false
			}
			if call, ok := m.(*ast.CallExpr); ok {
				emit(call)
			}
			return true
		})
		return
	}
	emit(d.Call)
}

type transfer struct {
	c  *checker
	si *selectInfo
}

func (t *transfer) Node(n ast.Node, f dataflow.Fact) dataflow.Fact {
	cur := f.(*facts)
	t.c.walkEvents(t.si, n, eventSink{
		lock: func(op opKind, k lockKey, _ token.Pos) { cur = cur.with(op, k) },
	})
	return cur
}

func (t *transfer) Branch(_ ast.Expr, _ bool, f dataflow.Fact) dataflow.Fact { return f }

// ---------------------------------------------------------------------------
// Per-function checking (L2, L3, L4 + write collection for L5)

func (c *checker) checkFunc(name string, body *ast.BlockStmt) error {
	exempt := strings.HasSuffix(name, "Locked")
	fresh := freshLocals(c.info, body)
	si := scanSelects(body)
	ops, firstLock := c.prescan(si, body)
	if ops == 0 {
		// No lock activity: the lockset is empty everywhere, so only the
		// guarded-write collection (L5 phase) applies.
		c.collectWritesNoLocks(body, exempt, fresh)
		return nil
	}

	lat := &lattice{height: 4*ops + 2}
	tr := &transfer{c: c, si: si}
	g := dataflow.New(body)
	res, err := dataflow.Solve(g, lat, tr, dataflow.Forward)
	if err != nil {
		return err
	}

	reportedSelects := map[token.Pos]bool{}
	dataflow.WalkForward(g, lat, tr, res, func(n ast.Node, before dataflow.Fact) {
		cur := before.(*facts)
		c.recordWriteNode(n, cur, exempt, fresh)
		c.walkEvents(si, n, eventSink{
			lock: func(op opKind, k lockKey, pos token.Pos) {
				c.checkLockOp(op, k, cur, pos)
				cur = cur.with(op, k)
			},
			call: func(call *ast.CallExpr, fn *types.Func) {
				c.checkCall(call, fn, cur)
			},
			block: func(desc string, pos token.Pos) {
				if desc == "select without default" {
					if reportedSelects[pos] {
						return
					}
					reportedSelects[pos] = true
				}
				if k, held := cur.mustHeld(); held {
					c.pass.Reportf(pos, "%s while %s is held: blocking operation under lock", desc, k)
				}
			},
		})
	})

	// L2: locks that may survive to function exit without a deferred unlock.
	if exitf, ok := res.In[g.Exit].(*facts); ok && exitf != nil {
		keys := make([]lockKey, 0, len(exitf.held))
		for k := range exitf.held {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
		for _, k := range keys {
			h := exitf.held[k]
			if h.may && !h.deferred {
				pos := firstLock[k]
				if !pos.IsValid() {
					pos = body.Pos()
				}
				c.pass.Reportf(pos, "%s may still be held at return: missing unlock or defer unlock on some path", k)
			}
		}
	}
	return nil
}

// prescan counts mutex operations (bounding the lattice height) and records
// the first acquisition site of each key (the L2 anchor).
func (c *checker) prescan(si *selectInfo, body *ast.BlockStmt) (int, map[lockKey]token.Pos) {
	ops := 0
	firstLock := map[lockKey]token.Pos{}
	ast.Inspect(body, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lintutil.Callee(c.info, call)
		if fn == nil {
			return true
		}
		if name, ok := interproc.MutexMethod(fn); ok {
			ops++
			if name == "Lock" || name == "RLock" {
				if base, path, ok := interproc.LockTarget(c.info, call); ok {
					k := lockKey{base, path}
					if _, seen := firstLock[k]; !seen {
						firstLock[k] = call.Pos()
					}
				}
			}
		}
		return true
	})
	return ops, firstLock
}

// checkLockOp reports L3: re-acquisition of a lock already held on this
// path. RLock-after-RLock is legal and not flagged.
func (c *checker) checkLockOp(op opKind, k lockKey, f *facts, pos token.Pos) {
	h, ok := f.get(k)
	if !ok {
		return
	}
	switch op {
	case opLock:
		if h.must {
			c.pass.Reportf(pos, "second Lock of %s: already locked on this path (deadlock)", k)
		}
	case opRLock:
		if h.must && h.write {
			c.pass.Reportf(pos, "RLock of %s while its write lock is held (deadlock)", k)
		}
	}
}

// checkCall reports L3 through one call level (the callee's summary
// acquires a lock we hold in write mode) and L4 for calls that may block.
func (c *checker) checkCall(call *ast.CallExpr, fn *types.Func, f *facts) {
	if reason, ok := interproc.BlockSeed(fn); ok {
		if k, held := f.mustHeld(); held {
			c.pass.Reportf(call.Pos(), "%s while %s is held: blocking operation under lock", reason, k)
		}
		return
	}
	if c.ip == nil {
		return
	}
	sum, ok := c.ip.ForFunc(fn)
	if !ok {
		return
	}
	var keys []lockKey
	if len(sum.RecvLocks) > 0 {
		if base, path, ok := interproc.LockTarget(c.info, call); ok {
			for _, lp := range sum.RecvLocks {
				keys = append(keys, lockKey{base, joinPath(path, lp)})
			}
		}
	}
	for _, gv := range sum.GlobalLocks {
		keys = append(keys, lockKey{gv, ""})
	}
	for _, k := range keys {
		// Only write-held locks are flagged: the summary does not record
		// the callee's acquisition mode, and RLock-under-RLock is legal.
		if h, ok := f.get(k); ok && h.must && h.write {
			c.pass.Reportf(call.Pos(), "call to %s acquires %s, which is already locked on this path (deadlock)", fn.Name(), k)
			return
		}
	}
	if sum.MayBlock {
		if k, held := f.mustHeld(); held {
			c.pass.Reportf(call.Pos(), "call to %s (%s) while %s is held: blocking operation under lock", fn.Name(), sum.BlockReason, k)
		}
	}
}

func joinPath(prefix, p string) string {
	if prefix == "" {
		return p
	}
	if p == "" {
		return prefix
	}
	return prefix + "." + p
}

// ---------------------------------------------------------------------------
// L5: guarded fields written on lock-free paths

type fieldKey struct {
	tn   *types.TypeName
	path string
}

type fieldWrite struct {
	key    fieldKey
	pos    token.Pos
	must   bool // a lock rooted at the written base is must-held here
	may    bool // ... may-held
	exempt bool // "Locked"-suffix function or freshly constructed base
}

// recordWriteNode collects field writes in one CFG node with the lockset in
// force, for the package-wide guarded-field phase.
func (c *checker) recordWriteNode(n ast.Node, f *facts, exempt bool, fresh map[*types.Var]bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			c.recordWrite(lhs, f, exempt, fresh)
		}
	case *ast.IncDecStmt:
		c.recordWrite(n.X, f, exempt, fresh)
	}
}

func (c *checker) recordWrite(lhs ast.Expr, f *facts, exempt bool, fresh map[*types.Var]bool) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if s, ok := c.info.Selections[sel]; !ok || s.Kind() != types.FieldVal {
		return
	}
	base, path, ok := resolveChain(c.info, sel)
	if !ok || path == "" {
		return
	}
	tn := namedTypeOf(base.Type())
	if tn == nil || tn.Pkg() != c.pass.Pkg {
		return
	}
	if _, isLock := containsLock(c.info.TypeOf(sel)); isLock {
		return // writes that install the lock itself are not data accesses
	}
	must, may := f.rootHeld(base)
	c.writes = append(c.writes, fieldWrite{
		key:    fieldKey{tn, path},
		pos:    lhs.Pos(),
		must:   must,
		may:    may,
		exempt: exempt || fresh[base],
	})
}

// collectWritesNoLocks is recordWriteNode for functions with no lock
// activity: every write happens with an empty lockset.
func (c *checker) collectWritesNoLocks(body *ast.BlockStmt, exempt bool, fresh map[*types.Var]bool) {
	ast.Inspect(body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt, *ast.IncDecStmt:
			c.recordWriteNode(m, nil, exempt, fresh)
		}
		return true
	})
}

// reportGuardedWrites runs the package-wide L5 phase: a field written at
// least once with its base's lock must-held is guarded; lock-free,
// non-exempt writes to guarded fields are flagged.
func (c *checker) reportGuardedWrites() {
	guarded := map[fieldKey]bool{}
	for _, w := range c.writes {
		if w.must {
			guarded[w.key] = true
		}
	}
	for _, w := range c.writes {
		if guarded[w.key] && !w.may && !w.exempt {
			c.pass.Reportf(w.pos, "write to %s.%s without holding its lock (written under lock elsewhere in this package)", w.key.tn.Name(), w.key.path)
		}
	}
}

// resolveChain resolves a selector chain to its root variable and dotted
// field path, e.g. g.state.count → (g, "state.count").
func resolveChain(info *types.Info, e ast.Expr) (*types.Var, string, bool) {
	var parts []string
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			if v == nil {
				return nil, "", false
			}
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return v, strings.Join(parts, "."), true
		case *ast.SelectorExpr:
			parts = append(parts, x.Sel.Name)
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, "", false
		}
	}
}

// namedTypeOf returns the named type behind t (derefing one pointer), or
// nil.
func namedTypeOf(t types.Type) *types.TypeName {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// freshLocals finds locals bound to freshly constructed values (&T{...},
// T{...}, new(T), or a plain var declaration): writes through them cannot
// race, so L5 exempts them.
func freshLocals(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	add := func(id *ast.Ident) {
		if v, ok := info.Defs[id].(*types.Var); ok {
			out[v] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if ok && isFreshExpr(n.Rhs[i]) {
					add(id)
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 0 {
				for _, id := range n.Names {
					add(id)
				}
				return true
			}
			for i, id := range n.Names {
				if i < len(n.Values) && isFreshExpr(n.Values[i]) {
					add(id)
				}
			}
		}
		return true
	})
	return out
}

func isFreshExpr(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// L1: locks copied by value

// copyChecks flags by-value traffic in types containing a mutex: function
// parameters, results, and receivers declared by value, and existing
// values copied through assignments, arguments, and returns. Composite
// literals and address-taking are construction, not copying, and stay
// silent.
func (c *checker) copyChecks(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			c.checkFieldList(n.Recv)
			c.checkFieldList(n.Type.Params)
			c.checkFieldList(n.Type.Results)
		case *ast.FuncLit:
			c.checkFieldList(n.Type.Params)
			c.checkFieldList(n.Type.Results)
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i < len(n.Rhs) {
					c.checkValueCopy(n.Rhs[i])
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				c.checkValueCopy(r)
			}
		case *ast.CallExpr:
			for _, a := range n.Args {
				c.checkValueCopy(a)
			}
		}
		return true
	})
}

func (c *checker) checkFieldList(fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		tv, ok := c.info.Types[field.Type]
		if !ok {
			continue
		}
		if name, found := containsLock(tv.Type); found {
			c.pass.Reportf(field.Type.Pos(), "lock passed by value: %s contains %s (use a pointer)",
				types.TypeString(tv.Type, types.RelativeTo(c.pass.Pkg)), name)
		}
	}
}

// checkValueCopy flags expressions that read an existing lock-bearing
// value into a copy.
func (c *checker) checkValueCopy(e ast.Expr) {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	tv, ok := c.info.Types[ast.Unparen(e)]
	if !ok || !tv.IsValue() {
		return
	}
	if name, found := containsLock(tv.Type); found {
		c.pass.Reportf(e.Pos(), "lock copied by value: %s contains %s",
			types.TypeString(tv.Type, types.RelativeTo(c.pass.Pkg)), name)
	}
}

// containsLock reports whether a value of type t embeds a sync.Mutex or
// sync.RWMutex by value (directly, through struct fields, or array
// elements), returning the mutex type's name.
func containsLock(t types.Type) (string, bool) {
	return containsLockRec(t, map[types.Type]bool{})
}

func containsLockRec(t types.Type, seen map[types.Type]bool) (string, bool) {
	if t == nil || seen[t] {
		return "", false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return "sync." + obj.Name(), true
		}
		return containsLockRec(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name, ok := containsLockRec(u.Field(i).Type(), seen); ok {
				return name, true
			}
		}
	case *types.Array:
		return containsLockRec(u.Elem(), seen)
	}
	return "", false
}
