// Package textio reads and writes DPRLE constraint systems in a small
// textual format, in the style of the stand-alone dprle tool the paper
// released ("We have implemented our decision procedure as a stand-alone
// utility in the style of a theorem prover or SAT solver", §4).
//
// Format, by example:
//
//	# The motivating example of the paper (Fig. 1 / §3.1).
//	const filter := match /[\d]+$/;      # preg_match language
//	const unsafe := match /'/;
//	const exact  := re /abc|d*/;         # exact regex language
//	const hello  := lit "nid_";
//	const anystr := any;
//
//	input <= filter;
//	hello . input <= unsafe;
//
// Identifiers on constraint left-hand sides refer to declared constants when
// the name is declared and to variables otherwise. Right-hand sides must be
// declared constants. `.` concatenates; `|` unions.
package textio

import (
	"fmt"
	"strings"

	"dprle/internal/core"
	"dprle/internal/nfa"
	"dprle/internal/regex"
)

// ParseError reports a syntax error with line information. When the error
// wraps a failure from a lower layer (regex compilation, system
// construction), Cause carries it for errors.Is / errors.As.
type ParseError struct {
	Line  int
	Msg   string
	Cause error
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("textio: line %d: %s", e.Line, e.Msg)
}

// Unwrap exposes the underlying cause, so errors.Is(err,
// regex.ErrPatternTooLarge) works through a ParseError.
func (e *ParseError) Unwrap() error { return e.Cause }

type token struct {
	kind tokenKind
	text string
	line int
}

type tokenKind int

const (
	tokIdent  tokenKind = iota
	tokString           // "…"
	tokRegex            // /…/
	tokAssign           // :=
	tokSubset           // <=
	tokDot              // .
	tokPipe             // |
	tokSemi             // ;
	tokEOF
)

func (k tokenKind) String() string {
	switch k {
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokRegex:
		return "regex"
	case tokAssign:
		return "':='"
	case tokSubset:
		return "'<='"
	case tokDot:
		return "'.'"
	case tokPipe:
		return "'|'"
	case tokSemi:
		return "';'"
	case tokEOF:
		return "end of input"
	}
	return "token"
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == ';':
			toks = append(toks, token{tokSemi, ";", line})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", line})
			i++
		case c == '|':
			toks = append(toks, token{tokPipe, "|", line})
			i++
		case c == ':' && i+1 < len(src) && src[i+1] == '=':
			toks = append(toks, token{tokAssign, ":=", line})
			i += 2
		case c == '<' && i+1 < len(src) && src[i+1] == '=':
			toks = append(toks, token{tokSubset, "<=", line})
			i += 2
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' && j+1 < len(src) {
					j++
					switch src[j] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case 'r':
						sb.WriteByte('\r')
					case '0':
						sb.WriteByte(0)
					default:
						sb.WriteByte(src[j])
					}
				} else {
					if src[j] == '\n' {
						line++
					}
					sb.WriteByte(src[j])
				}
				j++
			}
			if j >= len(src) {
				return nil, &ParseError{Line: line, Msg: "unterminated string literal"}
			}
			toks = append(toks, token{tokString, sb.String(), line})
			i = j + 1
		case c == '/':
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != '/' {
				if src[j] == '\\' && j+1 < len(src) {
					// Keep the escape for the regex parser; \/ means /.
					if src[j+1] == '/' {
						sb.WriteByte('/')
						j += 2
						continue
					}
					sb.WriteByte(src[j])
					sb.WriteByte(src[j+1])
					j += 2
					continue
				}
				if src[j] == '\n' {
					return nil, &ParseError{Line: line, Msg: "unterminated regex literal"}
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, &ParseError{Line: line, Msg: "unterminated regex literal"}
			}
			toks = append(toks, token{tokRegex, sb.String(), line})
			i = j + 1
		case isIdentByte(c):
			j := i
			for j < len(src) && isIdentByte(src[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], line})
			i = j
		default:
			return nil, &ParseError{Line: line, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}

func isIdentByte(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

type parser struct {
	toks []token
	pos  int
	sys  *core.System
	decl map[string]*core.Const
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, &ParseError{Line: t.line, Msg: fmt.Sprintf("expected %v, found %v %q", k, t.kind, t.text)}
	}
	return t, nil
}

// Parse reads a constraint file and returns the system it denotes.
func Parse(src string) (*core.System, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, sys: core.NewSystem(), decl: map[string]*core.Const{}}
	for p.cur().kind != tokEOF {
		if p.cur().kind == tokIdent && p.cur().text == "const" {
			if err := p.constDecl(); err != nil {
				return nil, err
			}
			continue
		}
		if err := p.constraint(); err != nil {
			return nil, err
		}
	}
	return p.sys, nil
}

func (p *parser) constDecl() error {
	p.next() // 'const'
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokAssign); err != nil {
		return err
	}
	lang, err := p.langExpr()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	if _, dup := p.decl[name.text]; dup {
		return &ParseError{Line: name.line, Msg: fmt.Sprintf("constant %q redeclared", name.text)}
	}
	c, err := p.sys.Const(name.text, lang)
	if err != nil {
		return &ParseError{Line: name.line, Msg: err.Error(), Cause: err}
	}
	p.decl[name.text] = c
	return nil
}

// langExpr := langTerm ('|' langTerm)*
func (p *parser) langExpr() (*nfa.NFA, error) {
	out, err := p.langTerm()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPipe {
		p.next()
		t, err := p.langTerm()
		if err != nil {
			return nil, err
		}
		out = nfa.Union(out, t)
	}
	return out, nil
}

// langTerm := 'match' REGEX | 're' REGEX | 'lit' STRING | 'any'
func (p *parser) langTerm() (*nfa.NFA, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	switch t.text {
	case "match", "re":
		rt, err := p.expect(tokRegex)
		if err != nil {
			return nil, err
		}
		r, err := regex.Parse(rt.text)
		if err != nil {
			return nil, &ParseError{Line: rt.line, Msg: err.Error(), Cause: err}
		}
		if t.text == "match" {
			m, err := r.MatchLanguage()
			if err != nil {
				return nil, &ParseError{Line: rt.line, Msg: err.Error(), Cause: err}
			}
			return m, nil
		}
		m, err := r.Compile()
		if err != nil {
			return nil, &ParseError{Line: rt.line, Msg: err.Error(), Cause: err}
		}
		return m, nil
	case "lit":
		st, err := p.expect(tokString)
		if err != nil {
			return nil, err
		}
		return nfa.Literal(st.text), nil
	case "any":
		return nfa.AnyString(), nil
	}
	return nil, &ParseError{Line: t.line, Msg: fmt.Sprintf("expected match, re, lit, or any; found %q", t.text)}
}

// constraint := expr '<=' IDENT ';'
func (p *parser) constraint() error {
	lhs, err := p.expr()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokSubset); err != nil {
		return err
	}
	rhs, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	c, ok := p.decl[rhs.text]
	if !ok {
		return &ParseError{Line: rhs.line, Msg: fmt.Sprintf("right-hand side %q is not a declared constant", rhs.text)}
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	if err := p.sys.Add(lhs, c); err != nil {
		return &ParseError{Line: rhs.line, Msg: err.Error(), Cause: err}
	}
	return nil
}

// expr := alt, alt := cat ('|' cat)*, cat := term ('.' term)*
func (p *parser) expr() (core.Expr, error) {
	out, err := p.cat()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPipe {
		p.next()
		r, err := p.cat()
		if err != nil {
			return nil, err
		}
		out = core.Or{Left: out, Right: r}
	}
	return out, nil
}

func (p *parser) cat() (core.Expr, error) {
	out, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokDot {
		p.next()
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		out = core.Cat{Left: out, Right: r}
	}
	return out, nil
}

func (p *parser) term() (core.Expr, error) {
	t := p.next()
	switch t.kind {
	case tokIdent:
		if c, ok := p.decl[t.text]; ok {
			return c, nil
		}
		return core.Var{Name: t.text}, nil
	case tokString:
		return p.sys.AnonConst(nfa.Literal(t.text)), nil
	}
	return nil, &ParseError{Line: t.line, Msg: fmt.Sprintf("expected identifier or string, found %v %q", t.kind, t.text)}
}

// FormatResult renders solver output for human consumption: one block per
// disjunctive assignment, one line per variable with a shortest witness.
func FormatResult(sys *core.System, res *core.Result) string {
	var b strings.Builder
	if !res.Sat() {
		b.WriteString("no assignments found\n")
		return b.String()
	}
	for i, a := range res.Assignments {
		fmt.Fprintf(&b, "assignment %d:\n", i+1)
		for _, v := range sys.Vars() {
			lang := a.Lookup(v)
			if w, ok := lang.ShortestWitness(); ok {
				fmt.Fprintf(&b, "  %s = %q  (machine: %d states)\n", v, w, lang.NumStates())
			} else {
				fmt.Fprintf(&b, "  %s = ∅\n", v)
			}
		}
	}
	if res.Truncated {
		b.WriteString("(enumeration truncated)\n")
	}
	return b.String()
}
