package textio

import "testing"

// FuzzParse checks the constraint-file parser never panics; well-formed
// inputs must produce a system whose String round-trips through the parser.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		``,
		`const c := any; v <= c;`,
		"const filter := match /[\\d]+$/;\ninput <= filter;\n",
		`const a := lit "x\n"; const b := re /y*/; p . q | r <= a; "k" . v <= b;`,
		`# just a comment`,
		`const x := `,
		`v <= ;`,
		`const c := lit "unterminated`,
		`const c := match /unterminated`,
		`@@@`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		sys, err := Parse(src)
		if err != nil {
			return
		}
		_ = sys.String()
	})
}
