package textio

import (
	"errors"
	"strings"
	"testing"
	"time"

	"dprle/internal/core"
	"dprle/internal/regex"
)

const motivating = `
# Motivating example (paper §2 / §3.1).
const filter := match /[\d]+$/;
const unsafe := match /'/;
const prefix := lit "nid_";

input <= filter;
prefix . input <= unsafe;
`

func TestParseMotivating(t *testing.T) {
	sys, err := Parse(motivating)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Constraints()); got != 2 {
		t.Fatalf("constraints = %d, want 2", got)
	}
	if vars := sys.Vars(); len(vars) != 1 || vars[0] != "input" {
		t.Fatalf("vars = %v", vars)
	}
	res, err := core.Solve(sys, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sat() {
		t.Fatal("should be satisfiable")
	}
	if !res.First().Lookup("input").Accepts("' OR 1=1 ; DROP news --9") {
		t.Fatal("exploit not covered")
	}
	out := FormatResult(sys, res)
	if !strings.Contains(out, "assignment 1:") || !strings.Contains(out, "input = ") {
		t.Fatalf("FormatResult = %q", out)
	}
}

func TestParseAllLangForms(t *testing.T) {
	src := `
const a := re /ab*/;
const b := lit "x\n\"y";
const c := any;
const d := lit "p" | lit "q";
v <= a;
w <= b;
x <= c;
y <= d;
`
	sys, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(sys, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := res.First()
	if !a.Lookup("v").Accepts("abb") || a.Lookup("v").Accepts("b") {
		t.Fatal("re form wrong")
	}
	if !a.Lookup("w").Accepts("x\n\"y") {
		t.Fatal("string escapes wrong")
	}
	if !a.Lookup("x").Accepts("anything at all") {
		t.Fatal("any form wrong")
	}
	if !a.Lookup("y").Accepts("p") || !a.Lookup("y").Accepts("q") || a.Lookup("y").Accepts("r") {
		t.Fatal("lang union wrong")
	}
}

func TestParseExprUnionAndStrings(t *testing.T) {
	src := `
const c := re /[a-z]+/;
v | w <= c;
"k" . v <= c;
`
	sys, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Constraints()); got != 2 {
		t.Fatalf("constraints = %d", got)
	}
	res, err := core.Solve(sys, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sat() {
		t.Fatal("should be satisfiable")
	}
	// v must satisfy both v ⊆ c and k·v ⊆ c.
	v := res.First().Lookup("v")
	if !v.Accepts("abc") || v.Accepts("k") == false && v.Accepts("A") {
		t.Log("v witness check")
	}
	if v.Accepts("ABC") {
		t.Fatal("v should stay within [a-z]+")
	}
}

func TestParseRegexWithSlashEscape(t *testing.T) {
	sys, err := Parse(`
const c := re /a\/b/;
v <= c;
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(sys, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.First().Lookup("v").Accepts("a/b") {
		t.Fatal("escaped slash wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`const x := ;`,
		`const x := match /unclosed;`,
		`const x := lit "unclosed;`,
		`v <= undeclared;`,
		`const x := lit "a"; v <= x`, // missing semicolon
		`const x := lit "a"; const x := lit "b"; v <= x;`,
		`const x := bogus "a"; v <= x;`,
		`const x := match /(/; v <= x;`,
		`@`,
		`v <= ;`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := Parse("const a := lit \"x\";\nv <= nope;\n")
	pe, ok := err.(*ParseError)
	if !ok || pe.Line != 2 {
		t.Fatalf("err = %v", err)
	}
}

func TestFormatUnsat(t *testing.T) {
	sys, err := Parse(`
const a := re /x+/;
const b := re /y+/;
v <= a;
v <= b;
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(sys, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(FormatResult(sys, res), "no assignments found") {
		t.Fatal("unsat formatting wrong")
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	sys, err := Parse("# only a comment\n\n   \t\n# another\nconst c := any;\nv <= c;  # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Constraints()) != 1 {
		t.Fatal("constraint lost")
	}
}

// TestParseExplosiveRegexFails pins the regex expansion bound at this
// front end: a hostile pattern whose nested bounded repeats multiply must
// surface regex.ErrPatternTooLarge as a ParseError instead of hanging the
// parser while it expands a million-state machine.
func TestParseExplosiveRegexFails(t *testing.T) {
	cases := []string{
		`const x := re /a{400}{400}/; v <= x;`,
		`const x := match /a{999}{999}/; v <= x;`,
		`const x := re /(a{100}){100}{100}/; v <= x;`,
	}
	for _, src := range cases {
		start := time.Now()
		_, err := Parse(src)
		if !errors.Is(err, regex.ErrPatternTooLarge) {
			t.Errorf("Parse(%q) err = %v, want regex.ErrPatternTooLarge", src, err)
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Parse(%q) err = %T, want *ParseError with line info", src, err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Errorf("rejecting %q took %v", src, elapsed)
		}
	}
}
