package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// postRaw posts body and returns the full response (caller closes Body).
func postRaw(t *testing.T, url, contentType, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/solve", contentType, strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	return resp
}

// decodeInto decodes and closes a response body.
func decodeInto(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
}

func TestCacheHitHeaderAndBody(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	var first, second SolveResponse
	r1 := postRaw(t, ts.URL, "text/plain", satSource)
	if got := r1.Header.Get(CacheHeader); got != CacheMiss {
		t.Errorf("first request %s = %q, want %q", CacheHeader, got, CacheMiss)
	}
	decodeInto(t, r1, &first)

	r2 := postRaw(t, ts.URL, "text/plain", satSource)
	if got := r2.Header.Get(CacheHeader); got != CacheHit {
		t.Errorf("second request %s = %q, want %q", CacheHeader, got, CacheHit)
	}
	decodeInto(t, r2, &second)

	if first.Status != StatusSat || second.Status != StatusSat {
		t.Fatalf("statuses = %q/%q, want sat/sat", first.Status, second.Status)
	}
	// The hit replays the memoized body verbatim.
	b1, _ := json.Marshal(first)
	b2, _ := json.Marshal(second)
	if string(b1) != string(b2) {
		t.Errorf("cached response differs from original:\n%s\n%s", b1, b2)
	}
	if hits, misses := s.stats.cacheHits.Load(), s.stats.cacheMisses.Load(); hits != 1 || misses != 1 {
		t.Errorf("cacheHits/cacheMisses = %d/%d, want 1/1", hits, misses)
	}
	// Only one solve ran: the hit did not bump the sat counter.
	if got := s.stats.sat.Load(); got != 1 {
		t.Errorf("sat = %d, want 1 (the hit must not re-solve)", got)
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Same system, different options: distinct cache keys, both solve.
	for _, body := range []string{
		fmt.Sprintf(`{"system": %q}`, satSource),
		fmt.Sprintf(`{"system": %q, "options": {"max_solutions": 1}}`, satSource),
	} {
		resp := postRaw(t, ts.URL, "application/json", body)
		if got := resp.Header.Get(CacheHeader); got != CacheMiss {
			t.Errorf("request %q: %s = %q, want miss", body, CacheHeader, got)
		}
		resp.Body.Close()
	}
	if got := s.stats.cacheHits.Load(); got != 0 {
		t.Errorf("cacheHits = %d, want 0 (different options must not alias)", got)
	}
}

func TestCacheNeverStoresDegradedResponse(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxStates: 3000})
	for i := 0; i < 2; i++ {
		var sr SolveResponse
		resp := postRaw(t, ts.URL, "text/plain", bombSource)
		if got := resp.Header.Get(CacheHeader); got != CacheMiss {
			t.Errorf("request %d: %s = %q, want miss (degraded answers are uncacheable)", i, CacheHeader, got)
		}
		decodeInto(t, resp, &sr)
		if sr.Degraded == nil {
			t.Fatalf("request %d: bomb did not degrade under a 3000-state cap", i)
		}
	}
	if got := s.stats.cacheHits.Load(); got != 0 {
		t.Errorf("cacheHits = %d, want 0", got)
	}
	if got := s.stats.exhausted.Load(); got != 2 {
		t.Errorf("exhausted = %d, want 2 (both requests must really solve)", got)
	}
}

func TestCacheDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheEntries: -1})
	for i := 0; i < 2; i++ {
		resp := postRaw(t, ts.URL, "text/plain", satSource)
		if got := resp.Header.Get(CacheHeader); got != CacheMiss {
			t.Errorf("request %d: %s = %q, want miss (cache disabled, flight still keyed)", i, CacheHeader, got)
		}
		resp.Body.Close()
	}
	if got := s.stats.sat.Load(); got != 2 {
		t.Errorf("sat = %d, want 2 (every request solves when caching is off)", got)
	}
	if got := s.stats.cacheHits.Load(); got != 0 {
		t.Errorf("cacheHits = %d, want 0", got)
	}
}

func TestNoCollapseAndNoCacheOmitsHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheEntries: -1, NoCollapse: true})
	resp := postRaw(t, ts.URL, "text/plain", satSource)
	defer resp.Body.Close()
	if got := resp.Header.Get(CacheHeader); got != "" {
		t.Errorf("%s = %q with caching and collapsing both off, want absent", CacheHeader, got)
	}
}

// TestCollapseSharesOneSolve admits a slow leader, then fires identical
// requests while it is in flight: they must all collapse onto the
// leader's solve — one solve for the whole burst.
func TestCollapseSharesOneSolve(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 32})

	body := fmt.Sprintf(`{"system": %q, "options": {"timeout_ms": 700}}`, bombSource)
	type result struct {
		how    string
		status int
	}
	results := make(chan result, 8)
	var wg sync.WaitGroup
	post := func() {
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Errorf("request: %v", err)
			return
		}
		defer resp.Body.Close()
		var sr SolveResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Errorf("decoding: %v", err)
			return
		}
		results <- result{resp.Header.Get(CacheHeader), resp.StatusCode}
	}

	wg.Add(1)
	go post()
	// Wait for the leader to be admitted, then pile on duplicates while
	// its ~700ms bomb solve is still running.
	deadline := time.Now().Add(10 * time.Second)
	for s.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never admitted")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i := 0; i < 7; i++ {
		wg.Add(1)
		go post()
	}
	wg.Wait()
	close(results)

	var miss, collapsed int
	for r := range results {
		if r.status != http.StatusOK {
			t.Errorf("status = %d, want 200", r.status)
		}
		switch r.how {
		case CacheMiss:
			miss++
		case CacheCollapsed:
			collapsed++
		default:
			t.Errorf("%s = %q, want miss or collapsed", CacheHeader, r.how)
		}
	}
	if miss != 1 || collapsed != 7 {
		t.Errorf("miss/collapsed = %d/%d, want 1/7", miss, collapsed)
	}
	if got := s.stats.collapsed.Load(); got != 7 {
		t.Errorf("collapsed counter = %d, want 7", got)
	}
	// The whole burst consumed exactly one solve.
	if got := s.stats.exhausted.Load(); got != 1 {
		t.Errorf("exhausted = %d, want 1 (followers must not re-solve the bomb)", got)
	}
}

func TestNoCollapseSolvesEveryRequest(t *testing.T) {
	// Degraded answers are never cached, so with collapsing off every
	// concurrent duplicate runs its own bomb solve.
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 32, NoCollapse: true})
	body := fmt.Sprintf(`{"system": %q, "options": {"timeout_ms": 300}}`, bombSource)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("request: %v", err)
				return
			}
			resp.Body.Close()
		}()
	}
	wg.Wait()
	if got := s.stats.collapsed.Load(); got != 0 {
		t.Errorf("collapsed = %d with NoCollapse, want 0", got)
	}
	if got := s.stats.exhausted.Load(); got != 4 {
		t.Errorf("exhausted = %d, want 4 (each duplicate solves on its own)", got)
	}
}

func TestStatuszReportsCacheStats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postSolve(t, ts, "text/plain", satSource, nil)
	postSolve(t, ts, "text/plain", satSource, nil)

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var st StatusResponse
	decodeInto(t, resp, &st)
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("CacheHits/CacheMisses = %d/%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
	if st.Cache.Entries == 0 || st.Cache.Bytes == 0 {
		t.Errorf("Cache snapshot = %+v, want non-empty after a memoized solve", st.Cache)
	}
}
