// Package server is the fault-isolated solving service around the DPRLE
// decision procedure: a long-running HTTP/JSON front end in which every
// request is parsed, solved on a bounded worker pool under a
// policy-clamped resource budget, and answered with structured JSON.
//
// The engine's worst case is inherently exponential (the paper's `secure`
// benchmark takes minutes on a few constraints), so robustness lives in
// this layer, not the solver:
//
//   - Panic isolation: a panic inside one request's solve is recovered at
//     the worker boundary and reported as a 500 with an incident ID; the
//     pool and every other request keep running.
//   - Admission control: a bounded queue in front of a bounded pool; when
//     the queue is full the request is shed immediately with 429 and
//     Retry-After instead of growing latency for everyone.
//   - Budget clamping: per-request deadlines and state/step caps are
//     honored but clamped to the server's configured ceilings, so no
//     client can demand an unbounded solve.
//   - Disconnect cancellation: a client that goes away cancels its solve
//     at the next budget checkpoint, freeing the worker.
//   - Graceful drain: Drain stops admission (readyz turns 503, new solves
//     get 503 + Retry-After), finishes in-flight requests within a
//     bounded timeout, then stops the workers.
//   - Caching and collapsing: complete (never degraded) responses are
//     memoized in a bounded solve cache also shared with the solver's
//     per-component memoization, and concurrent identical requests
//     collapse onto one solve. Every /solve response carries an
//     X-Dprle-Cache: hit|miss|collapsed header. See DESIGN.md §10.
//
// Endpoints: POST /solve, GET /healthz, GET /readyz, GET /statusz.
package server

import (
	"context"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dprle/internal/solvecache"
)

// Config is the server policy. The zero value of each field selects the
// documented default; negative MaxStates/MaxSteps disable the cap.
type Config struct {
	// Workers is the solving concurrency: the number of pool goroutines.
	// Default: GOMAXPROCS, at least 2.
	Workers int
	// QueueDepth bounds the admission queue in front of the pool; a full
	// queue sheds load with 429. Default: 4×Workers.
	QueueDepth int
	// DefaultTimeout applies to requests that do not ask for a deadline.
	// Default: 5s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps the per-request deadline a client may request.
	// Default: 30s.
	MaxTimeout time.Duration
	// MaxStates / MaxSteps are the ceilings for the per-request solver
	// budget (see budget.Limits). Requests asking for more — or for
	// nothing — are clamped to the ceiling. 0 selects the defaults
	// (4Mi states, 1Mi steps); negative disables the cap.
	MaxStates int64
	MaxSteps  int64
	// MaxBodyBytes bounds the request body. Default: 1 MiB.
	MaxBodyBytes int64
	// DrainTimeout is the default bound for Run's drain on SIGTERM; Drain
	// callers pass their own context. Default: 10s.
	DrainTimeout time.Duration
	// CacheEntries bounds the solve cache (shared between whole-response
	// memoization and the solver's per-component cache). 0 selects the
	// solvecache default (4096 entries); negative disables caching
	// entirely. See DESIGN.md §10.
	CacheEntries int
	// CacheBytes bounds the accounted size of the solve cache. 0 selects
	// the solvecache default (64 MiB). Ignored when caching is disabled.
	CacheBytes int64
	// NoCollapse disables request collapsing: concurrent identical
	// requests each get their own solve instead of sharing one.
	NoCollapse bool
	// Logf receives incident reports (recovered panic stacks). Default:
	// discard; cmd/dprled wires it to its stderr logger.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers < 2 {
			c.Workers = 2
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	switch {
	case c.MaxStates == 0:
		c.MaxStates = 4 << 20
	case c.MaxStates < 0:
		c.MaxStates = 0 // unlimited
	}
	switch {
	case c.MaxSteps == 0:
		c.MaxSteps = 1 << 20
	case c.MaxSteps < 0:
		c.MaxSteps = 0
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Drain states.
const (
	stateAccepting int32 = iota
	stateDraining
	stateDrained
)

func stateName(s int32) string {
	switch s {
	case stateAccepting:
		return "accepting"
	case stateDraining:
		return "draining"
	case stateDrained:
		return "drained"
	}
	return "unknown"
}

// Server is one dprled instance. Create it with New; it is ready to serve
// as soon as its Handler is mounted.
type Server struct {
	cfg  Config
	pool *pool
	mux  *http.ServeMux
	// cache memoizes complete (never degraded) solve responses and is
	// shared into core.Options.Cache so workers also reuse per-component
	// solutions across requests. nil when Config.CacheEntries < 0.
	cache *solvecache.Cache
	// flight collapses concurrent identical requests onto one solve. nil
	// when Config.NoCollapse.
	flight *solvecache.Flight
	state  atomic.Int32
	// inflight counts admitted requests (queued or solving) for /statusz;
	// wg tracks the same population for Drain.
	inflight atomic.Int64
	wg       sync.WaitGroup
	start    time.Time

	stats struct {
		requests    atomic.Int64
		sat         atomic.Int64
		unsat       atomic.Int64
		unknown     atomic.Int64
		exhausted   atomic.Int64
		shed        atomic.Int64
		panics      atomic.Int64
		parseErrors atomic.Int64
		canceled    atomic.Int64
		// cacheHits/cacheMisses count response-cache outcomes;
		// collapsed counts requests that shared another request's solve.
		cacheHits   atomic.Int64
		cacheMisses atomic.Int64
		collapsed   atomic.Int64
	}
}

// New builds a Server with the given policy and starts its worker pool.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg.withDefaults(), start: time.Now()}
	if s.cfg.CacheEntries >= 0 {
		s.cache = solvecache.New(solvecache.Config{
			MaxEntries: s.cfg.CacheEntries,
			MaxBytes:   s.cfg.CacheBytes,
		})
	}
	if !s.cfg.NoCollapse {
		s.flight = solvecache.NewFlight()
	}
	s.pool = newPool(s.cfg.Workers, s.cfg.QueueDepth, s.recordPanic)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /solve", s.handleSolve)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	return s
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Config reports the effective (defaulted) policy.
func (s *Server) Config() Config { return s.cfg }

// CacheStats snapshots the shared solve cache's counters (zero when
// caching is disabled).
func (s *Server) CacheStats() solvecache.Stats { return s.cache.Stats() }

// recordPanic is the pool's fault sink: it counts the incident and logs
// the stack under the incident ID the client received.
func (s *Server) recordPanic(incident string, val any, stack []byte) {
	s.stats.panics.Add(1)
	s.cfg.Logf("incident %s: recovered panic: %v\n%s", incident, val, stack)
}

// draining reports whether the server has left the accepting state.
func (s *Server) draining() bool { return s.state.Load() != stateAccepting }

// Drain runs the shutdown state machine: accepting → draining → drained.
// It stops admission (new solves and readyz turn 503), waits for every
// admitted request to finish, then stops the worker pool. The wait is
// bounded by ctx: on expiry Drain returns ctx.Err() with the pool still
// running its stragglers (their own deadlines will reap them).
//
// Drain is idempotent; concurrent calls all wait for the same drain.
func (s *Server) Drain(ctx context.Context) error {
	s.state.CompareAndSwap(stateAccepting, stateDraining)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.pool.close()
		s.state.Store(stateDrained)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
