package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dprle/internal/budget"
	"dprle/internal/faultinject"
)

// TestChaosFaultSweep is the acceptance harness from the issue: for every
// fault-injection point in the solver pipeline, arm the fault and push a
// burst of concurrent requests through the full HTTP stack. Whatever the
// injection turns into — a budget trip, an injected error, or a panic deep
// inside Budget.Check — every request must get a structured JSON answer,
// the process must not crash, /readyz must still report ready, and no
// goroutine may leak.
func TestChaosFaultSweep(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	before := runtime.NumGoroutine()

	const burst = 8
	for pi, point := range faultinject.Points() {
		t.Run(string(point), func(t *testing.T) {
			disarm := faultinject.Arm(point, 1)
			defer disarm()

			type reply struct {
				code int
				body []byte
			}
			replies := make(chan reply, burst)
			var wg sync.WaitGroup
			for i := 0; i < burst; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					// Each request gets a structurally unique constant, so
					// neither the response cache nor the solver's
					// rename-invariant component cache nor request
					// collapsing can merge them: all 8 really solve, and
					// the armed fault hits exactly one.
					src := fmt.Sprintf("const c := re /a{%d}b{%d}/;\nv1 . v2 <= c;\n", pi+1, i+1)
					resp, err := http.Post(ts.URL+"/solve", "text/plain", strings.NewReader(src))
					if err != nil {
						t.Errorf("request failed outright (the fault escaped the server): %v", err)
						return
					}
					defer resp.Body.Close()
					raw, err := io.ReadAll(resp.Body)
					if err != nil {
						t.Errorf("reading body: %v", err)
						return
					}
					replies <- reply{resp.StatusCode, raw}
				}(i)
			}
			wg.Wait()
			close(replies)

			var sat, degraded, incidents int
			for r := range replies {
				switch r.code {
				case http.StatusOK:
					var sr SolveResponse
					if err := json.Unmarshal(r.body, &sr); err != nil {
						t.Fatalf("200 body not a SolveResponse: %v (%q)", err, r.body)
					}
					switch {
					case sr.Degraded != nil:
						degraded++
						if sr.Degraded.Kind != string(budget.Injected) {
							t.Errorf("Degraded.Kind = %q, want %q", sr.Degraded.Kind, budget.Injected)
						}
					case sr.Status == StatusSat:
						sat++
					default:
						t.Errorf("unexpected clean response %+v", sr)
					}
				case http.StatusInternalServerError:
					var er ErrorResponse
					if err := json.Unmarshal(r.body, &er); err != nil {
						t.Fatalf("500 body not an ErrorResponse: %v (%q)", err, r.body)
					}
					if er.Code != CodeInternal || er.IncidentID == "" {
						t.Errorf("500 = %+v, want internal code with incident ID", er)
					}
					incidents++
				default:
					t.Errorf("status %d (%q): structured answers only", r.code, r.body)
				}
			}
			if sat+degraded+incidents != burst {
				t.Fatalf("answers = %d sat + %d degraded + %d incidents, want %d total",
					sat, degraded, incidents, burst)
			}
			// Arm(point, 1) fires on the first occurrence, and every point is
			// on the small system's solve path, so exactly one request is hit.
			if degraded+incidents != 1 {
				t.Errorf("fault at %s hit %d requests, want exactly 1", point, degraded+incidents)
			}
			if point == faultinject.Crash {
				if incidents != 1 {
					t.Errorf("Crash produced %d incidents, want 1 (panic must cross the recover boundary)", incidents)
				}
			} else if degraded != 1 {
				t.Errorf("%s produced %d degraded answers, want 1", point, degraded)
			}

			// The server is still ready: the fault was isolated to one request.
			resp, err := http.Get(ts.URL + "/readyz")
			if err != nil {
				t.Fatalf("readyz after fault: %v", err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("readyz after %s = %d, want 200", point, resp.StatusCode)
			}
		})
	}

	// Crash panics are the only incidents the sweep should have produced.
	if got := s.stats.panics.Load(); got != 1 {
		t.Errorf("panics counter = %d, want 1 (only the Crash sweep)", got)
	}
	http.DefaultClient.CloseIdleConnections()
	checkGoroutines(t, before)
}

// TestChaosCrashBurst arms a fresh Crash for every request in the burst
// (sequentially, since arming is global) and checks the pool survives
// repeated panics without losing workers.
func TestChaosCrashBurst(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 16})
	before := runtime.NumGoroutine()

	const rounds = 10
	for i := 0; i < rounds; i++ {
		disarm := faultinject.Arm(faultinject.Crash, 1)
		var er ErrorResponse
		code := postSolve(t, ts, "text/plain", satSource, &er)
		disarm()
		if code != http.StatusInternalServerError {
			t.Fatalf("round %d: status = %d, want 500", i, code)
		}
		if er.IncidentID == "" {
			t.Fatalf("round %d: missing incident ID", i)
		}
	}
	if got := s.stats.panics.Load(); got != rounds {
		t.Errorf("panics = %d, want %d", got, rounds)
	}

	// All workers survived: a clean burst still solves at full width.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sr SolveResponse
			if code := postSolve(t, ts, "text/plain", satSource, &sr); code != http.StatusOK || sr.Status != StatusSat {
				t.Errorf("post-crash solve = %d/%q, want 200/sat", code, sr.Status)
			}
		}()
	}
	wg.Wait()
	http.DefaultClient.CloseIdleConnections()
	checkGoroutines(t, before)
}

// TestChaosDrainUnderLoad starts slow solves, then drains mid-flight: every
// admitted request must still get its answer, the drain must finish within
// its bound, and late arrivals must see 503.
func TestChaosDrainUnderLoad(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 16})
	before := runtime.NumGoroutine()

	const n = 8
	codes := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := fmt.Sprintf(`{"system": %q, "options": {"timeout_ms": 600}}`, bombSource)
			resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("in-flight request: %v", err)
				return
			}
			defer resp.Body.Close()
			var sr SolveResponse
			if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
				t.Errorf("in-flight response: %v", err)
				return
			}
			codes <- resp.StatusCode
		}()
	}
	// Wait until the load is admitted, then drain.
	deadline := time.Now().Add(10 * time.Second)
	for s.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no request was ever admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain under load: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("drain took %v; the 600ms per-request deadlines should bound it", elapsed)
	}
	wg.Wait()
	close(codes)
	got := 0
	for code := range codes {
		got++
		if code != http.StatusOK && code != http.StatusServiceUnavailable {
			t.Errorf("in-flight request answered %d", code)
		}
	}
	if got != n {
		t.Errorf("answered = %d, want %d (drain must not eat requests)", got, n)
	}

	// Late arrival: structured 503, not a hang or reset.
	var er ErrorResponse
	if code := postSolve(t, ts, "text/plain", satSource, &er); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain solve = %d, want 503", code)
	}
	if er.Code != CodeDraining {
		t.Errorf("post-drain code = %q, want %q", er.Code, CodeDraining)
	}
	http.DefaultClient.CloseIdleConnections()
	checkGoroutines(t, before)
}
