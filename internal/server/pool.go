package server

import (
	"context"
	"errors"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Admission failures submit can report.
var (
	errQueueFull  = errors.New("server: queue full")
	errPoolClosed = errors.New("server: pool closed")
)

// outcome is what a worker hands back to the waiting handler: an HTTP
// status and the response body to encode.
type outcome struct {
	status int
	body   any
}

// task is one admitted solve. The worker is the only sender on done (its
// capacity-1 buffer means delivery never blocks, even when the handler has
// already abandoned the request), and release is called exactly once per
// admitted task — by the worker when it finishes, skips, or panics.
type task struct {
	ctx     context.Context
	do      func(ctx context.Context) (int, any)
	done    chan outcome
	started atomic.Bool // set by the worker just before do runs
	release func()
}

func (t *task) deliver(status int, body any) {
	t.done <- outcome{status: status, body: body}
}

// pool is a bounded worker pool: Workers goroutines consuming a
// QueueDepth-buffered channel. The buffer is the admission queue — a full
// buffer means the server is saturated and submit refuses immediately, so
// load is shed at the door instead of piling up unbounded goroutines.
type pool struct {
	mu      sync.RWMutex // guards closed vs. send-on-closed-channel
	closed  bool
	tasks   chan *task
	wg      sync.WaitGroup
	onPanic func(incident string, val any, stack []byte)
}

func newPool(workers, depth int, onPanic func(incident string, val any, stack []byte)) *pool {
	p := &pool{
		tasks:   make(chan *task, depth),
		onPanic: onPanic,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// submit enqueues a task without blocking. It returns errQueueFull when the
// admission queue is at capacity and errPoolClosed after close.
func (p *pool) submit(t *task) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return errPoolClosed
	}
	select {
	case p.tasks <- t:
		return nil
	default:
		return errQueueFull
	}
}

// close stops admission and waits for the workers to drain the queue and
// exit. Tasks still queued are run (or skipped, if their context died);
// their releases all fire before close returns.
func (p *pool) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *pool) queueLen() int { return len(p.tasks) }
func (p *pool) queueCap() int { return cap(p.tasks) }

func (p *pool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		p.runTask(t)
	}
}

// runTask executes one task under the pool's fault boundary. A panic
// anywhere in the solve is recovered here: the panicking request gets a
// 500 with an incident ID, the worker goroutine survives, and every other
// request is untouched — the per-request fault isolation the service is
// built around.
func (p *pool) runTask(t *task) {
	defer t.release()
	defer func() {
		if r := recover(); r != nil {
			id := newIncidentID()
			p.onPanic(id, r, debug.Stack())
			t.deliver(http.StatusInternalServerError, &ErrorResponse{
				Error:      "internal error; the failure was isolated to this request",
				Code:       CodeInternal,
				IncidentID: id,
			})
		}
	}()
	// A request whose context died while queued (client disconnected, or
	// the deadline passed before a worker freed up) is skipped: the solve
	// would only burn a worker on an answer nobody can use.
	if err := t.ctx.Err(); err != nil {
		kind := "canceled"
		if errors.Is(err, context.DeadlineExceeded) {
			kind = "deadline"
		}
		t.deliver(http.StatusOK, &SolveResponse{
			Status:   StatusUnknown,
			Usage:    Usage{Exhausted: true},
			Degraded: &Degraded{Kind: kind, Stage: "server.queue"},
		})
		return
	}
	t.started.Store(true)
	status, body := t.do(t.ctx)
	t.deliver(status, body)
}
