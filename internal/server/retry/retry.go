// Package retry implements budget-aware retries with jittered exponential
// backoff, for clients of the dprled solving service and for re-running
// budget-exhausted solves with escalated limits.
//
// The policy is deliberately pessimistic about time: before sleeping, Do
// checks the context's remaining budget and gives up rather than burn the
// caller's deadline waiting for an attempt it could never make. Server
// backpressure hints (Retry-After) override the computed backoff via
// After.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Policy shapes one retry loop. The zero value makes a single attempt.
type Policy struct {
	// MaxAttempts is the total number of attempts, including the first.
	// Values below 1 mean 1.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt multiplies it by Multiplier, capped at MaxDelay. A zero
	// BaseDelay retries immediately (useful when the retry escalates a
	// resource budget rather than waiting out a transient fault).
	BaseDelay time.Duration
	// MaxDelay caps the backoff. 0 means no cap.
	MaxDelay time.Duration
	// Multiplier scales the delay between attempts; values below 1 mean 2.
	Multiplier float64
	// Jitter randomizes each delay to d×[1-Jitter, 1+Jitter], de-syncing
	// clients that shed at the same moment. Clamped to [0, 1].
	Jitter float64

	// sleep and rnd are test seams; nil selects the real clock and
	// math/rand.
	sleep func(ctx context.Context, d time.Duration) error
	rnd   func() float64
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent marks err as non-retryable: Do stops immediately and returns
// it (unwrapped by errors.Is/As as usual).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// afterError carries a server backpressure hint (Retry-After) that
// overrides the computed backoff for the next attempt.
type afterError struct {
	err   error
	delay time.Duration
}

func (e *afterError) Error() string { return e.err.Error() }
func (e *afterError) Unwrap() error { return e.err }

// After attaches a server-provided delay hint to err: if Do retries, it
// waits d instead of the computed backoff. A 429/503 handler's Retry-After
// header is the intended source.
func After(err error, d time.Duration) error {
	if err == nil {
		return nil
	}
	return &afterError{err: err, delay: d}
}

// Do runs op until it succeeds, exhausts the policy's attempts, hits a
// Permanent error, or runs out of context budget. The attempt number
// (1-based) is passed to op so escalating retries can scale their
// resource budgets. Do returns nil on success; otherwise the last error,
// wrapped with the attempt count.
func (p Policy) Do(ctx context.Context, op func(ctx context.Context, attempt int) error) error {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	jitter := p.Jitter
	if jitter < 0 {
		jitter = 0
	}
	if jitter > 1 {
		jitter = 1
	}
	sleep := p.sleep
	if sleep == nil {
		sleep = realSleep
	}
	rnd := p.rnd
	if rnd == nil {
		rnd = rand.Float64
	}

	delay := p.BaseDelay
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return joinAttempts(lastErr, attempt-1, err)
		}
		err := op(ctx, attempt)
		if err == nil {
			return nil
		}
		lastErr = err
		var pe *permanentError
		if errors.As(err, &pe) {
			return joinAttempts(pe.err, attempt, nil)
		}
		if attempt == attempts {
			break
		}
		wait := delay
		var ae *afterError
		if errors.As(err, &ae) {
			wait = ae.delay
		}
		if p.MaxDelay > 0 && wait > p.MaxDelay {
			wait = p.MaxDelay
		}
		if jitter > 0 && wait > 0 {
			frac := 1 - jitter + 2*jitter*rnd()
			wait = time.Duration(float64(wait) * frac)
		}
		// Budget-aware: a sleep that would outlive the caller's deadline
		// cannot lead to a useful attempt, so stop now and hand the time
		// back.
		if dl, ok := ctx.Deadline(); ok && wait > 0 && time.Until(dl) < wait {
			return joinAttempts(lastErr, attempt, context.DeadlineExceeded)
		}
		if wait > 0 {
			if err := sleep(ctx, wait); err != nil {
				return joinAttempts(lastErr, attempt, err)
			}
		}
		delay = time.Duration(float64(delay) * mult)
	}
	return joinAttempts(lastErr, attempts, nil)
}

func realSleep(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// joinAttempts wraps the operation's last error with the attempt count
// (and the budget error that stopped the loop, if any), keeping the
// original error visible to errors.Is/As.
func joinAttempts(opErr error, attempts int, stop error) error {
	switch {
	case opErr == nil && stop == nil:
		return nil
	case opErr == nil:
		return fmt.Errorf("retry: stopped before the first attempt: %w", stop)
	case stop == nil:
		return fmt.Errorf("retry: %d attempt(s): %w", attempts, opErr)
	default:
		return fmt.Errorf("retry: %d attempt(s), stopped (%w): %w", attempts, stop, opErr)
	}
}
