package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

var errFlaky = errors.New("flaky")

// fakeClock records requested sleeps without waiting.
type fakeClock struct {
	slept []time.Duration
}

func (c *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	c.slept = append(c.slept, d)
	return ctx.Err()
}

func TestDoSucceedsFirstTry(t *testing.T) {
	calls := 0
	err := Policy{MaxAttempts: 5}.Do(context.Background(), func(ctx context.Context, attempt int) error {
		calls++
		if attempt != 1 {
			t.Errorf("attempt = %d, want 1", attempt)
		}
		return nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("err = %v, calls = %d; want nil, 1", err, calls)
	}
}

func TestDoRetriesWithExponentialBackoff(t *testing.T) {
	clock := &fakeClock{}
	p := Policy{
		MaxAttempts: 4,
		BaseDelay:   10 * time.Millisecond,
		Multiplier:  2,
		sleep:       clock.sleep,
	}
	calls := 0
	err := p.Do(context.Background(), func(ctx context.Context, attempt int) error {
		calls++
		if attempt != calls {
			t.Errorf("attempt = %d on call %d", attempt, calls)
		}
		if calls < 4 {
			return errFlaky
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v, want nil", err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(clock.slept) != len(want) {
		t.Fatalf("slept %v, want %v", clock.slept, want)
	}
	for i, d := range want {
		if clock.slept[i] != d {
			t.Errorf("sleep %d = %v, want %v", i, clock.slept[i], d)
		}
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	clock := &fakeClock{}
	calls := 0
	err := Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, sleep: clock.sleep}.
		Do(context.Background(), func(ctx context.Context, attempt int) error {
			calls++
			return errFlaky
		})
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, errFlaky) {
		t.Errorf("err = %v, want wrapped errFlaky", err)
	}
}

func TestMaxDelayCapsBackoff(t *testing.T) {
	clock := &fakeClock{}
	p := Policy{
		MaxAttempts: 4,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    15 * time.Millisecond,
		sleep:       clock.sleep,
	}
	_ = p.Do(context.Background(), func(ctx context.Context, attempt int) error { return errFlaky })
	for i, d := range clock.slept {
		if d > 15*time.Millisecond {
			t.Errorf("sleep %d = %v exceeds MaxDelay", i, d)
		}
	}
}

func TestJitterStaysInBand(t *testing.T) {
	for _, r := range []float64{0, 0.25, 0.5, 1} {
		clock := &fakeClock{}
		p := Policy{
			MaxAttempts: 2,
			BaseDelay:   100 * time.Millisecond,
			Jitter:      0.5,
			sleep:       clock.sleep,
			rnd:         func() float64 { return r },
		}
		_ = p.Do(context.Background(), func(ctx context.Context, attempt int) error { return errFlaky })
		if len(clock.slept) != 1 {
			t.Fatalf("rnd=%v: slept %v, want one sleep", r, clock.slept)
		}
		d := clock.slept[0]
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Errorf("rnd=%v: jittered delay %v outside [50ms, 150ms]", r, d)
		}
	}
}

func TestPermanentStopsImmediately(t *testing.T) {
	calls := 0
	err := Policy{MaxAttempts: 5}.Do(context.Background(), func(ctx context.Context, attempt int) error {
		calls++
		return Permanent(errFlaky)
	})
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, errFlaky) {
		t.Errorf("err = %v, want wrapped errFlaky", err)
	}
}

func TestIsPermanent(t *testing.T) {
	if !IsPermanent(Permanent(errFlaky)) {
		t.Error("IsPermanent(Permanent(err)) = false")
	}
	if IsPermanent(errFlaky) {
		t.Error("IsPermanent(plain err) = true")
	}
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) != nil")
	}
}

func TestAfterOverridesBackoff(t *testing.T) {
	clock := &fakeClock{}
	p := Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, sleep: clock.sleep}
	_ = p.Do(context.Background(), func(ctx context.Context, attempt int) error {
		return After(errFlaky, 7*time.Second)
	})
	if len(clock.slept) != 1 || clock.slept[0] != 7*time.Second {
		t.Errorf("slept %v, want [7s]", clock.slept)
	}
}

func TestDeadlineAwareStop(t *testing.T) {
	// The next backoff (1h) cannot fit in the 50ms budget: Do must give up
	// without sleeping rather than burn the caller's deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	clock := &fakeClock{}
	calls := 0
	start := time.Now()
	err := Policy{MaxAttempts: 5, BaseDelay: time.Hour, sleep: clock.sleep}.
		Do(ctx, func(ctx context.Context, attempt int) error {
			calls++
			return errFlaky
		})
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
	if len(clock.slept) != 0 {
		t.Errorf("slept %v, want no sleeps", clock.slept)
	}
	if !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, errFlaky) {
		t.Errorf("err = %v, want both DeadlineExceeded and errFlaky visible", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("Do waited instead of stopping early")
	}
}

func TestCancelledContextStopsBeforeFirstAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Policy{MaxAttempts: 3}.Do(ctx, func(ctx context.Context, attempt int) error {
		calls++
		return errFlaky
	})
	if calls != 0 {
		t.Errorf("calls = %d, want 0", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRealSleepHonorsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := Policy{MaxAttempts: 2, BaseDelay: time.Hour}.
		Do(ctx, func(ctx context.Context, attempt int) error { return errFlaky })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("sleep ignored cancellation")
	}
}

func TestZeroValuePolicySingleAttempt(t *testing.T) {
	calls := 0
	err := Policy{}.Do(context.Background(), func(ctx context.Context, attempt int) error {
		calls++
		return errFlaky
	})
	if calls != 1 || !errors.Is(err, errFlaky) {
		t.Fatalf("calls = %d, err = %v; want 1 attempt, wrapped errFlaky", calls, err)
	}
}
