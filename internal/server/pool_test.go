package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// checkGoroutines polls until the goroutine count returns to the baseline
// or the deadline passes — the leak detector for every pool test.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPoolTaskMatrix drives the worker pool directly with a concurrent mix
// of well-behaved, panicking, slow-then-cancelled, and pre-cancelled tasks,
// and asserts the three pool invariants: every task's release fires exactly
// once, every done channel receives exactly one outcome, and no goroutine
// outlives the pool. Run under -race this also proves the admission path is
// data-race free.
func TestPoolTaskMatrix(t *testing.T) {
	before := runtime.NumGoroutine()
	var panics atomic.Int64
	p := newPool(4, 64, func(incident string, val any, stack []byte) {
		panics.Add(1)
		if incident == "" || len(stack) == 0 {
			t.Errorf("panic sink got incident=%q stack len %d", incident, len(stack))
		}
	})

	const perKind = 16
	kinds := []string{"ok", "panic", "cancel", "precancelled"}
	var releases atomic.Int64
	var wg sync.WaitGroup
	outcomes := make(chan struct {
		kind string
		out  outcome
	}, perKind*len(kinds))

	for _, kind := range kinds {
		for i := 0; i < perKind; i++ {
			kind := kind
			ctx, cancel := context.WithCancel(context.Background())
			if kind == "precancelled" {
				cancel()
			} else {
				defer cancel()
			}
			tk := &task{
				ctx:     ctx,
				done:    make(chan outcome, 1),
				release: func() { releases.Add(1) },
			}
			switch kind {
			case "ok":
				tk.do = func(ctx context.Context) (int, any) {
					return http.StatusOK, &SolveResponse{Status: StatusSat}
				}
			case "panic":
				tk.do = func(ctx context.Context) (int, any) {
					panic(fmt.Sprintf("injected task panic %d", i))
				}
			case "cancel":
				// Cancel mid-solve: the do observes ctx like the budget does.
				tk.do = func(ctx context.Context) (int, any) {
					cancel()
					<-ctx.Done()
					return http.StatusOK, &SolveResponse{Status: StatusUnknown, Degraded: &Degraded{Kind: "canceled", Stage: "test"}}
				}
			case "precancelled":
				tk.do = func(ctx context.Context) (int, any) {
					t.Error("do ran for a pre-cancelled task; worker should skip it")
					return http.StatusOK, nil
				}
			}
			if err := p.submit(tk); err != nil {
				t.Fatalf("submit(%s): %v", kind, err)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				select {
				case out := <-tk.done:
					outcomes <- struct {
						kind string
						out  outcome
					}{kind, out}
				case <-time.After(30 * time.Second):
					t.Errorf("task (%s) never delivered an outcome", kind)
				}
			}()
		}
	}
	wg.Wait()
	close(outcomes)

	counts := map[string]int{}
	for o := range outcomes {
		counts[o.kind]++
		switch o.kind {
		case "ok":
			if o.out.status != http.StatusOK {
				t.Errorf("ok task status = %d", o.out.status)
			}
		case "panic":
			if o.out.status != http.StatusInternalServerError {
				t.Errorf("panic task status = %d, want 500", o.out.status)
			}
			er, ok := o.out.body.(*ErrorResponse)
			if !ok || er.IncidentID == "" || er.Code != CodeInternal {
				t.Errorf("panic task body = %#v, want internal error with incident ID", o.out.body)
			}
		case "precancelled":
			sr, ok := o.out.body.(*SolveResponse)
			if !ok || sr.Status != StatusUnknown || sr.Degraded == nil {
				t.Errorf("precancelled task body = %#v, want degraded unknown", o.out.body)
			}
		}
	}
	for _, kind := range kinds {
		if counts[kind] != perKind {
			t.Errorf("%s outcomes = %d, want %d", kind, counts[kind], perKind)
		}
	}
	if got := panics.Load(); got != perKind {
		t.Errorf("panic sink fired %d times, want %d", got, perKind)
	}
	if got := releases.Load(); got != int64(perKind*len(kinds)) {
		t.Errorf("releases = %d, want %d (exactly once per task)", got, perKind*len(kinds))
	}

	// The pool must survive all of it: a fresh task still runs.
	probe := &task{ctx: context.Background(), done: make(chan outcome, 1), release: func() {}}
	probe.do = func(ctx context.Context) (int, any) { return http.StatusOK, nil }
	if err := p.submit(probe); err != nil {
		t.Fatalf("pool dead after matrix: %v", err)
	}
	select {
	case out := <-probe.done:
		if out.status != http.StatusOK {
			t.Errorf("probe status = %d", out.status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("probe after matrix never completed")
	}

	p.close()
	checkGoroutines(t, before)
}

func TestPoolQueueFullShedsImmediately(t *testing.T) {
	before := runtime.NumGoroutine()
	p := newPool(1, 1, func(string, any, []byte) {})
	block := make(chan struct{})
	mk := func() *task {
		tk := &task{ctx: context.Background(), done: make(chan outcome, 1), release: func() {}}
		tk.do = func(ctx context.Context) (int, any) {
			<-block
			return http.StatusOK, nil
		}
		return tk
	}
	// One task occupies the worker, one fills the queue slot.
	running, queued := mk(), mk()
	if err := p.submit(running); err != nil {
		t.Fatal(err)
	}
	// Wait until the worker has picked up the first task so the queue slot
	// is genuinely free for the second.
	deadline := time.Now().Add(10 * time.Second)
	for !running.started.Load() {
		if time.Now().After(deadline) {
			t.Fatal("worker never started the first task")
		}
		time.Sleep(time.Millisecond)
	}
	if err := p.submit(queued); err != nil {
		t.Fatal(err)
	}
	if err := p.submit(mk()); err != errQueueFull {
		t.Fatalf("submit on full queue = %v, want errQueueFull", err)
	}
	close(block)
	<-running.done
	<-queued.done
	p.close()
	checkGoroutines(t, before)
}

func TestPoolSubmitAfterClose(t *testing.T) {
	p := newPool(1, 1, func(string, any, []byte) {})
	p.close()
	tk := &task{ctx: context.Background(), done: make(chan outcome, 1), release: func() {}}
	if err := p.submit(tk); err != errPoolClosed {
		t.Fatalf("submit after close = %v, want errPoolClosed", err)
	}
	// close is idempotent.
	p.close()
}

// TestHTTPLoadShedding saturates a 1-worker, 1-slot server with slow solves
// and checks the overflow is answered 429 + Retry-After instead of queueing.
func TestHTTPLoadShedding(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, DefaultTimeout: 5 * time.Second})
	// Baseline after the pool and httptest listener are up: the leak check
	// covers the per-request goroutines, not the long-lived plumbing.
	before := runtime.NumGoroutine()
	const n = 12
	var codes [n]int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A unique comment per request keeps collapsing out of the
			// picture (identical bodies would share one solve and never
			// overflow the queue — that dedup is tested elsewhere).
			body, _ := json.Marshal(&SolveRequest{
				System:  fmt.Sprintf("# req %d\n%s", i, bombSource),
				Options: RequestOptions{TimeoutMS: 400},
			})
			resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(string(body)))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" {
					t.Errorf("429 without Retry-After")
				}
				var er ErrorResponse
				if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Code != CodeQueueFull {
					t.Errorf("429 body = %+v (err %v), want code %q", er, err, CodeQueueFull)
				}
			}
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Errorf("unexpected status %d", c)
		}
	}
	if shed == 0 {
		t.Error("no requests were shed on a saturated 1-worker/1-slot server")
	}
	if ok == 0 {
		t.Error("no requests were served at all")
	}
	if got := s.stats.shed.Load(); got != int64(shed) {
		t.Errorf("shed counter = %d, observed %d 429s", got, shed)
	}
	// All in-flight work finishes (their 400ms deadlines reap the solves).
	deadline := time.Now().Add(30 * time.Second)
	for s.inflight.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("inflight stuck at %d", s.inflight.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	http.DefaultClient.CloseIdleConnections()
	checkGoroutines(t, before)
}
