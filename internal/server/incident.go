package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// incidentSeq orders incidents within one process; the random suffix keeps
// IDs unique across restarts so log aggregation never conflates two
// crashes.
var incidentSeq atomic.Int64

// newIncidentID mints an identifier tying a 500 response to the server-side
// log line that holds the recovered panic value and stack trace.
func newIncidentID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively impossible; fall back to the
		// sequence alone rather than failing the error path itself.
		return fmt.Sprintf("inc-%06d", incidentSeq.Add(1))
	}
	return fmt.Sprintf("inc-%06d-%s", incidentSeq.Add(1), hex.EncodeToString(b[:]))
}
