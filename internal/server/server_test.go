package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// Constraint sources in the textio format (see internal/textio).
const (
	// satSource has three seam solutions for v1·v2 ⊆ {ab}.
	satSource = "const c := re /ab/;\nv1 . v2 <= c;\n"
	// unsatSource is the paper's fixed-filter example: v1 is all digits but
	// nid_·v1 must contain a quote.
	unsatSource = "const digits := match /^[\\d]+$/;\nconst quote := match /'/;\nv1 <= digits;\n\"nid_\" . v1 <= quote;\n"
	// bombSource determinizes (a|b)*a(a|b){24} (~2^24 DFA states): any solve
	// trips a small state budget or deadline long before finishing.
	bombSource = "const unsafe := re /(a|b)*a(a|b){24}/;\nv1 . v2 <= unsafe;\n"
)

// newTestServer builds a Server plus an httptest front end and tears both
// down at cleanup (draining first so no worker outlives the test).
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain at cleanup: %v", err)
		}
	})
	return s, ts
}

// postSolve sends body to /solve and decodes the JSON response into out.
func postSolve(t *testing.T, ts *httptest.Server, contentType, body string, out any) int {
	t.Helper()
	resp, err := http.Post(ts.URL+"/solve", contentType, strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding response %q: %v", raw, err)
		}
	}
	return resp.StatusCode
}

func TestSolveRawTextSat(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp SolveResponse
	if code := postSolve(t, ts, "text/plain", satSource, &resp); code != http.StatusOK {
		t.Fatalf("status = %d, want 200", code)
	}
	if resp.Status != StatusSat {
		t.Fatalf("Status = %q, want %q (resp %+v)", resp.Status, StatusSat, resp)
	}
	if len(resp.Assignments) == 0 {
		t.Fatal("no assignments on a satisfiable system")
	}
	if resp.Degraded != nil {
		t.Errorf("Degraded = %+v on a clean solve", resp.Degraded)
	}
	if resp.Usage.States == 0 {
		t.Error("Usage.States = 0: no accounting reported")
	}
	for _, a := range resp.Assignments {
		w := a["v1"].Witness + a["v2"].Witness
		if w != "ab" {
			t.Errorf("witness concatenation = %q, want \"ab\"", w)
		}
	}
}

func TestSolveJSONWithOptions(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(&SolveRequest{
		System:  satSource,
		Options: RequestOptions{MaxSolutions: 1},
	})
	var resp SolveResponse
	if code := postSolve(t, ts, "application/json", string(body), &resp); code != http.StatusOK {
		t.Fatalf("status = %d, want 200", code)
	}
	if resp.Status != StatusSat {
		t.Fatalf("Status = %q, want %q", resp.Status, StatusSat)
	}
	if len(resp.Assignments) != 1 {
		t.Fatalf("len(Assignments) = %d, want 1 (max_solutions)", len(resp.Assignments))
	}
	if !resp.Truncated {
		t.Error("Truncated = false after max_solutions cut a 3-solution system to 1")
	}
}

func TestSolveUnsat(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp SolveResponse
	if code := postSolve(t, ts, "text/plain", unsatSource, &resp); code != http.StatusOK {
		t.Fatalf("status = %d, want 200", code)
	}
	if resp.Status != StatusUnsat {
		t.Fatalf("Status = %q, want %q", resp.Status, StatusUnsat)
	}
	if len(resp.Assignments) != 0 {
		t.Errorf("unsat response carries %d assignments", len(resp.Assignments))
	}
}

func TestSolveParseError(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var resp ErrorResponse
	if code := postSolve(t, ts, "text/plain", "const broken :=", &resp); code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", code)
	}
	if resp.Code != CodeParseError {
		t.Errorf("Code = %q, want %q", resp.Code, CodeParseError)
	}
	if resp.Error == "" {
		t.Error("empty error message")
	}
	if got := s.stats.parseErrors.Load(); got != 1 {
		t.Errorf("parseErrors = %d, want 1", got)
	}
}

func TestSolveRejectsUnknownJSONFields(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp ErrorResponse
	code := postSolve(t, ts, "application/json", `{"system": "x <= c;", "bogus": 1}`, &resp)
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", code)
	}
	if resp.Code != CodeBadRequest {
		t.Errorf("Code = %q, want %q", resp.Code, CodeBadRequest)
	}
}

func TestSolveRejectsNegativeOptions(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp ErrorResponse
	code := postSolve(t, ts, "application/json", `{"system": "x", "options": {"max_states": -1}}`, &resp)
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", code)
	}
}

func TestSolveBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	big := strings.Repeat("# padding\n", 32) + satSource
	var resp ErrorResponse
	code := postSolve(t, ts, "text/plain", big, &resp)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", code)
	}
	if resp.Code != CodeBadRequest {
		t.Errorf("Code = %q, want %q", resp.Code, CodeBadRequest)
	}
}

func TestSolveExhaustedReportsDegraded(t *testing.T) {
	// The server ceiling (3000 states) clamps whatever the client asks, so
	// the bomb trips max-states and the response degrades to unknown.
	s, ts := newTestServer(t, Config{MaxStates: 3000})
	body, _ := json.Marshal(&SolveRequest{
		System:  bombSource,
		Options: RequestOptions{MaxStates: 1 << 40}, // asks beyond the ceiling
	})
	var resp SolveResponse
	if code := postSolve(t, ts, "application/json", string(body), &resp); code != http.StatusOK {
		t.Fatalf("status = %d, want 200", code)
	}
	if resp.Status != StatusUnknown {
		t.Fatalf("Status = %q, want %q (exhausted unsat proves nothing)", resp.Status, StatusUnknown)
	}
	if resp.Degraded == nil {
		t.Fatal("Degraded = nil after a budget trip")
	}
	if resp.Degraded.Kind != "max-states" {
		t.Errorf("Degraded.Kind = %q, want %q", resp.Degraded.Kind, "max-states")
	}
	if !resp.Usage.Exhausted {
		t.Error("Usage.Exhausted = false after a trip")
	}
	if got := s.stats.exhausted.Load(); got != 1 {
		t.Errorf("exhausted = %d, want 1", got)
	}
}

func TestSolveDeadlineDegradesNotFails(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(&SolveRequest{
		System:  bombSource,
		Options: RequestOptions{TimeoutMS: 150, MaxStates: -0}, // server default caps still apply
	})
	var resp SolveResponse
	start := time.Now()
	code := postSolve(t, ts, "application/json", string(body), &resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d, want 200", code)
	}
	if resp.Status != StatusUnknown {
		t.Fatalf("Status = %q, want %q", resp.Status, StatusUnknown)
	}
	if resp.Degraded == nil || resp.Degraded.Kind != "deadline" {
		t.Fatalf("Degraded = %+v, want kind deadline", resp.Degraded)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("150ms deadline honored only after %v", elapsed)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /solve status = %d, want 405", resp.StatusCode)
	}
}

func TestHealthzAlwaysOK(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, phase := range []string{"accepting", "draining"} {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz during %s = %d, want 200 (liveness is not readiness)", phase, resp.StatusCode)
		}
		if phase == "accepting" {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := s.Drain(ctx); err != nil {
				t.Fatalf("drain: %v", err)
			}
			cancel()
		}
	}
}

func TestReadyzFlipsOnDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz while accepting = %d, want 200", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 readyz missing Retry-After")
	}

	// New solves are refused with the draining code.
	var er ErrorResponse
	if code := postSolve(t, ts, "text/plain", satSource, &er); code != http.StatusServiceUnavailable {
		t.Fatalf("solve after drain = %d, want 503", code)
	}
	if er.Code != CodeDraining {
		t.Errorf("Code = %q, want %q", er.Code, CodeDraining)
	}
}

func TestStatuszCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postSolve(t, ts, "text/plain", satSource, nil)
	postSolve(t, ts, "text/plain", unsatSource, nil)
	postSolve(t, ts, "text/plain", "const broken", nil)

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding statusz: %v", err)
	}
	if st.State != "accepting" {
		t.Errorf("State = %q, want accepting", st.State)
	}
	if st.Requests != 3 {
		t.Errorf("Requests = %d, want 3", st.Requests)
	}
	if st.Sat != 1 || st.Unsat != 1 || st.ParseErrors != 1 {
		t.Errorf("Sat/Unsat/ParseErrors = %d/%d/%d, want 1/1/1", st.Sat, st.Unsat, st.ParseErrors)
	}
	if st.Workers <= 0 || st.QueueCap <= 0 {
		t.Errorf("Workers = %d, QueueCap = %d; want positive", st.Workers, st.QueueCap)
	}
	if st.InFlight != 0 {
		t.Errorf("InFlight = %d after all requests finished", st.InFlight)
	}
}

func TestClientDisconnectCancelsSolve(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxStates: -1, MaxSteps: -1})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/solve", strings.NewReader(bombSource))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("expected the client-side cancel to surface as an error")
	}
	// The server notices the dead context at the next budget checkpoint and
	// counts the abandonment rather than leaking the worker.
	deadline := time.Now().Add(10 * time.Second)
	for s.stats.canceled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("canceled counter never incremented after client disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.inflight.Load(); got != 0 {
		// inflight drops when the worker releases; give it a beat.
		time.Sleep(100 * time.Millisecond)
		if got = s.inflight.Load(); got != 0 {
			t.Errorf("inflight = %d after disconnect, want 0", got)
		}
	}
}

func TestRequestTimeoutClamp(t *testing.T) {
	s := New(Config{DefaultTimeout: 2 * time.Second, MaxTimeout: 5 * time.Second})
	defer drainNow(t, s)
	cases := []struct {
		ms   int64
		want time.Duration
	}{
		{0, 2 * time.Second},      // no ask: default
		{1000, time.Second},       // in range: honored
		{60_000, 5 * time.Second}, // beyond ceiling: clamped
	}
	for _, c := range cases {
		if got := s.requestTimeout(c.ms); got != c.want {
			t.Errorf("requestTimeout(%d) = %v, want %v", c.ms, got, c.want)
		}
	}
}

func TestClampLimit(t *testing.T) {
	cases := []struct {
		req, ceiling, want int64
	}{
		{0, 1000, 1000},  // no ask: ceiling
		{500, 1000, 500}, // in range: honored
		{2000, 1000, 1000},
		{0, 0, 0}, // no ask, no ceiling: unlimited
		{77, 0, 77},
		{-5, 0, 0}, // negative ask, no ceiling: unlimited
	}
	for _, c := range cases {
		if got := clampLimit(c.req, c.ceiling); got != c.want {
			t.Errorf("clampLimit(%d, %d) = %d, want %d", c.req, c.ceiling, got, c.want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Workers < 2 {
		t.Errorf("Workers = %d, want >= 2", cfg.Workers)
	}
	if cfg.QueueDepth != 4*cfg.Workers {
		t.Errorf("QueueDepth = %d, want %d", cfg.QueueDepth, 4*cfg.Workers)
	}
	if cfg.MaxStates != 4<<20 || cfg.MaxSteps != 1<<20 {
		t.Errorf("MaxStates/MaxSteps = %d/%d, want defaults", cfg.MaxStates, cfg.MaxSteps)
	}
	neg := Config{MaxStates: -1, MaxSteps: -1}.withDefaults()
	if neg.MaxStates != 0 || neg.MaxSteps != 0 {
		t.Errorf("negative caps → %d/%d, want 0/0 (unlimited)", neg.MaxStates, neg.MaxSteps)
	}
}

func TestIncidentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := newIncidentID()
		if !strings.HasPrefix(id, "inc-") {
			t.Fatalf("id %q missing prefix", id)
		}
		if seen[id] {
			t.Fatalf("duplicate incident id %q", id)
		}
		seen[id] = true
	}
}

func TestDrainIdempotent(t *testing.T) {
	s := New(Config{})
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := s.Drain(ctx); err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
		cancel()
	}
	if got := stateName(s.state.Load()); got != "drained" {
		t.Errorf("state = %q, want drained", got)
	}
}

func drainNow(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Errorf("drain: %v", err)
	}
}

// TestRawBodyRoundTrip makes sure a body with no Content-Type at all is
// treated as raw source, matching curl's default for --data-binary.
func TestRawBodyRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/solve", bytes.NewReader([]byte(satSource)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Del("Content-Type")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Status != StatusSat {
		t.Fatalf("Status = %q, want sat", sr.Status)
	}
}
