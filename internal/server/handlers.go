package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"time"

	"dprle/internal/budget"
	"dprle/internal/core"
	"dprle/internal/solvecache"
	"dprle/internal/textio"
)

// handleSolve is the admission path: reject while draining, bound the
// body, decode, count the request in-flight, and hand the parse+solve to
// the pool. The handler goroutine only waits and writes — all
// attacker-priced work (parsing the constraint system, solving it) runs
// on pool workers, so concurrency stays bounded no matter how many
// connections arrive.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	if s.draining() {
		s.writeDraining(w)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, &ErrorResponse{
			Error: fmt.Sprintf("reading request body: %v", err),
			Code:  CodeBadRequest,
		})
		return
	}
	req, errResp := decodeRequest(r.Header.Get("Content-Type"), body)
	if errResp != nil {
		writeJSON(w, http.StatusBadRequest, errResp)
		return
	}

	// Cache, then collapse: a hit answers without touching the pool; a
	// concurrent duplicate shares the in-flight leader's answer.
	key := ""
	if s.cache != nil || s.flight != nil {
		key = requestKey(req)
	}
	if s.cache != nil {
		if v, ok := s.cache.Get(key); ok {
			s.stats.cacheHits.Add(1)
			writeCached(w, v.(*cachedResponse), CacheHit)
			return
		}
		s.stats.cacheMisses.Add(1)
	}
	var call *solvecache.Call
	leader := true
	if s.flight != nil {
		call, leader = s.flight.Join(key)
	}
	if !leader {
		s.collapse(w, r, req, call)
		return
	}
	// This request leads its flight: every exit below must resolve the
	// call, or followers would hang until their own deadlines.
	finished := false
	finish := func(out *cachedResponse) {
		if finished || s.flight == nil {
			return
		}
		finished = true
		if out == nil {
			s.flight.Finish(key, call, nil, errLeaderGone)
			return
		}
		s.flight.Finish(key, call, out, nil)
	}
	defer func() { finish(nil) }()
	how := CacheMiss
	if key == "" {
		how = ""
	}
	// answer renders once, memoizes complete 200s, wakes followers, and
	// writes — the single exit for every answered leader path.
	answer := func(status int, body any) {
		out := &cachedResponse{status: status, body: marshalBody(body)}
		if s.cache != nil && cacheable(status, body) {
			s.cache.Put(key, out, int64(len(out.body)+len(key)))
		}
		finish(out)
		writeCached(w, out, how)
	}

	// Admit: count in-flight first, then re-check the drain state so a
	// Drain that raced us either sees our wg.Add or we see its state flip.
	s.wg.Add(1)
	s.inflight.Add(1)
	release := func() {
		// Called exactly once: by the worker via task.release, or below on
		// the admission-failure paths before the task is ever submitted.
		s.inflight.Add(-1)
		s.wg.Done()
	}
	if s.draining() {
		release()
		answer(http.StatusServiceUnavailable, drainingBody())
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req.Options.TimeoutMS))
	defer cancel()
	t := &task{
		ctx:     ctx,
		done:    make(chan outcome, 1),
		release: release,
		do: func(ctx context.Context) (int, any) {
			return s.solve(ctx, req)
		},
	}
	if err := s.pool.submit(t); err != nil {
		release()
		if errors.Is(err, errPoolClosed) {
			answer(http.StatusServiceUnavailable, drainingBody())
			return
		}
		s.stats.shed.Add(1)
		answer(http.StatusTooManyRequests, &ErrorResponse{
			Error:             "solver queue is full; retry with backoff",
			Code:              CodeQueueFull,
			RetryAfterSeconds: 1,
		})
		return
	}

	select {
	case out := <-t.done:
		answer(out.status, out.body)
	case <-ctx.Done():
		if r.Context().Err() != nil {
			// Client disconnected: nothing to write. The worker observes
			// the dead context (skipping the solve, or unwinding it at the
			// next budget checkpoint) and releases the in-flight count.
			// The deferred finish(nil) tells any followers the solve died.
			s.stats.canceled.Add(1)
			return
		}
		if t.started.Load() {
			// The solve is running under this same (now expired) context:
			// the budget trips at the next checkpoint, so the worker's
			// verified partial result arrives shortly. Prefer it over a
			// generic timeout answer.
			out := <-t.done
			answer(out.status, out.body)
			return
		}
		// Deadline passed while still queued: answer now; the worker will
		// skip the task when it reaches it.
		s.stats.unknown.Add(1)
		answer(http.StatusOK, &SolveResponse{
			Status:   StatusUnknown,
			Usage:    Usage{Exhausted: true},
			Degraded: &Degraded{Kind: "deadline", Stage: "server.queue"},
		})
	}
}

// solve runs on a pool worker: parse, clamp, solve, classify.
func (s *Server) solve(ctx context.Context, req *SolveRequest) (int, any) {
	sys, err := textio.Parse(req.System)
	if err != nil {
		s.stats.parseErrors.Add(1)
		return http.StatusBadRequest, &ErrorResponse{Error: err.Error(), Code: CodeParseError}
	}
	opts := core.Options{
		MaxSolutions: req.Options.MaxSolutions,
		Minimize:     req.Options.Minimize,
		RawConstants: req.Options.RawConstants,
		NoMaximalize: req.Options.NoMaximalize,
		Cache:        s.cache,
		Limits: budget.Limits{
			MaxStates: clampLimit(req.Options.MaxStates, s.cfg.MaxStates),
			MaxSteps:  clampLimit(req.Options.MaxSteps, s.cfg.MaxSteps),
		},
	}
	res, solveErr := core.SolveCtx(ctx, sys, opts)
	if solveErr != nil {
		var ex *budget.Exhausted
		if !errors.As(solveErr, &ex) {
			// Structural or internal failure that was not a budget trip
			// (e.g. a panic recovered inside a concurrent group solver and
			// converted to an error). Same contract as an isolated panic:
			// 500 with an incident ID, details only in the server log.
			id := newIncidentID()
			s.stats.panics.Add(1)
			s.cfg.Logf("incident %s: internal solver error: %v", id, solveErr)
			return http.StatusInternalServerError, &ErrorResponse{
				Error:      "internal solver error; the failure was isolated to this request",
				Code:       CodeInternal,
				IncidentID: id,
			}
		}
		s.stats.exhausted.Add(1)
		resp := buildSolveResponse(sys, res)
		resp.Degraded = &Degraded{Kind: string(ex.Kind), Stage: ex.Stage}
		if resp.Status == StatusUnsat {
			// An exhausted empty result proves nothing.
			resp.Status = StatusUnknown
		}
		s.countStatus(resp.Status)
		return http.StatusOK, resp
	}
	resp := buildSolveResponse(sys, res)
	s.countStatus(resp.Status)
	return http.StatusOK, resp
}

func (s *Server) countStatus(status string) {
	switch status {
	case StatusSat:
		s.stats.sat.Add(1)
	case StatusUnsat:
		s.stats.unsat.Add(1)
	default:
		s.stats.unknown.Add(1)
	}
}

// buildSolveResponse renders a solver result: per assignment, each
// variable's shortest witness and machine size.
func buildSolveResponse(sys *core.System, res *core.Result) *SolveResponse {
	resp := &SolveResponse{
		Truncated: res.Truncated,
		Usage:     Usage{States: res.Usage.States, Steps: res.Usage.Steps, Exhausted: res.Usage.Exhausted},
	}
	if !res.Sat() {
		resp.Status = StatusUnsat
		return resp
	}
	resp.Status = StatusSat
	for _, a := range res.Assignments {
		m := map[string]VarSolution{}
		for _, v := range sys.Vars() {
			lang := a.Lookup(v)
			if w, ok := lang.ShortestWitness(); ok {
				m[v] = VarSolution{Witness: w, States: lang.NumStates()}
			}
		}
		resp.Assignments = append(resp.Assignments, m)
	}
	return resp
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining() {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, stateName(s.state.Load()))
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, &StatusResponse{
		State:         stateName(s.state.Load()),
		Workers:       s.cfg.Workers,
		QueueLen:      s.pool.queueLen(),
		QueueCap:      s.pool.queueCap(),
		InFlight:      s.inflight.Load(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.stats.requests.Load(),
		Sat:           s.stats.sat.Load(),
		Unsat:         s.stats.unsat.Load(),
		Unknown:       s.stats.unknown.Load(),
		Exhausted:     s.stats.exhausted.Load(),
		Shed:          s.stats.shed.Load(),
		Panics:        s.stats.panics.Load(),
		ParseErrors:   s.stats.parseErrors.Load(),
		Canceled:      s.stats.canceled.Load(),
		CacheHits:     s.stats.cacheHits.Load(),
		CacheMisses:   s.stats.cacheMisses.Load(),
		Collapsed:     s.stats.collapsed.Load(),
		Cache:         s.cache.Stats(),
	})
}

func drainingBody() *ErrorResponse {
	return &ErrorResponse{
		Error:             "server is draining",
		Code:              CodeDraining,
		RetryAfterSeconds: 1,
	}
}

func (s *Server) writeDraining(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, drainingBody())
}

// requestTimeout resolves the per-request deadline: the client's ask,
// defaulted and clamped by server policy.
func (s *Server) requestTimeout(ms int64) time.Duration {
	d := s.cfg.DefaultTimeout
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// clampLimit resolves a requested resource cap against the server
// ceiling: no ask (or an ask beyond the ceiling) gets the ceiling; a
// ceiling of 0 means the server imposes none and the ask passes through.
func clampLimit(req, ceiling int64) int64 {
	if ceiling <= 0 {
		if req < 0 {
			return 0
		}
		return req
	}
	if req <= 0 || req > ceiling {
		return ceiling
	}
	return req
}

// decodeRequest turns the body into a SolveRequest: JSON when declared,
// raw textio source otherwise.
func decodeRequest(contentType string, body []byte) (*SolveRequest, *ErrorResponse) {
	mt := ""
	if contentType != "" {
		var err error
		mt, _, err = mime.ParseMediaType(contentType)
		if err != nil {
			return nil, &ErrorResponse{Error: fmt.Sprintf("bad Content-Type: %v", err), Code: CodeBadRequest}
		}
	}
	if mt != "application/json" {
		return &SolveRequest{System: string(body)}, nil
	}
	var req SolveRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, &ErrorResponse{Error: fmt.Sprintf("decoding request: %v", err), Code: CodeBadRequest}
	}
	o := req.Options
	if o.MaxSolutions < 0 || o.MaxStates < 0 || o.MaxSteps < 0 || o.TimeoutMS < 0 {
		return nil, &ErrorResponse{Error: "options must be non-negative", Code: CodeBadRequest}
	}
	return &req, nil
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		if w.Header().Get("Retry-After") == "" {
			w.Header().Set("Retry-After", strconv.Itoa(1))
		}
	}
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}
