package server

import "dprle/internal/solvecache"

// Wire types of the dprled HTTP/JSON protocol. Every response body is one
// of SolveResponse (the solve ran, possibly degraded), ErrorResponse (the
// request was rejected or failed), or StatusResponse (/statusz).

// SolveRequest is the POST /solve body when Content-Type is
// application/json. A text/plain (or absent) Content-Type instead treats
// the whole body as the System source with default options, which keeps
// `curl --data-binary @file.dprle` working.
type SolveRequest struct {
	// System is the constraint system in the textio format.
	System string `json:"system"`
	// Options tunes the solve, within the server's policy clamps.
	Options RequestOptions `json:"options"`
}

// RequestOptions mirrors core.Options for the wire. Zero values mean the
// server defaults; MaxStates/MaxSteps/TimeoutMS are clamped to the
// server's configured ceilings, never raised above them.
type RequestOptions struct {
	MaxSolutions int   `json:"max_solutions,omitempty"`
	Minimize     bool  `json:"minimize,omitempty"`
	RawConstants bool  `json:"raw_constants,omitempty"`
	NoMaximalize bool  `json:"no_maximalize,omitempty"`
	MaxStates    int64 `json:"max_states,omitempty"`
	MaxSteps     int64 `json:"max_steps,omitempty"`
	TimeoutMS    int64 `json:"timeout_ms,omitempty"`
}

// VarSolution is one variable of one disjunctive assignment.
type VarSolution struct {
	// Witness is a shortest member of the variable's language.
	Witness string `json:"witness"`
	// States is the size of the solution machine.
	States int `json:"states"`
}

// Usage reports the resources the solve consumed (Result.Usage).
type Usage struct {
	States    int64 `json:"states"`
	Steps     int64 `json:"steps"`
	Exhausted bool  `json:"exhausted"`
}

// Degraded describes a budget trip: which bound tripped and at which
// pipeline stage. Present only when the solve exhausted a resource.
type Degraded struct {
	Kind  string `json:"kind"`
	Stage string `json:"stage"`
}

// Solve statuses.
const (
	// StatusSat: at least one satisfying assignment was found. With a
	// Degraded marker the enumeration is incomplete but every returned
	// assignment is verified.
	StatusSat = "sat"
	// StatusUnsat: the system provably has no all-nonempty assignment.
	// Never combined with Degraded — an exhausted empty solve is unknown.
	StatusUnsat = "unsat"
	// StatusUnknown: the budget tripped before anything was proven.
	StatusUnknown = "unknown"
)

// SolveResponse is the success body of POST /solve (HTTP 200).
type SolveResponse struct {
	Status      string                   `json:"status"` // sat | unsat | unknown
	Assignments []map[string]VarSolution `json:"assignments,omitempty"`
	Truncated   bool                     `json:"truncated,omitempty"`
	Usage       Usage                    `json:"usage"`
	Degraded    *Degraded                `json:"degraded,omitempty"`
}

// Error codes.
const (
	CodeParseError = "parse_error" // 400: the system source did not parse
	CodeBadRequest = "bad_request" // 400: malformed JSON, oversized body, bad options
	CodeQueueFull  = "queue_full"  // 429: admission control shed the request
	CodeDraining   = "draining"    // 503: the server is shutting down
	CodeInternal   = "internal"    // 500: a panic was isolated; see IncidentID
)

// ErrorResponse is the body of every non-200 response.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
	// IncidentID correlates an isolated panic with the server log line
	// holding its stack trace.
	IncidentID string `json:"incident_id,omitempty"`
	// RetryAfterSeconds mirrors the Retry-After header on 429/503.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// StatusResponse is the GET /statusz body.
type StatusResponse struct {
	State         string  `json:"state"` // accepting | draining | drained
	Workers       int     `json:"workers"`
	QueueLen      int     `json:"queue_len"`
	QueueCap      int     `json:"queue_cap"`
	InFlight      int64   `json:"in_flight"`
	UptimeSeconds float64 `json:"uptime_seconds"`

	Requests    int64 `json:"requests"`
	Sat         int64 `json:"sat"`
	Unsat       int64 `json:"unsat"`
	Unknown     int64 `json:"unknown"`
	Exhausted   int64 `json:"exhausted"`
	Shed        int64 `json:"shed"`
	Panics      int64 `json:"panics"`
	ParseErrors int64 `json:"parse_errors"`
	Canceled    int64 `json:"canceled"`

	// CacheHits/CacheMisses count response-cache lookups; Collapsed
	// counts requests that shared another request's in-flight solve.
	// Cache snapshots the shared solve cache (response bodies plus the
	// solver's per-component entries).
	CacheHits   int64            `json:"cache_hits"`
	CacheMisses int64            `json:"cache_misses"`
	Collapsed   int64            `json:"collapsed"`
	Cache       solvecache.Stats `json:"cache"`
}
