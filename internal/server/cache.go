package server

// Response caching and request collapsing. Two mechanisms share one key
// (the hash of the system source plus every request option):
//
//   - The response cache memoizes the marshaled body of complete answers.
//     Only HTTP 200 SolveResponses with no Degraded marker are stored —
//     a degraded or exhausted answer reflects the budget that produced
//     it, not the system, so replaying it for a later request would be
//     wrong. Complete answers are deterministic for a given request, so
//     replaying those is sound.
//
//   - The flight collapses concurrent identical requests: the first
//     becomes the leader and runs the normal admission + solve path;
//     followers wait (under their own deadline) and share the leader's
//     marshaled outcome without occupying a queue slot or worker.
//
// Every /solve response that got far enough to have a key carries an
// X-Dprle-Cache header: "hit" (served from the response cache), "miss"
// (this request ran the solve), or "collapsed" (shared another request's
// in-flight solve).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"dprle/internal/solvecache"
)

// CacheHeader is the response header reporting how the answer was
// produced: "hit", "miss", or "collapsed".
const CacheHeader = "X-Dprle-Cache"

// CacheHeader values.
const (
	CacheHit       = "hit"
	CacheMiss      = "miss"
	CacheCollapsed = "collapsed"
)

// errLeaderGone is the flight outcome when the leader's client
// disconnected before an answer existed: the shared solve died with it.
var errLeaderGone = errors.New("server: collapse leader abandoned the request")

// cachedResponse is a fully rendered answer: the HTTP status plus the
// marshaled JSON body, shared verbatim between the leader, its
// collapsed followers, and later cache hits.
type cachedResponse struct {
	status int
	body   []byte
}

// requestKey fingerprints a decoded request for caching and collapsing.
// The system source is hashed as text (the solver-level component cache
// below it handles structural equivalences); every option is included,
// TimeoutMS too — collapsing requests with different deadlines would let
// a short-deadline leader degrade a long-deadline follower's answer.
func requestKey(req *SolveRequest) string {
	o := req.Options
	return solvecache.Key("response", req.System,
		fmt.Sprintf("sols=%d min=%t raw=%t nomax=%t states=%d steps=%d timeout=%d",
			o.MaxSolutions, o.Minimize, o.RawConstants, o.NoMaximalize,
			o.MaxStates, o.MaxSteps, o.TimeoutMS))
}

// cacheable reports whether an answer may be memoized: only complete
// 200s — never degraded, exhausted, or error responses.
func cacheable(status int, body any) bool {
	if status != http.StatusOK {
		return false
	}
	sr, ok := body.(*SolveResponse)
	return ok && sr.Degraded == nil && !sr.Usage.Exhausted
}

// marshalBody renders a response body exactly as writeJSON would.
func marshalBody(body any) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
	return buf.Bytes()
}

// writeCached writes a rendered answer, tagging it with how it was
// produced (empty how = caching disabled, no header).
func writeCached(w http.ResponseWriter, cr *cachedResponse, how string) {
	if how != "" {
		w.Header().Set(CacheHeader, how)
	}
	w.Header().Set("Content-Type", "application/json")
	if cr.status == http.StatusTooManyRequests || cr.status == http.StatusServiceUnavailable {
		if w.Header().Get("Retry-After") == "" {
			w.Header().Set("Retry-After", "1")
		}
	}
	w.WriteHeader(cr.status)
	_, _ = w.Write(cr.body)
}

// collapse is the follower path: wait for the leader's outcome under this
// request's own deadline and share it. Followers are counted in-flight so
// Drain waits for them, but they hold no queue slot and no worker.
func (s *Server) collapse(w http.ResponseWriter, r *http.Request, req *SolveRequest, call *solvecache.Call) {
	s.stats.collapsed.Add(1)
	s.wg.Add(1)
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		s.wg.Done()
	}()
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req.Options.TimeoutMS))
	defer cancel()
	select {
	case <-call.Done():
		if out, err := call.Result(); err == nil {
			writeCached(w, out.(*cachedResponse), CacheCollapsed)
			return
		}
		// The leader vanished without producing an answer (its client
		// disconnected). Nothing was proven; degrade to unknown rather
		// than re-running the solve outside admission control.
		s.stats.unknown.Add(1)
		w.Header().Set(CacheHeader, CacheCollapsed)
		writeJSON(w, http.StatusOK, &SolveResponse{
			Status:   StatusUnknown,
			Usage:    Usage{Exhausted: true},
			Degraded: &Degraded{Kind: "canceled", Stage: "server.collapse"},
		})
	case <-ctx.Done():
		if r.Context().Err() != nil {
			s.stats.canceled.Add(1)
			return
		}
		// Our deadline expired before the (longer-running) leader
		// finished: same answer an expired queued request gets.
		s.stats.unknown.Add(1)
		w.Header().Set(CacheHeader, CacheCollapsed)
		writeJSON(w, http.StatusOK, &SolveResponse{
			Status:   StatusUnknown,
			Usage:    Usage{Exhausted: true},
			Degraded: &Degraded{Kind: "deadline", Stage: "server.collapse"},
		})
	}
}
