// Package faultinject deterministically trips resource budgets at chosen
// points inside the solver pipeline, so tests can prove that every stage
// unwinds cleanly from exhaustion at any instruction boundary the budget
// observes. It is always compiled in but costs a single atomic pointer load
// per probe when disarmed, which keeps production solving unaffected.
//
// A test arms a fault at the n-th subsequent occurrence of a point:
//
//	defer faultinject.Arm(faultinject.Alloc, 17)()
//	_, err := core.SolveCtx(ctx, sys, opts) // trips at the 17th allocation
//
// The fault fires exactly once; re-arm to fire again.
package faultinject

import "sync/atomic"

// Point identifies a class of budget probe.
type Point string

// The probe classes the budget package consults.
const (
	// Alloc fires inside Budget.AddStates — the NFA state-materialization
	// accounting of the product, subset, and quotient constructions.
	Alloc Point = "alloc"
	// Checkpoint fires inside Budget.Check — the coarse cancellation
	// checkpoints at solver loop heads.
	Checkpoint Point = "checkpoint"
	// GCIPop fires at the head of the gci seam-combination worklist
	// (internal/core, Fig. 8's all_combinations loop) — the general
	// solver's inner enumeration, distinct from the budget checkpoints it
	// also passes.
	GCIPop Point = "gci-pop"
	// GroupProduct fires at the Cartesian combination of CI-group
	// disjuncts (internal/core stage 3), the one solver stage that is
	// otherwise unbudgeted.
	GroupProduct Point = "group-product"
	// Crash makes Budget.Check panic instead of returning an error —
	// the chaos harness's stand-in for an internal invariant violation,
	// proving that per-request recover boundaries hold.
	Crash Point = "crash"
	// CacheFill fires inside the solve cache's fill path (internal/core
	// storeGroup/storeFreeVar), after a component has been solved but
	// before its solution is stored. A tripped fill must skip the store —
	// never poisoning the cache with a partial entry — and degrade only
	// the request that was filling.
	CacheFill Point = "cache-fill"
)

// Points lists every probe class, for sweeps that must cover all sites.
func Points() []Point {
	return []Point{Alloc, Checkpoint, GCIPop, GroupProduct, Crash, CacheFill}
}

type plan struct {
	point Point
	n     atomic.Int64 // countdown to the firing occurrence
}

var active atomic.Pointer[plan]

// Arm schedules a fault at the n-th (1-based) subsequent occurrence of
// point, replacing any previously armed fault. It returns a disarm function
// suitable for defer. Arming is global process state: tests that arm faults
// must not run in parallel with each other.
func Arm(point Point, n int64) func() {
	p := &plan{point: point}
	p.n.Store(n)
	active.Store(p)
	return func() { active.CompareAndSwap(p, nil) }
}

// Fire reports whether an armed fault fires at this occurrence of point.
// It returns true exactly once per Arm call.
func Fire(point Point) bool {
	p := active.Load()
	if p == nil || p.point != point {
		return false
	}
	return p.n.Add(-1) == 0
}

// Armed reports whether a fault plan is currently armed (fired or not).
func Armed() bool { return active.Load() != nil }
