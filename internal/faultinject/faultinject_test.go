package faultinject

import "testing"

func TestFireCountsDownAndFiresOnce(t *testing.T) {
	disarm := Arm(Checkpoint, 3)
	defer disarm()
	for i := 1; i <= 2; i++ {
		if Fire(Checkpoint) {
			t.Fatalf("fired at occurrence %d, want 3", i)
		}
	}
	if !Fire(Checkpoint) {
		t.Fatal("did not fire at the 3rd occurrence")
	}
	for i := 0; i < 5; i++ {
		if Fire(Checkpoint) {
			t.Fatal("fired more than once")
		}
	}
}

func TestFireIgnoresOtherPoints(t *testing.T) {
	disarm := Arm(Alloc, 1)
	defer disarm()
	if Fire(Checkpoint) {
		t.Fatal("checkpoint probe fired an alloc fault")
	}
	if !Fire(Alloc) {
		t.Fatal("alloc fault did not fire")
	}
}

func TestDisarmRemovesPlan(t *testing.T) {
	disarm := Arm(Alloc, 1)
	if !Armed() {
		t.Fatal("not armed after Arm")
	}
	disarm()
	if Armed() {
		t.Fatal("still armed after disarm")
	}
	if Fire(Alloc) {
		t.Fatal("fired after disarm")
	}
}

func TestRearmReplacesPlan(t *testing.T) {
	Arm(Alloc, 5)
	disarm := Arm(Checkpoint, 1)
	defer disarm()
	if Fire(Alloc) {
		t.Fatal("replaced plan still fires")
	}
	if !Fire(Checkpoint) {
		t.Fatal("new plan does not fire")
	}
}

func TestDisarmOnlyRemovesOwnPlan(t *testing.T) {
	old := Arm(Alloc, 1)
	disarm := Arm(Checkpoint, 1)
	old() // stale disarm must not clear the newer plan
	if !Armed() {
		t.Fatal("stale disarm cleared a newer plan")
	}
	disarm()
	if Armed() {
		t.Fatal("still armed")
	}
}
