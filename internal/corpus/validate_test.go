package corpus

import (
	"strings"
	"testing"

	"dprle/internal/lang"
	"dprle/internal/symexec"
)

// TestExploitsValidateConcretely is the strongest end-to-end check of the
// paper's claim: for every ordinary defect, the generated attack inputs are
// fed to a concrete interpreter running the actual program. The execution
// must reach the sink (no filter may reject the inputs), and the query the
// program sends must lie in the attack language (contain a quote).
func TestExploitsValidateConcretely(t *testing.T) {
	for _, d := range Defects() {
		if d.Big {
			continue // minutes by design; covered by the benchmark harness
		}
		d := d
		t.Run(d.App+"/"+d.Name, func(t *testing.T) {
			src := MustSource(d)
			prog, err := lang.Parse(d.Name+".php", src)
			if err != nil {
				t.Fatal(err)
			}
			findings, _, err := symexec.AnalyzeSource(d.Name+".php", src, symexec.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if len(findings) != 1 {
				t.Fatalf("findings = %d", len(findings))
			}
			req := lang.Request{Get: map[string]string{}, Post: map[string]string{}}
			for name, value := range findings[0].Inputs {
				source, key, ok := strings.Cut(name, ":")
				if !ok {
					t.Fatalf("malformed input name %q", name)
				}
				switch source {
				case "GET":
					req.Get[key] = value
				case "POST":
					req.Post[key] = value
				default:
					t.Fatalf("unknown source %q", source)
				}
			}
			trace, err := lang.Execute(prog, req)
			if err != nil {
				t.Fatal(err)
			}
			if trace.Exited {
				t.Fatal("generated inputs were rejected by a filter")
			}
			if len(trace.Queries) != 1 {
				t.Fatalf("queries sent = %d, want 1", len(trace.Queries))
			}
			if !strings.Contains(trace.Queries[0], "'") {
				t.Fatalf("concrete query %q does not meet the attack policy", trace.Queries[0])
			}
		})
	}
}

// TestBenignInputsStaySafe is the negative control: digits-only inputs pass
// every filter but must produce attack-free queries.
func TestBenignInputsStaySafe(t *testing.T) {
	d, _ := DefectByName("utopia/login")
	src := MustSource(d)
	prog, err := lang.Parse("login.php", src)
	if err != nil {
		t.Fatal(err)
	}
	// Derive a benign request: the main input is a number; aux filters get
	// satisfying-but-harmless values from the analysis of the same file.
	findings, _, err := symexec.AnalyzeSource("login.php", src, symexec.DefaultConfig())
	if err != nil || len(findings) != 1 {
		t.Fatalf("analysis failed: %v/%d", err, len(findings))
	}
	req := lang.Request{Get: map[string]string{}, Post: map[string]string{}}
	for name, value := range findings[0].Inputs {
		source, key, _ := strings.Cut(name, ":")
		if source == "GET" {
			req.Get[key] = value
		} else {
			req.Post[key] = value
		}
	}
	req.Post["login_id"] = "12345" // replace the exploit with a benign value
	trace, err := lang.Execute(prog, req)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Exited || len(trace.Queries) != 1 {
		t.Fatalf("benign run rejected: %+v", trace)
	}
	if strings.Contains(trace.Queries[0], "'") {
		t.Fatal("benign input produced an attacked query")
	}
}
