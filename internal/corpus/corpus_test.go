package corpus

import (
	"strings"
	"testing"

	"dprle/internal/cfg"
	"dprle/internal/lang"
	"dprle/internal/policy"
	"dprle/internal/symexec"
)

func TestDefectTableShape(t *testing.T) {
	ds := Defects()
	if len(ds) != 17 {
		t.Fatalf("defects = %d, want 17 (Figure 12)", len(ds))
	}
	perApp := map[string]int{}
	for _, d := range ds {
		perApp[d.App]++
	}
	if perApp["eve"] != 1 || perApp["utopia"] != 4 || perApp["warp"] != 12 {
		t.Fatalf("per-app counts = %v, want eve 1 / utopia 4 / warp 12 (Figure 11)", perApp)
	}
	for _, a := range Apps() {
		if got := perApp[a.Name]; got != a.Vulnerable {
			t.Errorf("%s: defects %d ≠ published vulnerable count %d", a.Name, got, a.Vulnerable)
		}
	}
}

func TestDefectByName(t *testing.T) {
	d, ok := DefectByName("warp/secure")
	if !ok || !d.Big || d.WantC != 81 {
		t.Fatalf("DefectByName = %+v/%v", d, ok)
	}
	if _, ok := DefectByName("nope/nope"); ok {
		t.Fatal("unknown defect should not resolve")
	}
}

// Every generated defect source must parse and hit its published |FG| and
// |C| exactly.
func TestGeneratedMetricsMatchFigure12(t *testing.T) {
	for _, d := range Defects() {
		d := d
		t.Run(d.App+"/"+d.Name, func(t *testing.T) {
			src, err := Source(d)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := lang.Parse(d.Name+".php", src)
			if err != nil {
				t.Fatal(err)
			}
			g := cfg.Build(prog)
			if g.NumBlocks() != d.WantFG {
				t.Errorf("|FG| = %d, want %d", g.NumBlocks(), d.WantFG)
			}
			paths := cfg.PathsToSinks(prog, 0)
			if len(paths) != 1 {
				t.Fatalf("paths = %d, want exactly 1", len(paths))
			}
			ps, err := symexec.ForPath(paths[0], policy.SQLDefault())
			if err != nil {
				t.Fatal(err)
			}
			if ps.NumConstraints != d.WantC {
				t.Errorf("|C| = %d, want %d", ps.NumConstraints, d.WantC)
			}
		})
	}
}

// Every non-Big defect must be solvable quickly and yield an exploit that
// passes its faulty filter (quote + trailing digit).
func TestDefectsExploitable(t *testing.T) {
	for _, d := range Defects() {
		if d.Big {
			continue // exercised (and timed) by the benchmark harness
		}
		d := d
		t.Run(d.App+"/"+d.Name, func(t *testing.T) {
			findings, stats, err := symexec.AnalyzeSource(d.Name+".php", MustSource(d), symexec.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if len(findings) != 1 {
				t.Fatalf("findings = %d, want 1", len(findings))
			}
			if stats.Constraints != d.WantC {
				t.Errorf("|C| = %d, want %d", stats.Constraints, d.WantC)
			}
			exploit := findings[0].Inputs["POST:"+d.Name+"_id"]
			if !strings.ContainsRune(exploit, '\'') {
				t.Fatalf("exploit %q lacks a quote", exploit)
			}
			last := exploit[len(exploit)-1]
			if last < '0' || last > '9' {
				t.Fatalf("exploit %q does not end with a digit", exploit)
			}
		})
	}
}

func TestSecureDefectGeneratesBigConstants(t *testing.T) {
	d, _ := DefectByName("warp/secure")
	src := MustSource(d)
	if len(src) < 8000 {
		t.Fatalf("secure source only %d bytes; large constants missing", len(src))
	}
	prog, err := lang.Parse("secure.php", src)
	if err != nil {
		t.Fatal(err)
	}
	if g := cfg.Build(prog); g.NumBlocks() != d.WantFG {
		t.Fatalf("|FG| = %d, want %d", g.NumBlocks(), d.WantFG)
	}
}

func TestGenerateAppTrees(t *testing.T) {
	for _, a := range Apps() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			files, err := GenerateApp(a)
			if err != nil {
				t.Fatal(err)
			}
			if len(files) != a.Files {
				t.Fatalf("files = %d, want %d", len(files), a.Files)
			}
			vuln, total := 0, 0
			for _, f := range files {
				if f.Vuln {
					vuln++
				}
				total += LOC(f.Source)
				if _, err := lang.Parse(f.Name+".php", f.Source); err != nil {
					t.Fatalf("generated file %s does not parse: %v", f.Name, err)
				}
			}
			if vuln != a.Vulnerable {
				t.Fatalf("vulnerable files = %d, want %d", vuln, a.Vulnerable)
			}
			// Aggregate LOC should approximate the published figure. The
			// vulnerable files' sizes are dictated by their |FG| targets,
			// so allow a generous band.
			lo, hi := a.LOC*7/10, a.LOC*13/10
			if total < lo || total > hi {
				t.Fatalf("LOC = %d outside [%d, %d] around published %d", total, lo, hi, a.LOC)
			}
		})
	}
}

func TestFillerHasNoSinks(t *testing.T) {
	src := FillerSource("eve", "mod_00", 40)
	prog, err := lang.Parse("mod_00.php", src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Sinks() != 0 {
		t.Fatal("filler files must not contain sinks")
	}
	if len(cfg.PathsToSinks(prog, 0)) != 0 {
		t.Fatal("filler files must have no paths to sinks")
	}
}

func TestSourceDeterministic(t *testing.T) {
	d, _ := DefectByName("utopia/styles")
	if MustSource(d) != MustSource(d) {
		t.Fatal("generation must be deterministic")
	}
}
