// Package corpus generates the reproduction's evaluation workload: PHP-subset
// web applications standing in for the paper's data set (eve 1.0,
// utopia 1.3.0, warp 1.2.1 — Figure 11) and its seventeen SQL-injection
// defects (Figure 12).
//
// The original applications are real PHP packages we do not redistribute;
// per DESIGN.md's substitution rule, each defect is regenerated as a
// synthetic program matching its published structural parameters:
//
//   - |FG| — the basic-block count of the vulnerable file,
//   - |C|  — the number of constraints produced by symbolic execution,
//   - the vulnerable flow itself: an input filtered by a faulty
//     (right-anchored-only) preg_match, concatenated into a SQL query.
//
// The block/constraint budgets are realized with guard statements that leave
// exactly one feasible path to the sink, matching the one-path-per-defect
// analysis the paper performs:
//
//	if (!preg_match('/…/', $aux)) { exit; }   // +2 blocks, +1 constraint
//	if ($cfg == …) { exit; }                  // +2 blocks, +0 constraints
//	$n = intval($_GET['…']);                  // +0 blocks, +1 constraint
//
// The warp `secure` defect — the paper's pathological case, 577 s on 2009
// hardware because "large string constants are explicitly represented and
// tracked through state machine transformations" — is generated with very
// large string constants in both its filter patterns and its query text.
package corpus

import (
	"fmt"
	"strings"
)

// App describes one application of the data set (Figure 11).
type App struct {
	Name       string
	Version    string
	Files      int // published file count
	LOC        int // published lines of code
	Vulnerable int // published number of vulnerable files
}

// Apps returns the published Figure 11 rows.
func Apps() []App {
	return []App{
		{Name: "eve", Version: "1.0", Files: 8, LOC: 905, Vulnerable: 1},
		{Name: "utopia", Version: "1.3.0", Files: 24, LOC: 5438, Vulnerable: 4},
		{Name: "warp", Version: "1.2.1", Files: 44, LOC: 24365, Vulnerable: 12},
	}
}

// Defect describes one Figure 12 row: a vulnerable file and its published
// metrics.
type Defect struct {
	App     string
	Name    string
	WantFG  int     // published |FG| (basic blocks)
	WantC   int     // published |C| (constraints)
	PaperTS float64 // published solve time in seconds (2.5 GHz Core 2 Duo)
	// Big marks the pathological large-constant case (warp/secure).
	Big bool
}

// Defects returns the published Figure 12 rows in table order.
func Defects() []Defect {
	return []Defect{
		{App: "eve", Name: "edit", WantFG: 58, WantC: 29, PaperTS: 0.32},
		{App: "utopia", Name: "login", WantFG: 295, WantC: 16, PaperTS: 0.052},
		{App: "utopia", Name: "profile", WantFG: 855, WantC: 16, PaperTS: 0.006},
		{App: "utopia", Name: "styles", WantFG: 597, WantC: 156, PaperTS: 0.65},
		{App: "utopia", Name: "comm", WantFG: 994, WantC: 102, PaperTS: 0.26},
		{App: "warp", Name: "cxapp", WantFG: 620, WantC: 10, PaperTS: 0.054},
		{App: "warp", Name: "ax_help", WantFG: 610, WantC: 4, PaperTS: 0.010},
		{App: "warp", Name: "usr_reg", WantFG: 608, WantC: 10, PaperTS: 0.53},
		{App: "warp", Name: "ax_ed", WantFG: 630, WantC: 10, PaperTS: 0.063},
		{App: "warp", Name: "cart_shop", WantFG: 856, WantC: 31, PaperTS: 0.17},
		{App: "warp", Name: "req_redir", WantFG: 640, WantC: 41, PaperTS: 0.43},
		{App: "warp", Name: "secure", WantFG: 648, WantC: 81, PaperTS: 577.0, Big: true},
		{App: "warp", Name: "a_cont", WantFG: 606, WantC: 10, PaperTS: 0.057},
		{App: "warp", Name: "usr_prf", WantFG: 740, WantC: 66, PaperTS: 0.22},
		{App: "warp", Name: "xw_mn", WantFG: 698, WantC: 387, PaperTS: 0.50},
		{App: "warp", Name: "castvote", WantFG: 710, WantC: 10, PaperTS: 0.052},
		{App: "warp", Name: "pay_nfo", WantFG: 628, WantC: 10, PaperTS: 0.18},
	}
}

// DefectByName looks up a defect as "app/name".
func DefectByName(key string) (Defect, bool) {
	for _, d := range Defects() {
		if d.App+"/"+d.Name == key {
			return d, true
		}
	}
	return Defect{}, false
}

// plan computes the guard mix hitting the defect's |FG| and |C| targets.
//
//	blocks      = 1 + 2·guards (+3 if an if/else pad is used)
//	constraints = 1 (main filter) + pregGuards + intvalCalls + 1 (sink)
type plan struct {
	pregGuards   int // auxiliary preg_match-exit guards
	nondetGuards int // configuration-check exit guards
	intvalCalls  int // constraint-only padding
	ifElsePad    bool
}

func planFor(d Defect) (plan, error) {
	var p plan
	fg := d.WantFG
	if fg%2 == 0 {
		p.ifElsePad = true
		fg -= 3
	}
	guards := (fg - 1) / 2
	if guards < 1 {
		return p, fmt.Errorf("corpus: |FG| = %d too small", d.WantFG)
	}
	auxSlots := guards - 1 // one guard is the main faulty filter
	budget := d.WantC - 2  // main filter + sink are fixed
	if budget < 0 {
		return p, fmt.Errorf("corpus: |C| = %d too small", d.WantC)
	}
	p.pregGuards = budget
	if p.pregGuards > auxSlots {
		p.pregGuards = auxSlots
	}
	p.intvalCalls = budget - p.pregGuards
	p.nondetGuards = auxSlots - p.pregGuards
	return p, nil
}

// auxPatterns cycles through cheap, satisfiable, fully anchored patterns for
// auxiliary input filters.
var auxPatterns = []string{
	`^[a-z]{1,8}$`,
	`^[0-9]+$`,
	`^[A-Za-z0-9_]+$`,
	`^(on|off)$`,
	`^[a-f0-9]{4,12}$`,
	`^[\w]+@[\w]+$`,
}

// Source generates the vulnerable PHP-subset file for a defect. Generation
// is deterministic: the same defect always produces the same source.
func Source(d Defect) (string, error) {
	p, err := planFor(d)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<?php\n// %s/%s.php — generated reproduction of the %s defect.\n", d.App, d.Name, d.Name)
	fmt.Fprintf(&b, "// Targets: |FG| = %d, |C| = %d (paper Figure 12).\n", d.WantFG, d.WantC)

	// The vulnerable flow's input read and faulty filter (missing ^).
	mainPat := `[\d]+$`
	if d.Big {
		mainPat = bigFilterPattern()
	}
	fmt.Fprintf(&b, "$id = $_POST['%s_id'];\n", d.Name)
	fmt.Fprintf(&b, "if (!preg_match('/%s/', $id)) { exit; }\n", mainPat)

	// Auxiliary preg_match guards.
	for i := 0; i < p.pregGuards; i++ {
		pat := auxPatterns[i%len(auxPatterns)]
		if d.Big && i%7 == 0 {
			pat = bigAuxPattern(i)
		}
		fmt.Fprintf(&b, "$f%d = $_GET['f%d']; if (!preg_match('/%s/', $f%d)) { exit; }\n", i, i, pat, i)
	}
	// Nondeterministic configuration guards.
	for i := 0; i < p.nondetGuards; i++ {
		fmt.Fprintf(&b, "if ($conf_%d == %d) { exit; }\n", i, i%7)
	}
	// Constraint-only padding.
	for i := 0; i < p.intvalCalls; i++ {
		fmt.Fprintf(&b, "$n%d = intval($_GET['n%d']);\n", i, i)
	}
	if p.ifElsePad {
		// The then-branch exits, so block parity is adjusted (+3 blocks)
		// without doubling the feasible paths; the surviving branch is the
		// fall-through one that concrete execution also takes.
		b.WriteString("if ($mode == 1) { exit; } else { $trace = 'on'; }\n")
	}

	// The sink: query text concatenated with the filtered input.
	prefix := fmt.Sprintf("SELECT * FROM %s_%s WHERE id=", d.App, d.Name)
	if d.Big {
		prefix = bigQueryPrefix(d) + prefix
	}
	fmt.Fprintf(&b, "$q = %q . $id;\n", prefix)
	b.WriteString("$r = query($q);\n")
	return b.String(), nil
}

// MustSource is Source for known-good defects.
func MustSource(d Defect) string {
	src, err := Source(d)
	if err != nil {
		panic(err)
	}
	return src
}

// bigFilterPattern builds the large alternation filter that makes the
// `secure` case expensive: a long allowlist of section names, still missing
// the leading anchor (so it is exploitable like the others).
func bigFilterPattern() string {
	var words []string
	for i := 0; i < 48; i++ {
		words = append(words, fmt.Sprintf("section_%02d_%s", i,
			strings.Repeat("x", 18+i%5)))
	}
	return "(" + strings.Join(words, "|") + `)?[\d]+$`
}

// bigAuxPattern builds outsized auxiliary patterns for the secure case.
func bigAuxPattern(i int) string {
	var words []string
	for j := 0; j < 24; j++ {
		words = append(words, fmt.Sprintf("opt%d_%s", j, strings.Repeat("y", 12+(i+j)%7)))
	}
	return "^(" + strings.Join(words, "|") + ")$"
}

// bigQueryPrefix builds the multi-kilobyte query text of the secure case —
// the "large string constants … explicitly represented and tracked through
// state machine transformations" of §4.
func bigQueryPrefix(d Defect) string {
	var b strings.Builder
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&b, "/* %s audit column set %02d: ", d.Name, i)
		for j := 0; j < 8; j++ {
			fmt.Fprintf(&b, "col_%02d_%02d,", i, j)
		}
		b.WriteString(" */ ")
	}
	return b.String()
}

// FillerSource generates a benign (sink-free) application file used to pad
// app trees to their Figure 11 file and LOC counts.
func FillerSource(app, name string, lines int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<?php\n// %s/%s.php — generated filler module (no sinks).\n", app, name)
	emitted := 2
	i := 0
	for emitted < lines-1 {
		switch i % 4 {
		case 0:
			fmt.Fprintf(&b, "$s%d = 'item_%d';\n", i, i)
		case 1:
			fmt.Fprintf(&b, "$s%d = \"prefix_\" . $s%d;\n", i, i-1)
		case 2:
			fmt.Fprintf(&b, "if ($flag_%d == 0) { exit; }\n", i)
		case 3:
			fmt.Fprintf(&b, "unp_msgBox($s%d);\n", i-1)
		}
		emitted++
		i++
	}
	b.WriteString("unp_msgBox('done');\n")
	return b.String()
}

// File is one generated source file of an application tree.
type File struct {
	App    string
	Name   string // file name without extension
	Source string
	Vuln   bool
}

// GenerateApp produces the full file tree of one application, pairing each
// published vulnerable defect with filler files so the file count and
// aggregate LOC approximate Figure 11.
func GenerateApp(app App) ([]File, error) {
	var files []File
	usedLOC := 0
	for _, d := range Defects() {
		if d.App != app.Name {
			continue
		}
		src, err := Source(d)
		if err != nil {
			return nil, err
		}
		files = append(files, File{App: app.Name, Name: d.Name, Source: src, Vuln: true})
		usedLOC += strings.Count(src, "\n")
	}
	fillerFiles := app.Files - len(files)
	if fillerFiles < 0 {
		return nil, fmt.Errorf("corpus: %s has more defects than files", app.Name)
	}
	remaining := app.LOC - usedLOC
	for i := 0; i < fillerFiles; i++ {
		lines := remaining / (fillerFiles - i)
		if lines < 3 {
			lines = 3
		}
		name := fmt.Sprintf("mod_%02d", i)
		src := FillerSource(app.Name, name, lines)
		files = append(files, File{App: app.Name, Name: name, Source: src})
		remaining -= strings.Count(src, "\n")
	}
	return files, nil
}

// LOC counts the lines of a generated source.
func LOC(src string) int { return strings.Count(src, "\n") }
