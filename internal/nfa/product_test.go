package nfa

import "testing"

func TestIntersectBasic(t *testing.T) {
	a := Union(Literal("cat"), Literal("dog"))
	b := Union(Literal("dog"), Literal("emu"))
	m := Intersect(a, b)
	mustAccept(t, m, "dog")
	mustReject(t, m, "cat", "emu", "")
}

func TestIntersectDisjoint(t *testing.T) {
	m := Intersect(Literal("a"), Literal("b"))
	if !m.IsEmpty() {
		t.Fatal("intersection of disjoint languages should be empty")
	}
}

func TestIntersectWithSigmaStar(t *testing.T) {
	a := Literal("hello")
	m := Intersect(a, AnyString())
	if !Equivalent(m, a) {
		t.Fatal("L ∩ Σ* should equal L")
	}
}

func TestIntersectClassLabels(t *testing.T) {
	// [a-m]+ ∩ [h-z]+ = [h-m]+
	a := Plus(Class(Range('a', 'm')))
	b := Plus(Class(Range('h', 'z')))
	m := Intersect(a, b)
	mustAccept(t, m, "h", "m", "hm", "jklm")
	mustReject(t, m, "a", "z", "hma")
	if !Equivalent(m, Plus(Class(Range('h', 'm')))) {
		t.Fatal("charset intersection wrong")
	}
}

func TestIntersectPreservesSeamTags(t *testing.T) {
	// The motivating pipeline of paper Fig. 4: (c1 · c2) ∩ c3.
	c1 := Literal("nid_")
	c2 := Concat(Star(Class(AnyByte())), Class(Range('0', '9'))) // Σ*[0-9]
	hasQuote := Concat(Concat(Star(Class(AnyByte())), Literal("'")), Star(Class(AnyByte())))
	l4 := ConcatTagged(c1, c2, 0)
	l5 := Intersect(l4, hasQuote).Trim()
	if l5.IsEmpty() {
		t.Fatal("l5 should be nonempty")
	}
	seams := l5.TaggedEdges()
	if len(seams) == 0 {
		t.Fatal("seam tags lost during intersection")
	}
	for _, e := range seams {
		if e.Tag != 0 {
			t.Fatalf("unexpected tag %d", e.Tag)
		}
	}
	// Every accepted string: starts with nid_, contains a quote, ends with digit.
	mustAccept(t, l5, "nid_'5", "nid_ab'cd9")
	mustReject(t, l5, "nid_5", "'5", "nid_'x")
}

func TestIntersectUnreachableFinal(t *testing.T) {
	// a ∩ b where joint final unreachable: must build a valid empty machine.
	m := Intersect(Literal("aa"), Literal("a"))
	if !m.IsEmpty() {
		t.Fatal("should be empty")
	}
	mustReject(t, m, "a", "aa")
}

func TestIntersectAll(t *testing.T) {
	if !Equivalent(IntersectAll(), AnyString()) {
		t.Fatal("IntersectAll() should be Σ*")
	}
	m := IntersectAll(
		Plus(Class(Range('a', 'z'))),
		Concat(Literal("a"), Star(Class(AnyByte()))),
		Concat(Star(Class(AnyByte())), Literal("z")),
	)
	mustAccept(t, m, "az", "abcz")
	mustReject(t, m, "a", "z", "aZ")
}

func TestIntersectCommutesOnLanguage(t *testing.T) {
	a := Union(Star(Literal("ab")), Literal("ba"))
	b := Concat(Class(Range('a', 'b')), Star(Class(Range('a', 'b'))))
	if !Equivalent(Intersect(a, b), Intersect(b, a)) {
		t.Fatal("intersection should commute on languages")
	}
}

func TestProductStatesVisited(t *testing.T) {
	a := Literal("abc")
	b := AnyString()
	n := ProductStatesVisited(a, b)
	if n <= 0 || n > a.NumStates()*b.NumStates() {
		t.Fatalf("visited = %d out of plausible range (≤ %d)", n, a.NumStates()*b.NumStates())
	}
}
