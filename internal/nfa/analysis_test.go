package nfa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsInfinite(t *testing.T) {
	cases := []struct {
		m    *NFA
		want bool
	}{
		{Empty(), false},
		{Epsilon(), false},
		{Literal("abc"), false},
		{Union(Literal("a"), Literal("bb")), false},
		{Star(Literal("a")), true},
		{Plus(Literal("ab")), true},
		{AnyString(), true},
		{Intersect(Star(Literal("a")), Literal("aa")), false}, // finite after ∩
	}
	for i, c := range cases {
		if got := c.m.IsInfinite(); got != c.want {
			t.Errorf("case %d: IsInfinite = %v, want %v", i, got, c.want)
		}
	}
}

func TestIsInfiniteIgnoresUselessCycles(t *testing.T) {
	// A cycle that is reachable but not coreachable must not count.
	b := NewBuilder()
	s := b.AddState()
	f := b.AddState()
	loop := b.AddState()
	b.AddEdge(s, Singleton('a'), f)
	b.AddEdge(s, Singleton('x'), loop)
	b.AddEdge(loop, Singleton('x'), loop)
	m := b.Build(s, f)
	if m.IsInfinite() {
		t.Fatal("dead cycle should not make the language infinite")
	}
}

func TestWordLengthBounds(t *testing.T) {
	m := Union(Literal("ab"), Literal("wxyz"))
	min, ok := m.MinWordLength()
	if !ok || min != 2 {
		t.Fatalf("min = %d/%v", min, ok)
	}
	max, inf, ok := m.MaxWordLength()
	if !ok || inf || max != 4 {
		t.Fatalf("max = %d/%v/%v", max, inf, ok)
	}
	if _, _, ok := Empty().MaxWordLength(); ok {
		t.Fatal("empty language has no max length")
	}
	if _, inf, _ := Star(Literal("a")).MaxWordLength(); !inf {
		t.Fatal("a* must be infinite")
	}
}

func TestCountWords(t *testing.T) {
	// [ab]{0,2}: 1 + 2 + 4 members by length.
	m := Concat(Optional(Class(Range('a', 'b'))), Optional(Class(Range('a', 'b'))))
	counts := m.CountWords(3)
	want := []int{1, 2, 4, 0}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

func TestCountWordsNoDoubleCounting(t *testing.T) {
	// a|a|a has exactly one word of length 1.
	m := UnionAll(Literal("a"), Literal("a"), Literal("a"))
	counts := m.CountWords(2)
	if counts[0] != 0 || counts[1] != 1 || counts[2] != 0 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestCountWordsMatchesEnumerate(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	f := func() bool {
		m := randMachine(r, 2)
		counts := m.CountWords(3)
		byLen := map[int]int{}
		for _, w := range m.Enumerate(3, 100000) {
			byLen[len(w)]++
		}
		for l := 0; l <= 3; l++ {
			if counts[l] != byLen[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleMember(t *testing.T) {
	m := Concat(Literal("id="), Plus(Class(Range('0', '9'))))
	seen := map[string]bool{}
	for seed := uint64(0); seed < 32; seed++ {
		w, ok := m.SampleMember(seed)
		if !ok {
			t.Fatal("sample failed on nonempty language")
		}
		if !m.Accepts(w) {
			t.Fatalf("sample %q not in language", w)
		}
		seen[w] = true
	}
	if len(seen) < 3 {
		t.Fatalf("sampling not diverse: %v", seen)
	}
	// Determinism per seed.
	a, _ := m.SampleMember(7)
	b, _ := m.SampleMember(7)
	if a != b {
		t.Fatal("sampling must be deterministic per seed")
	}
	if _, ok := Empty().SampleMember(1); ok {
		t.Fatal("empty language cannot be sampled")
	}
}

func TestSampleMemberAlwaysMember(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	f := func() bool {
		m := randMachine(r, 2)
		w, ok := m.SampleMember(uint64(r.Int63()))
		if !ok {
			return m.IsEmpty()
		}
		return m.Accepts(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
