package nfa

import (
	"strings"
	"testing"
)

func mustAccept(t *testing.T, m *NFA, strs ...string) {
	t.Helper()
	for _, s := range strs {
		if !m.Accepts(s) {
			t.Errorf("machine should accept %q", s)
		}
	}
}

func mustReject(t *testing.T, m *NFA, strs ...string) {
	t.Helper()
	for _, s := range strs {
		if m.Accepts(s) {
			t.Errorf("machine should reject %q", s)
		}
	}
}

func TestEmptyMachine(t *testing.T) {
	m := Empty()
	if !m.IsEmpty() {
		t.Fatal("Empty() should have empty language")
	}
	mustReject(t, m, "", "a", "ab")
}

func TestEpsilonMachine(t *testing.T) {
	m := Epsilon()
	if m.IsEmpty() {
		t.Fatal("Epsilon() should be nonempty")
	}
	mustAccept(t, m, "")
	mustReject(t, m, "a", " ")
}

func TestLiteral(t *testing.T) {
	m := Literal("nid_")
	mustAccept(t, m, "nid_")
	mustReject(t, m, "", "nid", "nid_x", "Nid_")
	if m.Start() == m.Final() {
		t.Fatal("literal machine should have distinct start/final")
	}
}

func TestLiteralEmpty(t *testing.T) {
	m := Literal("")
	mustAccept(t, m, "")
	mustReject(t, m, "a")
	if m.Start() == m.Final() {
		t.Fatal("empty literal should still have distinct start/final")
	}
}

func TestClass(t *testing.T) {
	m := Class(Range('0', '9'))
	mustAccept(t, m, "0", "5", "9")
	mustReject(t, m, "", "a", "00")
}

func TestAnyString(t *testing.T) {
	m := AnyString()
	mustAccept(t, m, "", "a", "hello world", "\x00\xff")
}

func TestCopyIsolation(t *testing.T) {
	m := Literal("ab")
	c := m.Copy()
	if c.NumStates() != m.NumStates() || c.Start() != m.Start() || c.Final() != m.Final() {
		t.Fatal("copy differs structurally")
	}
	mustAccept(t, c, "ab")
	// Mutating the copy's internal slices must not affect the original.
	c.edges[0] = nil
	mustAccept(t, m, "ab")
}

func TestWithStartWithFinal(t *testing.T) {
	// abc machine; induce on interior states.
	m := Literal("abc")
	mid := m.WithStart(1) // skip 'a'
	mustAccept(t, mid, "bc")
	mustReject(t, mid, "abc", "c")
	pre := m.WithFinal(2) // stop before 'c'
	mustAccept(t, pre, "ab")
	mustReject(t, pre, "abc", "a")
}

func TestBuilderTaggedEps(t *testing.T) {
	b := NewBuilder()
	s := b.AddState()
	mid := b.AddState()
	f := b.AddState()
	b.AddEdge(s, Singleton('x'), mid)
	b.AddTaggedEps(mid, f, 7)
	m := b.Build(s, f)
	mustAccept(t, m, "x")
	edges := m.TaggedEdges()
	if len(edges) != 1 || edges[0].Tag != 7 || edges[0].From != mid || edges[0].To != f {
		t.Fatalf("TaggedEdges = %+v", edges)
	}
	if tags := m.Tags(); len(tags) != 1 || tags[0] != 7 {
		t.Fatalf("Tags = %v", tags)
	}
}

func TestBuilderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative tag")
		}
	}()
	b := NewBuilder()
	s := b.AddState()
	b.AddTaggedEps(s, s, -2)
}

func TestBuildRangeChecks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad final state")
		}
	}()
	b := NewBuilder()
	s := b.AddState()
	b.Build(s, 99)
}

func TestAddEdgeIgnoresEmptyLabel(t *testing.T) {
	b := NewBuilder()
	s := b.AddState()
	f := b.AddState()
	b.AddEdge(s, EmptySet(), f)
	m := b.Build(s, f)
	if !m.IsEmpty() {
		t.Fatal("empty-label edge should not connect states")
	}
}

func TestStatsAndString(t *testing.T) {
	m := ConcatTagged(Literal("a"), Literal("b"), 3)
	st := m.Stats()
	if st.SeamEdges != 1 {
		t.Fatalf("SeamEdges = %d, want 1", st.SeamEdges)
	}
	if st.CharEdges != 2 {
		t.Fatalf("CharEdges = %d, want 2", st.CharEdges)
	}
	if !strings.Contains(m.String(), "seams: 1") {
		t.Fatalf("String() = %q", m.String())
	}
}

func TestDotOutput(t *testing.T) {
	m := ConcatTagged(Literal("a"), Literal("b"), 5)
	dot := m.Dot("test")
	for _, want := range []string{"digraph", "doublecircle", "ε/5", "style=dashed"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot output missing %q:\n%s", want, dot)
		}
	}
}
