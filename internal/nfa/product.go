package nfa

import "dprle/internal/budget"

// Intersect implements the cross-product construction of paper Fig. 3
// (lines 7–8): the returned machine recognizes L(a) ∩ L(b). Both operands may
// contain ε-transitions; ε-moves advance one side at a time (the standard
// asynchronous product). Seam tags on ε-edges of either operand are
// propagated to the corresponding product edges, so a seam edge f₁→s₂ in a
// concatenation machine reappears as the family {f₁q → s₂q | q ∈ Q_b} that
// the paper's Qlhs/Qrhs scan enumerates.
//
// Only product states reachable from the product start are materialized.
func Intersect(a, b *NFA) *NFA {
	// A nil *budget.Budget never trips — Check/AddStates return nil
	// immediately on a nil receiver — so IntersectB's error is statically
	// nil here and safe to discard (budgetcheck encodes this contract).
	m, _ := IntersectB(nil, a, b)
	return m
}

// IntersectB is Intersect under a resource budget: every materialized
// product state is accounted against bud, and the construction aborts with
// the budget's *Exhausted error as soon as the budget trips. The product is
// the solver's worst-case-quadratic (and, chained, exponential) step, so
// this is the primary interruption point for deadlines and state caps.
func IntersectB(bud *budget.Budget, a, b *NFA) (*NFA, error) {
	type pair struct{ pa, pb int }
	idx := map[pair]int{}
	bl := NewBuilder()
	var order []pair
	get := func(p pair) int {
		if id, ok := idx[p]; ok {
			return id
		}
		id := bl.AddState()
		idx[p] = id
		order = append(order, p)
		return id
	}
	start := get(pair{a.start, b.start})
	for qi := 0; qi < len(order); qi++ {
		// One probe per expanded product state bounds both the state count
		// and the time between context polls.
		if err := bud.AddStates(1, "nfa.intersect"); err != nil {
			return nil, err
		}
		p := order[qi]
		id := idx[p]
		// Character moves: both sides advance on a common byte class.
		for _, ea := range a.edges[p.pa] {
			for _, eb := range b.edges[p.pb] {
				label := ea.Label.Intersect(eb.Label)
				if label.IsEmpty() {
					continue
				}
				bl.AddEdge(id, label, get(pair{ea.To, eb.To}))
			}
		}
		// ε-moves: one side advances, preserving any seam tag.
		for _, ea := range a.eps[p.pa] {
			to := get(pair{ea.To, p.pb})
			if ea.Tag == NoTag {
				bl.AddEps(id, to)
			} else {
				bl.AddTaggedEps(id, to, ea.Tag)
			}
		}
		for _, eb := range b.eps[p.pb] {
			to := get(pair{p.pa, eb.To})
			if eb.Tag == NoTag {
				bl.AddEps(id, to)
			} else {
				bl.AddTaggedEps(id, to, eb.Tag)
			}
		}
	}
	finalPair := pair{a.final, b.final}
	fid, ok := idx[finalPair]
	if !ok {
		// The joint final state is unreachable: the intersection is empty,
		// but Build requires a final state; add an isolated one.
		fid = bl.AddState()
	}
	m := bl.Build(start, fid)
	return m, nil
}

// IntersectAll intersects all given machines left to right.
// IntersectAll() is Σ*.
func IntersectAll(ms ...*NFA) *NFA {
	m, _ := IntersectAllB(nil, ms...) // nil budget cannot fail (see Intersect)
	return m
}

// IntersectAllB is IntersectAll under a resource budget.
func IntersectAllB(bud *budget.Budget, ms ...*NFA) (*NFA, error) {
	if len(ms) == 0 {
		return AnyString(), nil
	}
	out := ms[0]
	for _, m := range ms[1:] {
		next, err := IntersectB(bud, out, m)
		if err != nil {
			return nil, err
		}
		out = next
	}
	return out, nil
}

// ProductStatesVisited returns the number of product states the intersection
// of a and b materializes. The paper's complexity analysis (§3.5) counts
// visited NFA states; this hook lets the experiment harness report the same
// metric.
func ProductStatesVisited(a, b *NFA) int {
	return Intersect(a, b).NumStates()
}
