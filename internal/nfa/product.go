package nfa

import "dprle/internal/budget"

// denseProductLimit bounds the pair spaces (na × nb) for which the product
// and emptiness explorations use flat dense indexes instead of maps: 2²²
// entries is 16 MiB of int32, well under what a product that size allocates
// in machine structure anyway.
const denseProductLimit = 1 << 22

// Intersect implements the cross-product construction of paper Fig. 3
// (lines 7–8): the returned machine recognizes L(a) ∩ L(b). Both operands may
// contain ε-transitions; ε-moves advance one side at a time (the standard
// asynchronous product). Seam tags on ε-edges of either operand are
// propagated to the corresponding product edges, so a seam edge f₁→s₂ in a
// concatenation machine reappears as the family {f₁q → s₂q | q ∈ Q_b} that
// the paper's Qlhs/Qrhs scan enumerates.
//
// Only product states reachable from the product start are materialized.
func Intersect(a, b *NFA) *NFA {
	// A nil *budget.Budget never trips — Check/AddStates return nil
	// immediately on a nil receiver — so IntersectB's error is statically
	// nil here and safe to discard (budgetcheck encodes this contract).
	m, _ := IntersectB(nil, a, b)
	return m
}

// IntersectB is Intersect under a resource budget: every materialized
// product state is accounted against bud, and the construction aborts with
// the budget's *Exhausted error as soon as the budget trips. The product is
// the solver's worst-case-quadratic (and, chained, exponential) step, so
// this is the primary interruption point for deadlines and state caps.
func IntersectB(bud *budget.Budget, a, b *NFA) (*NFA, error) {
	type pair struct{ pa, pb int }
	var edges [][]Edge
	var eps [][]EpsEdge
	var order []pair
	addState := func() int {
		edges = append(edges, nil)
		eps = append(eps, nil)
		return len(edges) - 1
	}
	// Pair → product-state index. When the full pair space fits under
	// denseProductLimit a flat array replaces the map: no hashing and no
	// per-entry allocation on the solver's hottest construction. Stored ids
	// are offset by one so the zero value means "unseen". The map fallback
	// keeps worst-case memory proportional to visited pairs, not na×nb.
	na, nb := a.NumStates(), b.NumStates()
	var get func(p pair) int
	var lookup func(p pair) (int, bool)
	if nb > 0 && na <= denseProductLimit/nb {
		dense := make([]int32, na*nb)
		get = func(p pair) int {
			k := p.pa*nb + p.pb
			if v := dense[k]; v != 0 {
				return int(v) - 1
			}
			id := addState()
			dense[k] = int32(id) + 1
			order = append(order, p)
			return id
		}
		lookup = func(p pair) (int, bool) {
			v := dense[p.pa*nb+p.pb]
			return int(v) - 1, v != 0
		}
	} else {
		idx := map[pair]int{}
		get = func(p pair) int {
			if id, ok := idx[p]; ok {
				return id
			}
			id := addState()
			idx[p] = id
			order = append(order, p)
			return id
		}
		lookup = func(p pair) (int, bool) {
			id, ok := idx[p]
			return id, ok
		}
	}
	start := get(pair{a.start, b.start})
	for qi := 0; qi < len(order); qi++ {
		// One probe per expanded product state bounds both the state count
		// and the time between context polls.
		if err := bud.AddStates(1, "nfa.intersect"); err != nil {
			return nil, err
		}
		p := order[qi]
		// Character moves: both sides advance on a common byte class. Count
		// first, then fill an exactly sized row — the incremental appends
		// this replaces were the product's main allocation cost.
		aE, bE := a.edges[p.pa], b.edges[p.pb]
		cnt := 0
		for _, ea := range aE {
			for _, eb := range bE {
				if ea.Label.Intersects(eb.Label) {
					cnt++
				}
			}
		}
		if cnt > 0 {
			row := make([]Edge, 0, cnt)
			for _, ea := range aE {
				for _, eb := range bE {
					label := ea.Label.Intersect(eb.Label)
					if label.IsEmpty() {
						continue
					}
					row = append(row, Edge{Label: label, To: get(pair{ea.To, eb.To})})
				}
			}
			edges[qi] = row
		}
		// ε-moves: one side advances, preserving any seam tag.
		aP, bP := a.eps[p.pa], b.eps[p.pb]
		if len(aP)+len(bP) > 0 {
			prow := make([]EpsEdge, 0, len(aP)+len(bP))
			for _, ea := range aP {
				prow = append(prow, EpsEdge{To: get(pair{ea.To, p.pb}), Tag: ea.Tag})
			}
			for _, eb := range bP {
				prow = append(prow, EpsEdge{To: get(pair{p.pa, eb.To}), Tag: eb.Tag})
			}
			eps[qi] = prow
		}
	}
	fid, ok := lookup(pair{a.final, b.final})
	if !ok {
		// The joint final state is unreachable: the intersection is empty,
		// but every machine needs a final state; add an isolated one.
		fid = addState()
	}
	return newNFA(edges, eps, start, fid), nil
}

// IntersectAll intersects all given machines left to right.
// IntersectAll() is Σ*.
func IntersectAll(ms ...*NFA) *NFA {
	m, _ := IntersectAllB(nil, ms...) // nil budget cannot fail (see Intersect)
	return m
}

// IntersectAllB is IntersectAll under a resource budget.
func IntersectAllB(bud *budget.Budget, ms ...*NFA) (*NFA, error) {
	if len(ms) == 0 {
		return AnyString(), nil
	}
	out := ms[0]
	for _, m := range ms[1:] {
		next, err := IntersectB(bud, out, m)
		if err != nil {
			return nil, err
		}
		out = next
	}
	return out, nil
}

// ProductStatesVisited returns the number of product states the intersection
// of a and b materializes. The paper's complexity analysis (§3.5) counts
// visited NFA states; this hook lets the experiment harness report the same
// metric.
func ProductStatesVisited(a, b *NFA) int {
	return Intersect(a, b).NumStates()
}

// Intersects reports whether L(a) ∩ L(b) ≠ ∅.
func Intersects(a, b *NFA) bool {
	ok, _ := IntersectsB(nil, a, b) // nil budget cannot fail (see budget.Budget)
	return ok
}

// IntersectsB is Intersects under a resource budget. Unlike
// IntersectB-then-IsEmpty it materializes no machine: it walks the
// reachable product pairs and exits as soon as the joint final pair is
// seen, so deciding "the languages meet" stops at the first witness path
// instead of enumerating the whole product. Emptiness checks (the subset
// decision procedure, the maximality verifier) are the intended callers.
// Visited pairs are accounted against bud like any other product
// exploration.
func IntersectsB(bud *budget.Budget, a, b *NFA) (bool, error) {
	type pair struct{ pa, pb int }
	final := pair{a.final, b.final}
	startP := pair{a.start, b.start}
	if startP == final {
		return true, nil
	}
	na, nb := a.NumStates(), b.NumStates()
	var seen stateSet
	var seenMap map[pair]bool
	if nb > 0 && na <= denseProductLimit/nb {
		seen = newStateSet(na * nb)
	} else {
		seenMap = map[pair]bool{}
	}
	// mark reports whether p is newly seen.
	mark := func(p pair) bool {
		if seen != nil {
			k := p.pa*nb + p.pb
			if seen.contains(k) {
				return false
			}
			seen.add(k)
			return true
		}
		if seenMap[p] {
			return false
		}
		seenMap[p] = true
		return true
	}
	mark(startP)
	stack := []pair{startP}
	for len(stack) > 0 {
		// One probe per expanded pair bounds both the pair count and the
		// time between context polls.
		if err := bud.AddStates(1, "nfa.intersect"); err != nil {
			return false, err
		}
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ea := range a.edges[p.pa] {
			for _, eb := range b.edges[p.pb] {
				if !ea.Label.Intersects(eb.Label) {
					continue
				}
				q := pair{ea.To, eb.To}
				if q == final {
					return true, nil
				}
				if mark(q) {
					stack = append(stack, q)
				}
			}
		}
		for _, ea := range a.eps[p.pa] {
			q := pair{ea.To, p.pb}
			if q == final {
				return true, nil
			}
			if mark(q) {
				stack = append(stack, q)
			}
		}
		for _, eb := range b.eps[p.pb] {
			q := pair{p.pa, eb.To}
			if q == final {
				return true, nil
			}
			if mark(q) {
				stack = append(stack, q)
			}
		}
	}
	return false, nil
}
