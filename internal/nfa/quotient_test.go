package nfa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLeftQuotientBasic(t *testing.T) {
	// ab⁻¹ of {abc, abd, xyz} = {c, d}.
	x := UnionAll(Literal("abc"), Literal("abd"), Literal("xyz"))
	q := LeftQuotient(Literal("ab"), x)
	mustAccept(t, q, "c", "d")
	mustReject(t, q, "", "abc", "z", "yz")
}

func TestLeftQuotientWholeLanguage(t *testing.T) {
	// ε⁻¹X = X.
	x := Union(Literal("ab"), Star(Literal("c")))
	if !Equivalent(LeftQuotient(Epsilon(), x), x) {
		t.Fatal("ε-quotient should be identity")
	}
}

func TestLeftQuotientEmptyDivisor(t *testing.T) {
	if !LeftQuotient(Empty(), Literal("abc")).IsEmpty() {
		t.Fatal("∅-quotient should be empty")
	}
}

func TestRightQuotientBasic(t *testing.T) {
	// {abc, xbc, ad}c⁻¹... using divisor "bc": {a, x}.
	x := UnionAll(Literal("abc"), Literal("xbc"), Literal("ad"))
	q := RightQuotient(x, Literal("bc"))
	mustAccept(t, q, "a", "x")
	mustReject(t, q, "ab", "ad", "")
}

func TestQuotientWithStarDivisor(t *testing.T) {
	// (a*)⁻¹ of a*b = a*b  (any prefix of a's can be stripped, a's remain).
	q := LeftQuotient(Star(Literal("a")), Concat(Star(Literal("a")), Literal("b")))
	mustAccept(t, q, "b", "ab", "aab")
	mustReject(t, q, "", "ba")
}

func TestMaxMiddleBasic(t *testing.T) {
	// Largest M with a·M·c ⊆ a[0-9]*c is [0-9]*.
	m := MaxMiddle(Literal("a"), Literal("c"), MustPattern(t, "a", "[0-9]*", "c"))
	mustAccept(t, m, "", "5", "123")
	mustReject(t, m, "x", "1x2")
}

// MustPattern builds concat of literal, class-star, literal without pulling
// in the regex package (which would create an import cycle in tests).
func MustPattern(t *testing.T, pre, _ string, post string) *NFA {
	t.Helper()
	digits := Star(Class(Range('0', '9')))
	return Concat(Concat(Literal(pre), digits), Literal(post))
}

func TestMaxMiddleEmptyWhenImpossible(t *testing.T) {
	// No M satisfies b·M ⊆ a·Σ* (strings must start with b on the left).
	m := MaxMiddle(Literal("b"), Epsilon(), Concat(Literal("a"), AnyString()))
	if !m.IsEmpty() {
		w, _ := m.ShortestWitness()
		t.Fatalf("expected empty max-middle, got witness %q", w)
	}
}

func TestMaxMiddleIsMaximalAndSatisfying(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	f := func() bool {
		a := randMachine(r, 1)
		b := randMachine(r, 1)
		c := randMachine(r, 2)
		m := MaxMiddle(a, b, c)
		// Satisfying: a·m·b ⊆ c.
		if !Subset(Concat(Concat(a, m), b), c) {
			return false
		}
		// Maximality spot-check: no short string outside m can be added.
		for _, w := range sampleStrings(r, 8) {
			if m.Accepts(w) {
				continue
			}
			ext := Union(m, Literal(w))
			if Subset(Concat(Concat(a, ext), b), c) {
				return false // m missed an admissible string
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuotientDefinitionProperty(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	f := func() bool {
		a := randMachine(r, 1)
		x := randMachine(r, 2)
		q := LeftQuotient(a, x)
		// For short strings w: w ∈ q ⟺ ∃ short prefix p ∈ a with pw ∈ x.
		// Enumerate members of a up to length 6 (machines are small).
		prefixes := a.Enumerate(6, 2000)
		for _, w := range sampleStrings(r, 8) {
			want := false
			for _, p := range prefixes {
				if x.Accepts(p + w) {
					want = true
					break
				}
			}
			if q.Accepts(w) != want {
				// Longer prefixes could exist, but depth-1 machines over
				// a 3-letter alphabet pump within 6 characters.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
