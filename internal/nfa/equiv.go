package nfa

import (
	"fmt"
	"strings"

	"dprle/internal/budget"
)

// Subset reports whether L(a) ⊆ L(b), decided as L(a) ∩ (Σ* \ L(b)) = ∅.
func Subset(a, b *NFA) bool {
	ok, _ := SubsetB(nil, a, b) // nil budget cannot fail (see budget.Budget)
	return ok
}

// SubsetB is Subset under a resource budget: the complement
// (determinization) and the product-pair exploration are both accounted
// against bud. The emptiness side runs through IntersectsB, which builds no
// product machine and exits on the first counterexample path.
func SubsetB(bud *budget.Budget, a, b *NFA) (bool, error) {
	nb, err := ComplementB(bud, b)
	if err != nil {
		return false, err
	}
	hit, err := IntersectsB(bud, a, nb)
	if err != nil {
		return false, err
	}
	return !hit, nil
}

// Equivalent reports whether L(a) = L(b).
func Equivalent(a, b *NFA) bool {
	return Subset(a, b) && Subset(b, a)
}

// ProperSubset reports whether L(a) ⊊ L(b).
func ProperSubset(a, b *NFA) bool {
	return Subset(a, b) && !Subset(b, a)
}

// Fingerprint returns a canonical string identifying L(m): two machines have
// equal fingerprints iff their languages are equal. The minimal DFA is
// unique up to state renaming; renaming is fixed by BFS over bytes in
// ascending order, and transitions are serialized as per-state successor
// runs so the result is independent of how edge labels were partitioned.
// The solver uses fingerprints to deduplicate disjunctive assignments.
func Fingerprint(m *NFA) string {
	fp, _ := FingerprintB(nil, m) // nil budget cannot fail (see budget.Budget)
	return fp
}

// FingerprintB is Fingerprint under a resource budget: the canonicalizing
// determinization + minimization is accounted against bud.
func FingerprintB(bud *budget.Budget, m *NFA) (string, error) {
	dd, err := DeterminizeB(bud, m)
	if err != nil {
		return "", err
	}
	d, err := dd.MinimizeB(bud)
	if err != nil {
		return "", err
	}
	// succ[s][c] = successor of s on byte c.
	succ := make([][256]int, d.NumStates())
	for s := 0; s < d.NumStates(); s++ {
		for ai, atom := range d.atoms {
			for _, c := range atom.Bytes() {
				succ[s][c] = d.trans[s][ai]
			}
		}
	}
	order := []int{d.start}
	pos := map[int]int{d.start: 0}
	for qi := 0; qi < len(order); qi++ {
		s := order[qi]
		for c := 0; c < 256; c++ {
			t := succ[s][c]
			if _, ok := pos[t]; !ok {
				pos[t] = len(order)
				order = append(order, t)
			}
		}
	}
	var b strings.Builder
	for _, s := range order {
		if d.accept[s] {
			b.WriteByte('A')
		} else {
			b.WriteByte('.')
		}
		// Serialize successor runs: byte ranges with a common target.
		c := 0
		for c < 256 {
			t := succ[s][c]
			lo := c
			for c < 256 && succ[s][c] == t {
				c++
			}
			fmt.Fprintf(&b, "%d-%d>%d;", lo, c-1, pos[t])
		}
		b.WriteByte('|')
	}
	return b.String(), nil
}
