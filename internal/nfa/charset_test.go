package nfa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCharSetBasics(t *testing.T) {
	var s CharSet
	if !s.IsEmpty() {
		t.Fatal("zero CharSet should be empty")
	}
	s.Add('a')
	if !s.Contains('a') || s.Contains('b') {
		t.Fatal("Add/Contains broken")
	}
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1", s.Count())
	}
	s.Remove('a')
	if !s.IsEmpty() {
		t.Fatal("Remove failed")
	}
}

func TestCharSetRange(t *testing.T) {
	s := Range('a', 'z')
	if s.Count() != 26 {
		t.Fatalf("Count = %d, want 26", s.Count())
	}
	for c := byte('a'); c <= 'z'; c++ {
		if !s.Contains(c) {
			t.Fatalf("missing %c", c)
		}
	}
	if s.Contains('A') || s.Contains('{') || s.Contains('`') {
		t.Fatal("range boundaries leak")
	}
	if !Range('z', 'a').IsEmpty() {
		t.Fatal("inverted range should be empty")
	}
}

func TestCharSetRangeCrossesWordBoundaries(t *testing.T) {
	s := Range(60, 70) // crosses the 63/64 word boundary
	for c := 60; c <= 70; c++ {
		if !s.Contains(byte(c)) {
			t.Fatalf("missing %d", c)
		}
	}
	if s.Count() != 11 {
		t.Fatalf("Count = %d, want 11", s.Count())
	}
	hi := Range(250, 255)
	if hi.Count() != 6 || !hi.Contains(255) {
		t.Fatal("high range broken")
	}
}

func TestCharSetSetAlgebra(t *testing.T) {
	a := Range('a', 'm')
	b := Range('h', 'z')
	u := a.Union(b)
	if u.Count() != 26 {
		t.Fatalf("union count = %d, want 26", u.Count())
	}
	i := a.Intersect(b)
	if i.Count() != 6 { // h..m
		t.Fatalf("intersect count = %d, want 6", i.Count())
	}
	d := a.Subtract(b)
	if d.Count() != 7 { // a..g
		t.Fatalf("subtract count = %d, want 7", d.Count())
	}
	c := a.Complement()
	if c.Count() != 256-13 {
		t.Fatalf("complement count = %d, want %d", c.Count(), 256-13)
	}
	if !a.Intersects(b) || a.Intersects(Range('n', 'z').Subtract(b)) {
		t.Fatal("Intersects broken")
	}
}

func TestCharSetAnyByte(t *testing.T) {
	any := AnyByte()
	if any.Count() != 256 {
		t.Fatalf("AnyByte count = %d", any.Count())
	}
	if !any.Complement().IsEmpty() {
		t.Fatal("complement of Σ should be empty")
	}
}

func TestCharSetFromString(t *testing.T) {
	s := FromString("hello")
	if s.Count() != 4 { // h e l o
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	for _, c := range []byte("helo") {
		if !s.Contains(c) {
			t.Fatalf("missing %c", c)
		}
	}
}

func TestCharSetMinBytes(t *testing.T) {
	s := FromString("zebra")
	min, ok := s.Min()
	if !ok || min != 'a' {
		t.Fatalf("Min = %c/%v, want a/true", min, ok)
	}
	bs := s.Bytes()
	want := "aberz"
	if string(bs) != want {
		t.Fatalf("Bytes = %q, want %q", bs, want)
	}
	if _, ok := EmptySet().Min(); ok {
		t.Fatal("Min of empty should report !ok")
	}
}

func TestCharSetString(t *testing.T) {
	cases := []struct {
		set  CharSet
		want string
	}{
		{EmptySet(), "∅"},
		{AnyByte(), "Σ"},
		{Singleton('a'), "[a]"},
		{Range('a', 'c'), "[a-c]"},
		{Range('0', '9'), "[0-9]"},
		{Singleton('\n'), `[\n]`},
		{Singleton('-'), `[\-]`},
	}
	for _, c := range cases {
		if got := c.set.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.set, got, c.want)
		}
	}
}

func TestPartitionDisjointCover(t *testing.T) {
	sets := []CharSet{Range('a', 'z'), Range('m', 'p'), Singleton('0'), Range('0', '9')}
	atoms := Partition(sets)
	// Atoms must be pairwise disjoint and cover Σ.
	total := EmptySet()
	for i, a := range atoms {
		if a.IsEmpty() {
			t.Fatal("empty atom")
		}
		for j, b := range atoms {
			if i != j && a.Intersects(b) {
				t.Fatalf("atoms %d and %d overlap", i, j)
			}
		}
		total = total.Union(a)
	}
	if total != AnyByte() {
		t.Fatal("atoms do not cover Σ")
	}
	// Every input set must be a union of atoms.
	for _, s := range sets {
		rebuilt := EmptySet()
		for _, a := range atoms {
			if a.Intersects(s) {
				if !a.Subtract(s).IsEmpty() {
					t.Fatalf("atom %v straddles input set %v", a, s)
				}
				rebuilt = rebuilt.Union(a)
			}
		}
		if rebuilt != s {
			t.Fatalf("set %v not a union of atoms", s)
		}
	}
}

func randCharSet(r *rand.Rand) CharSet {
	var s CharSet
	n := r.Intn(5)
	for i := 0; i < n; i++ {
		lo := byte(r.Intn(256))
		hi := lo + byte(r.Intn(40))
		if hi < lo {
			hi = 255
		}
		s.AddRange(lo, hi)
	}
	return s
}

func TestCharSetAlgebraProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := randCharSet(r), randCharSet(r)
		// De Morgan: ¬(a ∪ b) = ¬a ∩ ¬b.
		if a.Union(b).Complement() != a.Complement().Intersect(b.Complement()) {
			return false
		}
		// a \ b = a ∩ ¬b.
		if a.Subtract(b) != a.Intersect(b.Complement()) {
			return false
		}
		// Union/intersection via membership, byte by byte.
		for c := 0; c < 256; c++ {
			bc := byte(c)
			if a.Union(b).Contains(bc) != (a.Contains(bc) || b.Contains(bc)) {
				return false
			}
			if a.Intersect(b).Contains(bc) != (a.Contains(bc) && b.Contains(bc)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
