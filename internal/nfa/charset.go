// Package nfa implements nondeterministic finite automata over the byte
// alphabet Σ = {0, …, 255}, with character-class-labelled transitions and
// tagged ε-transitions. It provides the automata substrate required by the
// DPRLE decision procedure: concatenation with seam-tagged ε-edges, the
// cross-product (intersection) construction that preserves seam tags,
// determinization, complementation, minimization, inclusion and equivalence
// checks, emptiness, membership, shortest-witness extraction, and bounded
// language enumeration.
package nfa

import (
	"fmt"
	"math/bits"
	"strings"
)

// CharSet is a set of byte values, represented as a 256-bit vector.
// The zero value is the empty set.
type CharSet [4]uint64

// EmptySet returns the empty character set.
func EmptySet() CharSet { return CharSet{} }

// AnyByte returns the full alphabet Σ (all 256 byte values).
func AnyByte() CharSet {
	return CharSet{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
}

// Singleton returns the set {b}.
func Singleton(b byte) CharSet {
	var s CharSet
	s.Add(b)
	return s
}

// Range returns the set {lo, …, hi}. If lo > hi the result is empty.
func Range(lo, hi byte) CharSet {
	var s CharSet
	s.AddRange(lo, hi)
	return s
}

// FromString returns the set of bytes appearing in str.
func FromString(str string) CharSet {
	var s CharSet
	for i := 0; i < len(str); i++ {
		s.Add(str[i])
	}
	return s
}

// Add inserts b into the set.
func (s *CharSet) Add(b byte) {
	s[b>>6] |= 1 << (b & 63)
}

// AddRange inserts every byte in [lo, hi] into the set.
func (s *CharSet) AddRange(lo, hi byte) {
	for c := int(lo); c <= int(hi); c++ {
		s.Add(byte(c))
	}
}

// Remove deletes b from the set.
func (s *CharSet) Remove(b byte) {
	s[b>>6] &^= 1 << (b & 63)
}

// Contains reports whether b is in the set.
func (s CharSet) Contains(b byte) bool {
	return s[b>>6]&(1<<(b&63)) != 0
}

// IsEmpty reports whether the set contains no bytes.
func (s CharSet) IsEmpty() bool {
	return s[0] == 0 && s[1] == 0 && s[2] == 0 && s[3] == 0
}

// Count returns the number of bytes in the set.
func (s CharSet) Count() int {
	return bits.OnesCount64(s[0]) + bits.OnesCount64(s[1]) +
		bits.OnesCount64(s[2]) + bits.OnesCount64(s[3])
}

// Union returns s ∪ t.
func (s CharSet) Union(t CharSet) CharSet {
	return CharSet{s[0] | t[0], s[1] | t[1], s[2] | t[2], s[3] | t[3]}
}

// Intersect returns s ∩ t.
func (s CharSet) Intersect(t CharSet) CharSet {
	return CharSet{s[0] & t[0], s[1] & t[1], s[2] & t[2], s[3] & t[3]}
}

// Subtract returns s \ t.
func (s CharSet) Subtract(t CharSet) CharSet {
	return CharSet{s[0] &^ t[0], s[1] &^ t[1], s[2] &^ t[2], s[3] &^ t[3]}
}

// Complement returns Σ \ s.
func (s CharSet) Complement() CharSet {
	return CharSet{^s[0], ^s[1], ^s[2], ^s[3]}
}

// Equal reports whether s and t contain exactly the same bytes.
func (s CharSet) Equal(t CharSet) bool { return s == t }

// Intersects reports whether s ∩ t is nonempty without materializing it.
func (s CharSet) Intersects(t CharSet) bool {
	return s[0]&t[0] != 0 || s[1]&t[1] != 0 || s[2]&t[2] != 0 || s[3]&t[3] != 0
}

// Min returns the smallest byte in the set. It reports ok=false when the set
// is empty.
func (s CharSet) Min() (b byte, ok bool) {
	for w := 0; w < 4; w++ {
		if s[w] != 0 {
			return byte(w*64 + bits.TrailingZeros64(s[w])), true
		}
	}
	return 0, false
}

// Bytes returns the members of the set in ascending order.
func (s CharSet) Bytes() []byte {
	out := make([]byte, 0, s.Count())
	for w := 0; w < 4; w++ {
		word := s[w]
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			out = append(out, byte(w*64+bit))
			word &^= 1 << bit
		}
	}
	return out
}

// ranges returns the maximal contiguous [lo,hi] runs in the set.
func (s CharSet) ranges() [][2]byte {
	var out [][2]byte
	c := 0
	for c < 256 {
		if !s.Contains(byte(c)) {
			c++
			continue
		}
		lo := c
		for c < 256 && s.Contains(byte(c)) {
			c++
		}
		out = append(out, [2]byte{byte(lo), byte(c - 1)})
	}
	return out
}

// String renders the set in a compact character-class notation, e.g.
// "[a-z0-9_]", "Σ" for the full alphabet, or "∅" for the empty set.
func (s CharSet) String() string {
	if s.IsEmpty() {
		return "∅"
	}
	if s == AnyByte() {
		return "Σ"
	}
	rs := s.ranges()
	var b strings.Builder
	b.WriteByte('[')
	for _, r := range rs {
		writeClassByte(&b, r[0])
		switch {
		case r[0] == r[1]:
		case r[1] == r[0]+1:
			writeClassByte(&b, r[1])
		default:
			b.WriteByte('-')
			writeClassByte(&b, r[1])
		}
	}
	b.WriteByte(']')
	return b.String()
}

func writeClassByte(b *strings.Builder, c byte) {
	switch {
	case c == '\n':
		b.WriteString(`\n`)
	case c == '\t':
		b.WriteString(`\t`)
	case c == '\r':
		b.WriteString(`\r`)
	case c == '-' || c == ']' || c == '[' || c == '\\' || c == '^':
		b.WriteByte('\\')
		b.WriteByte(c)
	case c >= 0x20 && c < 0x7f:
		b.WriteByte(c)
	default:
		fmt.Fprintf(b, `\x%02x`, c)
	}
}

// Partition refines the alphabet into equivalence classes ("atoms") with
// respect to the given charsets: two bytes land in the same class iff they
// are members of exactly the same subsets of sets. The returned slice
// contains pairwise-disjoint nonempty classes whose union is Σ.
//
// Partitioning lets determinization and minimization iterate over a handful
// of classes rather than all 256 bytes.
func Partition(sets []CharSet) []CharSet {
	atoms := []CharSet{AnyByte()}
	for _, s := range sets {
		if s.IsEmpty() || s == AnyByte() {
			continue
		}
		next := atoms[:0:0]
		for _, a := range atoms {
			in := a.Intersect(s)
			out := a.Subtract(s)
			if !in.IsEmpty() {
				next = append(next, in)
			}
			if !out.IsEmpty() {
				next = append(next, out)
			}
		}
		atoms = next
	}
	return atoms
}
