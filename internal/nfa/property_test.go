package nfa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randMachine generates a random small NFA over {a, b, c} by composing the
// public constructors, so every generated machine is well-formed.
func randMachine(r *rand.Rand, depth int) *NFA {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return Epsilon()
		case 1:
			return Literal(string(byte('a' + r.Intn(3))))
		case 2:
			lo := byte('a' + r.Intn(3))
			hi := lo + byte(r.Intn(3))
			if hi > 'c' {
				hi = 'c'
			}
			return Class(Range(lo, hi))
		default:
			n := r.Intn(3)
			s := make([]byte, n)
			for i := range s {
				s[i] = byte('a' + r.Intn(3))
			}
			return Literal(string(s))
		}
	}
	switch r.Intn(5) {
	case 0:
		return Concat(randMachine(r, depth-1), randMachine(r, depth-1))
	case 1:
		return Union(randMachine(r, depth-1), randMachine(r, depth-1))
	case 2:
		return Star(randMachine(r, depth-1))
	case 3:
		return Plus(randMachine(r, depth-1))
	default:
		return Optional(randMachine(r, depth-1))
	}
}

// sampleStrings generates short strings over {a,b,c} for membership probes.
func sampleStrings(r *rand.Rand, n int) []string {
	out := []string{""}
	for i := 0; i < n; i++ {
		l := 1 + r.Intn(4)
		s := make([]byte, l)
		for j := range s {
			s[j] = byte('a' + r.Intn(3))
		}
		out = append(out, string(s))
	}
	return out
}

func TestPropDeterminizePreservesLanguage(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		m := randMachine(r, 2)
		d := Determinize(m)
		for _, w := range sampleStrings(r, 12) {
			if m.Accepts(w) != d.Accepts(w) {
				t.Logf("mismatch on %q for %v", w, m)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropMinimizePreservesLanguage(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		m := randMachine(r, 2)
		min := Determinize(m).Minimize()
		for _, w := range sampleStrings(r, 12) {
			if m.Accepts(w) != min.Accepts(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropIntersectionIsConjunction(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	f := func() bool {
		a := randMachine(r, 2)
		b := randMachine(r, 2)
		m := Intersect(a, b)
		for _, w := range sampleStrings(r, 12) {
			if m.Accepts(w) != (a.Accepts(w) && b.Accepts(w)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropUnionIsDisjunction(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	f := func() bool {
		a := randMachine(r, 2)
		b := randMachine(r, 2)
		m := Union(a, b)
		for _, w := range sampleStrings(r, 12) {
			if m.Accepts(w) != (a.Accepts(w) || b.Accepts(w)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropComplementIsNegation(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	f := func() bool {
		m := randMachine(r, 2)
		c := Complement(m)
		for _, w := range sampleStrings(r, 12) {
			if c.Accepts(w) == m.Accepts(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropConcatSplitsString(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	f := func() bool {
		a := randMachine(r, 1)
		b := randMachine(r, 1)
		m := Concat(a, b)
		for _, w := range sampleStrings(r, 10) {
			want := false
			for i := 0; i <= len(w); i++ {
				if a.Accepts(w[:i]) && b.Accepts(w[i:]) {
					want = true
					break
				}
			}
			if m.Accepts(w) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropTrimPreservesLanguage(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	f := func() bool {
		m := randMachine(r, 2)
		tr := m.Trim()
		for _, w := range sampleStrings(r, 12) {
			if m.Accepts(w) != tr.Accepts(w) {
				return false
			}
		}
		return tr.NumStates() <= m.NumStates()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropReverseReversesMembership(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	f := func() bool {
		m := randMachine(r, 2)
		rev := Reverse(m)
		for _, w := range sampleStrings(r, 12) {
			b := []byte(w)
			for l, rr := 0, len(b)-1; l < rr; l, rr = l+1, rr-1 {
				b[l], b[rr] = b[rr], b[l]
			}
			if m.Accepts(w) != rev.Accepts(string(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropWitnessIsMember(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	f := func() bool {
		m := randMachine(r, 2)
		w, ok := m.ShortestWitness()
		if !ok {
			return m.IsEmpty()
		}
		return m.Accepts(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropEnumerateMatchesAccepts(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	f := func() bool {
		m := randMachine(r, 2)
		enum := map[string]bool{}
		for _, w := range m.Enumerate(3, 100000) {
			enum[w] = true
		}
		// Every enumerated string is accepted, and every accepted short
		// string over {a,b,c} is enumerated.
		for w := range enum {
			if !m.Accepts(w) {
				return false
			}
		}
		var all []string
		var gen func(prefix string)
		gen = func(prefix string) {
			all = append(all, prefix)
			if len(prefix) >= 3 {
				return
			}
			for _, c := range []byte("abc") {
				gen(prefix + string(c))
			}
		}
		gen("")
		for _, w := range all {
			if m.Accepts(w) != enum[w] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropFingerprintAgreesWithEquivalent(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	f := func() bool {
		a := randMachine(r, 2)
		b := randMachine(r, 2)
		return (Fingerprint(a) == Fingerprint(b)) == Equivalent(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
