package nfa

import (
	"encoding/binary"
	"slices"
	"sort"
	"strings"
)

// Canonicalization: a state renumbering that depends only on the machine's
// structure, so that structurally identical machines — equal up to a
// bijection on state ids preserving character edges, labels, seam tags,
// start, and final — serialize to identical bytes regardless of how their
// states happened to be numbered during construction.
//
// The renumbering is computed in two steps. First, Weisfeiler–Leman color
// refinement partitions states by their local structure: the initial color
// records only start/final status, and each round extends a state's color
// with the sorted multiset of (label, neighbor-color) pairs over both its
// outgoing and incoming transitions, until the partition stops refining.
// Second, a breadth-first traversal from the start state assigns canonical
// ids, visiting successors in (label, color) order; states the refinement
// could not separate are tied and broken arbitrarily, which can make two
// isomorphic machines canonicalize differently in rare symmetric cases.
// That asymmetry is safe for caching: equal canonical forms always describe
// isomorphic machines (the form is a faithful serialization of the machine
// itself), so a collision can only be a hit, never a confusion — ties cost
// missed cache hits, not wrong answers.
//
// Both steps identify a transition by a numeric dimension rather than a
// rendered label string: character labels get even dimensions in rangesText
// order (content-determined, so independent of construction order) and
// ε-tags get odd dimensions straight from the tag value. Refinement
// signatures are then sortable integer tuples, which keeps key derivation
// cheap enough to sit on the solver's cache-lookup path.

// Canonicalize returns a machine isomorphic to m with canonical state
// numbering and deterministically sorted edge lists. The language, seam
// tags, and state count are preserved exactly.
func (m *NFA) Canonicalize() *NFA {
	dims := m.labelDims()
	colors := m.refineColors(dims)
	order := m.canonicalOrder(colors, dims)
	ren := make([]int, m.NumStates())
	for newID, oldID := range order {
		ren[oldID] = newID
	}
	b := NewBuilder()
	b.AddStates(m.NumStates())
	for newID, oldID := range order {
		edges := make([]Edge, len(m.edges[oldID]))
		for i, e := range m.edges[oldID] {
			edges[i] = Edge{Label: e.Label, To: ren[e.To]}
		}
		slices.SortFunc(edges, func(a, b Edge) int {
			if a.To != b.To {
				return a.To - b.To
			}
			return int(dims[a.Label]) - int(dims[b.Label])
		})
		eps := make([]EpsEdge, len(m.eps[oldID]))
		copy(eps, m.eps[oldID])
		for i := range eps {
			eps[i].To = ren[eps[i].To]
		}
		slices.SortFunc(eps, func(a, b EpsEdge) int {
			if a.To != b.To {
				return a.To - b.To
			}
			return a.Tag - b.Tag
		})
		b.edges[newID] = edges
		b.eps[newID] = eps
	}
	return b.Build(ren[m.start], ren[m.final])
}

// CanonicalKey returns the canonical serialization of the machine: the wire
// format of Canonicalize(). Equal keys imply isomorphic machines (hence
// equal languages and seam structure), which makes the key sound as a cache
// key; isomorphic machines produce equal keys except under unresolved
// structural symmetry, where a lookup merely misses.
//
// The key is memoized on the machine: repeated calls — the common case when
// the same constant constrains many components, or an interned machine is
// consulted by many queries — cost one atomic load.
func (m *NFA) CanonicalKey() string {
	if k := m.canon.Load(); k != nil {
		return *k
	}
	k := m.Canonicalize().Marshal()
	m.canon.Store(&k)
	return k
}

// labelDims assigns every transition kind a numeric dimension used to order
// and compare transitions during canonicalization: distinct character-edge
// labels get even dimensions in rangesText order, ε-edges with tag t
// (NoTag = -1 included) get dimension 2·(t+1)+1. The assignment depends
// only on edge contents, never on construction or iteration order, so
// isomorphic machines agree on every dimension.
func (m *NFA) labelDims() map[CharSet]uint64 {
	labels := m.allLabels()
	type lt struct {
		label CharSet
		text  string
	}
	lts := make([]lt, len(labels))
	for i, l := range labels {
		lts[i] = lt{l, rangesText(l)}
	}
	slices.SortFunc(lts, func(a, b lt) int { return strings.Compare(a.text, b.text) })
	dims := make(map[CharSet]uint64, len(lts))
	for i, x := range lts {
		dims[x.label] = 2 * uint64(i)
	}
	return dims
}

// epsDim is the dimension of an ε-edge with the given tag.
func epsDim(tag int) uint64 { return 2*uint64(tag+1) + 1 }

// refineColors runs WL color refinement and returns a color per state.
// Colors are small ints; equal colors mean the refinement could not
// distinguish the states' neighborhoods.
func (m *NFA) refineColors(dims map[CharSet]uint64) []int {
	n := m.NumStates()

	// Forward and reverse adjacency with per-edge dimensions precomputed,
	// so each refinement round touches only integers.
	type adj struct {
		peer int
		dim  uint64
	}
	fwd := make([][]adj, n)
	rin := make([][]adj, n)
	for s := 0; s < n; s++ {
		for _, e := range m.edges[s] {
			d := dims[e.Label]
			fwd[s] = append(fwd[s], adj{e.To, d})
			rin[e.To] = append(rin[e.To], adj{s, d})
		}
		for _, e := range m.eps[s] {
			d := epsDim(e.Tag)
			fwd[s] = append(fwd[s], adj{e.To, d})
			rin[e.To] = append(rin[e.To], adj{s, d})
		}
	}

	// Seed colors with (start/final flags, distance from start, distance to
	// final). All three are isomorphism invariants, so the seed partition is
	// as sound as the flags-only one — but it already separates the states
	// of chain-shaped machines, which would otherwise need one refinement
	// round per link to tell apart (WL propagates one hop per round). With
	// this seed, refinement usually stabilizes in a handful of rounds.
	bfs := func(adjs [][]adj, root int) []int {
		dist := make([]int, n)
		for i := range dist {
			dist[i] = n // unreachable
		}
		dist[root] = 0
		queue := []int{root}
		for qi := 0; qi < len(queue); qi++ {
			s := queue[qi]
			for _, a := range adjs[s] {
				if dist[a.peer] == n {
					dist[a.peer] = dist[s] + 1
					queue = append(queue, a.peer)
				}
			}
		}
		return dist
	}
	dStart := bfs(fwd, m.start)
	dFinal := bfs(rin, m.final)
	seed := make([]uint64, n)
	for s := 0; s < n; s++ {
		var flags uint64
		if s == m.start {
			flags |= 1
		}
		if s == m.final {
			flags |= 2
		}
		seed[s] = flags<<62 | uint64(dStart[s])<<31 | uint64(dFinal[s])
	}
	ranked := append([]uint64(nil), seed...)
	slices.Sort(ranked)
	ranked = slices.Compact(ranked)
	colors := make([]int, n)
	for s := 0; s < n; s++ {
		c, _ := slices.BinarySearch(ranked, seed[s])
		colors[s] = c
	}

	// A state's signature for one round: its own color, then the sorted
	// (dimension, neighbor color) multisets over outgoing and incoming
	// transitions, packed big-endian so byte comparison is numeric
	// comparison. New colors are signature ranks in sorted order — a
	// content-determined assignment, identical across isomorphic machines.
	sigs := make([]string, n)
	var out, in []uint64
	var buf []byte
	distinct := len(ranked) // any round can only refine the seed partition
	for round := 0; round < n; round++ {
		for s := 0; s < n; s++ {
			out, in = out[:0], in[:0]
			for _, a := range fwd[s] {
				out = append(out, a.dim<<32|uint64(uint32(colors[a.peer])))
			}
			for _, a := range rin[s] {
				in = append(in, a.dim<<32|uint64(uint32(colors[a.peer])))
			}
			slices.Sort(out)
			slices.Sort(in)
			buf = buf[:0]
			buf = binary.BigEndian.AppendUint32(buf, uint32(colors[s]))
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(out)))
			for _, v := range out {
				buf = binary.BigEndian.AppendUint64(buf, v)
			}
			for _, v := range in {
				buf = binary.BigEndian.AppendUint64(buf, v)
			}
			sigs[s] = string(buf)
		}
		uniq := append([]string(nil), sigs...)
		sort.Strings(uniq)
		uniq = dedupeSortedStrings(uniq)
		ids := make(map[string]int, len(uniq))
		for i, sig := range uniq {
			ids[sig] = i
		}
		for s := range colors {
			colors[s] = ids[sigs[s]]
		}
		if len(uniq) == distinct {
			break
		}
		distinct = len(uniq)
	}
	return colors
}

// canonicalOrder returns the canonical numbering as order[newID] = oldID: a
// BFS from start whose successor visit order is (edge dimension, target
// color), followed by any states unreachable along forward transitions,
// sorted by color.
func (m *NFA) canonicalOrder(colors []int, dims map[CharSet]uint64) []int {
	n := m.NumStates()
	order := make([]int, 0, n)
	seen := make([]bool, n)
	push := func(s int) {
		if !seen[s] {
			seen[s] = true
			order = append(order, s)
		}
	}
	push(m.start)
	for qi := 0; qi < len(order); qi++ {
		s := order[qi]
		type succ struct {
			dim   uint64
			color int
			to    int
		}
		succs := make([]succ, 0, len(m.edges[s])+len(m.eps[s]))
		for _, e := range m.edges[s] {
			succs = append(succs, succ{dims[e.Label], colors[e.To], e.To})
		}
		for _, e := range m.eps[s] {
			succs = append(succs, succ{epsDim(e.Tag), colors[e.To], e.To})
		}
		slices.SortFunc(succs, func(a, b succ) int {
			if a.dim != b.dim {
				if a.dim < b.dim {
					return -1
				}
				return 1
			}
			if a.color != b.color {
				return a.color - b.color
			}
			return a.to - b.to
		})
		for _, su := range succs {
			push(su.to)
		}
	}
	// States with no forward path from start (possible in hand-built
	// machines) come last, grouped by color; the original-id tie-break is
	// arbitrary but deterministic for a fixed input machine.
	rest := make([]int, 0)
	for s := 0; s < n; s++ {
		if !seen[s] {
			rest = append(rest, s)
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		if colors[rest[i]] != colors[rest[j]] {
			return colors[rest[i]] < colors[rest[j]]
		}
		return rest[i] < rest[j]
	})
	return append(order, rest...)
}

func dedupeSortedStrings(a []string) []string {
	out := a[:0]
	for i, s := range a {
		if i == 0 || s != a[i-1] {
			out = append(out, s)
		}
	}
	return out
}
