package nfa

import (
	"reflect"
	"testing"
)

func TestConcat(t *testing.T) {
	m := Concat(Literal("foo"), Literal("bar"))
	mustAccept(t, m, "foobar")
	mustReject(t, m, "foo", "bar", "", "foobarx")
}

func TestConcatWithEpsilonOperand(t *testing.T) {
	m := Concat(Epsilon(), Literal("x"))
	mustAccept(t, m, "x")
	mustReject(t, m, "", "xx")
}

func TestConcatTaggedSeamSurvives(t *testing.T) {
	m := ConcatTagged(Literal("ab"), Literal("cd"), 42)
	mustAccept(t, m, "abcd")
	seams := m.TaggedEdges()
	if len(seams) != 1 || seams[0].Tag != 42 {
		t.Fatalf("seams = %+v", seams)
	}
	// The seam separates the operands: inducing on it recovers them.
	left := m.Induce(m.Start(), seams[0].From)
	right := m.Induce(seams[0].To, m.Final())
	mustAccept(t, left, "ab")
	mustReject(t, left, "abcd", "cd")
	mustAccept(t, right, "cd")
	mustReject(t, right, "ab")
}

func TestUnion(t *testing.T) {
	m := Union(Literal("cat"), Literal("dog"))
	mustAccept(t, m, "cat", "dog")
	mustReject(t, m, "", "catdog", "ca")
}

func TestUnionAll(t *testing.T) {
	if !UnionAll().IsEmpty() {
		t.Fatal("UnionAll() should be empty")
	}
	m := UnionAll(Literal("a"), Literal("b"), Literal("c"))
	mustAccept(t, m, "a", "b", "c")
	mustReject(t, m, "d", "ab")
}

func TestStar(t *testing.T) {
	m := Star(Literal("ab"))
	mustAccept(t, m, "", "ab", "abab", "ababab")
	mustReject(t, m, "a", "aba", "ba")
}

func TestPlus(t *testing.T) {
	m := Plus(Literal("x"))
	mustAccept(t, m, "x", "xx", "xxx")
	mustReject(t, m, "", "y")
}

func TestOptional(t *testing.T) {
	m := Optional(Literal("x"))
	mustAccept(t, m, "", "x")
	mustReject(t, m, "xx")
}

func TestReverse(t *testing.T) {
	m := Reverse(Literal("abc"))
	mustAccept(t, m, "cba")
	mustReject(t, m, "abc")
	// Reversal is an involution on the language.
	rr := Reverse(m)
	mustAccept(t, rr, "abc")
}

func TestReversePreservesSeams(t *testing.T) {
	m := ConcatTagged(Literal("a"), Literal("b"), 9)
	r := Reverse(m)
	if len(r.TaggedEdges()) != 1 || r.TaggedEdges()[0].Tag != 9 {
		t.Fatal("reverse should preserve seam tags")
	}
}

func TestAcceptsEarlyExit(t *testing.T) {
	m := Literal("ab")
	// After consuming 'z' no states remain; must not panic and must reject.
	mustReject(t, m, "zb", "az")
}

func TestIsEmpty(t *testing.T) {
	cases := []struct {
		m    *NFA
		want bool
	}{
		{Empty(), true},
		{Epsilon(), false},
		{Literal("a"), false},
		{Intersect(Literal("a"), Literal("b")), true},
	}
	for i, c := range cases {
		if got := c.m.IsEmpty(); got != c.want {
			t.Errorf("case %d: IsEmpty = %v, want %v", i, got, c.want)
		}
	}
}

func TestTrimRemovesDeadStates(t *testing.T) {
	b := NewBuilder()
	s := b.AddState()
	f := b.AddState()
	dead := b.AddState()    // reachable, not coreachable
	unreach := b.AddState() // coreachable, not reachable
	b.AddEdge(s, Singleton('a'), f)
	b.AddEdge(s, Singleton('d'), dead)
	b.AddEdge(unreach, Singleton('u'), f)
	m := b.Build(s, f)
	trimmed := m.Trim()
	if trimmed.NumStates() != 2 {
		t.Fatalf("trimmed states = %d, want 2", trimmed.NumStates())
	}
	mustAccept(t, trimmed, "a")
	mustReject(t, trimmed, "d", "u")
}

func TestTrimEmptyLanguage(t *testing.T) {
	m := Intersect(Literal("a"), Literal("b")).Trim()
	if !m.IsEmpty() {
		t.Fatal("trim of empty language should be empty")
	}
	if m.NumStates() != 2 {
		t.Fatalf("canonical empty machine has 2 states, got %d", m.NumStates())
	}
}

func TestDropSeams(t *testing.T) {
	m := ConcatTagged(Literal("a"), Literal("b"), 1)
	d := m.DropSeams()
	if len(d.TaggedEdges()) != 0 {
		t.Fatal("DropSeams left seam edges behind")
	}
	// Without the seam the concatenation is severed.
	if !d.IsEmpty() {
		t.Fatal("severed concatenation should be empty")
	}
}

func TestInduceMiddleSpan(t *testing.T) {
	// (a · b) · c with two seams; induce the middle operand b.
	m := ConcatTagged(ConcatTagged(Literal("a"), Literal("b"), 0), Literal("c"), 1)
	var seam0, seam1 TaggedEdge
	for _, e := range m.TaggedEdges() {
		if e.Tag == 0 {
			seam0 = e
		} else {
			seam1 = e
		}
	}
	mid := m.Induce(seam0.To, seam1.From)
	mustAccept(t, mid, "b")
	mustReject(t, mid, "a", "c", "ab", "bc")
}

func TestShortestWitness(t *testing.T) {
	cases := []struct {
		m    *NFA
		want string
		ok   bool
	}{
		{Literal("hello"), "hello", true},
		{Epsilon(), "", true},
		{Empty(), "", false},
		{Union(Literal("abc"), Literal("z")), "z", true},
		{Star(Literal("x")), "", true},
		{Plus(Class(Range('b', 'd'))), "b", true},
	}
	for i, c := range cases {
		got, ok := c.m.ShortestWitness()
		if ok != c.ok || got != c.want {
			t.Errorf("case %d: witness = %q/%v, want %q/%v", i, got, ok, c.want, c.ok)
		}
	}
}

func TestShortestWitnessIsShortest(t *testing.T) {
	// Language {aaa, bb}: shortest witness has length 2.
	m := Union(Literal("aaa"), Literal("bb"))
	w, ok := m.ShortestWitness()
	if !ok || len(w) != 2 {
		t.Fatalf("witness = %q/%v", w, ok)
	}
}

func TestEnumerate(t *testing.T) {
	m := Union(Literal("a"), Literal("bb"))
	got := m.Enumerate(3, 100)
	want := []string{"a", "bb"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Enumerate = %v, want %v", got, want)
	}
}

func TestEnumerateRespectsLimits(t *testing.T) {
	m := Star(Class(Range('a', 'b')))
	got := m.Enumerate(2, 1000)
	// ε, a, b, aa, ab, ba, bb
	want := []string{"", "a", "b", "aa", "ab", "ba", "bb"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Enumerate = %v, want %v", got, want)
	}
	if n := len(m.Enumerate(10, 5)); n != 5 {
		t.Fatalf("maxCount ignored: %d", n)
	}
}

func TestConcatAssociativityOnLanguage(t *testing.T) {
	a, b, c := Literal("x"), Star(Literal("y")), Literal("z")
	left := Concat(Concat(a, b), c)
	right := Concat(a, Concat(b, c))
	if !Equivalent(left, right) {
		t.Fatal("concatenation should be associative on languages")
	}
}
