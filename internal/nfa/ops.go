package nfa

// This file implements the structural NFA operations the DPRLE algorithm is
// built from: concatenation (with and without seam tags), union, star,
// reverse, ε-closure, trimming, and the induce operations used to slice
// solution machines out of a product machine.

import "math/bits"

// append-copies the states of src into b, returning the state-id offset.
func appendMachine(b *Builder, src *NFA) int {
	off := b.AddStates(src.NumStates())
	for s := 0; s < src.NumStates(); s++ {
		for _, e := range src.edges[s] {
			b.AddEdge(off+s, e.Label, off+e.To)
		}
		for _, e := range src.eps[s] {
			if e.Tag == NoTag {
				b.AddEps(off+s, off+e.To)
			} else {
				b.AddTaggedEps(off+s, off+e.To, e.Tag)
			}
		}
	}
	return off
}

// Concat returns a machine for L(a)·L(b), joining a's final state to b's
// start state with a single ordinary ε-transition (paper Fig. 3, line 6).
func Concat(a, b *NFA) *NFA {
	return concat(a, b, NoTag)
}

// ConcatTagged returns a machine for L(a)·L(b) whose joining ε-transition
// carries the given seam tag. Intersections preserve the tag, so the
// surviving copies of this edge are exactly the CI algorithm's candidate
// slicing points. It panics if tag is negative (see Builder.AddTaggedEps).
func ConcatTagged(a, b *NFA, tag int) *NFA {
	if tag < 0 {
		panic("nfa: ConcatTagged with negative tag")
	}
	return concat(a, b, tag)
}

func concat(a, b *NFA, tag int) *NFA {
	bl := NewBuilder()
	offA := appendMachine(bl, a)
	offB := appendMachine(bl, b)
	if tag == NoTag {
		bl.AddEps(offA+a.final, offB+b.start)
	} else {
		bl.AddTaggedEps(offA+a.final, offB+b.start, tag)
	}
	return bl.Build(offA+a.start, offB+b.final)
}

// Union returns a machine for L(a) ∪ L(b).
func Union(a, b *NFA) *NFA {
	bl := NewBuilder()
	s := bl.AddState()
	f := bl.AddState()
	offA := appendMachine(bl, a)
	offB := appendMachine(bl, b)
	bl.AddEps(s, offA+a.start)
	bl.AddEps(s, offB+b.start)
	bl.AddEps(offA+a.final, f)
	bl.AddEps(offB+b.final, f)
	return bl.Build(s, f)
}

// UnionAll returns a machine for the union of all given languages.
// UnionAll() is the empty language.
func UnionAll(ms ...*NFA) *NFA {
	if len(ms) == 0 {
		return Empty()
	}
	out := ms[0]
	for _, m := range ms[1:] {
		out = Union(out, m)
	}
	return out
}

// Star returns a machine for L(a)*. The paper's constraint grammar does not
// allow Kleene star on variables, but constants are arbitrary regular
// languages, so the regex compiler needs it.
func Star(a *NFA) *NFA {
	bl := NewBuilder()
	s := bl.AddState()
	f := bl.AddState()
	off := appendMachine(bl, a)
	bl.AddEps(s, off+a.start)
	bl.AddEps(s, f)
	bl.AddEps(off+a.final, f)
	bl.AddEps(off+a.final, off+a.start)
	return bl.Build(s, f)
}

// Plus returns a machine for L(a)+ = L(a)·L(a)*.
func Plus(a *NFA) *NFA {
	bl := NewBuilder()
	s := bl.AddState()
	f := bl.AddState()
	off := appendMachine(bl, a)
	bl.AddEps(s, off+a.start)
	bl.AddEps(off+a.final, f)
	bl.AddEps(off+a.final, off+a.start)
	return bl.Build(s, f)
}

// Optional returns a machine for L(a) ∪ {ε}.
func Optional(a *NFA) *NFA {
	bl := NewBuilder()
	s := bl.AddState()
	f := bl.AddState()
	off := appendMachine(bl, a)
	bl.AddEps(s, off+a.start)
	bl.AddEps(s, f)
	bl.AddEps(off+a.final, f)
	return bl.Build(s, f)
}

// Reverse returns a machine for the reversal of L(m).
func Reverse(m *NFA) *NFA {
	bl := NewBuilder()
	bl.AddStates(m.NumStates())
	for s := 0; s < m.NumStates(); s++ {
		for _, e := range m.edges[s] {
			bl.AddEdge(e.To, e.Label, s)
		}
		for _, e := range m.eps[s] {
			if e.Tag == NoTag {
				bl.AddEps(e.To, s)
			} else {
				bl.AddTaggedEps(e.To, s, e.Tag)
			}
		}
	}
	return bl.Build(m.final, m.start)
}

// eclose returns the memoized ε-closure of state s (s itself included),
// following tagged and untagged ε-edges alike. The returned set is shared
// across callers and views and must be treated as read-only.
func (m *NFA) eclose(s int) stateSet {
	if p := m.eclo.sets[s].Load(); p != nil {
		return *p
	}
	set := newStateSet(m.NumStates())
	set.add(s)
	stack := []int{s}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range m.eps[q] {
			if !set.contains(e.To) {
				set.add(e.To)
				stack = append(stack, e.To)
			}
		}
	}
	m.eclo.sets[s].Store(&set)
	return set
}

// closure expands the state set with everything reachable via
// ε-transitions, tagged or not, by unioning the memoized per-state closures
// word-at-a-time.
func (m *NFA) closure(set stateSet) {
	for wi := range set {
		// Snapshot the word: any state a union adds is drawn from a
		// transitively closed eclose set, so it never needs processing.
		w := set[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			s := wi<<6 | b
			if len(m.eps[s]) == 0 {
				continue
			}
			set.unionWith(m.eclose(s))
		}
	}
}

// startClosure returns the ε-closure of the start state. The result aliases
// the closure memo and must be treated as read-only.
func (m *NFA) startClosure() stateSet {
	return m.eclose(m.start)
}

// step advances a closed state set over input byte c and re-closes it.
func (m *NFA) step(set stateSet, c byte) stateSet {
	next := newStateSet(m.NumStates())
	for wi, w := range set {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			for _, e := range m.edges[wi<<6|b] {
				if e.Label.Contains(c) {
					next.add(e.To)
				}
			}
		}
	}
	m.closure(next)
	return next
}

// Accepts reports whether m accepts the string w.
func (m *NFA) Accepts(w string) bool {
	set := m.startClosure()
	for i := 0; i < len(w); i++ {
		set = m.step(set, w[i])
		if set.isEmpty() {
			return false
		}
	}
	return set.contains(m.final)
}

// reachable returns the set of states reachable from the start state via any
// transition (character or ε).
func (m *NFA) reachable() stateSet {
	seen := newStateSet(m.NumStates())
	seen.add(m.start)
	stack := []int{m.start}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range m.edges[s] {
			if !seen.contains(e.To) {
				seen.add(e.To)
				stack = append(stack, e.To)
			}
		}
		for _, e := range m.eps[s] {
			if !seen.contains(e.To) {
				seen.add(e.To)
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// coreachable returns the set of states from which the final state is
// reachable.
func (m *NFA) coreachable() stateSet {
	n := m.NumStates()
	// Reverse adjacency in CSR form: counting pass, prefix sums, fill. Two
	// flat allocations instead of one growing slice per state — on big
	// product machines the per-state appends used to dominate Trim.
	off := make([]int32, n+1)
	for s := 0; s < n; s++ {
		for _, e := range m.edges[s] {
			off[e.To+1]++
		}
		for _, e := range m.eps[s] {
			off[e.To+1]++
		}
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	radj := make([]int32, off[n])
	cur := make([]int32, n)
	copy(cur, off[:n])
	for s := 0; s < n; s++ {
		for _, e := range m.edges[s] {
			radj[cur[e.To]] = int32(s)
			cur[e.To]++
		}
		for _, e := range m.eps[s] {
			radj[cur[e.To]] = int32(s)
			cur[e.To]++
		}
	}
	seen := newStateSet(n)
	seen.add(m.final)
	stack := []int32{int32(m.final)}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range radj[off[s]:off[s+1]] {
			if !seen.contains(int(p)) {
				seen.add(int(p))
				stack = append(stack, p)
			}
		}
	}
	return seen
}

// IsEmpty reports whether L(m) = ∅, i.e. the final state is unreachable
// from the start state. The search exits as soon as the final state is
// seen, which matters for the induce loop: span views are usually nonempty
// and a witness path is found long before the whole machine is swept.
func (m *NFA) IsEmpty() bool {
	if m.start == m.final {
		return false
	}
	seen := newStateSet(m.NumStates())
	seen.add(m.start)
	stack := []int{m.start}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range m.edges[s] {
			if e.To == m.final {
				return false
			}
			if !seen.contains(e.To) {
				seen.add(e.To)
				stack = append(stack, e.To)
			}
		}
		for _, e := range m.eps[s] {
			if e.To == m.final {
				return false
			}
			if !seen.contains(e.To) {
				seen.add(e.To)
				stack = append(stack, e.To)
			}
		}
	}
	return true
}

// Trim returns an equivalent machine containing only states that lie on some
// path from the start state to the final state. If the language is empty the
// canonical two-state empty machine is returned. Seam tags are preserved on
// surviving edges.
func (m *NFA) Trim() *NFA {
	reach := m.reachable()
	coreach := m.coreachable()
	n := m.NumStates()
	keep := make([]int, n)
	nk := 0
	for s := 0; s < n; s++ {
		if reach.contains(s) && coreach.contains(s) {
			keep[s] = nk
			nk++
		} else {
			keep[s] = -1
		}
	}
	if keep[m.start] < 0 || keep[m.final] < 0 {
		return Empty()
	}
	// Count surviving edges, then fill rows carved out of two flat backing
	// arrays: a fixed number of allocations regardless of machine size.
	totE, totP := 0, 0
	for s := 0; s < n; s++ {
		if keep[s] < 0 {
			continue
		}
		for _, e := range m.edges[s] {
			if keep[e.To] >= 0 {
				totE++
			}
		}
		for _, e := range m.eps[s] {
			if keep[e.To] >= 0 {
				totP++
			}
		}
	}
	edges := make([][]Edge, nk)
	eps := make([][]EpsEdge, nk)
	flatE := make([]Edge, 0, totE)
	flatP := make([]EpsEdge, 0, totP)
	for s := 0; s < n; s++ {
		ns := keep[s]
		if ns < 0 {
			continue
		}
		le := len(flatE)
		for _, e := range m.edges[s] {
			if keep[e.To] >= 0 {
				flatE = append(flatE, Edge{Label: e.Label, To: keep[e.To]})
			}
		}
		if len(flatE) > le {
			edges[ns] = flatE[le:len(flatE):len(flatE)]
		}
		lp := len(flatP)
		for _, e := range m.eps[s] {
			if keep[e.To] >= 0 {
				flatP = append(flatP, EpsEdge{To: keep[e.To], Tag: e.Tag})
			}
		}
		if len(flatP) > lp {
			eps[ns] = flatP[lp:len(flatP):len(flatP)]
		}
	}
	return newNFA(edges, eps, keep[m.start], keep[m.final])
}

// DropSeams returns a machine recognizing m's language over m's states with
// every tagged ε-edge removed. A string belonging to a single concatenation
// operand never crosses a seam, so induced operand machines are seam-free.
// The result is a zero-copy view over a memoized seam-stripped transition
// structure: the strip is computed once per machine (shared by all views)
// and each call afterwards costs one struct allocation.
func (m *NFA) DropSeams() *NFA {
	return m.seamFree().view(m.start, m.final)
}

// seamFree returns the machine whose transition structure is m's with every
// tagged ε-edge removed, memoized on the shared seamMemo. Character edges
// are always shared with m; ε-edge lists are shared per state unless the
// state actually carries a seam. A seam-free machine memoizes itself, so
// repeated stripping is free.
func (m *NFA) seamFree() *NFA {
	if sf := m.seamfree.p.Load(); sf != nil {
		return sf
	}
	hasSeams := false
	for s := range m.eps {
		for _, e := range m.eps[s] {
			if e.Tag != NoTag {
				hasSeams = true
				break
			}
		}
		if hasSeams {
			break
		}
	}
	sf := m
	if hasSeams {
		eps := make([][]EpsEdge, len(m.eps))
		for s := range m.eps {
			list := m.eps[s]
			tagged := false
			for _, e := range list {
				if e.Tag != NoTag {
					tagged = true
					break
				}
			}
			if !tagged {
				eps[s] = list
				continue
			}
			var kept []EpsEdge
			for _, e := range list {
				if e.Tag == NoTag {
					kept = append(kept, e)
				}
			}
			eps[s] = kept
		}
		sf = &NFA{edges: m.edges, eps: eps, start: m.start, final: m.final,
			eclo: newEcloCache(len(m.edges)), seamfree: &seamMemo{}}
		sf.seamfree.p.Store(sf)
	}
	m.seamfree.p.Store(sf)
	return sf
}

// Induce returns the seam-free sub-machine of m spanning the given start
// and final states. This generalizes the paper's induce_from_final
// (final := seam source) and induce_from_start (start := seam target) to
// arbitrary spans, which is what gci needs for variables in the middle of a
// concatenation chain. The result is a zero-copy view sharing the memoized
// seam-free structure — O(1) per call where it used to deep-copy and trim
// the whole machine — so it may carry states useless for the new span;
// callers that need a structurally trimmed machine chain .Trim(), which
// preserves the language.
func (m *NFA) Induce(start, final int) *NFA {
	return m.seamFree().view(start, final)
}

// ShortestWitness returns the shortest string in L(m), and among the
// shortest the lexicographically smallest. It reports ok=false when the
// language is empty. The choice depends only on the language, not on the
// machine's structure, so equivalent machines — however constructed —
// yield byte-identical witnesses.
func (m *NFA) ShortestWitness() (string, bool) {
	// Minimal byte-distance from each state to final: 0/1 BFS over the
	// reversed machine, ε-edges costing 0 and labelled edges 1.
	const inf = int(^uint(0) >> 1)
	n := m.NumStates()
	type rev struct {
		from   int
		byByte bool
	}
	radj := make([][]rev, n)
	for s := 0; s < n; s++ {
		for _, e := range m.eps[s] {
			radj[e.To] = append(radj[e.To], rev{from: s})
		}
		for _, e := range m.edges[s] {
			if !e.Label.IsEmpty() {
				radj[e.To] = append(radj[e.To], rev{from: s, byByte: true})
			}
		}
	}
	dist := make([]int, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[m.final] = 0
	deque := make([]int, 0, n)
	deque = append(deque, m.final)
	for len(deque) > 0 {
		v := deque[0]
		deque = deque[1:]
		for _, r := range radj[v] {
			d := dist[v]
			if r.byByte {
				d++
			}
			if d < dist[r.from] {
				dist[r.from] = d
				if r.byByte {
					deque = append(deque, r.from)
				} else {
					deque = append([]int{r.from}, deque...)
				}
			}
		}
	}

	minDist := func(set stateSet) int {
		d := inf
		set.forEach(func(s int) {
			if dist[s] < d {
				d = dist[s]
			}
		})
		return d
	}

	// Greedy walk over the on-the-fly subset construction: at each step
	// take the smallest byte that still lies on a shortest path.
	set := m.startClosure()
	remaining := minDist(set)
	if remaining == inf {
		return "", false
	}
	out := make([]byte, 0, remaining)
	for ; remaining > 0; remaining-- {
		avail := EmptySet()
		set.forEach(func(s int) {
			for _, e := range m.edges[s] {
				avail = avail.Union(e.Label)
			}
		})
		advanced := false
		for _, b := range avail.Bytes() {
			next := m.step(set, b)
			if minDist(next) == remaining-1 {
				out = append(out, b)
				set = next
				advanced = true
				break
			}
		}
		if !advanced {
			// Unreachable when dist is consistent; fail closed.
			return "", false
		}
	}
	return string(out), true
}

// Enumerate returns accepted strings of length ≤ maxLen, up to maxCount of
// them, in length-then-lexicographic order. It is intended for tests and
// small languages; the traversal explores the deterministic subset
// construction on the fly.
func (m *NFA) Enumerate(maxLen, maxCount int) []string {
	var out []string
	type item struct {
		set stateSet
		str string
	}
	start := m.startClosure()
	queue := []item{{set: start, str: ""}}
	for len(queue) > 0 && len(out) < maxCount {
		it := queue[0]
		queue = queue[1:]
		if it.set.contains(m.final) {
			out = append(out, it.str)
			if len(out) >= maxCount {
				break
			}
		}
		if len(it.str) >= maxLen {
			continue
		}
		avail := EmptySet()
		it.set.forEach(func(s int) {
			for _, e := range m.edges[s] {
				avail = avail.Union(e.Label)
			}
		})
		for _, b := range avail.Bytes() {
			next := m.step(it.set, b)
			if !next.isEmpty() {
				queue = append(queue, item{set: next, str: it.str + string([]byte{b})})
			}
		}
	}
	return out
}
