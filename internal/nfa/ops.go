package nfa

// This file implements the structural NFA operations the DPRLE algorithm is
// built from: concatenation (with and without seam tags), union, star,
// reverse, ε-closure, trimming, and the induce operations used to slice
// solution machines out of a product machine.

// append-copies the states of src into b, returning the state-id offset.
func appendMachine(b *Builder, src *NFA) int {
	off := b.AddStates(src.NumStates())
	for s := 0; s < src.NumStates(); s++ {
		for _, e := range src.edges[s] {
			b.AddEdge(off+s, e.Label, off+e.To)
		}
		for _, e := range src.eps[s] {
			if e.Tag == NoTag {
				b.AddEps(off+s, off+e.To)
			} else {
				b.AddTaggedEps(off+s, off+e.To, e.Tag)
			}
		}
	}
	return off
}

// Concat returns a machine for L(a)·L(b), joining a's final state to b's
// start state with a single ordinary ε-transition (paper Fig. 3, line 6).
func Concat(a, b *NFA) *NFA {
	return concat(a, b, NoTag)
}

// ConcatTagged returns a machine for L(a)·L(b) whose joining ε-transition
// carries the given seam tag. Intersections preserve the tag, so the
// surviving copies of this edge are exactly the CI algorithm's candidate
// slicing points. It panics if tag is negative (see Builder.AddTaggedEps).
func ConcatTagged(a, b *NFA, tag int) *NFA {
	if tag < 0 {
		panic("nfa: ConcatTagged with negative tag")
	}
	return concat(a, b, tag)
}

func concat(a, b *NFA, tag int) *NFA {
	bl := NewBuilder()
	offA := appendMachine(bl, a)
	offB := appendMachine(bl, b)
	if tag == NoTag {
		bl.AddEps(offA+a.final, offB+b.start)
	} else {
		bl.AddTaggedEps(offA+a.final, offB+b.start, tag)
	}
	return bl.Build(offA+a.start, offB+b.final)
}

// Union returns a machine for L(a) ∪ L(b).
func Union(a, b *NFA) *NFA {
	bl := NewBuilder()
	s := bl.AddState()
	f := bl.AddState()
	offA := appendMachine(bl, a)
	offB := appendMachine(bl, b)
	bl.AddEps(s, offA+a.start)
	bl.AddEps(s, offB+b.start)
	bl.AddEps(offA+a.final, f)
	bl.AddEps(offB+b.final, f)
	return bl.Build(s, f)
}

// UnionAll returns a machine for the union of all given languages.
// UnionAll() is the empty language.
func UnionAll(ms ...*NFA) *NFA {
	if len(ms) == 0 {
		return Empty()
	}
	out := ms[0]
	for _, m := range ms[1:] {
		out = Union(out, m)
	}
	return out
}

// Star returns a machine for L(a)*. The paper's constraint grammar does not
// allow Kleene star on variables, but constants are arbitrary regular
// languages, so the regex compiler needs it.
func Star(a *NFA) *NFA {
	bl := NewBuilder()
	s := bl.AddState()
	f := bl.AddState()
	off := appendMachine(bl, a)
	bl.AddEps(s, off+a.start)
	bl.AddEps(s, f)
	bl.AddEps(off+a.final, f)
	bl.AddEps(off+a.final, off+a.start)
	return bl.Build(s, f)
}

// Plus returns a machine for L(a)+ = L(a)·L(a)*.
func Plus(a *NFA) *NFA {
	bl := NewBuilder()
	s := bl.AddState()
	f := bl.AddState()
	off := appendMachine(bl, a)
	bl.AddEps(s, off+a.start)
	bl.AddEps(off+a.final, f)
	bl.AddEps(off+a.final, off+a.start)
	return bl.Build(s, f)
}

// Optional returns a machine for L(a) ∪ {ε}.
func Optional(a *NFA) *NFA {
	bl := NewBuilder()
	s := bl.AddState()
	f := bl.AddState()
	off := appendMachine(bl, a)
	bl.AddEps(s, off+a.start)
	bl.AddEps(s, f)
	bl.AddEps(off+a.final, f)
	return bl.Build(s, f)
}

// Reverse returns a machine for the reversal of L(m).
func Reverse(m *NFA) *NFA {
	bl := NewBuilder()
	bl.AddStates(m.NumStates())
	for s := 0; s < m.NumStates(); s++ {
		for _, e := range m.edges[s] {
			bl.AddEdge(e.To, e.Label, s)
		}
		for _, e := range m.eps[s] {
			if e.Tag == NoTag {
				bl.AddEps(e.To, s)
			} else {
				bl.AddTaggedEps(e.To, s, e.Tag)
			}
		}
	}
	return bl.Build(m.final, m.start)
}

// closure expands the state set `set` (a boolean vector) with everything
// reachable via ε-transitions, tagged or not.
func (m *NFA) closure(set []bool) {
	stack := make([]int, 0, len(set))
	for s, in := range set {
		if in {
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range m.eps[s] {
			if !set[e.To] {
				set[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
}

// startClosure returns the ε-closure of the start state as a boolean vector.
func (m *NFA) startClosure() []bool {
	set := make([]bool, m.NumStates())
	set[m.start] = true
	m.closure(set)
	return set
}

// step advances a closed state set over input byte c and re-closes it.
func (m *NFA) step(set []bool, c byte) []bool {
	next := make([]bool, m.NumStates())
	for s, in := range set {
		if !in {
			continue
		}
		for _, e := range m.edges[s] {
			if e.Label.Contains(c) {
				next[e.To] = true
			}
		}
	}
	m.closure(next)
	return next
}

// Accepts reports whether m accepts the string w.
func (m *NFA) Accepts(w string) bool {
	set := m.startClosure()
	for i := 0; i < len(w); i++ {
		set = m.step(set, w[i])
		if !anyTrue(set) {
			return false
		}
	}
	return set[m.final]
}

func anyTrue(set []bool) bool {
	for _, b := range set {
		if b {
			return true
		}
	}
	return false
}

// reachable returns the set of states reachable from the start state via any
// transition (character or ε).
func (m *NFA) reachable() []bool {
	seen := make([]bool, m.NumStates())
	seen[m.start] = true
	stack := []int{m.start}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range m.edges[s] {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
		for _, e := range m.eps[s] {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// coreachable returns the set of states from which the final state is
// reachable.
func (m *NFA) coreachable() []bool {
	// Build reverse adjacency once.
	radj := make([][]int, m.NumStates())
	for s := 0; s < m.NumStates(); s++ {
		for _, e := range m.edges[s] {
			radj[e.To] = append(radj[e.To], s)
		}
		for _, e := range m.eps[s] {
			radj[e.To] = append(radj[e.To], s)
		}
	}
	seen := make([]bool, m.NumStates())
	seen[m.final] = true
	stack := []int{m.final}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range radj[s] {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return seen
}

// IsEmpty reports whether L(m) = ∅.
func (m *NFA) IsEmpty() bool {
	return !m.reachable()[m.final]
}

// Trim returns an equivalent machine containing only states that lie on some
// path from the start state to the final state. If the language is empty the
// canonical two-state empty machine is returned. Seam tags are preserved on
// surviving edges.
func (m *NFA) Trim() *NFA {
	reach := m.reachable()
	coreach := m.coreachable()
	keep := make([]int, m.NumStates())
	bl := NewBuilder()
	for s := 0; s < m.NumStates(); s++ {
		if reach[s] && coreach[s] {
			keep[s] = bl.AddState()
		} else {
			keep[s] = -1
		}
	}
	if keep[m.start] < 0 || keep[m.final] < 0 {
		return Empty()
	}
	for s := 0; s < m.NumStates(); s++ {
		if keep[s] < 0 {
			continue
		}
		for _, e := range m.edges[s] {
			if keep[e.To] >= 0 {
				bl.AddEdge(keep[s], e.Label, keep[e.To])
			}
		}
		for _, e := range m.eps[s] {
			if keep[e.To] < 0 {
				continue
			}
			if e.Tag == NoTag {
				bl.AddEps(keep[s], keep[e.To])
			} else {
				bl.AddTaggedEps(keep[s], keep[e.To], e.Tag)
			}
		}
	}
	return bl.Build(keep[m.start], keep[m.final])
}

// DropSeams returns a copy of m with every tagged ε-edge removed. A string
// belonging to a single concatenation operand never crosses a seam, so
// induced operand machines are built seam-free.
func (m *NFA) DropSeams() *NFA {
	bl := NewBuilder()
	bl.AddStates(m.NumStates())
	for s := 0; s < m.NumStates(); s++ {
		for _, e := range m.edges[s] {
			bl.AddEdge(s, e.Label, e.To)
		}
		for _, e := range m.eps[s] {
			if e.Tag == NoTag {
				bl.AddEps(s, e.To)
			}
		}
	}
	return bl.Build(m.start, m.final)
}

// Induce returns the seam-free sub-machine of m spanning the given start and
// final states, trimmed. This generalizes the paper's induce_from_final
// (final := seam source) and induce_from_start (start := seam target) to
// arbitrary spans, which is what gci needs for variables in the middle of a
// concatenation chain.
func (m *NFA) Induce(start, final int) *NFA {
	c := m.DropSeams()
	c.start = start
	c.final = final
	return c.Trim()
}

// ShortestWitness returns the shortest string in L(m), and among the
// shortest the lexicographically smallest. It reports ok=false when the
// language is empty. The choice depends only on the language, not on the
// machine's structure, so equivalent machines — however constructed —
// yield byte-identical witnesses.
func (m *NFA) ShortestWitness() (string, bool) {
	// Minimal byte-distance from each state to final: 0/1 BFS over the
	// reversed machine, ε-edges costing 0 and labelled edges 1.
	const inf = int(^uint(0) >> 1)
	n := m.NumStates()
	type rev struct {
		from   int
		byByte bool
	}
	radj := make([][]rev, n)
	for s := 0; s < n; s++ {
		for _, e := range m.eps[s] {
			radj[e.To] = append(radj[e.To], rev{from: s})
		}
		for _, e := range m.edges[s] {
			if !e.Label.IsEmpty() {
				radj[e.To] = append(radj[e.To], rev{from: s, byByte: true})
			}
		}
	}
	dist := make([]int, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[m.final] = 0
	deque := make([]int, 0, n)
	deque = append(deque, m.final)
	for len(deque) > 0 {
		v := deque[0]
		deque = deque[1:]
		for _, r := range radj[v] {
			d := dist[v]
			if r.byByte {
				d++
			}
			if d < dist[r.from] {
				dist[r.from] = d
				if r.byByte {
					deque = append(deque, r.from)
				} else {
					deque = append([]int{r.from}, deque...)
				}
			}
		}
	}

	minDist := func(set []bool) int {
		d := inf
		for s, in := range set {
			if in && dist[s] < d {
				d = dist[s]
			}
		}
		return d
	}

	// Greedy walk over the on-the-fly subset construction: at each step
	// take the smallest byte that still lies on a shortest path.
	set := m.startClosure()
	remaining := minDist(set)
	if remaining == inf {
		return "", false
	}
	out := make([]byte, 0, remaining)
	for ; remaining > 0; remaining-- {
		avail := EmptySet()
		for s, in := range set {
			if !in {
				continue
			}
			for _, e := range m.edges[s] {
				avail = avail.Union(e.Label)
			}
		}
		advanced := false
		for _, b := range avail.Bytes() {
			next := m.step(set, b)
			if minDist(next) == remaining-1 {
				out = append(out, b)
				set = next
				advanced = true
				break
			}
		}
		if !advanced {
			// Unreachable when dist is consistent; fail closed.
			return "", false
		}
	}
	return string(out), true
}

// Enumerate returns accepted strings of length ≤ maxLen, up to maxCount of
// them, in length-then-lexicographic order. It is intended for tests and
// small languages; the traversal explores the deterministic subset
// construction on the fly.
func (m *NFA) Enumerate(maxLen, maxCount int) []string {
	var out []string
	type item struct {
		set []bool
		str string
	}
	start := m.startClosure()
	queue := []item{{set: start, str: ""}}
	for len(queue) > 0 && len(out) < maxCount {
		it := queue[0]
		queue = queue[1:]
		if it.set[m.final] {
			out = append(out, it.str)
			if len(out) >= maxCount {
				break
			}
		}
		if len(it.str) >= maxLen {
			continue
		}
		// Group outgoing labels into atoms so we only branch on
		// distinguishable bytes, then take each atom's minimum byte last—
		// no: enumerate every byte to stay exact.
		var labels []CharSet
		for s, in := range it.set {
			if !in {
				continue
			}
			for _, e := range m.edges[s] {
				labels = append(labels, e.Label)
			}
		}
		if len(labels) == 0 {
			continue
		}
		avail := EmptySet()
		for _, l := range labels {
			avail = avail.Union(l)
		}
		for _, b := range avail.Bytes() {
			next := m.step(it.set, b)
			if anyTrue(next) {
				queue = append(queue, item{set: next, str: it.str + string([]byte{b})})
			}
		}
	}
	return out
}
