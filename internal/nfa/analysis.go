package nfa

// Language-analysis utilities: finiteness, word-length bounds, counting, and
// deterministic sampling. These support the experiment harness (reporting),
// the property-test suites (exhaustiveness bounds), and clients that want to
// inspect solver output beyond a single witness.

// IsInfinite reports whether L(m) is infinite: the trimmed machine contains
// a cycle reachable on a start–final path.
func (m *NFA) IsInfinite() bool {
	t := m.Trim()
	if t.IsEmpty() {
		return false
	}
	// DFS cycle detection over all (useful) states.
	const (
		unseen = 0
		onPath = 1
		done   = 2
	)
	state := make([]int, t.NumStates())
	var visit func(s int) bool
	visit = func(s int) bool {
		state[s] = onPath
		for _, e := range t.edges[s] {
			switch state[e.To] {
			case onPath:
				return true
			case unseen:
				if visit(e.To) {
					return true
				}
			}
		}
		for _, e := range t.eps[s] {
			switch state[e.To] {
			case onPath:
				return true
			case unseen:
				if visit(e.To) {
					return true
				}
			}
		}
		state[s] = done
		return false
	}
	return visit(t.start)
}

// MinWordLength returns the length of a shortest member, reporting ok=false
// for the empty language.
func (m *NFA) MinWordLength() (int, bool) {
	w, ok := m.ShortestWitness()
	if !ok {
		return 0, false
	}
	return len(w), true
}

// MaxWordLength returns the length of a longest member, with ok=false for
// the empty language and infinite=true when the language is infinite.
func (m *NFA) MaxWordLength() (length int, infinite, ok bool) {
	t := m.Trim()
	if t.IsEmpty() {
		return 0, false, false
	}
	if t.IsInfinite() {
		return 0, true, true
	}
	// Longest path in a DAG (after ε-elimination the trimmed machine of a
	// finite language is acyclic in its character edges; ε-cycles cannot
	// exist on useful paths of a finite language either, but guard anyway).
	memo := make([]int, t.NumStates())
	seen := make([]bool, t.NumStates())
	var longest func(s int) int
	longest = func(s int) int {
		if seen[s] {
			return memo[s]
		}
		seen[s] = true
		best := -1 << 30
		if s == t.final {
			best = 0
		}
		for _, e := range t.edges[s] {
			if v := longest(e.To); v+1 > best {
				best = v + 1
			}
		}
		for _, e := range t.eps[s] {
			if v := longest(e.To); v > best {
				best = v
			}
		}
		memo[s] = best
		return best
	}
	return longest(t.start), false, true
}

// CountWords returns the number of distinct members of each length
// 0..maxLen, computed on the determinized machine so nondeterministic
// duplicates are not double-counted.
func (m *NFA) CountWords(maxLen int) []int {
	d := Determinize(m)
	// dist[s] = number of distinct strings of the current length reaching s.
	dist := make([]int, d.NumStates())
	dist[d.start] = 1
	counts := make([]int, maxLen+1)
	for l := 0; ; l++ {
		total := 0
		for s, n := range dist {
			if d.accept[s] {
				total += n
			}
		}
		counts[l] = total
		if l == maxLen {
			return counts
		}
		next := make([]int, d.NumStates())
		for s, n := range dist {
			if n == 0 {
				continue
			}
			for ai, to := range d.trans[s] {
				next[to] += n * d.atoms[ai].Count()
			}
		}
		dist = next
	}
}

// SampleMember returns a pseudo-random member of the language derived from
// the given seed, or ok=false for the empty language. Sampling is
// deterministic per seed, walking the trimmed machine and biasing toward
// termination so samples stay short.
func (m *NFA) SampleMember(seed uint64) (string, bool) {
	t := m.Trim()
	if t.IsEmpty() {
		return "", false
	}
	coreach := t.coreachable()
	rng := seed*6364136223846793005 + 1442695040888963407
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	var out []byte
	s := t.start
	for steps := 0; steps < 4096; steps++ {
		// Prefer stopping when we are at the final state.
		if s == t.final && (len(out) > 64 || next(3) != 0) {
			return string(out), true
		}
		type move struct {
			to   int
			b    byte
			char bool
		}
		var moves []move
		for _, e := range t.edges[s] {
			if !coreach.contains(e.To) {
				continue
			}
			bs := e.Label.Bytes()
			moves = append(moves, move{to: e.To, b: bs[next(len(bs))], char: true})
		}
		for _, e := range t.eps[s] {
			if coreach.contains(e.To) {
				moves = append(moves, move{to: e.To})
			}
		}
		if len(moves) == 0 {
			if s == t.final {
				return string(out), true
			}
			return "", false // cannot happen on a trimmed machine
		}
		mv := moves[next(len(moves))]
		if mv.char {
			out = append(out, mv.b)
		}
		s = mv.to
	}
	// Fell off the step budget: fall back to the shortest witness.
	return t.ShortestWitness()
}
