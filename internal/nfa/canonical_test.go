package nfa

import (
	"math/rand"
	"runtime"
	"testing"
)

// permuted rebuilds m with states renumbered by perm (perm[old] = new) and
// per-state edge lists reversed, scrambling both the numbering and the
// insertion order that Canonicalize must normalize away.
func permuted(m *NFA, perm []int) *NFA {
	b := NewBuilder()
	b.AddStates(m.NumStates())
	for s := 0; s < m.NumStates(); s++ {
		edges := m.EdgesFrom(s)
		for i := len(edges) - 1; i >= 0; i-- {
			b.AddEdge(perm[s], edges[i].Label, perm[edges[i].To])
		}
		eps := m.EpsFrom(s)
		for i := len(eps) - 1; i >= 0; i-- {
			if eps[i].Tag == NoTag {
				b.AddEps(perm[s], perm[eps[i].To])
			} else {
				b.AddTaggedEps(perm[s], perm[eps[i].To], eps[i].Tag)
			}
		}
	}
	return b.Build(perm[m.Start()], perm[m.Final()])
}

// TestCanonicalKeyRenumberInvariant is the core soundness-and-stability
// property: scrambling state ids and edge order must not change the key.
func TestCanonicalKeyRenumberInvariant(t *testing.T) {
	machines := []*NFA{
		buildPipelineMachine(),
		Literal("nid_"),
		AnyString(),
		ConcatTagged(Literal("x"), Star(Class(Range('a', 'z'))), 3),
	}
	for mi, m := range machines {
		want := m.CanonicalKey()
		n := m.NumStates()
		for seed := int64(0); seed < 8; seed++ {
			perm := rand.New(rand.NewSource(seed)).Perm(n)
			got := permuted(m, perm).CanonicalKey()
			if got != want {
				t.Fatalf("machine %d, seed %d: canonical key changed under renumbering:\n--- original ---\n%s\n--- permuted ---\n%s",
					mi, seed, want, got)
			}
		}
		// Rotation, a structured permutation distinct from the shuffles.
		rot := make([]int, n)
		for i := range rot {
			rot[i] = (i + 1) % n
		}
		if got := permuted(m, rot).CanonicalKey(); got != want {
			t.Fatalf("machine %d: canonical key changed under rotation", mi)
		}
	}
}

// TestCanonicalKeyDistinguishes: structurally different machines must get
// different keys — labels, seam tags, and start/final placement all count.
func TestCanonicalKeyDistinguishes(t *testing.T) {
	pairs := []struct {
		name string
		a, b *NFA
	}{
		{"labels", Literal("ab"), Literal("ac")},
		{"length", Literal("ab"), Literal("abc")},
		{"tags", ConcatTagged(Literal("a"), Literal("b"), 1), ConcatTagged(Literal("a"), Literal("b"), 2)},
		{"tag-vs-plain", ConcatTagged(Literal("a"), Literal("b"), 1), Concat(Literal("a"), Literal("b"))},
		{"empty-vs-eps", Empty(), Epsilon()},
	}
	for _, p := range pairs {
		if p.a.CanonicalKey() == p.b.CanonicalKey() {
			t.Errorf("%s: distinct machines share a canonical key", p.name)
		}
	}
}

// TestCanonicalizePreservesMachine: the canonical form is the same machine —
// same language, same state count, same seam tags.
func TestCanonicalizePreservesMachine(t *testing.T) {
	m := buildPipelineMachine()
	c := m.Canonicalize()
	if c.NumStates() != m.NumStates() {
		t.Fatalf("state count changed: %d → %d", m.NumStates(), c.NumStates())
	}
	mustAccept(t, c, "abc", "ab", "abcc", "abe")
	mustReject(t, c, "", "a", "abd")
	if got, want := len(c.Tags()), len(m.Tags()); got != want {
		t.Fatalf("seam tags changed: %d → %d", want, got)
	}
	// Canonicalization is idempotent: the canonical form of the canonical
	// form is byte-identical, so keys can be recomputed from stored forms.
	if c.CanonicalKey() != m.CanonicalKey() {
		t.Fatal("canonicalization is not idempotent")
	}
}

// TestCanonicalKeyStableAcrossRuns extends the serialize-determinism
// regression: rebuilding the pipeline machine from scratch must reproduce
// the canonical key bit-for-bit, run after run.
func TestCanonicalKeyStableAcrossRuns(t *testing.T) {
	want := buildPipelineMachine().CanonicalKey()
	if want == "" {
		t.Fatal("empty canonical key")
	}
	for i := 1; i < 20; i++ {
		if got := buildPipelineMachine().CanonicalKey(); got != want {
			t.Fatalf("run %d canonical key differs:\n--- run 0 ---\n%s\n--- run %d ---\n%s", i, want, i, got)
		}
	}
}

// TestCanonicalKeyGOMAXPROCSInvariant pins the key against scheduler
// parallelism: construction and canonicalization must be sequential and
// deterministic regardless of GOMAXPROCS.
func TestCanonicalKeyGOMAXPROCSInvariant(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	k1 := buildPipelineMachine().CanonicalKey()
	runtime.GOMAXPROCS(4)
	k4 := buildPipelineMachine().CanonicalKey()
	if k1 != k4 {
		t.Fatalf("canonical key depends on GOMAXPROCS:\n--- 1 ---\n%s\n--- 4 ---\n%s", k1, k4)
	}
}

// TestCanonicalKeyRoundTrip: the key is itself a valid wire-format machine,
// and parsing it back yields the same key.
func TestCanonicalKeyRoundTrip(t *testing.T) {
	key := buildPipelineMachine().CanonicalKey()
	m, err := Unmarshal(key)
	if err != nil {
		t.Fatalf("canonical key is not a valid serialization: %v", err)
	}
	if got := m.CanonicalKey(); got != key {
		t.Fatalf("canonical key changed across a round trip:\n--- before ---\n%s\n--- after ---\n%s", key, got)
	}
}
