package nfa

import (
	"fmt"
	"sync/atomic"
)

// NoTag marks an ordinary (unlabelled) ε-transition.
const NoTag = -1

// Edge is a character transition labelled with a set of bytes.
type Edge struct {
	Label CharSet
	To    int
}

// EpsEdge is an ε-transition. A nonnegative Tag identifies the edge as a
// concatenation seam introduced by ConcatTagged; the cross-product
// construction preserves tags, which is how the DPRLE CI algorithm recovers
// the Qlhs × Qrhs slicing points after intersection (paper Fig. 3).
type EpsEdge struct {
	To  int
	Tag int
}

// NFA is a nondeterministic finite automaton over the byte alphabet with a
// single start state and a single final state, as assumed by the paper
// (§3.2: "we assume that each NFA Mi has a single start state si and a
// single final state fi"). NFAs are immutable once built; all operations
// return fresh machines.
type NFA struct {
	edges [][]Edge    // edges[s] = character transitions out of s
	eps   [][]EpsEdge // eps[s] = ε-transitions out of s
	start int
	final int

	// canon memoizes CanonicalKey. Sound because machines are immutable
	// once built; atomic because interned machines are shared across
	// concurrently-running solves. Every constructor builds a fresh NFA
	// literal, so derived machines (Copy, WithStart, …) start unmemoized.
	canon atomic.Pointer[string]
}

// NumStates returns the number of states in the machine.
func (m *NFA) NumStates() int { return len(m.edges) }

// Start returns the start state.
func (m *NFA) Start() int { return m.start }

// Final returns the (single) final state.
func (m *NFA) Final() int { return m.final }

// EdgesFrom returns the character transitions leaving state s. The returned
// slice must not be modified.
func (m *NFA) EdgesFrom(s int) []Edge { return m.edges[s] }

// EpsFrom returns the ε-transitions leaving state s. The returned slice must
// not be modified.
func (m *NFA) EpsFrom(s int) []EpsEdge { return m.eps[s] }

// Builder incrementally constructs an NFA.
type Builder struct {
	edges [][]Edge
	eps   [][]EpsEdge
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// AddState adds a fresh state and returns its id.
func (b *Builder) AddState() int {
	b.edges = append(b.edges, nil)
	b.eps = append(b.eps, nil)
	return len(b.edges) - 1
}

// AddStates adds n fresh states and returns the id of the first.
func (b *Builder) AddStates(n int) int {
	first := len(b.edges)
	for i := 0; i < n; i++ {
		b.AddState()
	}
	return first
}

// AddEdge adds a character transition from → to labelled with the given set.
// Empty labels are ignored.
func (b *Builder) AddEdge(from int, label CharSet, to int) {
	if label.IsEmpty() {
		return
	}
	b.edges[from] = append(b.edges[from], Edge{Label: label, To: to})
}

// AddEps adds an ordinary ε-transition from → to.
func (b *Builder) AddEps(from, to int) {
	b.eps[from] = append(b.eps[from], EpsEdge{To: to, Tag: NoTag})
}

// AddTaggedEps adds a seam ε-transition carrying the given nonnegative tag.
// It panics if tag is negative: seam tags index concat edges, and a negative
// value is always a caller bug, never recoverable data.
func (b *Builder) AddTaggedEps(from, to, tag int) {
	if tag < 0 {
		panic(fmt.Sprintf("nfa: AddTaggedEps with negative tag %d", tag))
	}
	b.eps[from] = append(b.eps[from], EpsEdge{To: to, Tag: tag})
}

// NumStates returns the number of states added so far.
func (b *Builder) NumStates() int { return len(b.edges) }

// Build finalizes the machine with the given start and final states.
// It panics if either state is out of range — machine construction is
// solver-internal, so an invalid state ID is a bug, not input.
func (b *Builder) Build(start, final int) *NFA {
	if start < 0 || start >= len(b.edges) || final < 0 || final >= len(b.edges) {
		panic("nfa: Build with out-of-range start or final state")
	}
	m := &NFA{edges: b.edges, eps: b.eps, start: start, final: final}
	b.edges = nil
	b.eps = nil
	return m
}

// Empty returns a machine recognizing the empty language ∅.
func Empty() *NFA {
	b := NewBuilder()
	s := b.AddState()
	f := b.AddState()
	return b.Build(s, f)
}

// Epsilon returns a machine recognizing {ε}.
func Epsilon() *NFA {
	b := NewBuilder()
	s := b.AddState()
	f := b.AddState()
	b.AddEps(s, f)
	return b.Build(s, f)
}

// Literal returns a machine recognizing exactly {str}.
func Literal(str string) *NFA {
	b := NewBuilder()
	s := b.AddState()
	cur := s
	for i := 0; i < len(str); i++ {
		next := b.AddState()
		b.AddEdge(cur, Singleton(str[i]), next)
		cur = next
	}
	if cur == s {
		// Empty literal: distinct final reached by ε keeps start ≠ final,
		// which simplifies downstream constructions.
		f := b.AddState()
		b.AddEps(s, f)
		return b.Build(s, f)
	}
	return b.Build(s, cur)
}

// Class returns a machine recognizing the single-byte strings drawn from set.
func Class(set CharSet) *NFA {
	b := NewBuilder()
	s := b.AddState()
	f := b.AddState()
	b.AddEdge(s, set, f)
	return b.Build(s, f)
}

// AnyString returns a machine recognizing Σ*, the initial assignment the
// solver gives every unconstrained variable.
func AnyString() *NFA {
	b := NewBuilder()
	s := b.AddState()
	f := b.AddState()
	b.AddEdge(s, AnyByte(), s)
	b.AddEps(s, f)
	return b.Build(s, f)
}

// Copy returns a deep copy of m.
func (m *NFA) Copy() *NFA {
	edges := make([][]Edge, len(m.edges))
	eps := make([][]EpsEdge, len(m.eps))
	for s := range m.edges {
		edges[s] = append([]Edge(nil), m.edges[s]...)
		eps[s] = append([]EpsEdge(nil), m.eps[s]...)
	}
	return &NFA{edges: edges, eps: eps, start: m.start, final: m.final}
}

// WithStart returns a copy of m whose start state is s
// (the paper's induce_from_start).
func (m *NFA) WithStart(s int) *NFA {
	c := m.Copy()
	c.start = s
	return c
}

// WithFinal returns a copy of m whose final state is f
// (the paper's induce_from_final).
func (m *NFA) WithFinal(f int) *NFA {
	c := m.Copy()
	c.final = f
	return c
}

// TaggedEdge locates a seam ε-edge inside a machine.
type TaggedEdge struct {
	From int
	To   int
	Tag  int
}

// TaggedEdges returns every seam ε-edge in the machine, in state order.
func (m *NFA) TaggedEdges() []TaggedEdge {
	var out []TaggedEdge
	for s := range m.eps {
		for _, e := range m.eps[s] {
			if e.Tag != NoTag {
				out = append(out, TaggedEdge{From: s, To: e.To, Tag: e.Tag})
			}
		}
	}
	return out
}

// Tags returns the distinct seam tags present in the machine, in ascending
// order.
func (m *NFA) Tags() []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range m.TaggedEdges() {
		if !seen[e.Tag] {
			seen[e.Tag] = true
			out = append(out, e.Tag)
		}
	}
	sortInts(out)
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// allLabels returns every distinct charset used as an edge label in m.
func (m *NFA) allLabels() []CharSet {
	seen := map[CharSet]bool{}
	var out []CharSet
	for s := range m.edges {
		for _, e := range m.edges[s] {
			if !seen[e.Label] {
				seen[e.Label] = true
				out = append(out, e.Label)
			}
		}
	}
	return out
}
