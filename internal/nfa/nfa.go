package nfa

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// NoTag marks an ordinary (unlabelled) ε-transition.
const NoTag = -1

// Edge is a character transition labelled with a set of bytes.
type Edge struct {
	Label CharSet
	To    int
}

// EpsEdge is an ε-transition. A nonnegative Tag identifies the edge as a
// concatenation seam introduced by ConcatTagged; the cross-product
// construction preserves tags, which is how the DPRLE CI algorithm recovers
// the Qlhs × Qrhs slicing points after intersection (paper Fig. 3).
type EpsEdge struct {
	To  int
	Tag int
}

// NFA is a nondeterministic finite automaton over the byte alphabet with a
// single start state and a single final state, as assumed by the paper
// (§3.2: "we assume that each NFA Mi has a single start state si and a
// single final state fi"). NFAs are immutable once built; all operations
// return fresh machines. Immutability is what makes the zero-copy views
// (WithStart, WithFinal, Induce) sound: a view shares the backing edges/eps
// slices and the memo caches of its origin instead of deep-copying them.
type NFA struct {
	edges [][]Edge    // edges[s] = character transitions out of s
	eps   [][]EpsEdge // eps[s] = ε-transitions out of s
	start int
	final int

	// canon memoizes CanonicalKey. Sound because machines are immutable
	// once built; atomic because interned machines are shared across
	// concurrently-running solves. The key depends on start/final, so
	// views start unmemoized.
	canon atomic.Pointer[string]

	// eclo memoizes per-state ε-closures and seamfree the seam-stripped
	// transition structure. Both depend only on the transition structure,
	// not on start/final, so views share them with their origin.
	eclo     *ecloCache
	seamfree *seamMemo
}

// NumStates returns the number of states in the machine.
func (m *NFA) NumStates() int { return len(m.edges) }

// Start returns the start state.
func (m *NFA) Start() int { return m.start }

// Final returns the (single) final state.
func (m *NFA) Final() int { return m.final }

// EdgesFrom returns the character transitions leaving state s. The returned
// slice must not be modified.
func (m *NFA) EdgesFrom(s int) []Edge { return m.edges[s] }

// EpsFrom returns the ε-transitions leaving state s. The returned slice must
// not be modified.
func (m *NFA) EpsFrom(s int) []EpsEdge { return m.eps[s] }

// Builder incrementally constructs an NFA.
type Builder struct {
	edges [][]Edge
	eps   [][]EpsEdge
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// AddState adds a fresh state and returns its id.
func (b *Builder) AddState() int {
	b.edges = append(b.edges, nil)
	b.eps = append(b.eps, nil)
	return len(b.edges) - 1
}

// AddStates adds n fresh states and returns the id of the first.
func (b *Builder) AddStates(n int) int {
	first := len(b.edges)
	for i := 0; i < n; i++ {
		b.AddState()
	}
	return first
}

// AddEdge adds a character transition from → to labelled with the given set.
// Empty labels are ignored.
func (b *Builder) AddEdge(from int, label CharSet, to int) {
	if label.IsEmpty() {
		return
	}
	b.edges[from] = append(b.edges[from], Edge{Label: label, To: to})
}

// AddEps adds an ordinary ε-transition from → to.
func (b *Builder) AddEps(from, to int) {
	b.eps[from] = append(b.eps[from], EpsEdge{To: to, Tag: NoTag})
}

// AddTaggedEps adds a seam ε-transition carrying the given nonnegative tag.
// It panics if tag is negative: seam tags index concat edges, and a negative
// value is always a caller bug, never recoverable data.
func (b *Builder) AddTaggedEps(from, to, tag int) {
	if tag < 0 {
		panic(fmt.Sprintf("nfa: AddTaggedEps with negative tag %d", tag))
	}
	b.eps[from] = append(b.eps[from], EpsEdge{To: to, Tag: tag})
}

// NumStates returns the number of states added so far.
func (b *Builder) NumStates() int { return len(b.edges) }

// Build finalizes the machine with the given start and final states,
// normalizing each state's edge list: parallel character edges to the same
// target are merged by unioning their labels, and duplicate ε-edges are
// dropped. Chained cross-products re-derive the same target under many
// label fragments; merging here keeps machine size — and the atom
// partitions derived from edge labels — from compounding across a chain.
// Build panics if either state is out of range — machine construction is
// solver-internal, so an invalid state ID is a bug, not input.
func (b *Builder) Build(start, final int) *NFA {
	if start < 0 || start >= len(b.edges) || final < 0 || final >= len(b.edges) {
		panic("nfa: Build with out-of-range start or final state")
	}
	m := newNFA(b.edges, b.eps, start, final)
	b.edges = nil
	b.eps = nil
	return m
}

// newNFA is the internal constructor every built machine funnels through:
// it normalizes the edge lists (see Build) and initializes the shared memo
// caches, taking ownership of the given slices. Hot paths that can size
// their rows exactly (Trim, IntersectB) call it directly, skipping the
// Builder's incremental growth.
func newNFA(edges [][]Edge, eps [][]EpsEdge, start, final int) *NFA {
	for s := range edges {
		edges[s] = mergeEdges(edges[s])
	}
	for s := range eps {
		eps[s] = dedupEps(eps[s])
	}
	return &NFA{edges: edges, eps: eps, start: start, final: final,
		eclo: newEcloCache(len(edges)), seamfree: &seamMemo{}}
}

// mergeEdges unions the labels of parallel edges (same target) in place,
// keeping first-occurrence target order so construction stays deterministic.
func mergeEdges(list []Edge) []Edge {
	if len(list) < 2 {
		return list
	}
	const smallMerge = 16
	out := list[:0]
	if len(list) <= smallMerge {
		for _, e := range list {
			merged := false
			for i := range out {
				if out[i].To == e.To {
					out[i].Label = out[i].Label.Union(e.Label)
					merged = true
					break
				}
			}
			if !merged {
				out = append(out, e)
			}
		}
		return out
	}
	at := make(map[int]int, len(list))
	for _, e := range list {
		if i, ok := at[e.To]; ok {
			out[i].Label = out[i].Label.Union(e.Label)
			continue
		}
		at[e.To] = len(out)
		out = append(out, e)
	}
	return out
}

// dedupEps drops duplicate ε-edges (same target and tag), keeping
// first-occurrence order; products emit the same ε-move once per derivation.
func dedupEps(list []EpsEdge) []EpsEdge {
	if len(list) < 2 {
		return list
	}
	out := list[:0]
	for _, e := range list {
		dup := false
		for _, k := range out {
			if k == e {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, e)
		}
	}
	return out
}

// Empty returns a machine recognizing the empty language ∅.
func Empty() *NFA {
	b := NewBuilder()
	s := b.AddState()
	f := b.AddState()
	return b.Build(s, f)
}

// Epsilon returns a machine recognizing {ε}.
func Epsilon() *NFA {
	b := NewBuilder()
	s := b.AddState()
	f := b.AddState()
	b.AddEps(s, f)
	return b.Build(s, f)
}

// Literal returns a machine recognizing exactly {str}.
func Literal(str string) *NFA {
	b := NewBuilder()
	s := b.AddState()
	cur := s
	for i := 0; i < len(str); i++ {
		next := b.AddState()
		b.AddEdge(cur, Singleton(str[i]), next)
		cur = next
	}
	if cur == s {
		// Empty literal: distinct final reached by ε keeps start ≠ final,
		// which simplifies downstream constructions.
		f := b.AddState()
		b.AddEps(s, f)
		return b.Build(s, f)
	}
	return b.Build(s, cur)
}

// Class returns a machine recognizing the single-byte strings drawn from set.
func Class(set CharSet) *NFA {
	b := NewBuilder()
	s := b.AddState()
	f := b.AddState()
	b.AddEdge(s, set, f)
	return b.Build(s, f)
}

// AnyString returns a machine recognizing Σ*, the initial assignment the
// solver gives every unconstrained variable.
func AnyString() *NFA {
	b := NewBuilder()
	s := b.AddState()
	f := b.AddState()
	b.AddEdge(s, AnyByte(), s)
	b.AddEps(s, f)
	return b.Build(s, f)
}

// Copy returns a deep copy of m with its own backing storage and fresh memo
// caches. The solver never needs this — views are cheaper and machines are
// immutable — but it keeps an escape hatch for callers that want a machine
// isolated from its origin.
func (m *NFA) Copy() *NFA {
	edges := make([][]Edge, len(m.edges))
	eps := make([][]EpsEdge, len(m.eps))
	for s := range m.edges {
		edges[s] = append([]Edge(nil), m.edges[s]...)
		eps[s] = append([]EpsEdge(nil), m.eps[s]...)
	}
	return &NFA{edges: edges, eps: eps, start: m.start, final: m.final,
		eclo: newEcloCache(len(edges)), seamfree: &seamMemo{}}
}

// view returns a machine sharing m's transition structure and memo caches
// but with its own start and final states. O(1): immutability makes sharing
// the backing slices sound, and the shared ε-closure/seam memos mean work
// done through any view benefits every other view of the same structure.
func (m *NFA) view(start, final int) *NFA {
	return &NFA{edges: m.edges, eps: m.eps, start: start, final: final,
		eclo: m.eclo, seamfree: m.seamfree}
}

// WithStart returns a machine identical to m except that its start state is
// s (the paper's induce_from_start). The result is a zero-copy view.
func (m *NFA) WithStart(s int) *NFA {
	return m.view(s, m.final)
}

// WithFinal returns a machine identical to m except that its final state is
// f (the paper's induce_from_final). The result is a zero-copy view.
func (m *NFA) WithFinal(f int) *NFA {
	return m.view(m.start, f)
}

// TaggedEdge locates a seam ε-edge inside a machine.
type TaggedEdge struct {
	From int
	To   int
	Tag  int
}

// TaggedEdges returns every seam ε-edge in the machine, in state order.
func (m *NFA) TaggedEdges() []TaggedEdge {
	var out []TaggedEdge
	for s := range m.eps {
		for _, e := range m.eps[s] {
			if e.Tag != NoTag {
				out = append(out, TaggedEdge{From: s, To: e.To, Tag: e.Tag})
			}
		}
	}
	return out
}

// Tags returns the distinct seam tags present in the machine, in ascending
// order.
func (m *NFA) Tags() []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range m.TaggedEdges() {
		if !seen[e.Tag] {
			seen[e.Tag] = true
			out = append(out, e.Tag)
		}
	}
	sort.Ints(out)
	return out
}

// allLabels returns every distinct charset used as an edge label in m.
func (m *NFA) allLabels() []CharSet {
	seen := map[CharSet]bool{}
	var out []CharSet
	for s := range m.edges {
		for _, e := range m.edges[s] {
			if !seen[e.Label] {
				seen[e.Label] = true
				out = append(out, e.Label)
			}
		}
	}
	return out
}
